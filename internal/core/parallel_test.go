package core

import (
	"testing"

	"repro/internal/budget"
	"repro/internal/defense"
)

// The parallel-runner determinism contract: every experiment driver must
// return bit-identical results for one worker and for many, because trials
// derive their random streams from (seed, trial index) rather than a
// shared RNG, and per-run mutable state (allocators, filters) is cloned.

func TestInfectionVsHTCountParallelDeterminism(t *testing.T) {
	counts := []int{0, 4, 8, 16}
	seq, err := InfectionVsHTCountN(64, GMCorner, counts, 12, 7, 1)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	for _, workers := range []int{2, 8} {
		par, err := InfectionVsHTCountN(64, GMCorner, counts, 12, 7, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: point %d = %+v, want %+v (not bit-identical)",
					workers, i, par[i], seq[i])
			}
		}
	}
}

func TestInfectionByDistributionParallelDeterminism(t *testing.T) {
	sizes := []int{64, 128}
	for _, dist := range []Distribution{DistCenter, DistRandom, DistCorner} {
		seq, err := InfectionByDistributionN(dist, sizes, 16, 8, 3, 1)
		if err != nil {
			t.Fatalf("%s workers=1: %v", dist, err)
		}
		par, err := InfectionByDistributionN(dist, sizes, 16, 8, 3, 8)
		if err != nil {
			t.Fatalf("%s workers=8: %v", dist, err)
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("%s: point %d = %+v, want %+v", dist, i, par[i], seq[i])
			}
		}
	}
}

func TestRunPairParallelDeterminism(t *testing.T) {
	run := func(workers int) (*Comparison, error) {
		cfg := fastConfig()
		cfg.Workers = workers
		sys, err := NewSystem(cfg)
		if err != nil {
			return nil, err
		}
		sc := fastScenario(t, campaignPlacement(t, sys))
		attacked, baseline, err := sys.RunPair(sc)
		if err != nil {
			return nil, err
		}
		return Compare(attacked, baseline)
	}
	seq, err := run(1)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	par, err := run(4)
	if err != nil {
		t.Fatalf("workers=4: %v", err)
	}
	if seq.Q != par.Q || seq.InfectionMeasured != par.InfectionMeasured {
		t.Fatalf("RunPair diverges: sequential Q=%v inf=%v, parallel Q=%v inf=%v",
			seq.Q, seq.InfectionMeasured, par.Q, par.InfectionMeasured)
	}
	for i := range seq.PerApp {
		if seq.PerApp[i] != par.PerApp[i] {
			t.Fatalf("app %d diverges: %+v vs %+v", i, seq.PerApp[i], par.PerApp[i])
		}
	}
}

func TestDoSVariantStudyParallelDeterminism(t *testing.T) {
	run := func(workers int) []VariantResult {
		cfg := fastConfig()
		cfg.Workers = workers
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results, err := DoSVariantStudy(cfg, "mix-1", 16, campaignPlacement(t, sys))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return results
	}
	seq, par := run(1), run(8)
	if len(seq) != len(par) {
		t.Fatalf("result counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("variant %d diverges:\nsequential %+v\nparallel   %+v", i, seq[i], par[i])
		}
	}
}

func TestDefenseStudyParallelDeterminism(t *testing.T) {
	run := func(workers int) []DefenseResult {
		cfg := fastConfig()
		cfg.Epochs = 8
		cfg.Workers = workers
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results, err := DefenseStudy(cfg, "mix-1", 16, campaignPlacement(t, sys))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return results
	}
	seq, par := run(1), run(8)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("defense %q diverges:\nsequential %+v\nparallel   %+v",
				seq[i].Defense, seq[i], par[i])
		}
	}
}

func TestOptimalVsRandomParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full placement study in -short mode")
	}
	run := func(workers int) *PlacementStudy {
		cfg := fastConfig()
		cfg.Workers = workers
		study, err := OptimalVsRandom(cfg, "mix-1", 8, 8, 6, 3)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return study
	}
	seq, par := run(1), run(8)
	if *seq != *par {
		t.Fatalf("study diverges:\nsequential %+v\nparallel   %+v", seq, par)
	}
}

// TestStatefulCloning pins the cloning contract the concurrent runners
// depend on: stateful allocators and filters are copied with fresh state,
// stateless ones pass through.
func TestStatefulCloning(t *testing.T) {
	pi := budget.NewPIController(0.5)
	clone, ok := budget.CloneAllocator(pi).(*budget.PIController)
	if !ok {
		t.Fatal("PI clone lost its type")
	}
	if clone == pi {
		t.Fatal("PI controller must clone to a fresh instance")
	}
	fair := budget.FairShare{}
	if budget.CloneAllocator(fair) != budget.Allocator(fair) {
		t.Error("stateless allocator should pass through")
	}

	hg := defense.NewHistoryGuard(0.3, 0.4)
	hgClone, ok := budget.CloneFilter(hg).(*defense.HistoryGuard)
	if !ok {
		t.Fatal("history-guard clone lost its type")
	}
	if hgClone == hg {
		t.Fatal("history guard must clone to a fresh instance")
	}
	chain := defense.NewChain(hg)
	chainClone, ok := budget.CloneFilter(chain).(defense.Chain)
	if !ok {
		t.Fatal("chain clone lost its type")
	}
	if chainClone.Filters[0] == budget.RequestFilter(hg) {
		t.Fatal("chain must clone its stateful stages")
	}
	if budget.CloneFilter(nil) != nil {
		t.Error("nil filter must stay nil")
	}
}
