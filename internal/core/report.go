package core

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/metrics"
	"repro/internal/noc"
	"repro/internal/trojan"
)

// EpochRecord is one budgeting epoch's trace entry.
type EpochRecord struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// TrojanActive reports whether the fleet's activation signal was ON.
	TrojanActive bool
	// RequestsReceived and RequestsTampered are the manager's deltas for
	// this epoch.
	RequestsReceived, RequestsTampered uint64
	// AttackerMeanLevel and VictimMeanLevel are the mean DVFS level
	// indices over each role's cores at epoch end.
	AttackerMeanLevel, VictimMeanLevel float64
	// MemLatencyNs is the epoch-end memory latency estimate.
	MemLatencyNs float64
}

// AppResult is one application's measured outcome in a campaign.
type AppResult struct {
	// Name and Role echo the scenario.
	Name string
	Role Role
	// Cores is the number of cores the application actually received.
	Cores int
	// Theta is Definition 1: the application's summed core throughput in
	// instructions per nanosecond, averaged over measured epochs.
	Theta float64
	// Phi is Definition 5: the application's power-budget sensitivity.
	Phi float64
	// AvgLevel is the mean DVFS level index over measured epochs.
	AvgLevel float64
}

// Report is the outcome of one campaign.
type Report struct {
	// Apps are the per-application results, in scenario order.
	Apps []AppResult
	// GM is the manager's node.
	GM noc.NodeID
	// ChipBudgetMW is the allocated chip power budget.
	ChipBudgetMW uint64
	// InfectionMeasured is the realised infection rate: tampered POWER_REQ
	// deliveries over all POWER_REQ deliveries at the manager.
	InfectionMeasured float64
	// InfectionPredicted is the closed-form XY predictor over the
	// application cores.
	InfectionPredicted float64
	// AvgMemLatencyNs is the final memory-latency estimate.
	AvgMemLatencyNs float64
	// Net is the NoC statistics snapshot.
	Net noc.Stats
	// Trojan sums the fleet's counters (zero without Trojans).
	Trojan trojan.Stats
	// FlaggedRequests and RepairedTampered count the request-integrity
	// filter's verdicts (zero without a configured defense).
	FlaggedRequests  uint64
	RepairedTampered uint64
	// Epochs is the per-epoch trace, one record per budgeting epoch.
	Epochs []EpochRecord
	// DualPathPairs, DualPathMismatches, and DualPathUnpaired report the
	// route-diverse voter's verdicts (zero unless DualPathRequests).
	DualPathPairs, DualPathMismatches, DualPathUnpaired uint64
	// TrojanFeatures are the placement's Eqn 9 geometric features with the
	// Φ vectors filled from victim/attacker roles (zero without Trojans).
	TrojanFeatures attack.Features
}

// report assembles the Report after a campaign finished.
func (r *run) report(sc Scenario) (*Report, error) {
	cfg := r.sys.cfg
	rep := &Report{
		GM:                r.sys.gm,
		ChipBudgetMW:      cfg.ChipBudgetMW(),
		InfectionMeasured: r.infection.Rate(),
		AvgMemLatencyNs:   r.memLatNs,
		Net:               r.net.Stats(),
		FlaggedRequests:   r.manager.FlaggedTotal,
		RepairedTampered:  r.manager.RepairedTampered,
		Epochs:            r.trace,
	}
	if r.voter != nil {
		rep.DualPathPairs = r.voter.Pairs
		rep.DualPathMismatches = r.voter.Mismatches
		rep.DualPathUnpaired = r.voter.Unpaired
	}
	freqs := make([]float64, cfg.Power.NumLevels())
	for i := range freqs {
		freqs[i] = cfg.Power.Freq(i)
	}
	var sources []noc.NodeID
	for _, app := range r.apps {
		theta := 0.0
		avgLevel := 0.0
		for _, cid := range app.cores {
			cs := &r.cores[cid]
			if cs.samples > 0 {
				// Per-core mean throughput over measured epochs.
				theta += cs.instrs / (float64(cs.samples) * float64(cfg.EpochCycles))
				avgLevel += cs.levels / float64(cs.samples)
			}
		}
		avgLevel /= float64(len(app.cores))
		phi := app.profile.Sensitivity(freqs, r.memLatNs)
		rep.Apps = append(rep.Apps, AppResult{
			Name:     app.spec.Name,
			Role:     app.spec.Role,
			Cores:    len(app.cores),
			Theta:    theta,
			Phi:      phi,
			AvgLevel: avgLevel,
		})
		sources = append(sources, app.cores...)
	}
	if r.fleet != nil {
		rep.Trojan = r.fleet.TotalStats()
		rep.InfectionPredicted = metrics.InfectionRateXY(r.sys.mesh, r.sys.gm, sc.Trojans.Infected(), sources)
		f, err := attack.FeaturesFor(r.sys.mesh, r.sys.gm, sc.Trojans)
		if err != nil {
			return nil, err
		}
		for _, a := range rep.Apps {
			switch a.Role {
			case RoleVictim:
				f.VictimPhi = append(f.VictimPhi, a.Phi)
			case RoleAttacker:
				f.AttackerPhi = append(f.AttackerPhi, a.Phi)
			}
		}
		rep.TrojanFeatures = f
	}
	return rep, nil
}

// AppChange is one application's performance change between an attacked
// run and its clean baseline.
type AppChange struct {
	Name string
	Role Role
	// ThetaAttacked and ThetaBaseline are the Definition 1 values.
	ThetaAttacked, ThetaBaseline float64
	// Change is Definition 2: Θ = θ/Λ.
	Change float64
}

// Comparison is the attacked-vs-baseline evaluation of a campaign.
type Comparison struct {
	// PerApp lists each application's Θ, in scenario order.
	PerApp []AppChange
	// Q is Definition 3 over the attacker and victim applications.
	Q float64
	// InfectionMeasured echoes the attacked run's realised infection rate.
	InfectionMeasured float64
	// Features are the attacked run's Eqn 9 features.
	Features attack.Features
}

// Compare evaluates an attacked run against its clean baseline. Both
// reports must come from the same scenario shape.
func Compare(attacked, baseline *Report) (*Comparison, error) {
	if len(attacked.Apps) != len(baseline.Apps) {
		return nil, fmt.Errorf("core: compare: %d vs %d apps", len(attacked.Apps), len(baseline.Apps))
	}
	cmp := &Comparison{
		InfectionMeasured: attacked.InfectionMeasured,
		Features:          attacked.TrojanFeatures,
	}
	var attackers, victims []float64
	for i, a := range attacked.Apps {
		b := baseline.Apps[i]
		if a.Name != b.Name || a.Role != b.Role {
			return nil, fmt.Errorf("core: compare: app %d is %s/%v vs %s/%v", i, a.Name, a.Role, b.Name, b.Role)
		}
		change := metrics.PerformanceChange(a.Theta, b.Theta)
		cmp.PerApp = append(cmp.PerApp, AppChange{
			Name: a.Name, Role: a.Role,
			ThetaAttacked: a.Theta, ThetaBaseline: b.Theta,
			Change: change,
		})
		switch a.Role {
		case RoleAttacker:
			attackers = append(attackers, change)
		case RoleVictim:
			victims = append(victims, change)
		}
	}
	cmp.Q = metrics.AttackEffectQ(attackers, victims)
	return cmp, nil
}
