package core

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/budget"
	"repro/internal/exp"
	"repro/internal/results"
	"repro/internal/trojan"
	"repro/internal/workload"
)

// This file is the table layer of the experiment drivers: every DESIGN.md
// §2 experiment has a function here that runs the underlying driver and
// returns its typed results table. The cmd tools print these tables and
// the campaign engine serializes them, so human text and machine JSON/CSV
// come from one code path.

// ConfigTableFor builds the E1 artifact: the Table I configuration of one
// chip as key/value rows.
func ConfigTableFor(cfg Config) (*results.ConfigTable, error) {
	mesh, err := cfg.Mesh()
	if err != nil {
		return nil, err
	}
	params := struct {
		Cores     int     `json:"cores"`
		Routing   string  `json:"routing"`
		Allocator string  `json:"allocator"`
		Budget    float64 `json:"budget_fraction"`
		Seed      int64   `json:"seed"`
	}{cfg.Cores, cfg.NoC.Routing.Name(), cfg.Allocator.Name(), cfg.BudgetFraction, cfg.Seed}
	t := &results.ConfigTable{
		Meta: results.NewMeta("E1", "Table I system configuration", cfg.Seed, 0, params),
		Entries: []results.ConfigEntry{
			{Key: "processors", Value: fmt.Sprintf("%d", cfg.Cores)},
			{Key: "mesh", Value: fmt.Sprintf("%dx%d 2D mesh", mesh.Width, mesh.Height)},
			{Key: "noc_vcs_buffer", Value: fmt.Sprintf("%d VCs x %d flits", cfg.NoC.VCs, cfg.NoC.BufDepth)},
			{Key: "noc_latency", Value: fmt.Sprintf("router %d cycles, link %d cycle", cfg.NoC.RouterCycles, cfg.NoC.LinkCycles)},
			{Key: "routing", Value: cfg.NoC.Routing.Name()},
			{Key: "l1_dcache", Value: "16 KB, 2-way, 32 B lines (private)"},
			{Key: "l2_cache", Value: fmt.Sprintf("64 KB slice/node, %d-cycle, MESI (shared)", cfg.Mem.L2Latency)},
			{Key: "mem_latency", Value: fmt.Sprintf("%d cycles", cfg.Mem.MemLatency)},
			{Key: "dvfs_levels", Value: fmt.Sprintf("%d (%.1f-%.1f GHz)", cfg.Power.NumLevels(), cfg.Power.Freq(0), cfg.Power.Freq(cfg.Power.NumLevels()-1))},
			{Key: "chip_budget", Value: fmt.Sprintf("%.1f W (%.0f%% of peak)", float64(cfg.ChipBudgetMW())/1000, cfg.BudgetFraction*100)},
			{Key: "allocator", Value: cfg.Allocator.Name()},
		},
	}
	return t, nil
}

// AreaPowerTableFor builds the E2 artifact: the Section III-D area/power
// accounting for the default Trojan circuit at representative fleet sizes.
func AreaPowerTableFor() *results.AreaPowerTable {
	inv := trojan.DefaultInventory()
	fleets := []struct{ hts, nodes int }{{1, 1}, {16, 256}, {60, 512}}
	params := struct {
		Comparators int `json:"comparators"`
		Registers   int `json:"registers"`
	}{inv.Comparators, inv.Registers}
	t := &results.AreaPowerTable{
		Meta:          results.NewMeta("E2", "Section III-D Trojan area/power accounting (TSMC 45 nm)", 0, 0, params),
		Transistors:   inv.TransistorEstimate(),
		HTAreaUm2:     trojan.HTAreaUm2,
		HTPowerUW:     trojan.HTPowerUW,
		RouterAreaUm2: trojan.RouterAreaUm2,
		RouterPowerUW: trojan.RouterPowerUW,
	}
	for _, f := range fleets {
		r := trojan.Report(f.hts, f.nodes)
		t.Fleets = append(t.Fleets, results.AreaPowerRow{
			HTs:      r.HTs,
			Nodes:    r.Nodes,
			AreaUm2:  r.TotalHTAreaUm2,
			AreaPct:  r.AreaFractionOfAllRouters * 100,
			PowerUW:  r.TotalHTPowerUW,
			PowerPct: r.PowerFractionOfAllRouters * 100,
		})
	}
	return t
}

// InfectionCurveTable builds a Fig 3 artifact (E3 at 64 cores, E4 at 512):
// infection rate versus HT count for the center- and corner-manager
// placements.
func InfectionCurveTable(id, title string, size int, htCounts []int, trials int, seed int64, workers int) (*results.InfectionTable, error) {
	return InfectionCurveTableCtx(context.Background(), id, title, size, htCounts, trials, seed, workers)
}

// InfectionCurveTableCtx is InfectionCurveTable with cooperative
// cancellation through the trial pools. It is the shard machinery run
// degenerately — the whole trial space as one shard — so the local and
// distributed paths produce identical bytes by construction (see
// shard.go).
func InfectionCurveTableCtx(ctx context.Context, id, title string, size int, htCounts []int, trials int, seed int64, workers int) (*results.InfectionTable, error) {
	raw, err := InfectionCurveShardCtx(ctx, size, htCounts, trials, seed, workers, 0, InfectionCurveSpace(htCounts, trials))
	if err != nil {
		return nil, err
	}
	return InfectionCurveTableFromRaw(id, title, size, htCounts, trials, seed, raw)
}

// DistributionTable builds a Fig 4 artifact (E5 with HTs = size/16, E6
// with size/8): infection rate versus system size for the three HT
// distributions with the manager at the center.
func DistributionTable(id, title string, sizes []int, denominator, trials int, seed int64, workers int) (*results.InfectionTable, error) {
	return DistributionTableCtx(context.Background(), id, title, sizes, denominator, trials, seed, workers)
}

// DistributionTableCtx is DistributionTable with cooperative cancellation
// through the trial pools. Like InfectionCurveTableCtx it is the shard
// machinery run over the whole trial space as one shard (see shard.go).
func DistributionTableCtx(ctx context.Context, id, title string, sizes []int, denominator, trials int, seed int64, workers int) (*results.InfectionTable, error) {
	raw, err := DistributionShardCtx(ctx, sizes, denominator, trials, seed, workers, 0, DistributionSpace(sizes, trials))
	if err != nil {
		return nil, err
	}
	return DistributionTableFromRaw(id, title, sizes, denominator, trials, seed, raw)
}

// effectParams fingerprints the Fig 5/6 campaign grid.
type effectParams struct {
	Cores   int       `json:"cores"`
	Mixes   []string  `json:"mixes"`
	Threads int       `json:"threads"`
	Epochs  int       `json:"epochs"`
	Targets []float64 `json:"targets"`
	Mem     bool      `json:"mem"`
	Seed    int64     `json:"seed"`
}

// EffectTables builds the E7 and E8 artifacts from one sweep: for every
// mix, Q versus target infection rate (Fig 5) and the per-application
// performance changes behind it (Fig 6). Mixes fan out over cfg.Workers;
// each mix's sweep is an independent campaign with its own baseline.
func EffectTables(cfg Config, mixNames []string, threads int, targets []float64) (*results.EffectTable, *results.AppEffectTable, error) {
	return EffectTablesCtx(context.Background(), cfg, mixNames, threads, targets)
}

// EffectTablesCtx is EffectTables with cooperative cancellation through
// the mix pool and every campaign beneath it.
func EffectTablesCtx(ctx context.Context, cfg Config, mixNames []string, threads int, targets []float64) (*results.EffectTable, *results.AppEffectTable, error) {
	series, err := exp.RunCtx(ctx, cfg.Workers, len(mixNames), func(ctx context.Context, i int) ([]QPoint, error) {
		pts, err := QVsInfectionCtx(ctx, cfg, mixNames[i], threads, targets)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", mixNames[i], err)
		}
		return pts, nil
	})
	if err != nil {
		return nil, nil, err
	}
	params := effectParams{cfg.Cores, mixNames, threads, cfg.Epochs, targets, cfg.MemTraffic, cfg.Seed}
	effect := &results.EffectTable{
		Meta: results.NewMeta("E7", "Fig 5: attack effect Q vs infection rate", cfg.Seed, 0, params),
	}
	apps := &results.AppEffectTable{
		Meta: results.NewMeta("E8", "Fig 6: per-application performance change vs infection rate", cfg.Seed, 0, params),
	}
	for mi, name := range mixNames {
		for _, p := range series[mi] {
			effect.Rows = append(effect.Rows, results.EffectRow{
				Mix:               name,
				TargetInfection:   p.TargetInfection,
				MeasuredInfection: p.MeasuredInfection,
				HTs:               p.HTs,
				Q:                 p.Q,
			})
			for _, app := range p.PerApp {
				apps.Rows = append(apps.Rows, results.AppEffectRow{
					Mix:             name,
					TargetInfection: p.TargetInfection,
					App:             app.Name,
					Role:            app.Role.String(),
					Theta:           app.ThetaAttacked,
					Change:          app.Change,
				})
			}
		}
	}
	return effect, apps, nil
}

// PlacementTableFor builds the E9 artifact: the Section V-C optimal versus
// random placement study, one row per mix.
func PlacementTableFor(cfg Config, mixNames []string, threads, nHTs, samples int, seed int64) (*results.PlacementTable, error) {
	return PlacementTableForCtx(context.Background(), cfg, mixNames, threads, nHTs, samples, seed)
}

// PlacementTableForCtx is PlacementTableFor with cooperative cancellation
// through each mix's training and shortlist pools.
func PlacementTableForCtx(ctx context.Context, cfg Config, mixNames []string, threads, nHTs, samples int, seed int64) (*results.PlacementTable, error) {
	params := struct {
		Cores   int      `json:"cores"`
		Mixes   []string `json:"mixes"`
		Threads int      `json:"threads"`
		HTs     int      `json:"hts"`
		Samples int      `json:"samples"`
		Seed    int64    `json:"seed"`
	}{cfg.Cores, mixNames, threads, nHTs, samples, seed}
	t := &results.PlacementTable{
		Meta: results.NewMeta("E9", "Section V-C: optimal vs random Trojan placement", seed, 0, params),
	}
	for _, name := range mixNames {
		study, err := OptimalVsRandomCtx(ctx, cfg, name, threads, nHTs, samples, seed)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		t.Rows = append(t.Rows, results.PlacementRow{
			Mix:            study.Mix,
			HTs:            study.HTs,
			RandomQMean:    study.RandomQMean,
			RandomQStd:     study.RandomQStd,
			OptimalQ:       study.OptimalQ,
			ImprovementPct: study.ImprovementPct,
			ModelR2:        study.ModelR2,
			Evaluated:      study.Evaluated,
		})
	}
	return t, nil
}

// AblationResult is one allocator's outcome under the standard attack.
type AblationResult struct {
	// Allocator names the budgeting algorithm.
	Allocator string
	// Q is the attack effect; Infection the measured rate it occurred at.
	Q, Infection float64
}

// AllocatorAblation runs the E10 study: the same mix and target infection
// under every budgeting algorithm, testing the paper's "irrespective of
// the power budgeting algorithm" claim. Allocators fan out over
// cfg.Workers; each gets its own chip.
func AllocatorAblation(cfg Config, mixName string, threads int, targetInfection float64) ([]AblationResult, error) {
	return AllocatorAblationCtx(context.Background(), cfg, mixName, threads, targetInfection)
}

// AllocatorAblationCtx is AllocatorAblation with cooperative cancellation
// through the allocator pool and each allocator's paired runs.
func AllocatorAblationCtx(ctx context.Context, cfg Config, mixName string, threads int, targetInfection float64) ([]AblationResult, error) {
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return nil, err
	}
	allocs := budget.All()
	return exp.RunCtx(ctx, cfg.Workers, len(allocs), func(ctx context.Context, i int) (AblationResult, error) {
		c := cfg
		c.Allocator = allocs[i]
		sys, err := NewSystem(c)
		if err != nil {
			return AblationResult{}, err
		}
		sc, err := MixScenario(mix, threads)
		if err != nil {
			return AblationResult{}, err
		}
		placement, _ := attack.ForInfectionRate(sys.Mesh(), sys.ManagerNode(), targetInfection, sys.Mesh().Nodes()/4)
		sc.Trojans = placement
		attacked, baseline, err := sys.RunPairContext(ctx, sc, nil)
		if err != nil {
			return AblationResult{}, fmt.Errorf("core: ablation %s: %w", allocs[i].Name(), err)
		}
		cmp, err := Compare(attacked, baseline)
		if err != nil {
			return AblationResult{}, err
		}
		return AblationResult{Allocator: allocs[i].Name(), Q: cmp.Q, Infection: attacked.InfectionMeasured}, nil
	})
}

// AblationTableFor builds the E10 artifact from AllocatorAblation.
func AblationTableFor(cfg Config, mixName string, threads int, targetInfection float64) (*results.AblationTable, error) {
	return AblationTableForCtx(context.Background(), cfg, mixName, threads, targetInfection)
}

// AblationTableForCtx is AblationTableFor with cooperative cancellation.
func AblationTableForCtx(ctx context.Context, cfg Config, mixName string, threads int, targetInfection float64) (*results.AblationTable, error) {
	rows, err := AllocatorAblationCtx(ctx, cfg, mixName, threads, targetInfection)
	if err != nil {
		return nil, err
	}
	params := struct {
		Cores   int     `json:"cores"`
		Mix     string  `json:"mix"`
		Threads int     `json:"threads"`
		Target  float64 `json:"target_infection"`
		Seed    int64   `json:"seed"`
	}{cfg.Cores, mixName, threads, targetInfection, cfg.Seed}
	t := &results.AblationTable{
		Meta: results.NewMeta("E10", "Allocator ablation: Q under each budgeting algorithm", cfg.Seed, 0, params),
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, results.AblationRow{Allocator: r.Allocator, Q: r.Q, Infection: r.Infection})
	}
	return t, nil
}

// nearManagerRing builds the canonical X1/X2 fleet: nHTs Trojans ringed at
// radius 2 around the global manager.
func nearManagerRing(cfg Config, nHTs int) (*System, attack.Placement, error) {
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, attack.Placement{}, err
	}
	mesh := sys.Mesh()
	placement, err := attack.RingCluster(mesh, mesh.Coord(sys.ManagerNode()), nHTs, 2, sys.ManagerNode())
	if err != nil {
		return nil, attack.Placement{}, err
	}
	return sys, placement, nil
}

// studyParams fingerprints the X1/X2 campaign setup.
type studyParams struct {
	Cores   int    `json:"cores"`
	Mix     string `json:"mix"`
	Threads int    `json:"threads"`
	Epochs  int    `json:"epochs"`
	HTs     int    `json:"hts"`
	Seed    int64  `json:"seed"`
}

// VariantTableFor builds the X1 artifact: the Section II-B DoS attack
// classes (false-data, drop, loopback) under an identical near-manager
// ring fleet of nHTs Trojans.
func VariantTableFor(cfg Config, mixName string, threads, nHTs int) (*results.VariantTable, error) {
	return VariantTableForCtx(context.Background(), cfg, mixName, threads, nHTs)
}

// VariantTableForCtx is VariantTableFor with cooperative cancellation.
func VariantTableForCtx(ctx context.Context, cfg Config, mixName string, threads, nHTs int) (*results.VariantTable, error) {
	_, placement, err := nearManagerRing(cfg, nHTs)
	if err != nil {
		return nil, err
	}
	rows, err := DoSVariantStudyCtx(ctx, cfg, mixName, threads, placement)
	if err != nil {
		return nil, err
	}
	t := &results.VariantTable{
		Meta: results.NewMeta("X1", "DoS attack-class comparison (false-data / drop / loopback)",
			cfg.Seed, 0, studyParams{cfg.Cores, mixName, threads, cfg.Epochs, nHTs, cfg.Seed}),
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, results.VariantRow{
			Mode:           r.Mode.String(),
			Q:              r.Q,
			VictimChange:   r.VictimChange,
			AttackerChange: r.AttackerChange,
			Dropped:        r.Dropped,
			Looped:         r.Looped,
		})
	}
	return t, nil
}

// DefenseTableFor builds the X2 artifact: the manager-side defense study
// under a duty-cycled attack from a near-manager ring fleet of nHTs
// Trojans.
func DefenseTableFor(cfg Config, mixName string, threads, nHTs int) (*results.DefenseTable, error) {
	return DefenseTableForCtx(context.Background(), cfg, mixName, threads, nHTs)
}

// DefenseTableForCtx is DefenseTableFor with cooperative cancellation.
func DefenseTableForCtx(ctx context.Context, cfg Config, mixName string, threads, nHTs int) (*results.DefenseTable, error) {
	_, placement, err := nearManagerRing(cfg, nHTs)
	if err != nil {
		return nil, err
	}
	rows, err := DefenseStudyCtx(ctx, cfg, mixName, threads, placement)
	if err != nil {
		return nil, err
	}
	t := &results.DefenseTable{
		Meta: results.NewMeta("X2", "Manager-side defense study (duty-cycled attack)",
			cfg.Seed, 0, studyParams{cfg.Cores, mixName, threads, cfg.Epochs, nHTs, cfg.Seed}),
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, results.DefenseRow{
			Defense:        r.Defense,
			Q:              r.Q,
			Flagged:        r.Flagged,
			Repaired:       r.Repaired,
			FalsePositives: r.FalsePositives,
		})
	}
	return t, nil
}

// CampaignTableFor builds the per-application report table of one htsim
// campaign (an attacked run against its clean baseline).
func CampaignTableFor(cfg Config, attacked *Report, cmp *Comparison) *results.CampaignTable {
	params := struct {
		Cores     int    `json:"cores"`
		Allocator string `json:"allocator"`
		Epochs    int    `json:"epochs"`
		Seed      int64  `json:"seed"`
	}{cfg.Cores, cfg.Allocator.Name(), cfg.Epochs, cfg.Seed}
	t := &results.CampaignTable{
		Meta: results.NewMeta("run", "Campaign report: per-application outcome vs clean baseline",
			cfg.Seed, 0, params),
		Q:                  cmp.Q,
		InfectionMeasured:  attacked.InfectionMeasured,
		InfectionPredicted: attacked.InfectionPredicted,
	}
	for _, app := range cmp.PerApp {
		cores := 0
		for _, a := range attacked.Apps {
			if a.Name == app.Name {
				cores = a.Cores
				break
			}
		}
		t.Rows = append(t.Rows, results.CampaignAppRow{
			App:      app.Name,
			Role:     app.Role.String(),
			Cores:    cores,
			Theta:    app.ThetaAttacked,
			Baseline: app.ThetaBaseline,
			Change:   app.Change,
		})
	}
	return t
}
