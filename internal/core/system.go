package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/budget"
	"repro/internal/defense"
	"repro/internal/exp"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/trojan"
	"repro/internal/workload"
)

// System is a configured chip ready to run campaigns. Each Run builds a
// fresh simulation state, so one System can evaluate many scenarios.
type System struct {
	cfg  Config
	mesh noc.Mesh
	gm   noc.NodeID
}

// NewSystem validates cfg and prepares a chip model.
func NewSystem(cfg Config) (*System, error) {
	if cfg.DualPathRequests && cfg.NoC.AltRouting == nil {
		cfg.NoC.AltRouting = noc.YXRouting{}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mesh, err := cfg.Mesh()
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, mesh: mesh, gm: cfg.ManagerNode(mesh)}, nil
}

// Mesh returns the chip's mesh.
func (s *System) Mesh() noc.Mesh { return s.mesh }

// ManagerNode returns the global manager's node.
func (s *System) ManagerNode() noc.NodeID { return s.gm }

// Config returns the chip configuration.
func (s *System) Config() Config { return s.cfg }

// coreState is one tile's runtime state.
type coreState struct {
	node    noc.NodeID
	app     int // index into apps, -1 when idle
	level   int // current DVFS level
	stream  *mem.AddressStream
	credit  float64 // fractional memory-op accumulator
	instrs  float64 // instructions over measured epochs
	levels  float64 // level sum over measured epochs (for AvgLevel)
	samples int
}

type appState struct {
	spec    AppSpec
	profile workload.Profile
	cores   []noc.NodeID
}

// run is the per-campaign simulation state.
type run struct {
	sys     *System
	kernel  *sim.Kernel
	net     *noc.Network
	memsys  *mem.System
	manager *budget.Manager
	fleet   *trojan.Fleet

	cores     []coreState
	apps      []appState
	infection metrics.InfectionCounter
	memLatNs  float64
	hacker    noc.NodeID
	trace     []EpochRecord
	voter     *defense.DualPathVoter // nil unless DualPathRequests

	// last seen memory stats, for per-epoch latency deltas
	prevMissCount, prevMissLat uint64
	// last seen manager counters, for per-epoch trace deltas
	prevReceived, prevTampered, prevFlagged uint64
}

var _ mem.Env = (*run)(nil)

// Now implements mem.Env.
func (r *run) Now() uint64 { return r.kernel.Now() }

// Schedule implements mem.Env.
func (r *run) Schedule(delay uint64, fn func()) { r.kernel.Schedule(delay, fn) }

// Inject implements mem.Env.
func (r *run) Inject(p *noc.Packet) error { return r.net.Inject(p) }

// Run executes one campaign and returns its report.
func (s *System) Run(sc Scenario) (*Report, error) {
	return s.RunContext(context.Background(), sc, nil)
}

// RunContext executes one campaign with cooperative cancellation and
// optional streaming observation. The context is checked between epochs
// and every few hundred cycles inside an epoch, so cancelling it — from
// an observer callback included — stops the simulation promptly and
// returns the context's error. obs, when non-nil, receives one typed
// EpochSample per budgeting epoch as the run progresses (see Observer);
// a nil obs streams nothing. A Config.Observer, when set, receives the
// same samples in addition to obs.
func (s *System) RunContext(ctx context.Context, sc Scenario, obs Observer) (*Report, error) {
	return s.runCampaign(ctx, sc, s.mergeObserver(obs))
}

// mergeObserver combines the configuration's streaming hook with a per-run
// observer; either (or both) may be nil.
func (s *System) mergeObserver(obs Observer) Observer {
	switch {
	case s.cfg.Observer == nil:
		return obs
	case obs == nil:
		return s.cfg.Observer
	default:
		return MultiObserver{s.cfg.Observer, obs}
	}
}

// runCampaign is the epoch loop behind RunContext; obs is the final,
// already-merged observer (nil streams nothing).
func (s *System) runCampaign(ctx context.Context, sc Scenario, obs Observer) (*Report, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	r, err := s.setup(sc)
	if err != nil {
		return nil, err
	}
	active := false
	for epoch := 0; epoch < s.cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		wantActive := sc.dutyActive(epoch)
		if r.fleet != nil && (epoch == 0 || wantActive != active) {
			r.broadcastConfig(sc, wantActive)
			// The attacker configures ahead of the epoch's request wave:
			// let the broadcast drain before budget traffic starts.
			r.drain()
			active = wantActive
		}
		r.sendPowerRequests(epoch)
		if err := r.runEpochCycles(ctx); err != nil {
			return nil, err
		}
		grants := r.deliverGrants()
		r.updateMemLatency()
		if epoch >= s.cfg.WarmupEpochs {
			r.accountEpoch()
		}
		r.recordEpoch(epoch, active)
		if obs != nil {
			obs.ObserveEpoch(r.sample(grants))
		}
	}
	r.drain()
	return r.report(sc)
}

// RunPair runs the scenario and its clean baseline under identical
// configuration and seeds, returning (attacked, baseline). The two runs
// are independent simulations (setup clones any stateful allocator or
// filter), so they fan out over the worker pool; Config.Workers = 1 forces
// the sequential order and produces bit-identical reports.
func (s *System) RunPair(sc Scenario) (*Report, *Report, error) {
	return s.RunPairContext(context.Background(), sc, nil)
}

// RunPairContext is RunPair with cooperative cancellation and optional
// streaming observation. Cancelling ctx aborts both runs through the
// worker pool. The observers — obs and any Config.Observer — stream the
// attacked run only: interleaving two concurrent runs' samples into one
// callback would make the stream unreadable, and the baseline's epochs
// carry no attack signal.
func (s *System) RunPairContext(ctx context.Context, sc Scenario, obs Observer) (*Report, *Report, error) {
	workers := exp.Workers(s.cfg.Workers)
	if workers > 2 {
		workers = 2
	}
	reports, err := exp.RunCtx(ctx, workers, 2, func(ctx context.Context, i int) (*Report, error) {
		if i == 0 {
			attacked, err := s.runCampaign(ctx, sc, s.mergeObserver(obs))
			if err != nil {
				return nil, fmt.Errorf("core: attacked run: %w", err)
			}
			return attacked, nil
		}
		baseline, err := s.runCampaign(ctx, sc.WithoutTrojans(), nil)
		if err != nil {
			return nil, fmt.Errorf("core: baseline run: %w", err)
		}
		return baseline, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return reports[0], reports[1], nil
}

// PlaceApps computes the scenario's thread-to-core assignment without
// running a simulation: threads are placed contiguously in scenario order,
// skipping the manager node; applications that do not fit are clipped. The
// returned slice has one core list per app. This is the exact assignment a
// Run will use.
func (s *System) PlaceApps(sc Scenario) ([][]noc.NodeID, error) {
	out := make([][]noc.NodeID, len(sc.Apps))
	next := noc.NodeID(0)
	for ai, spec := range sc.Apps {
		for t := 0; t < spec.Threads && int(next) < s.mesh.Nodes(); t++ {
			if next == s.gm {
				next++
			}
			if int(next) >= s.mesh.Nodes() {
				break
			}
			out[ai] = append(out[ai], next)
			next++
		}
		if len(out[ai]) == 0 {
			return nil, fmt.Errorf("core: no cores left for app %s", spec.Name)
		}
	}
	return out, nil
}

// dutyActive evaluates the activation duty cycle at an epoch.
func (s Scenario) dutyActive(epoch int) bool {
	if !s.HasTrojans() {
		return false
	}
	if epoch < s.ActivateAfterEpochs {
		return false
	}
	epoch -= s.ActivateAfterEpochs
	if s.DutyOnEpochs == 0 && s.DutyOffEpochs == 0 {
		return true
	}
	period := s.DutyOnEpochs + s.DutyOffEpochs
	return epoch%period < s.DutyOnEpochs
}

// setup builds the simulation state for one campaign.
func (s *System) setup(sc Scenario) (*run, error) {
	kernel := sim.NewKernel(s.cfg.Seed)
	net, err := noc.New(s.mesh, s.cfg.NoC)
	if err != nil {
		return nil, err
	}
	// Stateful allocators and filters are cloned per run: runs stay
	// independent (no cross-run contamination between an attacked run and
	// its baseline) and RunPair may execute them concurrently.
	manager, err := budget.NewManager(s.gm, budget.CloneAllocator(s.cfg.Allocator), s.cfg.ChipBudgetMW())
	if err != nil {
		return nil, err
	}
	r := &run{
		sys:      s,
		kernel:   kernel,
		net:      net,
		manager:  manager,
		memLatNs: s.cfg.BaselineMemLatencyNs,
		cores:    make([]coreState, s.mesh.Nodes()),
	}
	if s.cfg.MemTraffic {
		r.memsys, err = mem.NewSystem(s.mesh, s.cfg.Mem, r)
		if err != nil {
			return nil, err
		}
	}

	// Contiguous thread placement, attackers first in scenario order,
	// skipping the manager node. Applications that do not fit are clipped.
	for i := range r.cores {
		r.cores[i] = coreState{node: noc.NodeID(i), app: -1}
	}
	placed, err := s.PlaceApps(sc)
	if err != nil {
		return nil, err
	}
	for ai, spec := range sc.Apps {
		profile, err := workload.ByName(spec.Name)
		if err != nil {
			return nil, err
		}
		app := appState{spec: spec, profile: profile, cores: placed[ai]}
		for t, node := range app.cores {
			cs := &r.cores[node]
			cs.app = ai
			cs.stream = mem.NewAddressStream(ai, t, profile.WorkingSetLines, profile.WriteFraction,
				rand.New(rand.NewSource(s.cfg.Seed+int64(node)*7919+int64(ai))))
		}
		r.apps = append(r.apps, app)
	}

	// The hacker's control core: the first node that is not the manager.
	r.hacker = 0
	if r.hacker == s.gm {
		r.hacker = 1
	}

	// Manager-side OS knowledge and initial DVFS levels.
	freqs := make([]float64, s.cfg.Power.NumLevels())
	levelsMW := make([]uint32, s.cfg.Power.NumLevels())
	for i := range freqs {
		freqs[i] = s.cfg.Power.Freq(i)
		levelsMW[i] = s.cfg.Power.PowerMW(i)
	}
	for ai := range r.apps {
		app := &r.apps[ai]
		phi := app.profile.Sensitivity(freqs, s.cfg.BaselineMemLatencyNs)
		values := make([]float64, len(freqs))
		for i, f := range freqs {
			values[i] = app.profile.Throughput(f, s.cfg.BaselineMemLatencyNs)
		}
		for _, c := range app.cores {
			// Cores boot at the lowest DVFS level and ramp up through the
			// budgeting protocol. This matters for the packet-drop attack
			// class: a core whose requests never reach the manager stays
			// at the floor — a genuine denial of service.
			r.cores[c].level = 0
			manager.SetCoreInfo(c, budget.CoreInfo{Sensitivity: phi, LevelsMW: levelsMW, LevelValues: values})
		}
	}

	// Trojan fleet and NoC delivery plumbing.
	if sc.HasTrojans() {
		strategy := sc.Strategy
		if strategy == nil {
			strategy = trojan.DefaultStrategy()
		}
		r.fleet, err = trojan.NewFleet(sc.Trojans.Nodes, strategy)
		if err != nil {
			return nil, err
		}
		if sc.Mode != 0 {
			if err := r.fleet.SetMode(sc.Mode); err != nil {
				return nil, err
			}
		}
		net.SetInspector(r.fleet)
	}
	if s.cfg.Filter != nil {
		manager.SetFilter(budget.CloneFilter(s.cfg.Filter))
	}
	if s.cfg.DualPathRequests {
		r.voter = defense.NewDualPathVoter()
	}
	for id := noc.NodeID(0); id < noc.NodeID(s.mesh.Nodes()); id++ {
		id := id
		net.Attach(id, func(p *noc.Packet) { r.handlePacket(id, p) })
	}
	return r, nil
}

// handlePacket dispatches a delivered packet at node id.
func (r *run) handlePacket(id noc.NodeID, p *noc.Packet) {
	switch p.Type {
	case noc.TypePowerReq:
		if id == r.sys.gm {
			r.infection.Observe(p)
			if r.voter != nil {
				final, tamperedAny, ready, _ := r.voter.Observe(p.Src, p.Payload, p.Tampered)
				if ready {
					r.manager.HandleRequest(&noc.Packet{
						Src: p.Src, Dst: r.sys.gm, Type: noc.TypePowerReq,
						Payload: final, Tampered: tamperedAny,
					})
				}
				return
			}
			r.manager.HandleRequest(p)
		}
	case noc.TypePowerGrant:
		level, _ := r.sys.cfg.Power.LevelForBudget(float64(p.Payload) / 1000)
		r.cores[id].level = level
	case noc.TypeConfigCmd:
		// Endpoint cores ignore configuration packets; the Trojans snooped
		// them in transit.
	default:
		if r.memsys != nil {
			r.memsys.HandlePacket(p)
		}
	}
}

// broadcastConfig sends the Fig 1(b) CONFIG_CMD from the hacker's core to
// every node, carrying the manager ID, the activation signal, and the
// attacker applications' core ranges in the options field.
func (r *run) broadcastConfig(sc Scenario, active bool) {
	var ranges []uint32
	for _, app := range r.apps {
		if app.spec.Role != RoleAttacker || len(app.cores) == 0 {
			continue
		}
		// Contiguous placement: one (base, count) per attacker app.
		ranges = append(ranges, uint32(app.cores[0]), uint32(len(app.cores)))
	}
	for id := noc.NodeID(0); id < noc.NodeID(r.sys.mesh.Nodes()); id++ {
		p := &noc.Packet{
			Src: r.hacker, Dst: id, Type: noc.TypeConfigCmd,
			Payload: noc.ConfigWord(r.sys.gm, active),
			Options: ranges,
		}
		if err := r.net.Inject(p); err != nil {
			panic(fmt.Sprintf("core: config broadcast: %v", err))
		}
	}
}

// sendPowerRequests has every application core solicit its phase-dependent
// power demand for the next epoch — twice, over diverse routes, when the
// dual-path defense is enabled.
func (r *run) sendPowerRequests(epoch int) {
	pw := r.sys.cfg.Power
	peak := pw.PowerMW(pw.NumLevels() - 1)
	mid := pw.PowerMW(pw.NumLevels() / 2)
	classes := 1
	if r.voter != nil {
		classes = 2
	}
	for _, app := range r.apps {
		ask := peak
		if period := app.spec.PhasePeriodEpochs; period > 0 && epoch%period >= (period+1)/2 {
			// Low-demand phase: the application genuinely needs less.
			ask = mid
		}
		for _, c := range app.cores {
			for class := 0; class < classes; class++ {
				p := &noc.Packet{Src: c, Dst: r.sys.gm, Type: noc.TypePowerReq, Payload: ask, Class: class}
				if err := r.net.Inject(p); err != nil {
					panic(fmt.Sprintf("core: power request: %v", err))
				}
			}
		}
	}
}

// runEpochCycles advances the chip by one epoch, generating cache traffic
// along the way. The context is polled every 512 cycles so cancellation
// interrupts even very long epochs promptly.
func (r *run) runEpochCycles(ctx context.Context) error {
	cfg := r.sys.cfg
	for c := uint64(0); c < cfg.EpochCycles; c++ {
		if c&511 == 511 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if r.memsys != nil {
			r.generateTraffic()
		}
		r.net.Step()
		if err := r.kernel.Run(r.net.Now()); err != nil {
			panic(fmt.Sprintf("core: kernel: %v", err))
		}
	}
	return nil
}

// generateTraffic lets each application core issue memory operations at its
// profile-driven rate (one NoC cycle is one nanosecond).
func (r *run) generateTraffic() {
	for _, app := range r.apps {
		for _, cid := range app.cores {
			cs := &r.cores[cid]
			f := r.sys.cfg.Power.Freq(cs.level)
			cs.credit += app.profile.MemOpsPerNs(f, r.memLatNs)
			for cs.credit >= 1 {
				addr, write := cs.stream.Next()
				if !r.memsys.Issue(cid, addr, write) {
					break // MSHRs full: core stalls, credit carries over
				}
				cs.credit--
			}
		}
	}
}

// deliverGrants runs the manager's epoch allocation, ships the grants,
// and returns how many were issued.
func (r *run) deliverGrants() int {
	if r.voter != nil {
		// Copies whose duplicates were destroyed still feed the allocator
		// (the core must not starve), and count as anomalies.
		for _, left := range r.voter.Flush() {
			r.manager.HandleRequest(&noc.Packet{
				Src: left.Core, Dst: r.sys.gm, Type: noc.TypePowerReq,
				Payload: left.Value, Tampered: left.Tampered,
			})
		}
	}
	grants := r.manager.AllocateEpoch()
	for _, g := range grants {
		p := &noc.Packet{Src: r.sys.gm, Dst: g.Core, Type: noc.TypePowerGrant, Payload: g.GrantMW}
		if err := r.net.Inject(p); err != nil {
			panic(fmt.Sprintf("core: grant: %v", err))
		}
	}
	return len(grants)
}

// updateMemLatency folds the epoch's observed miss latency into the IPC
// feedback loop.
func (r *run) updateMemLatency() {
	if r.memsys == nil {
		return
	}
	var count, lat uint64
	for id := noc.NodeID(0); id < noc.NodeID(r.sys.mesh.Nodes()); id++ {
		st := r.memsys.Stats(id)
		count += st.MissesCompleted
		lat += st.MissLatencySum
	}
	dc, dl := count-r.prevMissCount, lat-r.prevMissLat
	r.prevMissCount, r.prevMissLat = count, lat
	if dc > 0 {
		r.memLatNs = float64(dl) / float64(dc)
	}
}

// accountEpoch accrues each core's instruction count for the epoch at its
// current DVFS level and the current memory-latency estimate.
func (r *run) accountEpoch() {
	ns := float64(r.sys.cfg.EpochCycles)
	for _, app := range r.apps {
		for _, cid := range app.cores {
			cs := &r.cores[cid]
			f := r.sys.cfg.Power.Freq(cs.level)
			cs.instrs += ns * app.profile.Throughput(f, r.memLatNs)
			cs.levels += float64(cs.level)
			cs.samples++
		}
	}
}

// recordEpoch appends one trace record.
func (r *run) recordEpoch(epoch int, active bool) {
	rec := EpochRecord{
		Epoch:            epoch,
		TrojanActive:     active,
		RequestsReceived: r.manager.ReceivedTotal - r.prevReceived,
		RequestsTampered: r.manager.TamperedTotal - r.prevTampered,
		MemLatencyNs:     r.memLatNs,
	}
	r.prevReceived = r.manager.ReceivedTotal
	r.prevTampered = r.manager.TamperedTotal
	var nA, nV int
	for _, app := range r.apps {
		for _, cid := range app.cores {
			switch app.spec.Role {
			case RoleAttacker:
				rec.AttackerMeanLevel += float64(r.cores[cid].level)
				nA++
			case RoleVictim:
				rec.VictimMeanLevel += float64(r.cores[cid].level)
				nV++
			}
		}
	}
	if nA > 0 {
		rec.AttackerMeanLevel /= float64(nA)
	}
	if nV > 0 {
		rec.VictimMeanLevel /= float64(nV)
	}
	r.trace = append(r.trace, rec)
}

// drain lets in-flight packets settle after the last epoch.
func (r *run) drain() {
	limit := 5 * r.sys.cfg.EpochCycles
	for c := uint64(0); c < limit && r.net.Busy(); c++ {
		r.net.Step()
		if err := r.kernel.Run(r.net.Now()); err != nil {
			panic(fmt.Sprintf("core: kernel: %v", err))
		}
	}
}
