package core

import (
	"errors"
	"fmt"

	"repro/internal/attack"
	"repro/internal/trojan"
	"repro/internal/workload"
)

// Role classifies an application in a campaign.
type Role int

// Application roles per Table III.
const (
	// RoleNeutral marks bystander applications.
	RoleNeutral Role = iota + 1
	// RoleAttacker marks the hacker's applications — their cores are
	// registered as agents with the Trojans.
	RoleAttacker
	// RoleVictim marks the legitimate applications the attack targets.
	RoleVictim
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleNeutral:
		return "neutral"
	case RoleAttacker:
		return "attacker"
	case RoleVictim:
		return "victim"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// AppSpec is one application in a campaign.
type AppSpec struct {
	// Name must be a Table II benchmark.
	Name string
	// Threads is the number of cores the application occupies.
	Threads int
	// Role classifies the application.
	Role Role
	// PhasePeriodEpochs gives the application time-varying demand: for the
	// first half of each period its cores request peak power, for the
	// second half only a mid-level amount (real applications alternate
	// compute and I/O phases). Zero means steady peak demand. Legitimate
	// phase transitions are exactly what history-based tamper detection
	// can confuse with an attack — the defense study measures that false
	// positive rate.
	PhasePeriodEpochs int
}

// Scenario describes one attack campaign over a configured chip.
type Scenario struct {
	// Apps are placed on cores contiguously in slice order, skipping the
	// manager node.
	Apps []AppSpec
	// Trojans are the infected routers; an empty placement runs the clean
	// baseline.
	Trojans attack.Placement
	// Strategy is the Trojans' payload rewrite; nil selects the default
	// scale-down strategy.
	Strategy trojan.Strategy
	// Mode selects the Section II-B attack class; zero means the paper's
	// false-data attack.
	Mode trojan.Mode
	// DutyOnEpochs and DutyOffEpochs optionally duty-cycle the Trojan
	// activation signal: ON for DutyOnEpochs, OFF for DutyOffEpochs,
	// repeating. Both zero means always on.
	DutyOnEpochs, DutyOffEpochs int
	// ActivateAfterEpochs keeps the Trojans dormant for the first K
	// epochs: the hacker's agents send the first activating CONFIG_CMD
	// broadcast only once the chip has been running — which also gives
	// history-based detectors a clean observation window.
	ActivateAfterEpochs int
}

// MixScenario builds the standard campaign for a Table III mix: every
// application gets threads cores, attackers first (matching the contiguous
// agent ranges the Trojans are configured with).
func MixScenario(mix workload.Mix, threads int) (Scenario, error) {
	if err := mix.Validate(); err != nil {
		return Scenario{}, err
	}
	if threads < 1 {
		return Scenario{}, errors.New("core: threads must be positive")
	}
	var sc Scenario
	for _, name := range mix.Attackers {
		sc.Apps = append(sc.Apps, AppSpec{Name: name, Threads: threads, Role: RoleAttacker})
	}
	for _, name := range mix.Victims {
		sc.Apps = append(sc.Apps, AppSpec{Name: name, Threads: threads, Role: RoleVictim})
	}
	return sc, nil
}

// Validate reports scenario errors.
func (s Scenario) Validate() error {
	if len(s.Apps) == 0 {
		return errors.New("core: scenario needs at least one application")
	}
	for _, a := range s.Apps {
		if _, err := workload.ByName(a.Name); err != nil {
			return err
		}
		if a.Threads < 1 {
			return fmt.Errorf("core: app %s needs at least one thread", a.Name)
		}
		if a.Role != RoleNeutral && a.Role != RoleAttacker && a.Role != RoleVictim {
			return fmt.Errorf("core: app %s has invalid role", a.Name)
		}
		if a.PhasePeriodEpochs < 0 {
			return fmt.Errorf("core: app %s has negative phase period", a.Name)
		}
	}
	if s.DutyOnEpochs < 0 || s.DutyOffEpochs < 0 || s.ActivateAfterEpochs < 0 {
		return errors.New("core: duty cycle epochs must be nonnegative")
	}
	if s.DutyOffEpochs > 0 && s.DutyOnEpochs == 0 {
		return errors.New("core: duty cycle needs a positive ON phase")
	}
	switch s.Mode {
	case 0, trojan.ModeFalseData, trojan.ModeDrop, trojan.ModeLoopback:
	default:
		return fmt.Errorf("core: invalid trojan mode %d", int(s.Mode))
	}
	return nil
}

// HasTrojans reports whether the scenario implants any Trojans.
func (s Scenario) HasTrojans() bool { return s.Trojans.Size() > 0 }

// WithoutTrojans returns the clean-baseline copy of the scenario.
func (s Scenario) WithoutTrojans() Scenario {
	c := s
	c.Trojans = attack.Placement{}
	return c
}
