package core

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/budget"
	"repro/internal/defense"
	"repro/internal/noc"
	"repro/internal/trojan"
)

func campaignPlacement(t *testing.T, s *System) attack.Placement {
	t.Helper()
	mesh := s.Mesh()
	p, err := attack.RingCluster(mesh, mesh.Coord(s.ManagerNode()), 6, 1, s.ManagerNode())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDoSVariantStudy(t *testing.T) {
	cfg := fastConfig()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	placement := campaignPlacement(t, sys)
	results, err := DoSVariantStudy(cfg, "mix-1", 16, placement)
	if err != nil {
		t.Fatalf("DoSVariantStudy: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("variants = %d, want 3", len(results))
	}
	byMode := make(map[trojan.Mode]VariantResult, 3)
	for _, r := range results {
		byMode[r.Mode] = r
	}
	fd := byMode[trojan.ModeFalseData]
	dr := byMode[trojan.ModeDrop]
	lb := byMode[trojan.ModeLoopback]

	// Every class must hurt the victims.
	for _, r := range results {
		if r.VictimChange >= 1 {
			t.Errorf("%v: victim Θ = %v, want < 1", r.Mode, r.VictimChange)
		}
		if r.Q <= 1 {
			t.Errorf("%v: Q = %v, want > 1", r.Mode, r.Q)
		}
	}
	// Only the false-data class rewrites payloads; only drop destroys
	// packets; only loopback bounces them.
	if fd.Dropped != 0 || fd.Looped != 0 {
		t.Errorf("false-data dropped/looped = %d/%d, want 0/0", fd.Dropped, fd.Looped)
	}
	if dr.Dropped == 0 {
		t.Error("drop variant destroyed nothing")
	}
	if lb.Looped == 0 {
		t.Error("loopback variant bounced nothing")
	}
}

func TestDoSVariantStudyUnknownMix(t *testing.T) {
	cfg := fastConfig()
	sys, _ := NewSystem(cfg)
	if _, err := DoSVariantStudy(cfg, "mix-9", 16, campaignPlacement(t, sys)); err == nil {
		t.Error("unknown mix must fail")
	}
}

func TestScenarioModeValidation(t *testing.T) {
	sc := Scenario{Apps: []AppSpec{{Name: "vips", Threads: 1, Role: RoleVictim}}, Mode: trojan.Mode(77)}
	if err := sc.Validate(); err == nil {
		t.Error("invalid mode must fail validation")
	}
	sc.Mode = trojan.ModeDrop
	if err := sc.Validate(); err != nil {
		t.Errorf("drop mode must validate: %v", err)
	}
}

func TestDropModeEndToEnd(t *testing.T) {
	cfg := fastConfig()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := fastScenario(t, campaignPlacement(t, sys))
	sc.Mode = trojan.ModeDrop
	rep, err := sys.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Net.DroppedPackets == 0 {
		t.Fatal("drop campaign destroyed no packets")
	}
	if rep.Trojan.Dropped == 0 {
		t.Fatal("trojan stats recorded no drops")
	}
	// Dropped requests never reach the manager, so fewer POWER_REQ arrive
	// than in a clean run (32 cores × 6 epochs).
	if got := rep.Net.DeliveredBy[noc.TypePowerReq]; got >= 32*6 {
		t.Errorf("delivered POWER_REQ = %d, want < %d", got, 32*6)
	}
}

func TestDefenseStudyReducesQ(t *testing.T) {
	cfg := fastConfig()
	cfg.Epochs = 8 // two full ON/OFF duty periods
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	placement := campaignPlacement(t, sys)
	results, err := DefenseStudy(cfg, "mix-1", 16, placement)
	if err != nil {
		t.Fatalf("DefenseStudy: %v", err)
	}
	byName := make(map[string]DefenseResult, len(results))
	for _, r := range results {
		byName[r.Defense] = r
	}
	undefended := byName["none"]
	if undefended.Q <= 1 {
		t.Fatalf("undefended Q = %v, want > 1 (otherwise nothing to defend)", undefended.Q)
	}
	if undefended.Flagged != 0 {
		t.Error("no filter must mean no flags")
	}
	combined := byName["both"]
	if combined.Q >= undefended.Q {
		t.Errorf("combined defense Q = %v not below undefended %v", combined.Q, undefended.Q)
	}
	if combined.Flagged == 0 || combined.Repaired == 0 {
		t.Errorf("combined defense flagged/repaired = %d/%d, want > 0", combined.Flagged, combined.Repaired)
	}
	history := byName["history-guard"]
	if history.Repaired == 0 {
		t.Error("history guard must catch the duty-cycle transitions")
	}
}

func TestDualPathDefenseEndToEnd(t *testing.T) {
	// A Trojan at (2,2) with the manager at (3,3): victim cores on row 2
	// west of it are tampered on their XY paths but not their YX paths, so
	// the voter sees mismatches and repairs them. (An HT at (2,3) would sit
	// on the row-3 victims' *common* path prefix — the documented blind
	// spot — and the defense would change nothing.)
	cfg := fastConfig()
	mesh, _ := cfg.Mesh()
	ht := mesh.ID(noc.Coord{X: 2, Y: 2})
	placement := attack.Placement{Nodes: []noc.NodeID{ht}}

	undefendedCfg := cfg
	sysU, err := NewSystem(undefendedCfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := fastScenario(t, placement)
	attackedU, baselineU, err := sysU.RunPair(sc)
	if err != nil {
		t.Fatal(err)
	}
	cmpU, err := Compare(attackedU, baselineU)
	if err != nil {
		t.Fatal(err)
	}

	defendedCfg := cfg
	defendedCfg.DualPathRequests = true
	sysD, err := NewSystem(defendedCfg)
	if err != nil {
		t.Fatal(err)
	}
	attackedD, baselineD, err := sysD.RunPair(sc)
	if err != nil {
		t.Fatal(err)
	}
	cmpD, err := Compare(attackedD, baselineD)
	if err != nil {
		t.Fatal(err)
	}

	if attackedD.DualPathPairs == 0 {
		t.Fatal("voter paired nothing")
	}
	if attackedD.DualPathMismatches == 0 {
		t.Fatal("voter detected no mismatches despite an off-axis Trojan")
	}
	if cmpD.Q >= cmpU.Q && cmpU.Q > 1.01 {
		t.Errorf("dual-path Q = %v not below undefended %v", cmpD.Q, cmpU.Q)
	}
}

func TestDualPathCleanRunNoMismatches(t *testing.T) {
	cfg := fastConfig()
	cfg.DualPathRequests = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Run(fastScenario(t, attack.Placement{}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.DualPathPairs == 0 {
		t.Fatal("clean dual-path run paired nothing")
	}
	if rep.DualPathMismatches != 0 || rep.DualPathUnpaired != 0 {
		t.Errorf("clean run mismatches/unpaired = %d/%d, want 0/0",
			rep.DualPathMismatches, rep.DualPathUnpaired)
	}
	// Both copies arrive per core per epoch: pairs = 32 cores x 6 epochs.
	if rep.DualPathPairs != 32*6 {
		t.Errorf("pairs = %d, want %d", rep.DualPathPairs, 32*6)
	}
}

func TestDualPathAgainstDropTrojan(t *testing.T) {
	// A dropping Trojan destroys one copy: the survivor is unpaired, gets
	// flushed to the allocator, and the loss itself is counted.
	cfg := fastConfig()
	cfg.DualPathRequests = true
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mesh := sys.Mesh()
	ht := mesh.ID(noc.Coord{X: 2, Y: 3})
	sc := fastScenario(t, attack.Placement{Nodes: []noc.NodeID{ht}})
	sc.Mode = trojan.ModeDrop
	rep, err := sys.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DualPathUnpaired == 0 {
		t.Fatal("dropped copies must surface as unpaired")
	}
	if rep.Net.DroppedPackets == 0 {
		t.Fatal("drop trojan destroyed nothing")
	}
}

func TestPhasedDemandChangesRequests(t *testing.T) {
	cfg := fastConfig()
	cfg.Epochs = 6
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Apps: []AppSpec{
		{Name: "barnes", Threads: 16, Role: RoleAttacker, PhasePeriodEpochs: 2},
		{Name: "blackscholes", Threads: 16, Role: RoleVictim},
	}}
	rep, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	// With period 2, barnes alternates peak/mid demand per epoch; the
	// attacker's mean DVFS level must oscillate in the trace while the
	// steady victim's does not drop.
	varied := false
	for i := 1; i < len(rep.Epochs); i++ {
		if rep.Epochs[i].AttackerMeanLevel != rep.Epochs[i-1].AttackerMeanLevel {
			varied = true
		}
	}
	if !varied {
		t.Error("phased application's level never varied")
	}
}

func TestPhaseValidation(t *testing.T) {
	sc := Scenario{Apps: []AppSpec{
		{Name: "vips", Threads: 1, Role: RoleVictim, PhasePeriodEpochs: -2},
	}}
	if err := sc.Validate(); err == nil {
		t.Error("negative phase period must fail")
	}
}

func TestHistoryGuardFalsePositivesOnPhases(t *testing.T) {
	// A phased workload with NO Trojans: a tight history guard flags the
	// legitimate phase transitions — pure false positives.
	cfg := fastConfig()
	cfg.Epochs = 8
	cfg.Filter = defenseHistoryGuard()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Apps: []AppSpec{
		{Name: "barnes", Threads: 16, Role: RoleAttacker, PhasePeriodEpochs: 2},
		{Name: "blackscholes", Threads: 16, Role: RoleVictim},
	}}
	rep, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlaggedRequests == 0 {
		t.Fatal("tight guard must flag legitimate phase transitions")
	}
	if rep.RepairedTampered != 0 {
		t.Fatal("no trojans: every flag is a false positive")
	}
}

// defenseHistoryGuard builds a tight history guard for the false-positive
// tests without importing defense at the top of every test file.
func defenseHistoryGuard() budget.RequestFilter {
	return defense.NewHistoryGuard(0.3, 0.4)
}
