package core

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/defense"
	"repro/internal/exp"
	"repro/internal/trojan"
	"repro/internal/workload"
)

// This file extends the paper's evaluation with the two studies its text
// motivates but does not run: a comparison of the Section II-B DoS attack
// classes on identical hardware, and an evaluation of manager-side
// detection/protection (the conclusion's explicit call for future work).

// VariantResult is one row of the DoS-variant comparison.
type VariantResult struct {
	// Mode is the attack class.
	Mode trojan.Mode
	// Q is the Definition 3 attack effect.
	Q float64
	// VictimChange is the mean victim Θ.
	VictimChange float64
	// AttackerChange is the mean attacker Θ.
	AttackerChange float64
	// Dropped and Looped count destroyed/bounced packets.
	Dropped, Looped uint64
}

// DoSVariantStudy runs the same mix, placement, and chip under each of the
// three Section II-B attack classes implemented by the Trojan, comparing
// their attack effects. The false-data attack is the paper's contribution;
// drop and loopback are the taxonomy baselines. The three campaigns share
// one clean baseline and fan out over cfg.Workers.
func DoSVariantStudy(cfg Config, mixName string, threads int, placement attack.Placement) ([]VariantResult, error) {
	return DoSVariantStudyCtx(context.Background(), cfg, mixName, threads, placement)
}

// DoSVariantStudyCtx is DoSVariantStudy with cooperative cancellation
// through the variant pool and each variant's campaign.
func DoSVariantStudyCtx(ctx context.Context, cfg Config, mixName string, threads int, placement attack.Placement) ([]VariantResult, error) {
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return nil, err
	}
	sc, err := MixScenario(mix, threads)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	baseline, err := sys.RunContext(ctx, sc.WithoutTrojans(), nil)
	if err != nil {
		return nil, err
	}
	modes := trojan.Modes.All()
	return exp.RunCtx(ctx, cfg.Workers, len(modes), func(ctx context.Context, i int) (VariantResult, error) {
		mode := modes[i]
		vsc := sc
		vsc.Trojans = placement
		vsc.Mode = mode
		attacked, err := sys.RunContext(ctx, vsc, nil)
		if err != nil {
			return VariantResult{}, fmt.Errorf("core: variant %v: %w", mode, err)
		}
		cmp, err := Compare(attacked, baseline)
		if err != nil {
			return VariantResult{}, err
		}
		res := VariantResult{
			Mode:    mode,
			Q:       cmp.Q,
			Dropped: attacked.Net.DroppedPackets,
			Looped:  attacked.Net.LoopedBack,
		}
		var nV, nA int
		for _, app := range cmp.PerApp {
			switch app.Role {
			case RoleVictim:
				res.VictimChange += app.Change
				nV++
			case RoleAttacker:
				res.AttackerChange += app.Change
				nA++
			}
		}
		if nV > 0 {
			res.VictimChange /= float64(nV)
		}
		if nA > 0 {
			res.AttackerChange /= float64(nA)
		}
		return res, nil
	})
}

// DefenseResult is one row of the defense study.
type DefenseResult struct {
	// Defense names the filter configuration ("none" for the undefended
	// chip).
	Defense string
	// Q is the attack effect that survives the defense.
	Q float64
	// Flagged counts requests the filter marked suspect.
	Flagged uint64
	// Repaired counts flagged requests that really were tampered.
	Repaired uint64
	// FalsePositives counts flags raised on untampered requests — the cost
	// of anomaly detection on workloads with legitimate demand phases.
	FalsePositives uint64
}

// DefenseStudy measures how much of the attack effect each manager-side
// request filter removes, under the same campaign. The attack duty-cycles
// its activation (the paper's stealth recommendation), which is exactly
// the transition signature history-based detection needs.
func DefenseStudy(cfg Config, mixName string, threads int, placement attack.Placement) ([]DefenseResult, error) {
	return DefenseStudyCtx(context.Background(), cfg, mixName, threads, placement)
}

// DefenseStudyCtx is DefenseStudy with cooperative cancellation through
// the per-defense pool and each configuration's paired runs.
func DefenseStudyCtx(ctx context.Context, cfg Config, mixName string, threads int, placement attack.Placement) ([]DefenseResult, error) {
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return nil, err
	}
	baseScenario, err := MixScenario(mix, threads)
	if err != nil {
		return nil, err
	}
	baseScenario.Trojans = placement
	// The Trojans stay dormant for two epochs — detectors get an honest
	// observation window before the first activation, which is also the
	// realistic deployment order (the chip boots clean, then the hacker's
	// agents send the activating broadcast).
	baseScenario.ActivateAfterEpochs = 2
	baseScenario.DutyOnEpochs, baseScenario.DutyOffEpochs = 2, 2

	levelsMW := make([]uint32, cfg.Power.NumLevels())
	for i := range levelsMW {
		levelsMW[i] = cfg.Power.PowerMW(i)
	}
	names := defense.Registry.Names()
	// Every registered defense configuration is an independent chip: fan
	// out over cfg.Workers. Stateful filters are cloned per run inside
	// setup, so concurrent configurations never share detector state.
	return exp.RunCtx(ctx, cfg.Workers, len(names), func(ctx context.Context, i int) (DefenseResult, error) {
		name := names[i]
		dcfg, err := defense.ByName(name)
		if err != nil {
			return DefenseResult{}, err
		}
		c := cfg
		c.Filter = nil
		if dcfg.Filter != nil {
			if c.Filter, err = dcfg.Filter(levelsMW); err != nil {
				return DefenseResult{}, err
			}
		}
		c.DualPathRequests = dcfg.DualPath
		sys, err := NewSystem(c)
		if err != nil {
			return DefenseResult{}, err
		}
		attacked, baseline, err := sys.RunPairContext(ctx, baseScenario, nil)
		if err != nil {
			return DefenseResult{}, fmt.Errorf("core: defense %s: %w", name, err)
		}
		cmp, err := Compare(attacked, baseline)
		if err != nil {
			return DefenseResult{}, err
		}
		res := DefenseResult{
			Defense:        name,
			Q:              cmp.Q,
			Flagged:        attacked.FlaggedRequests,
			Repaired:       attacked.RepairedTampered,
			FalsePositives: attacked.FlaggedRequests - attacked.RepairedTampered,
		}
		if dcfg.DualPath {
			res.Flagged += attacked.DualPathMismatches
		}
		return res, nil
	})
}
