// Package core assembles the full chip model — tiled many-core, NoC, cache
// hierarchy, DVFS power budgeting, and implanted hardware Trojans — and
// runs epoch-driven attack campaigns that produce the paper's measurements
// (θ, Θ, Q, infection rate). It is the public façade the examples, command
// line tools, and benchmarks build on.
package core

import (
	"errors"
	"fmt"

	"repro/internal/budget"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/power"
)

// GMPlacement selects where the global manager core sits.
type GMPlacement int

// Manager placements studied in Fig 3.
const (
	// GMCenter puts the manager at the mesh center (default).
	GMCenter GMPlacement = iota + 1
	// GMCorner puts the manager at the (0,0) corner.
	GMCorner
)

// Config describes one simulated chip. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Cores is the number of tiles (Table I: 256).
	Cores int
	// Topology names the registered network topology the cores are laid
	// out on ("mesh", "torus"); empty selects the paper's 2D mesh. A
	// wraparound topology needs a wrap-aware routing algorithm (for
	// example noc.TorusRouting) to actually use its extra links.
	Topology string
	// NoC is the on-chip network configuration (Table I defaults).
	NoC noc.Config
	// Mem is the cache-hierarchy configuration (Table I defaults).
	Mem mem.Config
	// MemTraffic enables the cache-driven background traffic substrate.
	// Disabling it runs budget-protocol-only simulations (much faster; the
	// infection experiments of Fig 3/4 do not need memory traffic).
	MemTraffic bool
	// Power is the per-core DVFS/power model.
	Power *power.Model
	// BudgetFraction sets the chip budget as a fraction of the sum of
	// all cores' peak power. The paper's premise is that this is < 1.
	BudgetFraction float64
	// Allocator is the global manager's allocation algorithm.
	Allocator budget.Allocator
	// Filter is an optional manager-side request-integrity defense (see
	// the defense package); nil disables filtering.
	Filter budget.RequestFilter
	// DualPathRequests enables route-diverse request verification: every
	// core sends its power request twice, over XY and YX routing classes,
	// and the manager's voter compares the copies (defense package). When
	// set and NoC.AltRouting is nil, NewSystem installs YX automatically.
	DualPathRequests bool
	// GM selects the manager's position (Fig 3 compares center vs corner).
	GM GMPlacement
	// EpochCycles is the power-budgeting epoch length in NoC cycles.
	EpochCycles uint64
	// Epochs is the number of budgeting epochs simulated.
	Epochs int
	// WarmupEpochs are excluded from performance accounting.
	WarmupEpochs int
	// BaselineMemLatencyNs seeds the IPC model before the first measured
	// epoch (and is used throughout when MemTraffic is off).
	BaselineMemLatencyNs float64
	// Seed drives every random stream in the simulation.
	Seed int64
	// Workers caps the worker pool used by the fan-out experiment drivers
	// (OptimalVsRandom, DoSVariantStudy, DefenseStudy) and by RunPair's
	// paired attacked/baseline runs. Zero or negative means one worker per
	// available CPU; 1 forces sequential execution. Results are
	// bit-identical for every setting — trials derive their random streams
	// from (Seed, trial index), never from a shared RNG.
	Workers int
	// Observer, when non-nil, is the configuration owner's streaming hook:
	// every attacked campaign built from this configuration feeds it one
	// EpochSample per budgeting epoch, in addition to any observer passed
	// to RunContext directly. The clean baseline of a RunPair stays silent,
	// matching the per-run observer contract. Experiment drivers may run
	// many campaigns concurrently over one configuration, so the observer
	// must be safe for concurrent use; samples never influence results.
	Observer Observer
}

// DefaultConfig returns the Table I configuration: 256 cores on a 16×16
// mesh, 4-VC XY-routed NoC, MESI L1/L2, and a 50 % chip power budget under
// proportional fair-share allocation.
func DefaultConfig() Config {
	return Config{
		Cores:                256,
		NoC:                  noc.DefaultConfig(),
		Mem:                  mem.DefaultConfig(),
		MemTraffic:           true,
		Power:                power.DefaultModel(),
		BudgetFraction:       0.5,
		Allocator:            budget.FairShare{},
		GM:                   GMCenter,
		EpochCycles:          1000,
		Epochs:               10,
		WarmupEpochs:         2,
		BaselineMemLatencyNs: 60,
		Seed:                 1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Cores < 2 {
		return errors.New("core: need at least two cores")
	}
	if c.Topology != "" {
		if _, err := noc.TopologyByName(c.Topology); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if err := c.NoC.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Mem.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Power == nil {
		return errors.New("core: need a power model")
	}
	if err := c.Power.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.BudgetFraction <= 0 || c.BudgetFraction > 1 {
		return errors.New("core: budget fraction must be in (0, 1]")
	}
	if c.Allocator == nil {
		return errors.New("core: need an allocator")
	}
	if c.GM != GMCenter && c.GM != GMCorner {
		return errors.New("core: invalid manager placement")
	}
	if c.EpochCycles < 100 {
		return errors.New("core: epoch must be at least 100 cycles")
	}
	if c.Epochs < 1 || c.WarmupEpochs < 0 || c.WarmupEpochs >= c.Epochs {
		return errors.New("core: need at least one measured epoch")
	}
	if c.BaselineMemLatencyNs <= 0 {
		return errors.New("core: baseline memory latency must be positive")
	}
	return nil
}

// Mesh returns the topology for the configured core count, resolving the
// Topology name through the noc topology registry (empty means "mesh").
func (c Config) Mesh() (noc.Mesh, error) {
	name := c.Topology
	if name == "" {
		name = "mesh"
	}
	build, err := noc.TopologyByName(name)
	if err != nil {
		return noc.Mesh{}, err
	}
	return build(c.Cores)
}

// ManagerNode returns the manager's node ID for the configured placement.
func (c Config) ManagerNode(m noc.Mesh) noc.NodeID {
	if c.GM == GMCorner {
		return m.Corner()
	}
	return m.Center()
}

// ChipBudgetMW returns the total chip power budget in milliwatts.
func (c Config) ChipBudgetMW() uint64 {
	return uint64(float64(c.Cores) * c.Power.MaxPower() * 1000 * c.BudgetFraction)
}
