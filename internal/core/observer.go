package core

// EpochSample is one typed streaming observation, emitted to an Observer
// at the end of every budgeting epoch while a campaign runs. It extends
// the trace's EpochRecord with the quantities a live consumer wants
// without waiting for the final Report: the manager's grant activity,
// the filter's flag count, and the running infection rate.
type EpochSample struct {
	EpochRecord
	// GrantsIssued counts POWER_GRANT packets the manager issued for this
	// epoch's allocation round.
	GrantsIssued int
	// FlaggedRequests is this epoch's delta of requests the manager-side
	// filter marked suspect (zero without a configured defense).
	FlaggedRequests uint64
	// InfectionRunning is the cumulative infection rate observed at the
	// manager through the end of this epoch — the streaming view of the
	// Report's InfectionMeasured.
	InfectionRunning float64
}

// Observer receives streaming per-epoch samples during a campaign. A
// long-running service or live dashboard implements Observer to watch an
// attack unfold instead of waiting for the end-of-run Report; to abort a
// run early, cancel the context passed to RunContext — the simulation
// stops within a fraction of an epoch. Samples arrive synchronously on
// the simulation goroutine, in epoch order, warmup epochs included.
type Observer interface {
	// ObserveEpoch is called once per budgeting epoch, after the epoch's
	// grants are issued and accounted.
	ObserveEpoch(EpochSample)
}

// ObserverFunc adapts a plain function to the Observer interface — the
// idiom service bridges use to forward samples into an event stream.
type ObserverFunc func(EpochSample)

var _ Observer = ObserverFunc(nil)

// ObserveEpoch implements Observer.
func (f ObserverFunc) ObserveEpoch(s EpochSample) { f(s) }

// MultiObserver fans one sample stream out to several observers in order.
// A nil or empty MultiObserver is a valid no-op observer.
type MultiObserver []Observer

var _ Observer = MultiObserver(nil)

// ObserveEpoch implements Observer.
func (m MultiObserver) ObserveEpoch(s EpochSample) {
	for _, o := range m {
		o.ObserveEpoch(s)
	}
}

// sample assembles the streaming sample for the epoch just recorded (the
// last entry of the trace).
func (r *run) sample(grants int) EpochSample {
	s := EpochSample{
		EpochRecord:      r.trace[len(r.trace)-1],
		GrantsIssued:     grants,
		FlaggedRequests:  r.manager.FlaggedTotal - r.prevFlagged,
		InfectionRunning: r.infection.Rate(),
	}
	r.prevFlagged = r.manager.FlaggedTotal
	return s
}
