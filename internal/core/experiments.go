package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/exp"
	"repro/internal/mathx"
	"repro/internal/metrics"
	"repro/internal/noc"
	"repro/internal/workload"
)

// This file drives the paper's evaluation (Section V): each function
// regenerates the data behind one figure. The cmd tools print the series;
// the benchmarks time them; EXPERIMENTS.md records the outcomes.

// InfectionPoint is one x/y point of Fig 3.
type InfectionPoint struct {
	HTs  int
	Rate float64
}

// InfectionVsHTCount regenerates one curve of Fig 3: the mean infection
// rate over `trials` uniformly random HT placements, as a function of the
// HT count, for a chip of the given size with the manager at the given
// position. The infection rate of a placement under XY routing is exact
// (closed form), matching the simulator (cross-validated in tests), so no
// cycle simulation is needed here — exactly like the paper's
// infrastructure-only experiment. Trials fan out over one worker per CPU;
// use InfectionVsHTCountN to pick the worker count.
func InfectionVsHTCount(size int, gm GMPlacement, htCounts []int, trials int, seed int64) ([]InfectionPoint, error) {
	return InfectionVsHTCountN(size, gm, htCounts, trials, seed, 0)
}

// InfectionVsHTCountN is InfectionVsHTCount with an explicit worker count
// (0 means one per CPU). Every (HT count, trial) cell of the campaign grid
// seeds its own RNG from the campaign seed and its flat trial index, so
// the returned rates are bit-identical for every worker count.
func InfectionVsHTCountN(size int, gm GMPlacement, htCounts []int, trials int, seed int64, workers int) ([]InfectionPoint, error) {
	return InfectionVsHTCountCtx(context.Background(), size, gm, htCounts, trials, seed, workers)
}

// InfectionVsHTCountCtx is InfectionVsHTCountN with cooperative
// cancellation: no new trial starts once ctx is done and the pool returns
// ctx's error.
func InfectionVsHTCountCtx(ctx context.Context, size int, gm GMPlacement, htCounts []int, trials int, seed int64, workers int) ([]InfectionPoint, error) {
	mesh, err := noc.MeshForSize(size)
	if err != nil {
		return nil, err
	}
	var manager noc.NodeID
	switch gm {
	case GMCorner:
		manager = mesh.Corner()
	case GMCenter:
		manager = mesh.Center()
	default:
		return nil, fmt.Errorf("core: invalid manager placement %d", gm)
	}
	if trials < 1 {
		return nil, fmt.Errorf("core: need at least one trial")
	}
	rates, err := exp.RunCtx(ctx, workers, len(htCounts)*trials, func(_ context.Context, trial int) (float64, error) {
		m := htCounts[trial/trials]
		if m == 0 {
			return 0, nil
		}
		rng := rand.New(rand.NewSource(exp.TrialSeed(seed, trial)))
		p, err := attack.RandomPlacement(mesh, m, rng, manager)
		if err != nil {
			return 0, err
		}
		return metrics.InfectionRateXY(mesh, manager, p.Infected(), nil), nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]InfectionPoint, 0, len(htCounts))
	for pi, m := range htCounts {
		sum := 0.0
		for t := 0; t < trials; t++ {
			sum += rates[pi*trials+t]
		}
		out = append(out, InfectionPoint{HTs: m, Rate: sum / float64(trials)})
	}
	return out, nil
}

// Distribution names the three HT layouts of Fig 4.
type Distribution string

// Fig 4 distributions.
const (
	DistCenter Distribution = "center"
	DistRandom Distribution = "random"
	DistCorner Distribution = "corner"
)

// DistributionPoint is one bar of Fig 4.
type DistributionPoint struct {
	SystemSize int
	Rate       float64
}

// InfectionByDistribution regenerates one series of Fig 4: infection rate
// versus system size for a given HT distribution, with the HT count equal
// to size/denominator (the paper uses 16 and 8) and the manager at the
// center. Random placements are averaged over trials, which fan out over
// one worker per CPU; use InfectionByDistributionN to pick the count.
func InfectionByDistribution(dist Distribution, sizes []int, denominator, trials int, seed int64) ([]DistributionPoint, error) {
	return InfectionByDistributionN(dist, sizes, denominator, trials, seed, 0)
}

// InfectionByDistributionN is InfectionByDistribution with an explicit
// worker count (0 means one per CPU). Every (size, trial) cell seeds its
// own RNG from the campaign seed and its flat trial index, so the returned
// rates are bit-identical for every worker count.
func InfectionByDistributionN(dist Distribution, sizes []int, denominator, trials int, seed int64, workers int) ([]DistributionPoint, error) {
	return InfectionByDistributionCtx(context.Background(), dist, sizes, denominator, trials, seed, workers)
}

// InfectionByDistributionCtx is InfectionByDistributionN with cooperative
// cancellation through the trial pool.
func InfectionByDistributionCtx(ctx context.Context, dist Distribution, sizes []int, denominator, trials int, seed int64, workers int) ([]DistributionPoint, error) {
	if denominator < 1 {
		return nil, fmt.Errorf("core: invalid denominator %d", denominator)
	}
	switch dist {
	case DistCenter, DistCorner, DistRandom:
	default:
		return nil, fmt.Errorf("core: unknown distribution %q", dist)
	}
	if trials < 1 {
		trials = 1
	}
	rates, err := exp.RunCtx(ctx, workers, len(sizes)*trials, func(_ context.Context, trial int) (float64, error) {
		size := sizes[trial/trials]
		mesh, err := noc.MeshForSize(size)
		if err != nil {
			return 0, err
		}
		manager := mesh.Center()
		m := size / denominator
		if m < 1 {
			m = 1
		}
		rng := rand.New(rand.NewSource(exp.TrialSeed(seed, trial)))
		var p attack.Placement
		switch dist {
		case DistCenter:
			p, err = attack.CenterCluster(mesh, m, rng, manager)
		case DistCorner:
			p, err = attack.CornerCluster(mesh, m, rng, manager)
		default:
			p, err = attack.RandomPlacement(mesh, m, rng, manager)
		}
		if err != nil {
			return 0, err
		}
		return metrics.InfectionRateXY(mesh, manager, p.Infected(), nil), nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]DistributionPoint, 0, len(sizes))
	for si, size := range sizes {
		sum := 0.0
		for t := 0; t < trials; t++ {
			sum += rates[si*trials+t]
		}
		out = append(out, DistributionPoint{SystemSize: size, Rate: sum / float64(trials)})
	}
	return out, nil
}

// QPoint is one x/y point of Fig 5 (and one column group of Fig 6).
type QPoint struct {
	// TargetInfection is the infection rate the placement was built for.
	TargetInfection float64
	// MeasuredInfection is the rate the simulation actually delivered.
	MeasuredInfection float64
	// Q is Definition 3 for the campaign.
	Q float64
	// PerApp carries each application's Θ (the Fig 6 bars).
	PerApp []AppChange
	// HTs is the placement size used.
	HTs int
}

// QVsInfection regenerates the Fig 5 curve (and Fig 6 data) for one Table
// III mix: for each target infection rate a greedy placement is built, the
// campaign is simulated, and Q is evaluated against the shared clean
// baseline.
func QVsInfection(cfg Config, mixName string, threads int, targets []float64) ([]QPoint, error) {
	return QVsInfectionCtx(context.Background(), cfg, mixName, threads, targets)
}

// QVsInfectionCtx is QVsInfection with cooperative cancellation: each
// campaign in the sweep runs under ctx and a cancelled sweep returns
// promptly with ctx's error.
func QVsInfectionCtx(ctx context.Context, cfg Config, mixName string, threads int, targets []float64) ([]QPoint, error) {
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return nil, err
	}
	sc, err := MixScenario(mix, threads)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	baseline, err := sys.RunContext(ctx, sc.WithoutTrojans(), nil)
	if err != nil {
		return nil, fmt.Errorf("core: baseline: %w", err)
	}
	mesh := sys.Mesh()
	gm := sys.ManagerNode()
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Coverage balance groups: the placement sampler targets the same
	// infection rate within the victim cores and the attacker cores, so
	// one lucky fleet cannot cover exactly one application's quadrant.
	placed, err := sys.PlaceApps(sc)
	if err != nil {
		return nil, err
	}
	var victimCores, attackerCores []noc.NodeID
	for ai, spec := range sc.Apps {
		switch spec.Role {
		case RoleVictim:
			victimCores = append(victimCores, placed[ai]...)
		case RoleAttacker:
			attackerCores = append(attackerCores, placed[ai]...)
		}
	}
	groups := [][]noc.NodeID{victimCores, attackerCores}
	// Averaging over a few independent random fleets per target smooths
	// the composition noise of any single placement (which victim cores
	// happen to sit behind the Trojans).
	const reps = 3
	out := make([]QPoint, 0, len(targets))
	for _, target := range targets {
		point := QPoint{TargetInfection: target}
		n := reps
		if target == 0 {
			n = 1
		}
		for rep := 0; rep < n; rep++ {
			if target > 0 {
				// Random fleets intercept victim and attacker traffic in
				// unbiased proportion, matching how the paper sweeps the
				// Fig 5 x-axis.
				placement, _ := attack.BalancedForInfectionRate(mesh, gm, target, groups, 8, rng)
				sc.Trojans = placement
				point.HTs = placement.Size()
			} else {
				sc.Trojans = attack.Placement{}
			}
			attacked, err := sys.RunContext(ctx, sc, nil)
			if err != nil {
				return nil, fmt.Errorf("core: target %.2f: %w", target, err)
			}
			cmp, err := Compare(attacked, baseline)
			if err != nil {
				return nil, err
			}
			point.MeasuredInfection += attacked.InfectionMeasured / float64(n)
			point.Q += cmp.Q / float64(n)
			if rep == 0 {
				point.PerApp = cmp.PerApp
			} else {
				for i := range point.PerApp {
					point.PerApp[i].Change += cmp.PerApp[i].Change
					point.PerApp[i].ThetaAttacked += cmp.PerApp[i].ThetaAttacked
				}
			}
		}
		if n > 1 {
			for i := range point.PerApp {
				point.PerApp[i].Change /= float64(n)
				point.PerApp[i].ThetaAttacked /= float64(n)
			}
		}
		out = append(out, point)
	}
	return out, nil
}

// PlacementStudy is the Section V-C optimal-vs-random comparison for one
// mix.
type PlacementStudy struct {
	Mix string
	// HTs is the fleet size (the paper uses 16).
	HTs int
	// RandomQMean and RandomQStd summarise Q over random placements.
	RandomQMean, RandomQStd float64
	// OptimalQ is the simulated Q of the model-optimised placement.
	OptimalQ float64
	// ImprovementPct is (OptimalQ − RandomQMean)/RandomQMean × 100.
	ImprovementPct float64
	// ModelR2 is the Eqn 9 fit quality on the random training samples.
	ModelR2 float64
	// Evaluated counts the Eqn 10 enumeration size.
	Evaluated int
}

// OptimalVsRandom regenerates the Section V-C experiment for one mix:
// sample random fleets, fit the Eqn 9 model on the measured Q values,
// solve Eqn 10 by enumeration, simulate the winning placement, and compare
// against the random mean. The training and shortlist campaigns — the
// expensive cycle simulations — fan out over cfg.Workers; every random
// fleet is drawn from its own (seed, sample index) RNG, so the study is
// bit-identical for every worker count.
func OptimalVsRandom(cfg Config, mixName string, threads, nHTs, samples int, seed int64) (*PlacementStudy, error) {
	return OptimalVsRandomCtx(context.Background(), cfg, mixName, threads, nHTs, samples, seed)
}

// OptimalVsRandomCtx is OptimalVsRandom with cooperative cancellation
// through the training and shortlist pools.
func OptimalVsRandomCtx(ctx context.Context, cfg Config, mixName string, threads, nHTs, samples int, seed int64) (*PlacementStudy, error) {
	if samples < 4 {
		return nil, fmt.Errorf("core: need at least 4 samples to fit Eqn 9")
	}
	mix, err := workload.MixByName(mixName)
	if err != nil {
		return nil, err
	}
	sc, err := MixScenario(mix, threads)
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return nil, err
	}
	baseline, err := sys.RunContext(ctx, sc.WithoutTrojans(), nil)
	if err != nil {
		return nil, err
	}
	mesh := sys.Mesh()
	gm := sys.ManagerNode()

	// The training set mixes uniformly random fleets (the paper's baseline,
	// and the set the improvement is measured against) with structured ring
	// clusters at varying distance and spread — random fleets alone barely
	// vary in ρ and η, and a model fitted on them extrapolates wildly.
	gmCoord := mesh.Coord(gm)
	placements := make([]attack.Placement, 0, samples+12)
	for i := 0; i < samples; i++ {
		rng := rand.New(rand.NewSource(exp.TrialSeed(seed, i)))
		placement, err := attack.RandomPlacement(mesh, nHTs, rng, gm)
		if err != nil {
			return nil, err
		}
		placements = append(placements, placement)
	}
	offsets := []int{0, 2, 4, 6}
	radii := []float64{0, 2, 4}
	for _, off := range offsets {
		for _, radius := range radii {
			center := noc.Coord{X: clampInt(gmCoord.X+off, 0, mesh.Width-1), Y: gmCoord.Y}
			placement, err := attack.RingCluster(mesh, center, nHTs, radius, gm)
			if err != nil {
				return nil, err
			}
			placements = append(placements, placement)
		}
	}
	simulateQ := func(ctx context.Context, placement attack.Placement) (*Comparison, error) {
		psc := sc
		psc.Trojans = placement
		attacked, err := sys.RunContext(ctx, psc, nil)
		if err != nil {
			return nil, err
		}
		return Compare(attacked, baseline)
	}
	cmps, err := exp.RunCtx(ctx, cfg.Workers, len(placements), func(ctx context.Context, i int) (*Comparison, error) {
		return simulateQ(ctx, placements[i])
	})
	if err != nil {
		return nil, err
	}
	trainingSamples := make([]attack.Sample, len(cmps))
	qValues := make([]float64, samples) // random-placement subset only
	for i, cmp := range cmps {
		trainingSamples[i] = attack.Sample{Features: cmp.Features, Q: cmp.Q}
		if i < samples {
			qValues[i] = cmp.Q
		}
	}
	model, err := attack.FitEffectModel(trainingSamples)
	if err != nil {
		return nil, fmt.Errorf("core: Eqn 9 fit: %w", err)
	}
	last := trainingSamples[len(trainingSamples)-1].Features
	// Shortlist the enumeration's best candidates by predicted Q, then
	// validate the shortlist by simulation and commit to the winner — the
	// model prunes the search space, the simulator confirms.
	const shortlist = 5
	top, evaluated, err := attack.RankPlacements(mesh, gm, model, attack.OptimizeOptions{
		// The paper's V-C comparison fixes the fleet size (16 HTs) and
		// optimises distance and density only.
		MinHTs:       nHTs,
		MaxHTs:       nHTs,
		CenterStride: 2,
		VictimPhi:    last.VictimPhi,
		AttackerPhi:  last.AttackerPhi,
	}, shortlist)
	if err != nil {
		return nil, fmt.Errorf("core: Eqn 10 enumeration: %w", err)
	}
	topCmps, err := exp.RunCtx(ctx, cfg.Workers, len(top), func(ctx context.Context, i int) (*Comparison, error) {
		return simulateQ(ctx, top[i].Placement)
	})
	if err != nil {
		return nil, err
	}
	bestQ := mathx.Max(nil) // -Inf
	for _, cmp := range topCmps {
		if cmp.Q > bestQ {
			bestQ = cmp.Q
		}
	}
	mean := mathx.Mean(qValues)
	study := &PlacementStudy{
		Mix:         mixName,
		HTs:         nHTs,
		RandomQMean: mean,
		RandomQStd:  mathx.StdDev(qValues),
		OptimalQ:    bestQ,
		ModelR2:     model.R2(),
		Evaluated:   evaluated,
	}
	if mean != 0 {
		study.ImprovementPct = (bestQ - mean) / mean * 100
	}
	return study, nil
}

// clampInt limits v to [lo, hi].
func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
