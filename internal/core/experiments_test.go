package core

import (
	"testing"
)

func TestInfectionVsHTCountTrends(t *testing.T) {
	counts := []int{0, 5, 10, 20, 30}
	center, err := InfectionVsHTCount(64, GMCenter, counts, 20, 1)
	if err != nil {
		t.Fatalf("InfectionVsHTCount: %v", err)
	}
	corner, err := InfectionVsHTCount(64, GMCorner, counts, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(center) != len(counts) {
		t.Fatalf("points = %d, want %d", len(center), len(counts))
	}
	// Fig 3 trend 1: more HTs → higher infection (monotone in the mean).
	for i := 1; i < len(center); i++ {
		if center[i].Rate < center[i-1].Rate {
			t.Errorf("center series not increasing at %d HTs", center[i].HTs)
		}
	}
	// Fig 3 trend 2: corner manager suffers higher infection than center.
	for i := 1; i < len(counts); i++ {
		if corner[i].Rate <= center[i].Rate {
			t.Errorf("at %d HTs corner rate %v not above center %v",
				counts[i], corner[i].Rate, center[i].Rate)
		}
	}
	if center[0].Rate != 0 {
		t.Error("zero HTs must give zero infection")
	}
}

func TestInfectionVsHTCountValidation(t *testing.T) {
	if _, err := InfectionVsHTCount(0, GMCenter, []int{1}, 1, 1); err == nil {
		t.Error("invalid size must fail")
	}
	if _, err := InfectionVsHTCount(64, GMPlacement(7), []int{1}, 1, 1); err == nil {
		t.Error("invalid placement must fail")
	}
	if _, err := InfectionVsHTCount(64, GMCenter, []int{1}, 0, 1); err == nil {
		t.Error("zero trials must fail")
	}
}

func TestInfectionByDistributionOrdering(t *testing.T) {
	sizes := []int{64, 128, 256, 512}
	center, err := InfectionByDistribution(DistCenter, sizes, 16, 10, 1)
	if err != nil {
		t.Fatalf("InfectionByDistribution: %v", err)
	}
	random, err := InfectionByDistribution(DistRandom, sizes, 16, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	corner, err := InfectionByDistribution(DistCorner, sizes, 16, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 4's headline ordering: center > random > corner at every size.
	for i, size := range sizes {
		if !(center[i].Rate > random[i].Rate && random[i].Rate > corner[i].Rate) {
			t.Errorf("size %d: ordering violated center=%v random=%v corner=%v",
				size, center[i].Rate, random[i].Rate, corner[i].Rate)
		}
	}
}

func TestInfectionByDistributionDenominator(t *testing.T) {
	// HTs = size/8 must infect at least as much as size/16 (more HTs).
	sizes := []int{64, 256}
	th16, err := InfectionByDistribution(DistCenter, sizes, 16, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	th8, err := InfectionByDistribution(DistCenter, sizes, 8, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sizes {
		// The sampling region grows with the fleet, so the comparison is
		// statistical: allow a small tolerance.
		if th8[i].Rate+0.05 < th16[i].Rate {
			t.Errorf("size %d: size/8 rate %v below size/16 rate %v", sizes[i], th8[i].Rate, th16[i].Rate)
		}
	}
}

func TestInfectionByDistributionValidation(t *testing.T) {
	if _, err := InfectionByDistribution(DistCenter, []int{64}, 0, 1, 1); err == nil {
		t.Error("zero denominator must fail")
	}
	if _, err := InfectionByDistribution(Distribution("weird"), []int{64}, 16, 1, 1); err == nil {
		t.Error("unknown distribution must fail")
	}
}

func TestQVsInfectionRises(t *testing.T) {
	cfg := fastConfig()
	points, err := QVsInfection(cfg, "mix-1", 8, []float64{0, 0.5, 0.95})
	if err != nil {
		t.Fatalf("QVsInfection: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d, want 3", len(points))
	}
	if points[0].Q != 1 {
		t.Errorf("zero-infection Q = %v, want exactly 1", points[0].Q)
	}
	if !(points[2].Q > points[1].Q && points[1].Q > points[0].Q) {
		t.Errorf("Q not increasing: %v, %v, %v", points[0].Q, points[1].Q, points[2].Q)
	}
	// Fig 6 shape at the top point: attackers above 1, victims below 1.
	for _, app := range points[2].PerApp {
		switch app.Role {
		case RoleAttacker:
			if app.Change < 1 {
				t.Errorf("attacker %s Θ = %v, want ≥ 1", app.Name, app.Change)
			}
		case RoleVictim:
			if app.Change >= 1 {
				t.Errorf("victim %s Θ = %v, want < 1", app.Name, app.Change)
			}
		}
	}
}

func TestQVsInfectionUnknownMix(t *testing.T) {
	if _, err := QVsInfection(fastConfig(), "mix-9", 8, []float64{0.5}); err == nil {
		t.Error("unknown mix must fail")
	}
}

func TestOptimalVsRandomImproves(t *testing.T) {
	cfg := fastConfig()
	study, err := OptimalVsRandom(cfg, "mix-1", 8, 8, 8, 3)
	if err != nil {
		t.Fatalf("OptimalVsRandom: %v", err)
	}
	if study.Evaluated == 0 {
		t.Error("enumeration evaluated nothing")
	}
	if study.RandomQMean <= 0 {
		t.Errorf("random Q mean = %v", study.RandomQMean)
	}
	// Section V-C: the optimised placement must beat the random average.
	if study.OptimalQ <= study.RandomQMean {
		t.Errorf("optimal Q %v not above random mean %v", study.OptimalQ, study.RandomQMean)
	}
	if study.ImprovementPct <= 0 {
		t.Errorf("improvement = %v%%, want positive", study.ImprovementPct)
	}
}

func TestOptimalVsRandomValidation(t *testing.T) {
	if _, err := OptimalVsRandom(fastConfig(), "mix-1", 8, 8, 2, 3); err == nil {
		t.Error("too few samples must fail")
	}
	if _, err := OptimalVsRandom(fastConfig(), "mix-9", 8, 8, 8, 3); err == nil {
		t.Error("unknown mix must fail")
	}
}
