package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/noc"
	"repro/internal/workload"
)

// observerScenario builds a small attacked campaign for streaming tests.
func observerScenario(t *testing.T) (*System, Scenario) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Cores = 64
	cfg.MemTraffic = false
	cfg.Epochs = 8
	cfg.WarmupEpochs = 2
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	mix, err := workload.MixByName("mix-1")
	if err != nil {
		t.Fatal(err)
	}
	sc, err := MixScenario(mix, 8)
	if err != nil {
		t.Fatal(err)
	}
	mesh := sys.Mesh()
	placement, err := attack.RingCluster(mesh, mesh.Coord(sys.ManagerNode()), 8, 2, sys.ManagerNode())
	if err != nil {
		t.Fatal(err)
	}
	sc.Trojans = placement
	return sys, sc
}

// collector buffers every streamed sample.
type collector struct {
	samples []EpochSample
}

func (c *collector) ObserveEpoch(s EpochSample) { c.samples = append(c.samples, s) }

func TestObserverSamplesSumToReport(t *testing.T) {
	sys, sc := observerScenario(t)
	col := &collector{}
	rep, err := sys.RunContext(context.Background(), sc, col)
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(col.samples) != sys.Config().Epochs {
		t.Fatalf("observed %d samples, want %d", len(col.samples), sys.Config().Epochs)
	}
	if len(rep.Epochs) != len(col.samples) {
		t.Fatalf("trace has %d records vs %d samples", len(rep.Epochs), len(col.samples))
	}
	var received, tampered, flagged uint64
	var grants int
	for i, s := range col.samples {
		if s.EpochRecord != rep.Epochs[i] {
			t.Errorf("sample %d record %+v != trace record %+v", i, s.EpochRecord, rep.Epochs[i])
		}
		received += s.RequestsReceived
		tampered += s.RequestsTampered
		flagged += s.FlaggedRequests
		grants += s.GrantsIssued
	}
	var wantReceived, wantTampered uint64
	for _, rec := range rep.Epochs {
		wantReceived += rec.RequestsReceived
		wantTampered += rec.RequestsTampered
	}
	if received != wantReceived || tampered != wantTampered {
		t.Errorf("sample sums (recv %d, tampered %d) != report sums (%d, %d)",
			received, tampered, wantReceived, wantTampered)
	}
	if flagged != rep.FlaggedRequests {
		t.Errorf("flagged sum %d != report %d", flagged, rep.FlaggedRequests)
	}
	// Every issued grant is eventually delivered (false-data Trojans do
	// not destroy packets), so the streamed grant count must match the
	// network's POWER_GRANT deliveries after the final drain.
	if uint64(grants) != rep.Net.DeliveredBy[noc.TypePowerGrant] {
		t.Errorf("grants issued %d != grants delivered %d", grants, rep.Net.DeliveredBy[noc.TypePowerGrant])
	}
	last := col.samples[len(col.samples)-1]
	if last.InfectionRunning <= 0 {
		t.Error("running infection rate never rose above zero under an active attack")
	}
	if tampered == 0 {
		t.Error("streamed samples saw no tampered requests under an active attack")
	}
}

// cancellingObserver cancels the run's context after a fixed number of
// epochs — the "live dashboard pulls the plug" pattern.
type cancellingObserver struct {
	cancel context.CancelFunc
	after  int
	seen   int
}

func (c *cancellingObserver) ObserveEpoch(EpochSample) {
	c.seen++
	if c.seen == c.after {
		c.cancel()
	}
}

func TestObserverCancelStopsRunPromptly(t *testing.T) {
	sys, sc := observerScenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &cancellingObserver{cancel: cancel, after: 3}
	start := time.Now()
	rep, err := sys.RunContext(ctx, sc, obs)
	if rep != nil {
		t.Fatal("cancelled run must not return a report")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if obs.seen > obs.after {
		t.Errorf("observed %d epochs after cancelling at %d", obs.seen, obs.after)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled run took %v, want prompt stop", elapsed)
	}
}

func TestRunPairContextCancelled(t *testing.T) {
	sys, sc := observerScenario(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: the pool must not run a single epoch
	col := &collector{}
	_, _, err := sys.RunPairContext(ctx, sc, col)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(col.samples) != 0 {
		t.Errorf("cancelled pair streamed %d samples", len(col.samples))
	}
}

func TestMultiObserverFansOut(t *testing.T) {
	sys, sc := observerScenario(t)
	a, b := &collector{}, &collector{}
	if _, err := sys.RunContext(context.Background(), sc, MultiObserver{a, b}); err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	if len(a.samples) == 0 || len(a.samples) != len(b.samples) {
		t.Fatalf("fan-out mismatch: %d vs %d samples", len(a.samples), len(b.samples))
	}
}

func TestRunWithoutObserverUnchanged(t *testing.T) {
	// Run and RunContext(nil observer) must agree bit-for-bit: streaming
	// must not perturb the simulation.
	sys, sc := observerScenario(t)
	plain, err := sys.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	col := &collector{}
	observed, err := sys.RunContext(context.Background(), sc, col)
	if err != nil {
		t.Fatal(err)
	}
	if plain.InfectionMeasured != observed.InfectionMeasured || plain.Net != observed.Net {
		t.Error("observed run diverged from plain run")
	}
}
