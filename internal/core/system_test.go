package core

import (
	"math"
	"testing"

	"repro/internal/attack"
	"repro/internal/budget"
	"repro/internal/noc"
	"repro/internal/trojan"
	"repro/internal/workload"
)

// fastConfig is a small, quick chip for integration tests: 64 cores, no
// cache traffic, short epochs.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Cores = 64
	cfg.MemTraffic = false
	cfg.EpochCycles = 400
	cfg.Epochs = 6
	cfg.WarmupEpochs = 2
	return cfg
}

// fastScenario: one attacker app, one victim app, 16 threads each.
func fastScenario(t *testing.T, placement attack.Placement) Scenario {
	t.Helper()
	return Scenario{
		Apps: []AppSpec{
			{Name: "barnes", Threads: 16, Role: RoleAttacker},
			{Name: "blackscholes", Threads: 16, Role: RoleVictim},
		},
		Trojans:  placement,
		Strategy: trojan.ZeroStrategy{},
	}
}

func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Cores != 256 {
		t.Errorf("Cores = %d, want 256 (Table I)", cfg.Cores)
	}
	if cfg.NoC.VCs != 4 || cfg.NoC.BufDepth != 5 {
		t.Error("NoC config deviates from Table I")
	}
	if cfg.Mem.MemLatency != 200 {
		t.Errorf("memory latency = %d, want 200 (Table I)", cfg.Mem.MemLatency)
	}
	if cfg.NoC.Routing.Name() != "xy" {
		t.Error("routing must default to XY (Table I)")
	}
	mesh, err := cfg.Mesh()
	if err != nil {
		t.Fatal(err)
	}
	if mesh.Width != 16 || mesh.Height != 16 {
		t.Errorf("mesh = %dx%d, want 16x16", mesh.Width, mesh.Height)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"one core", func(c *Config) { c.Cores = 1 }},
		{"nil power", func(c *Config) { c.Power = nil }},
		{"zero budget fraction", func(c *Config) { c.BudgetFraction = 0 }},
		{"over unity budget", func(c *Config) { c.BudgetFraction = 1.5 }},
		{"nil allocator", func(c *Config) { c.Allocator = nil }},
		{"bad placement", func(c *Config) { c.GM = GMPlacement(9) }},
		{"tiny epoch", func(c *Config) { c.EpochCycles = 10 }},
		{"no measured epochs", func(c *Config) { c.WarmupEpochs = 6; c.Epochs = 6 }},
		{"zero baseline latency", func(c *Config) { c.BaselineMemLatencyNs = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := fastConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
}

func TestManagerPlacement(t *testing.T) {
	cfg := fastConfig()
	mesh, _ := cfg.Mesh()
	if cfg.ManagerNode(mesh) != mesh.Center() {
		t.Error("default manager must sit at the center")
	}
	cfg.GM = GMCorner
	if cfg.ManagerNode(mesh) != mesh.Corner() {
		t.Error("corner manager must sit at (0,0)")
	}
}

func TestMixScenario(t *testing.T) {
	mix, _ := workload.MixByName("mix-1")
	sc, err := MixScenario(mix, 16)
	if err != nil {
		t.Fatalf("MixScenario: %v", err)
	}
	if len(sc.Apps) != 4 {
		t.Fatalf("apps = %d, want 4", len(sc.Apps))
	}
	if sc.Apps[0].Role != RoleAttacker || sc.Apps[3].Role != RoleVictim {
		t.Error("attackers must come first")
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := MixScenario(mix, 0); err == nil {
		t.Error("zero threads must fail")
	}
}

func TestScenarioValidation(t *testing.T) {
	tests := []struct {
		name string
		give Scenario
	}{
		{"empty", Scenario{}},
		{"unknown app", Scenario{Apps: []AppSpec{{Name: "doom", Threads: 1, Role: RoleVictim}}}},
		{"zero threads", Scenario{Apps: []AppSpec{{Name: "vips", Threads: 0, Role: RoleVictim}}}},
		{"bad role", Scenario{Apps: []AppSpec{{Name: "vips", Threads: 1}}}},
		{"negative duty", Scenario{Apps: []AppSpec{{Name: "vips", Threads: 1, Role: RoleVictim}}, DutyOnEpochs: -1}},
		{"off without on", Scenario{Apps: []AppSpec{{Name: "vips", Threads: 1, Role: RoleVictim}}, DutyOffEpochs: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
}

func TestRoleString(t *testing.T) {
	for _, r := range []Role{RoleNeutral, RoleAttacker, RoleVictim, Role(42)} {
		if r.String() == "" {
			t.Errorf("empty string for role %d", int(r))
		}
	}
}

func TestBaselineRunCleanChip(t *testing.T) {
	s, err := NewSystem(fastConfig())
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	rep, err := s.Run(fastScenario(t, attack.Placement{}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.InfectionMeasured != 0 || rep.InfectionPredicted != 0 {
		t.Errorf("clean chip infection = %v/%v, want 0", rep.InfectionMeasured, rep.InfectionPredicted)
	}
	if rep.Trojan.Modified != 0 {
		t.Error("clean chip must have no tampering")
	}
	for _, a := range rep.Apps {
		if a.Theta <= 0 {
			t.Errorf("%s θ = %v, want > 0", a.Name, a.Theta)
		}
		if a.Phi <= 0 {
			t.Errorf("%s Φ = %v, want > 0", a.Name, a.Phi)
		}
		if a.Cores != 16 {
			t.Errorf("%s got %d cores, want 16", a.Name, a.Cores)
		}
	}
	// Every epoch's requests must arrive: 32 app cores × 6 epochs.
	if rep.Net.DeliveredBy[noc.TypePowerReq] != 32*6 {
		t.Errorf("delivered POWER_REQ = %d, want %d", rep.Net.DeliveredBy[noc.TypePowerReq], 32*6)
	}
}

func TestAttackRunVictimisesAndBoosts(t *testing.T) {
	s, err := NewSystem(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Trojans packed around the manager: near-total infection.
	mesh := s.Mesh()
	ring, err := attack.RingCluster(mesh, mesh.Coord(s.ManagerNode()), 4, 1, s.ManagerNode())
	if err != nil {
		t.Fatal(err)
	}
	sc := fastScenario(t, ring)
	attacked, baseline, err := s.RunPair(sc)
	if err != nil {
		t.Fatalf("RunPair: %v", err)
	}
	if attacked.InfectionMeasured == 0 {
		t.Fatal("attack run shows no infection")
	}
	cmp, err := Compare(attacked, baseline)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	var att, vic *AppChange
	for i := range cmp.PerApp {
		switch cmp.PerApp[i].Role {
		case RoleAttacker:
			att = &cmp.PerApp[i]
		case RoleVictim:
			vic = &cmp.PerApp[i]
		}
	}
	if att == nil || vic == nil {
		t.Fatal("missing roles in comparison")
	}
	if vic.Change >= 1 {
		t.Errorf("victim Θ = %v, want < 1 (performance degraded)", vic.Change)
	}
	if att.Change < 1 {
		t.Errorf("attacker Θ = %v, want ≥ 1 (performance boosted)", att.Change)
	}
	if cmp.Q <= 1 {
		t.Errorf("Q = %v, want > 1 for an effective attack", cmp.Q)
	}
	if attacked.Trojan.Modified == 0 {
		t.Error("trojans reported no modifications")
	}
}

func TestInfectionMeasuredMatchesPredicted(t *testing.T) {
	s, err := NewSystem(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	mesh := s.Mesh()
	ring, err := attack.RingCluster(mesh, mesh.Coord(s.ManagerNode()), 6, 2, s.ManagerNode())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(fastScenario(t, ring))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.InfectionMeasured-rep.InfectionPredicted) > 0.05 {
		t.Errorf("measured %v vs predicted %v infection", rep.InfectionMeasured, rep.InfectionPredicted)
	}
}

func TestMoreInfectionMoreQ(t *testing.T) {
	// The Fig 5 trend: a placement with a higher infection rate yields a
	// larger Q for the same mix.
	s, err := NewSystem(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	mesh := s.Mesh()
	gm := s.ManagerNode()
	low, rateLow := attack.ForInfectionRate(mesh, gm, 0.25, 64)
	high, rateHigh := attack.ForInfectionRate(mesh, gm, 0.9, 64)
	if rateLow >= rateHigh {
		t.Skip("placements did not separate")
	}
	qFor := func(p attack.Placement) float64 {
		att, base, err := s.RunPair(fastScenario(t, p))
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := Compare(att, base)
		if err != nil {
			t.Fatal(err)
		}
		return cmp.Q
	}
	qLow, qHigh := qFor(low), qFor(high)
	if qHigh <= qLow {
		t.Errorf("Q(high infection) = %v not above Q(low) = %v", qHigh, qLow)
	}
}

func TestDutyCyclingHalvesInfection(t *testing.T) {
	s, err := NewSystem(fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	mesh := s.Mesh()
	ring, err := attack.RingCluster(mesh, mesh.Coord(s.ManagerNode()), 4, 1, s.ManagerNode())
	if err != nil {
		t.Fatal(err)
	}
	always := fastScenario(t, ring)
	duty := always
	duty.DutyOnEpochs, duty.DutyOffEpochs = 1, 1
	repAlways, err := s.Run(always)
	if err != nil {
		t.Fatal(err)
	}
	repDuty, err := s.Run(duty)
	if err != nil {
		t.Fatal(err)
	}
	if repDuty.InfectionMeasured >= repAlways.InfectionMeasured {
		t.Errorf("duty-cycled infection %v not below always-on %v",
			repDuty.InfectionMeasured, repAlways.InfectionMeasured)
	}
	if repDuty.InfectionMeasured == 0 {
		t.Error("duty-cycled attack must still tamper during ON epochs")
	}
}

func TestMemTrafficIntegration(t *testing.T) {
	cfg := fastConfig()
	cfg.Cores = 16
	cfg.MemTraffic = true
	cfg.EpochCycles = 600
	cfg.Epochs = 4
	cfg.WarmupEpochs = 1
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{
		Apps: []AppSpec{
			{Name: "canneal", Threads: 6, Role: RoleAttacker},
			{Name: "dedup", Threads: 6, Role: RoleVictim},
		},
	}
	rep, err := s.Run(sc)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Net.DeliveredBy[noc.TypeMemReadReq] == 0 {
		t.Error("memory traffic generated no NoC requests")
	}
	if rep.AvgMemLatencyNs <= 0 {
		t.Errorf("memory latency = %v, want > 0", rep.AvgMemLatencyNs)
	}
	for _, a := range rep.Apps {
		if a.Theta <= 0 {
			t.Errorf("%s θ = %v under traffic", a.Name, a.Theta)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Report {
		s, err := NewSystem(fastConfig())
		if err != nil {
			t.Fatal(err)
		}
		mesh := s.Mesh()
		ring, err := attack.RingCluster(mesh, mesh.Coord(s.ManagerNode()), 4, 1, s.ManagerNode())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Run(fastScenario(t, ring))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	for i := range a.Apps {
		if a.Apps[i].Theta != b.Apps[i].Theta {
			t.Fatalf("same seed produced different θ: %v vs %v", a.Apps[i].Theta, b.Apps[i].Theta)
		}
	}
	if a.InfectionMeasured != b.InfectionMeasured {
		t.Fatal("same seed produced different infection")
	}
}

func TestCornerManagerRuns(t *testing.T) {
	cfg := fastConfig()
	cfg.GM = GMCorner
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.ManagerNode() != 0 {
		t.Fatalf("manager = %d, want 0", s.ManagerNode())
	}
	rep, err := s.Run(fastScenario(t, attack.Placement{}))
	if err != nil {
		t.Fatal(err)
	}
	// The hacker control node must have moved off the manager.
	if rep.GM != 0 {
		t.Errorf("report GM = %d", rep.GM)
	}
}

func TestAppsClippedAtCapacity(t *testing.T) {
	cfg := fastConfig()
	cfg.Cores = 16
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Apps: []AppSpec{
		{Name: "vips", Threads: 10, Role: RoleAttacker},
		{Name: "dedup", Threads: 10, Role: RoleVictim}, // only 5 left (GM excluded)
	}}
	rep, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Apps[0].Cores != 10 {
		t.Errorf("first app cores = %d, want 10", rep.Apps[0].Cores)
	}
	if rep.Apps[1].Cores != 5 {
		t.Errorf("second app cores = %d, want 5 (clipped)", rep.Apps[1].Cores)
	}
}

func TestNoRoomForAppFails(t *testing.T) {
	cfg := fastConfig()
	cfg.Cores = 4
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Apps: []AppSpec{
		{Name: "vips", Threads: 3, Role: RoleAttacker},
		{Name: "dedup", Threads: 3, Role: RoleVictim}, // no cores left
	}}
	if _, err := s.Run(sc); err == nil {
		t.Error("scenario exceeding capacity entirely must fail")
	}
}

func TestCompareValidation(t *testing.T) {
	a := &Report{Apps: []AppResult{{Name: "vips", Role: RoleVictim}}}
	b := &Report{}
	if _, err := Compare(a, b); err == nil {
		t.Error("length mismatch must fail")
	}
	c := &Report{Apps: []AppResult{{Name: "dedup", Role: RoleVictim}}}
	if _, err := Compare(a, c); err == nil {
		t.Error("name mismatch must fail")
	}
}

func TestAllocatorsAllRunEndToEnd(t *testing.T) {
	// The paper's "irrespective of the algorithm" claim, end to end: the
	// attack yields Q > 1 under every allocator.
	for _, alloc := range budget.All() {
		alloc := alloc
		t.Run(alloc.Name(), func(t *testing.T) {
			cfg := fastConfig()
			cfg.Allocator = alloc
			if alloc.Name() == "dp" {
				// Keep the DP table small in tests.
				cfg.Allocator = budget.NewDPKnapsack(200)
			}
			s, err := NewSystem(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mesh := s.Mesh()
			ring, err := attack.RingCluster(mesh, mesh.Coord(s.ManagerNode()), 6, 1, s.ManagerNode())
			if err != nil {
				t.Fatal(err)
			}
			attacked, baseline, err := s.RunPair(fastScenario(t, ring))
			if err != nil {
				t.Fatal(err)
			}
			cmp, err := Compare(attacked, baseline)
			if err != nil {
				t.Fatal(err)
			}
			if cmp.Q <= 1 {
				t.Errorf("allocator %s: Q = %v, want > 1", alloc.Name(), cmp.Q)
			}
		})
	}
}
