package core

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/noc"
	"repro/internal/trojan"
)

func TestPlaceAppsContiguousSkippingManager(t *testing.T) {
	cfg := fastConfig() // 64 cores, manager at center (node 27)
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Apps: []AppSpec{
		{Name: "barnes", Threads: 30, Role: RoleAttacker},
		{Name: "vips", Threads: 10, Role: RoleVictim},
	}}
	placed, err := s.PlaceApps(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != 2 {
		t.Fatalf("apps placed = %d", len(placed))
	}
	if len(placed[0]) != 30 || len(placed[1]) != 10 {
		t.Fatalf("thread counts = %d/%d, want 30/10", len(placed[0]), len(placed[1]))
	}
	gm := s.ManagerNode()
	seen := make(map[noc.NodeID]bool)
	last := noc.NodeID(-1)
	for _, cores := range placed {
		for _, c := range cores {
			if c == gm {
				t.Fatal("manager node must not host a thread")
			}
			if seen[c] {
				t.Fatal("core assigned twice")
			}
			seen[c] = true
			if c <= last {
				t.Fatal("placement must be monotonically increasing")
			}
			last = c
		}
	}
	// Node 27 is the manager: app 0 spans 0..30 (skipping 27).
	if placed[0][27] != 28 {
		t.Errorf("expected skip over manager: placed[0][27] = %d, want 28", placed[0][27])
	}
}

func TestPlaceAppsMatchesRun(t *testing.T) {
	// The pre-computed placement must equal the one a Run uses, observed
	// through the report's per-app core counts.
	cfg := fastConfig()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Apps: []AppSpec{
		{Name: "barnes", Threads: 40, Role: RoleAttacker},
		{Name: "vips", Threads: 40, Role: RoleVictim}, // clipped to 23
	}}
	placed, err := s.PlaceApps(sc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i, app := range rep.Apps {
		if app.Cores != len(placed[i]) {
			t.Errorf("app %d: run used %d cores, PlaceApps predicted %d", i, app.Cores, len(placed[i]))
		}
	}
}

func TestActivateAfterEpochsDelaysAttack(t *testing.T) {
	cfg := fastConfig()
	cfg.Epochs = 6
	cfg.WarmupEpochs = 0
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mesh := s.Mesh()
	ring, err := attack.RingCluster(mesh, mesh.Coord(s.ManagerNode()), 4, 1, s.ManagerNode())
	if err != nil {
		t.Fatal(err)
	}
	sc := fastScenario(t, ring)
	immediate, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.ActivateAfterEpochs = 3
	delayed, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if delayed.InfectionMeasured >= immediate.InfectionMeasured {
		t.Errorf("delayed activation infection %v not below immediate %v",
			delayed.InfectionMeasured, immediate.InfectionMeasured)
	}
	if delayed.InfectionMeasured == 0 {
		t.Error("delayed attack must still activate eventually")
	}
	sc.ActivateAfterEpochs = 100 // beyond the horizon: never activates
	never, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if never.InfectionMeasured != 0 {
		t.Errorf("never-activated attack infected %v packets", never.InfectionMeasured)
	}
}

func TestActivateAfterEpochsValidation(t *testing.T) {
	sc := Scenario{
		Apps:                []AppSpec{{Name: "vips", Threads: 1, Role: RoleVictim}},
		ActivateAfterEpochs: -1,
	}
	if err := sc.Validate(); err == nil {
		t.Error("negative activation delay must fail")
	}
}

func TestLoopbackModeEndToEnd(t *testing.T) {
	cfg := fastConfig()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mesh := s.Mesh()
	ring, err := attack.RingCluster(mesh, mesh.Coord(s.ManagerNode()), 6, 1, s.ManagerNode())
	if err != nil {
		t.Fatal(err)
	}
	sc := fastScenario(t, ring)
	sc.Mode = trojan.ModeLoopback
	rep, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Net.LoopedBack == 0 || rep.Trojan.Looped == 0 {
		t.Fatalf("loopback campaign bounced nothing: net=%d trojan=%d",
			rep.Net.LoopedBack, rep.Trojan.Looped)
	}
}

func TestEpochTrace(t *testing.T) {
	cfg := fastConfig()
	cfg.Epochs = 6
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mesh := s.Mesh()
	ring, err := attack.RingCluster(mesh, mesh.Coord(s.ManagerNode()), 4, 1, s.ManagerNode())
	if err != nil {
		t.Fatal(err)
	}
	sc := fastScenario(t, ring)
	sc.DutyOnEpochs, sc.DutyOffEpochs = 1, 1
	rep, err := s.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) != 6 {
		t.Fatalf("trace length = %d, want 6", len(rep.Epochs))
	}
	for i, rec := range rep.Epochs {
		if rec.Epoch != i {
			t.Fatalf("record %d has epoch %d", i, rec.Epoch)
		}
		wantActive := i%2 == 0 // duty 1/1 starting ON
		if rec.TrojanActive != wantActive {
			t.Errorf("epoch %d active = %v, want %v", i, rec.TrojanActive, wantActive)
		}
		// 32 app cores send one request per epoch; the drop-free fabric
		// delivers all of them.
		if rec.RequestsReceived != 32 {
			t.Errorf("epoch %d received %d requests, want 32", i, rec.RequestsReceived)
		}
		if wantActive && rec.RequestsTampered == 0 {
			t.Errorf("epoch %d: active trojans tampered nothing", i)
		}
		if !wantActive && rec.RequestsTampered != 0 {
			t.Errorf("epoch %d: inactive trojans tampered %d", i, rec.RequestsTampered)
		}
	}
}

func TestEpochTraceCleanRun(t *testing.T) {
	cfg := fastConfig()
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(fastScenario(t, attack.Placement{}))
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range rep.Epochs {
		if rec.TrojanActive || rec.RequestsTampered != 0 {
			t.Fatal("clean run must trace no trojan activity")
		}
	}
	// Levels ramp from the boot floor once grants arrive.
	first, last := rep.Epochs[0], rep.Epochs[len(rep.Epochs)-1]
	if last.VictimMeanLevel <= first.VictimMeanLevel && first.VictimMeanLevel == 0 {
		t.Error("victim levels never ramped up from the boot floor")
	}
}
