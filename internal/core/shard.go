package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/attack"
	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/internal/noc"
	"repro/internal/results"
)

// This file exposes the trial-grid experiments (E3–E6) as shardable raw
// workloads: a flat trial space, a runner for any contiguous [lo, hi)
// range of it, and an assembler that turns the full raw vector back into
// the published table. The single-process table builders in tables.go are
// implemented on top of these, so the distributed path and the local path
// share one code path by construction — the merge contract ("any
// partition of the trial space reassembles bit-identically") is not a
// property tests chase after the fact, it is how the tables are built.
//
// Two rules keep the contract honest:
//
//  1. Every cell of the flat space derives its RNG from the campaign seed
//     and a cell-local index only (exp.TrialSeed), never from the shard
//     bounds, so the values a cell consumes are the same whether it ran
//     in shard 3 of 5 on a remote worker or inline in one process.
//  2. Shards return the raw per-cell float64 values, never partial sums:
//     floating-point addition is not associative, so aggregation happens
//     exactly once, over the fully reassembled vector, in the same loop
//     order the single-process builder uses.

// InfectionCurveSpace is the flat trial-space size of an infection-curve
// experiment (E3/E4): the center-manager series occupies cells
// [0, len(htCounts)*trials) and the corner-manager series the block after
// it. Within a series block, cell i covers HT count htCounts[i/trials],
// trial i%trials — the same layout InfectionVsHTCountCtx fans out over.
func InfectionCurveSpace(htCounts []int, trials int) int {
	return 2 * len(htCounts) * trials
}

// InfectionCurveShardCtx computes the raw per-cell infection rates for
// cells [lo, hi) of an infection-curve experiment's flat trial space.
// Both series blocks reuse the same cell-local trial seeds (the
// single-process builder runs center and corner with the identical seed),
// so a cell's value depends only on the campaign seed and its index.
func InfectionCurveShardCtx(ctx context.Context, size int, htCounts []int, trials int, seed int64, workers, lo, hi int) ([]float64, error) {
	mesh, err := noc.MeshForSize(size)
	if err != nil {
		return nil, err
	}
	if trials < 1 {
		return nil, fmt.Errorf("core: need at least one trial")
	}
	if err := checkShardRange(lo, hi, InfectionCurveSpace(htCounts, trials)); err != nil {
		return nil, err
	}
	managers := [2]noc.NodeID{mesh.Center(), mesh.Corner()}
	block := len(htCounts) * trials
	return exp.RunCtx(ctx, workers, hi-lo, func(_ context.Context, i int) (float64, error) {
		flat := lo + i
		inner := flat % block
		m := htCounts[inner/trials]
		if m == 0 {
			return 0, nil
		}
		manager := managers[flat/block]
		rng := rand.New(rand.NewSource(exp.TrialSeed(seed, inner)))
		p, err := attack.RandomPlacement(mesh, m, rng, manager)
		if err != nil {
			return 0, err
		}
		return metrics.InfectionRateXY(mesh, manager, p.Infected(), nil), nil
	})
}

// InfectionCurveTableFromRaw assembles the E3/E4 table from the fully
// reassembled raw vector, running the exact aggregation loop the
// single-process builder uses (per-series, per-HT-count running sum, then
// mean), so the bytes match a local run for any shard partition.
func InfectionCurveTableFromRaw(id, title string, size int, htCounts []int, trials int, seed int64, raw []float64) (*results.InfectionTable, error) {
	if space := InfectionCurveSpace(htCounts, trials); len(raw) != space {
		return nil, fmt.Errorf("core: raw vector holds %d cells, trial space is %d", len(raw), space)
	}
	params := struct {
		Size     int   `json:"size"`
		HTCounts []int `json:"ht_counts"`
		Trials   int   `json:"trials"`
		Seed     int64 `json:"seed"`
	}{size, htCounts, trials, seed}
	t := &results.InfectionTable{
		Meta:   results.NewMeta(id, title, seed, 0, params),
		XLabel: "hts",
		Series: []string{"gm-center", "gm-corner"},
	}
	block := len(htCounts) * trials
	for pi, m := range htCounts {
		rates := make([]float64, 2)
		for si := range rates {
			sum := 0.0
			for tr := 0; tr < trials; tr++ {
				sum += raw[si*block+pi*trials+tr]
			}
			rates[si] = sum / float64(trials)
		}
		t.Points = append(t.Points, results.InfectionRow{X: m, Rates: rates})
	}
	return t, nil
}

// DistributionSpace is the flat trial-space size of a distribution
// experiment (E5/E6): one block of len(sizes)*trials cells per Fig 4
// distribution, in the series order center, random, corner. Within a
// block, cell i covers system size sizes[i/trials], trial i%trials.
func DistributionSpace(sizes []int, trials int) int {
	if trials < 1 {
		trials = 1
	}
	return 3 * len(sizes) * trials
}

// distributionSeries is the fixed series order of the E5/E6 tables; the
// flat trial space uses one block per entry in this order.
var distributionSeries = [3]Distribution{DistCenter, DistRandom, DistCorner}

// DistributionShardCtx computes the raw per-cell infection rates for
// cells [lo, hi) of a distribution experiment's flat trial space. As with
// the single-process builder, all three distribution blocks reuse the
// same cell-local trial seeds.
func DistributionShardCtx(ctx context.Context, sizes []int, denominator, trials int, seed int64, workers, lo, hi int) ([]float64, error) {
	if trials < 1 {
		trials = 1
	}
	if denominator < 1 {
		return nil, fmt.Errorf("core: invalid denominator %d", denominator)
	}
	if err := checkShardRange(lo, hi, DistributionSpace(sizes, trials)); err != nil {
		return nil, err
	}
	block := len(sizes) * trials
	return exp.RunCtx(ctx, workers, hi-lo, func(_ context.Context, i int) (float64, error) {
		flat := lo + i
		inner := flat % block
		dist := distributionSeries[flat/block]
		size := sizes[inner/trials]
		mesh, err := noc.MeshForSize(size)
		if err != nil {
			return 0, err
		}
		manager := mesh.Center()
		m := size / denominator
		if m < 1 {
			m = 1
		}
		rng := rand.New(rand.NewSource(exp.TrialSeed(seed, inner)))
		var p attack.Placement
		switch dist {
		case DistCenter:
			p, err = attack.CenterCluster(mesh, m, rng, manager)
		case DistCorner:
			p, err = attack.CornerCluster(mesh, m, rng, manager)
		default:
			p, err = attack.RandomPlacement(mesh, m, rng, manager)
		}
		if err != nil {
			return 0, err
		}
		return metrics.InfectionRateXY(mesh, manager, p.Infected(), nil), nil
	})
}

// DistributionTableFromRaw assembles the E5/E6 table from the fully
// reassembled raw vector, running the single-process aggregation loop
// (per-size running sum across each distribution block, then mean).
func DistributionTableFromRaw(id, title string, sizes []int, denominator, trials int, seed int64, raw []float64) (*results.InfectionTable, error) {
	if trials < 1 {
		trials = 1
	}
	if space := DistributionSpace(sizes, trials); len(raw) != space {
		return nil, fmt.Errorf("core: raw vector holds %d cells, trial space is %d", len(raw), space)
	}
	params := struct {
		Sizes       []int `json:"sizes"`
		Denominator int   `json:"denominator"`
		Trials      int   `json:"trials"`
		Seed        int64 `json:"seed"`
	}{sizes, denominator, trials, seed}
	t := &results.InfectionTable{
		Meta:   results.NewMeta(id, title, seed, 0, params),
		XLabel: "size",
		Series: []string{string(DistCenter), string(DistRandom), string(DistCorner)},
	}
	block := len(sizes) * trials
	for si, size := range sizes {
		rates := make([]float64, len(distributionSeries))
		for di := range distributionSeries {
			sum := 0.0
			for tr := 0; tr < trials; tr++ {
				sum += raw[di*block+si*trials+tr]
			}
			rates[di] = sum / float64(trials)
		}
		t.Points = append(t.Points, results.InfectionRow{X: size, Rates: rates})
	}
	return t, nil
}

// checkShardRange validates a [lo, hi) shard range against a trial space.
// An empty range (lo == hi) is permitted: it arises when a table builder
// covers an empty space in one call, and runs zero trials.
func checkShardRange(lo, hi, space int) error {
	if lo < 0 || hi > space || lo > hi {
		return fmt.Errorf("core: shard range [%d, %d) invalid for trial space %d", lo, hi, space)
	}
	return nil
}
