// Package power models per-core DVFS and the chip power budget of the
// paper's Section II-A system model (levels and budget fraction from
// Table I). Cores run
// at one of a small set of voltage/frequency levels; a core's power is
// P(f) = P_static + C_eff·V(f)²·f, the standard CMOS dynamic-power model.
// With C_eff in nanofarads and f in GHz the dynamic term comes out directly
// in watts.
package power

import (
	"errors"
	"fmt"
	"math"
)

// VFLevel is one DVFS operating point.
type VFLevel struct {
	// FreqGHz is the clock frequency at this level.
	FreqGHz float64
	// VoltV is the supply voltage at this level.
	VoltV float64
}

// Model describes one core's power characteristics over a DVFS table.
// Levels must be sorted by ascending frequency.
type Model struct {
	// Levels is the DVFS table, ascending in frequency.
	Levels []VFLevel
	// CeffNF is the effective switched capacitance in nF.
	CeffNF float64
	// StaticW is the leakage (frequency-independent) power in watts.
	StaticW float64
}

// DefaultLevels returns a six-point 45 nm-class DVFS table from 0.5 GHz at
// 0.70 V to 3.0 GHz at 1.20 V.
func DefaultLevels() []VFLevel {
	return []VFLevel{
		{FreqGHz: 0.5, VoltV: 0.70},
		{FreqGHz: 1.0, VoltV: 0.80},
		{FreqGHz: 1.5, VoltV: 0.90},
		{FreqGHz: 2.0, VoltV: 1.00},
		{FreqGHz: 2.5, VoltV: 1.10},
		{FreqGHz: 3.0, VoltV: 1.20},
	}
}

// DefaultModel returns the per-core model used throughout the experiments:
// about 4.0 W at the top level and 0.7 W at the bottom one.
func DefaultModel() *Model {
	return &Model{Levels: DefaultLevels(), CeffNF: 0.8, StaticW: 0.5}
}

// Validate reports structural problems with the model.
func (m *Model) Validate() error {
	if len(m.Levels) == 0 {
		return errors.New("power: model has no DVFS levels")
	}
	for i, l := range m.Levels {
		if l.FreqGHz <= 0 || l.VoltV <= 0 {
			return fmt.Errorf("power: level %d has nonpositive frequency or voltage", i)
		}
		if i > 0 && l.FreqGHz <= m.Levels[i-1].FreqGHz {
			return fmt.Errorf("power: level %d not ascending in frequency", i)
		}
	}
	if m.CeffNF <= 0 || m.StaticW < 0 {
		return errors.New("power: invalid capacitance or static power")
	}
	return nil
}

// NumLevels returns the number of DVFS levels.
func (m *Model) NumLevels() int { return len(m.Levels) }

// Power returns the core power in watts at DVFS level idx.
func (m *Model) Power(idx int) float64 {
	l := m.Levels[idx]
	return m.StaticW + m.CeffNF*l.VoltV*l.VoltV*l.FreqGHz
}

// PowerMW returns Power(idx) in integer milliwatts, the unit carried in the
// 32-bit POWER_REQ payload.
func (m *Model) PowerMW(idx int) uint32 { return uint32(math.Round(m.Power(idx) * 1000)) }

// Freq returns the frequency in GHz at level idx.
func (m *Model) Freq(idx int) float64 { return m.Levels[idx].FreqGHz }

// MinPower and MaxPower return the wattage extremes of the table.
func (m *Model) MinPower() float64 { return m.Power(0) }

// MaxPower returns the power at the top DVFS level.
func (m *Model) MaxPower() float64 { return m.Power(len(m.Levels) - 1) }

// LevelForBudget returns the highest level whose power fits within budget
// watts. If even the lowest level exceeds the budget the core still runs at
// level 0 (a core cannot be switched off in this model) and ok is false.
func (m *Model) LevelForBudget(budget float64) (level int, ok bool) {
	level, ok = 0, false
	for i := range m.Levels {
		if m.Power(i) <= budget {
			level, ok = i, true
		}
	}
	return level, ok
}
