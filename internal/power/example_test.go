package power_test

import (
	"fmt"

	"repro/internal/power"
)

// A core granted 2 W runs at the highest DVFS level that fits; a core whose
// request was zeroed by a Trojan is pinned at the floor.
func ExampleModel_LevelForBudget() {
	m := power.DefaultModel()
	level, ok := m.LevelForBudget(2.0)
	fmt.Printf("2.0 W -> level %d (%.1f GHz), fits=%v\n", level, m.Freq(level), ok)

	starved, ok := m.LevelForBudget(0.0)
	fmt.Printf("0.0 W -> level %d (%.1f GHz), fits=%v\n", starved, m.Freq(starved), ok)
	// Output:
	// 2.0 W -> level 2 (1.5 GHz), fits=true
	// 0.0 W -> level 0 (0.5 GHz), fits=false
}
