package power

import (
	"testing"
	"testing/quick"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	tests := []struct {
		name string
		give *Model
	}{
		{name: "no levels", give: &Model{CeffNF: 1}},
		{name: "zero freq", give: &Model{Levels: []VFLevel{{FreqGHz: 0, VoltV: 1}}, CeffNF: 1}},
		{name: "zero volt", give: &Model{Levels: []VFLevel{{FreqGHz: 1, VoltV: 0}}, CeffNF: 1}},
		{name: "not ascending", give: &Model{Levels: []VFLevel{{2, 1}, {1, 1}}, CeffNF: 1}},
		{name: "zero ceff", give: &Model{Levels: DefaultLevels(), CeffNF: 0}},
		{name: "negative static", give: &Model{Levels: DefaultLevels(), CeffNF: 1, StaticW: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
}

func TestPowerMonotonicInLevel(t *testing.T) {
	m := DefaultModel()
	for i := 1; i < m.NumLevels(); i++ {
		if m.Power(i) <= m.Power(i-1) {
			t.Errorf("Power(%d)=%v not > Power(%d)=%v", i, m.Power(i), i-1, m.Power(i-1))
		}
	}
}

func TestPowerFormula(t *testing.T) {
	m := &Model{Levels: []VFLevel{{FreqGHz: 2, VoltV: 1}}, CeffNF: 0.5, StaticW: 0.25}
	// 0.25 + 0.5·1²·2 = 1.25 W
	if got := m.Power(0); got != 1.25 {
		t.Errorf("Power = %v, want 1.25", got)
	}
	if got := m.PowerMW(0); got != 1250 {
		t.Errorf("PowerMW = %v, want 1250", got)
	}
}

func TestDefaultModelRange(t *testing.T) {
	m := DefaultModel()
	if m.MinPower() < 0.5 || m.MinPower() > 1.0 {
		t.Errorf("MinPower = %v, want within [0.5, 1.0] W", m.MinPower())
	}
	if m.MaxPower() < 3.5 || m.MaxPower() > 4.5 {
		t.Errorf("MaxPower = %v, want within [3.5, 4.5] W", m.MaxPower())
	}
}

func TestLevelForBudget(t *testing.T) {
	m := DefaultModel()
	tests := []struct {
		name      string
		budget    float64
		wantLevel int
		wantOK    bool
	}{
		{name: "huge budget tops out", budget: 100, wantLevel: m.NumLevels() - 1, wantOK: true},
		{name: "exact max", budget: m.MaxPower(), wantLevel: m.NumLevels() - 1, wantOK: true},
		{name: "just under max", budget: m.MaxPower() - 0.001, wantLevel: m.NumLevels() - 2, wantOK: true},
		{name: "exact min", budget: m.MinPower(), wantLevel: 0, wantOK: true},
		{name: "starved", budget: 0.01, wantLevel: 0, wantOK: false},
		{name: "zero", budget: 0, wantLevel: 0, wantOK: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			level, ok := m.LevelForBudget(tt.budget)
			if level != tt.wantLevel || ok != tt.wantOK {
				t.Errorf("LevelForBudget(%v) = (%d,%v), want (%d,%v)", tt.budget, level, ok, tt.wantLevel, tt.wantOK)
			}
		})
	}
}

// Property: for any budget, the selected level's power fits the budget
// whenever ok is true, and the next level up (if any) would exceed it.
func TestLevelForBudgetIsMaximal(t *testing.T) {
	m := DefaultModel()
	f := func(raw uint16) bool {
		budget := float64(raw) / 10000 * m.MaxPower() * 1.2
		level, ok := m.LevelForBudget(budget)
		if ok {
			if m.Power(level) > budget {
				return false
			}
			if level+1 < m.NumLevels() && m.Power(level+1) <= budget {
				return false
			}
		} else if m.Power(0) <= budget {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFreqAccessor(t *testing.T) {
	m := DefaultModel()
	if m.Freq(0) != 0.5 || m.Freq(m.NumLevels()-1) != 3.0 {
		t.Errorf("Freq endpoints = %v..%v, want 0.5..3.0", m.Freq(0), m.Freq(m.NumLevels()-1))
	}
}
