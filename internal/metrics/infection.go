package metrics

import "repro/internal/noc"

// InfectionRateXY is the closed-form infection-rate predictor for
// deterministic dimension-order routing: the fraction of source nodes
// whose power requests cross at least one infected router on the way to
// the global manager. The walked path is Mesh.PathXY's — straight-line XY
// on a plain mesh, the minimal wraparound path of TorusRouting on a
// torus — so prediction and simulation trace the same routers on either
// topology. Sources defaults to every node except the manager when nil.
// Both endpoints count: an HT in the source's own router or in the
// manager's router sees the packet at its RC stage.
func InfectionRateXY(m noc.Mesh, gm noc.NodeID, infected map[noc.NodeID]bool, sources []noc.NodeID) float64 {
	if len(infected) == 0 {
		return 0
	}
	if sources == nil {
		sources = make([]noc.NodeID, 0, m.Nodes()-1)
		for id := noc.NodeID(0); id < noc.NodeID(m.Nodes()); id++ {
			if id != gm {
				sources = append(sources, id)
			}
		}
	}
	if len(sources) == 0 {
		return 0
	}
	hit := 0
	for _, src := range sources {
		if pathCrossesInfected(m, src, gm, infected) {
			hit++
		}
	}
	return float64(hit) / float64(len(sources))
}

// pathCrossesInfected walks the PathXY route without materialising it.
func pathCrossesInfected(m noc.Mesh, src, dst noc.NodeID, infected map[noc.NodeID]bool) bool {
	c, cd := m.Coord(src), m.Coord(dst)
	if infected[m.ID(c)] {
		return true
	}
	for c != cd {
		c = m.StepToward(c, cd)
		if infected[m.ID(c)] {
			return true
		}
	}
	return false
}

// InfectionCounter measures the realised infection rate from a simulation:
// the fraction of delivered POWER_REQ packets that crossed an active Trojan
// (HTSeen). Packets whose payload was actually rewritten are counted
// separately in Tampered.
type InfectionCounter struct {
	// Delivered counts POWER_REQ packets that reached the manager.
	Delivered uint64
	// Infected counts those that crossed at least one active Trojan.
	Infected uint64
	// Tampered counts those whose payload was modified.
	Tampered uint64
}

// Observe records one delivered power-request packet.
func (c *InfectionCounter) Observe(p *noc.Packet) {
	if p.Type != noc.TypePowerReq {
		return
	}
	c.Delivered++
	if p.HTSeen {
		c.Infected++
	}
	if p.Tampered {
		c.Tampered++
	}
}

// Rate returns the measured infection rate, or 0 before any delivery.
func (c *InfectionCounter) Rate() float64 {
	if c.Delivered == 0 {
		return 0
	}
	return float64(c.Infected) / float64(c.Delivered)
}

// TamperRate returns the fraction of delivered requests whose payload was
// rewritten.
func (c *InfectionCounter) TamperRate() float64 {
	if c.Delivered == 0 {
		return 0
	}
	return float64(c.Tampered) / float64(c.Delivered)
}
