package metrics_test

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/noc"
)

// The paper's Definition 3: two attackers sped up to 1.2×, two victims cut
// to 0.6× gives an attack effect of 2.
func ExampleAttackEffectQ() {
	q := metrics.AttackEffectQ(
		[]float64{1.2, 1.2}, // attacker Θ values
		[]float64{0.6, 0.6}, // victim Θ values
	)
	fmt.Printf("Q = %.1f\n", q)
	// Output: Q = 2.0
}

// An HT in the only router column between the sources and the manager
// intercepts every request.
func ExampleInfectionRateXY() {
	mesh := noc.Mesh{Width: 4, Height: 1}
	gm := mesh.ID(noc.Coord{X: 0, Y: 0})
	infected := map[noc.NodeID]bool{mesh.ID(noc.Coord{X: 1, Y: 0}): true}
	rate := metrics.InfectionRateXY(mesh, gm, infected, nil)
	fmt.Printf("infection rate = %.2f\n", rate)
	// Output: infection rate = 1.00
}

// Definitions 6-8 for a two-Trojan fleet.
func ExampleDistanceRho() {
	mesh := noc.Mesh{Width: 8, Height: 8}
	gm := mesh.ID(noc.Coord{X: 0, Y: 0})
	fleet := []noc.NodeID{
		mesh.ID(noc.Coord{X: 2, Y: 2}),
		mesh.ID(noc.Coord{X: 4, Y: 4}),
	}
	rho, _ := metrics.DistanceRho(mesh, gm, fleet)
	eta, _ := metrics.DensityEta(mesh, fleet)
	fmt.Printf("rho = %.0f, eta = %.0f\n", rho, eta)
	// Output: rho = 6, eta = 2
}
