// Package metrics implements the paper's measurement framework, Section IV
// Definitions 1–8: application performance θ, performance change Θ, attack
// effect Q, power-budget sensitivity φ/Φ, the Trojan fleet's virtual center
// ω, its distance ρ to the global manager, its density η, and the infection
// rate of power-request traffic.
package metrics

import (
	"errors"
	"math"

	"repro/internal/noc"
)

// ErrNoNodes is returned when a geometric measure is requested for an empty
// node set.
var ErrNoNodes = errors.New("metrics: empty node set")

// AppPerformance is Definition 1: θ_k = Σ_{j∈C_k} IPC(j,k,f_j)·f_j, the sum
// over application k's cores of per-core throughput. Callers pass the
// per-core throughput values (instructions per nanosecond).
func AppPerformance(coreThroughputs []float64) float64 {
	s := 0.0
	for _, v := range coreThroughputs {
		s += v
	}
	return s
}

// PerformanceChange is Definition 2: Θ_k = θ_k / Λ_k, the application's
// performance with Trojans over its performance without. It returns 0 when
// the baseline is zero.
func PerformanceChange(withHT, withoutHT float64) float64 {
	if withoutHT == 0 {
		return 0
	}
	return withHT / withoutHT
}

// AttackEffectQ is Definition 3:
//
//	Q(Δ,Γ) = (V · Σ_{a∈Δ} Θ_a) / (A · Σ_{v∈Γ} Θ_v)
//
// where Δ are the attacker applications' performance changes and Γ the
// victims'. V and A are the victim and attacker counts. It returns +Inf
// when the victims' performance collapsed to zero and 0 for empty inputs.
func AttackEffectQ(attackerChanges, victimChanges []float64) float64 {
	a := float64(len(attackerChanges))
	v := float64(len(victimChanges))
	if a == 0 || v == 0 {
		return 0
	}
	var sumA, sumV float64
	for _, x := range attackerChanges {
		sumA += x
	}
	for _, x := range victimChanges {
		sumV += x
	}
	if sumV == 0 {
		return math.Inf(1)
	}
	return (v * sumA) / (a * sumV)
}

// CoreSensitivity is Definition 4: φ(j,z) = Σ_i |P(τ_i) − P(τ_{i+1})| /
// (τ_i − τ_{i+1}) over adjacent frequency levels, where P is the core's
// performance at each level. perfAtLevel must align with freqsGHz.
func CoreSensitivity(freqsGHz, perfAtLevel []float64) float64 {
	if len(freqsGHz) != len(perfAtLevel) {
		return 0
	}
	s := 0.0
	for i := 0; i+1 < len(freqsGHz); i++ {
		d := freqsGHz[i] - freqsGHz[i+1]
		if d == 0 {
			continue
		}
		s += math.Abs((perfAtLevel[i] - perfAtLevel[i+1]) / d)
	}
	return s
}

// AppSensitivity is Definition 5: Φ_k = Σ_{i∈C_k} φ(i,k) / |C_k|, the mean
// core sensitivity over the application's cores.
func AppSensitivity(coreSensitivities []float64) float64 {
	if len(coreSensitivities) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range coreSensitivities {
		s += v
	}
	return s / float64(len(coreSensitivities))
}

// VirtualCenter is Definition 6: the mean coordinate (ω_X, ω_Y) of the
// malicious nodes.
func VirtualCenter(m noc.Mesh, nodes []noc.NodeID) (ox, oy float64, err error) {
	if len(nodes) == 0 {
		return 0, 0, ErrNoNodes
	}
	for _, id := range nodes {
		c := m.Coord(id)
		ox += float64(c.X)
		oy += float64(c.Y)
	}
	n := float64(len(nodes))
	return ox / n, oy / n, nil
}

// DistanceRho is Definition 7: ρ = MD(O, Ω), the Manhattan distance between
// the global manager O and the Trojans' virtual center Ω (real-valued).
func DistanceRho(m noc.Mesh, gm noc.NodeID, nodes []noc.NodeID) (float64, error) {
	ox, oy, err := VirtualCenter(m, nodes)
	if err != nil {
		return 0, err
	}
	c := m.Coord(gm)
	return math.Abs(float64(c.X)-ox) + math.Abs(float64(c.Y)-oy), nil
}

// DensityEta is Definition 8: η = Σ_i MD(Ω, M_i) / m, the mean Manhattan
// distance between the virtual center and each malicious node. Despite the
// paper's name, smaller η means a tighter (denser) cluster.
func DensityEta(m noc.Mesh, nodes []noc.NodeID) (float64, error) {
	ox, oy, err := VirtualCenter(m, nodes)
	if err != nil {
		return 0, err
	}
	s := 0.0
	for _, id := range nodes {
		c := m.Coord(id)
		s += math.Abs(float64(c.X)-ox) + math.Abs(float64(c.Y)-oy)
	}
	return s / float64(len(nodes)), nil
}
