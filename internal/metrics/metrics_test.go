package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/noc"
)

func TestAppPerformance(t *testing.T) {
	if got := AppPerformance([]float64{1, 2, 3}); got != 6 {
		t.Errorf("θ = %v, want 6", got)
	}
	if got := AppPerformance(nil); got != 0 {
		t.Errorf("θ of nothing = %v, want 0", got)
	}
}

func TestPerformanceChange(t *testing.T) {
	if got := PerformanceChange(3, 2); got != 1.5 {
		t.Errorf("Θ = %v, want 1.5", got)
	}
	if got := PerformanceChange(1, 0); got != 0 {
		t.Errorf("Θ with zero baseline = %v, want 0", got)
	}
}

func TestAttackEffectQ(t *testing.T) {
	// 2 attackers improved to 1.2, 1.4; 3 victims degraded to 0.5, 0.6, 0.7.
	q := AttackEffectQ([]float64{1.2, 1.4}, []float64{0.5, 0.6, 0.7})
	want := (3.0 * 2.6) / (2.0 * 1.8)
	if math.Abs(q-want) > 1e-12 {
		t.Errorf("Q = %v, want %v", q, want)
	}
}

func TestAttackEffectQNeutralIsOne(t *testing.T) {
	// No performance change anywhere: Q must be exactly 1.
	q := AttackEffectQ([]float64{1, 1}, []float64{1, 1, 1})
	if q != 1 {
		t.Errorf("neutral Q = %v, want 1", q)
	}
}

func TestAttackEffectQEdgeCases(t *testing.T) {
	if got := AttackEffectQ(nil, []float64{1}); got != 0 {
		t.Errorf("no attackers Q = %v, want 0", got)
	}
	if got := AttackEffectQ([]float64{1}, nil); got != 0 {
		t.Errorf("no victims Q = %v, want 0", got)
	}
	if got := AttackEffectQ([]float64{1}, []float64{0}); !math.IsInf(got, 1) {
		t.Errorf("collapsed victims Q = %v, want +Inf", got)
	}
}

// Property: Q increases when any attacker improves or any victim degrades.
func TestAttackEffectQMonotonicity(t *testing.T) {
	f := func(a, v uint8) bool {
		base := AttackEffectQ([]float64{1}, []float64{1})
		up := AttackEffectQ([]float64{1 + float64(a)/255}, []float64{1})
		down := AttackEffectQ([]float64{1}, []float64{1 + float64(v)/255})
		return up >= base && down <= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCoreSensitivity(t *testing.T) {
	freqs := []float64{1, 2, 3}
	perf := []float64{1, 3, 6} // slopes 2 and 3 → φ = 5
	if got := CoreSensitivity(freqs, perf); got != 5 {
		t.Errorf("φ = %v, want 5", got)
	}
}

func TestCoreSensitivityMismatchedInput(t *testing.T) {
	if got := CoreSensitivity([]float64{1, 2}, []float64{1}); got != 0 {
		t.Errorf("mismatched φ = %v, want 0", got)
	}
}

func TestCoreSensitivityAbsoluteValue(t *testing.T) {
	// Decreasing performance still contributes positively.
	freqs := []float64{1, 2}
	perf := []float64{5, 1}
	if got := CoreSensitivity(freqs, perf); got != 4 {
		t.Errorf("φ = %v, want 4", got)
	}
}

func TestAppSensitivity(t *testing.T) {
	if got := AppSensitivity([]float64{2, 4}); got != 3 {
		t.Errorf("Φ = %v, want 3", got)
	}
	if got := AppSensitivity(nil); got != 0 {
		t.Errorf("Φ of nothing = %v, want 0", got)
	}
}

func TestVirtualCenter(t *testing.T) {
	m := noc.Mesh{Width: 8, Height: 8}
	nodes := []noc.NodeID{m.ID(noc.Coord{X: 1, Y: 1}), m.ID(noc.Coord{X: 3, Y: 5})}
	ox, oy, err := VirtualCenter(m, nodes)
	if err != nil {
		t.Fatalf("VirtualCenter: %v", err)
	}
	if ox != 2 || oy != 3 {
		t.Errorf("ω = (%v,%v), want (2,3)", ox, oy)
	}
}

func TestVirtualCenterEmpty(t *testing.T) {
	m := noc.Mesh{Width: 4, Height: 4}
	if _, _, err := VirtualCenter(m, nil); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v, want ErrNoNodes", err)
	}
}

func TestDistanceRho(t *testing.T) {
	m := noc.Mesh{Width: 8, Height: 8}
	gm := m.ID(noc.Coord{X: 0, Y: 0})
	nodes := []noc.NodeID{m.ID(noc.Coord{X: 2, Y: 2}), m.ID(noc.Coord{X: 4, Y: 4})}
	rho, err := DistanceRho(m, gm, nodes)
	if err != nil {
		t.Fatalf("DistanceRho: %v", err)
	}
	if rho != 6 { // center (3,3): |0-3|+|0-3|
		t.Errorf("ρ = %v, want 6", rho)
	}
}

func TestDensityEta(t *testing.T) {
	m := noc.Mesh{Width: 8, Height: 8}
	// Cluster of one node: η = 0.
	one := []noc.NodeID{m.ID(noc.Coord{X: 3, Y: 3})}
	eta, err := DensityEta(m, one)
	if err != nil || eta != 0 {
		t.Errorf("singleton η = %v (%v), want 0", eta, err)
	}
	// Two nodes 4 apart: center midway, each 2 away → η = 2.
	two := []noc.NodeID{m.ID(noc.Coord{X: 1, Y: 3}), m.ID(noc.Coord{X: 5, Y: 3})}
	eta, err = DensityEta(m, two)
	if err != nil || eta != 2 {
		t.Errorf("pair η = %v (%v), want 2", eta, err)
	}
}

func TestDensityEtaTightVsSpread(t *testing.T) {
	m := noc.Mesh{Width: 16, Height: 16}
	tight := []noc.NodeID{
		m.ID(noc.Coord{X: 7, Y: 7}), m.ID(noc.Coord{X: 8, Y: 7}),
		m.ID(noc.Coord{X: 7, Y: 8}), m.ID(noc.Coord{X: 8, Y: 8}),
	}
	spread := []noc.NodeID{
		m.ID(noc.Coord{X: 0, Y: 0}), m.ID(noc.Coord{X: 15, Y: 0}),
		m.ID(noc.Coord{X: 0, Y: 15}), m.ID(noc.Coord{X: 15, Y: 15}),
	}
	etaT, _ := DensityEta(m, tight)
	etaS, _ := DensityEta(m, spread)
	if etaT >= etaS {
		t.Errorf("tight η %v must be below spread η %v", etaT, etaS)
	}
}

func TestInfectionRateXYNoTrojans(t *testing.T) {
	m := noc.Mesh{Width: 8, Height: 8}
	if got := InfectionRateXY(m, m.Center(), nil, nil); got != 0 {
		t.Errorf("rate = %v, want 0", got)
	}
}

func TestInfectionRateXYManagerRouterInterceptsAll(t *testing.T) {
	// An HT in the manager's own router sees every request: rate 1.
	m := noc.Mesh{Width: 8, Height: 8}
	gm := m.Center()
	infected := map[noc.NodeID]bool{gm: true}
	if got := InfectionRateXY(m, gm, infected, nil); got != 1 {
		t.Errorf("rate = %v, want 1", got)
	}
}

func TestInfectionRateXYSingleOffPathTrojan(t *testing.T) {
	// GM at origin; HT at the far corner: only the corner node itself is
	// infected (its own requests start in the infected router).
	m := noc.Mesh{Width: 8, Height: 8}
	gm := m.ID(noc.Coord{X: 0, Y: 0})
	far := m.ID(noc.Coord{X: 7, Y: 7})
	infected := map[noc.NodeID]bool{far: true}
	want := 1.0 / 63.0
	if got := InfectionRateXY(m, gm, infected, nil); math.Abs(got-want) > 1e-12 {
		t.Errorf("rate = %v, want %v", got, want)
	}
}

func TestInfectionRateXYColumnTrojan(t *testing.T) {
	// With the GM at (0,0) and XY routing, an HT at (0, y) for y > 0
	// intercepts every source with Y > y in column 0 plus all rows below…
	// check against an explicit path walk.
	m := noc.Mesh{Width: 4, Height: 4}
	gm := m.ID(noc.Coord{X: 0, Y: 0})
	ht := m.ID(noc.Coord{X: 0, Y: 2})
	infected := map[noc.NodeID]bool{ht: true}
	got := InfectionRateXY(m, gm, infected, nil)
	// Exhaustive check.
	hit := 0
	for id := noc.NodeID(0); id < 16; id++ {
		if id == gm {
			continue
		}
		for _, r := range m.PathXY(id, gm) {
			if infected[r] {
				hit++
				break
			}
		}
	}
	want := float64(hit) / 15
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("rate = %v, want %v", got, want)
	}
}

func TestInfectionRateXYCustomSources(t *testing.T) {
	m := noc.Mesh{Width: 4, Height: 4}
	gm := m.ID(noc.Coord{X: 0, Y: 0})
	ht := m.ID(noc.Coord{X: 1, Y: 0})
	infected := map[noc.NodeID]bool{ht: true}
	// Source (3,0): XY path crosses (1,0) → infected.
	// Source (0,3): path stays in column 0 → clean.
	srcHot := m.ID(noc.Coord{X: 3, Y: 0})
	srcCold := m.ID(noc.Coord{X: 0, Y: 3})
	if got := InfectionRateXY(m, gm, infected, []noc.NodeID{srcHot}); got != 1 {
		t.Errorf("hot source rate = %v, want 1", got)
	}
	if got := InfectionRateXY(m, gm, infected, []noc.NodeID{srcCold}); got != 0 {
		t.Errorf("cold source rate = %v, want 0", got)
	}
	if got := InfectionRateXY(m, gm, infected, []noc.NodeID{}); got != 0 {
		t.Errorf("no sources rate = %v, want 0", got)
	}
}

// Property: the closed-form predictor agrees exactly with walking PathXY
// for random HT sets.
func TestInfectionRateXYAgreesWithPathWalk(t *testing.T) {
	m := noc.Mesh{Width: 6, Height: 5}
	gm := m.Center()
	f := func(raw []uint8) bool {
		infected := make(map[noc.NodeID]bool)
		for _, r := range raw {
			infected[noc.NodeID(int(r)%m.Nodes())] = true
		}
		got := InfectionRateXY(m, gm, infected, nil)
		hit, total := 0, 0
		for id := noc.NodeID(0); id < noc.NodeID(m.Nodes()); id++ {
			if id == gm {
				continue
			}
			total++
			for _, r := range m.PathXY(id, gm) {
				if infected[r] {
					hit++
					break
				}
			}
		}
		want := float64(hit) / float64(total)
		return math.Abs(got-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestInfectionCounter(t *testing.T) {
	var c InfectionCounter
	if c.Rate() != 0 || c.TamperRate() != 0 {
		t.Error("empty counter rates must be 0")
	}
	c.Observe(&noc.Packet{Type: noc.TypePowerReq})
	c.Observe(&noc.Packet{Type: noc.TypePowerReq, HTSeen: true})
	c.Observe(&noc.Packet{Type: noc.TypePowerReq, HTSeen: true, Tampered: true})
	c.Observe(&noc.Packet{Type: noc.TypeMemReadReq, Tampered: true, HTSeen: true}) // ignored
	if c.Delivered != 3 || c.Infected != 2 || c.Tampered != 1 {
		t.Errorf("counter = %+v, want 3/2/1", c)
	}
	if c.Rate() != 2.0/3.0 {
		t.Errorf("rate = %v, want 2/3", c.Rate())
	}
	if c.TamperRate() != 1.0/3.0 {
		t.Errorf("tamper rate = %v, want 1/3", c.TamperRate())
	}
}
