package budget

// DPKnapsack is the dynamic-programming allocator modelled on fine-grained
// runtime power budgeting [9]. It solves a multiple-choice knapsack: each
// core picks exactly one DVFS level (capped at its request), the total
// power must fit the budget, and the summed level value (expected
// throughput) is maximised. The budget axis is quantised to QuantMW
// milliwatts to bound the table.
type DPKnapsack struct {
	// QuantMW is the budget quantisation step in milliwatts.
	QuantMW uint32
}

var _ Allocator = DPKnapsack{}

// NewDPKnapsack returns a DP allocator with the given quantisation step
// (clamped to at least 1 mW).
func NewDPKnapsack(quantMW uint32) DPKnapsack {
	if quantMW < 1 {
		quantMW = 1
	}
	return DPKnapsack{QuantMW: quantMW}
}

// Name implements Allocator.
func (DPKnapsack) Name() string { return "dp" }

// Allocate implements Allocator.
func (d DPKnapsack) Allocate(budgetMW uint64, reqs []Request) []uint32 {
	grants := make([]uint32, len(reqs))
	if len(reqs) == 0 {
		return grants
	}
	quant := uint64(d.QuantMW)
	cols := int(budgetMW/quant) + 1

	// choices[i] are the candidate (power, value) pairs for core i: every
	// level at or below the core's request, or the bare request when no
	// level fits (a starved core runs on whatever it was granted).
	type choice struct {
		mw    uint32
		units int
		value float64
	}
	choices := make([][]choice, len(reqs))
	for i, r := range reqs {
		// The zero-grant choice keeps the program feasible for any budget
		// and lets the optimiser park a core — which is exactly what
		// happens to a victim whose request was tampered to zero.
		cs := []choice{{mw: 0, units: 0, value: 0}}
		for li, lvl := range r.LevelsMW {
			if lvl > r.RequestMW {
				break
			}
			v := 0.0
			if li < len(r.LevelValues) {
				v = r.LevelValues[li]
			}
			// Ceiling quantisation guarantees the un-quantised grant sum
			// never exceeds the budget.
			cs = append(cs, choice{mw: lvl, units: int((uint64(lvl) + quant - 1) / quant), value: v})
		}
		choices[i] = cs
	}

	const negInf = -1e18
	// best[j] = max value using cores processed so far with j budget units;
	// pick[i][j] = chosen level index for core i at state j.
	best := make([]float64, cols)
	for j := range best {
		best[j] = negInf
	}
	best[0] = 0
	pick := make([][]int16, len(reqs))
	for i := range reqs {
		pick[i] = make([]int16, cols)
		next := make([]float64, cols)
		for j := range next {
			next[j] = negInf
			pick[i][j] = -1
		}
		for j := 0; j < cols; j++ {
			if best[j] == negInf {
				continue
			}
			for ci, c := range choices[i] {
				nj := j + c.units
				if nj >= cols {
					continue
				}
				if v := best[j] + c.value; v > next[nj] {
					next[nj] = v
					pick[i][nj] = int16(ci)
				}
			}
		}
		best = next
	}

	// Find the best reachable end state and trace back.
	bestJ, bestV := -1, negInf
	for j := 0; j < cols; j++ {
		if best[j] > bestV {
			bestV, bestJ = best[j], j
		}
	}
	if bestJ < 0 {
		return grants // no feasible assignment: everyone gets zero
	}
	j := bestJ
	for i := len(reqs) - 1; i >= 0; i-- {
		ci := pick[i][j]
		if ci < 0 {
			// Unreachable in a consistent table; grant the floor.
			continue
		}
		c := choices[i][ci]
		grants[i] = c.mw
		j -= c.units
	}
	return grants
}
