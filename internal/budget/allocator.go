// Package budget implements the chip's power-budgeting subsystem of the
// paper's Section II-A: the global manager that solicits per-core power
// requests over the NoC and the allocation algorithms that divide the chip
// budget among cores.
//
// Four allocator families from the paper's related work are provided —
// proportional fair share, a sensitivity-ordered greedy heuristic [8], a
// multiple-choice-knapsack dynamic program [9], and a PI controller [12] —
// because the paper claims the attack works "irrespective of the power
// budgeting algorithms"; the allocator ablation benchmark tests exactly
// that claim.
package budget

import (
	"sort"

	"repro/internal/registry"
)

// Request is one core's power solicitation as the global manager sees it.
// RequestMW arrives in a POWER_REQ packet (and may have been tampered with
// in flight); the hint fields are OS-level knowledge held by the manager
// itself and are not carried on the NoC, so Trojans cannot touch them.
type Request struct {
	// Core is the requesting core.
	Core int
	// RequestMW is the requested power in milliwatts as received.
	RequestMW uint32
	// Sensitivity is the Φ hint (Definition 5) for the application running
	// on this core.
	Sensitivity float64
	// LevelsMW are the core's selectable DVFS power draws, ascending, in
	// milliwatts.
	LevelsMW []uint32
	// LevelValues are the expected throughputs at each level (same length
	// as LevelsMW), used by value-aware allocators.
	LevelValues []float64
}

// Allocator divides a chip budget among requests. Implementations must be
// deterministic and must return one grant per request, in order.
type Allocator interface {
	// Allocate returns per-core grants in milliwatts. The sum of grants
	// must not exceed budgetMW (modulo sub-milliwatt rounding).
	Allocate(budgetMW uint64, reqs []Request) []uint32
	// Name identifies the allocator in reports and benchmarks.
	Name() string
}

// StatefulAllocator is implemented by allocators that carry state across
// Allocate calls (the PI controller); CloneAllocator hands each independent
// run a fresh copy so concurrent campaigns never share mutable state.
type StatefulAllocator interface {
	Allocator
	// CloneAllocator returns an equivalent allocator with fresh state.
	CloneAllocator() Allocator
}

// CloneAllocator returns an allocator safe to drive an independent run:
// stateful allocators are copied with fresh state, stateless ones are
// returned as-is.
func CloneAllocator(a Allocator) Allocator {
	if s, ok := a.(StatefulAllocator); ok {
		return s.CloneAllocator()
	}
	return a
}

// Registry is the allocator plugin registry. The four built-in families
// register here with default parameters; external axes (the SDK, the
// campaign engine, CLI flags) resolve and enumerate allocators through it.
var Registry = registry.New[Allocator]("budget", "allocator")

func init() {
	Registry.Register("fair", func() Allocator { return FairShare{} })
	Registry.Register("greedy", func() Allocator { return Greedy{} })
	Registry.Register("dp", func() Allocator { return NewDPKnapsack(50) })
	Registry.Register("pi", func() Allocator { return NewPIController(0.5) })
}

// ByName returns the named allocator with default parameters.
func ByName(name string) (Allocator, error) { return Registry.Lookup(name) }

// All returns one instance of every allocator, for ablations, in
// registration order (fair, greedy, dp, pi).
func All() []Allocator { return Registry.All() }

// FairShare grants each core its request when the budget covers the total,
// and scales all requests proportionally when it does not. This is the
// baseline policy and the one under which the attack mechanism is easiest
// to see: shrinking a victim's request directly shrinks its share.
type FairShare struct{}

var _ Allocator = FairShare{}

// Name implements Allocator.
func (FairShare) Name() string { return "fair" }

// Allocate implements Allocator.
func (FairShare) Allocate(budgetMW uint64, reqs []Request) []uint32 {
	grants := make([]uint32, len(reqs))
	var total uint64
	for _, r := range reqs {
		total += uint64(r.RequestMW)
	}
	if total == 0 {
		return grants
	}
	if total <= budgetMW {
		for i, r := range reqs {
			grants[i] = r.RequestMW
		}
		return grants
	}
	scale := float64(budgetMW) / float64(total)
	for i, r := range reqs {
		grants[i] = uint32(float64(r.RequestMW) * scale)
	}
	return grants
}

// Greedy is the heuristic allocator modelled on user-experience-oriented
// power adaptation [8]: every core first receives its lowest-level power,
// then the remaining budget is spent upgrading cores in descending order of
// their sensitivity hint, never past their request.
type Greedy struct{}

var _ Allocator = Greedy{}

// Name implements Allocator.
func (Greedy) Name() string { return "greedy" }

// Allocate implements Allocator.
func (Greedy) Allocate(budgetMW uint64, reqs []Request) []uint32 {
	grants := make([]uint32, len(reqs))
	var spent uint64
	for i, r := range reqs {
		base := baseLevelMW(r)
		grants[i] = base
		spent += uint64(base)
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := reqs[order[a]], reqs[order[b]]
		if ra.Sensitivity != rb.Sensitivity {
			return ra.Sensitivity > rb.Sensitivity
		}
		return ra.Core < rb.Core
	})
	for _, i := range order {
		r := reqs[i]
		for _, lvl := range r.LevelsMW {
			if lvl <= grants[i] || lvl > r.RequestMW {
				continue
			}
			delta := uint64(lvl - grants[i])
			if spent+delta > budgetMW {
				break
			}
			spent += delta
			grants[i] = lvl
		}
	}
	return grants
}

// baseLevelMW is the mandatory floor grant for a request: the lowest DVFS
// level, or zero when the request carries no level table.
func baseLevelMW(r Request) uint32 {
	if len(r.LevelsMW) == 0 {
		return 0
	}
	base := r.LevelsMW[0]
	if base > r.RequestMW {
		// Even the floor exceeds the (possibly tampered) request: honour
		// the request value — this is precisely how a zeroed request
		// starves a victim.
		return r.RequestMW
	}
	return base
}
