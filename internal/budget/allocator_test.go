package budget

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/noc"
)

// testLevels is a small DVFS menu in mW with matching throughput values.
var (
	testLevels = []uint32{700, 1200, 1800, 2500, 3300, 4000}
	testValues = []float64{0.9, 1.6, 2.2, 2.7, 3.1, 3.4}
)

func req(core int, mw uint32, sens float64) Request {
	return Request{Core: core, RequestMW: mw, Sensitivity: sens, LevelsMW: testLevels, LevelValues: testValues}
}

func sumGrants(gs []uint32) uint64 {
	var s uint64
	for _, g := range gs {
		s += uint64(g)
	}
	return s
}

func TestByName(t *testing.T) {
	for _, name := range []string{"fair", "greedy", "dp", "pi"} {
		a, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("allocator %q reports name %q", name, a.Name())
		}
	}
	if _, err := ByName("magic"); err == nil {
		t.Error("unknown allocator should fail")
	}
	if len(All()) != 4 {
		t.Errorf("All() = %d allocators, want 4", len(All()))
	}
}

func TestFairShareUnderSubscribed(t *testing.T) {
	reqs := []Request{req(0, 1000, 1), req(1, 2000, 1)}
	grants := FairShare{}.Allocate(10_000, reqs)
	if grants[0] != 1000 || grants[1] != 2000 {
		t.Errorf("grants = %v, want requests honoured in full", grants)
	}
}

func TestFairShareProportionalScaling(t *testing.T) {
	reqs := []Request{req(0, 3000, 1), req(1, 1000, 1)}
	grants := FairShare{}.Allocate(2000, reqs)
	if grants[0] != 1500 || grants[1] != 500 {
		t.Errorf("grants = %v, want [1500 500]", grants)
	}
}

func TestFairShareZeroRequests(t *testing.T) {
	grants := FairShare{}.Allocate(1000, []Request{req(0, 0, 1), req(1, 0, 1)})
	if grants[0] != 0 || grants[1] != 0 {
		t.Errorf("grants = %v, want zeros", grants)
	}
}

func TestGreedyRespectsBudgetAndRequests(t *testing.T) {
	reqs := []Request{req(0, 4000, 3.0), req(1, 4000, 1.0), req(2, 4000, 2.0)}
	budget := uint64(6000)
	grants := Greedy{}.Allocate(budget, reqs)
	if sumGrants(grants) > budget {
		t.Fatalf("grants %v exceed budget", grants)
	}
	for i, g := range grants {
		if g > reqs[i].RequestMW {
			t.Errorf("core %d granted %d over its request", i, g)
		}
	}
	// Highest sensitivity (core 0) must get at least as much as the others.
	if grants[0] < grants[1] || grants[0] < grants[2] {
		t.Errorf("grants = %v, sensitivity ordering violated", grants)
	}
}

func TestGreedyFloorForEveryone(t *testing.T) {
	// Even the least sensitive core gets the bottom DVFS level.
	reqs := []Request{req(0, 4000, 10), req(1, 4000, 0.1)}
	grants := Greedy{}.Allocate(8000, reqs)
	if grants[1] < testLevels[0] {
		t.Errorf("low-sensitivity core granted %d, want ≥ floor %d", grants[1], testLevels[0])
	}
}

func TestGreedyTamperedZeroRequestStarves(t *testing.T) {
	reqs := []Request{req(0, 0, 5.0), req(1, 4000, 1.0)}
	grants := Greedy{}.Allocate(8000, reqs)
	if grants[0] != 0 {
		t.Errorf("zeroed request granted %d, want 0", grants[0])
	}
}

func TestDPOptimalOnSmallInstance(t *testing.T) {
	// Two cores, tight budget: DP must find the value-maximising split.
	reqs := []Request{
		{Core: 0, RequestMW: 4000, LevelsMW: []uint32{100, 200}, LevelValues: []float64{1, 10}},
		{Core: 1, RequestMW: 4000, LevelsMW: []uint32{100, 200}, LevelValues: []float64{1, 2}},
	}
	grants := NewDPKnapsack(1).Allocate(300, reqs)
	// Best: core 0 at 200 (value 10) + core 1 at 100 (value 1) = 11.
	if grants[0] != 200 || grants[1] != 100 {
		t.Errorf("grants = %v, want [200 100]", grants)
	}
}

func TestDPMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 3
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{
				Core:        i,
				RequestMW:   4000,
				LevelsMW:    []uint32{100, 200, 300},
				LevelValues: []float64{rng.Float64(), 1 + rng.Float64(), 2 + rng.Float64()},
			}
		}
		budget := uint64(300 + rng.Intn(600))
		grants := NewDPKnapsack(1).Allocate(budget, reqs)
		gotValue := 0.0
		for i, g := range grants {
			for li, lvl := range reqs[i].LevelsMW {
				if lvl == g {
					gotValue += reqs[i].LevelValues[li]
				}
			}
		}
		// Brute force over 3^3 assignments (including "none" = 0 grant).
		bestValue := 0.0
		var rec func(i int, power uint64, value float64)
		rec = func(i int, power uint64, value float64) {
			if power > budget {
				return
			}
			if i == n {
				if value > bestValue {
					bestValue = value
				}
				return
			}
			rec(i+1, power, value) // grant 0
			for li, lvl := range reqs[i].LevelsMW {
				rec(i+1, power+uint64(lvl), value+reqs[i].LevelValues[li])
			}
		}
		rec(0, 0, 0)
		if gotValue < bestValue-1e-9 {
			t.Fatalf("trial %d: DP value %v < brute force %v (budget %d)", trial, gotValue, bestValue, budget)
		}
	}
}

func TestDPQuantisationNeverOvershoots(t *testing.T) {
	reqs := []Request{req(0, 4000, 1), req(1, 4000, 1), req(2, 4000, 1)}
	for _, budget := range []uint64{1000, 2555, 4001, 9999} {
		grants := NewDPKnapsack(50).Allocate(budget, reqs)
		if sumGrants(grants) > budget {
			t.Errorf("budget %d: grants %v overshoot", budget, grants)
		}
	}
}

func TestDPEmptyRequests(t *testing.T) {
	if got := NewDPKnapsack(50).Allocate(1000, nil); len(got) != 0 {
		t.Errorf("empty allocation = %v", got)
	}
}

func TestDPClampsQuant(t *testing.T) {
	if NewDPKnapsack(0).QuantMW != 1 {
		t.Error("quant must clamp to ≥ 1")
	}
}

func TestPIConvergesTowardRequests(t *testing.T) {
	pi := NewPIController(0.5)
	reqs := []Request{req(0, 2000, 1), req(1, 1000, 1)}
	var grants []uint32
	for epoch := 0; epoch < 20; epoch++ {
		grants = pi.Allocate(10_000, reqs)
	}
	if grants[0] < 1900 || grants[1] < 900 {
		t.Errorf("grants after convergence = %v, want near requests", grants)
	}
}

func TestPISaturatesAtBudget(t *testing.T) {
	pi := NewPIController(0.5)
	reqs := []Request{req(0, 4000, 1), req(1, 4000, 1)}
	for epoch := 0; epoch < 20; epoch++ {
		grants := pi.Allocate(5000, reqs)
		if sumGrants(grants) > 5000 {
			t.Fatalf("epoch %d: grants %v exceed budget", epoch, grants)
		}
	}
}

func TestPIResetClearsState(t *testing.T) {
	pi := NewPIController(0.5)
	pi.Allocate(5000, []Request{req(0, 4000, 1)})
	pi.Reset()
	if len(pi.prev) != 0 {
		t.Error("Reset must clear controller state")
	}
}

func TestPIGainClamping(t *testing.T) {
	if NewPIController(-1).Kp != 0.5 || NewPIController(2).Kp != 0.5 {
		t.Error("invalid gains must clamp to default")
	}
}

// The paper's core claim: tampering helps the attacker under EVERY
// allocator. Victims' requests are cut to zero; attackers keep theirs. For
// each algorithm the attacker's grant must not shrink and the victim's must
// shrink strictly, relative to the un-tampered run.
func TestAttackWorksForEveryAllocator(t *testing.T) {
	clean := []Request{
		req(0, 4000, 2.0), // attacker
		req(1, 4000, 2.0), // victim
		req(2, 4000, 2.0), // victim
	}
	tampered := []Request{
		req(0, 4000, 2.0),
		req(1, 0, 2.0),
		req(2, 0, 2.0),
	}
	budget := uint64(6000) // insufficient for all three at peak
	for _, alloc := range All() {
		t.Run(alloc.Name(), func(t *testing.T) {
			if pi, ok := alloc.(*PIController); ok {
				// Converge each scenario independently.
				var cleanGrants, tamperedGrants []uint32
				for i := 0; i < 30; i++ {
					cleanGrants = pi.Allocate(budget, clean)
				}
				pi.Reset()
				for i := 0; i < 30; i++ {
					tamperedGrants = pi.Allocate(budget, tampered)
				}
				assertAttackHelps(t, cleanGrants, tamperedGrants)
				return
			}
			assertAttackHelps(t, alloc.Allocate(budget, clean), alloc.Allocate(budget, tampered))
		})
	}
}

func assertAttackHelps(t *testing.T, clean, tampered []uint32) {
	t.Helper()
	if tampered[0] < clean[0] {
		t.Errorf("attacker grant fell from %d to %d", clean[0], tampered[0])
	}
	if tampered[1] >= clean[1] || tampered[2] >= clean[2] {
		t.Errorf("victim grants did not fall: clean %v tampered %v", clean, tampered)
	}
}

// Property: every allocator conserves the budget and never grants a core
// more than it asked for (FairShare included — grants equal requests only
// when the budget covers them).
func TestAllocatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = req(i, uint32(rng.Intn(4500)), rng.Float64()*3)
		}
		budget := uint64(500 + rng.Intn(20000))
		for _, alloc := range All() {
			grants := alloc.Allocate(budget, reqs)
			if len(grants) != n {
				return false
			}
			if sumGrants(grants) > budget && sumGrants(grants) > totalRequests(reqs) {
				return false
			}
			for i, g := range grants {
				if g > reqs[i].RequestMW {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func totalRequests(reqs []Request) uint64 {
	var s uint64
	for _, r := range reqs {
		s += uint64(r.RequestMW)
	}
	return s
}

func TestManagerLifecycle(t *testing.T) {
	m, err := NewManager(119, FairShare{}, 10_000)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	if m.Node() != 119 || m.BudgetMW() != 10_000 || m.Allocator().Name() != "fair" {
		t.Error("accessor mismatch")
	}
	m.SetCoreInfo(1, CoreInfo{Sensitivity: 2, LevelsMW: testLevels, LevelValues: testValues})
	m.SetCoreInfo(2, CoreInfo{Sensitivity: 1, LevelsMW: testLevels, LevelValues: testValues})

	m.HandleRequest(&noc.Packet{Src: 1, Dst: 119, Type: noc.TypePowerReq, Payload: 4000})
	m.HandleRequest(&noc.Packet{Src: 2, Dst: 119, Type: noc.TypePowerReq, Payload: 4000, Tampered: true})
	if m.PendingCount() != 2 {
		t.Fatalf("PendingCount = %d, want 2", m.PendingCount())
	}
	if m.ReceivedTotal != 2 || m.TamperedTotal != 1 {
		t.Errorf("counters = %d/%d, want 2/1", m.ReceivedTotal, m.TamperedTotal)
	}

	grants := m.AllocateEpoch()
	if len(grants) != 2 {
		t.Fatalf("grants = %v, want 2", grants)
	}
	if grants[0].Core != 1 || grants[1].Core != 2 {
		t.Error("grants must be sorted by core")
	}
	if m.PendingCount() != 0 {
		t.Error("epoch must clear pending requests")
	}
	if m.AllocateEpoch() != nil {
		t.Error("empty epoch must return nil")
	}
}

func TestManagerIgnoresWrongPackets(t *testing.T) {
	m, _ := NewManager(119, FairShare{}, 10_000)
	m.HandleRequest(&noc.Packet{Src: 1, Dst: 119, Type: noc.TypeMemReadReq, Payload: 5})
	m.HandleRequest(&noc.Packet{Src: 1, Dst: 3, Type: noc.TypePowerReq, Payload: 5})
	if m.PendingCount() != 0 {
		t.Error("manager must only latch POWER_REQ addressed to it")
	}
}

func TestManagerOverwritesWithinEpoch(t *testing.T) {
	m, _ := NewManager(119, FairShare{}, 10_000)
	m.HandleRequest(&noc.Packet{Src: 1, Dst: 119, Type: noc.TypePowerReq, Payload: 1000})
	m.HandleRequest(&noc.Packet{Src: 1, Dst: 119, Type: noc.TypePowerReq, Payload: 2000})
	grants := m.AllocateEpoch()
	if len(grants) != 1 || grants[0].GrantMW != 2000 {
		t.Errorf("grants = %v, want single grant of 2000", grants)
	}
}

func TestManagerConstructorValidation(t *testing.T) {
	if _, err := NewManager(0, nil, 1000); err == nil {
		t.Error("nil allocator must fail")
	}
	if _, err := NewManager(0, FairShare{}, 0); err == nil {
		t.Error("zero budget must fail")
	}
}
