package budget

import (
	"fmt"
	"sort"

	"repro/internal/noc"
)

// CoreInfo is the manager's OS-level knowledge about one core: which
// application class runs there and what its DVFS menu looks like. It never
// travels on the NoC, so hardware Trojans cannot corrupt it — only the
// request values are exposed.
type CoreInfo struct {
	// Sensitivity is the application's Φ (Definition 5).
	Sensitivity float64
	// LevelsMW are the core's DVFS power draws, ascending, in milliwatts.
	LevelsMW []uint32
	// LevelValues are expected throughputs per level.
	LevelValues []float64
}

// Grant is one core's power allocation for the next epoch.
type Grant struct {
	Core    noc.NodeID
	GrantMW uint32
}

// RequestFilter is a manager-side integrity check on incoming request
// values — the defensive counterpart to the paper's attack (its conclusion
// calls for "more research on detection and protection"). FilterRequest
// returns the value the manager should actually use and whether the
// original was flagged as suspect. Filters see only what real hardware
// would see: the core ID and the payload as received.
type RequestFilter interface {
	FilterRequest(core noc.NodeID, mw uint32) (useMW uint32, flagged bool)
	// Name identifies the filter in reports.
	Name() string
}

// StatefulFilter is implemented by request filters that learn state from
// the request stream (the history guard); CloneFilter hands each
// independent run a fresh copy so concurrent campaigns never share it.
type StatefulFilter interface {
	RequestFilter
	// CloneFilter returns an equivalent filter with fresh state.
	CloneFilter() RequestFilter
}

// CloneFilter returns a filter safe to drive an independent run: stateful
// filters are copied with fresh state, stateless ones are returned as-is.
// A nil filter stays nil.
func CloneFilter(f RequestFilter) RequestFilter {
	if s, ok := f.(StatefulFilter); ok {
		return s.CloneFilter()
	}
	return f
}

// Manager is the global manager core (Section II-A): it collects POWER_REQ
// packets during an epoch and runs the allocator at the epoch boundary.
type Manager struct {
	node     noc.NodeID
	alloc    Allocator
	budgetMW uint64
	info     map[noc.NodeID]CoreInfo
	pending  map[noc.NodeID]uint32
	filter   RequestFilter

	// ReceivedTotal counts all POWER_REQ packets ever accepted.
	ReceivedTotal uint64
	// TamperedTotal counts accepted requests that were modified in flight.
	// The real manager cannot see this bit — it exists for measurement.
	TamperedTotal uint64
	// FlaggedTotal counts requests the filter marked suspect.
	FlaggedTotal uint64
	// RepairedTampered counts requests that were both tampered in flight
	// and flagged by the filter — true positives, for detection metrics.
	RepairedTampered uint64
}

// NewManager creates a global manager at node with the given allocator and
// chip budget.
func NewManager(node noc.NodeID, alloc Allocator, budgetMW uint64) (*Manager, error) {
	if alloc == nil {
		return nil, fmt.Errorf("budget: manager needs an allocator")
	}
	if budgetMW == 0 {
		return nil, fmt.Errorf("budget: manager needs a nonzero budget")
	}
	return &Manager{
		node:     node,
		alloc:    alloc,
		budgetMW: budgetMW,
		info:     make(map[noc.NodeID]CoreInfo),
		pending:  make(map[noc.NodeID]uint32),
	}, nil
}

// Node returns the manager's NoC node.
func (m *Manager) Node() noc.NodeID { return m.node }

// BudgetMW returns the chip power budget in milliwatts.
func (m *Manager) BudgetMW() uint64 { return m.budgetMW }

// Allocator returns the active allocation algorithm.
func (m *Manager) Allocator() Allocator { return m.alloc }

// SetCoreInfo registers OS-level knowledge for a core.
func (m *Manager) SetCoreInfo(core noc.NodeID, info CoreInfo) { m.info[core] = info }

// SetFilter installs a request-integrity filter (nil clears).
func (m *Manager) SetFilter(f RequestFilter) { m.filter = f }

// HandleRequest latches one delivered POWER_REQ packet. Later requests from
// the same core within an epoch overwrite earlier ones.
func (m *Manager) HandleRequest(p *noc.Packet) {
	if p.Type != noc.TypePowerReq || p.Dst != m.node {
		return
	}
	value := p.Payload
	if m.filter != nil {
		use, flagged := m.filter.FilterRequest(p.Src, value)
		if flagged {
			m.FlaggedTotal++
			if p.Tampered {
				m.RepairedTampered++
			}
		}
		value = use
	}
	m.pending[p.Src] = value
	m.ReceivedTotal++
	if p.Tampered {
		m.TamperedTotal++
	}
}

// PendingCount returns the number of cores with a request this epoch.
func (m *Manager) PendingCount() int { return len(m.pending) }

// AllocateEpoch runs the allocator over the epoch's requests, clears the
// pending set, and returns the grants sorted by core ID.
func (m *Manager) AllocateEpoch() []Grant {
	if len(m.pending) == 0 {
		return nil
	}
	cores := make([]noc.NodeID, 0, len(m.pending))
	for c := range m.pending {
		cores = append(cores, c)
	}
	sort.Slice(cores, func(i, j int) bool { return cores[i] < cores[j] })

	reqs := make([]Request, len(cores))
	for i, c := range cores {
		info := m.info[c]
		reqs[i] = Request{
			Core:        int(c),
			RequestMW:   m.pending[c],
			Sensitivity: info.Sensitivity,
			LevelsMW:    info.LevelsMW,
			LevelValues: info.LevelValues,
		}
	}
	grants := m.alloc.Allocate(m.budgetMW, reqs)
	out := make([]Grant, len(cores))
	for i, c := range cores {
		out[i] = Grant{Core: c, GrantMW: grants[i]}
	}
	m.pending = make(map[noc.NodeID]uint32, len(cores))
	return out
}
