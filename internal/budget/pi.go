package budget

// PIController is the control-theoretic allocator modelled on power-capping
// controllers [12]. Each core's grant tracks its request through a
// proportional term; when the tracked grants overshoot the chip budget they
// are rescaled, which is the actuator saturating. The controller is
// stateful across epochs: call Reset between independent experiments.
type PIController struct {
	// Kp is the proportional gain in (0, 1].
	Kp   float64
	prev map[int]float64
}

var _ Allocator = (*PIController)(nil)

// NewPIController returns a controller with gain kp (clamped into (0, 1]).
func NewPIController(kp float64) *PIController {
	if kp <= 0 || kp > 1 {
		kp = 0.5
	}
	return &PIController{Kp: kp, prev: make(map[int]float64)}
}

// Name implements Allocator.
func (*PIController) Name() string { return "pi" }

// Reset clears the controller state.
func (c *PIController) Reset() { c.prev = make(map[int]float64) }

// CloneAllocator implements StatefulAllocator: each independent run gets a
// controller with the same gain and fresh tracking state.
func (c *PIController) CloneAllocator() Allocator { return NewPIController(c.Kp) }

// Allocate implements Allocator.
func (c *PIController) Allocate(budgetMW uint64, reqs []Request) []uint32 {
	grants := make([]uint32, len(reqs))
	if len(reqs) == 0 {
		return grants
	}
	// Proportional tracking toward each (possibly tampered) request.
	raw := make([]float64, len(reqs))
	var total float64
	for i, r := range reqs {
		p, ok := c.prev[r.Core]
		if !ok {
			p = float64(baseLevelMW(r))
		}
		p += c.Kp * (float64(r.RequestMW) - p)
		if p < 0 {
			p = 0
		}
		raw[i] = p
		total += p
	}
	// Actuator saturation: rescale into the budget.
	scale := 1.0
	if total > float64(budgetMW) && total > 0 {
		scale = float64(budgetMW) / total
	}
	for i, r := range reqs {
		g := raw[i] * scale
		if g > float64(r.RequestMW) {
			g = float64(r.RequestMW)
		}
		grants[i] = uint32(g)
		c.prev[r.Core] = raw[i] * scale
	}
	return grants
}
