// Package exp provides the deterministic parallel trial runner behind the
// campaign experiments. Every figure of the paper's Section V evaluation
// is an average over many independent trials (random Trojan placements,
// attack variants, defense configurations); this package fans those trials
// out over a worker pool while keeping results bit-identical for any
// worker count.
//
// Determinism rests on two rules the experiment layer must follow:
//
//  1. Every trial derives its own random stream from the campaign seed and
//     its trial index (TrialSeed), never from a shared RNG, so the values a
//     trial consumes do not depend on which worker ran it or in what order.
//  2. Trial functions share no mutable state; results are written into a
//     slice slot owned exclusively by the trial's index.
package exp

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a requested worker count: values above zero are used as
// given, anything else means one worker per available CPU.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// Gate is a context-aware counting semaphore bounding how many holders run
// at once. The simulation service uses one to cap concurrent jobs on the
// same worker budget the trial pools draw from: a job Acquires a slot
// before fanning its experiments out over Run/RunCtx and Releases it when
// the campaign finishes, so queued jobs wait instead of oversubscribing
// the machine. A Gate is safe for concurrent use; the zero value is not
// usable — construct with NewGate.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a Gate admitting n concurrent holders (n < 1 is treated
// as 1).
func NewGate(n int) *Gate {
	if n < 1 {
		n = 1
	}
	return &Gate{slots: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done, returning ctx's
// error in the latter case. Every successful Acquire must be paired with
// exactly one Release.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ErrAcquireTimeout reports that AcquireWithin gave up waiting for a
// slot before its deadline. Callers distinguish it from ctx errors: the
// gate is merely saturated, the system is not shutting down.
var ErrAcquireTimeout = errors.New("exp: gate acquire timed out")

// AcquireWithin is Acquire bounded by a deadline: it blocks until a slot
// frees, ctx is done, or d elapses (returning ErrAcquireTimeout). d <= 0
// means no deadline. The simulation service uses it so a job with a
// --job-timeout budget cannot burn that whole budget queued behind the
// gate.
func (g *Gate) AcquireWithin(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return g.Acquire(ctx)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case g.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return ErrAcquireTimeout
	}
}

// TryAcquire takes a slot without blocking, reporting whether it got one.
func (g *Gate) TryAcquire() bool {
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or TryAcquire. Releasing more
// than was acquired panics — it is always a caller bug.
func (g *Gate) Release() {
	select {
	case <-g.slots:
	default:
		panic("exp: Gate.Release without Acquire")
	}
}

// TrialSeed derives the RNG seed for one trial of a campaign. Seeding by
// offset keeps every trial's stream independent of worker count and
// schedule while staying reproducible from the single campaign seed.
func TrialSeed(base int64, trial int) int64 { return base + int64(trial) }

// StreamSeed derives an independent seed for a named random stream from a
// single base seed: the stream name is hashed (FNV-1a) into the base and
// the result is avalanched (SplitMix64 finalizer) so even adjacent bases
// or similar names land far apart. Keyed streams are how subsystems stay
// decoupled under one campaign seed — the load harness gives every
// simulated client (and every payload-uniquifying draw) its own stream,
// so adding draw sites to one client never perturbs another and the
// generated schedule is bit-identical for any worker count.
func StreamSeed(base int64, stream string) int64 {
	h := fnv.New64a()
	h.Write([]byte(stream))
	x := uint64(base) ^ h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x)
}

// ShardSeed derives an independent seed for one shard of a partitioned
// workload from the parent stream's seed. It is StreamSeed keyed by the
// shard index ("shard/<i>"), so sibling shards get decorrelated streams
// and adding draw sites inside one shard never perturbs another — the
// PartitionedRNG discipline. Shard seeds exist for shard-local auxiliary
// draws only (dispatch jitter, worker picks); trial results must keep
// deriving from TrialSeed on the campaign seed, which is what makes any
// partition of the trial space merge bit-identically with a
// single-process run.
func ShardSeed(parent int64, shard int) int64 {
	return StreamSeed(parent, fmt.Sprintf("shard/%d", shard))
}

// Run executes fn(trial) for every trial in [0, trials) on a pool of
// workers (see Workers for how the count is resolved) and returns the
// results indexed by trial. All trials run to completion even when some
// fail; the error of the lowest-indexed failing trial is returned, so the
// reported error is as deterministic as the results.
func Run[T any](workers, trials int, fn func(trial int) (T, error)) ([]T, error) {
	return RunCtx(context.Background(), workers, trials, func(_ context.Context, trial int) (T, error) {
		return fn(trial)
	})
}

// RunCtx is Run with cooperative cancellation: no new trial starts once
// ctx is done, the trial function receives ctx so long-running trials can
// stop mid-flight, and a cancelled pool returns ctx's error (taking
// precedence over per-trial errors, which on cancellation are expected
// casualties rather than results). A panicking trial does not kill its
// worker goroutine (or the process): the panic is converted into that
// trial's error, so one poisoned trial fails one run while every other
// trial completes — and because errors are reported lowest-index-first,
// the surfaced failure is as deterministic as the results.
func RunCtx[T any](ctx context.Context, workers, trials int, fn func(ctx context.Context, trial int) (T, error)) ([]T, error) {
	if trials <= 0 {
		return nil, nil
	}
	results := make([]T, trials)
	errs := make([]error, trials)
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("exp: trial %d panicked: %v", i, r)
			}
		}()
		results[i], errs[i] = fn(ctx, i)
	}
	workers = Workers(workers)
	if workers > trials {
		workers = trials
	}
	if workers == 1 {
		for i := 0; i < trials && ctx.Err() == nil; i++ {
			call(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= trials {
						return
					}
					call(i)
				}
			}()
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
