package exp

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-2); got < 1 {
		t.Errorf("Workers(-2) = %d, want >= 1", got)
	}
}

func TestRunCollectsInTrialOrder(t *testing.T) {
	out, err := Run(4, 100, func(trial int) (int, error) { return trial * trial, nil })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 100 {
		t.Fatalf("results = %d, want 100", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunZeroTrials(t *testing.T) {
	out, err := Run(4, 0, func(int) (int, error) { t.Fatal("fn must not run"); return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("Run(0 trials) = %v, %v", out, err)
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	bad := map[int]bool{17: true, 41: true, 80: true}
	_, err := Run(8, 100, func(trial int) (int, error) {
		if bad[trial] {
			return 0, fmt.Errorf("trial %d failed", trial)
		}
		return trial, nil
	})
	if err == nil || err.Error() != "trial 17 failed" {
		t.Fatalf("err = %v, want trial 17's error", err)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	// The canonical usage pattern: each trial seeds its own RNG from the
	// trial index. Results must be identical for any worker count.
	campaign := func(workers int) []float64 {
		out, err := Run(workers, 64, func(trial int) (float64, error) {
			rng := rand.New(rand.NewSource(TrialSeed(99, trial)))
			sum := 0.0
			for i := 0; i < 100; i++ {
				sum += rng.Float64()
			}
			return sum, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	want := campaign(1)
	for _, w := range []int{2, 4, 8, 16} {
		got := campaign(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: trial %d = %v, want %v (not bit-identical)", w, i, got[i], want[i])
			}
		}
	}
}

func TestRunAllTrialsCompleteDespiteError(t *testing.T) {
	ran := make([]bool, 32)
	_, err := Run(4, 32, func(trial int) (int, error) {
		ran[trial] = true
		if trial == 0 {
			return 0, errors.New("boom")
		}
		return trial, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("trial %d never ran", i)
		}
	}
}

// TestGateBoundsConcurrency verifies the Gate admits at most its capacity
// of concurrent holders while all work still completes.
func TestGateBoundsConcurrency(t *testing.T) {
	const cap, tasks = 3, 20
	g := NewGate(cap)
	var cur, peak, done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			defer g.Release()
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			done.Add(1)
		}()
	}
	wg.Wait()
	if got := done.Load(); got != tasks {
		t.Errorf("%d tasks completed, want %d", got, tasks)
	}
	if p := peak.Load(); p > cap {
		t.Errorf("peak concurrency %d exceeds gate capacity %d", p, cap)
	}
}

// TestGateAcquireHonoursContext verifies a full gate unblocks with the
// context's error when the waiter is cancelled.
func TestGateAcquireHonoursContext(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.Acquire(ctx); err != context.Canceled {
		t.Fatalf("Acquire on cancelled ctx = %v, want context.Canceled", err)
	}
	if g.TryAcquire() {
		t.Fatal("TryAcquire succeeded on a full gate")
	}
}

// TestGateAcquireWithinTimesOut verifies the bounded acquire: a full
// gate returns ErrAcquireTimeout after the deadline, a free slot is
// taken immediately, and d <= 0 degrades to a plain Acquire.
func TestGateAcquireWithinTimesOut(t *testing.T) {
	g := NewGate(1)
	if err := g.AcquireWithin(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := g.AcquireWithin(context.Background(), 20*time.Millisecond)
	if !errors.Is(err, ErrAcquireTimeout) {
		t.Fatalf("AcquireWithin on full gate = %v, want ErrAcquireTimeout", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("AcquireWithin returned before its deadline")
	}
	g.Release()
	if err := g.AcquireWithin(context.Background(), 20*time.Millisecond); err != nil {
		t.Fatalf("AcquireWithin on free gate = %v", err)
	}
	g.Release()

	// Cancellation still beats the deadline.
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := g.AcquireWithin(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("AcquireWithin on cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestRunCtxRecoversTrialPanics verifies a panicking trial fails only
// its own slot: every other trial completes and the lowest-indexed
// panic is the reported error, for any worker count.
func TestRunCtxRecoversTrialPanics(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var completed atomic.Int64
		_, err := RunCtx(context.Background(), workers, 16, func(_ context.Context, trial int) (int, error) {
			if trial == 5 || trial == 11 {
				panic(fmt.Sprintf("poisoned trial %d", trial))
			}
			completed.Add(1)
			return trial, nil
		})
		if err == nil || !strings.Contains(err.Error(), "trial 5 panicked") {
			t.Fatalf("workers=%d: err = %v, want the lowest-indexed panic", workers, err)
		}
		if got := completed.Load(); got != 14 {
			t.Fatalf("workers=%d: %d healthy trials completed, want 14", workers, got)
		}
	}
}

// TestStreamSeedIndependence pins the keyed-stream derivation: the same
// (base, name) pair always yields the same seed, different names or bases
// land far apart, and streams derived for adjacent client indices do not
// collide the way raw base+offset seeding would.
func TestStreamSeedIndependence(t *testing.T) {
	if StreamSeed(1, "client-0") != StreamSeed(1, "client-0") {
		t.Fatal("StreamSeed is not deterministic")
	}
	seen := make(map[int64]string)
	for _, base := range []int64{0, 1, 2, 1 << 40} {
		for c := 0; c < 64; c++ {
			name := fmt.Sprintf("client-%d", c)
			s := StreamSeed(base, name)
			key := fmt.Sprintf("%d/%s", base, name)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both map to %d", prev, key, s)
			}
			seen[s] = key
		}
	}
	// Adjacent bases with the same name must not be adjacent seeds: the
	// avalanche step is what keeps subsystem streams decoupled.
	if d := StreamSeed(2, "x") - StreamSeed(1, "x"); d == 1 || d == -1 {
		t.Fatalf("adjacent bases produced adjacent seeds (delta %d)", d)
	}
}

// TestShardSeedIndependence pins the shard-substream contract: the same
// (parent, shard) pair always derives the same seed, sibling shards of
// one parent never collide, and — the property the distributed merge
// relies on — the values drawn inside one shard's stream are unaffected
// by how many draws a sibling shard makes. Adding a draw site in shard 0
// must never change what shard 1 sees.
func TestShardSeedIndependence(t *testing.T) {
	if ShardSeed(42, 3) != ShardSeed(42, 3) {
		t.Fatal("ShardSeed is not deterministic")
	}
	seen := make(map[int64]string)
	for _, parent := range []int64{0, 1, 7, 1 << 33} {
		for s := 0; s < 128; s++ {
			seed := ShardSeed(parent, s)
			key := fmt.Sprintf("%d/%d", parent, s)
			if prev, dup := seen[seed]; dup {
				t.Fatalf("shard seed collision: %s and %s both map to %d", prev, key, seed)
			}
			seen[seed] = key
		}
	}
	// Shard-local draw independence: drain extra values from shard 0's
	// stream and confirm shard 1's stream is byte-for-byte the same
	// sequence as before. With a shared RNG this would fail; with keyed
	// substreams it cannot.
	drawn := func(shard, n, burn int) []float64 {
		rng := rand.New(rand.NewSource(ShardSeed(9, shard)))
		if burn > 0 {
			burner := rand.New(rand.NewSource(ShardSeed(9, 0)))
			for i := 0; i < burn; i++ {
				burner.Float64()
			}
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.Float64()
		}
		return out
	}
	before := drawn(1, 16, 0)
	after := drawn(1, 16, 1000)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("shard 1 draw %d changed after extra shard-0 draws: %v vs %v", i, before[i], after[i])
		}
	}
}
