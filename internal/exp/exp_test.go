package exp

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-2); got < 1 {
		t.Errorf("Workers(-2) = %d, want >= 1", got)
	}
}

func TestRunCollectsInTrialOrder(t *testing.T) {
	out, err := Run(4, 100, func(trial int) (int, error) { return trial * trial, nil })
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(out) != 100 {
		t.Fatalf("results = %d, want 100", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunZeroTrials(t *testing.T) {
	out, err := Run(4, 0, func(int) (int, error) { t.Fatal("fn must not run"); return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("Run(0 trials) = %v, %v", out, err)
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	bad := map[int]bool{17: true, 41: true, 80: true}
	_, err := Run(8, 100, func(trial int) (int, error) {
		if bad[trial] {
			return 0, fmt.Errorf("trial %d failed", trial)
		}
		return trial, nil
	})
	if err == nil || err.Error() != "trial 17 failed" {
		t.Fatalf("err = %v, want trial 17's error", err)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	// The canonical usage pattern: each trial seeds its own RNG from the
	// trial index. Results must be identical for any worker count.
	campaign := func(workers int) []float64 {
		out, err := Run(workers, 64, func(trial int) (float64, error) {
			rng := rand.New(rand.NewSource(TrialSeed(99, trial)))
			sum := 0.0
			for i := 0; i < 100; i++ {
				sum += rng.Float64()
			}
			return sum, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	want := campaign(1)
	for _, w := range []int{2, 4, 8, 16} {
		got := campaign(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: trial %d = %v, want %v (not bit-identical)", w, i, got[i], want[i])
			}
		}
	}
}

func TestRunAllTrialsCompleteDespiteError(t *testing.T) {
	ran := make([]bool, 32)
	_, err := Run(4, 32, func(trial int) (int, error) {
		ran[trial] = true
		if trial == 0 {
			return 0, errors.New("boom")
		}
		return trial, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i, r := range ran {
		if !r {
			t.Fatalf("trial %d never ran", i)
		}
	}
}
