// Package dist is the coordinator side of distributed campaign
// execution: it shards one campaign's trial space across many htserved
// workers over HTTP and merges the shard results into exactly the tables
// a single-process run produces — byte-identical for any worker count,
// any shard partition, and any interleaving of failures and retries.
//
// The protocol is deliberately small. The coordinator plans shards with
// campaign.PlanShards, POSTs each one to a worker's /v1/shards endpoint
// as a ShardRequest (the shard plus the coordinator's build fingerprint
// — workers reject mismatched revisions or toolchains, because byte
// identity across machines requires homogeneous builds), and reassembles
// the replies with campaign.MergeShards. Shard payloads are raw per-cell
// values or whole typed tables (see internal/campaign/shard.go); the
// coordinator never aggregates floats itself, so reassembly is exact.
//
// Failures redispatch: a shard whose worker is unreachable, times out,
// or answers with an error is retried on the next worker round-robin, up
// to Options.Retries extra attempts. Completed shards land in a small
// content-addressed cache keyed by shard content plus build fingerprint,
// so re-running a campaign with one changed experiment recomputes only
// that experiment's shards. Worker choice derives from exp.ShardSeed —
// a shard-local substream of the campaign seed — keeping dispatch
// deterministic without ever touching trial streams.
//
// Chaos coverage reuses internal/faultinject: the dist.dispatch point
// fires before every dispatch attempt (an injected error is a failed
// attempt and redispatches like a real one) and dist.merge before the
// final merge.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/results"
)

// ShardPath is the worker endpoint shards are POSTed to.
const ShardPath = "/v1/shards"

// ShardRequest is the wire form of one shard dispatch. Revision and Go
// fingerprint the coordinator's build; a worker on a different build
// must reject the shard rather than contribute bytes from a divergent
// simulator.
type ShardRequest struct {
	Revision string         `json:"revision"`
	Go       string         `json:"go"`
	Shard    campaign.Shard `json:"shard"`
}

// Observe carries the coordinator's metric hooks; any field may be nil.
// The server wires these into its counter set so shard traffic shows up
// in /v1/metrics without this package importing the server.
type Observe struct {
	// Dispatched fires per dispatch attempt, labeled by worker URL.
	Dispatched func(worker string)
	// Retried fires per redispatch (attempt two onward).
	Retried func()
	// CacheHit fires when a shard is served from the shard cache.
	CacheHit func()
}

// Options configure a Coordinator.
type Options struct {
	// Workers seeds the worker pool with static base URLs
	// (e.g. http://10.0.0.2:8080). More workers can join at runtime via
	// AddWorker (the server's POST /v1/workers registration endpoint).
	Workers []string
	// MaxShards bounds how many shards one experiment's trial space is
	// split into (default: twice the seed pool size, at least 2).
	MaxShards int
	// Retries is how many extra dispatch attempts a failed shard gets,
	// each on the next worker round-robin (default 2; negative disables
	// redispatch).
	Retries int
	// ShardTimeout bounds one dispatch attempt end-to-end (default 5m;
	// negative disables). A hung worker costs one attempt, not the
	// campaign.
	ShardTimeout time.Duration
	// CacheShards sizes the coordinator's shard-result cache (default
	// 512 entries; negative disables caching).
	CacheShards int
	// Client is the HTTP client for dispatches and probes (default: a
	// plain http.Client; per-attempt deadlines come from ShardTimeout).
	Client *http.Client
	// Faults arms the dist.dispatch / dist.merge chaos points.
	Faults *faultinject.Set
	// Observe receives metric callbacks.
	Observe Observe
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.MaxShards < 1 {
		o.MaxShards = 2 * len(o.Workers)
		if o.MaxShards < 2 {
			o.MaxShards = 2
		}
	}
	if o.Retries == 0 {
		o.Retries = 2
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.ShardTimeout == 0 {
		o.ShardTimeout = 5 * time.Minute
	}
	if o.CacheShards == 0 {
		o.CacheShards = 512
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// WorkerStatus reports one pool member's reachability.
type WorkerStatus struct {
	URL       string `json:"url"`
	Reachable bool   `json:"reachable"`
}

// PoolHealth summarises a reachability sweep of the worker pool.
type PoolHealth struct {
	Total     int `json:"total"`
	Reachable int `json:"reachable"`
	// Quorum is the minimum reachable workers for the coordinator to
	// call itself ready: a strict majority of the registered pool, and
	// never less than one — a coordinator with no reachable workers
	// cannot run campaigns at all.
	Quorum  int            `json:"quorum"`
	Workers []WorkerStatus `json:"workers"`
}

// Ready reports whether the pool meets quorum.
func (h PoolHealth) Ready() bool { return h.Reachable >= h.Quorum }

// Coordinator shards campaigns across a pool of htserved workers.
// Construct with New; safe for concurrent use.
type Coordinator struct {
	opts Options

	mu      sync.Mutex
	workers []string

	cache *shardCache
}

// New builds a Coordinator over the given options.
func New(opts Options) *Coordinator {
	opts = opts.withDefaults()
	c := &Coordinator{opts: opts, cache: newShardCache(opts.CacheShards)}
	for _, u := range opts.Workers {
		c.AddWorker(u)
	}
	return c
}

// AddWorker registers a worker base URL, reporting whether it was new.
// Registration is idempotent; URLs are normalised (trailing slash
// stripped).
func (c *Coordinator) AddWorker(url string) bool {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	if url == "" {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w == url {
			return false
		}
	}
	c.workers = append(c.workers, url)
	return true
}

// WorkerURLs snapshots the pool in registration order.
func (c *Coordinator) WorkerURLs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.workers...)
}

// Health probes every pool member's liveness endpoint concurrently
// (bounded to probeTimeout each) and reports the quorum verdict the
// coordinator's /v1/healthz readiness folds in.
func (c *Coordinator) Health(ctx context.Context) PoolHealth {
	urls := c.WorkerURLs()
	h := PoolHealth{Total: len(urls), Quorum: quorum(len(urls)), Workers: make([]WorkerStatus, len(urls))}
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Workers[i] = WorkerStatus{URL: u, Reachable: c.probe(ctx, u)}
		}()
	}
	wg.Wait()
	for _, w := range h.Workers {
		if w.Reachable {
			h.Reachable++
		}
	}
	return h
}

// probeTimeout bounds one worker liveness probe.
const probeTimeout = 2 * time.Second

// probe checks one worker's liveness endpoint.
func (c *Coordinator) probe(ctx context.Context, workerURL string) bool {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, workerURL+"/v1/healthz?probe=live", nil)
	if err != nil {
		return false
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// quorum is the readiness threshold for n registered workers: a strict
// majority, at least one. Zero registered workers can never be ready.
func quorum(n int) int {
	if n == 0 {
		return 1
	}
	return n/2 + 1
}

// RunCampaign shards a validated spec across the pool, redispatching
// failed shards, and merges the results into the exact tables
// campaign.BuildTables produces locally. prog receives the same
// experiment-lifecycle callbacks a local run reports (started on first
// shard dispatch, done after the merge); distributed runs stream no
// per-epoch samples — shards execute on remote workers.
func (c *Coordinator) RunCampaign(ctx context.Context, spec *campaign.Spec, prog campaign.Progress) ([]results.Table, error) {
	shards, err := campaign.PlanShards(spec, c.opts.MaxShards)
	if err != nil {
		return nil, err
	}
	var startedMu sync.Mutex
	started := make(map[int]bool)
	markStarted := func(sh campaign.Shard) {
		if prog.ExperimentStarted == nil {
			return
		}
		startedMu.Lock()
		first := !started[sh.ExpIndex]
		started[sh.ExpIndex] = true
		startedMu.Unlock()
		if first {
			prog.ExperimentStarted(sh.Experiment.ID)
		}
	}
	// Shard fan-out concurrency: enough in-flight dispatches to keep
	// every worker busy, while each worker's own job gate bounds what
	// actually executes there.
	conc := 2 * len(c.WorkerURLs())
	if conc < 1 {
		conc = 1
	}
	shardResults, err := exp.RunCtx(ctx, conc, len(shards), func(ctx context.Context, i int) (campaign.ShardResult, error) {
		markStarted(shards[i])
		r, err := c.runShard(ctx, shards[i], i)
		if err != nil {
			return campaign.ShardResult{}, err
		}
		return *r, nil
	})
	if err != nil {
		c.reportDone(prog, spec, nil, err)
		return nil, err
	}
	if ferr := c.opts.Faults.Fire(ctx, "dist.merge"); ferr != nil {
		err := fmt.Errorf("dist: merge: %w", ferr)
		c.reportDone(prog, spec, nil, err)
		return nil, err
	}
	tables, err := campaign.MergeShards(ctx, spec, shardResults)
	c.reportDone(prog, spec, tables, err)
	return tables, err
}

// reportDone fires ExperimentDone per spec entry with the merged table
// (position-matched) or the campaign-level error.
func (c *Coordinator) reportDone(prog campaign.Progress, spec *campaign.Spec, tables []results.Table, err error) {
	if prog.ExperimentDone == nil {
		return
	}
	for i, e := range spec.Experiments {
		var t results.Table
		if err == nil && i < len(tables) {
			t = tables[i]
		}
		prog.ExperimentDone(e.ID, t, err)
	}
}

// runShard executes one shard: shard cache first, then dispatch with
// round-robin redispatch on failure. The starting worker derives from
// the shard's seed substream (exp.ShardSeed keyed by the shard's plan
// index), so placement is deterministic for a given plan and pool —
// and never perturbs trial streams, which key off the campaign seed
// alone.
func (c *Coordinator) runShard(ctx context.Context, sh campaign.Shard, planIndex int) (*campaign.ShardResult, error) {
	key := shardKey(sh)
	if r, ok := c.cache.get(key); ok {
		if c.opts.Observe.CacheHit != nil {
			c.opts.Observe.CacheHit()
		}
		// The cached payload is content-addressed; the shard identity
		// (notably ExpIndex) must be this campaign's, not the one that
		// populated the cache.
		r.Shard = sh
		return &r, nil
	}
	workers := c.WorkerURLs()
	if len(workers) == 0 {
		return nil, errors.New("dist: no workers registered")
	}
	start := int(uint64(exp.ShardSeed(sh.Seed, planIndex)) % uint64(len(workers)))
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 && c.opts.Observe.Retried != nil {
			c.opts.Observe.Retried()
		}
		w := workers[(start+attempt)%len(workers)]
		r, err := c.dispatch(ctx, w, sh)
		if err == nil {
			c.cache.put(key, *r)
			return r, nil
		}
		lastErr = fmt.Errorf("worker %s: %w", w, err)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("dist: shard %s failed after %d attempts: %w", sh, c.opts.Retries+1, lastErr)
}

// dispatch POSTs one shard to one worker and decodes the result. The
// dist.dispatch fault point fires first: an injected error is a failed
// attempt, exercising the redispatch path without a real dead worker.
func (c *Coordinator) dispatch(ctx context.Context, workerURL string, sh campaign.Shard) (*campaign.ShardResult, error) {
	if err := c.opts.Faults.Fire(ctx, "dist.dispatch"); err != nil {
		return nil, err
	}
	if c.opts.Observe.Dispatched != nil {
		c.opts.Observe.Dispatched(workerURL)
	}
	if c.opts.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.ShardTimeout)
		defer cancel()
	}
	body, err := json.Marshal(ShardRequest{Revision: results.Revision(), Go: runtime.Version(), Shard: sh})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL+ShardPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard rejected: %s: %s", resp.Status, errorBody(resp.Body))
	}
	var r campaign.ShardResult
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return nil, fmt.Errorf("decode shard result: %w", err)
	}
	if r.Shard.Lo != sh.Lo || r.Shard.Hi != sh.Hi || r.Shard.Experiment.ID != sh.Experiment.ID {
		return nil, fmt.Errorf("worker answered for shard %s, asked for %s", r.Shard, sh)
	}
	// Trust the request's identity, not the echo: merges key on ExpIndex.
	r.Shard = sh
	return &r, nil
}

// errorBody extracts a JSON error message (or raw text) from a failed
// response, truncated to keep shard errors readable.
func errorBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 1024))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(b))
}

// shardKey fingerprints a shard for the coordinator-side cache: its
// content (experiment spec, seed context, trial range) plus the build,
// never its position in a particular campaign — so an unchanged
// experiment resubmitted in a different spec still hits.
func shardKey(sh campaign.Shard) string {
	return results.HashConfig(struct {
		Experiment campaign.ExperimentSpec `json:"experiment"`
		Seed       int64                   `json:"seed"`
		Lo         int                     `json:"lo"`
		Hi         int                     `json:"hi"`
		Count      int                     `json:"count"`
		Revision   string                  `json:"revision"`
		Go         string                  `json:"go"`
	}{sh.Experiment, sh.Seed, sh.Lo, sh.Hi, sh.Count, results.Revision(), runtime.Version()})
}

// shardCache is a small LRU of completed shard results keyed by content
// address. It holds decoded payloads (raw vectors or table JSON), which
// for the paper campaigns are tiny next to the compute they memoize.
type shardCache struct {
	mu      sync.Mutex
	entries map[string]campaign.ShardResult
	order   []string // LRU: oldest first
	max     int
}

// newShardCache builds a cache holding up to max entries (max < 0
// disables caching).
func newShardCache(max int) *shardCache {
	if max < 0 {
		max = 0
	}
	return &shardCache{entries: make(map[string]campaign.ShardResult), max: max}
}

// get returns a cached result and refreshes its recency.
func (s *shardCache) get(key string) (campaign.ShardResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.entries[key]
	if ok {
		s.touchLocked(key)
	}
	return r, ok
}

// put stores a result, evicting the least recently used entry at
// capacity.
func (s *shardCache) put(key string, r campaign.ShardResult) {
	if s.max == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		s.entries[key] = r
		s.touchLocked(key)
		return
	}
	for len(s.entries) >= s.max && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, oldest)
	}
	s.entries[key] = r
	s.order = append(s.order, key)
}

// touchLocked moves key to the most-recent end; s.mu held.
func (s *shardCache) touchLocked(key string) {
	for i, k := range s.order {
		if k == key {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), key)
			return
		}
	}
}
