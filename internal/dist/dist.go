// Package dist is the coordinator side of distributed campaign
// execution: it shards one campaign's trial space across many htserved
// workers over HTTP and merges the shard results into exactly the tables
// a single-process run produces — byte-identical for any worker count,
// any shard partition, and any interleaving of failures and retries.
//
// The protocol is deliberately small. The coordinator plans shards with
// campaign.PlanShards, POSTs each one to a worker's /v1/shards endpoint
// as a ShardRequest (the shard plus the coordinator's build fingerprint
// — workers reject mismatched revisions or toolchains, because byte
// identity across machines requires homogeneous builds), and reassembles
// the replies with campaign.MergeShards. Shard payloads are raw per-cell
// values or whole typed tables (see internal/campaign/shard.go); the
// coordinator never aggregates floats itself, so reassembly is exact.
//
// Failures redispatch: a shard whose worker is unreachable, times out,
// or answers with an error is retried on the next worker round-robin, up
// to Options.Retries extra attempts. Completed shards land in a small
// content-addressed cache keyed by shard content plus build fingerprint,
// so re-running a campaign with one changed experiment recomputes only
// that experiment's shards. Worker choice derives from exp.ShardSeed —
// a shard-local substream of the campaign seed — keeping dispatch
// deterministic without ever touching trial streams.
//
// The durability layer extends this in three directions (DESIGN.md
// §12). Completed shard results spill to a disk checkpoint store
// (Options.CheckpointDir) with sha256 manifests and quarantine-on-
// corruption, so a coordinator restarted mid-campaign recomputes only
// shards that never finished. Each worker carries a circuit breaker:
// consecutive dispatch failures open it for a deterministic full-jitter
// backoff window (seeded per worker via exp.StreamSeed), after which
// one half-open probe either closes it or doubles the window — a dead
// worker costs a bounded number of attempts, not one per shard.
// Straggling dispatches hedge: after Options.HedgeDelay (or an
// adaptive p99 of observed dispatch latency) without an answer, the
// shard is speculatively redispatched to a second worker and the first
// byte-complete result wins; the loser is audited byte-for-byte
// against the winner (HedgeMismatches), because shard execution is
// deterministic per build and any divergence is a bug worth counting.
//
// Chaos coverage reuses internal/faultinject: the dist.dispatch point
// fires before every dispatch attempt (an injected error is a failed
// attempt and redispatches like a real one), dist.merge before the
// final merge, and shard.checkpoint.read / shard.checkpoint.write
// around the checkpoint store (an injected read degrades to a recompute,
// an injected write skips the checkpoint — never fails the shard).
package dist

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/histo"
	"repro/internal/obs"
	"repro/internal/results"
)

// ShardPath is the worker endpoint shards are POSTed to.
const ShardPath = "/v1/shards"

// NDJSONContentType marks a streamed shard response: newline-delimited
// StreamFrame objects instead of one ShardResult document.
const NDJSONContentType = "application/x-ndjson"

// ShardRequest is the wire form of one shard dispatch. Revision and Go
// fingerprint the coordinator's build; a worker on a different build
// must reject the shard rather than contribute bytes from a divergent
// simulator. Traceparent, when set, names the coordinator's dispatch
// span so the worker's spans stitch into the same trace; Stream asks
// for the NDJSON response (epoch frames live, then the result) instead
// of the legacy single-document reply.
type ShardRequest struct {
	Revision    string         `json:"revision"`
	Go          string         `json:"go"`
	Shard       campaign.Shard `json:"shard"`
	Traceparent string         `json:"traceparent,omitempty"`
	Stream      bool           `json:"stream,omitempty"`
}

// EpochFrame is one per-epoch Observer sample a worker relays back
// mid-shard: the shard-local sequence number (1-based, deterministic
// per shard content), the experiment that produced it, and the sample.
type EpochFrame struct {
	Seq        int64            `json:"seq"`
	Experiment string           `json:"experiment"`
	Sample     core.EpochSample `json:"sample"`
}

// StreamFrame is one NDJSON line of a streamed shard response. Epoch
// frames arrive while the shard runs; exactly one terminal frame
// follows — Result (with the worker's exported span subtree in Trace)
// on success, Error on failure. The trace rides beside the result, not
// inside it: ShardResult stays byte-pure because the hedge audit and
// the checkpoint store compare and hash its serialized form.
type StreamFrame struct {
	Epoch  *EpochFrame           `json:"epoch,omitempty"`
	Result *campaign.ShardResult `json:"result,omitempty"`
	Trace  *obs.Node             `json:"trace,omitempty"`
	Error  string                `json:"error,omitempty"`
}

// Observe carries the coordinator's metric hooks; any field may be nil.
// The server wires these into its counter set so shard traffic shows up
// in /v1/metrics without this package importing the server.
type Observe struct {
	// Dispatched fires per dispatch attempt, labeled by worker URL.
	Dispatched func(worker string)
	// Retried fires per redispatch (attempt two onward).
	Retried func()
	// CacheHit fires when a shard is served from the shard cache.
	CacheHit func()
	// Checkpointed fires when a completed shard result is spilled to the
	// checkpoint store.
	Checkpointed func()
	// Resumed fires when a shard is answered from the checkpoint store
	// instead of recomputed (a resumed campaign after a restart).
	Resumed func()
	// Hedged fires when a straggling dispatch is speculatively
	// redispatched to a second worker.
	Hedged func()
	// BreakerOpened fires on each worker circuit-breaker closed→open
	// transition (including a failed half-open probe reopening it).
	BreakerOpened func()
	// ShardRTT observes each successful dispatch's round-trip time —
	// the coordinator-side shard_rtt_seconds histogram.
	ShardRTT func(d time.Duration)
}

// Options configure a Coordinator.
type Options struct {
	// Workers seeds the worker pool with static base URLs
	// (e.g. http://10.0.0.2:8080). More workers can join at runtime via
	// AddWorker (the server's POST /v1/workers registration endpoint).
	Workers []string
	// MaxShards bounds how many shards one experiment's trial space is
	// split into (default: twice the seed pool size, at least 2).
	MaxShards int
	// Retries is how many extra dispatch attempts a failed shard gets,
	// each on the next worker round-robin (default 2; negative disables
	// redispatch).
	Retries int
	// ShardTimeout bounds one dispatch attempt end-to-end (default 5m;
	// negative disables). A hung worker costs one attempt, not the
	// campaign.
	ShardTimeout time.Duration
	// CacheShards sizes the coordinator's shard-result cache (default
	// 512 entries; negative disables caching).
	CacheShards int
	// Client is the HTTP client for dispatches and probes (default: a
	// plain http.Client; per-attempt deadlines come from ShardTimeout).
	Client *http.Client
	// CheckpointDir, when non-empty, spills completed shard results to a
	// disk checkpoint store (sha256-manifested, quarantined when
	// corrupt) that survives coordinator restarts: a resumed campaign
	// recomputes only shards that never completed.
	CheckpointDir string
	// Seed keys the deterministic per-worker backoff jitter streams (via
	// exp.StreamSeed), so breaker tests reproduce exactly (default 1).
	Seed int64
	// BreakerFailures is the consecutive-failure threshold that opens a
	// worker's circuit breaker (default 3; negative disables breakers).
	BreakerFailures int
	// HedgeDelay tunes straggler hedging: after this long without an
	// answer a shard is redispatched to a second worker and the first
	// byte-complete result wins. 0 derives the delay from the observed
	// dispatch p99; negative disables hedging.
	HedgeDelay time.Duration
	// PoolWait bounds how long a shard waits for the worker pool to be
	// non-empty before failing (default 60s; negative fails
	// immediately). A restarted coordinator replays journaled campaigns
	// before its workers' next heartbeat re-registers them; this turns
	// that boot-order race into a short wait.
	PoolWait time.Duration
	// Faults arms the dist.dispatch / dist.merge / shard.checkpoint.*
	// chaos points.
	Faults *faultinject.Set
	// Observe receives metric callbacks.
	Observe Observe
	// Logger receives structured dispatch-lifecycle events (retries,
	// hedges, breaker opens, audit mismatches) with shard/worker attrs;
	// nil discards them.
	Logger *slog.Logger
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.MaxShards < 1 {
		o.MaxShards = 2 * len(o.Workers)
		if o.MaxShards < 2 {
			o.MaxShards = 2
		}
	}
	if o.Retries == 0 {
		o.Retries = 2
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.ShardTimeout == 0 {
		o.ShardTimeout = 5 * time.Minute
	}
	if o.CacheShards == 0 {
		o.CacheShards = 512
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.BreakerFailures == 0 {
		o.BreakerFailures = 3
	} else if o.BreakerFailures < 0 {
		o.BreakerFailures = 0
	}
	if o.PoolWait == 0 {
		o.PoolWait = time.Minute
	} else if o.PoolWait < 0 {
		o.PoolWait = 0
	}
	if o.Logger == nil {
		o.Logger = obs.Discard()
	}
	return o
}

// WorkerStatus reports one pool member's reachability.
type WorkerStatus struct {
	URL       string `json:"url"`
	Reachable bool   `json:"reachable"`
}

// PoolHealth summarises a reachability sweep of the worker pool.
type PoolHealth struct {
	Total     int `json:"total"`
	Reachable int `json:"reachable"`
	// Quorum is the minimum reachable workers for the coordinator to
	// call itself ready: a strict majority of the registered pool, and
	// never less than one — a coordinator with no reachable workers
	// cannot run campaigns at all.
	Quorum  int            `json:"quorum"`
	Workers []WorkerStatus `json:"workers"`
}

// Ready reports whether the pool meets quorum.
func (h PoolHealth) Ready() bool { return h.Reachable >= h.Quorum }

// workerState is one pool member: its stable id (content-derived from
// the URL, so re-registration is naturally idempotent) plus its circuit
// breaker. Breaker fields are guarded by the Coordinator's mutex; the
// jitter rng is per-worker and seeded from a worker-keyed substream, so
// backoff schedules are deterministic in tests yet decorrelated across
// workers.
type workerState struct {
	id  string
	url string
	// fails counts consecutive dispatch failures since the last success.
	fails int
	// openUntil is the breaker deadline: zero means closed; a passed
	// deadline means half-open (one probe dispatch is allowed through).
	openUntil time.Time
	// backoff is the next open window, doubling to breakerMaxBackoff.
	backoff time.Duration
	rng     *rand.Rand
}

// Coordinator shards campaigns across a pool of htserved workers.
// Construct with New; safe for concurrent use.
type Coordinator struct {
	opts Options

	mu      sync.Mutex
	workers []*workerState
	// latency observes successful dispatch wall times; its p99 drives
	// adaptive hedging.
	latency *histo.Histogram

	cache *shardCache
	ckpt  *checkpointStore

	hedgeMismatches atomic.Int64
}

// New builds a Coordinator over the given options, creating the
// checkpoint directory when configured.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	ckpt, err := newCheckpointStore(opts.CheckpointDir, opts.Faults)
	if err != nil {
		return nil, fmt.Errorf("dist: checkpoint dir: %w", err)
	}
	c := &Coordinator{
		opts:    opts,
		cache:   newShardCache(opts.CacheShards),
		ckpt:    ckpt,
		latency: histo.Exponential(0.001, 2, 18),
	}
	for _, u := range opts.Workers {
		c.Register(u)
	}
	return c, nil
}

// workerID derives a worker's stable pool id from its normalised URL —
// the {id} the DELETE /v1/workers/{id} deregistration path names.
func workerID(url string) string {
	h := sha256.Sum256([]byte(url))
	return hex.EncodeToString(h[:8])
}

// Register adds a worker base URL to the pool, reporting its stable id
// and whether it was new. Registration is idempotent (heartbeats
// re-register on a cadence), and re-registering never resets breaker
// state: health is earned by dispatch outcomes, not by announcements.
// URLs are normalised (trailing slash stripped).
func (c *Coordinator) Register(url string) (string, bool) {
	url = strings.TrimRight(strings.TrimSpace(url), "/")
	if url == "" {
		return "", false
	}
	id := workerID(url)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if w.url == url {
			return id, false
		}
	}
	c.workers = append(c.workers, &workerState{
		id:      id,
		url:     url,
		backoff: breakerBaseBackoff,
		rng:     rand.New(rand.NewSource(exp.StreamSeed(c.opts.Seed, "breaker/"+url))),
	})
	return id, true
}

// AddWorker registers a worker base URL, reporting whether it was new.
func (c *Coordinator) AddWorker(url string) bool {
	_, added := c.Register(url)
	return added
}

// Remove deregisters the worker with the given pool id — the graceful-
// drain path: a SIGTERMed worker finishes its in-flight shards, then
// deregisters so the coordinator stops placing new ones on it.
func (c *Coordinator) Remove(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, w := range c.workers {
		if w.id == id {
			c.workers = append(c.workers[:i], c.workers[i+1:]...)
			return true
		}
	}
	return false
}

// WorkerURLs snapshots the pool in registration order.
func (c *Coordinator) WorkerURLs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	urls := make([]string, len(c.workers))
	for i, w := range c.workers {
		urls[i] = w.url
	}
	return urls
}

// Health probes every pool member's liveness endpoint concurrently
// (bounded to probeTimeout each) and reports the quorum verdict the
// coordinator's /v1/healthz readiness folds in.
func (c *Coordinator) Health(ctx context.Context) PoolHealth {
	urls := c.WorkerURLs()
	h := PoolHealth{Total: len(urls), Quorum: quorum(len(urls)), Workers: make([]WorkerStatus, len(urls))}
	var wg sync.WaitGroup
	for i, u := range urls {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Workers[i] = WorkerStatus{URL: u, Reachable: c.probe(ctx, u)}
		}()
	}
	wg.Wait()
	for _, w := range h.Workers {
		if w.Reachable {
			h.Reachable++
		}
	}
	return h
}

// probeTimeout bounds one worker liveness probe.
const probeTimeout = 2 * time.Second

// probe checks one worker's liveness endpoint.
func (c *Coordinator) probe(ctx context.Context, workerURL string) bool {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, workerURL+"/v1/healthz?probe=live", nil)
	if err != nil {
		return false
	}
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// quorum is the readiness threshold for n registered workers: a strict
// majority, at least one. Zero registered workers can never be ready.
func quorum(n int) int {
	if n == 0 {
		return 1
	}
	return n/2 + 1
}

// Circuit-breaker backoff window: full jitter over a doubling range.
const (
	breakerBaseBackoff = 250 * time.Millisecond
	breakerMaxBackoff  = 15 * time.Second
)

// eligibleWorkers snapshots the pool members whose breaker admits a
// dispatch now: closed breakers, plus open ones whose window has passed
// (the half-open probe). When every breaker is open the whole pool is
// returned — with no healthier alternative, failing fast helps nobody.
func (c *Coordinator) eligibleWorkers(now time.Time) []*workerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ws []*workerState
	for _, w := range c.workers {
		if w.openUntil.IsZero() || now.After(w.openUntil) {
			ws = append(ws, w)
		}
	}
	if len(ws) == 0 {
		ws = append(ws, c.workers...)
	}
	return ws
}

// recordSuccess closes w's breaker and feeds the dispatch latency into
// the adaptive-hedging histogram.
func (c *Coordinator) recordSuccess(w *workerState, d time.Duration) {
	c.mu.Lock()
	w.fails = 0
	w.backoff = breakerBaseBackoff
	w.openUntil = time.Time{}
	c.latency.Observe(d.Seconds())
	c.mu.Unlock()
}

// recordFailure counts one failed dispatch against w's breaker. The
// breaker opens at the consecutive-failure threshold — or immediately
// when the failure was a half-open probe — for a full-jitter window
// drawn from the worker's deterministic rng, doubling to the cap.
func (c *Coordinator) recordFailure(w *workerState) {
	if c.opts.BreakerFailures <= 0 {
		return
	}
	var opened bool
	var openFor time.Duration
	c.mu.Lock()
	w.fails++
	if w.fails >= c.opts.BreakerFailures || !w.openUntil.IsZero() {
		wait := time.Duration(w.rng.Int63n(int64(w.backoff))) + time.Millisecond
		w.openUntil = time.Now().Add(wait)
		w.backoff *= 2
		if w.backoff > breakerMaxBackoff {
			w.backoff = breakerMaxBackoff
		}
		w.fails = 0
		opened = true
		openFor = wait
	}
	c.mu.Unlock()
	if opened {
		if c.opts.Observe.BreakerOpened != nil {
			c.opts.Observe.BreakerOpened()
		}
		c.opts.Logger.Warn("worker circuit breaker opened", "worker", w.url, "open_for", openFor)
	}
}

// awaitWorkers blocks (polling) until the pool is non-empty, up to
// Options.PoolWait. A coordinator restarted mid-campaign replays its
// journaled jobs before its workers' next heartbeat re-registers them;
// waiting here turns that boot-order race into a short delay instead of
// a failed campaign.
func (c *Coordinator) awaitWorkers(ctx context.Context) error {
	deadline := time.Now().Add(c.opts.PoolWait)
	for {
		c.mu.Lock()
		n := len(c.workers)
		c.mu.Unlock()
		if n > 0 {
			return nil
		}
		if c.opts.PoolWait <= 0 || time.Now().After(deadline) {
			return errors.New("dist: no workers registered")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// hedgeMinObservations is how many successful dispatches the latency
// histogram needs before an adaptive p99 means anything.
const hedgeMinObservations = 8

// hedgeDelay resolves the straggler-hedging delay for one dispatch: a
// positive Options.HedgeDelay verbatim, negative disables (0 returned),
// and zero adapts — the p99 of observed dispatch latency, once enough
// dispatches have been seen.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.opts.HedgeDelay != 0 {
		if c.opts.HedgeDelay < 0 {
			return 0
		}
		return c.opts.HedgeDelay
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.latency.Count() < hedgeMinObservations {
		return 0
	}
	return time.Duration(c.latency.Quantile(0.99) * float64(time.Second))
}

// RunCampaign shards a validated spec across the pool, redispatching
// failed shards, and merges the results into the exact tables
// campaign.BuildTables produces locally. prog receives the same
// experiment-lifecycle callbacks a local run reports (started on first
// shard dispatch, done after the merge) and — when prog.Epoch is set —
// the same live per-epoch samples: workers stream them back over the
// shard response and a per-campaign sink republishes each sequence
// number exactly once, however many retries or hedge twins replay it.
func (c *Coordinator) RunCampaign(ctx context.Context, spec *campaign.Spec, prog campaign.Progress) ([]results.Table, error) {
	shards, err := campaign.PlanShards(spec, c.opts.MaxShards)
	if err != nil {
		return nil, err
	}
	sink := newProgressSink(prog)
	var startedMu sync.Mutex
	started := make(map[int]bool)
	markStarted := func(sh campaign.Shard) {
		if prog.ExperimentStarted == nil {
			return
		}
		startedMu.Lock()
		first := !started[sh.ExpIndex]
		started[sh.ExpIndex] = true
		startedMu.Unlock()
		if first {
			prog.ExperimentStarted(sh.Experiment.ID)
		}
	}
	// Shard fan-out concurrency: enough in-flight dispatches to keep
	// every worker busy, while each worker's own job gate bounds what
	// actually executes there.
	conc := 2 * len(c.WorkerURLs())
	if conc < 1 {
		conc = 1
	}
	shardResults, err := exp.RunCtx(ctx, conc, len(shards), func(ctx context.Context, i int) (campaign.ShardResult, error) {
		markStarted(shards[i])
		r, err := c.runShard(ctx, shards[i], i, sink)
		if err != nil {
			return campaign.ShardResult{}, err
		}
		return *r, nil
	})
	if err != nil {
		c.reportDone(prog, spec, nil, err)
		return nil, err
	}
	mctx, mspan := obs.StartSpan(ctx, "dist.merge")
	if ferr := c.opts.Faults.Fire(mctx, "dist.merge"); ferr != nil {
		err := fmt.Errorf("dist: merge: %w", ferr)
		mspan.RecordError(err)
		mspan.End()
		c.reportDone(prog, spec, nil, err)
		return nil, err
	}
	tables, err := campaign.MergeShards(mctx, spec, shardResults)
	mspan.RecordError(err)
	mspan.End()
	c.reportDone(prog, spec, tables, err)
	return tables, err
}

// progressSink relabels and dedups worker epoch frames for one
// campaign: per shard plan position it forwards each sequence number at
// most once, so a retried or hedged shard — whose rerun deterministically
// regenerates the same samples — never duplicates an SSE event. Frames
// beyond the furthest forwarded sequence keep flowing, so a retry that
// gets further than the failed attempt resumes the live feed seamlessly.
type progressSink struct {
	epoch func(experiment string, s core.EpochSample)
	mu    sync.Mutex
	max   map[int]int64
}

// newProgressSink builds the sink, or nil when the campaign has no
// epoch callback (nil sinks drop frames and suppress stream requests).
func newProgressSink(prog campaign.Progress) *progressSink {
	if prog.Epoch == nil {
		return nil
	}
	return &progressSink{epoch: prog.Epoch, max: make(map[int]int64)}
}

// forward republishes one worker epoch frame unless an earlier attempt
// already delivered that sequence number for this shard.
func (ps *progressSink) forward(planIndex int, f EpochFrame) {
	if ps == nil {
		return
	}
	ps.mu.Lock()
	if f.Seq <= ps.max[planIndex] {
		ps.mu.Unlock()
		return
	}
	ps.max[planIndex] = f.Seq
	ps.mu.Unlock()
	ps.epoch(f.Experiment, f.Sample)
}

// reportDone fires ExperimentDone per spec entry with the merged table
// (position-matched) or the campaign-level error.
func (c *Coordinator) reportDone(prog campaign.Progress, spec *campaign.Spec, tables []results.Table, err error) {
	if prog.ExperimentDone == nil {
		return
	}
	for i, e := range spec.Experiments {
		var t results.Table
		if err == nil && i < len(tables) {
			t = tables[i]
		}
		prog.ExperimentDone(e.ID, t, err)
	}
}

// runShard executes one shard: memory cache first, then the disk
// checkpoint store (a resumed campaign), then dispatch with round-robin
// redispatch on failure and straggler hedging. The starting worker
// derives from the shard's seed substream (exp.ShardSeed keyed by the
// shard's plan index), so placement is deterministic for a given plan
// and healthy pool — and never perturbs trial streams, which key off
// the campaign seed alone.
func (c *Coordinator) runShard(ctx context.Context, sh campaign.Shard, planIndex int, sink *progressSink) (*campaign.ShardResult, error) {
	ctx, span := obs.StartSpan(ctx, "shard")
	span.SetAttr("shard", sh.String())
	defer span.End()
	key := shardKey(sh)
	if r, ok := c.cache.get(key); ok {
		if c.opts.Observe.CacheHit != nil {
			c.opts.Observe.CacheHit()
		}
		span.SetAttr("source", "cache")
		// The cached payload is content-addressed; the shard identity
		// (notably ExpIndex) must be this campaign's, not the one that
		// populated the cache.
		r.Shard = sh
		return &r, nil
	}
	if r, ok := c.ckpt.get(key); ok {
		// The shard completed before a restart: resume from the
		// checkpoint (re-warming the memory cache) instead of recomputing.
		if c.opts.Observe.Resumed != nil {
			c.opts.Observe.Resumed()
		}
		span.SetAttr("source", "checkpoint")
		c.cache.put(key, r)
		r.Shard = sh
		return &r, nil
	}
	if err := c.awaitWorkers(ctx); err != nil {
		span.RecordError(err)
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			if c.opts.Observe.Retried != nil {
				c.opts.Observe.Retried()
			}
			c.opts.Logger.Info("redispatching shard", "shard", sh.String(), "attempt", attempt, "error", lastErr)
		}
		primary, secondary := c.placeShard(sh, planIndex, attempt)
		if primary == nil {
			return nil, errors.New("dist: no workers registered")
		}
		r, err := c.dispatchHedged(ctx, primary, secondary, sh, planIndex, attempt, sink)
		if err == nil {
			c.cache.put(key, *r)
			if c.ckpt != nil && c.ckpt.put(key, r) == nil && c.opts.Observe.Checkpointed != nil {
				c.opts.Observe.Checkpointed()
			}
			return r, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	err := fmt.Errorf("dist: shard %s failed after %d attempts: %w", sh, c.opts.Retries+1, lastErr)
	span.RecordError(err)
	return nil, err
}

// placeShard picks one attempt's primary worker — and a distinct
// secondary for hedging — from the breaker-eligible pool, preserving
// the deterministic seed-derived round-robin of the pre-breaker era.
func (c *Coordinator) placeShard(sh campaign.Shard, planIndex, attempt int) (primary, secondary *workerState) {
	ws := c.eligibleWorkers(time.Now())
	if len(ws) == 0 {
		return nil, nil
	}
	start := int(uint64(exp.ShardSeed(sh.Seed, planIndex)) % uint64(len(ws)))
	primary = ws[(start+attempt)%len(ws)]
	if len(ws) > 1 {
		secondary = ws[(start+attempt+1)%len(ws)]
	}
	return primary, secondary
}

// dispatchOutcome carries one dispatch attempt through the hedge race.
type dispatchOutcome struct {
	r   *campaign.ShardResult
	err error
}

// dispatchTo runs one dispatch against one worker and feeds the outcome
// into its breaker. A cancelled context is the campaign's doing, not
// the worker's, and counts against no one. Each attempt gets its own
// shard.dispatch span — a retried shard's trace shows every failed
// attempt beside the one that succeeded, fault annotations included.
func (c *Coordinator) dispatchTo(ctx context.Context, w *workerState, sh campaign.Shard, planIndex, attempt int, hedged bool, sink *progressSink) (*campaign.ShardResult, error) {
	_, span := obs.StartSpan(ctx, "shard.dispatch")
	span.SetAttr("worker", w.url)
	span.SetAttr("attempt", strconv.Itoa(attempt))
	if hedged {
		span.SetAttr("hedged", "true")
	}
	defer span.End()
	t0 := time.Now()
	r, err := c.dispatch(ctx, w.url, sh, planIndex, sink, span)
	if err != nil {
		span.RecordError(err)
		var fe *faultinject.Error
		if errors.As(err, &fe) {
			span.SetAttr("fault_point", fe.Point)
		}
		if ctx.Err() == nil {
			c.recordFailure(w)
			c.opts.Logger.Warn("shard dispatch failed", "shard", sh.String(), "worker", w.url, "attempt", attempt, "error", err)
		}
		return nil, fmt.Errorf("worker %s: %w", w.url, err)
	}
	d := time.Since(t0)
	c.recordSuccess(w, d)
	if c.opts.Observe.ShardRTT != nil {
		c.opts.Observe.ShardRTT(d)
	}
	return r, nil
}

// dispatchHedged races a straggling primary dispatch against a
// speculative secondary: if the primary has not answered within the
// hedge delay, the same shard also goes to the secondary and the first
// byte-complete success wins. The loser is not cancelled — its result
// is audited against the winner's in the background, because shard
// execution is deterministic per build and the two must be
// byte-identical; any divergence bumps HedgeMismatches rather than
// silently merging whichever bytes arrived first.
func (c *Coordinator) dispatchHedged(ctx context.Context, primary, secondary *workerState, sh campaign.Shard, planIndex, attempt int, sink *progressSink) (*campaign.ShardResult, error) {
	delay := c.hedgeDelay()
	if delay <= 0 || secondary == nil {
		return c.dispatchTo(ctx, primary, sh, planIndex, attempt, false, sink)
	}
	ch := make(chan dispatchOutcome, 2)
	launch := func(w *workerState, hedged bool) {
		r, err := c.dispatchTo(ctx, w, sh, planIndex, attempt, hedged, sink)
		ch <- dispatchOutcome{r, err}
	}
	go launch(primary, false)
	inflight := 1
	timer := time.NewTimer(delay)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case <-timer.C:
			if c.opts.Observe.Hedged != nil {
				c.opts.Observe.Hedged()
			}
			c.opts.Logger.Info("hedging straggler dispatch", "shard", sh.String(), "worker", secondary.url, "after", delay)
			go launch(secondary, true)
			inflight++
		case out := <-ch:
			inflight--
			if out.err == nil {
				if inflight > 0 {
					go c.auditLoser(ch, out.r)
				}
				return out.r, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if inflight == 0 {
				return nil, firstErr
			}
		}
	}
}

// auditLoser consumes the hedge race's losing dispatch and asserts byte
// identity with the winner. Detached: campaigns never wait on a
// straggler just to audit it.
func (c *Coordinator) auditLoser(ch <-chan dispatchOutcome, winner *campaign.ShardResult) {
	out := <-ch
	if out.err != nil {
		// The loser failing outright proves nothing about determinism —
		// the hedge existed precisely because it looked unhealthy.
		return
	}
	wb, werr := json.Marshal(winner)
	lb, lerr := json.Marshal(out.r)
	if werr != nil || lerr != nil || !bytes.Equal(wb, lb) {
		c.hedgeMismatches.Add(1)
		c.opts.Logger.Error("hedge audit mismatch: shard results not byte-identical", "shard", winner.Shard.String())
	}
}

// HedgeMismatches reports hedged dispatches whose two results were not
// byte-identical — zero unless shard determinism is broken.
func (c *Coordinator) HedgeMismatches() int64 { return c.hedgeMismatches.Load() }

// dispatch POSTs one shard to one worker and decodes the result. The
// dist.dispatch fault point fires first: an injected error is a failed
// attempt, exercising the redispatch path without a real dead worker.
// With a progress sink or a live span the request asks for the NDJSON
// stream (epoch frames relayed live, the worker's span subtree grafted
// under this attempt's span); the coordinator branches on the response
// content type, so a worker answering the legacy single document —
// Stream unset, or an older build behind a proxy — still merges.
func (c *Coordinator) dispatch(ctx context.Context, workerURL string, sh campaign.Shard, planIndex int, sink *progressSink, span *obs.Span) (*campaign.ShardResult, error) {
	if err := c.opts.Faults.Fire(ctx, "dist.dispatch"); err != nil {
		return nil, err
	}
	if c.opts.Observe.Dispatched != nil {
		c.opts.Observe.Dispatched(workerURL)
	}
	if c.opts.ShardTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.ShardTimeout)
		defer cancel()
	}
	stream := sink != nil || span != nil
	body, err := json.Marshal(ShardRequest{
		Revision:    results.Revision(),
		Go:          runtime.Version(),
		Shard:       sh,
		Traceparent: span.Traceparent(),
		Stream:      stream,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, workerURL+ShardPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard rejected: %s: %s", resp.Status, errorBody(resp.Body))
	}
	var r campaign.ShardResult
	if strings.HasPrefix(resp.Header.Get("Content-Type"), NDJSONContentType) {
		res, err := c.consumeStream(resp.Body, planIndex, sink, span)
		if err != nil {
			return nil, err
		}
		r = *res
	} else if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return nil, fmt.Errorf("decode shard result: %w", err)
	}
	if r.Shard.Lo != sh.Lo || r.Shard.Hi != sh.Hi || r.Shard.Experiment.ID != sh.Experiment.ID {
		return nil, fmt.Errorf("worker answered for shard %s, asked for %s", r.Shard, sh)
	}
	// Trust the request's identity, not the echo: merges key on ExpIndex.
	r.Shard = sh
	return &r, nil
}

// consumeStream drains a streamed shard response: epoch frames forward
// through the sink as they arrive (the live feed), and the terminal
// frame yields the result — grafting the worker's exported span subtree
// — or the worker-side error. A stream that ends without a terminal
// frame (worker crashed mid-shard) is a failed attempt like any other.
func (c *Coordinator) consumeStream(body io.Reader, planIndex int, sink *progressSink, span *obs.Span) (*campaign.ShardResult, error) {
	dec := json.NewDecoder(body)
	for {
		var f StreamFrame
		if err := dec.Decode(&f); err != nil {
			if errors.Is(err, io.EOF) {
				return nil, errors.New("shard stream ended without a result frame")
			}
			return nil, fmt.Errorf("decode shard stream frame: %w", err)
		}
		switch {
		case f.Epoch != nil:
			sink.forward(planIndex, *f.Epoch)
		case f.Error != "":
			span.Graft(f.Trace)
			return nil, errors.New(f.Error)
		case f.Result != nil:
			span.Graft(f.Trace)
			return f.Result, nil
		}
	}
}

// errorBody extracts a JSON error message (or raw text) from a failed
// response, truncated to keep shard errors readable.
func errorBody(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 1024))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(b, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(b))
}

// shardKey fingerprints a shard for the coordinator-side cache: its
// content (experiment spec, seed context, trial range) plus the build,
// never its position in a particular campaign — so an unchanged
// experiment resubmitted in a different spec still hits.
func shardKey(sh campaign.Shard) string {
	return results.HashConfig(struct {
		Experiment campaign.ExperimentSpec `json:"experiment"`
		Seed       int64                   `json:"seed"`
		Lo         int                     `json:"lo"`
		Hi         int                     `json:"hi"`
		Count      int                     `json:"count"`
		Revision   string                  `json:"revision"`
		Go         string                  `json:"go"`
	}{sh.Experiment, sh.Seed, sh.Lo, sh.Hi, sh.Count, results.Revision(), runtime.Version()})
}

// shardCache is a small LRU of completed shard results keyed by content
// address. It holds decoded payloads (raw vectors or table JSON), which
// for the paper campaigns are tiny next to the compute they memoize.
type shardCache struct {
	mu      sync.Mutex
	entries map[string]campaign.ShardResult
	order   []string // LRU: oldest first
	max     int
}

// newShardCache builds a cache holding up to max entries (max < 0
// disables caching).
func newShardCache(max int) *shardCache {
	if max < 0 {
		max = 0
	}
	return &shardCache{entries: make(map[string]campaign.ShardResult), max: max}
}

// get returns a cached result and refreshes its recency.
func (s *shardCache) get(key string) (campaign.ShardResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.entries[key]
	if ok {
		s.touchLocked(key)
	}
	return r, ok
}

// put stores a result, evicting the least recently used entry at
// capacity.
func (s *shardCache) put(key string, r campaign.ShardResult) {
	if s.max == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[key]; ok {
		s.entries[key] = r
		s.touchLocked(key)
		return
	}
	for len(s.entries) >= s.max && len(s.order) > 0 {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.entries, oldest)
	}
	s.entries[key] = r
	s.order = append(s.order, key)
}

// touchLocked moves key to the most-recent end; s.mu held.
func (s *shardCache) touchLocked(key string) {
	for i, k := range s.order {
		if k == key {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), key)
			return
		}
	}
}
