package dist

import (
	"testing"

	"repro/internal/campaign"
)

func TestQuorum(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 2, 4: 3, 5: 3, 9: 5}
	for n, want := range cases {
		if got := quorum(n); got != want {
			t.Errorf("quorum(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAddWorkerNormalisesAndDedupes(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.AddWorker("http://a:1/") {
		t.Fatal("first registration rejected")
	}
	if c.AddWorker("http://a:1") {
		t.Fatal("same URL (modulo trailing slash) registered twice")
	}
	if c.AddWorker("  ") {
		t.Fatal("blank URL registered")
	}
	if got := c.WorkerURLs(); len(got) != 1 || got[0] != "http://a:1" {
		t.Fatalf("pool = %v, want [http://a:1]", got)
	}
}

func TestShardCacheLRU(t *testing.T) {
	c := newShardCache(2)
	r := func(id string) campaign.ShardResult {
		return campaign.ShardResult{Shard: campaign.Shard{Experiment: campaign.ExperimentSpec{ID: id}}}
	}
	c.put("a", r("A"))
	c.put("b", r("B"))
	if _, ok := c.get("a"); !ok { // refresh a's recency
		t.Fatal("a missing")
	}
	c.put("c", r("C")) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction past capacity")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted, want retained", k)
		}
	}

	disabled := newShardCache(-1)
	disabled.put("x", r("X"))
	if _, ok := disabled.get("x"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestShardKeyIgnoresCampaignPosition(t *testing.T) {
	sh := campaign.Shard{
		ExpIndex:   0,
		Experiment: campaign.ExperimentSpec{ID: "E3"},
		Seed:       7, Index: 1, Count: 2, Lo: 3, Hi: 6,
	}
	moved := sh
	moved.ExpIndex = 5
	if shardKey(sh) != shardKey(moved) {
		t.Error("shard key depends on ExpIndex; unchanged experiments would miss the cache when reordered")
	}
	other := sh
	other.Seed = 8
	if shardKey(sh) == shardKey(other) {
		t.Error("shard key ignores the seed")
	}
}
