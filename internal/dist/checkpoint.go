package dist

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/campaign"
	"repro/internal/faultinject"
)

// This file is the shard checkpoint store: the disk tier under the
// coordinator's in-memory shard cache, mirroring the job cache's
// trust-nothing layout (internal/server/cache.go). Each completed shard
// result is spilled under its content address as result.json plus a
// sha256 manifest; a read verifies the manifest before trusting the
// bytes, and a mismatch quarantines the entry (moved aside for
// post-mortem, never deleted in place) and reports a miss — a corrupt
// checkpoint degrades to a recompute, never to wrong merged tables.
//
// Checkpointing is strictly best-effort on the write side (a failed
// spill — including the injected shard.checkpoint.write fault — skips
// the checkpoint and the shard result still merges) and fail-open on
// the read side (the injected shard.checkpoint.read fault is a miss).
// The store is what makes a coordinator kill -9 cheap: on restart, the
// replayed campaign answers every already-completed shard from here and
// recomputes only the ones that never finished.

const (
	// checkpointFile is the serialized campaign.ShardResult.
	checkpointFile = "result.json"
	// checkpointSums is the per-entry checksum manifest, same format as
	// the job cache's manifest.sums.
	checkpointSums = "manifest.sums"
	// checkpointQuarantine is the subdirectory corrupt entries move into.
	checkpointQuarantine = "quarantine"
)

// checkpointStore persists completed shard results across coordinator
// restarts. All methods are nil-safe: a coordinator without a
// checkpoint directory carries a nil store and every call misses or
// no-ops.
type checkpointStore struct {
	dir    string
	faults *faultinject.Set
	// mu serialises spills of the same key; distinct keys only contend
	// on the brief rename.
	mu sync.Mutex
}

// newCheckpointStore opens (creating) the store rooted at dir; an empty
// dir disables checkpointing and returns a nil store.
func newCheckpointStore(dir string, faults *faultinject.Set) (*checkpointStore, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &checkpointStore{dir: dir, faults: faults}, nil
}

// get loads one checkpointed shard result, verifying it against its
// manifest first. Every failure path — injected read fault, missing
// entry, torn or tampered bytes — degrades to a miss; corruption is
// additionally quarantined so the recompute does not trip over it again.
func (s *checkpointStore) get(key string) (campaign.ShardResult, bool) {
	var r campaign.ShardResult
	if s == nil {
		return r, false
	}
	if err := s.faults.Fire(context.Background(), "shard.checkpoint.read"); err != nil {
		return r, false
	}
	dir := s.entryPath(key)
	b, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if err != nil {
		return r, false
	}
	if err := s.verify(dir, b); err != nil {
		s.quarantine(key)
		return r, false
	}
	if err := json.Unmarshal(b, &r); err != nil {
		s.quarantine(key)
		return r, false
	}
	return r, true
}

// put spills one completed shard result: result.json plus its manifest
// written into a temp directory, then renamed into place, so a torn
// spill is never visible under the entry's final name. Errors
// (including the injected shard.checkpoint.write fault) leave the shard
// un-checkpointed — the result still merges, it just recomputes after a
// restart.
func (s *checkpointStore) put(key string, r *campaign.ShardResult) error {
	if s == nil {
		return os.ErrInvalid
	}
	if err := s.faults.Fire(context.Background(), "shard.checkpoint.write"); err != nil {
		return err
	}
	b, err := json.Marshal(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.MkdirTemp(s.dir, "ckpt-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	f, err := os.Create(filepath.Join(tmp, checkpointFile))
	if err != nil {
		return err
	}
	// The hash sees every byte marshalled; the file sees what the
	// (possibly faulty) writer let through. Divergence is exactly what
	// get's verification must catch.
	h := sha256.New()
	_, err = io.MultiWriter(h, s.faults.Writer("shard.checkpoint.write", f)).Write(b)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	sums := fmt.Sprintf("%x  %s\n", h.Sum(nil), checkpointFile)
	if err := os.WriteFile(filepath.Join(tmp, checkpointSums), []byte(sums), 0o644); err != nil {
		return err
	}
	final := s.entryPath(key)
	os.RemoveAll(final)
	return os.Rename(tmp, final)
}

// verify checks the entry's result bytes against its sha256 manifest.
func (s *checkpointStore) verify(dir string, body []byte) error {
	f, err := os.Open(filepath.Join(dir, checkpointSums))
	if err != nil {
		return fmt.Errorf("checksum manifest: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		digest, name, ok := strings.Cut(sc.Text(), "  ")
		if !ok || len(digest) != sha256.Size*2 {
			return fmt.Errorf("malformed manifest line %q", sc.Text())
		}
		if name != checkpointFile {
			continue
		}
		if got := fmt.Sprintf("%x", sha256.Sum256(body)); got != digest {
			return fmt.Errorf("%s checksum mismatch (have %.12s, manifest %.12s)", name, got, digest)
		}
		return nil
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("%s not in checksum manifest", checkpointFile)
}

// quarantine moves a corrupt entry into the quarantine subdirectory
// (falling back to deletion if even the move fails), preserving it for
// post-mortem rather than destroying the evidence.
func (s *checkpointStore) quarantine(key string) {
	qdir := filepath.Join(s.dir, checkpointQuarantine)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		for n := 0; n < 100; n++ {
			dst := filepath.Join(qdir, fmt.Sprintf("%s-%d", key, n))
			if _, err := os.Stat(dst); err == nil {
				continue
			}
			if os.Rename(s.entryPath(key), dst) == nil {
				return
			}
			break
		}
	}
	os.RemoveAll(s.entryPath(key))
}

// entryPath is one key's checkpoint directory (keys are hex
// fingerprints, safe as path elements).
func (s *checkpointStore) entryPath(key string) string { return filepath.Join(s.dir, key) }
