package dist

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultinject"
)

// This file covers the durability-and-lifecycle layer of the
// coordinator (DESIGN.md §12): per-worker circuit breakers, the disk
// checkpoint store that makes coordinator restarts cheap, and straggler
// hedging.

// goldenSpec mirrors internal/server's test campaign: cheap, two
// experiments, enough trials to shard.
const goldenSpec = `{"name":"golden","seed":1,"experiments":[{"id":"E1","params":{"size":64}},{"id":"E3","params":{"trials":3}}]}`

// mustParseFaults builds a fault set or fails the test.
func mustParseFaults(t *testing.T, spec string) *faultinject.Set {
	t.Helper()
	fs, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// shardWorker boots a fake worker that actually executes shards (no
// build-fingerprint check — both sides of these tests are one binary).
// beforeRun, when non-nil, runs before each shard execution (a sleep
// makes a straggler).
func shardWorker(t *testing.T, beforeRun func()) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req ShardRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if beforeRun != nil {
			beforeRun()
		}
		res, err := campaign.RunShard(r.Context(), req.Shard, 1)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(res)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestBreakerLifecycle walks one worker's breaker through the full
// state machine: closed under sub-threshold failures, open at the
// consecutive-failure threshold (with a doubling backoff window),
// reopening immediately on a failed half-open probe, and fully reset by
// one success.
func TestBreakerLifecycle(t *testing.T) {
	opened := 0
	c, err := New(Options{
		BreakerFailures: 3,
		Seed:            42,
		Observe:         Observe{BreakerOpened: func() { opened++ }},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Register("http://a:1")
	c.Register("http://b:1")
	wa, wb := c.workers[0], c.workers[1]

	c.recordFailure(wa)
	c.recordFailure(wa)
	if !wa.openUntil.IsZero() || opened != 0 {
		t.Fatal("breaker opened below the consecutive-failure threshold")
	}
	c.recordFailure(wa)
	if wa.openUntil.IsZero() || opened != 1 {
		t.Fatalf("breaker not open at threshold (openUntil %v, opened %d)", wa.openUntil, opened)
	}
	if wa.backoff != 2*breakerBaseBackoff {
		t.Fatalf("backoff after first open = %v, want doubled %v", wa.backoff, 2*breakerBaseBackoff)
	}

	// Inside the window only the healthy worker is eligible.
	wa.openUntil = time.Now().Add(time.Hour)
	if ws := c.eligibleWorkers(time.Now()); len(ws) != 1 || ws[0] != wb {
		t.Fatalf("eligible = %d workers, want only the closed one", len(ws))
	}
	// Past the window the breaker is half-open: one probe is allowed.
	if ws := c.eligibleWorkers(time.Now().Add(2 * time.Hour)); len(ws) != 2 {
		t.Fatalf("half-open worker not eligible past its window (got %d)", len(ws))
	}
	// A failed half-open probe reopens immediately — no three-strike
	// grace for a worker that just proved it is still sick — and doubles
	// the window again.
	c.recordFailure(wa)
	if opened != 2 || wa.backoff != 4*breakerBaseBackoff {
		t.Fatalf("failed probe: opened %d backoff %v, want 2 opens and %v", opened, wa.backoff, 4*breakerBaseBackoff)
	}

	// One success heals everything.
	c.recordSuccess(wa, 10*time.Millisecond)
	if !wa.openUntil.IsZero() || wa.fails != 0 || wa.backoff != breakerBaseBackoff {
		t.Fatalf("success did not reset the breaker: %+v", wa)
	}

	// When every breaker is open, the whole pool is returned — failing
	// fast with no alternative helps nobody.
	wa.openUntil = time.Now().Add(time.Hour)
	wb.openUntil = time.Now().Add(time.Hour)
	if ws := c.eligibleWorkers(time.Now()); len(ws) != 2 {
		t.Fatalf("all-open fallback returned %d workers, want the full pool", len(ws))
	}
}

// TestBreakerDisabled: a negative threshold turns breakers off.
func TestBreakerDisabled(t *testing.T) {
	opened := 0
	c, err := New(Options{BreakerFailures: -1, Observe: Observe{BreakerOpened: func() { opened++ }}})
	if err != nil {
		t.Fatal(err)
	}
	c.Register("http://a:1")
	for i := 0; i < 10; i++ {
		c.recordFailure(c.workers[0])
	}
	if !c.workers[0].openUntil.IsZero() || opened != 0 {
		t.Fatal("disabled breaker opened")
	}
}

// TestRegisterStableIDAndRemove: the pool id is content-derived from
// the URL (stable across re-registration and restarts), registration is
// idempotent, and Remove by id is the drain path.
func TestRegisterStableIDAndRemove(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, added := c.Register("http://a:1/")
	if !added || id == "" || id != workerID("http://a:1") {
		t.Fatalf("registration = (%q, %v), want the URL-derived id, added", id, added)
	}
	if id2, added2 := c.Register("http://a:1"); added2 || id2 != id {
		t.Fatalf("re-registration = (%q, %v), want same id, not added", id2, added2)
	}
	if !c.Remove(id) {
		t.Fatal("Remove of a known id failed")
	}
	if c.Remove(id) {
		t.Fatal("Remove of a gone id succeeded")
	}
	if len(c.WorkerURLs()) != 0 {
		t.Fatalf("pool = %v after removal, want empty", c.WorkerURLs())
	}
}

// TestCheckpointStoreRoundTripAndQuarantine: a spilled shard result
// reads back intact; tampered bytes are detected by the sha256
// manifest, quarantined for post-mortem, and reported as a miss.
func TestCheckpointStoreRoundTripAndQuarantine(t *testing.T) {
	dir := t.TempDir()
	s, err := newCheckpointStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := &campaign.ShardResult{Shard: campaign.Shard{Experiment: campaign.ExperimentSpec{ID: "E1"}, Lo: 0, Hi: 2}}
	if err := s.put("k1", r); err != nil {
		t.Fatal(err)
	}
	got, ok := s.get("k1")
	if !ok || got.Shard.Experiment.ID != "E1" || got.Shard.Hi != 2 {
		t.Fatalf("round trip = (%+v, %v), want the stored result", got, ok)
	}

	// Tamper: flip bytes in the entry; the manifest must catch it.
	path := filepath.Join(s.entryPath("k1"), checkpointFile)
	if err := os.WriteFile(path, []byte(`{"shard":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.get("k1"); ok {
		t.Fatal("tampered checkpoint served as trusted")
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointQuarantine, "k1-0")); err != nil {
		t.Fatalf("tampered entry not quarantined: %v", err)
	}
	if _, ok := s.get("k1"); ok {
		t.Fatal("quarantined entry still readable under its key")
	}
	// The key is reusable after quarantine.
	if err := s.put("k1", r); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.get("k1"); !ok {
		t.Fatal("re-spill after quarantine missed")
	}

	// A nil store (no checkpoint dir) misses and refuses puts, never
	// panics.
	var nilStore *checkpointStore
	if _, ok := nilStore.get("k"); ok {
		t.Fatal("nil store hit")
	}
	if err := nilStore.put("k", r); err == nil {
		t.Fatal("nil store accepted a put")
	}
}

// TestCheckpointFaultPoints: an injected write fault skips the
// checkpoint (put errors, shard unaffected by contract), an injected
// read fault degrades to a miss.
func TestCheckpointFaultPoints(t *testing.T) {
	r := &campaign.ShardResult{Shard: campaign.Shard{Experiment: campaign.ExperimentSpec{ID: "E1"}}}
	sw, err := newCheckpointStore(t.TempDir(), mustParseFaults(t, "shard.checkpoint.write:error:times=1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.put("k", r); err == nil {
		t.Fatal("put under write fault succeeded")
	}
	if err := sw.put("k", r); err != nil {
		t.Fatalf("put after fault spent: %v", err)
	}

	sr, err := newCheckpointStore(t.TempDir(), mustParseFaults(t, "shard.checkpoint.read:error:times=1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.put("k", r); err != nil {
		t.Fatal(err)
	}
	if _, ok := sr.get("k"); ok {
		t.Fatal("get under read fault hit")
	}
	if _, ok := sr.get("k"); !ok {
		t.Fatal("get after fault spent missed")
	}
}

// TestCheckpointResumeRecomputesNothing is the restart contract end to
// end: a campaign runs once against a live worker (spilling every shard
// to the checkpoint store), the worker dies, a brand-new coordinator on
// the same checkpoint directory runs the same campaign — and answers it
// entirely from checkpoints, byte-identical, with zero dispatches.
func TestCheckpointResumeRecomputesNothing(t *testing.T) {
	dir := t.TempDir()
	worker := shardWorker(t, nil)
	spec, err := campaign.ParseSpec([]byte(goldenSpec))
	if err != nil {
		t.Fatal(err)
	}

	// Observe callbacks fire from concurrent shard goroutines.
	var dispatched1, checkpointed atomic.Int64
	c1, err := New(Options{
		Workers:       []string{worker.URL},
		MaxShards:     4,
		CheckpointDir: dir,
		Observe: Observe{
			Dispatched:   func(string) { dispatched1.Add(1) },
			Checkpointed: func() { checkpointed.Add(1) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tables1, err := c1.RunCampaign(context.Background(), spec, campaign.Progress{})
	if err != nil {
		t.Fatal(err)
	}
	if dispatched1.Load() == 0 || checkpointed.Load() != dispatched1.Load() {
		t.Fatalf("first run dispatched %d, checkpointed %d — every dispatched shard must spill", dispatched1.Load(), checkpointed.Load())
	}

	worker.Close() // the pool is now dead; only checkpoints can answer

	var dispatched2, resumed atomic.Int64
	c2, err := New(Options{
		Workers:       []string{worker.URL},
		MaxShards:     4,
		CheckpointDir: dir,
		Observe: Observe{
			Dispatched: func(string) { dispatched2.Add(1) },
			Resumed:    func() { resumed.Add(1) },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tables2, err := c2.RunCampaign(context.Background(), spec, campaign.Progress{})
	if err != nil {
		t.Fatalf("resumed campaign failed against a dead pool: %v", err)
	}
	if dispatched2.Load() != 0 {
		t.Fatalf("resumed campaign dispatched %d shards, want 0 (all from checkpoints)", dispatched2.Load())
	}
	if resumed.Load() != checkpointed.Load() {
		t.Fatalf("resumed %d shards, want all %d checkpointed ones", resumed.Load(), checkpointed.Load())
	}
	b1, _ := json.Marshal(tables1)
	b2, _ := json.Marshal(tables2)
	if string(b1) != string(b2) {
		t.Fatal("resumed tables differ from the original run")
	}
}

// TestHedgedDispatchFirstCompleteWins races a deliberately straggling
// primary against a hedge: the secondary's answer arrives first and
// wins, the campaign never waits out the straggler, and the detached
// audit of the loser finds the two byte-identical.
func TestHedgedDispatchFirstCompleteWins(t *testing.T) {
	slow := shardWorker(t, func() { time.Sleep(600 * time.Millisecond) })
	fast := shardWorker(t, nil)

	hedges := 0
	c, err := New(Options{
		HedgeDelay: 50 * time.Millisecond,
		Observe:    Observe{Hedged: func() { hedges++ }},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(slow.URL)
	c.Register(fast.URL)
	primary, secondary := c.workers[0], c.workers[1]

	spec, err := campaign.ParseSpec([]byte(goldenSpec))
	if err != nil {
		t.Fatal(err)
	}
	shards, err := campaign.PlanShards(spec, 2)
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	r, err := c.dispatchHedged(context.Background(), primary, secondary, shards[0], 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed >= 600*time.Millisecond {
		t.Fatalf("hedged dispatch took %v — it waited out the straggler", elapsed)
	}
	if hedges != 1 {
		t.Fatalf("hedges = %d, want 1", hedges)
	}
	if r == nil || r.Shard.Experiment.ID != shards[0].Experiment.ID {
		t.Fatalf("hedged result = %+v, want shard %s", r, shards[0])
	}
	// Let the straggler finish so the detached audit runs; determinism
	// means the loser must be byte-identical, never a counted mismatch.
	time.Sleep(700 * time.Millisecond)
	if n := c.HedgeMismatches(); n != 0 {
		t.Fatalf("hedge audit counted %d mismatches on a deterministic shard", n)
	}
}

// TestAwaitWorkersBridgesLateRegistration: a coordinator whose pool is
// momentarily empty (the boot-order race after a restart: journaled
// campaigns replay before workers re-heartbeat) waits for the first
// registration instead of failing; with waiting disabled it fails fast.
func TestAwaitWorkersBridgesLateRegistration(t *testing.T) {
	c, err := New(Options{PoolWait: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(200 * time.Millisecond)
		c.Register("http://late:1")
	}()
	t0 := time.Now()
	if err := c.awaitWorkers(context.Background()); err != nil {
		t.Fatalf("awaitWorkers with a late registration: %v", err)
	}
	if time.Since(t0) < 200*time.Millisecond {
		t.Fatal("awaitWorkers returned before any worker registered")
	}

	fail, err := New(Options{PoolWait: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fail.awaitWorkers(context.Background()); err == nil {
		t.Fatal("awaitWorkers with waiting disabled and an empty pool succeeded")
	}
}
