package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLineStateString(t *testing.T) {
	tests := []struct {
		give LineState
		want string
	}{
		{Invalid, "I"}, {Shared, "S"}, {Exclusive, "E"}, {Modified, "M"}, {LineState(9), "?"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestCacheInsertLookup(t *testing.T) {
	c := NewCache(4, 2)
	if st := c.Lookup(5); st != Invalid {
		t.Fatalf("empty cache Lookup = %v", st)
	}
	c.Insert(5, Shared, 1)
	if st := c.Lookup(5); st != Shared {
		t.Fatalf("Lookup after insert = %v, want S", st)
	}
	if c.Occupancy() != 1 {
		t.Errorf("Occupancy = %d, want 1", c.Occupancy())
	}
}

func TestCacheInsertUpgradesInPlace(t *testing.T) {
	c := NewCache(4, 2)
	c.Insert(5, Shared, 1)
	_, _, evicted := c.Insert(5, Modified, 2)
	if evicted {
		t.Error("re-insert must not evict")
	}
	if st := c.Lookup(5); st != Modified {
		t.Errorf("state = %v, want M", st)
	}
	if c.Occupancy() != 1 {
		t.Errorf("Occupancy = %d, want 1", c.Occupancy())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(1, 2) // one set, two ways
	c.Insert(10, Shared, 1)
	c.Insert(20, Shared, 2)
	c.Touch(10, 3) // 10 is now most recent; 20 is LRU
	evAddr, evState, evicted := c.Insert(30, Exclusive, 4)
	if !evicted || evAddr != 20 || evState != Shared {
		t.Fatalf("evicted (%d,%v,%v), want (20,S,true)", evAddr, evState, evicted)
	}
	if c.Lookup(10) == Invalid || c.Lookup(30) == Invalid {
		t.Error("resident lines lost")
	}
	if c.Lookup(20) != Invalid {
		t.Error("evicted line still present")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(4, 2)
	c.Insert(7, Modified, 1)
	if prev := c.Invalidate(7); prev != Modified {
		t.Errorf("Invalidate returned %v, want M", prev)
	}
	if c.Lookup(7) != Invalid {
		t.Error("line still present after invalidate")
	}
	if prev := c.Invalidate(7); prev != Invalid {
		t.Errorf("second Invalidate returned %v, want I", prev)
	}
}

func TestCacheSetStateAbsentNoop(t *testing.T) {
	c := NewCache(4, 2)
	c.SetState(9, Modified) // must not panic or create the line
	if c.Lookup(9) != Invalid {
		t.Error("SetState must not materialise lines")
	}
}

func TestCacheSetConflict(t *testing.T) {
	// Addresses 0, 4, 8 map to the same set in a 4-set cache.
	c := NewCache(4, 2)
	c.Insert(0, Shared, 1)
	c.Insert(4, Shared, 2)
	c.Insert(8, Shared, 3)
	if c.Lookup(0) != Invalid {
		t.Error("LRU line 0 should have been evicted")
	}
	if c.Lookup(4) == Invalid || c.Lookup(8) == Invalid {
		t.Error("recent lines must remain")
	}
}

func TestTableIGeometries(t *testing.T) {
	s, w := L1DGeometry()
	if s*w*32 != 16*1024 {
		t.Errorf("L1D geometry %dx%d x32B = %d, want 16KB", s, w, s*w*32)
	}
	if w != 2 {
		t.Errorf("L1D ways = %d, want 2 (Table I)", w)
	}
	s2, w2 := L2SliceGeometry()
	if s2*w2*64 != 64*1024 {
		t.Errorf("L2 slice geometry %dx%d x64B = %d, want 64KB", s2, w2, s2*w2*64)
	}
}

// Property: occupancy never exceeds capacity and Lookup always agrees with
// the last Insert/Invalidate for an address.
func TestCacheOccupancyBound(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewCache(8, 2)
		for i, op := range ops {
			addr := uint64(op % 64)
			switch op % 3 {
			case 0, 1:
				c.Insert(addr, Shared, uint64(i))
			case 2:
				c.Invalidate(addr)
			}
			if c.Occupancy() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddressStreamDeterministicAndBounded(t *testing.T) {
	a := NewAddressStream(2, 3, 1024, 0.3, rand.New(rand.NewSource(5)))
	b := NewAddressStream(2, 3, 1024, 0.3, rand.New(rand.NewSource(5)))
	for i := 0; i < 200; i++ {
		aAddr, aW := a.Next()
		bAddr, bW := b.Next()
		if aAddr != bAddr || aW != bW {
			t.Fatal("same seed must give same stream")
		}
		if aAddr>>32 != 0 {
			t.Fatalf("address %x exceeds 32 bits", aAddr)
		}
		app := (aAddr >> 24) & 0xFF
		if app != 3 {
			t.Fatalf("app field = %d, want 3", app)
		}
	}
}

func TestAddressStreamSeparatesThreads(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := NewAddressStream(0, 0, 512, 0, rng)
	b := NewAddressStream(0, 1, 512, 0, rand.New(rand.NewSource(9)))
	aPriv := make(map[uint64]bool)
	bPriv := make(map[uint64]bool)
	for i := 0; i < 500; i++ {
		if addr, _ := a.Next(); (addr>>regionBits)&0x3FF != 0 {
			aPriv[addr] = true
		}
		if addr, _ := b.Next(); (addr>>regionBits)&0x3FF != 0 {
			bPriv[addr] = true
		}
	}
	for addr := range aPriv {
		if bPriv[addr] {
			t.Fatalf("private regions overlap at %x", addr)
		}
	}
	if len(aPriv) == 0 || len(bPriv) == 0 {
		t.Fatal("streams generated no private accesses")
	}
}

func TestAddressStreamSharedRegionOverlaps(t *testing.T) {
	a := NewAddressStream(1, 0, 256, 0, rand.New(rand.NewSource(1)))
	b := NewAddressStream(1, 1, 256, 0, rand.New(rand.NewSource(2)))
	shared := func(s *AddressStream) map[uint64]bool {
		m := make(map[uint64]bool)
		for i := 0; i < 2000; i++ {
			if addr, _ := s.Next(); (addr>>regionBits)&0x3FF == 0 {
				m[addr] = true
			}
		}
		return m
	}
	sa, sb := shared(a), shared(b)
	overlap := 0
	for addr := range sa {
		if sb[addr] {
			overlap++
		}
	}
	if overlap == 0 {
		t.Fatal("threads of one app must share lines (drives coherence)")
	}
}

func TestAddressStreamClampsWorkingSet(t *testing.T) {
	s := NewAddressStream(0, 0, 1<<20, 0, rand.New(rand.NewSource(3)))
	if s.lines != 1<<regionBits {
		t.Errorf("lines = %d, want clamp to %d", s.lines, 1<<regionBits)
	}
	z := NewAddressStream(0, 0, 0, 0, rand.New(rand.NewSource(3)))
	if z.lines != 1 {
		t.Errorf("lines = %d, want clamp to 1", z.lines)
	}
}

func TestAddressStreamWriteFraction(t *testing.T) {
	s := NewAddressStream(0, 0, 256, 0.5, rand.New(rand.NewSource(11)))
	writes := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if _, w := s.Next(); w {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("write fraction = %v, want about 0.5", frac)
	}
}
