package mem

import (
	"fmt"

	"repro/internal/noc"
)

// Env is the environment the memory system runs in: a clock, a way to
// schedule future work, and a fabric to inject packets into. The core
// simulator implements it over the event kernel and the NoC; tests may use
// a loopback fake.
type Env interface {
	// Now returns the current cycle.
	Now() uint64
	// Schedule runs fn after delay cycles.
	Schedule(delay uint64, fn func())
	// Inject sends a packet into the NoC.
	Inject(p *noc.Packet) error
}

// Config holds the memory-hierarchy parameters of Table I.
type Config struct {
	// L1Sets and L1Ways give the private L1-D geometry (16 KB, 2-way, 32 B
	// lines → 256×2).
	L1Sets, L1Ways int
	// L2Sets and L2Ways give the per-node shared L2 slice geometry. Table I
	// says 64 KB per slice with 64 B lines; this model keys both levels at
	// the 32 B L1-line granularity, so the slice is 2048 lines → 512×4.
	L2Sets, L2Ways int
	// L2Latency is the L2 slice access latency in cycles (Table I: 6).
	L2Latency uint64
	// MemLatency is the main-memory latency in cycles (Table I: 200).
	MemLatency uint64
	// MaxOutstanding is the per-core MSHR count.
	MaxOutstanding int
}

// DefaultConfig returns the Table I memory configuration.
func DefaultConfig() Config {
	l1s, l1w := L1DGeometry()
	return Config{
		L1Sets: l1s, L1Ways: l1w,
		L2Sets: 512, L2Ways: 4,
		L2Latency:      6,
		MemLatency:     200,
		MaxOutstanding: 8,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.L1Sets <= 0 || c.L1Ways <= 0 || c.L2Sets <= 0 || c.L2Ways <= 0 {
		return fmt.Errorf("mem: nonpositive cache geometry")
	}
	if c.MaxOutstanding <= 0 {
		return fmt.Errorf("mem: need at least one MSHR")
	}
	return nil
}

// request kinds carried in MemReadReq Options[0].
const (
	reqGetS uint32 = 0 // read, shared
	reqGetX uint32 = 1 // write, exclusive
)

type dirState int

const (
	dirUncached dirState = iota
	dirShared
	dirOwned
)

// dirEntry is the full-map directory record for one line at its home node.
type dirEntry struct {
	state   dirState
	sharers map[noc.NodeID]struct{}
	owner   noc.NodeID
}

// homeTxn serialises protocol transactions per line at the home node.
type homeTxn struct {
	kind      uint32 // reqGetS, reqGetX, or wbKind
	requester noc.NodeID
	waitAcks  int
	queue     []queuedReq
}

const wbKind uint32 = 2

type queuedReq struct {
	kind      uint32
	requester noc.NodeID
}

// waiter is one core-side memory operation coalesced into an MSHR.
type waiter struct {
	issuedAt uint64
	write    bool
}

type mshrEntry struct {
	write   bool
	waiters []waiter
}

// NodeStats counts per-node memory events.
type NodeStats struct {
	Reads, Writes     uint64
	L1Hits            uint64
	MissesCompleted   uint64
	MissLatencySum    uint64
	Writebacks        uint64
	InvalidationsRecv uint64
}

// AvgMissLatency returns the mean L1-miss round-trip latency in cycles.
func (s NodeStats) AvgMissLatency() float64 {
	if s.MissesCompleted == 0 {
		return 0
	}
	return float64(s.MissLatencySum) / float64(s.MissesCompleted)
}

type nodeState struct {
	l1    *Cache
	l2    *Cache
	dir   map[uint64]*dirEntry
	busy  map[uint64]*homeTxn
	mshr  map[uint64]*mshrEntry
	stats NodeStats
}

// System is the distributed MESI memory hierarchy. One instance covers the
// whole chip: node i's private L1, L2 slice, and directory partition live in
// nodes[i]. It is not safe for concurrent use.
type System struct {
	mesh  noc.Mesh
	cfg   Config
	env   Env
	nodes []*nodeState
}

// NewSystem builds the hierarchy over mesh.
func NewSystem(mesh noc.Mesh, cfg Config, env Env) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &System{mesh: mesh, cfg: cfg, env: env, nodes: make([]*nodeState, mesh.Nodes())}
	for i := range s.nodes {
		s.nodes[i] = &nodeState{
			l1:   NewCache(cfg.L1Sets, cfg.L1Ways),
			l2:   NewCache(cfg.L2Sets, cfg.L2Ways),
			dir:  make(map[uint64]*dirEntry),
			busy: make(map[uint64]*homeTxn),
			mshr: make(map[uint64]*mshrEntry),
		}
	}
	return s, nil
}

// Home returns the home node of a line (address-interleaved L2).
func (s *System) Home(addr uint64) noc.NodeID {
	return noc.NodeID(addr % uint64(s.mesh.Nodes()))
}

// Stats returns node id's counters.
func (s *System) Stats(id noc.NodeID) NodeStats { return s.nodes[id].stats }

// Outstanding returns the number of in-flight L1 misses at node id.
func (s *System) Outstanding(id noc.NodeID) int { return len(s.nodes[id].mshr) }

// Issue performs one memory operation (line-granularity read or write) at
// node. It returns false when the operation cannot be accepted this cycle
// (MSHRs full, or a write colliding with an in-flight read) — the caller
// models this as a core stall and retries.
func (s *System) Issue(node noc.NodeID, addr uint64, write bool) bool {
	ns := s.nodes[node]
	if write {
		ns.stats.Writes++
	} else {
		ns.stats.Reads++
	}
	st := ns.l1.Lookup(addr)
	switch {
	case st == Modified, st == Exclusive && !write, st == Shared && !write:
		ns.l1.Touch(addr, s.env.Now())
		ns.stats.L1Hits++
		return true
	case st == Exclusive && write:
		// Silent E→M upgrade: the MESI win, no traffic.
		ns.l1.SetState(addr, Modified)
		ns.l1.Touch(addr, s.env.Now())
		ns.stats.L1Hits++
		return true
	}
	// Miss (or S-hit write needing an upgrade): go through the MSHR.
	if e, ok := ns.mshr[addr]; ok {
		if write && !e.write {
			return false // cannot coalesce a write into an in-flight read
		}
		e.waiters = append(e.waiters, waiter{issuedAt: s.env.Now(), write: write})
		return true
	}
	if len(ns.mshr) >= s.cfg.MaxOutstanding {
		if write {
			ns.stats.Writes--
		} else {
			ns.stats.Reads--
		}
		return false
	}
	ns.mshr[addr] = &mshrEntry{write: write, waiters: []waiter{{issuedAt: s.env.Now(), write: write}}}
	kind := reqGetS
	if write {
		kind = reqGetX
	}
	s.send(&noc.Packet{
		Src: node, Dst: s.Home(addr), Type: noc.TypeMemReadReq,
		Payload: uint32(addr), Options: []uint32{kind},
	})
	return true
}

// HandlePacket dispatches a memory-protocol packet delivered at its
// destination node. The caller (the chip model) wires every node's NoC
// handler to this method.
func (s *System) HandlePacket(p *noc.Packet) {
	addr := uint64(p.Payload)
	switch p.Type {
	case noc.TypeMemReadReq:
		s.homeReceive(p.Dst, queuedReq{kind: p.Options[0], requester: p.Src}, addr)
	case noc.TypeMemWriteReq:
		s.homeReceive(p.Dst, queuedReq{kind: wbKind, requester: p.Src}, addr)
	case noc.TypeMemReadReply:
		s.completeMiss(p.Dst, addr, LineState(p.Options[0]))
	case noc.TypeMemWriteAck:
		// Writeback completion: fire-and-forget at the requester.
	case noc.TypeCohInvalidate:
		s.invalidateAt(p.Dst, addr, p.Src)
	case noc.TypeCohAck:
		s.ackAt(p.Dst, addr)
	}
}

func (s *System) send(p *noc.Packet) {
	if err := s.env.Inject(p); err != nil {
		// Inject only fails for malformed packets; that is a simulator bug,
		// not a runtime condition.
		panic(fmt.Sprintf("mem: inject: %v", err))
	}
}

// homeReceive enqueues or starts a home-side transaction for addr.
func (s *System) homeReceive(home noc.NodeID, req queuedReq, addr uint64) {
	ns := s.nodes[home]
	if txn, busy := ns.busy[addr]; busy {
		txn.queue = append(txn.queue, req)
		return
	}
	ns.busy[addr] = &homeTxn{kind: req.kind, requester: req.requester}
	s.env.Schedule(s.cfg.L2Latency, func() { s.homeProcess(home, addr) })
}

// homeProcess runs after the L2 access latency and consults the directory.
func (s *System) homeProcess(home noc.NodeID, addr uint64) {
	ns := s.nodes[home]
	txn := ns.busy[addr]
	entry, ok := ns.dir[addr]
	if !ok {
		entry = &dirEntry{state: dirUncached}
		ns.dir[addr] = entry
	}
	switch txn.kind {
	case wbKind:
		// Owner writes back a Modified line: install in L2, release
		// ownership. A stale writeback (ownership already recalled) still
		// gets an ack.
		if entry.state == dirOwned && entry.owner == txn.requester {
			entry.state = dirUncached
			entry.sharers = nil
		}
		ns.l2.Insert(addr, Modified, s.env.Now())
		s.send(&noc.Packet{Src: home, Dst: txn.requester, Type: noc.TypeMemWriteAck, Payload: uint32(addr)})
		s.homeFinish(home, addr)

	case reqGetS:
		switch entry.state {
		case dirOwned:
			if entry.owner == txn.requester {
				// Requester lost the line silently (L1 eviction of E) and
				// re-reads: grant E again.
				s.homeGrant(home, addr, txn.requester, Exclusive)
				return
			}
			// Recall the line from its owner, then grant exclusively.
			txn.waitAcks = 1
			s.send(&noc.Packet{Src: home, Dst: entry.owner, Type: noc.TypeCohInvalidate, Payload: uint32(addr)})
		case dirShared:
			s.homeGrant(home, addr, txn.requester, Shared)
		default: // dirUncached
			s.fetchIntoL2ThenGrant(home, addr, txn.requester, Exclusive)
		}

	case reqGetX:
		switch entry.state {
		case dirOwned:
			if entry.owner == txn.requester {
				s.homeGrant(home, addr, txn.requester, Modified)
				return
			}
			txn.waitAcks = 1
			s.send(&noc.Packet{Src: home, Dst: entry.owner, Type: noc.TypeCohInvalidate, Payload: uint32(addr)})
		case dirShared:
			acks := 0
			for sh := range entry.sharers {
				if sh == txn.requester {
					continue
				}
				acks++
				s.send(&noc.Packet{Src: home, Dst: sh, Type: noc.TypeCohInvalidate, Payload: uint32(addr)})
			}
			if acks == 0 {
				s.homeGrant(home, addr, txn.requester, Modified)
				return
			}
			txn.waitAcks = acks
		default: // dirUncached
			s.fetchIntoL2ThenGrant(home, addr, txn.requester, Modified)
		}
	}
}

// fetchIntoL2ThenGrant models the L2 lookup for an uncached line: an L2 hit
// grants immediately, a miss pays the main-memory latency and installs the
// line in the slice.
func (s *System) fetchIntoL2ThenGrant(home noc.NodeID, addr uint64, req noc.NodeID, grant LineState) {
	ns := s.nodes[home]
	if ns.l2.Lookup(addr) != Invalid {
		ns.l2.Touch(addr, s.env.Now())
		s.homeGrant(home, addr, req, grant)
		return
	}
	s.env.Schedule(s.cfg.MemLatency, func() {
		ns.l2.Insert(addr, Shared, s.env.Now())
		s.homeGrant(home, addr, req, grant)
	})
}

// homeGrant sends the data reply, updates the directory, and unblocks the
// line.
func (s *System) homeGrant(home noc.NodeID, addr uint64, req noc.NodeID, grant LineState) {
	ns := s.nodes[home]
	entry := ns.dir[addr]
	switch grant {
	case Shared:
		if entry.state != dirShared {
			entry.state = dirShared
			entry.sharers = make(map[noc.NodeID]struct{})
		}
		if entry.sharers == nil {
			entry.sharers = make(map[noc.NodeID]struct{})
		}
		entry.sharers[req] = struct{}{}
	case Exclusive, Modified:
		entry.state = dirOwned
		entry.owner = req
		entry.sharers = nil
	}
	s.send(&noc.Packet{
		Src: home, Dst: req, Type: noc.TypeMemReadReply,
		Payload: uint32(addr), Options: []uint32{uint32(grant)},
	})
	s.homeFinish(home, addr)
}

// homeFinish releases the per-line lock and starts the next queued
// transaction, if any.
func (s *System) homeFinish(home noc.NodeID, addr uint64) {
	ns := s.nodes[home]
	txn := ns.busy[addr]
	if txn == nil {
		return
	}
	if len(txn.queue) == 0 {
		delete(ns.busy, addr)
		return
	}
	next := txn.queue[0]
	rest := txn.queue[1:]
	ns.busy[addr] = &homeTxn{kind: next.kind, requester: next.requester, queue: rest}
	s.env.Schedule(s.cfg.L2Latency, func() { s.homeProcess(home, addr) })
}

// invalidateAt handles a CohInvalidate at a (possibly former) line holder.
func (s *System) invalidateAt(node noc.NodeID, addr uint64, home noc.NodeID) {
	ns := s.nodes[node]
	ns.l1.Invalidate(addr)
	ns.stats.InvalidationsRecv++
	// A Modified line's data rides back with the ack in this model.
	s.send(&noc.Packet{Src: node, Dst: home, Type: noc.TypeCohAck, Payload: uint32(addr)})
}

// ackAt handles a CohAck at the home node.
func (s *System) ackAt(home noc.NodeID, addr uint64) {
	ns := s.nodes[home]
	txn, ok := ns.busy[addr]
	if !ok || txn.waitAcks == 0 {
		return // vacuous ack from a stale sharer
	}
	txn.waitAcks--
	if txn.waitAcks > 0 {
		return
	}
	grant := Modified
	if txn.kind == reqGetS {
		// After a recall the requester is the only holder: grant Exclusive.
		grant = Exclusive
	}
	entry := ns.dir[addr]
	entry.state = dirUncached
	entry.sharers = nil
	s.homeGrant(home, addr, txn.requester, grant)
}

// completeMiss installs the granted line at the requester and retires all
// coalesced waiters.
func (s *System) completeMiss(node noc.NodeID, addr uint64, grant LineState) {
	ns := s.nodes[node]
	e, ok := ns.mshr[addr]
	if !ok {
		return // defensive: duplicate reply
	}
	delete(ns.mshr, addr)
	evAddr, evState, evicted := ns.l1.Insert(addr, grant, s.env.Now())
	if evicted && evState == Modified {
		ns.stats.Writebacks++
		s.send(&noc.Packet{Src: node, Dst: s.Home(evAddr), Type: noc.TypeMemWriteReq, Payload: uint32(evAddr)})
	}
	now := s.env.Now()
	for _, w := range e.waiters {
		ns.stats.MissesCompleted++
		ns.stats.MissLatencySum += now - w.issuedAt
	}
}
