package mem

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/noc"
)

// fakeEnv is a loopback environment: packets are delivered to the memory
// system itself after a fixed flight time, with no NoC in between. It lets
// the protocol be unit-tested in isolation.
type fakeEnv struct {
	now      uint64
	seq      uint64
	events   []fakeEvent
	sys      *System
	netDelay uint64
	sent     []noc.Packet // copies, for assertions
}

type fakeEvent struct {
	at  uint64
	seq uint64
	fn  func()
}

func (e *fakeEnv) Now() uint64 { return e.now }

func (e *fakeEnv) Schedule(delay uint64, fn func()) {
	e.seq++
	e.events = append(e.events, fakeEvent{at: e.now + delay, seq: e.seq, fn: fn})
}

func (e *fakeEnv) Inject(p *noc.Packet) error {
	e.sent = append(e.sent, *p)
	pc := *p
	e.Schedule(e.netDelay, func() { e.sys.HandlePacket(&pc) })
	return nil
}

// run drains the event queue deterministically.
func (e *fakeEnv) run(t *testing.T) {
	t.Helper()
	for guard := 0; len(e.events) > 0; guard++ {
		if guard > 100000 {
			t.Fatal("protocol livelock: event queue never drains")
		}
		sort.Slice(e.events, func(i, j int) bool {
			if e.events[i].at != e.events[j].at {
				return e.events[i].at < e.events[j].at
			}
			return e.events[i].seq < e.events[j].seq
		})
		ev := e.events[0]
		e.events = e.events[1:]
		e.now = ev.at
		ev.fn()
	}
}

func (e *fakeEnv) countSent(t noc.PacketType) int {
	n := 0
	for _, p := range e.sent {
		if p.Type == t {
			n++
		}
	}
	return n
}

func newTestSystem(t *testing.T) (*System, *fakeEnv) {
	t.Helper()
	env := &fakeEnv{netDelay: 10}
	mesh := noc.Mesh{Width: 4, Height: 4}
	sys, err := NewSystem(mesh, DefaultConfig(), env)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	env.sys = sys
	return sys, env
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.L1Sets = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero L1 sets should fail")
	}
	bad = DefaultConfig()
	bad.MaxOutstanding = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MSHRs should fail")
	}
}

func TestColdReadMiss(t *testing.T) {
	sys, env := newTestSystem(t)
	const addr = 100
	if !sys.Issue(2, addr, false) {
		t.Fatal("Issue rejected")
	}
	env.run(t)
	st := sys.Stats(2)
	if st.MissesCompleted != 1 {
		t.Fatalf("misses completed = %d, want 1", st.MissesCompleted)
	}
	// Cold miss: request flight + L2 + memory + reply flight.
	want := 2*env.netDelay + sys.cfg.L2Latency + sys.cfg.MemLatency
	if st.MissLatencySum != want {
		t.Errorf("latency = %d, want %d", st.MissLatencySum, want)
	}
	// Line granted Exclusive (sole reader).
	if got := sys.nodes[2].l1.Lookup(addr); got != Exclusive {
		t.Errorf("L1 state = %v, want E", got)
	}
}

func TestReadHitAfterMiss(t *testing.T) {
	sys, env := newTestSystem(t)
	sys.Issue(2, 100, false)
	env.run(t)
	if !sys.Issue(2, 100, false) {
		t.Fatal("hit rejected")
	}
	st := sys.Stats(2)
	if st.L1Hits != 1 {
		t.Errorf("L1 hits = %d, want 1", st.L1Hits)
	}
	if env.countSent(noc.TypeMemReadReq) != 1 {
		t.Error("hit must not generate traffic")
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	sys, env := newTestSystem(t)
	sys.Issue(2, 100, false) // E grant
	env.run(t)
	before := env.countSent(noc.TypeMemReadReq)
	if !sys.Issue(2, 100, true) {
		t.Fatal("write hit rejected")
	}
	if got := sys.nodes[2].l1.Lookup(100); got != Modified {
		t.Errorf("state = %v, want M after silent upgrade", got)
	}
	if env.countSent(noc.TypeMemReadReq) != before {
		t.Error("silent upgrade must not generate traffic")
	}
}

func TestTwoReadersShareThenWriteInvalidates(t *testing.T) {
	sys, env := newTestSystem(t)
	const addr = 200
	sys.Issue(1, addr, false)
	env.run(t)
	sys.Issue(3, addr, false)
	env.run(t)
	// Node 1 was recalled to give node 3 exclusivity? No: second GetS after
	// an Owned state recalls the owner and grants E to node 3.
	if got := sys.nodes[3].l1.Lookup(addr); got != Exclusive {
		t.Fatalf("node 3 state = %v, want E after recall", got)
	}
	if got := sys.nodes[1].l1.Lookup(addr); got != Invalid {
		t.Fatalf("node 1 state = %v, want I after recall", got)
	}
	// Third reader: now line is Owned by 3; 5 reads → recall again.
	sys.Issue(5, addr, false)
	env.run(t)
	if got := sys.nodes[5].l1.Lookup(addr); got != Exclusive {
		t.Errorf("node 5 state = %v, want E", got)
	}
}

func TestWriteMissGrantsModified(t *testing.T) {
	sys, env := newTestSystem(t)
	sys.Issue(4, 300, true)
	env.run(t)
	if got := sys.nodes[4].l1.Lookup(300); got != Modified {
		t.Errorf("state = %v, want M", got)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	sys, env := newTestSystem(t)
	const addr = 400
	home := sys.Home(addr)
	// Force a Shared directory state: reader A, then the home grants E;
	// to get true sharing we need the dirShared path. Build it: A reads
	// (E), B writes (recall + M), then downgrade: C reads → recall → E.
	// Simplest Shared state: use grant path via two readers after a
	// write? The protocol grants E to a sole reader, so Shared arises only
	// from... homeGrant(Shared) on dirShared. Seed it directly.
	ns := sys.nodes[home]
	ns.dir[addr] = &dirEntry{state: dirShared, sharers: map[noc.NodeID]struct{}{1: {}, 2: {}}}
	sys.nodes[1].l1.Insert(addr, Shared, 0)
	sys.nodes[2].l1.Insert(addr, Shared, 0)

	sys.Issue(3, addr, true) // GetX must invalidate nodes 1 and 2
	env.run(t)
	if got := sys.nodes[3].l1.Lookup(addr); got != Modified {
		t.Errorf("writer state = %v, want M", got)
	}
	if sys.nodes[1].l1.Lookup(addr) != Invalid || sys.nodes[2].l1.Lookup(addr) != Invalid {
		t.Error("sharers must be invalidated")
	}
	if env.countSent(noc.TypeCohInvalidate) != 2 {
		t.Errorf("invalidations sent = %d, want 2", env.countSent(noc.TypeCohInvalidate))
	}
	if sys.Stats(1).InvalidationsRecv != 1 || sys.Stats(2).InvalidationsRecv != 1 {
		t.Error("invalidation counters wrong")
	}
}

func TestSharedReadersStayShared(t *testing.T) {
	sys, env := newTestSystem(t)
	const addr = 480
	home := sys.Home(addr)
	ns := sys.nodes[home]
	ns.dir[addr] = &dirEntry{state: dirShared, sharers: map[noc.NodeID]struct{}{1: {}}}
	sys.nodes[1].l1.Insert(addr, Shared, 0)
	sys.Issue(2, addr, false)
	env.run(t)
	if got := sys.nodes[2].l1.Lookup(addr); got != Shared {
		t.Errorf("second reader state = %v, want S", got)
	}
	if got := sys.nodes[1].l1.Lookup(addr); got != Shared {
		t.Errorf("first reader state = %v, want S (undisturbed)", got)
	}
}

func TestMSHRCoalescing(t *testing.T) {
	sys, env := newTestSystem(t)
	sys.Issue(2, 500, false)
	if !sys.Issue(2, 500, false) {
		t.Fatal("coalesced read rejected")
	}
	env.run(t)
	if env.countSent(noc.TypeMemReadReq) != 1 {
		t.Errorf("requests sent = %d, want 1 (coalesced)", env.countSent(noc.TypeMemReadReq))
	}
	if sys.Stats(2).MissesCompleted != 2 {
		t.Errorf("misses completed = %d, want 2", sys.Stats(2).MissesCompleted)
	}
}

func TestWriteCannotCoalesceIntoRead(t *testing.T) {
	sys, _ := newTestSystem(t)
	sys.Issue(2, 500, false)
	if sys.Issue(2, 500, true) {
		t.Fatal("write must not coalesce into in-flight read")
	}
}

func TestReadCoalescesIntoWrite(t *testing.T) {
	sys, env := newTestSystem(t)
	sys.Issue(2, 500, true)
	if !sys.Issue(2, 500, false) {
		t.Fatal("read should coalesce into in-flight write")
	}
	env.run(t)
	if sys.Stats(2).MissesCompleted != 2 {
		t.Errorf("misses completed = %d, want 2", sys.Stats(2).MissesCompleted)
	}
}

func TestMSHRCapacity(t *testing.T) {
	sys, _ := newTestSystem(t)
	for i := 0; i < sys.cfg.MaxOutstanding; i++ {
		if !sys.Issue(2, uint64(1000+i), false) {
			t.Fatalf("miss %d rejected below capacity", i)
		}
	}
	if sys.Issue(2, 9999, false) {
		t.Fatal("miss beyond MSHR capacity must be rejected")
	}
	if sys.Outstanding(2) != sys.cfg.MaxOutstanding {
		t.Errorf("Outstanding = %d, want %d", sys.Outstanding(2), sys.cfg.MaxOutstanding)
	}
}

func TestWritebackOnModifiedEviction(t *testing.T) {
	sys, env := newTestSystem(t)
	// Fill one L1 set (2 ways) with Modified lines, then one more: the LRU
	// Modified line must be written back.
	l1Sets := uint64(sys.cfg.L1Sets)
	addrs := []uint64{7, 7 + l1Sets, 7 + 2*l1Sets} // same set
	for _, a := range addrs {
		sys.Issue(2, a, true)
		env.run(t)
	}
	if sys.Stats(2).Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", sys.Stats(2).Writebacks)
	}
	if env.countSent(noc.TypeMemWriteReq) != 1 || env.countSent(noc.TypeMemWriteAck) != 1 {
		t.Error("writeback must produce one MemWriteReq and one MemWriteAck")
	}
	// The written-back line's home directory no longer lists node 2.
	home := sys.Home(addrs[0])
	if e := sys.nodes[home].dir[addrs[0]]; e != nil && e.state == dirOwned && e.owner == 2 {
		t.Error("directory still records node 2 as owner after writeback")
	}
}

func TestL2HitAfterWriteback(t *testing.T) {
	sys, env := newTestSystem(t)
	l1Sets := uint64(sys.cfg.L1Sets)
	// Write addr, evict it via two conflicting writes, then re-read: the L2
	// slice holds the line, so no memory latency is paid.
	sys.Issue(2, 7, true)
	env.run(t)
	sys.Issue(2, 7+l1Sets, true)
	env.run(t)
	sys.Issue(2, 7+2*l1Sets, true)
	env.run(t)
	latBefore := sys.Stats(2).MissLatencySum
	sys.Issue(2, 7, false)
	env.run(t)
	lat := sys.Stats(2).MissLatencySum - latBefore
	max := 2*env.netDelay + 2*sys.cfg.L2Latency // no 200-cycle memory trip
	if lat > max {
		t.Errorf("re-read after writeback took %d cycles, want ≤ %d (L2 hit)", lat, max)
	}
}

func TestHomeSerializesConflictingRequests(t *testing.T) {
	sys, env := newTestSystem(t)
	const addr = 600
	// Two different nodes write the same line concurrently: both must
	// complete, and exactly one ends as owner.
	sys.Issue(1, addr, true)
	sys.Issue(2, addr, true)
	env.run(t)
	st1 := sys.nodes[1].l1.Lookup(addr)
	st2 := sys.nodes[2].l1.Lookup(addr)
	owners := 0
	if st1 == Modified {
		owners++
	}
	if st2 == Modified {
		owners++
	}
	if owners != 1 {
		t.Fatalf("states (%v,%v): exactly one node must own the line", st1, st2)
	}
	if sys.Stats(1).MissesCompleted != 1 || sys.Stats(2).MissesCompleted != 1 {
		t.Error("both writers must complete")
	}
}

func TestVacuousAckIgnored(t *testing.T) {
	sys, _ := newTestSystem(t)
	// An unsolicited CohAck for an idle line must not panic or corrupt.
	sys.HandlePacket(&noc.Packet{Src: 1, Dst: 2, Type: noc.TypeCohAck, Payload: 777})
}

func TestDuplicateReplyIgnored(t *testing.T) {
	sys, _ := newTestSystem(t)
	sys.HandlePacket(&noc.Packet{Src: 1, Dst: 2, Type: noc.TypeMemReadReply, Payload: 777, Options: []uint32{uint32(Shared)}})
}

func TestInvalidateAtNonHolderStillAcks(t *testing.T) {
	sys, env := newTestSystem(t)
	sys.HandlePacket(&noc.Packet{Src: 5, Dst: 3, Type: noc.TypeCohInvalidate, Payload: 888})
	if env.countSent(noc.TypeCohAck) != 1 {
		t.Error("stale invalidation must still be acked")
	}
}

func TestAvgMissLatency(t *testing.T) {
	sys, env := newTestSystem(t)
	sys.Issue(2, 100, false)
	env.run(t)
	if sys.Stats(2).AvgMissLatency() <= 0 {
		t.Error("average miss latency must be positive")
	}
	var empty NodeStats
	if empty.AvgMissLatency() != 0 {
		t.Error("empty stats latency must be 0")
	}
}

func TestManyRandomOpsDrain(t *testing.T) {
	// Failure-injection style stress: a burst of random reads/writes from
	// every node over a small hot address pool must always drain with all
	// MSHRs retired — livelock or a lost reply would trip the guard.
	sys, env := newTestSystem(t)
	streams := make([]*AddressStream, 16)
	for i := range streams {
		streams[i] = NewAddressStream(0, i%4, 64, 0.4, envRand(int64(i)))
	}
	for round := 0; round < 50; round++ {
		for n := 0; n < 16; n++ {
			addr, w := streams[n].Next()
			sys.Issue(noc.NodeID(n), addr, w)
		}
		env.run(t)
	}
	for n := 0; n < 16; n++ {
		if sys.Outstanding(noc.NodeID(n)) != 0 {
			t.Fatalf("node %d still has outstanding misses", n)
		}
	}
}

// envRand returns a deterministic rand source for stress tests.
func envRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
