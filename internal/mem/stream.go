package mem

import "math/rand"

// AddressStream generates the synthetic per-thread address trace that
// replaces real benchmark memory traces (see the substitution table in
// DESIGN.md). Each thread works over a private region plus a region shared
// by all threads of its application — the shared fraction is what drives
// MESI coherence traffic between threads. Within a region the stream is
// mostly sequential with occasional random jumps, giving the cache a
// realistic mix of spatial locality and capacity misses.
//
// Addresses are 32-byte line numbers that fit the 32-bit packet payload:
// bits [24..31] identify the application, bits [14..23] the region (0 is
// the shared region, k ≥ 1 thread k−1's private region), bits [0..13] the
// line within the region.
type AddressStream struct {
	rng        *rand.Rand
	shared     uint64 // shared-region base
	private    uint64 // private-region base
	lines      uint64 // region size in lines
	pos        uint64 // sequential cursor
	sharedFrac float64
	seqFrac    float64
	writeFrac  float64
}

const regionBits = 14 // max 16384 lines per region

// NewAddressStream builds the stream for thread threadIdx of application
// appIdx. workingSetLines is clamped to the 14-bit region size; writeFrac
// is the probability that an access is a write.
func NewAddressStream(appIdx, threadIdx, workingSetLines int, writeFrac float64, rng *rand.Rand) *AddressStream {
	lines := uint64(workingSetLines)
	if lines < 1 {
		lines = 1
	}
	if lines > 1<<regionBits {
		lines = 1 << regionBits
	}
	base := uint64(appIdx+1) << 24
	return &AddressStream{
		rng:        rng,
		shared:     base, // region slot 0
		private:    base | uint64(threadIdx+1)<<regionBits,
		lines:      lines,
		sharedFrac: 0.3,
		seqFrac:    0.7,
		writeFrac:  writeFrac,
	}
}

// Next returns the next (line address, isWrite) pair of the trace.
func (s *AddressStream) Next() (addr uint64, write bool) {
	base := s.private
	if s.rng.Float64() < s.sharedFrac {
		base = s.shared
	}
	var off uint64
	if s.rng.Float64() < s.seqFrac {
		s.pos = (s.pos + 1) % s.lines
		off = s.pos
	} else {
		off = uint64(s.rng.Intn(int(s.lines)))
	}
	return base | off, s.rng.Float64() < s.writeFrac
}
