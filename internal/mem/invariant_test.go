package mem

import (
	"math/rand"
	"testing"

	"repro/internal/noc"
)

// checkCoherenceInvariant asserts the MESI single-writer/multi-reader
// property across all L1 caches: for any line, at most one cache holds it
// Exclusive or Modified, and if one does, no other cache holds it at all.
func checkCoherenceInvariant(t *testing.T, sys *System, addrs []uint64) {
	t.Helper()
	for _, addr := range addrs {
		owners := 0
		sharers := 0
		for _, ns := range sys.nodes {
			switch ns.l1.Lookup(addr) {
			case Exclusive, Modified:
				owners++
			case Shared:
				sharers++
			}
		}
		if owners > 1 {
			t.Fatalf("line %d has %d exclusive owners", addr, owners)
		}
		if owners == 1 && sharers > 0 {
			t.Fatalf("line %d has an owner and %d sharers", addr, sharers)
		}
	}
}

// TestCoherenceInvariantUnderRandomOps drives random reads and writes from
// all cores over a small hot set and checks the single-writer invariant
// after every quiesced round. This is the deepest protocol property test:
// any lost invalidation, stale grant, or race in the home serialisation
// shows up here.
func TestCoherenceInvariantUnderRandomOps(t *testing.T) {
	sys, env := newTestSystem(t)
	rng := rand.New(rand.NewSource(21))
	hotSet := make([]uint64, 12)
	for i := range hotSet {
		hotSet[i] = uint64(1000 + i)
	}
	for round := 0; round < 80; round++ {
		for n := 0; n < 16; n++ {
			addr := hotSet[rng.Intn(len(hotSet))]
			sys.Issue(noc.NodeID(n), addr, rng.Float64() < 0.4)
		}
		env.run(t)
		checkCoherenceInvariant(t, sys, hotSet)
	}
}

// TestDirectoryMatchesCaches cross-checks the directory's view against the
// actual L1 contents after a randomised run: a dirOwned entry's owner must
// really hold the line (or have silently evicted it — never a *different*
// node owning it).
func TestDirectoryMatchesCaches(t *testing.T) {
	sys, env := newTestSystem(t)
	rng := rand.New(rand.NewSource(22))
	hotSet := make([]uint64, 8)
	for i := range hotSet {
		hotSet[i] = uint64(2000 + i)
	}
	for round := 0; round < 60; round++ {
		for n := 0; n < 16; n++ {
			addr := hotSet[rng.Intn(len(hotSet))]
			sys.Issue(noc.NodeID(n), addr, rng.Float64() < 0.5)
		}
		env.run(t)
	}
	for _, addr := range hotSet {
		home := sys.Home(addr)
		entry, ok := sys.nodes[home].dir[addr]
		if !ok {
			continue
		}
		if entry.state != dirOwned {
			continue
		}
		for nid, ns := range sys.nodes {
			st := ns.l1.Lookup(addr)
			if (st == Exclusive || st == Modified) && noc.NodeID(nid) != entry.owner {
				t.Fatalf("line %d: directory says node %d owns it, but node %d holds %v",
					addr, entry.owner, nid, st)
			}
		}
	}
}

// TestWriterReadsOwnWrites is the fundamental memory-ordering sanity check:
// a node that wrote a line can always read it afterwards without traffic.
func TestWriterReadsOwnWrites(t *testing.T) {
	sys, env := newTestSystem(t)
	sys.Issue(4, 3000, true)
	env.run(t)
	sent := len(env.sent)
	if !sys.Issue(4, 3000, false) {
		t.Fatal("read-after-write rejected")
	}
	if len(env.sent) != sent {
		t.Fatal("read of owned line generated traffic")
	}
}

// TestPingPongOwnership bounces one line's ownership between two writers
// and verifies that every transfer invalidates the previous owner.
func TestPingPongOwnership(t *testing.T) {
	sys, env := newTestSystem(t)
	const addr = 4000
	writers := []noc.NodeID{2, 9}
	for i := 0; i < 10; i++ {
		w := writers[i%2]
		other := writers[(i+1)%2]
		if !sys.Issue(w, addr, true) {
			t.Fatalf("round %d: write rejected", i)
		}
		env.run(t)
		if got := sys.nodes[w].l1.Lookup(addr); got != Modified {
			t.Fatalf("round %d: writer holds %v, want M", i, got)
		}
		if got := sys.nodes[other].l1.Lookup(addr); got != Invalid {
			t.Fatalf("round %d: previous owner still holds %v", i, got)
		}
	}
	// 9 ownership transfers → at least 9 invalidations on the wire.
	if env.countSent(noc.TypeCohInvalidate) < 9 {
		t.Errorf("invalidations = %d, want ≥ 9", env.countSent(noc.TypeCohInvalidate))
	}
}
