// Package mem implements the shared-memory substrate of Table I: private
// per-tile L1 caches, an address-interleaved shared L2 (one slice per
// node), a MESI directory protocol whose messages travel on the NoC, and a
// flat main-memory model with 200-cycle latency.
//
// Addresses throughout the package are cache-line numbers at L1 (32-byte)
// granularity; the L2 tag store is keyed at 64-byte granularity, matching
// the Table I line sizes.
package mem

// LineState is a MESI cache-line state.
type LineState int

// MESI states. Invalid is deliberately the zero value.
const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

type cacheLine struct {
	tag     uint64
	state   LineState
	lastUse uint64
}

// Cache is a set-associative, LRU-replacement tag store. Only tags and MESI
// states are modelled; data contents never matter to the experiments.
type Cache struct {
	sets  int
	ways  int
	lines []cacheLine // sets × ways, row-major
}

// NewCache builds a cache with the given geometry. sets and ways must be
// positive.
func NewCache(sets, ways int) *Cache {
	if sets <= 0 || ways <= 0 {
		panic("mem: cache geometry must be positive")
	}
	return &Cache{sets: sets, ways: ways, lines: make([]cacheLine, sets*ways)}
}

// L1DGeometry returns the Table I L1-D geometry: 16 KB, 2-way, 32 B lines →
// 256 sets.
func L1DGeometry() (sets, ways int) { return 256, 2 }

// L2SliceGeometry returns the Table I per-node L2 slice geometry: 64 KB,
// modelled 4-way, 64 B lines → 256 sets.
func L2SliceGeometry() (sets, ways int) { return 256, 4 }

func (c *Cache) set(addr uint64) []cacheLine {
	s := int(addr % uint64(c.sets))
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Lookup returns the state of addr, or Invalid if absent.
func (c *Cache) Lookup(addr uint64) LineState {
	for i := range c.set(addr) {
		l := &c.set(addr)[i]
		if l.state != Invalid && l.tag == addr {
			return l.state
		}
	}
	return Invalid
}

// Touch refreshes the LRU stamp of addr if present.
func (c *Cache) Touch(addr uint64, now uint64) {
	set := c.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == addr {
			set[i].lastUse = now
			return
		}
	}
}

// SetState changes the MESI state of a resident line; it is a no-op for an
// absent line.
func (c *Cache) SetState(addr uint64, st LineState) {
	set := c.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == addr {
			set[i].state = st
			return
		}
	}
}

// Insert installs addr with state st, evicting the LRU way if the set is
// full. It returns the evicted line's address and state when an eviction
// happened.
func (c *Cache) Insert(addr uint64, st LineState, now uint64) (evictedAddr uint64, evictedState LineState, evicted bool) {
	set := c.set(addr)
	// Already present: state upgrade in place.
	for i := range set {
		if set[i].state != Invalid && set[i].tag == addr {
			set[i].state = st
			set[i].lastUse = now
			return 0, Invalid, false
		}
	}
	victim := 0
	for i := range set {
		if set[i].state == Invalid {
			victim = i
			evicted = false
			set[victim] = cacheLine{tag: addr, state: st, lastUse: now}
			return 0, Invalid, false
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	evictedAddr, evictedState, evicted = set[victim].tag, set[victim].state, true
	set[victim] = cacheLine{tag: addr, state: st, lastUse: now}
	return evictedAddr, evictedState, evicted
}

// Invalidate removes addr and returns its prior state.
func (c *Cache) Invalidate(addr uint64) LineState {
	set := c.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == addr {
			prev := set[i].state
			set[i] = cacheLine{}
			return prev
		}
	}
	return Invalid
}

// Occupancy returns the number of valid lines, for tests and debugging.
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].state != Invalid {
			n++
		}
	}
	return n
}
