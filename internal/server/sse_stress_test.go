package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSSEFanOutFiveHundredSubscribers is the fan-out stress test: 500
// concurrent SSE subscribers on a single running job — half churning
// (connect, read a little, disconnect mid-stream), half staying until
// the job's DELETE seals the event log. It pins the whole fan-out
// contract at once: every stayer's stream has strictly increasing event
// ids (the shared pre-rendered frames must never interleave or repeat
// within one connection), no subscriber slot survives the drain, the
// goroutine count returns to baseline (no parked writer goroutines),
// and — because the job publishes fewer events than one subscriber
// buffer holds — the drop counter stays at exactly zero. Run under
// -race in CI, it is also the concurrency audit of the single-encode
// publish path.
func TestSSEFanOutFiveHundredSubscribers(t *testing.T) {
	const (
		subscribers = 500
		churners    = 250
		sseBuffer   = 256 // > total events published, so zero drops is exact
	)
	baseline := runtime.NumGoroutine()

	svc, ts := newTestServer(t, Options{Workers: 1, Jobs: 1, QueueDepth: 2, SSEBuffer: sseBuffer})
	// A long simulation (bounded well under the buffer: ≤200 epoch events
	// plus a handful of state events) keeps the job running while the herd
	// attaches; the DELETE below ends it.
	slow := `{"cores":256,"threads":16,"hts":8,"epochs":200,"seed":701,"workers":1}`
	st := postJSON(t, ts.URL+"/v1/sims", slow, http.StatusAccepted)
	j := svc.jobs.lookup(st.ID)
	if j == nil {
		t.Fatal("job not found")
	}

	// A dedicated transport so the test can sever keep-alives before the
	// goroutine accounting at the end.
	transport := &http.Transport{MaxIdleConnsPerHost: subscribers}
	client := &http.Client{Transport: transport}
	url := fmt.Sprintf("%s/v1/jobs/%s/events", ts.URL, st.ID)

	// Stayers read their stream to EOF and report the ids they saw.
	ids := make([][]int, subscribers-churners)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Get(url)
			if err != nil {
				t.Errorf("stayer %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			buf := make([]byte, 4096)
			var stream strings.Builder
			for {
				n, err := resp.Body.Read(buf)
				stream.Write(buf[:n])
				if err != nil {
					break
				}
			}
			for _, line := range strings.Split(stream.String(), "\n") {
				if v, ok := strings.CutPrefix(line, "id: "); ok {
					var n int
					fmt.Sscanf(v, "%d", &n)
					ids[i] = append(ids[i], n)
				}
			}
		}(i)
	}

	// Churners attach, read a few frames, and drop the connection
	// mid-stream — the handler must release their slots promptly.
	var churnWG sync.WaitGroup
	for i := 0; i < churners; i++ {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
			if err != nil {
				return
			}
			resp, err := client.Do(req)
			if err != nil {
				return
			}
			buf := make([]byte, 128)
			resp.Body.Read(buf)
			cancel()
			resp.Body.Close()
		}()
	}
	churnWG.Wait()

	// Let the stayers all attach (the churners' slots may still be
	// draining; waiting for ≥ the stayer count is enough — the exact-zero
	// check after the drain is the real assertion).
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) && j.events.subscribers() < subscribers-churners {
		if st := getJob(t, ts.URL, st.ID); st.State != jobQueued && st.State != jobRunning {
			break // finished early; stayers are replay-only, still valid
		}
		time.Sleep(5 * time.Millisecond)
	}

	// DELETE cancels the job; finishLocked seals the log, which ends
	// every stayer's stream.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close() // 200 or 409 if it just finished — both fine
	}
	waitState(t, ts.URL, st.ID)
	wg.Wait()

	// Every stayer saw a monotonically increasing id sequence and at
	// least the terminal state event.
	for i, seq := range ids {
		if len(seq) == 0 {
			t.Errorf("stayer %d received no events", i)
			continue
		}
		for k := 1; k < len(seq); k++ {
			if seq[k] <= seq[k-1] {
				t.Fatalf("stayer %d ids not strictly increasing at %d: %d after %d", i, k, seq[k], seq[k-1])
			}
		}
	}

	// Zero subscriber-slot residue.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && j.events.subscribers() != 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if n := j.events.subscribers(); n != 0 {
		t.Fatalf("%d subscriber slots leaked after the drain", n)
	}

	// The job published fewer events than one subscriber buffer holds, so
	// drop-oldest can never have fired: the counter must be exactly zero.
	if got := metricsSnapshot(t, ts.URL)["sse_events_dropped"].(float64); got != 0 {
		t.Errorf("sse_events_dropped = %v, want 0 (published < buffer)", got)
	}

	// Zero goroutine residue: sever idle keep-alives, then the count must
	// come back to the pre-test baseline (slack for the test server's own
	// machinery and GC workers).
	transport.CloseIdleConnections()
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+10 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines %d, baseline %d: fan-out left writer goroutines behind", runtime.NumGoroutine(), baseline)
}
