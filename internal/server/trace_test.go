package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// getTrace fetches a job's span tree from GET /v1/jobs/{id}/trace.
func getTrace(t *testing.T, base, id string) (string, *obs.Node) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace = %d", resp.StatusCode)
	}
	var body struct {
		TraceID string    `json:"trace_id"`
		JobID   string    `json:"job_id"`
		Root    *obs.Node `json:"root"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.JobID != id {
		t.Fatalf("trace job_id = %q, want %q", body.JobID, id)
	}
	return body.TraceID, body.Root
}

// countNodes returns how many nodes in the tree carry the given name.
func countNodes(n *obs.Node, name string) int {
	c := 0
	n.Walk(func(m *obs.Node) {
		if m.Name == name {
			c++
		}
	})
	return c
}

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	id    int
	event string
	data  string
}

// readSSEFrames replays a finished job's whole event stream and parses
// every frame (id, event name, data payload).
func readSSEFrames(t *testing.T, base, id string, after int) []sseFrame {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/jobs/%s/events", base, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	if after >= 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(after))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var frames []sseFrame
	for _, raw := range strings.Split(readAll(t, resp.Body), "\n\n") {
		var f sseFrame
		ok := false
		for _, line := range strings.Split(raw, "\n") {
			if v, found := strings.CutPrefix(line, "id: "); found {
				f.id, _ = strconv.Atoi(v)
				ok = true
			} else if v, found := strings.CutPrefix(line, "event: "); found {
				f.event = v
			} else if v, found := strings.CutPrefix(line, "data: "); found {
				f.data = v
			}
		}
		if ok {
			frames = append(frames, f)
		}
	}
	return frames
}

// countEpochFrames counts the stream's epoch events, checking each
// decodes as a well-formed sample.
func countEpochFrames(t *testing.T, frames []sseFrame) int {
	t.Helper()
	n := 0
	for _, f := range frames {
		if f.event != "epoch" {
			continue
		}
		var ev epochEvent
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("epoch frame %q: %v", f.data, err)
		}
		if ev.Experiment == "" {
			t.Fatalf("epoch frame %q has no experiment tag", f.data)
		}
		n++
	}
	return n
}

// requireMonotonicIDs fails unless frame ids strictly increase.
func requireMonotonicIDs(t *testing.T, frames []sseFrame) {
	t.Helper()
	for i := 1; i < len(frames); i++ {
		if frames[i].id <= frames[i-1].id {
			t.Fatalf("SSE ids not strictly monotonic: %d then %d", frames[i-1].id, frames[i].id)
		}
	}
}

// TestTraceEndpointCampaignTree runs a local campaign and checks the
// span tree covers the whole serving path: admission (journal.append,
// cache.lookup, queue.wait), scheduling (gate.wait), and execution
// (run, one experiment span per experiment) — all sealed once the job
// is done.
func TestTraceEndpointCampaignTree(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	st := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if done := waitState(t, ts.URL, st.ID); done.State != jobDone {
		t.Fatalf("job finished %s (%s), want done", done.State, done.Error)
	}

	traceID, root := getTrace(t, ts.URL, st.ID)
	if len(traceID) != 32 {
		t.Fatalf("trace_id = %q, want 32 hex chars", traceID)
	}
	if root.Name != "job" {
		t.Fatalf("root span = %q, want job", root.Name)
	}
	if root.Attrs["job_id"] != st.ID || root.Attrs["state"] != "done" {
		t.Fatalf("root attrs = %v, want job_id=%s state=done", root.Attrs, st.ID)
	}
	for _, name := range []string{"journal.append", "cache.lookup", "queue.wait", "gate.wait", "run", "experiment"} {
		if root.Find(name) == nil {
			t.Errorf("span %q missing from tree", name)
		}
	}
	if got := countNodes(root, "experiment"); got != 2 {
		t.Errorf("experiment spans = %d, want 2 (E1, E3)", got)
	}
	if tier := root.Find("cache.lookup").Attrs["tier"]; tier != "miss" {
		t.Errorf("cache.lookup tier = %q, want miss", tier)
	}
	root.Walk(func(n *obs.Node) {
		if n.InProgress {
			t.Errorf("span %q still in_progress after terminal state", n.Name)
		}
	})
}

// TestTraceDisabled404 checks the opt-out: with DisableTracing the
// trace endpoint answers 404 and the wait histograms stay at zero.
func TestTraceDisabled404(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, DisableTracing: true})
	st := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if done := waitState(t, ts.URL, st.ID); done.State != jobDone {
		t.Fatalf("job finished %s (%s), want done", done.State, done.Error)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace with tracing disabled = %d, want 404", resp.StatusCode)
	}
	svc.metrics.mu.Lock()
	qw, gw := svc.metrics.queueWait.Count(), svc.metrics.gateWait.Count()
	svc.metrics.mu.Unlock()
	if qw != 0 || gw != 0 {
		t.Fatalf("wait histograms observed %d/%d samples with tracing disabled, want 0", qw, gw)
	}
}

// distEpochSpec mixes a simulating experiment (X1 runs real cycle sims,
// so its shard streams per-epoch samples) with an analytic trial space
// (E3), covering both shard shapes. Small sizes keep it fast.
const distEpochSpec = `{"name":"dist-epochs","seed":7,"experiments":[{"id":"X1","params":{"size":64,"threads":8,"epochs":5,"hts":8}},{"id":"E3","params":{"trials":3}}]}`

// localEpochCount runs the spec on a plain single-process server and
// returns the number of epoch events its SSE stream published — the
// deterministic ground truth distributed runs must reproduce exactly
// (more means duplicated samples, fewer means lost ones).
func localEpochCount(t *testing.T, spec string) int {
	t.Helper()
	_, ts := newTestServer(t, Options{Workers: 1})
	st := postJSON(t, ts.URL+"/v1/campaigns", spec, http.StatusAccepted)
	if done := waitState(t, ts.URL, st.ID); done.State != jobDone {
		t.Fatalf("local reference job finished %s (%s), want done", done.State, done.Error)
	}
	return countEpochFrames(t, readSSEFrames(t, ts.URL, st.ID, -1))
}

// TestDistributedTraceAndLiveEpochs is the distributed observability
// gate: a coordinator job's SSE stream carries the per-epoch events
// that happened on remote workers — exactly as many as a local run
// publishes, ids monotonic, none re-delivered on resume — and the
// trace tree stitches the worker-side spans under the coordinator's
// dispatch spans in the same trace.
func TestDistributedTraceAndLiveEpochs(t *testing.T) {
	want := localEpochCount(t, distEpochSpec)
	if want == 0 {
		t.Fatal("reference spec streams no epochs — it cannot gate distributed progress")
	}

	pool := newWorkerPool(t, 2, nil)
	_, coord := newTestServer(t, Options{Workers: 1, WorkerURLs: pool, MaxShards: 4})
	st := postJSON(t, coord.URL+"/v1/campaigns", distEpochSpec, http.StatusAccepted)
	done := waitState(t, coord.URL, st.ID)
	if done.State != jobDone {
		t.Fatalf("distributed job finished %s (%s), want done", done.State, done.Error)
	}
	if done.Epochs != int64(want) {
		t.Fatalf("distributed job streamed %d epochs, local run streamed %d", done.Epochs, want)
	}

	frames := readSSEFrames(t, coord.URL, st.ID, -1)
	requireMonotonicIDs(t, frames)
	if got := countEpochFrames(t, frames); got != want {
		t.Fatalf("SSE carried %d epoch events, want %d", got, want)
	}

	// Resuming mid-stream must deliver exactly the remainder — no worker
	// epoch event is ever re-published under a new id.
	cut := frames[len(frames)/2].id
	resumed := readSSEFrames(t, coord.URL, st.ID, cut)
	if len(resumed) == 0 || resumed[0].id != cut+1 {
		t.Fatalf("resume after id %d started at %v", cut, resumed)
	}
	var before int
	for _, f := range frames {
		if f.id <= cut {
			before++
		}
	}
	if got, want := before+len(resumed), len(frames); got != want {
		t.Fatalf("severed (%d) + resumed (%d) = %d frames, want %d", before, len(resumed), got, want)
	}

	traceID, root := getTrace(t, coord.URL, st.ID)
	if n := countNodes(root, "worker.execute"); n == 0 {
		t.Fatal("no worker.execute span stitched into the coordinator trace")
	}
	if root.Find("shard.dispatch") == nil || root.Find("shard.run") == nil {
		t.Fatal("dispatch/worker execution spans missing from stitched tree")
	}
	// The worker subtree joined the coordinator's trace by id: its root
	// names the dispatch span that carried the traceparent as parent.
	found := false
	root.Walk(func(n *obs.Node) {
		if n.Name != "shard.dispatch" {
			return
		}
		for _, c := range n.Children {
			if c.Name == "worker.execute" && c.ParentID == n.SpanID {
				found = true
			}
		}
	})
	if !found {
		t.Fatalf("no worker.execute child linked to its shard.dispatch parent (trace %s)", traceID)
	}
}

// TestChaosTraceShowsRedispatch arms shard.run:error on one worker of
// two and requires the finished job's trace to show the failure the
// way an operator would debug it: a shard span holding both the failed
// dispatch attempt (error annotation naming the injected fault) and
// the successful redispatch that followed — with the epoch stream
// still exactly-once across the retries.
func TestChaosTraceShowsRedispatch(t *testing.T) {
	want := localEpochCount(t, distEpochSpec)

	pool := newWorkerPool(t, 2, func(i int) *faultinject.Set {
		if i == 0 {
			return mustFaults(t, "shard.run:error")
		}
		return nil
	})
	_, coord := newTestServer(t, Options{Workers: 1, WorkerURLs: pool, MaxShards: 4})
	st := postJSON(t, coord.URL+"/v1/campaigns", distEpochSpec, http.StatusAccepted)
	if done := waitState(t, coord.URL, st.ID); done.State != jobDone {
		t.Fatalf("job finished %s (%s), want done", done.State, done.Error)
	}

	_, root := getTrace(t, coord.URL, st.ID)
	failed, redispatched := false, false
	root.Walk(func(n *obs.Node) {
		if n.Name != "shard" {
			return
		}
		var errored, clean bool
		for _, c := range n.Children {
			if c.Name != "shard.dispatch" {
				continue
			}
			if e := c.Attrs["error"]; e != "" {
				if !strings.Contains(e, "injected") && !strings.Contains(e, "fault") {
					t.Errorf("failed dispatch error %q does not name the injected fault", e)
				}
				errored = true
			} else {
				clean = true
			}
		}
		failed = failed || errored
		redispatched = redispatched || (errored && clean)
	})
	if !failed {
		t.Fatal("no failed dispatch attempt recorded in the trace")
	}
	if !redispatched {
		t.Fatal("no shard span shows failed attempt followed by successful redispatch")
	}

	if got := countEpochFrames(t, readSSEFrames(t, coord.URL, st.ID, -1)); got != want {
		t.Fatalf("redispatch run streamed %d epoch events, want %d (exactly-once violated)", got, want)
	}
}

// TestHedgedEpochsNotDuplicated forces aggressive hedging (two workers
// racing every shard) and requires the epoch stream to stay
// exactly-once: the coordinator's per-shard sequence dedup must drop
// the loser's replayed samples.
func TestHedgedEpochsNotDuplicated(t *testing.T) {
	want := localEpochCount(t, distEpochSpec)

	pool := newWorkerPool(t, 2, nil)
	_, coord := newTestServer(t, Options{Workers: 1, WorkerURLs: pool, MaxShards: 2, HedgeDelay: 1})
	st := postJSON(t, coord.URL+"/v1/campaigns", distEpochSpec, http.StatusAccepted)
	done := waitState(t, coord.URL, st.ID)
	if done.State != jobDone {
		t.Fatalf("job finished %s (%s), want done", done.State, done.Error)
	}
	if got := countEpochFrames(t, readSSEFrames(t, coord.URL, st.ID, -1)); got != want {
		t.Fatalf("hedged run streamed %d epoch events, want %d (dedup failed)", got, want)
	}
}
