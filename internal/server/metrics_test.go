package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// This file pins the two /v1/metrics renderings: a promlint-style
// validator over the Prometheus text exposition (run both against live
// scrapes and against deliberately broken documents, so the validator
// itself is known to have teeth), the frozen key set of the JSON
// rendering, and the tear-freedom of the counter snapshot under
// concurrent load.

// metricNameRE and labelNameRE are the Prometheus identifier grammars.
var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	sampleRE     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (\S+)$`)
)

// lintPrometheus validates a text exposition document the way promlint
// does, returning every problem found (empty means clean). Checks: HELP
// then TYPE precede a family's samples, each exactly once; TYPE is
// counter|gauge|histogram; counter families end in _total; metric and
// label names match the identifier grammar; values parse as floats; no
// duplicate series; histogram bucket counts are non-decreasing in le
// order and the +Inf bucket equals the family's _count sample.
func lintPrometheus(doc string) []string {
	var problems []string
	bad := func(format string, args ...any) { problems = append(problems, fmt.Sprintf(format, args...)) }

	helped := map[string]bool{}
	typed := map[string]string{}
	sampled := map[string]bool{}
	seenSeries := map[string]bool{}
	type bucket struct {
		le    float64
		inf   bool
		count float64
	}
	buckets := map[string][]bucket{}
	counts := map[string]float64{}

	// family resolves a sample name to the metric family it belongs to:
	// histogram samples use the _bucket/_sum/_count suffixes.
	family := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && typed[base] == "histogram" {
				return base
			}
		}
		return name
	}

	for _, line := range strings.Split(doc, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				bad("HELP line %q has no help text", line)
				continue
			}
			if helped[name] {
				bad("duplicate HELP for %s", name)
			}
			helped[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(rest, " ")
			switch kind {
			case "counter", "gauge", "histogram":
			default:
				bad("%s has unknown type %q", name, kind)
			}
			if !helped[name] {
				bad("TYPE for %s precedes its HELP", name)
			}
			if _, dup := typed[name]; dup {
				bad("duplicate TYPE for %s", name)
			}
			if sampled[name] {
				bad("TYPE for %s appears after its samples", name)
			}
			typed[name] = kind
			if kind == "counter" && !strings.HasSuffix(name, "_total") {
				bad("counter %s should have the _total suffix", name)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}

		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			bad("unparseable sample line %q", line)
			continue
		}
		name, labels, value := m[1], m[2], m[3]
		if !metricNameRE.MatchString(name) {
			bad("invalid metric name %q", name)
		}
		fam := family(name)
		if _, ok := typed[fam]; !ok {
			bad("sample %s has no TYPE", name)
		}
		sampled[fam] = true
		val, err := strconv.ParseFloat(value, 64)
		if err != nil {
			bad("sample %s has unparseable value %q", name, value)
		}
		var le string
		var hasLe bool
		for _, pair := range splitLabels(labels) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !labelNameRE.MatchString(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				bad("sample %s has malformed label %q", name, pair)
				continue
			}
			if k == "le" {
				le, hasLe = v[1:len(v)-1], true
			}
		}
		series := name + "{" + labels + "}"
		if seenSeries[series] {
			bad("duplicate series %s", series)
		}
		seenSeries[series] = true

		if typed[fam] == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !hasLe {
					bad("histogram sample %s has no le label", name)
					continue
				}
				b := bucket{count: val}
				if le == "+Inf" {
					b.inf = true
				} else if b.le, err = strconv.ParseFloat(le, 64); err != nil {
					bad("histogram %s has unparseable le %q", fam, le)
					continue
				}
				buckets[fam] = append(buckets[fam], b)
			case strings.HasSuffix(name, "_count"):
				counts[fam] = val
			}
		}
	}

	for fam, bs := range buckets {
		sawInf := false
		for i, b := range bs {
			if i > 0 {
				prev := bs[i-1]
				if prev.inf {
					bad("histogram %s has a bucket after +Inf", fam)
				} else if !b.inf && b.le <= prev.le {
					bad("histogram %s le bounds not increasing at %g", fam, b.le)
				}
				if b.count < prev.count {
					bad("histogram %s bucket counts decrease at le=%g", fam, b.le)
				}
			}
			if b.inf {
				sawInf = true
				if c, ok := counts[fam]; ok && b.count != c {
					bad("histogram %s +Inf bucket %g != _count %g", fam, b.count, c)
				}
			}
		}
		if !sawInf {
			bad("histogram %s has no +Inf bucket", fam)
		}
	}
	for name := range typed {
		if !helped[name] {
			bad("%s has TYPE but no HELP", name)
		}
	}
	sort.Strings(problems)
	return problems
}

// splitLabels splits a label body on commas (no escaped quotes appear in
// this codebase's label values, and the linter's negative cases don't
// need them).
func splitLabels(labels string) []string {
	if labels == "" {
		return nil
	}
	return strings.Split(labels, ",")
}

// scrapePrometheus fetches /v1/metrics?format=prometheus and asserts the
// exposition content type.
func scrapePrometheus(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, promContentType)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPrometheusExpositionPassesLint drives the service through a
// campaign (miss then hit), scrapes the Prometheus rendering, and runs
// the full validator over it, plus spot checks of the families the load
// harness's metric join depends on.
func TestPrometheusExpositionPassesLint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	st := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	waitState(t, ts.URL, st.ID)
	st2 := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	waitState(t, ts.URL, st2.ID)

	doc := scrapePrometheus(t, ts.URL)
	if problems := lintPrometheus(doc); len(problems) > 0 {
		t.Fatalf("live scrape failed lint:\n  %s", strings.Join(problems, "\n  "))
	}
	for _, want := range []string{
		"htserved_jobs_submitted_total 2",
		`htserved_cache_lookups_total{tier="memory"} 1`,
		`htserved_cache_lookups_total{tier="miss"} 1`,
		"htserved_job_duration_seconds_count 2",
		`htserved_job_duration_seconds_bucket{le="+Inf"} 2`,
		"htserved_sse_subscribers 0",
		"htserved_epochs_observed_total ",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// Every family carries the namespace.
	for _, line := range strings.Split(doc, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.HasPrefix(line, promNamespace+"_") {
			t.Errorf("sample outside the %s namespace: %q", promNamespace, line)
		}
	}
}

// TestPrometheusLintCatchesBadDocuments proves the validator has teeth:
// each corrupted document must be flagged with the expected problem.
func TestPrometheusLintCatchesBadDocuments(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of a reported problem
	}{
		{
			name: "counter without _total",
			doc:  "# HELP x_jobs Jobs.\n# TYPE x_jobs counter\nx_jobs 1\n",
			want: "should have the _total suffix",
		},
		{
			name: "sample without TYPE",
			doc:  "x_jobs_total 1\n",
			want: "has no TYPE",
		},
		{
			name: "TYPE without HELP",
			doc:  "# TYPE x_up gauge\nx_up 1\n",
			want: "precedes its HELP",
		},
		{
			name: "unknown type",
			doc:  "# HELP x_s S.\n# TYPE x_s summary\nx_s 1\n",
			want: "unknown type",
		},
		{
			name: "duplicate series",
			doc:  "# HELP x_up U.\n# TYPE x_up gauge\nx_up 1\nx_up 2\n",
			want: "duplicate series",
		},
		{
			name: "unparseable value",
			doc:  "# HELP x_up U.\n# TYPE x_up gauge\nx_up one\n",
			want: "unparseable value",
		},
		{
			name: "histogram buckets decrease",
			doc: "# HELP x_d D.\n# TYPE x_d histogram\n" +
				`x_d_bucket{le="1"} 5` + "\n" + `x_d_bucket{le="2"} 3` + "\n" +
				`x_d_bucket{le="+Inf"} 5` + "\nx_d_sum 4\nx_d_count 5\n",
			want: "bucket counts decrease",
		},
		{
			name: "histogram le not increasing",
			doc: "# HELP x_d D.\n# TYPE x_d histogram\n" +
				`x_d_bucket{le="2"} 1` + "\n" + `x_d_bucket{le="1"} 2` + "\n" +
				`x_d_bucket{le="+Inf"} 2` + "\nx_d_sum 1\nx_d_count 2\n",
			want: "le bounds not increasing",
		},
		{
			name: "histogram missing +Inf",
			doc: "# HELP x_d D.\n# TYPE x_d histogram\n" +
				`x_d_bucket{le="1"} 1` + "\nx_d_sum 1\nx_d_count 1\n",
			want: "no +Inf bucket",
		},
		{
			name: "histogram +Inf disagrees with _count",
			doc: "# HELP x_d D.\n# TYPE x_d histogram\n" +
				`x_d_bucket{le="1"} 1` + "\n" + `x_d_bucket{le="+Inf"} 1` + "\nx_d_sum 1\nx_d_count 2\n",
			want: "+Inf bucket 1 != _count 2",
		},
		{
			name: "malformed label",
			doc:  "# HELP x_up U.\n# TYPE x_up gauge\n" + `x_up{9bad="v"} 1` + "\n",
			want: "malformed label",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			problems := lintPrometheus(tc.doc)
			for _, p := range problems {
				if strings.Contains(p, tc.want) {
					return
				}
			}
			t.Fatalf("lint missed the defect: want a problem containing %q, got %v", tc.want, problems)
		})
	}
}

// TestMetricsJSONKeysUnchanged freezes the JSON rendering's key set: the
// Prometheus format is additive, the expvar-style object other tooling
// scrapes must not gain or lose keys. The durability counters
// (journal_*, shards_checkpointed/resumed, shard_hedges,
// worker_breaker_opens) and then the observability keys (the three
// latency-attribution sample counts and the go_* runtime stats) were
// added here deliberately, with this list updated in the same change —
// growth is allowed only when it is this visible.
func TestMetricsJSONKeysUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	m := metricsSnapshot(t, ts.URL)
	want := []string{
		"cache_corrupt_quarantined", "cache_disk_hits", "cache_hits", "cache_misses",
		"epochs_observed", "epochs_per_sec",
		"gate_wait_seconds_count",
		"go_gc_pause_seconds_total", "go_goroutines", "go_heap_alloc_bytes",
		"jobs_cancelled", "jobs_done", "jobs_failed", "jobs_queued", "jobs_rejected",
		"jobs_running", "jobs_started", "jobs_submitted", "jobs_timed_out",
		"journal_appends", "journal_replayed",
		"panics_recovered", "queue_wait_seconds_count", "requests_shed", "shard_hedges",
		"shard_rtt_seconds_count",
		"shards_checkpointed", "shards_resumed", "single_flight_dedup",
		"sse_events_dropped", "uptime_seconds", "worker_breaker_opens",
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("JSON metrics keys changed:\n got  %v\n want %v", got, want)
	}
}

// TestMetricsUnknownFormatRejected pins the format negotiation: only
// "" (JSON) and "prometheus" are known.
func TestMetricsUnknownFormatRejected(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/metrics?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("format=xml = %d, want 400", resp.StatusCode)
	}
}

// TestMetricsSnapshotInvariantsUnderLoad hammers the service with
// concurrent submissions (misses, cache hits, and single-flight
// duplicates) while scraping continuously, and asserts the cross-counter
// identities in every single scrape — the tear-freedom the one-lock
// snapshot guarantees. Under -race this is also the data-race audit of
// the counter rework.
func TestMetricsSnapshotInvariantsUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Jobs: 2, QueueDepth: 64})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				// Distinct seeds force misses; the repeat of seed 1 exercises
				// the cache-hit and single-flight paths concurrently.
				seed := g*100 + i
				if i%3 == 0 {
					seed = 1
				}
				body := fmt.Sprintf(`{"cores":64,"threads":4,"hts":4,"epochs":4,"seed":%d,"workers":1}`, seed)
				resp, err := http.Post(ts.URL+"/v1/sims", "application/json", strings.NewReader(body))
				if err == nil {
					resp.Body.Close()
				}
			}
		}(g)
	}
	go func() { wg.Wait(); close(stop) }()

	check := func(m map[string]any) {
		f := func(k string) float64 { v, _ := m[k].(float64); return v }
		submitted := f("jobs_submitted")
		tiers := f("cache_hits") + f("cache_disk_hits") + f("cache_misses") + f("single_flight_dedup")
		if submitted != tiers {
			t.Fatalf("torn scrape: jobs_submitted %v != cache-tier sum %v", submitted, tiers)
		}
		if done := f("jobs_done"); done > f("jobs_started")+f("single_flight_dedup") {
			t.Fatalf("torn scrape: jobs_done %v > jobs_started %v + single_flight %v",
				done, f("jobs_started"), f("single_flight_dedup"))
		}
		if f("jobs_timed_out") > f("jobs_failed") {
			t.Fatalf("torn scrape: jobs_timed_out %v > jobs_failed %v", f("jobs_timed_out"), f("jobs_failed"))
		}
		if term := f("jobs_done") + f("jobs_failed") + f("jobs_cancelled"); term > submitted {
			t.Fatalf("torn scrape: %v terminal counts for %v submissions", term, submitted)
		}
	}
	for {
		select {
		case <-stop:
			// Drain to terminal, then the final identity must hold exactly.
			for _, st := range listJobs(t, ts.URL) {
				waitState(t, ts.URL, st.ID)
			}
			m := metricsSnapshot(t, ts.URL)
			check(m)
			if problems := lintPrometheus(scrapePrometheus(t, ts.URL)); len(problems) > 0 {
				t.Fatalf("post-load scrape failed lint:\n  %s", strings.Join(problems, "\n  "))
			}
			return
		default:
			check(metricsSnapshot(t, ts.URL))
		}
	}
}

// listJobs fetches /v1/jobs.
func listJobs(t *testing.T, base string) []jobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Jobs []jobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Jobs
}
