package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/histo"
)

// This file renders a metricsView in the Prometheus text exposition
// format (version 0.0.4): one HELP and one TYPE line per metric family,
// then its samples, in a fixed order so scrapes diff cleanly. The same
// view also feeds the JSON rendering, which keeps the two formats
// consistent within a single scrape; the load harness joins its
// client-side BENCH_SERVE.json numbers against these server-side series
// (see DESIGN.md §10 for the join contract).

// promContentType is the exposition-format content type for 0.0.4.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promNamespace prefixes every exported metric family.
const promNamespace = "htserved"

// writePrometheus renders the view. Family order is fixed: ops dashboards
// and the exposition validator both rely on a deterministic scrape.
func (v metricsView) writePrometheus(w io.Writer) error {
	var b strings.Builder

	gauge := func(name, help string, value float64) {
		fmt.Fprintf(&b, "# HELP %s_%s %s\n# TYPE %s_%s gauge\n%s_%s %s\n",
			promNamespace, name, help, promNamespace, name, promNamespace, name, promFloat(value))
	}
	counter := func(name, help string, value int64) {
		fmt.Fprintf(&b, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %d\n",
			promNamespace, name, help, promNamespace, name, promNamespace, name, value)
	}

	gauge("uptime_seconds", "Seconds since the service started.", v.uptime)

	counter("jobs_submitted_total", "Accepted submissions, cache-served included.", v.jobsSubmitted)
	counter("jobs_rejected_total", "Submissions shed with 429 backpressure.", v.jobsRejected)
	counter("jobs_started_total", "Jobs that entered execution (cache-served submissions and single-flight followers never start).", v.jobsStarted)
	counter("jobs_done_total", "Jobs that reached the done state.", v.jobsDone)
	counter("jobs_failed_total", "Jobs that reached the failed state.", v.jobsFailed)
	counter("jobs_cancelled_total", "Jobs cancelled while queued or running.", v.jobsCancelled)
	counter("jobs_timed_out_total", "Failed jobs whose cause was the --job-timeout deadline (also in jobs_failed_total).", v.jobsTimedOut)

	gauge("queue_depth", "Jobs waiting in the FIFO queue.", float64(v.queued))
	gauge("jobs_running", "Jobs currently executing.", float64(v.running))

	// The cache tiers share one family: tier=memory|disk hits, tier=miss
	// lookups that went to the queue.
	fmt.Fprintf(&b, "# HELP %s_cache_lookups_total Content-addressed cache lookups at submission time, by outcome tier.\n", promNamespace)
	fmt.Fprintf(&b, "# TYPE %s_cache_lookups_total counter\n", promNamespace)
	fmt.Fprintf(&b, "%s_cache_lookups_total{tier=\"memory\"} %d\n", promNamespace, v.cacheHits)
	fmt.Fprintf(&b, "%s_cache_lookups_total{tier=\"disk\"} %d\n", promNamespace, v.cacheDiskHits)
	fmt.Fprintf(&b, "%s_cache_lookups_total{tier=\"miss\"} %d\n", promNamespace, v.cacheMisses)

	counter("cache_corrupt_total", "Disk-tier entries that failed checksum verification and were quarantined.", v.cacheCorrupt)
	counter("single_flight_total", "Submissions coalesced onto an identical in-flight job.", v.singleFlight)
	counter("panics_recovered_total", "Panics contained by the per-job and per-request recovery layers.", v.panicsRecovered)

	counter("sse_events_dropped_total", "Events dropped from slow SSE subscribers' buffers (drop-oldest).", v.sseDropped)
	gauge("sse_subscribers", "Live SSE subscribers across all jobs.", float64(v.subscribers))

	counter("epochs_observed_total", "Per-epoch samples observed across all jobs.", v.epochs)
	gauge("epochs_per_second", "Aggregate simulation throughput since start.", v.epochsPerSec)

	// Distributed execution: worker-side shard executions, coordinator-side
	// retries and shard-cache hits, plus per-worker dispatch and per-tenant
	// shed breakdowns. The scalar families are always present (dashboards
	// and the CI smoke alert on them existing at zero); the labeled ones
	// emit a sample per key seen so far, sorted for deterministic scrapes.
	counter("shards_executed_total", "Campaign shards executed by this process as a worker.", v.shardsExecuted)
	counter("shard_retries_total", "Shard dispatch attempts redispatched after a worker failure or timeout.", v.shardRetries)
	counter("shard_cache_hits_total", "Shards answered from the coordinator's content-addressed shard cache.", v.shardCacheHits)
	fmt.Fprintf(&b, "# HELP %s_shards_dispatched_total Shard dispatch attempts, by worker URL.\n", promNamespace)
	fmt.Fprintf(&b, "# TYPE %s_shards_dispatched_total counter\n", promNamespace)
	for _, worker := range sortedKeys(v.shardsDispatched) {
		fmt.Fprintf(&b, "%s_shards_dispatched_total{worker=%q} %d\n", promNamespace, worker, v.shardsDispatched[worker])
	}
	fmt.Fprintf(&b, "# HELP %s_tenant_shed_total Submissions shed by a per-tenant quota (also in jobs_rejected_total), by tenant.\n", promNamespace)
	fmt.Fprintf(&b, "# TYPE %s_tenant_shed_total counter\n", promNamespace)
	for _, tenant := range sortedKeys(v.shedByTenant) {
		fmt.Fprintf(&b, "%s_tenant_shed_total{tenant=%q} %d\n", promNamespace, tenant, v.shedByTenant[tenant])
	}

	// Durability & lifecycle: the write-ahead job journal, the shard
	// checkpoint store, straggler hedging, and the per-worker circuit
	// breaker. Always present (the crash-recovery CI smoke asserts on
	// journal_replayed_total and shards_resumed_total directly).
	counter("journal_appends_total", "Accepted submissions made durable in the write-ahead journal.", v.journalAppends)
	counter("journal_replayed_total", "Journaled jobs re-enqueued at boot after a crash or restart.", v.journalReplayed)
	counter("shards_checkpointed_total", "Completed shard results spilled to the checkpoint store.", v.shardsCheckpointed)
	counter("shards_resumed_total", "Shards answered from the checkpoint store instead of recomputed.", v.shardsResumed)
	counter("shard_hedges_total", "Speculative straggler redispatches (first byte-complete result wins).", v.shardHedges)
	counter("worker_breaker_opens_total", "Per-worker circuit-breaker closed-to-open transitions.", v.breakerOpens)

	// Latency histograms: the end-to-end job duration plus its span-fed
	// decomposition (queue residency, gate wait, per-shard round trips).
	// All share the job-duration bucket layout so attribution percentiles
	// line up across families.
	renderHistogram(&b, "job_duration_seconds", "Job submission-to-terminal wall time.", v.jobDuration)
	renderHistogram(&b, "queue_wait_seconds", "Job residency in the admission queue before dispatch.", v.queueWait)
	renderHistogram(&b, "gate_wait_seconds", "Job wait on the execution concurrency gate.", v.gateWait)
	renderHistogram(&b, "shard_rtt_seconds", "Coordinator-side shard dispatch round-trip time (successful attempts).", v.shardRTT)

	// Go runtime health, sampled at scrape time.
	gauge("go_goroutines", "Live goroutines at scrape time.", float64(v.goroutines))
	gauge("go_heap_alloc_bytes", "Heap bytes in use at scrape time.", float64(v.heapAlloc))
	fmt.Fprintf(&b, "# HELP %s_go_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n# TYPE %s_go_gc_pause_seconds_total counter\n%s_go_gc_pause_seconds_total %s\n",
		promNamespace, promNamespace, promNamespace, promFloat(v.gcPauseTotal))

	// Fault-injection tallies appear only when the registry is armed,
	// exactly like the JSON rendering.
	if v.faults != nil {
		points := make([]string, 0, len(v.faults))
		for p := range v.faults {
			points = append(points, p)
		}
		sort.Strings(points)
		fmt.Fprintf(&b, "# HELP %s_faults_injected_total Faults fired by the injection registry, by point.\n", promNamespace)
		fmt.Fprintf(&b, "# TYPE %s_faults_injected_total counter\n", promNamespace)
		for _, p := range points {
			fmt.Fprintf(&b, "%s_faults_injected_total{point=%q} %d\n", promNamespace, p, v.faults[p])
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// renderHistogram writes one histogram family in exposition order:
// cumulative buckets, the +Inf catch-all, then _sum and _count.
func renderHistogram(b *strings.Builder, name, help string, h *histo.Histogram) {
	fmt.Fprintf(b, "# HELP %s_%s %s\n", promNamespace, name, help)
	fmt.Fprintf(b, "# TYPE %s_%s histogram\n", promNamespace, name)
	for _, bk := range h.Cumulative() {
		fmt.Fprintf(b, "%s_%s_bucket{le=\"%s\"} %d\n", promNamespace, name, promFloat(bk.Le), bk.Count)
	}
	fmt.Fprintf(b, "%s_%s_bucket{le=\"+Inf\"} %d\n", promNamespace, name, h.Count())
	fmt.Fprintf(b, "%s_%s_sum %s\n", promNamespace, name, promFloat(h.Sum()))
	fmt.Fprintf(b, "%s_%s_count %d\n", promNamespace, name, h.Count())
}

// promFloat formats a sample value or le bound the way Prometheus does:
// shortest round-trip representation.
func promFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// sortedKeys returns a map's keys sorted, for deterministic label order.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
