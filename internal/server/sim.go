package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/results"
	"repro/pkg/htsim"
)

// simRequest is the POST /v1/sims body: one attacked-vs-baseline campaign,
// mirroring the htsim CLI's flags. Every plugin field names a registered
// plugin (GET /v1/plugins enumerates them); zero values take the Table I
// defaults listed per field. The configuration is assembled through
// htsim.BuildConfig, so a request is validated by exactly the code path
// that will run it.
type simRequest struct {
	// Cores is the system size (default 256).
	Cores int `json:"cores,omitempty"`
	// Topology, Routing, Allocator, and Defense name registered plugins
	// (defaults: mesh, per-topology routing, fair, none).
	Topology  string `json:"topology,omitempty"`
	Routing   string `json:"routing,omitempty"`
	Allocator string `json:"allocator,omitempty"`
	Defense   string `json:"defense,omitempty"`
	// GM places the global manager: "center" (default) or "corner".
	GM string `json:"gm,omitempty"`
	// Mix and Threads shape the workload (defaults mix-1, 64).
	Mix     string `json:"mix,omitempty"`
	Threads int    `json:"threads,omitempty"`
	// HTs and Placement size and place the Trojan fleet (defaults 16,
	// random); Infection, when set, overrides them with the smallest
	// placement predicted to reach the target rate.
	HTs       int      `json:"hts,omitempty"`
	Placement string   `json:"placement,omitempty"`
	Infection *float64 `json:"infection,omitempty"`
	// Strategy and Mode select the Trojan payload and attack class
	// (defaults scale, false-data).
	Strategy string `json:"strategy,omitempty"`
	Mode     string `json:"mode,omitempty"`
	// Epochs and EpochCycles shape the budgeting timeline (defaults 10,
	// 1000).
	Epochs      int    `json:"epochs,omitempty"`
	EpochCycles uint64 `json:"epoch_cycles,omitempty"`
	// Mem enables cache-hierarchy background traffic (default off).
	Mem bool `json:"mem,omitempty"`
	// Seed drives every random stream (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Workers caps the run's worker pool (default one per CPU).
	Workers int `json:"workers,omitempty"`
}

// parseSimRequest decodes and validates a request body, normalising
// defaults so equivalent submissions share one cache key.
func parseSimRequest(body []byte) (*simRequest, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req simRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("parse sim request: %w", err)
	}
	req.normalize()
	if err := req.validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// normalize fills every result-relevant defaulted field in place, so the
// cache keys of result-equivalent submissions coincide ({} and
// {"threads":64,"cores":256} hash identically). The literals mirror the
// Table I defaults of core.DefaultConfig and the htsim CLI flags.
// Routing stays empty when unset: "" means "auto by topology" and is
// itself the canonical form.
func (r *simRequest) normalize() {
	if r.Cores == 0 {
		r.Cores = 256
	}
	if r.Topology == "" {
		r.Topology = "mesh"
	}
	if r.Allocator == "" {
		r.Allocator = "fair"
	}
	if r.Defense == "" {
		r.Defense = "none"
	}
	if r.Mix == "" {
		r.Mix = "mix-1"
	}
	if r.Threads == 0 {
		r.Threads = 64
	}
	if r.HTs == 0 && r.Infection == nil {
		r.HTs = 16
	}
	if r.Placement == "" {
		r.Placement = "random"
	}
	if r.Strategy == "" {
		r.Strategy = "scale"
	}
	if r.Mode == "" {
		r.Mode = "false-data"
	}
	if r.GM == "" {
		r.GM = "center"
	}
	if r.Epochs == 0 {
		r.Epochs = 10
	}
	if r.EpochCycles == 0 {
		r.EpochCycles = 1000
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
}

// cachePayload is the request as hashed for the content-addressed cache:
// the worker count is zeroed because results are bit-identical for every
// pool size (the determinism contract), so it must never split the cache.
func (r *simRequest) cachePayload() simRequest {
	p := *r
	p.Workers = 0
	return p
}

// options translates the request into SDK options.
func (r *simRequest) options(obs htsim.Observer) []htsim.Option {
	opts := []htsim.Option{
		htsim.WithMemTraffic(r.Mem),
		htsim.WithSeed(r.Seed),
		htsim.WithWorkers(r.Workers),
		htsim.WithGMPlacement(r.GM),
	}
	if r.Cores != 0 {
		opts = append(opts, htsim.WithCores(r.Cores))
	}
	if r.Topology != "" {
		opts = append(opts, htsim.WithTopology(r.Topology))
	}
	if r.Routing != "" {
		opts = append(opts, htsim.WithRouting(r.Routing))
	}
	if r.Allocator != "" {
		opts = append(opts, htsim.WithAllocator(r.Allocator))
	}
	if r.Defense != "" {
		opts = append(opts, htsim.WithDefense(r.Defense))
	}
	if r.Epochs != 0 {
		opts = append(opts, htsim.WithEpochs(r.Epochs))
	}
	if r.EpochCycles != 0 {
		opts = append(opts, htsim.WithEpochCycles(r.EpochCycles))
	}
	if obs != nil {
		opts = append(opts, htsim.WithObserver(obs))
	}
	return opts
}

// validate resolves every named plugin and builds the configuration once,
// so a bad request fails at submission time with the registry's canonical
// error instead of failing later inside the queue.
func (r *simRequest) validate() error {
	if r.Infection != nil && (*r.Infection < 0 || *r.Infection >= 1) {
		return fmt.Errorf("target infection %g outside [0, 1)", *r.Infection)
	}
	if r.Threads < 0 || r.HTs < 0 || r.Workers < 0 {
		return fmt.Errorf("negative parameter")
	}
	if _, err := htsim.BuildConfig(r.options(nil)...); err != nil {
		return err
	}
	if _, err := htsim.MixScenario(r.Mix, r.Threads); err != nil {
		return err
	}
	if _, err := htsim.Strategy(r.Strategy); err != nil {
		return err
	}
	if _, err := htsim.AttackMode(r.Mode); err != nil {
		return err
	}
	return nil
}

// run executes the request: an attacked run and its clean baseline under
// identical seeds, compared into the standard campaign report table.
// Registered observers stream the attacked run's epochs. serverWorkers is
// the service's per-job worker budget, applied when the request names no
// pool size of its own — results are identical either way.
func (r *simRequest) run(ctx context.Context, serverWorkers int, epoch func(core.EpochSample)) (results.Table, error) {
	var obs htsim.Observer
	if epoch != nil {
		obs = htsim.ObserverFunc(epoch)
	}
	opts := r.options(obs)
	if r.Workers == 0 && serverWorkers != 0 {
		// Later options win: the server budget overrides the request's
		// defaulted pool size, never an explicit one.
		opts = append(opts, htsim.WithWorkers(serverWorkers))
	}
	sim, err := htsim.New(opts...)
	if err != nil {
		return nil, err
	}
	sc, err := htsim.MixScenario(r.Mix, r.Threads)
	if err != nil {
		return nil, err
	}
	if sc.Strategy, err = htsim.Strategy(r.Strategy); err != nil {
		return nil, err
	}
	if sc.Mode, err = htsim.AttackMode(r.Mode); err != nil {
		return nil, err
	}
	switch {
	case r.Infection != nil:
		p, _ := sim.TrojansForInfection(*r.Infection)
		sc.Trojans = p
	case r.HTs > 0:
		p, err := sim.Trojans(r.Placement, r.HTs, r.Seed)
		if err != nil {
			return nil, err
		}
		sc.Trojans = p
	}
	attacked, baseline, err := sim.RunPair(ctx, sc)
	if err != nil {
		return nil, err
	}
	cmp, err := htsim.Compare(attacked, baseline)
	if err != nil {
		return nil, err
	}
	return core.CampaignTableFor(sim.Config(), attacked, cmp), nil
}
