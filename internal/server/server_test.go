package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
)

// testSpec mirrors the golden campaign of internal/campaign: cheap enough
// for the suite, covering a static table and an analytic experiment.
const testSpec = `{"name":"golden","seed":1,"experiments":[{"id":"E1","params":{"size":64}},{"id":"E3","params":{"trials":3}}]}`

// newTestServer starts a service over httptest and tears it down with the
// test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// postJSON submits a body and decodes the job status it returns.
func postJSON(t *testing.T, url, body string, wantStatus int) jobStatus {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d; body: %s", url, resp.StatusCode, wantStatus, b)
	}
	var st jobStatus
	if wantStatus == http.StatusAccepted {
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("decode job status: %v; body: %s", err, b)
		}
	}
	return st
}

// getJob fetches one job's status.
func getJob(t *testing.T, base, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the job reaches a terminal state and returns it.
func waitState(t *testing.T, base, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getJob(t, base, id)
		switch st.State {
		case jobDone, jobFailed, jobCancelled:
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return jobStatus{}
}

// fetch returns one artifact's bytes.
func fetch(t *testing.T, base, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/artifacts/%s", base, id, name))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET artifact %s = %d; body: %s", name, resp.StatusCode, b)
	}
	return b
}

// TestCampaignEndToEndMatchesCLIArtifacts is the acceptance gate: a spec
// POSTed to the service produces artifacts byte-identical to the files
// `htcampaign run` writes for the same spec, and a second identical POST
// is served from the cache without re-simulation.
func TestCampaignEndToEndMatchesCLIArtifacts(t *testing.T) {
	// The CLI path: campaign.Run into a directory.
	spec, err := campaign.ParseSpec([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, _, err := campaign.Run(spec, dir, 1); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Options{Workers: 1})
	st := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	done := waitState(t, ts.URL, st.ID)
	if done.State != jobDone {
		t.Fatalf("job finished %s (%s), want done", done.State, done.Error)
	}
	if done.Cache != "" {
		t.Fatalf("first submission served from cache %q, want a real run", done.Cache)
	}
	for _, name := range []string{"e1.json", "e1.csv", "e3.json", "e3.csv"} {
		want, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		got := fetch(t, ts.URL, st.ID, name)
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs between service and htcampaign run:\nservice:\n%s\ncli:\n%s", name, got, want)
		}
	}
	// The text rendering serves through the same path.
	if txt := fetch(t, ts.URL, st.ID, "e1.txt"); !bytes.Contains(txt, []byte("Table I system configuration")) {
		t.Errorf("e1.txt missing title: %s", txt)
	}

	// Second identical submission: instant cache hit, identical bytes.
	st2 := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if st2.State != jobDone || st2.Cache != "memory" {
		t.Fatalf("second submission state %s cache %q, want done from memory", st2.State, st2.Cache)
	}
	if got, want := fetch(t, ts.URL, st2.ID, "e3.csv"), fetch(t, ts.URL, st.ID, "e3.csv"); !bytes.Equal(got, want) {
		t.Error("cached artifact differs from the original")
	}

	var metrics map[string]any
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if hits := metrics["cache_hits"].(float64); hits != 1 {
		t.Errorf("cache_hits = %v, want 1", hits)
	}
	if done := metrics["jobs_done"].(float64); done != 1 {
		t.Errorf("jobs_done = %v, want 1 (the cache hit must not re-run)", done)
	}
}

// TestSimJobStreamsMonotonicEpochs submits a single-sim job and asserts
// the SSE stream delivers strictly increasing epoch samples and a
// terminal done event.
func TestSimJobStreamsMonotonicEpochs(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	body := `{"cores":64,"threads":4,"hts":4,"epochs":6,"seed":7,"workers":1}`
	st := postJSON(t, ts.URL+"/v1/sims", body, http.StatusAccepted)

	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events", ts.URL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var epochs []int
	final := ""
	sc := bufio.NewScanner(resp.Body)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "":
			switch event {
			case "epoch":
				var ev epochEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad epoch payload %q: %v", data, err)
				}
				epochs = append(epochs, ev.Epoch)
			case "state":
				var ev stateEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad state payload %q: %v", data, err)
				}
				final = string(ev.State)
			}
		}
	}
	if final != "done" {
		t.Fatalf("final streamed state %q, want done", final)
	}
	if len(epochs) != 6 {
		t.Fatalf("streamed %d epoch samples (%v), want 6 (attacked run only)", len(epochs), epochs)
	}
	for i, e := range epochs {
		if e != i {
			t.Fatalf("epoch samples not monotonically increasing: %v", epochs)
		}
	}
	if st := waitState(t, ts.URL, st.ID); st.Epochs != 6 {
		t.Errorf("job counted %d epochs, want 6", st.Epochs)
	}
}

// TestQueueBackpressureAndCancellation fills the single-job runner and
// the one-deep queue, expects 429 on the next submission, then cancels
// both jobs through DELETE.
func TestQueueBackpressureAndCancellation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Jobs: 1, QueueDepth: 1})
	// Cycle-simulated sims long enough to still be running while the
	// queue fills behind them (cancellation below ends them early).
	slow := `{"cores":256,"threads":16,"hts":8,"epochs":200,"seed":%d,"workers":1}`
	first := postJSON(t, ts.URL+"/v1/sims", fmt.Sprintf(slow, 101), http.StatusAccepted)
	second := postJSON(t, ts.URL+"/v1/sims", fmt.Sprintf(slow, 102), http.StatusAccepted)
	// Give the dispatcher a moment to pop the first job off the queue,
	// then fill the freed slot so the next submission overflows.
	deadline := time.Now().Add(10 * time.Second)
	var third jobStatus
	submitted := false
	seed := 103
	for time.Now().Before(deadline) && !submitted {
		seed++
		resp, err := http.Post(ts.URL+"/v1/sims", "application/json",
			strings.NewReader(fmt.Sprintf(slow, seed)))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			submitted = true
		case http.StatusAccepted:
			// The queue had room (dispatcher drained it); this job now
			// occupies it — the next loop iteration must get 429.
			if err := json.Unmarshal(b, &third); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("POST = %d; body: %s", resp.StatusCode, b)
		}
	}
	if !submitted {
		t.Fatal("queue never reported backpressure")
	}

	ids := []string{first.ID, second.ID}
	if third.ID != "" {
		ids = append(ids, third.ID)
	}
	for _, id := range ids {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("DELETE %s = %d", id, resp.StatusCode)
		}
	}
	for _, id := range ids {
		if st := waitState(t, ts.URL, id); st.State != jobCancelled {
			t.Errorf("job %s finished %s, want cancelled", id, st.State)
		}
	}
	// Cancelling a finished job conflicts.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+first.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("DELETE finished job = %d, want 409", resp.StatusCode)
	}
}

// TestDiskSpillSurvivesEvictionAndRestart configures a one-entry memory
// cache with a disk tier: after eviction (and after a fresh server over
// the same directory), an identical submission is a disk hit served
// byte-identically.
func TestDiskSpillSurvivesEvictionAndRestart(t *testing.T) {
	cacheDir := t.TempDir()
	opts := Options{Workers: 1, CacheEntries: 1, CacheDir: cacheDir}
	_, ts := newTestServer(t, opts)

	st := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if done := waitState(t, ts.URL, st.ID); done.State != jobDone {
		t.Fatalf("job finished %s (%s)", done.State, done.Error)
	}
	want := fetch(t, ts.URL, st.ID, "e3.csv")

	// Evict the entry with a different campaign.
	other := `{"name":"other","seed":2,"experiments":[{"id":"E2"}]}`
	st2 := postJSON(t, ts.URL+"/v1/campaigns", other, http.StatusAccepted)
	if done := waitState(t, ts.URL, st2.ID); done.State != jobDone {
		t.Fatalf("evicting job finished %s (%s)", done.State, done.Error)
	}

	st3 := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if st3.State != jobDone || st3.Cache != "disk" {
		t.Fatalf("post-eviction submission state %s cache %q, want done from disk", st3.State, st3.Cache)
	}
	if got := fetch(t, ts.URL, st3.ID, "e3.csv"); !bytes.Equal(got, want) {
		t.Error("disk-tier artifact differs from the original")
	}

	// A fresh server over the same directory still hits the disk tier.
	_, ts2 := newTestServer(t, opts)
	st4 := postJSON(t, ts2.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if st4.State != jobDone || st4.Cache != "disk" {
		t.Fatalf("post-restart submission state %s cache %q, want done from disk", st4.State, st4.Cache)
	}
	if got := fetch(t, ts2.URL, st4.ID, "e3.csv"); !bytes.Equal(got, want) {
		t.Error("post-restart artifact differs from the original")
	}
}

// TestSubmissionValidation rejects malformed bodies with 400 and the
// registry's canonical unknown-name error.
func TestSubmissionValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		url, body, want string
	}{
		{"/v1/campaigns", `{"name":"x","experiments":[{"id":"E99"}]}`, "unknown ID"},
		{"/v1/campaigns", `{"nope":1}`, "unknown field"},
		{"/v1/sims", `{"allocator":"nope"}`, "unknown allocator"},
		{"/v1/sims", `{"bogus":true}`, "unknown field"},
		{"/v1/sims", `{"infection":1.5}`, "outside [0, 1)"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+c.url, "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %s = %d, want 400", c.url, c.body, resp.StatusCode)
		}
		if !strings.Contains(string(b), c.want) {
			t.Errorf("POST %s %s error %q does not mention %q", c.url, c.body, b, c.want)
		}
	}
}

// TestPluginsHealthzMetrics sanity-checks the discovery and observability
// endpoints.
func TestPluginsHealthzMetrics(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	var plugins struct {
		Axes []struct {
			Axis    string   `json:"axis"`
			Plugins []string `json:"plugins"`
		} `json:"axes"`
	}
	resp, err := http.Get(ts.URL + "/v1/plugins")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&plugins); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(plugins.Axes) < 5 {
		t.Errorf("plugins listed %d axes, want the full registry set", len(plugins.Axes))
	}
	found := false
	for _, a := range plugins.Axes {
		if a.Axis == "allocator" && len(a.Plugins) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("allocator axis missing from /v1/plugins")
	}

	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(b, []byte(`"ok"`)) {
		t.Errorf("healthz = %d %s", resp.StatusCode, b)
	}

	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, key := range []string{"jobs_submitted", "cache_hits", "epochs_observed", "epochs_per_sec", "uptime_seconds"} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
}

// TestCloseSealsQueuedJobs shuts the service down with work still queued:
// every job must reach a terminal state and every SSE stream must end, so
// graceful shutdown can never hang on a watcher of a never-started job.
func TestCloseSealsQueuedJobs(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, Jobs: 1, QueueDepth: 4})
	slow := `{"cores":256,"threads":16,"hts":8,"epochs":200,"seed":%d,"workers":1}`
	running := postJSON(t, ts.URL+"/v1/sims", fmt.Sprintf(slow, 201), http.StatusAccepted)
	queued := postJSON(t, ts.URL+"/v1/sims", fmt.Sprintf(slow, 202), http.StatusAccepted)

	// A watcher on the queued job must unblock when the service closes.
	sseDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events", ts.URL, queued.ID))
		if err != nil {
			sseDone <- err
			return
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		sseDone <- err
	}()
	time.Sleep(50 * time.Millisecond)

	svc.Close()
	select {
	case err := <-sseDone:
		if err != nil {
			t.Fatalf("SSE watcher ended with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SSE watcher still blocked after Close")
	}
	for _, id := range []string{running.ID, queued.ID} {
		st := getJob(t, ts.URL, id)
		if st.State != jobCancelled {
			t.Errorf("job %s state %s after Close, want cancelled", id, st.State)
		}
	}
}

// TestSimCacheKeyNormalisation pins the content-address contract: a bare
// request, one spelling out the documented defaults, and one differing
// only in worker count all share a key; a result-relevant change splits
// it.
func TestSimCacheKeyNormalisation(t *testing.T) {
	key := func(body string) string {
		t.Helper()
		req, err := parseSimRequest([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		return cacheKeyFor("sim", req.cachePayload())
	}
	base := key(`{}`)
	if got := key(`{"cores":256,"threads":64,"hts":16,"epochs":10,"seed":1,"allocator":"fair","topology":"mesh"}`); got != base {
		t.Error("spelled-out defaults do not share the bare request's cache key")
	}
	if got := key(`{"workers":3}`); got != base {
		t.Error("worker count split the cache key (results are identical for any pool size)")
	}
	if got := key(`{"seed":2}`); got == base {
		t.Error("a different seed must not share the cache key")
	}
}
