package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// This file covers the worker-lifecycle HTTP surface and the degraded-
// health contract: a 503 from /v1/healthz always carries a Retry-After
// hint, registration doubles as a heartbeat (idempotent, fault-
// injectable), and DELETE /v1/workers/{id} is the graceful-drain path.

// TestHealthzDegradedSetsRetryAfter pins the backoff hint on the
// degraded health probe: a saturated service answers 503 with live=true
// and a positive integer Retry-After, so orchestrators and clients know
// when to come back instead of hammering or restarting it. The pure
// liveness probe stays 200 with no hint.
func TestHealthzDegradedSetsRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers:    1,
		Jobs:       1,
		QueueDepth: 1,
		Faults:     mustFaults(t, "job.run:latency:delay=60s"),
	})
	// Saturate: one running (wedged), one in the dispatcher's hand, one
	// filling the queue proper.
	st := postJSON(t, ts.URL+"/v1/sims", `{"cores":16,"threads":4,"hts":1,"epochs":4,"seed":1,"workers":1}`, http.StatusAccepted)
	waitRunning(t, ts.URL, st.ID)
	postJSON(t, ts.URL+"/v1/sims", `{"cores":16,"threads":4,"hts":1,"epochs":4,"seed":2,"workers":1}`, http.StatusAccepted)
	time.Sleep(100 * time.Millisecond)
	postJSON(t, ts.URL+"/v1/sims", `{"cores":16,"threads":4,"hts":1,"epochs":4,"seed":3,"workers":1}`, http.StatusAccepted)

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated healthz = %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("degraded 503 Retry-After = %q, want a positive integer of seconds", ra)
	}
	var body struct {
		Live   bool   `json:"live"`
		Ready  bool   `json:"ready"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Live || body.Ready || body.Status != "degraded" {
		t.Fatalf("degraded body = %+v, want live=true ready=false status=degraded", body)
	}

	// The liveness probe never degrades and never hints.
	live, err := http.Get(ts.URL + "/v1/healthz?probe=live")
	if err != nil {
		t.Fatal(err)
	}
	defer live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Fatalf("liveness probe = %d, want 200", live.StatusCode)
	}
	if h := live.Header.Get("Retry-After"); h != "" {
		t.Fatalf("liveness probe carries Retry-After %q, want none", h)
	}
}

// TestWorkerRegisterHeartbeatDeregister drives the full pool-membership
// lifecycle over HTTP: register (learning the stable id), re-register
// idempotently (the heartbeat), then DELETE the id (the graceful-drain
// exit). A second DELETE answers 404 — drain loops treat that as
// success, the pool already forgot us.
func TestWorkerRegisterHeartbeatDeregister(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Coordinator: true})
	register := func() (string, bool, int) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/workers", "application/json", strings.NewReader(`{"url":"http://w1:8081"}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var reply struct {
			ID      string   `json:"id"`
			Added   bool     `json:"added"`
			Workers []string `json:"workers"`
		}
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
				t.Fatal(err)
			}
		}
		return reply.ID, reply.Added, resp.StatusCode
	}

	id, added, code := register()
	if code != http.StatusOK || !added || id == "" {
		t.Fatalf("first registration = (%q, %v, %d), want a fresh id, added, 200", id, added, code)
	}
	id2, added2, code2 := register()
	if code2 != http.StatusOK || added2 || id2 != id {
		t.Fatalf("heartbeat re-registration = (%q, %v, %d), want same id, not added, 200", id2, added2, code2)
	}

	del := func() int {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/workers/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(); code != http.StatusOK {
		t.Fatalf("deregistration = %d, want 200", code)
	}
	if code := del(); code != http.StatusNotFound {
		t.Fatalf("repeated deregistration = %d, want 404 (pool already forgot us)", code)
	}
}

// TestWorkerHeartbeatFault exercises the worker.heartbeat fault point: a
// coordinator that accepts connections but cannot update its pool
// answers 500, which drives the worker's registration backoff; the next
// heartbeat, with the fault spent, succeeds.
func TestWorkerHeartbeatFault(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers:     1,
		Coordinator: true,
		Faults:      mustFaults(t, "worker.heartbeat:error:times=1"),
	})
	post := func() int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/workers", "application/json", strings.NewReader(`{"url":"http://w1:8081"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(); code != http.StatusInternalServerError {
		t.Fatalf("heartbeat under fault = %d, want 500", code)
	}
	if code := post(); code != http.StatusOK {
		t.Fatalf("heartbeat after fault spent = %d, want 200", code)
	}
}
