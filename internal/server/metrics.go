package server

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/histo"
)

// counters are the service's metrics: monotonically increasing counters
// plus the job-duration histogram, snapshotted by GET /v1/metrics as a
// flat JSON object (the original expvar-style rendering) or as Prometheus
// text exposition (?format=prometheus). Gauges (queue depth, running
// jobs, live SSE subscribers) are computed from the job table at scrape
// time rather than counted here.
//
// Every counter with a cross-counter invariant lives under one mutex, and
// a scrape reads them all in a single lock acquisition — so a scrape can
// never observe a torn view in which, say, a job's jobs_done increment is
// visible while its jobs_started increment is not. Related increments
// (jobs_failed + jobs_timed_out; jobs_submitted + its cache-tier
// breakdown) are likewise applied together in one acquisition, keeping
// these identities exact in every snapshot:
//
//	jobs_submitted == cache_hits + cache_disk_hits + single_flight_dedup + cache_misses
//	jobs_done + jobs_failed + jobs_cancelled counted per terminal job, started-before-terminal
//
// Only the two hot-path streams stay lock-free atomics: epochs (bumped
// once per simulated epoch sample — a mutex there would serialize the
// simulation workers) and SSE drop events (bumped inside the event log's
// own critical section). Each is a single independent counter with no
// invariant against the rest.
type counters struct {
	// start anchors the uptime and the epochs/sec rate.
	start time.Time

	mu sync.Mutex
	// jobsSubmitted counts accepted submissions (cache hits included);
	// jobsRejected counts submissions shed with 429 backpressure.
	jobsSubmitted, jobsRejected int64
	// jobsStarted/Done/Failed/Cancelled count job state transitions;
	// jobsTimedOut counts the failed jobs whose cause was the --job-timeout
	// deadline (also counted in jobsFailed). Single-flight followers and
	// cache-served submissions terminate without a jobsStarted increment;
	// their completions are accounted by singleFlight and the cache
	// counters respectively.
	jobsStarted, jobsDone, jobsFailed, jobsCancelled, jobsTimedOut int64
	// cacheHits/cacheDiskHits/cacheMisses count content-addressed lookups
	// at submission time (a disk hit is not also a memory hit);
	// cacheCorrupt counts disk-tier entries that failed checksum
	// verification and were quarantined for recomputation.
	cacheHits, cacheDiskHits, cacheMisses, cacheCorrupt int64
	// singleFlight counts submissions coalesced onto an identical
	// in-flight job instead of re-simulating (stampede protection).
	singleFlight int64
	// panicsRecovered counts panics contained by the per-job and
	// per-request recovery layers — each one failed a single job or
	// request, never the dispatcher.
	panicsRecovered int64
	// Distributed-execution counters (Prometheus exposition only — these
	// predate the durability work and stayed out of the JSON object).
	// shardsExecuted counts shards this process ran as a worker;
	// shardRetries counts coordinator redispatches after a failed
	// attempt; shardCacheHits counts shards answered from the
	// coordinator's content-addressed shard cache; shardsDispatched
	// breaks dispatch attempts down by worker URL; shedByTenant breaks
	// quota rejections (also counted in jobsRejected) down by tenant.
	shardsExecuted, shardRetries, shardCacheHits int64
	shardsDispatched                             map[string]int64
	shedByTenant                                 map[string]int64
	// Durability & lifecycle counters (both expositions — the JSON key
	// set grew deliberately here, and the frozen-set test grew with it).
	// journalAppends counts accepted submissions made durable in the
	// write-ahead journal; journalReplayed counts jobs re-enqueued from
	// it at boot. shardsCheckpointed counts shard results spilled to the
	// checkpoint store; shardsResumed counts shards answered from it
	// instead of recomputed. shardHedges counts speculative straggler
	// redispatches; breakerOpens counts per-worker circuit-breaker
	// closed→open transitions.
	journalAppends, journalReplayed   int64
	shardsCheckpointed, shardsResumed int64
	shardHedges, breakerOpens         int64
	// jobDuration observes every job's submission-to-terminal wall time in
	// seconds, cache-served jobs included (they land in the lowest
	// buckets — the histogram is exactly the server-side half of the
	// latency join with the load harness's client-side numbers).
	jobDuration *histo.Histogram
	// queueWait/gateWait/shardRTT decompose where a job's latency goes:
	// time parked in the admission queue, time blocked on the concurrency
	// gate, and per-shard dispatch round trips (coordinator side). All
	// three are fed from the span tree's timings, so the trace endpoint
	// and the histograms can never tell different stories.
	queueWait, gateWait, shardRTT *histo.Histogram

	// sseDropped counts events dropped from slow subscribers' buffers
	// (drop-oldest policy; the ids in the stream reveal each gap).
	sseDropped atomic.Int64
	// epochs counts every EpochSample observed across all jobs — the
	// service's aggregate simulation throughput.
	epochs atomic.Int64
}

// jobDurationBuckets is the Prometheus-side histogram layout: factor-2
// buckets from 1ms to ≈131s. Coarser than the harness's 2^¼ layout but
// cheap to scrape; both are log-bucketed so percentiles line up.
func jobDurationBuckets() *histo.Histogram { return histo.Exponential(0.001, 2, 18) }

// newCounters returns zeroed counters anchored at now.
func newCounters() *counters {
	return &counters{
		start:       time.Now(),
		jobDuration: jobDurationBuckets(),
		queueWait:   jobDurationBuckets(),
		gateWait:    jobDurationBuckets(),
		shardRTT:    jobDurationBuckets(),
	}
}

// observeQueueWait records one job's admission-queue residency.
func (c *counters) observeQueueWait(d time.Duration) {
	c.mu.Lock()
	c.queueWait.Observe(d.Seconds())
	c.mu.Unlock()
}

// observeGateWait records one job's concurrency-gate wait.
func (c *counters) observeGateWait(d time.Duration) {
	c.mu.Lock()
	c.gateWait.Observe(d.Seconds())
	c.mu.Unlock()
}

// observeShardRTT records one shard dispatch round trip (success only —
// failures are already counted by the retry/breaker counters).
func (c *counters) observeShardRTT(d time.Duration) {
	c.mu.Lock()
	c.shardRTT.Observe(d.Seconds())
	c.mu.Unlock()
}

// inc bumps one or more counters in a single lock acquisition, so
// related counters (a failure and its timeout attribution, a submission
// and its cache-tier classification) move atomically together.
func (c *counters) inc(fields ...*int64) {
	c.mu.Lock()
	for _, f := range fields {
		*f++
	}
	c.mu.Unlock()
}

// observeJobDuration records one job's submission-to-terminal wall time.
func (c *counters) observeJobDuration(d time.Duration) {
	c.mu.Lock()
	c.jobDuration.Observe(d.Seconds())
	c.mu.Unlock()
}

// shardDispatched counts one shard dispatch attempt to a worker.
func (c *counters) shardDispatched(worker string) {
	c.mu.Lock()
	if c.shardsDispatched == nil {
		c.shardsDispatched = make(map[string]int64)
	}
	c.shardsDispatched[worker]++
	c.mu.Unlock()
}

// incTenantShed counts one submission shed by a tenant quota: the
// per-tenant breakdown and the aggregate jobsRejected move together.
func (c *counters) incTenantShed(tenant string) {
	c.mu.Lock()
	if c.shedByTenant == nil {
		c.shedByTenant = make(map[string]int64)
	}
	c.shedByTenant[tenant]++
	c.jobsRejected++
	c.mu.Unlock()
}

// metricsView is one atomic snapshot of every counter plus the
// scrape-time gauges and fault tallies. Both renderings — the JSON object
// and the Prometheus text exposition — are produced from the same view,
// so the two formats can never disagree about a scrape.
type metricsView struct {
	uptime                                                         float64
	jobsSubmitted, jobsRejected                                    int64
	jobsStarted, jobsDone, jobsFailed, jobsCancelled, jobsTimedOut int64
	cacheHits, cacheDiskHits, cacheMisses, cacheCorrupt            int64
	singleFlight                                                   int64
	panicsRecovered                                                int64
	shardsExecuted, shardRetries, shardCacheHits                   int64
	journalAppends, journalReplayed                                int64
	shardsCheckpointed, shardsResumed, shardHedges, breakerOpens   int64
	shardsDispatched, shedByTenant                                 map[string]int64
	jobDuration                                                    *histo.Histogram
	queueWait, gateWait, shardRTT                                  *histo.Histogram
	sseDropped, epochs                                             int64
	epochsPerSec                                                   float64
	queued, running, subscribers                                   int
	faults                                                         map[string]int64
	// Go runtime health, sampled at scrape time (both expositions):
	// live goroutines, heap in use, and cumulative GC pause time.
	goroutines   int
	heapAlloc    uint64
	gcPauseTotal float64
}

// view snapshots the counters in one lock acquisition. The gauges are
// sampled by the caller (they live in the job table, under its own
// locks); the histogram is cloned so rendering happens outside the lock.
func (c *counters) view(queued, running, subscribers int, faults map[string]int64) metricsView {
	uptime := time.Since(c.start).Seconds()
	c.mu.Lock()
	v := metricsView{
		uptime:             uptime,
		jobsSubmitted:      c.jobsSubmitted,
		jobsRejected:       c.jobsRejected,
		jobsStarted:        c.jobsStarted,
		jobsDone:           c.jobsDone,
		jobsFailed:         c.jobsFailed,
		jobsCancelled:      c.jobsCancelled,
		jobsTimedOut:       c.jobsTimedOut,
		cacheHits:          c.cacheHits,
		cacheDiskHits:      c.cacheDiskHits,
		cacheMisses:        c.cacheMisses,
		cacheCorrupt:       c.cacheCorrupt,
		singleFlight:       c.singleFlight,
		panicsRecovered:    c.panicsRecovered,
		shardsExecuted:     c.shardsExecuted,
		shardRetries:       c.shardRetries,
		shardCacheHits:     c.shardCacheHits,
		journalAppends:     c.journalAppends,
		journalReplayed:    c.journalReplayed,
		shardsCheckpointed: c.shardsCheckpointed,
		shardsResumed:      c.shardsResumed,
		shardHedges:        c.shardHedges,
		breakerOpens:       c.breakerOpens,
		jobDuration:        c.jobDuration.Clone(),
		queueWait:          c.queueWait.Clone(),
		gateWait:           c.gateWait.Clone(),
		shardRTT:           c.shardRTT.Clone(),
	}
	if len(c.shardsDispatched) > 0 {
		v.shardsDispatched = make(map[string]int64, len(c.shardsDispatched))
		for k, n := range c.shardsDispatched {
			v.shardsDispatched[k] = n
		}
	}
	if len(c.shedByTenant) > 0 {
		v.shedByTenant = make(map[string]int64, len(c.shedByTenant))
		for k, n := range c.shedByTenant {
			v.shedByTenant[k] = n
		}
	}
	c.mu.Unlock()
	v.sseDropped = c.sseDropped.Load()
	v.epochs = c.epochs.Load()
	if uptime > 0 {
		v.epochsPerSec = float64(v.epochs) / uptime
	}
	v.queued, v.running, v.subscribers = queued, running, subscribers
	v.faults = faults
	v.goroutines = runtime.NumGoroutine()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	v.heapAlloc = ms.HeapAlloc
	v.gcPauseTotal = float64(ms.PauseTotalNs) / 1e9
	return v
}

// json renders the view as the /v1/metrics payload — the original
// expvar-style flat object. The key set is frozen by test: the
// durability counters (journal_*, shards_checkpointed/resumed,
// shard_hedges, worker_breaker_opens) were a deliberate, test-updating
// addition; the histogram and the subscriber gauge remain
// Prometheus-only.
func (v metricsView) json() map[string]any {
	m := map[string]any{
		"uptime_seconds":            v.uptime,
		"jobs_submitted":            v.jobsSubmitted,
		"jobs_rejected":             v.jobsRejected,
		"requests_shed":             v.jobsRejected,
		"jobs_queued":               v.queued,
		"jobs_running":              v.running,
		"jobs_started":              v.jobsStarted,
		"jobs_done":                 v.jobsDone,
		"jobs_failed":               v.jobsFailed,
		"jobs_cancelled":            v.jobsCancelled,
		"jobs_timed_out":            v.jobsTimedOut,
		"cache_hits":                v.cacheHits,
		"cache_disk_hits":           v.cacheDiskHits,
		"cache_misses":              v.cacheMisses,
		"cache_corrupt_quarantined": v.cacheCorrupt,
		"single_flight_dedup":       v.singleFlight,
		"panics_recovered":          v.panicsRecovered,
		"sse_events_dropped":        v.sseDropped,
		"epochs_observed":           v.epochs,
		"epochs_per_sec":            v.epochsPerSec,
		"journal_appends":           v.journalAppends,
		"journal_replayed":          v.journalReplayed,
		"shards_checkpointed":       v.shardsCheckpointed,
		"shards_resumed":            v.shardsResumed,
		"shard_hedges":              v.shardHedges,
		"worker_breaker_opens":      v.breakerOpens,
		// Latency-attribution sample counts (the full bucket layouts stay
		// Prometheus-only, like job_duration_seconds) and Go runtime
		// health — another deliberate, frozen-set-test-updating growth of
		// the JSON key set.
		"queue_wait_seconds_count":  int64(v.queueWait.Count()),
		"gate_wait_seconds_count":   int64(v.gateWait.Count()),
		"shard_rtt_seconds_count":   int64(v.shardRTT.Count()),
		"go_goroutines":             v.goroutines,
		"go_heap_alloc_bytes":       v.heapAlloc,
		"go_gc_pause_seconds_total": v.gcPauseTotal,
	}
	if v.faults != nil {
		var total int64
		for _, n := range v.faults {
			total += n
		}
		m["faults_injected"] = total
		m["faults_by_point"] = v.faults
	}
	return m
}
