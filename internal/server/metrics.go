package server

import (
	"sync/atomic"
	"time"
)

// counters are the service's expvar-style metrics: monotonically
// increasing atomic counters snapshotted as a flat JSON object by
// GET /v1/metrics. Gauges (queue depth, running jobs) are computed from
// the job table at snapshot time rather than counted here.
type counters struct {
	// start anchors the uptime and the epochs/sec rate.
	start time.Time
	// jobsSubmitted counts accepted submissions (cache hits included);
	// jobsRejected counts submissions shed with 429 backpressure.
	jobsSubmitted, jobsRejected atomic.Int64
	// jobsStarted/Done/Failed/Cancelled count job state transitions;
	// jobsTimedOut counts the failed jobs whose cause was the --job-timeout
	// deadline (also counted in jobsFailed).
	jobsStarted, jobsDone, jobsFailed, jobsCancelled, jobsTimedOut atomic.Int64
	// cacheHits/cacheDiskHits/cacheMisses count content-addressed lookups
	// at submission time (a disk hit is not also a memory hit);
	// cacheCorrupt counts disk-tier entries that failed checksum
	// verification and were quarantined for recomputation.
	cacheHits, cacheDiskHits, cacheMisses, cacheCorrupt atomic.Int64
	// singleFlight counts submissions coalesced onto an identical
	// in-flight job instead of re-simulating (stampede protection).
	singleFlight atomic.Int64
	// panicsRecovered counts panics contained by the per-job and
	// per-request recovery layers — each one failed a single job or
	// request, never the dispatcher.
	panicsRecovered atomic.Int64
	// sseDropped counts events dropped from slow subscribers' buffers
	// (drop-oldest policy; the ids in the stream reveal each gap).
	sseDropped atomic.Int64
	// epochs counts every EpochSample observed across all jobs — the
	// service's aggregate simulation throughput.
	epochs atomic.Int64
}

// newCounters returns zeroed counters anchored at now.
func newCounters() *counters { return &counters{start: time.Now()} }

// snapshot renders the counters plus the given gauges as the /v1/metrics
// payload. faults is the fault-injection registry's per-point fire
// count (nil when injection is off — the key is then omitted).
func (c *counters) snapshot(queued, running int, faults map[string]int64) map[string]any {
	uptime := time.Since(c.start).Seconds()
	epochs := c.epochs.Load()
	perSec := 0.0
	if uptime > 0 {
		perSec = float64(epochs) / uptime
	}
	m := map[string]any{
		"uptime_seconds":            uptime,
		"jobs_submitted":            c.jobsSubmitted.Load(),
		"jobs_rejected":             c.jobsRejected.Load(),
		"requests_shed":             c.jobsRejected.Load(),
		"jobs_queued":               queued,
		"jobs_running":              running,
		"jobs_started":              c.jobsStarted.Load(),
		"jobs_done":                 c.jobsDone.Load(),
		"jobs_failed":               c.jobsFailed.Load(),
		"jobs_cancelled":            c.jobsCancelled.Load(),
		"jobs_timed_out":            c.jobsTimedOut.Load(),
		"cache_hits":                c.cacheHits.Load(),
		"cache_disk_hits":           c.cacheDiskHits.Load(),
		"cache_misses":              c.cacheMisses.Load(),
		"cache_corrupt_quarantined": c.cacheCorrupt.Load(),
		"single_flight_dedup":       c.singleFlight.Load(),
		"panics_recovered":          c.panicsRecovered.Load(),
		"sse_events_dropped":        c.sseDropped.Load(),
		"epochs_observed":           epochs,
		"epochs_per_sec":            perSec,
	}
	if faults != nil {
		var total int64
		for _, n := range faults {
			total += n
		}
		m["faults_injected"] = total
		m["faults_by_point"] = faults
	}
	return m
}
