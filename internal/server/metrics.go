package server

import (
	"sync/atomic"
	"time"
)

// counters are the service's expvar-style metrics: monotonically
// increasing atomic counters snapshotted as a flat JSON object by
// GET /v1/metrics. Gauges (queue depth, running jobs) are computed from
// the job table at snapshot time rather than counted here.
type counters struct {
	// start anchors the uptime and the epochs/sec rate.
	start time.Time
	// jobsSubmitted counts accepted submissions (cache hits included);
	// jobsRejected counts submissions refused with 429 backpressure.
	jobsSubmitted, jobsRejected atomic.Int64
	// jobsStarted/Done/Failed/Cancelled count job state transitions.
	jobsStarted, jobsDone, jobsFailed, jobsCancelled atomic.Int64
	// cacheHits/cacheDiskHits/cacheMisses count content-addressed lookups
	// at submission time (a disk hit is not also a memory hit).
	cacheHits, cacheDiskHits, cacheMisses atomic.Int64
	// epochs counts every EpochSample observed across all jobs — the
	// service's aggregate simulation throughput.
	epochs atomic.Int64
}

// newCounters returns zeroed counters anchored at now.
func newCounters() *counters { return &counters{start: time.Now()} }

// snapshot renders the counters plus the given gauges as the /v1/metrics
// payload.
func (c *counters) snapshot(queued, running int) map[string]any {
	uptime := time.Since(c.start).Seconds()
	epochs := c.epochs.Load()
	perSec := 0.0
	if uptime > 0 {
		perSec = float64(epochs) / uptime
	}
	return map[string]any{
		"uptime_seconds":  uptime,
		"jobs_submitted":  c.jobsSubmitted.Load(),
		"jobs_rejected":   c.jobsRejected.Load(),
		"jobs_queued":     queued,
		"jobs_running":    running,
		"jobs_started":    c.jobsStarted.Load(),
		"jobs_done":       c.jobsDone.Load(),
		"jobs_failed":     c.jobsFailed.Load(),
		"jobs_cancelled":  c.jobsCancelled.Load(),
		"cache_hits":      c.cacheHits.Load(),
		"cache_disk_hits": c.cacheDiskHits.Load(),
		"cache_misses":    c.cacheMisses.Load(),
		"epochs_observed": epochs,
		"epochs_per_sec":  perSec,
	}
}
