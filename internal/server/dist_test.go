package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// distSpec exercises every shard shape in one campaign: E1 is atomic
// (whole-table shard), E3 is an infection-curve trial space, E5 a
// distribution-comparison trial space.
const distSpec = `{"name":"dist","seed":7,"experiments":[{"id":"E1","params":{"size":64}},{"id":"E3","params":{"trials":3}},{"id":"E5","params":{"sizes":[16,64],"trials":2}}]}`

// distArtifacts are the files byte-compared between local and
// distributed runs.
var distArtifacts = []string{"e1.json", "e1.csv", "e3.json", "e3.csv", "e5.json", "e5.csv"}

// newWorkerPool boots n plain htserved instances (every instance is a
// capable shard worker) and returns their base URLs. faultsFor may arm a
// specific worker's fault registry (nil = none).
func newWorkerPool(t *testing.T, n int, faultsFor func(i int) *faultinject.Set) []string {
	t.Helper()
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		opts := Options{Workers: 1}
		if faultsFor != nil {
			opts.Faults = faultsFor(i)
		}
		_, ts := newTestServer(t, opts)
		urls[i] = ts.URL
	}
	return urls
}

// runCampaignArtifacts POSTs a spec, waits for the terminal state, and
// returns every requested artifact keyed by name.
func runCampaignArtifacts(t *testing.T, base, spec string, names []string) map[string][]byte {
	t.Helper()
	st := postJSON(t, base+"/v1/campaigns", spec, http.StatusAccepted)
	done := waitState(t, base, st.ID)
	if done.State != jobDone {
		t.Fatalf("distributed campaign %s: %s", done.State, done.Error)
	}
	out := make(map[string][]byte, len(names))
	for _, name := range names {
		out[name] = fetch(t, base, st.ID, name)
	}
	return out
}

// TestDistributedCampaignByteIdentity is the distributed acceptance
// gate: the same spec run through a coordinator — for several worker
// counts and shard partitions — produces artifacts byte-identical to a
// single-process run.
func TestDistributedCampaignByteIdentity(t *testing.T) {
	_, local := newTestServer(t, Options{Workers: 1})
	want := runCampaignArtifacts(t, local.URL, distSpec, distArtifacts)

	cases := []struct{ workers, maxShards int }{
		{1, 1},
		{2, 2},
		{3, 5},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("workers=%d shards=%d", tc.workers, tc.maxShards), func(t *testing.T) {
			pool := newWorkerPool(t, tc.workers, nil)
			_, coord := newTestServer(t, Options{Workers: 1, WorkerURLs: pool, MaxShards: tc.maxShards})
			got := runCampaignArtifacts(t, coord.URL, distSpec, distArtifacts)
			for _, name := range distArtifacts {
				if string(got[name]) != string(want[name]) {
					t.Errorf("%s differs between local and distributed runs:\nlocal: %s\ndist:  %s",
						name, want[name], got[name])
				}
			}
		})
	}
}

// TestDistributedRedispatchByteIdentity kills one worker's execution
// path (the shard.run fault answers 500 to every shard) and checks that
// the coordinator redispatches onto the healthy worker, still producing
// byte-identical artifacts, with the retry counter reflecting the
// failures.
func TestDistributedRedispatchByteIdentity(t *testing.T) {
	_, local := newTestServer(t, Options{Workers: 1})
	want := runCampaignArtifacts(t, local.URL, distSpec, distArtifacts)

	pool := newWorkerPool(t, 2, func(i int) *faultinject.Set {
		if i == 0 {
			return mustFaults(t, "shard.run:error")
		}
		return nil
	})
	svc, coord := newTestServer(t, Options{Workers: 1, WorkerURLs: pool, MaxShards: 5})
	got := runCampaignArtifacts(t, coord.URL, distSpec, distArtifacts)
	for _, name := range distArtifacts {
		if string(got[name]) != string(want[name]) {
			t.Errorf("%s differs after worker failure + redispatch", name)
		}
	}
	svc.metrics.mu.Lock()
	retries := svc.metrics.shardRetries
	dispatched := len(svc.metrics.shardsDispatched)
	svc.metrics.mu.Unlock()
	if retries == 0 {
		t.Error("shardRetries = 0, want > 0: every shard on the broken worker must redispatch")
	}
	if dispatched != 2 {
		t.Errorf("shardsDispatched has %d workers, want both pool members attempted", dispatched)
	}
}

// TestDistributedShardCacheReuse re-runs a campaign with one experiment
// changed: the unchanged experiments' shards must be served from the
// coordinator's content-addressed shard cache, not redispatched.
func TestDistributedShardCacheReuse(t *testing.T) {
	pool := newWorkerPool(t, 1, nil)
	svc, coord := newTestServer(t, Options{Workers: 1, WorkerURLs: pool, MaxShards: 2})

	runCampaignArtifacts(t, coord.URL, distSpec, nil)
	svc.metrics.mu.Lock()
	coldHits := svc.metrics.shardCacheHits
	svc.metrics.mu.Unlock()
	if coldHits != 0 {
		t.Fatalf("cold run had %d shard cache hits, want 0", coldHits)
	}

	// Same campaign with E3 changed (trials 3 → 4): E1's and E5's shards
	// are content-identical and must hit; only E3's shards recompute.
	changed := strings.Replace(distSpec, `{"id":"E3","params":{"trials":3}}`, `{"id":"E3","params":{"trials":4}}`, 1)
	if changed == distSpec {
		t.Fatal("spec rewrite failed")
	}
	runCampaignArtifacts(t, coord.URL, changed, nil)
	svc.metrics.mu.Lock()
	warmHits := svc.metrics.shardCacheHits
	svc.metrics.mu.Unlock()
	// E1 plans one atomic shard; E5 plans two trial shards at MaxShards=2.
	if warmHits != 3 {
		t.Errorf("re-run with one changed experiment had %d shard cache hits, want 3 (E1 + E5's two shards)", warmHits)
	}
}

// TestShardEndpointRejectsBuildMismatch checks the homogeneous-build
// guard: a shard stamped with a different revision answers 409, never
// bytes from a divergent simulator.
func TestShardEndpointRejectsBuildMismatch(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	body := `{"revision":"somebody-else","go":"gofuture","shard":{"exp_index":0,"experiment":{"id":"E1"},"seed":1,"index":0,"count":1}}`
	resp, err := http.Post(ts.URL+"/v1/shards", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched build shard = %d, want 409", resp.StatusCode)
	}
}

// TestHealthzWorkerPoolQuorum checks the coordinator's readiness
// contract: a pool below quorum degrades /v1/healthz to 503 with the
// per-worker sweep in the body; restoring quorum restores readiness.
func TestHealthzWorkerPoolQuorum(t *testing.T) {
	live := newWorkerPool(t, 1, nil)[0]
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on

	// One live worker of one registered: quorum 1, ready.
	_, coord := newTestServer(t, Options{Workers: 1, WorkerURLs: []string{live}})
	resp, err := http.Get(coord.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy pool healthz = %d, want 200", resp.StatusCode)
	}

	// One live of two registered: quorum 2, degraded.
	_, degraded := newTestServer(t, Options{Workers: 1, WorkerURLs: []string{live, dead.URL}})
	resp, err = http.Get(degraded.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Ready   bool `json:"ready"`
		Workers struct {
			Total     int `json:"total"`
			Reachable int `json:"reachable"`
			Quorum    int `json:"quorum"`
		} `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("below-quorum healthz = %d, want 503", resp.StatusCode)
	}
	if body.Ready || body.Workers.Reachable != 1 || body.Workers.Quorum != 2 {
		t.Fatalf("below-quorum body = %+v, want ready=false reachable=1 quorum=2", body)
	}
}

// TestWorkerRegistration joins a worker through POST /v1/workers and
// checks the pool listing; non-coordinators answer 404 on both.
func TestWorkerRegistration(t *testing.T) {
	worker := newWorkerPool(t, 1, nil)[0]
	svc, coord := newTestServer(t, Options{Workers: 1, Coordinator: true})

	// An empty pool can never meet quorum: not ready until a worker joins.
	if resp, err := http.Get(coord.URL + "/v1/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("empty-pool coordinator healthz = %d, want 503", resp.StatusCode)
		}
	}

	resp, err := http.Post(coord.URL+"/v1/workers", "application/json",
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, worker)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register worker = %d, want 200", resp.StatusCode)
	}
	if got := svc.coord.WorkerURLs(); len(got) != 1 || got[0] != worker {
		t.Fatalf("pool after registration = %v, want [%s]", got, worker)
	}
	// Re-registration is idempotent.
	resp, err = http.Post(coord.URL+"/v1/workers", "application/json",
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, worker)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := svc.coord.WorkerURLs(); len(got) != 1 {
		t.Fatalf("pool after duplicate registration = %v, want one entry", got)
	}

	// A plain server has no pool to join.
	_, plain := newTestServer(t, Options{Workers: 1})
	resp, err = http.Post(plain.URL+"/v1/workers", "application/json", strings.NewReader(`{"url":"http://x"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("register on non-coordinator = %d, want 404", resp.StatusCode)
	}
}

// postWithHeaders submits a body with extra headers and returns the
// response status plus decoded job status (when 202).
func postWithHeaders(t *testing.T, url, body string, headers map[string]string) (*http.Response, jobStatus) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

// TestPriorityLaneOrdering queues a low-priority and then a
// high-priority job behind a saturated service and checks the
// high-priority one starts first — strict lane order, not FIFO.
func TestPriorityLaneOrdering(t *testing.T) {
	// Every job pays a 700ms injected latency: the slot-occupying job
	// holds the gate long enough for the probes to queue up behind the
	// held job, without depending on simulation speed.
	_, ts := newTestServer(t, Options{Workers: 1, Jobs: 1, QueueDepth: 8,
		Faults: mustFaults(t, "job.run:latency:delay=700ms")})

	// Occupy the single job slot, plus one normal job the dispatcher will
	// hold at the gate (the dispatcher always has one popped job in hand,
	// so lane order applies from the next job on).
	slow := `{"cores":16,"threads":4,"hts":1,"epochs":20,"seed":901,"workers":1}`
	held := `{"cores":16,"threads":4,"hts":1,"epochs":20,"seed":902,"workers":1}`
	low := `{"cores":16,"threads":4,"hts":1,"epochs":20,"seed":903,"workers":1}`
	high := `{"cores":16,"threads":4,"hts":1,"epochs":20,"seed":904,"workers":1}`

	slowSt := postJSON(t, ts.URL+"/v1/sims", slow, http.StatusAccepted)
	heldSt := postJSON(t, ts.URL+"/v1/sims", held, http.StatusAccepted)
	// Give the dispatcher time to pop the held job and block at the gate,
	// so both priority probes land in the queue proper.
	time.Sleep(100 * time.Millisecond)
	_, lowSt := postWithHeaders(t, ts.URL+"/v1/sims", low, map[string]string{"X-Priority": "low"})
	_, highSt := postWithHeaders(t, ts.URL+"/v1/sims", high, map[string]string{"X-Priority": "high"})

	if lowSt.Priority != "low" || highSt.Priority != "high" {
		t.Fatalf("statuses report priorities %q/%q, want low/high", lowSt.Priority, highSt.Priority)
	}
	for _, id := range []string{slowSt.ID, heldSt.ID, lowSt.ID, highSt.ID} {
		if st := waitState(t, ts.URL, id); st.State != jobDone {
			t.Fatalf("job %s: %s: %s", id, st.State, st.Error)
		}
	}
	lowDone, highDone := getJob(t, ts.URL, lowSt.ID), getJob(t, ts.URL, highSt.ID)
	if !highDone.Started.Before(*lowDone.Started) {
		t.Errorf("high-priority job started %v, after low-priority %v — lanes not honoured",
			highDone.Started, lowDone.Started)
	}
}

// TestPriorityHeaderValidation rejects unknown X-Priority values.
func TestPriorityHeaderValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, _ := postWithHeaders(t, ts.URL+"/v1/sims",
		`{"cores":16,"threads":4,"hts":1,"epochs":20,"seed":1,"workers":1}`,
		map[string]string{"X-Priority": "urgent"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown priority = %d, want 400", resp.StatusCode)
	}
}

// TestTenantQuota checks the per-tenant admission cap: a tenant at its
// quota sheds with 429 + Retry-After and a tenant-labeled counter, while
// other tenants are unaffected.
func TestTenantQuota(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, Jobs: 1, QueueDepth: 8, TenantQuota: 1})

	slow := `{"cores":256,"threads":16,"hts":8,"epochs":200,"seed":911,"workers":1}`
	resp, aliceSt := postWithHeaders(t, ts.URL+"/v1/sims", slow, map[string]string{"X-Tenant": "alice"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first alice job = %d, want 202", resp.StatusCode)
	}
	if aliceSt.Tenant != "alice" {
		t.Fatalf("status tenant = %q, want alice", aliceSt.Tenant)
	}

	second := `{"cores":16,"threads":4,"hts":1,"epochs":20,"seed":912,"workers":1}`
	resp, _ = postWithHeaders(t, ts.URL+"/v1/sims", second, map[string]string{"X-Tenant": "alice"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota alice job = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("quota shed is missing the Retry-After hint")
	}

	resp, bobSt := postWithHeaders(t, ts.URL+"/v1/sims", second, map[string]string{"X-Tenant": "bob"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bob's job = %d, want 202: quotas are per tenant", resp.StatusCode)
	}

	// The shed shows up tenant-labeled in the Prometheus exposition and in
	// the aggregate jobs_rejected.
	mresp, err := http.Get(ts.URL + "/v1/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if !strings.Contains(string(prom), `htserved_tenant_shed_total{tenant="alice"} 1`) {
		t.Error("Prometheus exposition is missing the alice tenant_shed sample")
	}
	svc.metrics.mu.Lock()
	rejected := svc.metrics.jobsRejected
	svc.metrics.mu.Unlock()
	if rejected != 1 {
		t.Errorf("jobsRejected = %d, want 1 (the quota shed counts as a rejection)", rejected)
	}

	for _, id := range []string{aliceSt.ID, bobSt.ID} {
		if st := waitState(t, ts.URL, id); st.State != jobDone {
			t.Fatalf("job %s: %s: %s", id, st.State, st.Error)
		}
	}
}

// TestLaneQueueStrictPriority unit-tests the queue itself: pops drain
// high before normal before low, FIFO within a lane, and a context
// cancellation unblocks an empty-queue pop.
func TestLaneQueueStrictPriority(t *testing.T) {
	q := newLaneQueue(8)
	mk := func(id string, lane int) *job { return &job{id: id, lane: lane} }
	for _, j := range []*job{
		mk("low-1", laneLow), mk("norm-1", laneNormal), mk("high-1", laneHigh),
		mk("norm-2", laneNormal), mk("high-2", laneHigh),
	} {
		if !q.push(j) {
			t.Fatalf("push %s rejected below depth", j.id)
		}
	}
	want := []string{"high-1", "high-2", "norm-1", "norm-2", "low-1"}
	for _, id := range want {
		if j := q.pop(context.Background()); j.id != id {
			t.Fatalf("pop = %s, want %s", j.id, id)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if j := q.pop(ctx); j != nil {
		t.Fatalf("pop on cancelled ctx = %v, want nil", j)
	}

	// The depth bound spans lanes.
	q2 := newLaneQueue(2)
	q2.push(mk("a", laneHigh))
	q2.push(mk("b", laneLow))
	if q2.push(mk("c", laneNormal)) {
		t.Fatal("push beyond depth accepted")
	}
}
