package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// This file is the durability suite for the write-ahead job journal
// (journal.go, DESIGN.md §12): a server killed mid-backlog — or shut
// down gracefully, which deliberately has the same journal semantics —
// replays its unfinished jobs on the next boot and finishes them with
// artifacts byte-identical to an uninterrupted run. The crash half of
// each test is an abandoned server: no Close, exactly what kill -9
// leaves behind.

// newCrashableServer boots a service whose teardown is abandonment, not
// Close — the kill -9 half of the crash/replay tests. Only the test
// listener is cleaned up; the service itself is left exactly as a dead
// process would leave its journal.
func newCrashableServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	svc, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, ts
}

// waitRunning polls until the job reports running — the backlog tests
// need the victim job wedged in execution (not queued) before the crash.
func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if getJob(t, base, id).State == jobRunning {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never started running", id)
}

// TestJournalCrashReplayFinishesBacklogByteIdentical is the tentpole
// acceptance test: wedge a journaled server with one running and two
// queued jobs, kill it (abandon, no Close), boot a fresh server on the
// same journal directory, and require that every job replays — in its
// original priority lane — runs to done, and serves artifacts
// byte-identical to what `htcampaign run` writes for the same spec.
func TestJournalCrashReplayFinishesBacklogByteIdentical(t *testing.T) {
	want := cliArtifacts(t)
	dir := t.TempDir()
	_, ts1 := newCrashableServer(t, Options{
		Workers:    1,
		JournalDir: dir,
		// Every job wedges for 60s at the job.run fault point: the first
		// holds the single job slot, the rest pile up queued — a backlog no
		// graceful path ever finalises.
		Faults: mustFaults(t, "job.run:latency:delay=60s"),
	})

	a := postJSON(t, ts1.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	waitRunning(t, ts1.URL, a.ID)
	high := `{"name":"urgent","seed":5,"experiments":[{"id":"E1","params":{"size":64}}]}`
	low := `{"name":"bulk","seed":6,"experiments":[{"id":"E3","params":{"trials":3}}]}`
	postWithHeaders(t, ts1.URL+"/v1/campaigns", high, map[string]string{"X-Priority": "high"})
	postWithHeaders(t, ts1.URL+"/v1/campaigns", low, map[string]string{"X-Priority": "low"})
	// Crash: ts1's service is abandoned with one running and two queued
	// jobs, all journaled, none terminal.

	_, ts2 := newTestServer(t, Options{Workers: 1, JournalDir: dir})
	m := metricsSnapshot(t, ts2.URL)
	if got := m["journal_replayed"].(float64); got != 3 {
		t.Fatalf("journal_replayed = %v, want 3", got)
	}
	if got := m["journal_appends"].(float64); got != 3 {
		t.Fatalf("journal_appends = %v, want 3 (replay re-journals each accept)", got)
	}
	// Replay preserves sequence order, so ids map 1:1 onto the original
	// submission order; lanes must survive the round trip.
	for i, wantPrio := range []string{"", "high", "low"} {
		st := waitState(t, ts2.URL, fmt.Sprintf("job-%06d", i+1))
		if st.State != jobDone {
			t.Fatalf("replayed job %d finished %s (%s), want done", i+1, st.State, st.Error)
		}
		if st.Priority != wantPrio {
			t.Errorf("replayed job %d priority %q, want %q", i+1, st.Priority, wantPrio)
		}
	}
	// The original backlog's first job — the golden spec — must produce
	// the exact CLI bytes, crash or no crash.
	assertGoldenArtifacts(t, ts2.URL, "job-000001", want)
}

// TestJournalGracefulShutdownKeepsBacklogPending pins the deliberate
// shutdown asymmetry: Close seals the journal before sweeping jobs to
// cancelled, so a job interrupted by shutdown keeps its pending accept
// record and replays on the next boot. Graceful shutdown is a polite
// crash — the cancellation is a shutdown artifact, not user intent.
func TestJournalGracefulShutdownKeepsBacklogPending(t *testing.T) {
	want := cliArtifacts(t)
	dir := t.TempDir()
	svc1, ts1 := newTestServer(t, Options{
		Workers:    1,
		JournalDir: dir,
		Faults:     mustFaults(t, "job.run:latency:delay=60s"),
	})
	st := postJSON(t, ts1.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	waitRunning(t, ts1.URL, st.ID)
	svc1.Close()
	if got := getJob(t, ts1.URL, st.ID); got.State != jobCancelled {
		t.Fatalf("swept job state %s, want cancelled", got.State)
	}

	_, ts2 := newTestServer(t, Options{Workers: 1, JournalDir: dir})
	if got := metricsSnapshot(t, ts2.URL)["journal_replayed"].(float64); got != 1 {
		t.Fatalf("journal_replayed = %v, want 1 (shutdown-swept job must stay pending)", got)
	}
	done := waitState(t, ts2.URL, "job-000001")
	if done.State != jobDone {
		t.Fatalf("replayed job finished %s (%s), want done", done.State, done.Error)
	}
	assertGoldenArtifacts(t, ts2.URL, "job-000001", want)
}

// TestJournalFinishedJobsDoNotReplay: a job that reached a terminal
// state before the restart has a matching terminal record and must not
// resurrect.
func TestJournalFinishedJobsDoNotReplay(t *testing.T) {
	dir := t.TempDir()
	svc1, ts1 := newTestServer(t, Options{Workers: 1, JournalDir: dir})
	st := postJSON(t, ts1.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if done := waitState(t, ts1.URL, st.ID); done.State != jobDone {
		t.Fatalf("job finished %s, want done", done.State)
	}
	svc1.Close()

	_, ts2 := newTestServer(t, Options{Workers: 1, JournalDir: dir})
	if got := metricsSnapshot(t, ts2.URL)["journal_replayed"].(float64); got != 0 {
		t.Fatalf("journal_replayed = %v, want 0", got)
	}
	resp, err := http.Get(ts2.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		Jobs []jobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 0 {
		t.Fatalf("restarted server has %d jobs, want none", len(listing.Jobs))
	}
}

// TestJournalShedJobsDoNotResurrect: a 429'd submission was journaled
// as accepted (durability precedes the queue-full check) but carries a
// synthetic "rejected" terminal — without it the shed job would
// resurrect at boot and the 429 would have lied.
func TestJournalShedJobsDoNotResurrect(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newCrashableServer(t, Options{
		Workers:    1,
		Jobs:       1,
		QueueDepth: 1,
		JournalDir: dir,
		Faults:     mustFaults(t, "job.run:latency:delay=60s"),
	})
	a := postJSON(t, ts1.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	waitRunning(t, ts1.URL, a.ID)
	b := `{"name":"held","seed":5,"experiments":[{"id":"E1","params":{"size":64}}]}`
	postJSON(t, ts1.URL+"/v1/campaigns", b, http.StatusAccepted)
	// Give the dispatcher time to pop the held job and block at the gate
	// — it always has one popped job in hand — so the next submission
	// fills the queue proper and the one after that sheds.
	time.Sleep(100 * time.Millisecond)
	c := `{"name":"queued","seed":6,"experiments":[{"id":"E1","params":{"size":64}}]}`
	postJSON(t, ts1.URL+"/v1/campaigns", c, http.StatusAccepted)
	shed := `{"name":"shed","seed":7,"experiments":[{"id":"E1","params":{"size":64}}]}`
	resp, _ := postWithHeaders(t, ts1.URL+"/v1/campaigns", shed, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("fourth submission = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing the Retry-After backoff hint")
	}

	_, ts2 := newTestServer(t, Options{Workers: 1, JournalDir: dir})
	if got := metricsSnapshot(t, ts2.URL)["journal_replayed"].(float64); got != 3 {
		t.Fatalf("journal_replayed = %v, want 3 (the shed job must stay shed)", got)
	}
	for _, id := range []string{"job-000001", "job-000002", "job-000003"} {
		if st := waitState(t, ts2.URL, id); st.State != jobDone {
			t.Fatalf("replayed job %s finished %s (%s), want done", id, st.State, st.Error)
		}
	}
}

// TestJournalWriteFaultRejectsSubmission pins the load-bearing accept
// append: when the journal cannot make a submission durable (the
// injected journal.write fault), the submission is rejected with 500 —
// accepting a job a crash would silently lose is the one thing the
// journal must never do. The next submission, with the fault spent,
// sails through.
func TestJournalWriteFaultRejectsSubmission(t *testing.T) {
	dir := t.TempDir()
	_, ts := newTestServer(t, Options{
		Workers:    1,
		JournalDir: dir,
		Faults:     mustFaults(t, "journal.write:error:times=1"),
	})
	postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusInternalServerError)
	st := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if done := waitState(t, ts.URL, st.ID); done.State != jobDone {
		t.Fatalf("post-fault submission finished %s, want done", done.State)
	}
	m := metricsSnapshot(t, ts.URL)
	if got := m["jobs_rejected"].(float64); got != 1 {
		t.Errorf("jobs_rejected = %v, want 1", got)
	}
	if got := m["journal_appends"].(float64); got != 1 {
		t.Errorf("journal_appends = %v, want 1 (only the durable accept counts)", got)
	}
}

// TestJournalReplayFaultFailsBoot: the journal.replay fault point
// models a poisoned record mid-replay — an injected error must fail New
// outright rather than let the server open having silently half-replayed
// its backlog. The journal file itself survives the failed boot (the
// copy-then-swap compaction only commits after a full replay), so a
// later clean boot still replays.
func TestJournalReplayFaultFailsBoot(t *testing.T) {
	dir := t.TempDir()
	rec := `{"seq":1,"type":"accept","kind":"campaign","name":"golden","lane":"normal","body":` + testSpec + `}`
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte("\n"+rec+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Options{
		Workers:    1,
		JournalDir: dir,
		Faults:     mustFaults(t, "journal.replay:error:times=1"),
	})
	if err == nil {
		t.Fatal("New succeeded under a journal.replay fault, want a failed boot")
	}
	// The old journal must be intact: a clean boot replays the record.
	_, ts := newTestServer(t, Options{Workers: 1, JournalDir: dir})
	if got := metricsSnapshot(t, ts.URL)["journal_replayed"].(float64); got != 1 {
		t.Fatalf("journal_replayed = %v after recovered boot, want 1", got)
	}
	if st := waitState(t, ts.URL, "job-000001"); st.State != jobDone {
		t.Fatalf("replayed job finished %s, want done", st.State)
	}
}

// TestReadJournalSkipsTornLines pins the torn-write tolerance at the
// parser level: a line cut mid-byte — at the tail or mid-file — costs
// exactly that record, because the next append's leading newline keeps
// it from gluing onto a healthy line.
func TestReadJournalSkipsTornLines(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, journalFile)
	var buf bytes.Buffer
	buf.WriteString("\n" + `{"seq":1,"type":"accept","kind":"campaign","name":"a"}` + "\n")
	// A mid-file tear: the append was truncated, then the process died,
	// restarted, and the next append started with its leading newline.
	buf.WriteString("\n" + `{"seq":2,"type":"accept","kind":"camp`)
	buf.WriteString("\n" + `{"seq":3,"type":"accept","kind":"campaign","name":"c"}` + "\n")
	buf.WriteString("\n" + `{"seq":4,"type":"terminal","ref":1,"state":"done"}` + "\n")
	// And a torn tail.
	buf.WriteString("\n" + `{"seq":5,"type":"acc`)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3 (torn seq 2 and 5 skipped): %+v", len(recs), recs)
	}
	pending := pendingRecords(recs)
	if len(pending) != 1 || pending[0].Seq != 3 {
		t.Fatalf("pending = %+v, want exactly seq 3 (seq 1 reached terminal)", pending)
	}

	// A missing journal is an empty journal, not an error.
	if recs, err := readJournal(filepath.Join(dir, "absent.log")); err != nil || recs != nil {
		t.Fatalf("missing journal = (%v, %v), want (nil, nil)", recs, err)
	}
}
