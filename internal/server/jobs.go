package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/results"
)

// This file is the bounded job manager: submissions enter a FIFO queue
// with a depth limit (a full queue rejects with 429 backpressure), a
// dispatcher starts them in order through an exp.Gate bounding concurrent
// jobs, and every job runs under its own cancellable context so
// DELETE /v1/jobs/{id} aborts it promptly mid-simulation.
//
// The execution path assumes jobs will misbehave: each job runs behind a
// recover barrier (a panicking simulation fails that one job with a
// structured error and a counted recovery — the dispatcher and every
// other job keep going), under an optional per-job deadline
// (--job-timeout, covering both the gate wait and the run), and behind
// single-flight coalescing — a submission identical to a queued or
// running job becomes a follower that waits for the leader's result
// instead of occupying a queue slot or re-simulating (stampede
// protection, counted as single_flight_dedup).

// jobState is a job's lifecycle phase.
type jobState string

// Job lifecycle: queued → running → done | failed | cancelled (queued
// jobs may also be cancelled directly).
const (
	jobQueued    jobState = "queued"
	jobRunning   jobState = "running"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

// errQueueFull rejects a submission when the queue is at depth (across
// all priority lanes).
var errQueueFull = errors.New("server: job queue full")

// errTenantQuota rejects a submission whose tenant already has its full
// quota of jobs queued or running.
var errTenantQuota = errors.New("server: tenant quota exceeded")

// job is one queued/running/finished unit of work: a whole campaign spec
// or a single-sim request.
type job struct {
	id       string
	kind     string // "campaign" | "sim"
	name     string
	cacheKey string
	// lane is the priority lane (X-Priority header); tenant attributes
	// the job for quota accounting (X-Tenant header, may be empty).
	lane   int
	tenant string
	// body is the raw request payload, kept for the write-ahead journal
	// (nil when journaling is off); jseq is the job's accept-record
	// sequence number there (0 = not journaled); journal is the manager's
	// journal (nil-safe), held per job so the terminal transition can
	// append its record from finishLocked without reaching for the
	// manager. replay marks a job resubmitted from the journal at boot —
	// it bypasses the queue depth bound and tenant quotas, which applied
	// at its original admission.
	body    []byte
	jseq    int64
	journal *journal
	replay  bool
	events  *eventLog
	// metrics is the service's counter set (set at submission); the
	// terminal transition observes the job's end-to-end duration into
	// its job_duration_seconds histogram.
	metrics *counters
	// epochs counts streamed samples (also aggregated in counters).
	epochs atomic.Int64
	// trace is the job's root span (nil with tracing disabled); queueSpan
	// is the queue.wait child, started at enqueue and ended by the
	// dispatcher after pop — the one span whose life a context cannot
	// follow. Both are written once in submit, before the job is
	// registered, and only read afterwards.
	trace     *obs.Span
	queueSpan *obs.Span

	// spec is set for campaign jobs, sim for sim jobs.
	spec *campaign.Spec
	sim  *simRequest

	mu        sync.Mutex
	state     jobState
	cacheTier string // "", "memory", "disk" — how the result was served
	errMsg    string
	tables    []results.Table
	diskFiles []string
	cancel    context.CancelFunc
	created   time.Time
	started   time.Time
	finished  time.Time
}

// jobStatus is the JSON view of a job.
type jobStatus struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind"`
	Name      string     `json:"name"`
	State     jobState   `json:"state"`
	Priority  string     `json:"priority,omitempty"`
	Tenant    string     `json:"tenant,omitempty"`
	CacheKey  string     `json:"cache_key"`
	Cache     string     `json:"cache,omitempty"`
	Error     string     `json:"error,omitempty"`
	Artifacts []string   `json:"artifacts,omitempty"`
	Epochs    int64      `json:"epochs"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// stateEvent is the payload of "state" SSE events.
type stateEvent struct {
	State jobState `json:"state"`
	Cache string   `json:"cache,omitempty"`
	Error string   `json:"error,omitempty"`
}

// experimentEvent is the payload of "experiment" SSE events.
type experimentEvent struct {
	ID         string `json:"id"`
	Status     string `json:"status"` // "started" | "done" | "failed"
	ConfigHash string `json:"config_hash,omitempty"`
	Error      string `json:"error,omitempty"`
}

// epochEvent is the payload of "epoch" SSE events: one typed per-epoch
// sample bridged from the pkg/htsim Observer API. VictimLevel and
// AttackerLevel are mean DVFS level indices — the victim series is the
// live throttle signal of the attack.
type epochEvent struct {
	Experiment    string  `json:"experiment"`
	Epoch         int     `json:"epoch"`
	TrojanActive  bool    `json:"trojan_active"`
	Requests      uint64  `json:"requests"`
	Tampered      uint64  `json:"tampered"`
	Grants        int     `json:"grants"`
	Flagged       uint64  `json:"flagged"`
	AttackerLevel float64 `json:"attacker_level"`
	VictimLevel   float64 `json:"victim_level"`
	Infection     float64 `json:"infection"`
}

// epochEventFor maps one streamed sample into its SSE payload.
func epochEventFor(experiment string, s core.EpochSample) epochEvent {
	return epochEvent{
		Experiment:    experiment,
		Epoch:         s.Epoch,
		TrojanActive:  s.TrojanActive,
		Requests:      s.RequestsReceived,
		Tampered:      s.RequestsTampered,
		Grants:        s.GrantsIssued,
		Flagged:       s.FlaggedRequests,
		AttackerLevel: s.AttackerMeanLevel,
		VictimLevel:   s.VictimMeanLevel,
		Infection:     s.InfectionRunning,
	}
}

// traceRoot returns the job's root span, nil with tracing disabled —
// the signal GET /v1/jobs/{id}/trace turns into its 404.
func (j *job) traceRoot() *obs.Span { return j.trace }

// status snapshots the job for JSON rendering.
func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID:       j.id,
		Kind:     j.kind,
		Name:     j.name,
		State:    j.state,
		Tenant:   j.tenant,
		CacheKey: j.cacheKey,
		Cache:    j.cacheTier,
		Error:    j.errMsg,
		Epochs:   j.epochs.Load(),
		Created:  j.created,
	}
	if j.lane != laneNormal {
		st.Priority = laneName(j.lane)
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	st.Artifacts = j.artifactNamesLocked()
	return st
}

// artifactNamesLocked lists the job's servable artifact files; j.mu held.
func (j *job) artifactNamesLocked() []string {
	if len(j.diskFiles) > 0 {
		return append([]string(nil), j.diskFiles...)
	}
	var names []string
	for _, t := range j.tables {
		base := strings.ToLower(t.TableMeta().Experiment)
		for _, format := range results.Formats() {
			names = append(names, base+"."+format)
		}
	}
	return names
}

// begin moves a queued job to running, reporting false when the job was
// cancelled while waiting in the queue.
func (j *job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != jobQueued {
		return false
	}
	j.state = jobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.events.publish("state", stateEvent{State: jobRunning})
	return true
}

// finish moves the job to a terminal state and seals its event stream.
func (j *job) finish(state jobState, tables []results.Table, diskFiles []string, cacheTier, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(state, tables, diskFiles, cacheTier, errMsg)
}

// finishLocked is finish with j.mu already held — the form state-machine
// transitions use when the decision and the transition must be atomic
// (cancel-while-queued racing the dispatcher's begin). The eventLog has
// its own lock and never takes j.mu, so publishing under j.mu is safe.
func (j *job) finishLocked(state jobState, tables []results.Table, diskFiles []string, cacheTier, errMsg string) {
	j.state = state
	j.tables = tables
	j.diskFiles = diskFiles
	j.cacheTier = cacheTier
	j.errMsg = errMsg
	j.finished = time.Now()
	j.cancel = nil
	// Journal the terminal transition (best-effort, nil-safe; a sealed
	// journal skips it so shutdown-swept jobs replay on the next boot).
	// The journal has its own lock and never takes j.mu, so appending
	// under j.mu is safe.
	j.journal.appendTerminal(j.jseq, string(state))
	if j.metrics != nil {
		j.metrics.observeJobDuration(j.finished.Sub(j.created))
	}
	j.events.publish("state", stateEvent{State: state, Cache: cacheTier, Error: errMsg})
	j.events.close()
	// Seal the trace at the terminal transition — every path ends here
	// (normal completion, cancellation, the shutdown sweep), so a job's
	// tree never renders in_progress after its state says otherwise.
	j.trace.SetAttr("state", string(state))
	if errMsg != "" {
		j.trace.SetAttr("error", errMsg)
	}
	j.trace.End()
}

// manager owns the job table, the priority-lane queue, and the
// dispatcher.
type manager struct {
	base context.Context
	stop context.CancelFunc
	// queue holds submissions across three strict priority lanes; its
	// depth bound is the backpressure limit.
	queue *laneQueue
	// gate bounds concurrently running jobs; each admitted job fans its
	// experiments out over `workers` exp-pool workers.
	gate    *exp.Gate
	workers int
	cache   *cache
	metrics *counters
	faults  *faultinject.Set
	// coord, when non-nil, runs campaign jobs distributed across the
	// worker pool instead of in this process.
	coord *dist.Coordinator
	// tenantQuota caps queued-plus-running jobs per tenant (0 = none).
	tenantQuota int
	// journal is the write-ahead job journal (nil when --journal-dir is
	// unset; every method is nil-safe).
	journal *journal
	// closed flips once shutdown starts; ready() reports false from then
	// on.
	closed atomic.Bool
	// jobTimeout bounds each job's gate wait plus run (0 = none).
	jobTimeout time.Duration
	// sseBuffer is each SSE subscriber's channel capacity.
	sseBuffer int
	// logger receives job-lifecycle events (accepted, started, terminal)
	// with trace_id/job_id/tenant attrs; tracing gates per-job span trees
	// and the queue/gate wait histograms.
	logger  *slog.Logger
	tracing bool
	wg      sync.WaitGroup

	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	seq   int
	// inflight maps cache keys to their single-flight leader (the queued
	// or running job computing that key); followers maps a leader's job ID
	// to the submissions coalesced onto it.
	inflight  map[string]*job
	followers map[string][]*job
}

// newManager starts the dispatcher and returns the manager.
func newManager(opts Options, cache *cache, metrics *counters, faults *faultinject.Set, coord *dist.Coordinator, journal *journal) *manager {
	base, stop := context.WithCancel(context.Background())
	m := &manager{
		base:        base,
		stop:        stop,
		queue:       newLaneQueue(opts.QueueDepth),
		gate:        exp.NewGate(opts.Jobs),
		workers:     opts.Workers,
		cache:       cache,
		metrics:     metrics,
		faults:      faults,
		coord:       coord,
		tenantQuota: opts.TenantQuota,
		journal:     journal,
		jobTimeout:  opts.JobTimeout,
		sseBuffer:   opts.SSEBuffer,
		logger:      opts.Logger,
		tracing:     !opts.DisableTracing,
		jobs:        make(map[string]*job),
		inflight:    make(map[string]*job),
		followers:   make(map[string][]*job),
	}
	m.wg.Add(1)
	go m.dispatch()
	return m
}

// shutdown cancels every running job, stops the dispatcher, waits for
// in-flight work to unwind, and finalises jobs still queued — every event
// log is sealed afterwards, so no SSE watcher outlives the service.
func (m *manager) shutdown() {
	m.closed.Store(true)
	// Seal before cancelling anything: the cancellations below are
	// shutdown artifacts, and sealing keeps their terminal records out of
	// the journal so the interrupted jobs replay on the next boot.
	m.journal.seal()
	m.stop()
	m.wg.Wait()
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		switch j.state {
		case jobQueued, jobRunning:
			j.finishLocked(jobCancelled, nil, nil, "", "server shutting down")
			j.mu.Unlock()
			m.metrics.inc(&m.metrics.jobsCancelled)
		default:
			j.mu.Unlock()
		}
	}
}

// lookup returns a job by ID, or nil.
func (m *manager) lookup(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// list snapshots every job in submission order.
func (m *manager) list() []jobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]jobStatus, 0, len(ids))
	for _, id := range ids {
		if j := m.lookup(id); j != nil {
			out = append(out, j.status())
		}
	}
	return out
}

// ready reports whether the service can accept new work: the queue has
// room and the manager is not shutting down. /v1/healthz maps it to the
// live-vs-ready distinction — a saturated service is alive but degraded.
func (m *manager) ready() bool {
	if m.closed.Load() {
		return false
	}
	return m.queue.len() < m.queue.capacity()
}

// retryAfterSeconds advises a shed client how long to back off before
// resubmitting: proportional to the backlog, capped so the hint stays
// honest under deep queues.
func (m *manager) retryAfterSeconds() int {
	s := 1 + m.queue.len()
	if s > 30 {
		s = 30
	}
	return s
}

// sseSubscribers sums live SSE subscribers across every job — the
// fan-out gauge the Prometheus rendering exposes.
func (m *manager) sseSubscribers() int {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	n := 0
	for _, j := range jobs {
		n += j.events.subscribers()
	}
	return n
}

// queueDepths reports (queued, running) gauges for /v1/metrics.
func (m *manager) queueDepths() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case jobQueued:
			queued++
		case jobRunning:
			running++
		}
		j.mu.Unlock()
	}
	return queued, running
}

// submit registers a job, answers it from the content-addressed cache or
// coalesces it onto an identical in-flight job when possible, and
// otherwise enqueues it FIFO. A full queue returns errQueueFull (the job
// is not registered).
func (m *manager) submit(j *job) error {
	j.created = time.Now()
	j.state = jobQueued
	j.metrics = m.metrics
	j.journal = m.journal
	j.events = newEventLog(m.sseBuffer, &m.metrics.sseDropped)
	if m.tracing {
		// Root the job's trace at admission; finishLocked seals it at the
		// terminal transition. The span lives on the job, not a context —
		// the job outlives this call stack.
		_, root := obs.StartTrace(m.base, "job")
		root.SetAttr("kind", j.kind)
		root.SetAttr("lane", laneName(j.lane))
		if j.tenant != "" {
			root.SetAttr("tenant", j.tenant)
		}
		j.trace = root
	}

	// The queue.admit fault point models a failing admission path (a
	// broken queue backend, an overloaded admission controller): error
	// mode rejects this one submission, latency mode delays it, panic
	// mode is contained by the handler-level recovery. Journal replay
	// skips it — the job already passed admission once.
	if !j.replay {
		if err := m.faults.Fire(m.base, "queue.admit"); err != nil {
			m.metrics.inc(&m.metrics.jobsRejected)
			m.logger.Warn("job admission fault rejected submission",
				"fault_point", "queue.admit", "kind", j.kind, "tenant", j.tenant, "error", err)
			return fmt.Errorf("server: admission failed: %w", err)
		}
	}

	// Durability before acknowledgement: the accept record is fsync'd
	// before any path that can answer 202. A failed append rejects the
	// submission — a job the journal cannot hold would be silently lost
	// by a crash. Paths below that shed the job instead (full queue,
	// tenant quota) append a synthetic "rejected" terminal so the 429'd
	// job never resurrects at boot.
	jspan := j.trace.StartChild("journal.append")
	if err := m.journal.appendAccept(j); err != nil {
		m.metrics.inc(&m.metrics.jobsRejected)
		m.logger.Error("journal append failed; submission rejected", "kind", j.kind, "error", err)
		return fmt.Errorf("server: %w", err)
	}
	jspan.End()

	// Cache tiers are consulted before the queue: an identical submission
	// returns instantly, without occupying a queue slot or a worker.
	cspan := j.trace.StartChild("cache.lookup")
	if tables, ok := m.cache.get(j.cacheKey); ok {
		cspan.SetAttr("tier", "memory")
		cspan.End()
		m.register(j)
		m.metrics.inc(&m.metrics.jobsSubmitted, &m.metrics.cacheHits)
		m.logJobAccepted(j, "memory")
		j.events.publish("state", stateEvent{State: jobQueued})
		j.finish(jobDone, tables, nil, "memory", "")
		return nil
	}
	if files, ok := m.cache.diskLoad(j.cacheKey); ok {
		cspan.SetAttr("tier", "disk")
		cspan.End()
		m.register(j)
		m.metrics.inc(&m.metrics.jobsSubmitted, &m.metrics.cacheDiskHits)
		m.logJobAccepted(j, "disk")
		j.events.publish("state", stateEvent{State: jobQueued})
		j.finish(jobDone, nil, files, "disk", "")
		return nil
	}
	cspan.SetAttr("tier", "miss")
	cspan.End()

	m.mu.Lock()
	// Single-flight: an identical payload already queued or running makes
	// this submission a follower — it waits for the leader's result
	// instead of taking a queue slot and re-simulating the same work
	// (stampede protection for cache misses). Followers ride their
	// leader's capacity, so tenant quotas don't apply to them.
	if leader := m.inflight[j.cacheKey]; leader != nil {
		m.registerLocked(j)
		m.followers[leader.id] = append(m.followers[leader.id], j)
		m.mu.Unlock()
		m.metrics.inc(&m.metrics.jobsSubmitted, &m.metrics.singleFlight)
		j.trace.SetAttr("single_flight_leader", leader.id)
		m.logJobAccepted(j, "single-flight")
		j.events.publish("state", stateEvent{State: jobQueued})
		return nil
	}
	// Per-tenant quota: a tenant at its cap of queued-plus-running jobs
	// sheds, counted per tenant. Checked under the registration lock,
	// like the depth bound, so a burst cannot overshoot. Replayed jobs
	// are exempt — the quota applied at their original admission.
	if !j.replay && m.tenantQuota > 0 && j.tenant != "" && m.tenantActiveLocked(j.tenant) >= m.tenantQuota {
		m.mu.Unlock()
		m.metrics.incTenantShed(j.tenant)
		m.journal.appendTerminal(j.jseq, stateRejected)
		m.logger.Warn("job rejected: tenant quota exceeded", "kind", j.kind, "tenant", j.tenant, "quota", m.tenantQuota)
		return fmt.Errorf("%w: tenant %q has %d jobs active", errTenantQuota, j.tenant, m.tenantQuota)
	}
	// The queue-full check happens under the registration lock so a burst
	// of submissions cannot overshoot the declared depth. Replay pushes
	// past the bound: every replayed job held a queue slot when it was
	// first accepted, and boot-time replay happens before the listener
	// opens, so nothing else is competing for depth yet.
	j.queueSpan = j.trace.StartChild("queue.wait")
	if j.replay {
		m.queue.pushReplay(j)
	} else if !m.queue.push(j) {
		m.mu.Unlock()
		m.metrics.inc(&m.metrics.jobsRejected)
		m.journal.appendTerminal(j.jseq, stateRejected)
		m.logger.Warn("job rejected: queue full", "kind", j.kind, "tenant", j.tenant)
		return errQueueFull
	}
	m.registerLocked(j)
	m.inflight[j.cacheKey] = j
	m.mu.Unlock()
	m.metrics.inc(&m.metrics.jobsSubmitted, &m.metrics.cacheMisses)
	m.logJobAccepted(j, "")
	j.events.publish("state", stateEvent{State: jobQueued})
	return nil
}

// logJobAccepted records one admission at Info with the attrs every
// job-lifecycle line carries; cache names the tier that answered
// without simulation ("" = queued for execution).
func (m *manager) logJobAccepted(j *job, cache string) {
	attrs := []any{"job_id", j.id, "kind", j.kind, "name", j.name}
	if tid := j.trace.TraceID(); tid != "" {
		attrs = append(attrs, "trace_id", tid)
	}
	if j.tenant != "" {
		attrs = append(attrs, "tenant", j.tenant)
	}
	if cache != "" {
		attrs = append(attrs, "cache", cache)
	}
	m.logger.Info("job accepted", attrs...)
}

// tenantActiveLocked counts a tenant's queued and running jobs; m.mu
// held. Job states are read under each job's own lock, the same nesting
// queueDepths uses.
func (m *manager) tenantActiveLocked(tenant string) int {
	n := 0
	for _, j := range m.jobs {
		if j.tenant != tenant {
			continue
		}
		j.mu.Lock()
		switch j.state {
		case jobQueued, jobRunning:
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// settle finalises a leader's single-flight followers with the leader's
// outcome and clears the in-flight entry. Call it after the leader
// reaches any terminal state. A done leader completes its followers with
// the same tables (cache tier "single-flight"); a failed leader fails
// them with the same error (the simulation is deterministic — the same
// payload on the same build fails identically); a cancelled leader fails
// them with a resubmittable explanation. Followers already finalised
// (cancelled individually, or swept by shutdown) are left untouched.
func (m *manager) settle(leader *job) {
	m.mu.Lock()
	if m.inflight[leader.cacheKey] == leader {
		delete(m.inflight, leader.cacheKey)
	}
	fs := m.followers[leader.id]
	delete(m.followers, leader.id)
	m.mu.Unlock()
	if len(fs) == 0 {
		return
	}
	leader.mu.Lock()
	state, tables, diskFiles, errMsg := leader.state, leader.tables, leader.diskFiles, leader.errMsg
	leader.mu.Unlock()
	for _, f := range fs {
		f.mu.Lock()
		if f.state != jobQueued {
			f.mu.Unlock()
			continue
		}
		switch state {
		case jobDone:
			f.finishLocked(jobDone, tables, diskFiles, "single-flight", "")
			f.mu.Unlock()
			m.metrics.inc(&m.metrics.jobsDone)
		default:
			f.finishLocked(jobFailed, nil, nil, "",
				fmt.Sprintf("coalesced onto job %s which was %s: %s", leader.id, state, errMsg))
			f.mu.Unlock()
			m.metrics.inc(&m.metrics.jobsFailed)
		}
	}
}

// register assigns the next job ID and records the job.
func (m *manager) register(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.registerLocked(j)
}

// registerLocked is register with m.mu already held.
func (m *manager) registerLocked(j *job) {
	m.seq++
	j.id = fmt.Sprintf("job-%06d", m.seq)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	j.trace.SetAttr("job_id", j.id)
}

// dispatch pops jobs FIFO and starts each one once the gate admits it, so
// job start order matches submission order even with several job slots.
// With a job timeout configured, the gate wait is bounded by it: a job
// that cannot get a slot inside its whole deadline budget is failed and
// the dispatcher moves on — saturation sheds work, it never wedges the
// queue.
func (m *manager) dispatch() {
	defer m.wg.Done()
	for {
		j := m.queue.pop(m.base)
		if j == nil {
			return
		}
		// The dispatcher is the queue's only consumer, so ending the
		// queue.wait span here is race-free; its duration feeds the
		// queue-vs-run latency attribution histogram.
		if j.queueSpan != nil {
			j.queueSpan.End()
			m.metrics.observeQueueWait(j.queueSpan.Duration())
		}
		gspan := j.trace.StartChild("gate.wait")
		err := m.gate.AcquireWithin(m.base, m.jobTimeout)
		gspan.RecordError(err)
		gspan.End()
		if gspan != nil {
			m.metrics.observeGateWait(gspan.Duration())
		}
		if err != nil {
			if errors.Is(err, exp.ErrAcquireTimeout) {
				m.timeOutQueued(j)
				continue
			}
			return
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer m.gate.Release()
			m.run(j)
		}()
	}
}

// timeOutQueued fails a job whose deadline elapsed while it waited for a
// job slot (skipping it silently if it was cancelled in the meantime).
func (m *manager) timeOutQueued(j *job) {
	j.mu.Lock()
	if j.state == jobQueued {
		j.finishLocked(jobFailed, nil, nil, "", fmt.Sprintf("job timed out after %v waiting for a job slot", m.jobTimeout))
		j.mu.Unlock()
		m.metrics.inc(&m.metrics.jobsFailed, &m.metrics.jobsTimedOut)
		m.logger.Warn("job timed out waiting for a job slot", "job_id", j.id, "timeout", m.jobTimeout.String())
	} else {
		j.mu.Unlock()
	}
	m.settle(j)
}

// run executes one job under its own cancellable (and, with
// --job-timeout, deadlined) context, contains any panic the simulation
// raises, and finalises the job's state, cache entry, metrics, and
// single-flight followers. One misbehaving job — however it dies — costs
// exactly that job.
func (m *manager) run(j *job) {
	defer m.settle(j)
	var ctx context.Context
	var cancel context.CancelFunc
	if m.jobTimeout > 0 {
		// The deadline budget started when the job left the queue (the
		// bounded gate wait); what remains bounds the run itself.
		ctx, cancel = context.WithTimeout(m.base, m.jobTimeout)
	} else {
		ctx, cancel = context.WithCancel(m.base)
	}
	defer cancel()
	if !j.begin(cancel) {
		// Cancelled while queued; cancelJob already finalised it.
		return
	}
	m.metrics.inc(&m.metrics.jobsStarted)
	m.logger.Info("job started", "job_id", j.id, "kind", j.kind, "trace_id", j.trace.TraceID())

	// The run span covers the simulation itself — everything between the
	// gate admitting the job and its terminal transition. Threading it
	// through the context is what roots the experiment/shard/dispatch
	// spans the campaign and dist layers open below.
	rspan := j.trace.StartChild("run")
	runStart := time.Now()
	tables, err := m.execute(obs.ContextWithSpan(ctx, rspan), j)
	rspan.RecordError(err)
	rspan.End()

	if err != nil {
		m.logger.Warn("job failed", "job_id", j.id, "trace_id", j.trace.TraceID(), "error", err)
	} else {
		m.logger.Info("job done", "job_id", j.id, "trace_id", j.trace.TraceID(),
			"duration", time.Since(runStart).Round(time.Millisecond).String())
	}

	switch {
	case err != nil && errors.Is(ctx.Err(), context.DeadlineExceeded):
		m.metrics.inc(&m.metrics.jobsFailed, &m.metrics.jobsTimedOut)
		j.finish(jobFailed, nil, nil, "", fmt.Sprintf("job deadline (%v) exceeded: %s", m.jobTimeout, err))
	case err != nil && (ctx.Err() != nil || errors.Is(err, context.Canceled)):
		m.metrics.inc(&m.metrics.jobsCancelled)
		j.finish(jobCancelled, nil, nil, "", err.Error())
	case err != nil:
		m.metrics.inc(&m.metrics.jobsFailed)
		j.finish(jobFailed, nil, nil, "", err.Error())
	default:
		if cerr := m.cache.put(j.cacheKey, tables); cerr != nil {
			// A failed disk spill degrades the cache, not the job: the
			// result is still served from memory.
			j.events.publish("experiment", experimentEvent{ID: "cache", Status: "failed", Error: cerr.Error()})
		}
		m.metrics.inc(&m.metrics.jobsDone)
		j.finish(jobDone, tables, nil, "", "")
	}
}

// execute runs the job's simulation behind the per-job recover barrier:
// a panic anywhere in the campaign or sim path (including one injected
// at the job.run fault point) becomes this job's structured error — the
// goroutine survives, the dispatcher never notices, and the panic is
// counted in panics_recovered.
func (m *manager) execute(ctx context.Context, j *job) (tables []results.Table, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.metrics.inc(&m.metrics.panicsRecovered)
			tables = nil
			err = fmt.Errorf("panic in job %s: %v\n%s", j.id, r, firstStackLines(debug.Stack(), 8))
		}
	}()
	if err := m.faults.Fire(ctx, "job.run"); err != nil {
		m.logger.Warn("job execution fault injected", "fault_point", "job.run", "job_id", j.id, "error", err)
		return nil, err
	}

	epoch := func(experiment string, s core.EpochSample) {
		j.epochs.Add(1)
		m.metrics.epochs.Add(1)
		j.events.publish("epoch", epochEventFor(experiment, s))
	}

	switch j.kind {
	case "campaign":
		prog := campaign.Progress{
			ExperimentStarted: func(id string) {
				j.events.publish("experiment", experimentEvent{ID: id, Status: "started"})
			},
			ExperimentDone: func(id string, t results.Table, terr error) {
				ev := experimentEvent{ID: id, Status: "done"}
				if terr != nil {
					ev.Status = "failed"
					ev.Error = terr.Error()
				} else if t != nil {
					ev.ConfigHash = t.TableMeta().ConfigHash
				}
				j.events.publish("experiment", ev)
			},
			Epoch: epoch,
		}
		if m.coord != nil {
			// Coordinator mode: the campaign is sharded across the worker
			// pool. Epoch samples stream back live over each shard's NDJSON
			// response and arrive here through prog.Epoch (deduplicated
			// across retries and hedges by the coordinator), so distributed
			// jobs publish the same SSE epoch events local ones do.
			return m.coord.RunCampaign(ctx, j.spec, prog)
		}
		return campaign.BuildTables(ctx, j.spec, m.workers, prog)
	default:
		t, err := j.sim.run(ctx, m.workers, func(s core.EpochSample) { epoch("run", s) })
		if err != nil {
			return nil, err
		}
		return []results.Table{t}, nil
	}
}

// firstStackLines trims a debug.Stack dump to its first n lines — enough
// to locate the panic in a structured error without a wall of text.
func firstStackLines(stack []byte, n int) string {
	lines := strings.SplitN(string(stack), "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// cancelJob cancels a queued or running job. It reports whether the job
// exists and an error when the job already finished.
func (m *manager) cancelJob(id string) (found bool, err error) {
	j := m.lookup(id)
	if j == nil {
		return false, nil
	}
	j.mu.Lock()
	switch j.state {
	case jobQueued:
		// The transition happens inside the same critical section begin()
		// checks, so the dispatcher can never start a job whose DELETE was
		// acknowledged.
		j.finishLocked(jobCancelled, nil, nil, "", "cancelled while queued")
		j.mu.Unlock()
		m.metrics.inc(&m.metrics.jobsCancelled)
		// The job may have been a single-flight leader (followers fail
		// with a resubmittable error) or a follower (settle on itself is a
		// no-op; its leader's settle skips it, already terminal).
		m.settle(j)
		return true, nil
	case jobRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			// run() observes the cancellation and finalises the job.
			cancel()
		}
		return true, nil
	default:
		state := j.state
		j.mu.Unlock()
		return true, fmt.Errorf("job already %s", state)
	}
}

// cacheKeyFor fingerprints a submission for the content-addressed cache:
// the request payload plus the binary's VCS revision and Go toolchain, so
// results simulated by a different build never alias.
func cacheKeyFor(kind string, payload any) string {
	return results.HashConfig(struct {
		Kind     string `json:"kind"`
		Payload  any    `json:"payload"`
		Revision string `json:"revision"`
		Go       string `json:"go"`
	}{kind, payload, results.Revision(), runtime.Version()})
}
