package server

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/results"
)

// This file is the bounded job manager: submissions enter a FIFO queue
// with a depth limit (a full queue rejects with 429 backpressure), a
// dispatcher starts them in order through an exp.Gate bounding concurrent
// jobs, and every job runs under its own cancellable context so
// DELETE /v1/jobs/{id} aborts it promptly mid-simulation.

// jobState is a job's lifecycle phase.
type jobState string

// Job lifecycle: queued → running → done | failed | cancelled (queued
// jobs may also be cancelled directly).
const (
	jobQueued    jobState = "queued"
	jobRunning   jobState = "running"
	jobDone      jobState = "done"
	jobFailed    jobState = "failed"
	jobCancelled jobState = "cancelled"
)

// errQueueFull rejects a submission when the FIFO queue is at depth.
var errQueueFull = errors.New("server: job queue full")

// job is one queued/running/finished unit of work: a whole campaign spec
// or a single-sim request.
type job struct {
	id       string
	kind     string // "campaign" | "sim"
	name     string
	cacheKey string
	events   *eventLog
	// epochs counts streamed samples (also aggregated in counters).
	epochs atomic.Int64

	// spec is set for campaign jobs, sim for sim jobs.
	spec *campaign.Spec
	sim  *simRequest

	mu        sync.Mutex
	state     jobState
	cacheTier string // "", "memory", "disk" — how the result was served
	errMsg    string
	tables    []results.Table
	diskFiles []string
	cancel    context.CancelFunc
	created   time.Time
	started   time.Time
	finished  time.Time
}

// jobStatus is the JSON view of a job.
type jobStatus struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind"`
	Name      string     `json:"name"`
	State     jobState   `json:"state"`
	CacheKey  string     `json:"cache_key"`
	Cache     string     `json:"cache,omitempty"`
	Error     string     `json:"error,omitempty"`
	Artifacts []string   `json:"artifacts,omitempty"`
	Epochs    int64      `json:"epochs"`
	Created   time.Time  `json:"created"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// stateEvent is the payload of "state" SSE events.
type stateEvent struct {
	State jobState `json:"state"`
	Cache string   `json:"cache,omitempty"`
	Error string   `json:"error,omitempty"`
}

// experimentEvent is the payload of "experiment" SSE events.
type experimentEvent struct {
	ID         string `json:"id"`
	Status     string `json:"status"` // "started" | "done" | "failed"
	ConfigHash string `json:"config_hash,omitempty"`
	Error      string `json:"error,omitempty"`
}

// epochEvent is the payload of "epoch" SSE events: one typed per-epoch
// sample bridged from the pkg/htsim Observer API. VictimLevel and
// AttackerLevel are mean DVFS level indices — the victim series is the
// live throttle signal of the attack.
type epochEvent struct {
	Experiment    string  `json:"experiment"`
	Epoch         int     `json:"epoch"`
	TrojanActive  bool    `json:"trojan_active"`
	Requests      uint64  `json:"requests"`
	Tampered      uint64  `json:"tampered"`
	Grants        int     `json:"grants"`
	Flagged       uint64  `json:"flagged"`
	AttackerLevel float64 `json:"attacker_level"`
	VictimLevel   float64 `json:"victim_level"`
	Infection     float64 `json:"infection"`
}

// epochEventFor maps one streamed sample into its SSE payload.
func epochEventFor(experiment string, s core.EpochSample) epochEvent {
	return epochEvent{
		Experiment:    experiment,
		Epoch:         s.Epoch,
		TrojanActive:  s.TrojanActive,
		Requests:      s.RequestsReceived,
		Tampered:      s.RequestsTampered,
		Grants:        s.GrantsIssued,
		Flagged:       s.FlaggedRequests,
		AttackerLevel: s.AttackerMeanLevel,
		VictimLevel:   s.VictimMeanLevel,
		Infection:     s.InfectionRunning,
	}
}

// status snapshots the job for JSON rendering.
func (j *job) status() jobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := jobStatus{
		ID:       j.id,
		Kind:     j.kind,
		Name:     j.name,
		State:    j.state,
		CacheKey: j.cacheKey,
		Cache:    j.cacheTier,
		Error:    j.errMsg,
		Epochs:   j.epochs.Load(),
		Created:  j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	st.Artifacts = j.artifactNamesLocked()
	return st
}

// artifactNamesLocked lists the job's servable artifact files; j.mu held.
func (j *job) artifactNamesLocked() []string {
	if len(j.diskFiles) > 0 {
		return append([]string(nil), j.diskFiles...)
	}
	var names []string
	for _, t := range j.tables {
		base := strings.ToLower(t.TableMeta().Experiment)
		for _, format := range results.Formats() {
			names = append(names, base+"."+format)
		}
	}
	return names
}

// begin moves a queued job to running, reporting false when the job was
// cancelled while waiting in the queue.
func (j *job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != jobQueued {
		return false
	}
	j.state = jobRunning
	j.started = time.Now()
	j.cancel = cancel
	j.events.publish("state", stateEvent{State: jobRunning})
	return true
}

// finish moves the job to a terminal state and seals its event stream.
func (j *job) finish(state jobState, tables []results.Table, diskFiles []string, cacheTier, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishLocked(state, tables, diskFiles, cacheTier, errMsg)
}

// finishLocked is finish with j.mu already held — the form state-machine
// transitions use when the decision and the transition must be atomic
// (cancel-while-queued racing the dispatcher's begin). The eventLog has
// its own lock and never takes j.mu, so publishing under j.mu is safe.
func (j *job) finishLocked(state jobState, tables []results.Table, diskFiles []string, cacheTier, errMsg string) {
	j.state = state
	j.tables = tables
	j.diskFiles = diskFiles
	j.cacheTier = cacheTier
	j.errMsg = errMsg
	j.finished = time.Now()
	j.cancel = nil
	j.events.publish("state", stateEvent{State: state, Cache: cacheTier, Error: errMsg})
	j.events.close()
}

// manager owns the job table, the FIFO queue, and the dispatcher.
type manager struct {
	base context.Context
	stop context.CancelFunc
	// queue is the FIFO: capacity is the configured depth, a full channel
	// is backpressure.
	queue chan *job
	// gate bounds concurrently running jobs; each admitted job fans its
	// experiments out over `workers` exp-pool workers.
	gate    *exp.Gate
	workers int
	cache   *cache
	metrics *counters
	wg      sync.WaitGroup

	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	seq   int
}

// newManager starts the dispatcher and returns the manager.
func newManager(opts Options, cache *cache, metrics *counters) *manager {
	base, stop := context.WithCancel(context.Background())
	m := &manager{
		base:    base,
		stop:    stop,
		queue:   make(chan *job, opts.QueueDepth),
		gate:    exp.NewGate(opts.Jobs),
		workers: opts.Workers,
		cache:   cache,
		metrics: metrics,
		jobs:    make(map[string]*job),
	}
	m.wg.Add(1)
	go m.dispatch()
	return m
}

// shutdown cancels every running job, stops the dispatcher, waits for
// in-flight work to unwind, and finalises jobs still queued — every event
// log is sealed afterwards, so no SSE watcher outlives the service.
func (m *manager) shutdown() {
	m.stop()
	m.wg.Wait()
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		switch j.state {
		case jobQueued, jobRunning:
			j.finishLocked(jobCancelled, nil, nil, "", "server shutting down")
			j.mu.Unlock()
			m.metrics.jobsCancelled.Add(1)
		default:
			j.mu.Unlock()
		}
	}
}

// lookup returns a job by ID, or nil.
func (m *manager) lookup(id string) *job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// list snapshots every job in submission order.
func (m *manager) list() []jobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]jobStatus, 0, len(ids))
	for _, id := range ids {
		if j := m.lookup(id); j != nil {
			out = append(out, j.status())
		}
	}
	return out
}

// queueDepths reports (queued, running) gauges for /v1/metrics.
func (m *manager) queueDepths() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.state {
		case jobQueued:
			queued++
		case jobRunning:
			running++
		}
		j.mu.Unlock()
	}
	return queued, running
}

// submit registers a job, answers it from the content-addressed cache
// when possible, and otherwise enqueues it FIFO. A full queue returns
// errQueueFull (the job is not registered).
func (m *manager) submit(j *job) error {
	j.created = time.Now()
	j.state = jobQueued
	j.events = newEventLog()

	// Cache tiers are consulted before the queue: an identical submission
	// returns instantly, without occupying a queue slot or a worker.
	if tables, ok := m.cache.get(j.cacheKey); ok {
		m.register(j)
		m.metrics.jobsSubmitted.Add(1)
		m.metrics.cacheHits.Add(1)
		j.events.publish("state", stateEvent{State: jobQueued})
		j.finish(jobDone, tables, nil, "memory", "")
		return nil
	}
	if files, ok := m.cache.diskLoad(j.cacheKey); ok {
		m.register(j)
		m.metrics.jobsSubmitted.Add(1)
		m.metrics.cacheDiskHits.Add(1)
		j.events.publish("state", stateEvent{State: jobQueued})
		j.finish(jobDone, nil, files, "disk", "")
		return nil
	}

	m.mu.Lock()
	// The queue-full check happens under the registration lock so a burst
	// of submissions cannot overshoot the declared depth.
	if len(m.queue) == cap(m.queue) {
		m.mu.Unlock()
		m.metrics.jobsRejected.Add(1)
		return errQueueFull
	}
	m.registerLocked(j)
	m.queue <- j
	m.mu.Unlock()
	m.metrics.jobsSubmitted.Add(1)
	m.metrics.cacheMisses.Add(1)
	j.events.publish("state", stateEvent{State: jobQueued})
	return nil
}

// register assigns the next job ID and records the job.
func (m *manager) register(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.registerLocked(j)
}

// registerLocked is register with m.mu already held.
func (m *manager) registerLocked(j *job) {
	m.seq++
	j.id = fmt.Sprintf("job-%06d", m.seq)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
}

// dispatch pops jobs FIFO and starts each one once the gate admits it, so
// job start order matches submission order even with several job slots.
func (m *manager) dispatch() {
	defer m.wg.Done()
	for {
		select {
		case <-m.base.Done():
			return
		case j := <-m.queue:
			if err := m.gate.Acquire(m.base); err != nil {
				return
			}
			m.wg.Add(1)
			go func() {
				defer m.wg.Done()
				defer m.gate.Release()
				m.run(j)
			}()
		}
	}
}

// run executes one job under its own cancellable context and finalises
// its state, cache entry, and metrics.
func (m *manager) run(j *job) {
	ctx, cancel := context.WithCancel(m.base)
	defer cancel()
	if !j.begin(cancel) {
		// Cancelled while queued; cancelJob already finalised it.
		return
	}
	m.metrics.jobsStarted.Add(1)

	epoch := func(experiment string, s core.EpochSample) {
		j.epochs.Add(1)
		m.metrics.epochs.Add(1)
		j.events.publish("epoch", epochEventFor(experiment, s))
	}

	var tables []results.Table
	var err error
	switch j.kind {
	case "campaign":
		tables, err = campaign.BuildTables(ctx, j.spec, m.workers, campaign.Progress{
			ExperimentStarted: func(id string) {
				j.events.publish("experiment", experimentEvent{ID: id, Status: "started"})
			},
			ExperimentDone: func(id string, t results.Table, terr error) {
				ev := experimentEvent{ID: id, Status: "done"}
				if terr != nil {
					ev.Status = "failed"
					ev.Error = terr.Error()
				} else if t != nil {
					ev.ConfigHash = t.TableMeta().ConfigHash
				}
				j.events.publish("experiment", ev)
			},
			Epoch: epoch,
		})
	default:
		var t results.Table
		t, err = j.sim.run(ctx, m.workers, func(s core.EpochSample) { epoch("run", s) })
		if err == nil {
			tables = []results.Table{t}
		}
	}

	switch {
	case err != nil && (ctx.Err() != nil || errors.Is(err, context.Canceled)):
		m.metrics.jobsCancelled.Add(1)
		j.finish(jobCancelled, nil, nil, "", err.Error())
	case err != nil:
		m.metrics.jobsFailed.Add(1)
		j.finish(jobFailed, nil, nil, "", err.Error())
	default:
		if cerr := m.cache.put(j.cacheKey, tables); cerr != nil {
			// A failed disk spill degrades the cache, not the job: the
			// result is still served from memory.
			j.events.publish("experiment", experimentEvent{ID: "cache", Status: "failed", Error: cerr.Error()})
		}
		m.metrics.jobsDone.Add(1)
		j.finish(jobDone, tables, nil, "", "")
	}
}

// cancelJob cancels a queued or running job. It reports whether the job
// exists and an error when the job already finished.
func (m *manager) cancelJob(id string) (found bool, err error) {
	j := m.lookup(id)
	if j == nil {
		return false, nil
	}
	j.mu.Lock()
	switch j.state {
	case jobQueued:
		// The transition happens inside the same critical section begin()
		// checks, so the dispatcher can never start a job whose DELETE was
		// acknowledged.
		j.finishLocked(jobCancelled, nil, nil, "", "cancelled while queued")
		j.mu.Unlock()
		m.metrics.jobsCancelled.Add(1)
		return true, nil
	case jobRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			// run() observes the cancellation and finalises the job.
			cancel()
		}
		return true, nil
	default:
		state := j.state
		j.mu.Unlock()
		return true, fmt.Errorf("job already %s", state)
	}
}

// cacheKeyFor fingerprints a submission for the content-addressed cache:
// the request payload plus the binary's VCS revision and Go toolchain, so
// results simulated by a different build never alias.
func cacheKeyFor(kind string, payload any) string {
	return results.HashConfig(struct {
		Kind     string `json:"kind"`
		Payload  any    `json:"payload"`
		Revision string `json:"revision"`
		Go       string `json:"go"`
	}{kind, payload, results.Revision(), runtime.Version()})
}
