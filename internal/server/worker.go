package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/results"
)

// This file is the distributed-execution HTTP surface. Every htserved
// instance is a capable worker: POST /v1/shards executes one campaign
// shard synchronously and returns its payload (raw per-cell values or a
// whole typed table — see internal/campaign/shard.go). A server built
// with coordinator options additionally exposes POST/GET /v1/workers so
// workers can join the pool at runtime (`htserved -worker
// -coordinator=URL`), and its campaign jobs execute through
// internal/dist instead of the local builder.

// handleRunShard executes one shard on this worker. Execution is
// synchronous — the coordinator holds the request open — and bounded by
// the same job gate queued jobs use, so shard traffic and local jobs
// share one concurrency budget instead of oversubscribing the machine.
// Build-fingerprint mismatches are rejected with 409: merging bytes
// from heterogeneous builds would silently break the byte-identity
// contract.
//
// A request with Stream set is answered as NDJSON: per-epoch frames
// flushed live while the shard runs, then one terminal frame carrying
// the result (plus this worker's span subtree, rooted under the
// coordinator's Traceparent) or the error. Requests without Stream get
// the legacy single-document reply. Pre-execution rejections (bad
// request, build mismatch, gate refusal, shard.run fault) answer plain
// HTTP errors in both modes — streaming begins only once execution does.
func (s *Server) handleRunShard(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req dist.ShardRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("shard request: %w", err))
		return
	}
	if req.Revision != results.Revision() || req.Go != runtime.Version() {
		writeError(w, http.StatusConflict, fmt.Errorf(
			"build mismatch: worker is %s/%s, coordinator is %s/%s — distributed byte-identity requires homogeneous builds",
			results.Revision(), runtime.Version(), req.Revision, req.Go))
		return
	}
	// The shard.run fault point models a worker that accepts shards but
	// cannot execute them (failing disk, poisoned build): an injected
	// error answers 500, which the coordinator treats as a failed attempt
	// and redispatches elsewhere.
	if err := s.jobs.faults.Fire(r.Context(), "shard.run"); err != nil {
		s.logger.Warn("shard execution fault injected", "fault_point", "shard.run", "shard", req.Shard.String(), "error", err)
		writeError(w, http.StatusInternalServerError, fmt.Errorf("shard execution failed: %w", err))
		return
	}
	if err := s.jobs.gate.Acquire(r.Context()); err != nil {
		// Same contract as the degraded /v1/healthz 503: tell the caller
		// when to come back instead of leaving it to guess.
		w.Header().Set("Retry-After", strconv.Itoa(s.jobs.retryAfterSeconds()))
		writeError(w, http.StatusServiceUnavailable, errors.New("worker shutting down"))
		return
	}
	defer s.jobs.gate.Release()
	if !req.Stream {
		res, err := campaign.RunShard(r.Context(), req.Shard, s.opts.Workers)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.metrics.inc(&s.metrics.shardsExecuted)
		writeJSON(w, http.StatusOK, res)
		return
	}
	s.streamShard(w, r, req)
}

// streamShard runs one shard under the worker-side trace root and
// answers the NDJSON stream. Epoch frames are written (and flushed)
// from the simulation goroutines as samples arrive; the write mutex
// keeps frames whole. Failures after the stream opens travel as the
// terminal error frame — the HTTP status is already committed.
func (s *Server) streamShard(w http.ResponseWriter, r *http.Request, req dist.ShardRequest) {
	ctx, root := obs.JoinTrace(r.Context(), req.Traceparent, "worker.execute")
	root.SetAttr("shard", req.Shard.String())
	if !s.opts.DisableTracing {
		defer root.End()
	} else {
		// Tracing off: run unobserved but keep the stream contract (the
		// coordinator still wants live epochs and the terminal frame).
		ctx, root = r.Context(), nil
	}

	w.Header().Set("Content-Type", dist.NDJSONContentType)
	w.WriteHeader(http.StatusOK)
	var (
		wmu sync.Mutex
		enc = json.NewEncoder(w)
		fl  http.Flusher
	)
	fl, _ = w.(http.Flusher)
	writeFrame := func(f dist.StreamFrame) {
		wmu.Lock()
		defer wmu.Unlock()
		if enc.Encode(f) == nil && fl != nil {
			fl.Flush()
		}
	}

	var seq int64
	observer := core.ObserverFunc(func(sample core.EpochSample) {
		n := atomic.AddInt64(&seq, 1)
		writeFrame(dist.StreamFrame{Epoch: &dist.EpochFrame{Seq: n, Experiment: req.Shard.Experiment.ID, Sample: sample}})
	})

	runCtx, span := obs.StartSpan(ctx, "shard.run")
	res, err := campaign.RunShardObserved(runCtx, req.Shard, s.opts.Workers, observer)
	span.RecordError(err)
	span.End()
	if err != nil {
		s.logger.Warn("shard execution failed", "shard", req.Shard.String(), "trace_id", root.TraceID(), "error", err)
		root.RecordError(err)
		root.End()
		writeFrame(dist.StreamFrame{Error: err.Error(), Trace: root.Tree()})
		return
	}
	s.metrics.inc(&s.metrics.shardsExecuted)
	root.End()
	writeFrame(dist.StreamFrame{Result: res, Trace: root.Tree()})
}

// handleRegisterWorker joins a worker to the coordinator's pool. Body:
// {"url": "http://host:port"}. Registration doubles as the heartbeat —
// workers re-POST on a cadence, and the call is idempotent — so the
// response carries the worker's stable pool id, which the graceful-
// drain DELETE names. The worker.heartbeat fault point models a
// coordinator that accepts connections but cannot update its pool
// (an injected error answers 500, exercising the worker's registration
// backoff).
func (s *Server) handleRegisterWorker(w http.ResponseWriter, r *http.Request) {
	if s.coord == nil {
		writeError(w, http.StatusNotFound, errors.New("not a coordinator"))
		return
	}
	if err := s.faults.Fire(r.Context(), "worker.heartbeat"); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("heartbeat failed: %w", err))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req struct {
		URL string `json:"url"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !strings.HasPrefix(req.URL, "http://") && !strings.HasPrefix(req.URL, "https://") {
		writeError(w, http.StatusBadRequest, fmt.Errorf("worker url %q must be absolute (http:// or https://)", req.URL))
		return
	}
	id, added := s.coord.Register(req.URL)
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "added": added, "workers": s.coord.WorkerURLs()})
}

// handleDeregisterWorker removes a worker from the pool by the id its
// registration returned — the graceful-drain path: a SIGTERMed worker
// finishes its in-flight shards, then deregisters so the coordinator
// stops placing new ones on it. A repeated DELETE of an already-gone
// id answers 404, which drain loops treat as success.
func (s *Server) handleDeregisterWorker(w http.ResponseWriter, r *http.Request) {
	if s.coord == nil {
		writeError(w, http.StatusNotFound, errors.New("not a coordinator"))
		return
	}
	if !s.coord.Remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, errors.New("unknown worker id"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": true, "workers": s.coord.WorkerURLs()})
}

// handleListWorkers reports the pool with a live reachability sweep —
// the same sweep /v1/healthz readiness folds into its quorum verdict.
func (s *Server) handleListWorkers(w http.ResponseWriter, r *http.Request) {
	if s.coord == nil {
		writeError(w, http.StatusNotFound, errors.New("not a coordinator"))
		return
	}
	writeJSON(w, http.StatusOK, s.coord.Health(r.Context()))
}
