package server

import (
	"context"
	"fmt"
	"testing"
)

// This file pins the laneQueue contract, including the sharp edge:
// strict priority means the high lane can starve the others
// indefinitely. That is by design, not a bug to fix — see
// TestLaneQueueStrictPriorityStarvesLowerLanesByDesign.

// TestLaneQueueDrainOrder: strict priority across lanes, FIFO within a
// lane.
func TestLaneQueueDrainOrder(t *testing.T) {
	q := newLaneQueue(16)
	push := func(lane int, name string) {
		if !q.push(&job{name: name, lane: lane}) {
			t.Fatalf("push %s rejected below depth", name)
		}
	}
	push(laneNormal, "n1")
	push(laneNormal, "n2")
	push(laneHigh, "h1")
	push(laneLow, "l1")
	push(laneHigh, "h2")
	want := []string{"h1", "h2", "n1", "n2", "l1"}
	for i, name := range want {
		j := q.pop(context.Background())
		if j.name != name {
			t.Fatalf("pop %d = %s, want %s", i, j.name, name)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue drained but len = %d", q.len())
	}
}

// TestLaneQueueStrictPriorityStarvesLowerLanesByDesign documents the
// deliberate trade-off in the lane scheduler: the dispatcher always
// drains higher lanes first, with no aging, weighting, or anti-
// starvation credit. Under a sustained stream of high-priority
// submissions, normal and low work waits forever. This is the intended
// contract — X-Priority is an operator lever for genuinely urgent work
// (latency-sensitive smoke campaigns overtaking bulk sweeps), and the
// queue's shared depth bound already backpressures a tenant that tries
// to flood the high lane; fairness between tenants is the per-tenant
// quota's job (DESIGN.md §9), not the scheduler's. If the workload ever
// needs aging, this test is the contract to renegotiate first.
func TestLaneQueueStrictPriorityStarvesLowerLanesByDesign(t *testing.T) {
	q := newLaneQueue(64)
	q.push(&job{name: "starved", lane: laneLow})
	// As long as one high-priority job arrives per dispatch, the low lane
	// never pops — sustained urgent traffic owns the service.
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("high-%d", i)
		q.push(&job{name: name, lane: laneHigh})
		if j := q.pop(context.Background()); j.name != name {
			t.Fatalf("round %d popped %s, want %s (strict priority violated)", i, j.name, name)
		}
	}
	// Only once the high lane goes quiet does the starved job run.
	if j := q.pop(context.Background()); j.name != "starved" {
		t.Fatalf("drained queue popped %s, want the starved low job", j.name)
	}
}

// TestLaneQueueReplayBypassesDepth: journal replay re-enqueues past the
// depth bound — every replayed job held a slot when first accepted, and
// replay finishes before the listener opens, so backpressure has no one
// to protect yet.
func TestLaneQueueReplayBypassesDepth(t *testing.T) {
	q := newLaneQueue(1)
	if !q.push(&job{name: "a", lane: laneNormal}) {
		t.Fatal("first push rejected")
	}
	if q.push(&job{name: "b", lane: laneNormal}) {
		t.Fatal("push past depth accepted")
	}
	q.pushReplay(&job{name: "replayed", lane: laneNormal})
	if q.len() != 2 {
		t.Fatalf("len = %d after replay push past depth, want 2", q.len())
	}
}
