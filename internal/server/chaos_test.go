package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/faultinject"
)

// This file is the chaos suite: every fault point the service registers
// (job.run, queue.admit, cache.disk.read, cache.disk.write, sse.write)
// is driven through every relevant injection mode, and each test holds
// the same line — the fault costs at most its own job or request, the
// dispatcher and every unaffected job keep working, and the artifacts
// that do come out stay byte-identical to what `htcampaign run` writes.

// mustFaults parses a fault spec or fails the test.
func mustFaults(t *testing.T, spec string) *faultinject.Set {
	t.Helper()
	fs, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// metricsSnapshot fetches /v1/metrics as a generic map.
func metricsSnapshot(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// cliArtifacts runs the golden testSpec through campaign.Run and returns
// the artifact bytes the service must match.
func cliArtifacts(t *testing.T) map[string][]byte {
	t.Helper()
	spec, err := campaign.ParseSpec([]byte(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, _, err := campaign.Run(spec, dir, 1); err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]byte)
	for _, name := range []string{"e1.json", "e1.csv", "e3.json", "e3.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		want[name] = b
	}
	return want
}

// assertGoldenArtifacts fetches every golden artifact from a finished
// job and requires byte identity with the CLI output.
func assertGoldenArtifacts(t *testing.T, base, id string, want map[string][]byte) {
	t.Helper()
	for name, wantBytes := range want {
		if got := fetch(t, base, id, name); !bytes.Equal(got, wantBytes) {
			t.Errorf("%s differs from htcampaign run output under fault injection", name)
		}
	}
}

// TestChaosPanicInJobIsIsolated injects a panic into the first job's
// execution path: that job fails with a structured panic error, the
// recovery is counted, and the dispatcher goes on to run both a
// different spec and a clean retry of the panicked spec — with artifacts
// byte-identical to the CLI.
func TestChaosPanicInJobIsIsolated(t *testing.T) {
	want := cliArtifacts(t)
	_, ts := newTestServer(t, Options{
		Workers: 1,
		Faults:  mustFaults(t, "job.run:panic:times=1"),
	})

	victim := `{"name":"victim","seed":3,"experiments":[{"id":"E2"}]}`
	st := postJSON(t, ts.URL+"/v1/campaigns", victim, http.StatusAccepted)
	done := waitState(t, ts.URL, st.ID)
	if done.State != jobFailed {
		t.Fatalf("panicked job finished %s, want failed", done.State)
	}
	if !strings.Contains(done.Error, "panic in job") || !strings.Contains(done.Error, "injected panic at job.run") {
		t.Fatalf("panicked job error %q lacks the structured panic report", done.Error)
	}

	// The dispatcher survived: an unrelated spec completes and matches
	// the CLI byte-for-byte.
	st2 := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if done := waitState(t, ts.URL, st2.ID); done.State != jobDone {
		t.Fatalf("follow-up job finished %s (%s), want done", done.State, done.Error)
	}
	assertGoldenArtifacts(t, ts.URL, st2.ID, want)

	// The panicked payload itself reruns clean once the rule is spent —
	// a failed job must never poison its cache key.
	st3 := postJSON(t, ts.URL+"/v1/campaigns", victim, http.StatusAccepted)
	if done := waitState(t, ts.URL, st3.ID); done.State != jobDone {
		t.Fatalf("retry of panicked spec finished %s (%s), want done", done.State, done.Error)
	}

	m := metricsSnapshot(t, ts.URL)
	if got := m["panics_recovered"].(float64); got != 1 {
		t.Errorf("panics_recovered = %v, want 1", got)
	}
	if got := m["faults_injected"].(float64); got < 1 {
		t.Errorf("faults_injected = %v, want >= 1", got)
	}
}

// TestChaosErrorAndLatencyModes drives error injection on job.run (every
// second job fails cleanly) and latency injection on queue.admit
// (submissions slow down but succeed) at the same time.
func TestChaosErrorAndLatencyModes(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1,
		Faults:  mustFaults(t, "job.run:error:every=2;queue.admit:latency:delay=20ms"),
	})
	specs := []string{
		`{"name":"a","seed":11,"experiments":[{"id":"E2"}]}`,
		`{"name":"b","seed":12,"experiments":[{"id":"E2"}]}`,
		`{"name":"c","seed":13,"experiments":[{"id":"E2"}]}`,
		`{"name":"d","seed":14,"experiments":[{"id":"E2"}]}`,
	}
	var states []jobState
	for _, spec := range specs {
		st := postJSON(t, ts.URL+"/v1/campaigns", spec, http.StatusAccepted)
		done := waitState(t, ts.URL, st.ID)
		states = append(states, done.State)
		if done.State == jobFailed && !strings.Contains(done.Error, "injected error at job.run") {
			t.Fatalf("failed job error %q is not the injected fault", done.Error)
		}
	}
	// every=2: jobs 2 and 4 hit the fault, 1 and 3 run through.
	wantStates := []jobState{jobDone, jobFailed, jobDone, jobFailed}
	for i, want := range wantStates {
		if states[i] != want {
			t.Fatalf("job states %v, want %v (error cadence every=2)", states, wantStates)
		}
	}
}

// TestChaosHandlerPanicIsContained injects a panic at queue.admit: the
// submission gets a 500 (not a dropped connection), the recovery is
// counted, and the very next submission succeeds.
func TestChaosHandlerPanicIsContained(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1,
		Faults:  mustFaults(t, "queue.admit:panic:times=1"),
	})
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader(testSpec))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked submission = %d (%s), want 500", resp.StatusCode, b)
	}
	if !strings.Contains(string(b), "recovered") {
		t.Fatalf("500 body %q does not mark the recovery", b)
	}
	st := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if done := waitState(t, ts.URL, st.ID); done.State != jobDone {
		t.Fatalf("post-panic submission finished %s (%s), want done", done.State, done.Error)
	}
	if got := metricsSnapshot(t, ts.URL)["panics_recovered"].(float64); got != 1 {
		t.Errorf("panics_recovered = %v, want 1", got)
	}
}

// TestChaosCorruptDiskEntryQuarantined corrupts a spilled cache entry on
// disk by hand: the next server over the same directory detects the
// checksum mismatch, quarantines the entry instead of serving it (or
// erroring), recomputes, and the recomputed artifacts match the CLI.
func TestChaosCorruptDiskEntryQuarantined(t *testing.T) {
	want := cliArtifacts(t)
	cacheDir := t.TempDir()
	_, ts := newTestServer(t, Options{Workers: 1, CacheDir: cacheDir})
	st := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if done := waitState(t, ts.URL, st.ID); done.State != jobDone {
		t.Fatalf("seed job finished %s (%s)", done.State, done.Error)
	}

	// Flip bytes in one artifact of the (single) spilled entry.
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, e := range entries {
		if !e.IsDir() || e.Name() == quarantineDir {
			continue
		}
		target := filepath.Join(cacheDir, e.Name(), "e3.csv")
		if err := os.WriteFile(target, []byte("garbage,from,a,dying,disk\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted = true
	}
	if !corrupted {
		t.Fatal("no spilled cache entry found to corrupt")
	}

	// A fresh server over the same directory must refuse the entry.
	_, ts2 := newTestServer(t, Options{Workers: 1, CacheDir: cacheDir})
	st2 := postJSON(t, ts2.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if st2.Cache == "disk" {
		t.Fatal("corrupt disk entry was served as a cache hit")
	}
	if done := waitState(t, ts2.URL, st2.ID); done.State != jobDone {
		t.Fatalf("recompute job finished %s (%s), want done", done.State, done.Error)
	}
	assertGoldenArtifacts(t, ts2.URL, st2.ID, want)
	if got := metricsSnapshot(t, ts2.URL)["cache_corrupt_quarantined"].(float64); got < 1 {
		t.Errorf("cache_corrupt_quarantined = %v, want >= 1", got)
	}
	if qs, err := os.ReadDir(filepath.Join(cacheDir, quarantineDir)); err != nil || len(qs) == 0 {
		t.Errorf("quarantine directory missing or empty (err %v)", err)
	}
	// The recomputed entry is a healthy disk hit for the next server.
	_, ts3 := newTestServer(t, Options{Workers: 1, CacheDir: cacheDir})
	st3 := postJSON(t, ts3.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if st3.State != jobDone || st3.Cache != "disk" {
		t.Fatalf("post-recompute submission state %s cache %q, want done from disk", st3.State, st3.Cache)
	}
}

// TestChaosPartialWriteCaughtByChecksums injects torn writes into the
// spill path: the entry lands truncated (the rename still happens), and
// the next server's checksum verification quarantines it and recomputes
// instead of serving truncated artifacts.
func TestChaosPartialWriteCaughtByChecksums(t *testing.T) {
	want := cliArtifacts(t)
	cacheDir := t.TempDir()
	_, ts := newTestServer(t, Options{
		Workers:  1,
		CacheDir: cacheDir,
		Faults:   mustFaults(t, "cache.disk.write:partial-write:bytes=16"),
	})
	st := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if done := waitState(t, ts.URL, st.ID); done.State != jobDone {
		t.Fatalf("job under torn writes finished %s (%s), want done (spill faults never fail jobs)", done.State, done.Error)
	}
	// The job itself still serves correct artifacts from memory.
	assertGoldenArtifacts(t, ts.URL, st.ID, want)

	// A fresh, fault-free server over the torn directory: quarantine and
	// recompute, never a truncated artifact and never a 500.
	_, ts2 := newTestServer(t, Options{Workers: 1, CacheDir: cacheDir})
	st2 := postJSON(t, ts2.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if st2.Cache == "disk" {
		t.Fatal("torn disk entry was served as a cache hit")
	}
	if done := waitState(t, ts2.URL, st2.ID); done.State != jobDone {
		t.Fatalf("recompute finished %s (%s)", done.State, done.Error)
	}
	assertGoldenArtifacts(t, ts2.URL, st2.ID, want)
	if got := metricsSnapshot(t, ts2.URL)["cache_corrupt_quarantined"].(float64); got < 1 {
		t.Errorf("cache_corrupt_quarantined = %v, want >= 1", got)
	}
}

// TestChaosDiskReadErrorsDegradeToMisses makes every disk-tier read fail:
// the service answers everything by recomputing — no 500s, no hangs.
func TestChaosDiskReadErrorsDegradeToMisses(t *testing.T) {
	cacheDir := t.TempDir()
	// Seed the disk tier with a healthy entry first.
	_, ts := newTestServer(t, Options{Workers: 1, CacheDir: cacheDir})
	st := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if done := waitState(t, ts.URL, st.ID); done.State != jobDone {
		t.Fatalf("seed job finished %s (%s)", done.State, done.Error)
	}

	_, ts2 := newTestServer(t, Options{
		Workers:  1,
		CacheDir: cacheDir,
		Faults:   mustFaults(t, "cache.disk.read:error"),
	})
	st2 := postJSON(t, ts2.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if st2.Cache == "disk" {
		t.Fatal("failing disk tier still reported a hit")
	}
	if done := waitState(t, ts2.URL, st2.ID); done.State != jobDone {
		t.Fatalf("job with failing disk reads finished %s (%s), want done", done.State, done.Error)
	}
}

// TestChaosSSEWriteFaultKillsOnlyTheStream severs an SSE stream with an
// injected write error, then reconnects with Last-Event-ID and requires
// the replay to continue exactly where the first stream stopped — while
// the job itself runs to completion untouched.
func TestChaosSSEWriteFaultKillsOnlyTheStream(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1,
		Faults:  mustFaults(t, "sse.write:error:after=4:times=1"),
	})
	body := `{"cores":64,"threads":4,"hts":4,"epochs":6,"seed":7,"workers":1}`
	st := postJSON(t, ts.URL+"/v1/sims", body, http.StatusAccepted)
	if done := waitState(t, ts.URL, st.ID); done.State != jobDone {
		t.Fatalf("job finished %s (%s), want done", done.State, done.Error)
	}

	// First stream: replay dies at the injected fault after 4 events.
	firstIDs := readSSEIDs(t, ts.URL, st.ID, -1)
	if len(firstIDs) == 0 {
		t.Fatal("first stream delivered nothing")
	}
	all := readSSEIDs(t, ts.URL, st.ID, -1) // fault spent: full replay
	if len(all) <= len(firstIDs) {
		t.Fatalf("severed stream saw %d events, full replay %d — fault did not sever", len(firstIDs), len(all))
	}

	// Resume from the last id the severed stream saw: the events must be
	// exactly the remainder, no duplicates and no holes.
	last := firstIDs[len(firstIDs)-1]
	resumed := readSSEIDs(t, ts.URL, st.ID, last)
	if got, want := len(firstIDs)+len(resumed), len(all); got != want {
		t.Fatalf("severed (%d) + resumed (%d) = %d events, want %d", len(firstIDs), len(resumed), got, want)
	}
	if len(resumed) == 0 || resumed[0] != last+1 {
		t.Fatalf("resume after id %d started at %v, want %d", last, resumed, last+1)
	}
}

// readSSEIDs consumes a job's whole SSE stream (optionally resuming
// after a Last-Event-ID) and returns the event ids received, in order.
func readSSEIDs(t *testing.T, base, id string, after int) []int {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/jobs/%s/events", base, id), nil)
	if err != nil {
		t.Fatal(err)
	}
	if after >= 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(after))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ids []int
	for _, line := range strings.Split(readAll(t, resp.Body), "\n") {
		if v, ok := strings.CutPrefix(line, "id: "); ok {
			var n int
			fmt.Sscanf(v, "%d", &n)
			ids = append(ids, n)
		}
	}
	return ids
}

// readAll drains a reader, tolerating the abrupt close an injected
// sse.write fault causes.
func readAll(t *testing.T, r io.Reader) string {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil && !strings.Contains(err.Error(), "EOF") {
		// An injected severance surfaces as an unexpected EOF — that is the
		// point; anything else is a real failure.
		t.Logf("stream read ended with %v", err)
	}
	return string(b)
}

// TestChaosSingleFlightCoalescesStampede submits the same expensive
// payload twice while the first copy is still in flight: the second
// becomes a follower (no queue slot, no second simulation), finishes
// with the leader's result, and the dedup is counted.
func TestChaosSingleFlightCoalescesStampede(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Jobs: 1, QueueDepth: 4})
	slow := `{"cores":256,"threads":16,"hts":8,"epochs":60,"seed":301,"workers":1}`
	leader := postJSON(t, ts.URL+"/v1/sims", slow, http.StatusAccepted)
	follower := postJSON(t, ts.URL+"/v1/sims", slow, http.StatusAccepted)

	ldone := waitState(t, ts.URL, leader.ID)
	fdone := waitState(t, ts.URL, follower.ID)
	if ldone.State != jobDone {
		t.Fatalf("leader finished %s (%s)", ldone.State, ldone.Error)
	}
	if fdone.State != jobDone || fdone.Cache != "single-flight" {
		t.Fatalf("follower state %s cache %q, want done via single-flight", fdone.State, fdone.Cache)
	}
	if got, want := fetch(t, ts.URL, follower.ID, "run.csv"), fetch(t, ts.URL, leader.ID, "run.csv"); !bytes.Equal(got, want) {
		t.Error("follower artifact differs from leader")
	}
	m := metricsSnapshot(t, ts.URL)
	if got := m["single_flight_dedup"].(float64); got != 1 {
		t.Errorf("single_flight_dedup = %v, want 1", got)
	}
	// Exactly one simulation ran.
	if got := m["jobs_started"].(float64); got != 1 {
		t.Errorf("jobs_started = %v, want 1 (the follower must not re-simulate)", got)
	}
}

// TestJobTimeoutFailsOnlyTheSlowJob runs a deliberately long simulation
// under a tight --job-timeout: it fails with a structured deadline error
// and is counted, while a quick job on the same server completes.
func TestJobTimeoutFailsOnlyTheSlowJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, JobTimeout: 300 * time.Millisecond})
	slow := `{"cores":256,"threads":16,"hts":8,"epochs":500,"seed":401,"workers":1}`
	st := postJSON(t, ts.URL+"/v1/sims", slow, http.StatusAccepted)
	done := waitState(t, ts.URL, st.ID)
	if done.State != jobFailed || !strings.Contains(done.Error, "deadline") {
		t.Fatalf("slow job finished %s (%q), want failed with a deadline error", done.State, done.Error)
	}
	quick := `{"cores":64,"threads":4,"hts":4,"epochs":6,"seed":402,"workers":1}`
	st2 := postJSON(t, ts.URL+"/v1/sims", quick, http.StatusAccepted)
	if done := waitState(t, ts.URL, st2.ID); done.State != jobDone {
		t.Fatalf("quick job finished %s (%s), want done", done.State, done.Error)
	}
	if got := metricsSnapshot(t, ts.URL)["jobs_timed_out"].(float64); got != 1 {
		t.Errorf("jobs_timed_out = %v, want 1", got)
	}
}

// TestLoadSheddingRetryAfterAndReadiness saturates the queue and
// verifies the shedding contract: 429 carries a Retry-After hint and a
// counted shed, /v1/healthz degrades to 503 with live=true ready=false
// (and ?probe=live stays 200), and everything recovers after the backlog
// drains.
func TestLoadSheddingRetryAfterAndReadiness(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Jobs: 1, QueueDepth: 1})
	slow := `{"cores":256,"threads":16,"hts":8,"epochs":200,"seed":%d,"workers":1}`
	var ids []string
	st1 := postJSON(t, ts.URL+"/v1/sims", fmt.Sprintf(slow, 501), http.StatusAccepted)
	ids = append(ids, st1.ID)

	// Distinct payloads (distinct seeds) so single-flight cannot coalesce
	// them; fill until the queue sheds.
	deadline := time.Now().Add(10 * time.Second)
	var shedResp *http.Response
	for seed := 502; time.Now().Before(deadline) && shedResp == nil; seed++ {
		resp, err := http.Post(ts.URL+"/v1/sims", "application/json",
			strings.NewReader(fmt.Sprintf(slow, seed)))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			shedResp = resp
		case http.StatusAccepted:
			var st jobStatus
			if err := json.Unmarshal(b, &st); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		default:
			t.Fatalf("POST = %d; body: %s", resp.StatusCode, b)
		}
	}
	if shedResp == nil {
		t.Fatal("queue never shed")
	}
	if ra := shedResp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 carries no Retry-After hint")
	}

	// Degraded: alive but not ready.
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status string `json:"status"`
		Live   bool   `json:"live"`
		Ready  bool   `json:"ready"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !hz.Live || hz.Ready || hz.Status != "degraded" {
		t.Fatalf("saturated healthz = %d %+v, want 503 live-but-not-ready degraded", resp.StatusCode, hz)
	}
	if resp, err = http.Get(ts.URL + "/v1/healthz?probe=live"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("liveness probe on a saturated server = %d, want 200", resp.StatusCode)
	}
	if got := metricsSnapshot(t, ts.URL)["requests_shed"].(float64); got < 1 {
		t.Errorf("requests_shed = %v, want >= 1", got)
	}

	// Drain the backlog; readiness returns.
	for _, id := range ids {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	for _, id := range ids {
		waitState(t, ts.URL, id)
	}
	if resp, err = http.Get(ts.URL + "/v1/healthz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drained healthz = %d, want 200", resp.StatusCode)
	}
}

// TestSSEDropOldestBuffersSlowSubscriber pins the drop-oldest policy at
// the eventLog level: a subscriber with a tiny buffer that never drains
// keeps the newest events, loses the oldest, stays connected, and every
// loss is counted.
func TestSSEDropOldestBuffersSlowSubscriber(t *testing.T) {
	var dropped atomic.Int64
	l := newEventLog(2, &dropped)
	_, ch, cancel := l.subscribe(-1)
	defer cancel()
	for i := 0; i < 10; i++ {
		l.publish("epoch", map[string]int{"n": i})
	}
	if l.subscribers() != 1 {
		t.Fatalf("slow subscriber was disconnected (subscribers %d)", l.subscribers())
	}
	// Ten published into a buffer of two: eight evicted, newest two left.
	if got := dropped.Load(); got != 8 {
		t.Fatalf("dropped = %d, want 8", got)
	}
	var got []int
	for len(ch) > 0 {
		ev := <-ch
		got = append(got, ev.id)
	}
	if len(got) != 2 || got[0] != 8 || got[1] != 9 {
		t.Fatalf("buffered ids %v, want the newest [8 9]", got)
	}
	// The replay buffer still holds everything: a reconnect with
	// Last-Event-ID recovers the gap the drops created.
	replay, _, cancel2 := l.subscribe(got[0] - 1)
	defer cancel2()
	if len(replay) != 2 || replay[0].id != 8 {
		t.Fatalf("resume replay %d events from id %d, want 2 from 8", len(replay), replay[0].id)
	}
	full, _, cancel3 := l.subscribe(-1)
	defer cancel3()
	if len(full) != 10 {
		t.Fatalf("full replay %d events, want 10", len(full))
	}
}

// TestSSESubscriberSlotsReleasedOnDisconnect is the leak test: 100
// subscribe/disconnect cycles against a running job must leave exactly
// zero registered subscribers.
func TestSSESubscriberSlotsReleasedOnDisconnect(t *testing.T) {
	svc, ts := newTestServer(t, Options{Workers: 1, Jobs: 1, QueueDepth: 2})
	slow := `{"cores":256,"threads":16,"hts":8,"epochs":200,"seed":601,"workers":1}`
	st := postJSON(t, ts.URL+"/v1/sims", slow, http.StatusAccepted)
	j := svc.jobs.lookup(st.ID)
	if j == nil {
		t.Fatal("job not found")
	}

	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet,
				fmt.Sprintf("%s/v1/jobs/%s/events", ts.URL, st.ID), nil)
			if err != nil {
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return
			}
			// Read a little, then drop the connection mid-stream.
			buf := make([]byte, 64)
			resp.Body.Read(buf)
			cancel()
			resp.Body.Close()
		}()
	}
	wg.Wait()

	// Handler exits race the disconnects slightly; poll to zero.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.events.subscribers() == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := j.events.subscribers(); n != 0 {
		t.Fatalf("%d subscriber slots leaked after 100 disconnects", n)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitState(t, ts.URL, st.ID)
}

// TestDeleteRacesJobCompletion fires DELETE while quick jobs are
// finishing: whatever interleaving happens, the job lands in exactly one
// terminal state (done or cancelled, never a double transition), repeat
// DELETEs conflict cleanly, and the state stays put afterwards. Run
// under -race in CI, this is the cancel-after-done / done-after-cancel
// audit.
func TestDeleteRacesJobCompletion(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Jobs: 1, QueueDepth: 4})
	quick := `{"cores":64,"threads":4,"hts":4,"epochs":6,"seed":%d,"workers":1}`
	for i := 0; i < 20; i++ {
		st := postJSON(t, ts.URL+"/v1/sims", fmt.Sprintf(quick, 700+i), http.StatusAccepted)
		// Race the DELETE against the run: no sleep, straight away.
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusConflict {
			t.Fatalf("racing DELETE = %d, want 202 or 409", resp.StatusCode)
		}
		done := waitState(t, ts.URL, st.ID)
		if done.State != jobDone && done.State != jobCancelled {
			t.Fatalf("raced job landed in %s (%s), want done or cancelled", done.State, done.Error)
		}
		// Cancel-after-done (and double-cancel) is a clean conflict no-op:
		// the terminal state never changes.
		req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("DELETE on terminal job = %d, want 409", resp.StatusCode)
		}
		if again := getJob(t, ts.URL, st.ID); again.State != done.State {
			t.Fatalf("terminal state flipped %s -> %s after late DELETE", done.State, again.State)
		}
	}
}

// TestChaosEveryPointActive is the acceptance sweep: faults armed at
// every registered point at once, two specs driven through the service —
// the panicked job fails alone, everything else completes, and the final
// artifacts are byte-identical to htcampaign run.
func TestChaosEveryPointActive(t *testing.T) {
	want := cliArtifacts(t)
	cacheDir := t.TempDir()
	_, ts := newTestServer(t, Options{
		Workers:  1,
		CacheDir: cacheDir,
		Faults: mustFaults(t, strings.Join([]string{
			"seed=7",
			"job.run:panic:times=1",
			"queue.admit:latency:delay=10ms",
			"cache.disk.read:error:times=1",
			"cache.disk.write:partial-write:bytes=16:times=3",
			"sse.write:error:times=1",
		}, ";")),
	})

	victim := `{"name":"victim","seed":9,"experiments":[{"id":"E2"}]}`
	st := postJSON(t, ts.URL+"/v1/campaigns", victim, http.StatusAccepted)
	if done := waitState(t, ts.URL, st.ID); done.State != jobFailed {
		t.Fatalf("victim finished %s, want failed (injected panic)", done.State)
	}

	st2 := postJSON(t, ts.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if done := waitState(t, ts.URL, st2.ID); done.State != jobDone {
		t.Fatalf("golden job finished %s (%s), want done", done.State, done.Error)
	}
	assertGoldenArtifacts(t, ts.URL, st2.ID, want)
	// Its SSE stream is reachable even with a write fault armed.
	readSSEIDs(t, ts.URL, st2.ID, -1)

	m := metricsSnapshot(t, ts.URL)
	if got := m["panics_recovered"].(float64); got < 1 {
		t.Errorf("panics_recovered = %v, want >= 1", got)
	}
	if got := m["faults_injected"].(float64); got < 3 {
		t.Errorf("faults_injected = %v, want >= 3 (panic + latency + disk)", got)
	}

	// The torn spill from this run must never be trusted by a successor.
	_, ts2 := newTestServer(t, Options{Workers: 1, CacheDir: cacheDir})
	st3 := postJSON(t, ts2.URL+"/v1/campaigns", testSpec, http.StatusAccepted)
	if st3.Cache == "disk" {
		t.Fatal("torn entry served from disk")
	}
	if done := waitState(t, ts2.URL, st3.ID); done.State != jobDone {
		t.Fatalf("recompute finished %s (%s)", done.State, done.Error)
	}
	assertGoldenArtifacts(t, ts2.URL, st3.ID, want)
}
