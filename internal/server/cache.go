package server

import (
	"bufio"
	"container/list"
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/faultinject"
	"repro/internal/results"
)

// This file is the content-addressed result cache: finished jobs are
// stored under a key fingerprinting the submission (spec or sim request),
// the binary's VCS revision, and the Go toolchain, so an identical
// submission returns instantly without re-simulation. Entries live in an
// in-memory LRU holding the typed tables; when a cache directory is
// configured, every entry is also spilled to disk as fully rendered
// artifacts, surviving both LRU eviction and server restarts.
//
// The disk tier assumes it will be corrupted: every spill writes a
// sha256 manifest alongside the artifacts, and diskLoad verifies each
// file against it before trusting the entry. A truncated, bit-flipped,
// or manifest-less entry is quarantined (moved aside for post-mortem,
// never deleted in place) and reported as a miss, so the job recomputes
// and respills — a corrupt cache degrades to a slower answer, never a
// wrong artifact or a 500.

// sumsFile is the per-entry checksum manifest name. Its extension is
// deliberately outside the artifact namespace (artifactName rejects it),
// so it can never be fetched or collide with a table rendering.
const sumsFile = "manifest.sums"

// quarantineDir is the subdirectory corrupt entries are moved into.
const quarantineDir = "quarantine"

// cacheEntry is one cached result set.
type cacheEntry struct {
	key    string
	tables []results.Table
}

// cache is a thread-safe LRU of result tables with optional disk spill.
type cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	index    map[string]*list.Element
	dir      string // "" disables the disk tier
	faults   *faultinject.Set
	// onCorrupt reports each quarantined disk entry (wired to the
	// service's cache_corrupt_quarantined counter; never nil).
	onCorrupt func()
}

// newCache returns an empty cache of the given capacity (entries below 1
// are clamped to 1) spilling into dir when non-empty. faults may be nil;
// onCorrupt (the quarantine hook, shared with /v1/metrics) may be nil
// and is then a no-op.
func newCache(capacity int, dir string, faults *faultinject.Set, onCorrupt func()) *cache {
	if capacity < 1 {
		capacity = 1
	}
	if onCorrupt == nil {
		onCorrupt = func() {}
	}
	return &cache{
		capacity:  capacity,
		ll:        list.New(),
		index:     make(map[string]*list.Element),
		dir:       dir,
		faults:    faults,
		onCorrupt: onCorrupt,
	}
}

// get returns the cached tables for key, promoting the entry to
// most-recently-used.
func (c *cache) get(key string) ([]results.Table, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).tables, true
}

// put stores tables under key, evicting the least-recently-used entry
// beyond capacity and spilling rendered artifacts to the disk tier.
func (c *cache) put(key string, tables []results.Table) error {
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).tables = tables
	} else {
		c.index[key] = c.ll.PushFront(&cacheEntry{key: key, tables: tables})
		if c.ll.Len() > c.capacity {
			last := c.ll.Back()
			c.ll.Remove(last)
			delete(c.index, last.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	return c.spill(key, tables)
}

// spill renders every table in every format into dir/key, plus a sha256
// manifest over the rendered bytes. A partially written entry is never
// visible to a well-behaved filesystem: artifacts are written into a
// temporary directory and renamed into place — and if the filesystem
// does tear a write (simulated by the cache.disk.write partial-write
// fault), the manifest mismatch quarantines the entry at load time.
func (c *cache) spill(key string, tables []results.Table) error {
	if err := c.faults.Fire(context.Background(), "cache.disk.write"); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(c.dir, "spill-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	var sums strings.Builder
	for _, t := range tables {
		base := strings.ToLower(t.TableMeta().Experiment)
		for _, format := range results.Formats() {
			name := base + "." + format
			f, err := os.Create(filepath.Join(tmp, name))
			if err != nil {
				return err
			}
			// The hash sees every byte the renderer produced; the file sees
			// what the (possibly faulty) writer let through. Any divergence
			// is exactly what verification must catch.
			h := sha256.New()
			err = results.WriteFormat(io.MultiWriter(h, c.faults.Writer("cache.disk.write", f)), t, format)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
			fmt.Fprintf(&sums, "%x  %s\n", h.Sum(nil), name)
		}
	}
	if err := os.WriteFile(filepath.Join(tmp, sumsFile), []byte(sums.String()), 0o644); err != nil {
		return err
	}
	final := c.diskPath(key)
	os.RemoveAll(final)
	return os.Rename(tmp, final)
}

// diskLoad reports whether key exists in the disk tier and the artifact
// file names it holds, sorted. Every file is verified against the
// entry's sha256 manifest first: a missing manifest, an unlisted or
// missing file, or a digest mismatch quarantines the whole entry and
// reports a miss, so the caller recomputes instead of serving bytes that
// were torn or tampered with.
func (c *cache) diskLoad(key string) ([]string, bool) {
	if c.dir == "" {
		return nil, false
	}
	if err := c.faults.Fire(context.Background(), "cache.disk.read"); err != nil {
		// An injected read failure is indistinguishable from a dying disk:
		// degrade to a miss, never to an error.
		return nil, false
	}
	dir := c.diskPath(key)
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		return nil, false
	}
	names, err := c.verify(dir, entries)
	if err != nil {
		c.quarantine(key, err)
		return nil, false
	}
	return names, true
}

// verify checks every artifact in dir against its manifest and returns
// the sorted artifact names. Any inconsistency is an error describing
// the first corruption found.
func (c *cache) verify(dir string, entries []os.DirEntry) ([]string, error) {
	sums, err := readSums(filepath.Join(dir, sumsFile))
	if err != nil {
		return nil, fmt.Errorf("checksum manifest: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || e.Name() == sumsFile {
			continue
		}
		want, ok := sums[e.Name()]
		if !ok {
			return nil, fmt.Errorf("%s not in checksum manifest", e.Name())
		}
		if got, err := fileSum(filepath.Join(dir, e.Name())); err != nil {
			return nil, err
		} else if got != want {
			return nil, fmt.Errorf("%s checksum mismatch (have %.12s, manifest %.12s)", e.Name(), got, want)
		}
		delete(sums, e.Name())
		names = append(names, e.Name())
	}
	for name := range sums {
		return nil, fmt.Errorf("%s listed in manifest but missing", name)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("entry holds no artifacts")
	}
	sort.Strings(names)
	return names, nil
}

// readSums parses a manifest of "hex  name" lines.
func readSums(path string) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sums := make(map[string]string)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		digest, name, ok := strings.Cut(sc.Text(), "  ")
		if !ok || len(digest) != sha256.Size*2 || name == "" {
			return nil, fmt.Errorf("malformed line %q", sc.Text())
		}
		sums[name] = digest
	}
	return sums, sc.Err()
}

// fileSum computes one file's sha256 hex digest.
func fileSum(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

// quarantine moves a corrupt entry into the quarantine subdirectory
// (falling back to deletion if even the move fails) and counts it. The
// entry is preserved for post-mortem rather than destroyed.
func (c *cache) quarantine(key string, cause error) {
	c.onCorrupt()
	qdir := filepath.Join(c.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		for n := 0; n < 100; n++ {
			dst := filepath.Join(qdir, fmt.Sprintf("%s-%d", key, n))
			if _, err := os.Stat(dst); err == nil {
				continue
			}
			if os.Rename(c.diskPath(key), dst) == nil {
				return
			}
			break
		}
	}
	os.RemoveAll(c.diskPath(key))
}

// diskOpen opens one spilled artifact file for streaming.
func (c *cache) diskOpen(key, name string) (io.ReadCloser, error) {
	if c.dir == "" {
		return nil, fmt.Errorf("server: no cache directory configured")
	}
	if err := c.faults.Fire(context.Background(), "cache.disk.read"); err != nil {
		return nil, err
	}
	return os.Open(filepath.Join(c.diskPath(key), name))
}

// diskPath is the spill directory of one key (keys are hex fingerprints,
// safe as path elements).
func (c *cache) diskPath(key string) string { return filepath.Join(c.dir, key) }
