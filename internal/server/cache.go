package server

import (
	"container/list"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/results"
)

// This file is the content-addressed result cache: finished jobs are
// stored under a key fingerprinting the submission (spec or sim request),
// the binary's VCS revision, and the Go toolchain, so an identical
// submission returns instantly without re-simulation. Entries live in an
// in-memory LRU holding the typed tables; when a cache directory is
// configured, every entry is also spilled to disk as fully rendered
// artifacts, surviving both LRU eviction and server restarts.

// cacheEntry is one cached result set.
type cacheEntry struct {
	key    string
	tables []results.Table
}

// cache is a thread-safe LRU of result tables with optional disk spill.
type cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	index    map[string]*list.Element
	dir      string // "" disables the disk tier
}

// newCache returns an empty cache of the given capacity (entries below 1
// are clamped to 1) spilling into dir when non-empty.
func newCache(capacity int, dir string) *cache {
	if capacity < 1 {
		capacity = 1
	}
	return &cache{capacity: capacity, ll: list.New(), index: make(map[string]*list.Element), dir: dir}
}

// get returns the cached tables for key, promoting the entry to
// most-recently-used.
func (c *cache) get(key string) ([]results.Table, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).tables, true
}

// put stores tables under key, evicting the least-recently-used entry
// beyond capacity and spilling rendered artifacts to the disk tier.
func (c *cache) put(key string, tables []results.Table) error {
	c.mu.Lock()
	if el, ok := c.index[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).tables = tables
	} else {
		c.index[key] = c.ll.PushFront(&cacheEntry{key: key, tables: tables})
		if c.ll.Len() > c.capacity {
			last := c.ll.Back()
			c.ll.Remove(last)
			delete(c.index, last.Value.(*cacheEntry).key)
		}
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil
	}
	return c.spill(key, tables)
}

// spill renders every table in every format into dir/key. A partially
// written entry is never visible: artifacts are written into a temporary
// directory and renamed into place.
func (c *cache) spill(key string, tables []results.Table) error {
	tmp, err := os.MkdirTemp(c.dir, "spill-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	for _, t := range tables {
		base := strings.ToLower(t.TableMeta().Experiment)
		for _, format := range results.Formats() {
			f, err := os.Create(filepath.Join(tmp, base+"."+format))
			if err != nil {
				return err
			}
			err = results.WriteFormat(f, t, format)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return err
			}
		}
	}
	final := c.diskPath(key)
	os.RemoveAll(final)
	return os.Rename(tmp, final)
}

// diskLoad reports whether key exists in the disk tier and the artifact
// file names it holds, sorted.
func (c *cache) diskLoad(key string) ([]string, bool) {
	if c.dir == "" {
		return nil, false
	}
	entries, err := os.ReadDir(c.diskPath(key))
	if err != nil || len(entries) == 0 {
		return nil, false
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, true
}

// diskOpen opens one spilled artifact file for streaming.
func (c *cache) diskOpen(key, name string) (io.ReadCloser, error) {
	if c.dir == "" {
		return nil, fmt.Errorf("server: no cache directory configured")
	}
	return os.Open(filepath.Join(c.diskPath(key), name))
}

// diskPath is the spill directory of one key (keys are hex fingerprints,
// safe as path elements).
func (c *cache) diskPath(key string) string { return filepath.Join(c.dir, key) }
