package server

import (
	"context"
	"fmt"
	"sync"
)

// laneQueue is the job queue behind the dispatcher: three strict
// priority lanes (high, normal, low) replacing the original pure FIFO
// channel. Submissions pick a lane with the X-Priority header (default
// normal); the dispatcher always drains higher lanes first and keeps
// FIFO order within a lane, so multi-tenant traffic can express urgency
// without a scheduler — latency-sensitive smoke campaigns overtake bulk
// sweeps, and equal-priority work keeps the original ordering
// guarantees. The depth bound spans all lanes together: backpressure
// semantics (429 + Retry-After past the configured depth) are unchanged
// from the FIFO era.
type laneQueue struct {
	mu    sync.Mutex
	lanes [laneCount][]*job
	n     int
	depth int
	// wake nudges the dispatcher when work arrives; capacity one — a
	// buffered token is at most a spurious scan, never a lost wakeup,
	// because pop re-scans the lanes before ever blocking.
	wake chan struct{}
}

// Priority lanes, drain order. laneNormal is the default.
const (
	laneHigh = iota
	laneNormal
	laneLow
	laneCount
)

// laneNames maps X-Priority header values to lanes.
var laneNames = map[string]int{"high": laneHigh, "normal": laneNormal, "low": laneLow}

// parseLane maps an X-Priority header value to its lane (empty means
// normal).
func parseLane(header string) (int, error) {
	if header == "" {
		return laneNormal, nil
	}
	lane, ok := laneNames[header]
	if !ok {
		return 0, fmt.Errorf("unknown priority %q (known: high, normal, low)", header)
	}
	return lane, nil
}

// laneName renders a lane for status payloads.
func laneName(lane int) string {
	switch lane {
	case laneHigh:
		return "high"
	case laneLow:
		return "low"
	default:
		return "normal"
	}
}

// newLaneQueue builds a queue admitting depth jobs across all lanes.
func newLaneQueue(depth int) *laneQueue {
	return &laneQueue{depth: depth, wake: make(chan struct{}, 1)}
}

// push enqueues a job on its lane, reporting false when the queue is at
// depth.
func (q *laneQueue) push(j *job) bool {
	q.mu.Lock()
	if q.n >= q.depth {
		q.mu.Unlock()
		return false
	}
	q.lanes[j.lane] = append(q.lanes[j.lane], j)
	q.n++
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return true
}

// pushReplay enqueues a journal-replayed job on its lane, ignoring the
// depth bound: every replayed job held a queue slot when it was first
// accepted, and boot-time replay finishes before the listener opens, so
// the bound's backpressure purpose doesn't apply yet. Within a lane,
// replay submits in original sequence order, so FIFO order — and
// therefore the strict-priority drain order — survives the restart.
func (q *laneQueue) pushReplay(j *job) {
	q.mu.Lock()
	q.lanes[j.lane] = append(q.lanes[j.lane], j)
	q.n++
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// pop removes the highest-priority oldest job, blocking until one
// arrives or ctx is done (then nil).
func (q *laneQueue) pop(ctx context.Context) *job {
	for {
		q.mu.Lock()
		for lane := range q.lanes {
			if len(q.lanes[lane]) == 0 {
				continue
			}
			j := q.lanes[lane][0]
			q.lanes[lane] = q.lanes[lane][1:]
			q.n--
			q.mu.Unlock()
			return j
		}
		q.mu.Unlock()
		select {
		case <-ctx.Done():
			return nil
		case <-q.wake:
		}
	}
}

// len reports queued jobs across all lanes.
func (q *laneQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// capacity reports the configured depth.
func (q *laneQueue) capacity() int { return q.depth }
