// Package server is the concurrent simulation service behind the
// htserved binary: an HTTP API (stdlib net/http only) that accepts whole
// campaign specs (POST /v1/campaigns, the same JSON schema as
// specs/paper.json) and single-sim requests (POST /v1/sims, built through
// htsim.BuildConfig), runs them on a bounded FIFO job queue with 429
// backpressure and per-job cancellation (DELETE /v1/jobs/{id}), and
// serves results from a content-addressed cache keyed by the submission's
// parameter fingerprint plus the binary revision — an identical
// submission returns instantly without re-simulation. Live progress
// bridges the pkg/htsim Observer API to Server-Sent Events
// (GET /v1/jobs/{id}/events): typed per-epoch samples carrying request,
// tampering, grant, throttle-level, and running-infection counts.
// Artifacts (GET /v1/jobs/{id}/artifacts/{table}.{json,csv,txt}) render
// through the single internal/results serialization path, so a fetched
// artifact is byte-identical to the file `htcampaign run` writes for the
// same spec. GET /v1/plugins, /v1/healthz, and /v1/metrics expose the
// plugin registries, live-vs-ready health, and counters — as an
// expvar-style JSON object by default, or as Prometheus text exposition
// (?format=prometheus) with queue/cache/SSE families and a job-duration
// histogram; both renderings come from one atomic snapshot, so a scrape
// never sees torn cross-counter invariants.
//
// The service is built to degrade, not collapse (the chaos suite in
// chaos_test.go drives every failure path through the
// internal/faultinject registry): panics are contained per job and per
// request (panics_recovered), jobs run under optional --job-timeout
// deadlines, identical in-flight submissions coalesce single-flight
// instead of stampeding the simulator, corrupt disk-cache entries are
// checksum-detected, quarantined, and recomputed, full queues shed load
// with 429 + Retry-After, and SSE fan-out buffers slow subscribers with
// a drop-oldest policy plus Last-Event-ID resume. See DESIGN.md §9 for
// the failure-modes matrix.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/pkg/htsim"
)

// Options configure a Server. The zero value is usable: one job at a
// time, a 16-deep queue, a 64-entry memory cache, no disk spill.
type Options struct {
	// Workers is the exp-pool budget each running job fans its experiments
	// and trials out over (0 = one per CPU). Results are bit-identical for
	// any value.
	Workers int
	// Jobs bounds concurrently running jobs (default 1). The total CPU
	// budget is shared: every admitted job gets the same Workers budget,
	// and the Go scheduler time-slices them.
	Jobs int
	// QueueDepth bounds the FIFO queue; a submission past the depth is
	// rejected with 429 (default 16).
	QueueDepth int
	// CacheEntries sizes the in-memory LRU result cache (default 64).
	CacheEntries int
	// CacheDir, when non-empty, spills every cached result to disk as
	// rendered artifacts that survive LRU eviction and restarts.
	CacheDir string
	// JobTimeout bounds each job's life after it leaves the queue: the
	// wait for a job slot plus the simulation itself. An expired job fails
	// with a structured deadline error (counted in jobs_timed_out); 0
	// disables the deadline.
	JobTimeout time.Duration
	// SSEBuffer is each SSE subscriber's event channel capacity (default
	// 1024). A subscriber that falls further behind loses its oldest
	// buffered events (drop-oldest, counted in sse_events_dropped) rather
	// than stalling the simulation or being disconnected.
	SSEBuffer int
	// SSEWriteTimeout bounds each individual SSE frame write (default
	// 10s; negative disables). A subscriber whose TCP window stays full
	// past the deadline has its connection errored and its slot released
	// — stalled consumers cost one connection, never a pinned handler
	// goroutine.
	SSEWriteTimeout time.Duration
	// Faults is the fault-injection registry driving chaos tests
	// (cmd/htserved builds it from the HTSERVED_FAULTS environment
	// variable). Nil disables injection — every fault point passes clean.
	Faults *faultinject.Set
	// JournalDir, when non-empty, enables the write-ahead job journal:
	// accepted submissions are fsync'd there before their 202, and on
	// boot every accept that never reached a terminal state is replayed
	// in original lane order — a kill -9 restart finishes the backlog
	// instead of losing it (DESIGN.md §12).
	JournalDir string
	// CheckpointDir, when non-empty on a coordinator, spills completed
	// shard results to disk (sha256-verified, quarantine on corruption)
	// so a resumed campaign recomputes only shards that never finished.
	// Defaults to <JournalDir>/shard-checkpoints when journaling is on.
	CheckpointDir string
	// HedgeDelay tunes straggler hedging on a coordinator: after this
	// long without an answer, a shard is speculatively redispatched to a
	// second worker and the first byte-complete result wins. 0 derives
	// the delay adaptively from the observed dispatch p99; negative
	// disables hedging.
	HedgeDelay time.Duration

	// Coordinator enables coordinator mode: campaign jobs are sharded
	// across the worker pool through internal/dist instead of running in
	// this process, and the /v1/workers registration endpoints open up.
	// Implied by a non-empty WorkerURLs; set it explicitly to start a
	// coordinator whose workers all join dynamically.
	Coordinator bool
	// WorkerURLs seeds the coordinator's worker pool with static
	// htserved base URLs; more workers may register at runtime.
	WorkerURLs []string
	// MaxShards bounds how many shards one experiment's trial space
	// splits into (default: twice the static pool, at least 2).
	MaxShards int
	// ShardRetries is how many extra dispatch attempts a failed shard
	// gets, each on the next worker round-robin (default 2).
	ShardRetries int
	// ShardTimeout bounds one shard dispatch attempt (default 5m).
	ShardTimeout time.Duration
	// TenantQuota caps queued-plus-running jobs per tenant (X-Tenant
	// header); beyond it submissions shed with 429, counted per tenant.
	// 0 means no per-tenant cap; anonymous submissions are never capped.
	TenantQuota int

	// Logger receives the service's structured event stream (job
	// lifecycle, fault firings, cache quarantines, dispatch chaos) with
	// trace_id/job_id/shard/tenant/worker attrs. Nil discards — embedders
	// and tests stay quiet by default; cmd/htserved wires os.Stderr
	// through the --log-format/--log-level flags.
	Logger *slog.Logger
	// DisableTracing turns the per-job span trees off. The zero value
	// traces: spans are job-lifecycle-granular (never per-epoch) and the
	// disabled path is the only thing cheaper. With tracing off
	// GET /v1/jobs/{id}/trace answers 404 and the latency-attribution
	// histograms stay at zero.
	DisableTracing bool
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof
	// on the service mux (off by default: profiling endpoints are a
	// deliberate operator opt-in, not ambient surface).
	EnablePprof bool
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Jobs < 1 {
		o.Jobs = 1
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 16
	}
	if o.CacheEntries < 1 {
		o.CacheEntries = 64
	}
	if o.SSEWriteTimeout == 0 {
		o.SSEWriteTimeout = 10 * time.Second
	}
	if len(o.WorkerURLs) > 0 {
		o.Coordinator = true
	}
	if o.Coordinator && o.CheckpointDir == "" && o.JournalDir != "" {
		o.CheckpointDir = filepath.Join(o.JournalDir, "shard-checkpoints")
	}
	if o.Logger == nil {
		o.Logger = obs.Discard()
	}
	return o
}

// Server is the simulation service. Construct with New, mount Handler,
// and Close on shutdown to cancel running jobs.
type Server struct {
	opts    Options
	cache   *cache
	metrics *counters
	faults  *faultinject.Set
	logger  *slog.Logger
	jobs    *manager
	// coord is non-nil in coordinator mode; campaign jobs then execute
	// through it instead of the local campaign builder.
	coord *dist.Coordinator
	mux   *http.ServeMux
}

// New builds a Server (creating the cache and journal directories when
// configured), replays any journaled backlog, and starts the job
// dispatcher. Replay is synchronous: by the time New returns, every
// non-terminal journaled job is back in its original lane and the
// compacted journal has atomically replaced the old one — a crash
// mid-replay leaves the previous journal intact to replay again.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.CacheDir != "" {
		if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: cache dir: %w", err)
		}
	}
	metrics := newCounters()
	logger := opts.Logger
	s := &Server{
		opts: opts,
		cache: newCache(opts.CacheEntries, opts.CacheDir, opts.Faults, func() {
			metrics.inc(&metrics.cacheCorrupt)
			logger.Warn("corrupt disk-cache entry quarantined")
		}),
		metrics: metrics,
		faults:  opts.Faults,
		logger:  logger,
	}
	if opts.Coordinator {
		coord, err := dist.New(dist.Options{
			Workers:       opts.WorkerURLs,
			MaxShards:     opts.MaxShards,
			Retries:       opts.ShardRetries,
			ShardTimeout:  opts.ShardTimeout,
			CheckpointDir: opts.CheckpointDir,
			HedgeDelay:    opts.HedgeDelay,
			Faults:        opts.Faults,
			Logger:        logger,
			Observe: dist.Observe{
				Dispatched:    metrics.shardDispatched,
				Retried:       func() { metrics.inc(&metrics.shardRetries) },
				CacheHit:      func() { metrics.inc(&metrics.shardCacheHits) },
				Checkpointed:  func() { metrics.inc(&metrics.shardsCheckpointed) },
				Resumed:       func() { metrics.inc(&metrics.shardsResumed) },
				Hedged:        func() { metrics.inc(&metrics.shardHedges) },
				BreakerOpened: func() { metrics.inc(&metrics.breakerOpens) },
				ShardRTT:      metrics.observeShardRTT,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("server: coordinator: %w", err)
		}
		s.coord = coord
	}
	var jn *journal
	var pending []journalRecord
	var logPath, newPath string
	if opts.JournalDir != "" {
		if err := os.MkdirAll(opts.JournalDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: journal dir: %w", err)
		}
		logPath = filepath.Join(opts.JournalDir, journalFile)
		newPath = logPath + ".new"
		recs, err := readJournal(logPath)
		if err != nil {
			return nil, fmt.Errorf("server: journal: %w", err)
		}
		pending = pendingRecords(recs)
		if jn, err = openJournal(newPath, opts.Faults, func() { metrics.inc(&metrics.journalAppends) }); err != nil {
			return nil, fmt.Errorf("server: journal: %w", err)
		}
	}
	s.jobs = newManager(opts, s.cache, s.metrics, opts.Faults, s.coord, jn)
	if err := s.replayJournal(pending); err != nil {
		s.jobs.shutdown()
		return nil, err
	}
	if jn != nil {
		// The swap commits the compaction: replayed accepts are already
		// re-journaled in the new file (whose fd stays valid across the
		// rename), and completed or rejected history is gone.
		if err := os.Rename(newPath, logPath); err != nil {
			s.jobs.shutdown()
			return nil, fmt.Errorf("server: journal swap: %w", err)
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmitCampaign)
	s.mux.HandleFunc("POST /v1/sims", s.handleSubmitSim)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDeleteJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("GET /v1/jobs/{id}/artifacts/{file}", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/plugins", s.handlePlugins)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	// Every instance can execute shards; the registration endpoints
	// answer 404 unless this server is a coordinator.
	s.mux.HandleFunc("POST "+dist.ShardPath, s.handleRunShard)
	s.mux.HandleFunc("POST /v1/workers", s.handleRegisterWorker)
	s.mux.HandleFunc("GET /v1/workers", s.handleListWorkers)
	s.mux.HandleFunc("DELETE /v1/workers/{id}", s.handleDeregisterWorker)
	if opts.EnablePprof {
		// Explicit mounts on the service mux — never the blank-import
		// DefaultServeMux registration, which would expose profiling on
		// any handler sharing the process.
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// handleJobTrace serves a job's span tree as JSON — in progress or
// finished (unfinished spans render with in_progress and their duration
// so far). 404 with tracing disabled: absence of a trace is the
// documented signal, not an empty tree.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	root := j.traceRoot()
	if root == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing disabled"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"trace_id": root.TraceID(),
		"job_id":   j.id,
		"root":     root.Tree(),
	})
}

// replayJournal resubmits the journal's pending accepts in their
// original sequence order, before the listener opens. Replayed jobs
// bypass the admission guards (queue depth, tenant quota) — each held a
// slot when first accepted — and are re-journaled into the new live
// journal by the normal accept path. The journal.replay fault point
// models a poisoned record: an injected error fails boot, matching the
// contract that New never half-replays silently.
func (s *Server) replayJournal(pending []journalRecord) error {
	for _, rec := range pending {
		if err := s.faults.Fire(context.Background(), "journal.replay"); err != nil {
			return fmt.Errorf("server: journal replay: %w", err)
		}
		j, err := replayJob(rec)
		if err != nil {
			// The record fsync'd whole but no longer builds a job (schema
			// drift across a version boundary); skipping it is the crash
			// semantics the journal already promises for torn records.
			continue
		}
		if err := s.jobs.submit(j); err != nil {
			return fmt.Errorf("server: journal replay: %w", err)
		}
		s.metrics.inc(&s.metrics.journalReplayed)
	}
	return nil
}

// replayJob rebuilds a submittable job from an accept record, through
// the same parsers the original POST handler used. The cache key is
// recomputed from the body rather than trusted from the record, so a
// replay under a different binary revision correctly misses the cache
// and re-simulates.
func replayJob(rec journalRecord) (*job, error) {
	lane, err := parseLane(rec.Lane)
	if err != nil {
		lane = laneNormal
	}
	j := &job{
		kind:   rec.Kind,
		name:   rec.Name,
		lane:   lane,
		tenant: rec.Tenant,
		body:   []byte(rec.Body),
		replay: true,
	}
	switch rec.Kind {
	case "campaign":
		spec, err := campaign.ParseSpec(j.body)
		if err != nil {
			return nil, err
		}
		j.spec = spec
		j.cacheKey = cacheKeyFor("campaign", spec)
	case "sim":
		req, err := parseSimRequest(j.body)
		if err != nil {
			return nil, err
		}
		j.sim = req
		j.cacheKey = cacheKeyFor("sim", req.cachePayload())
	default:
		return nil, fmt.Errorf("unknown journaled job kind %q", rec.Kind)
	}
	return j, nil
}

// Handler returns the service's HTTP handler, wrapped in the
// per-request recovery layer: a panic in any handler (including one
// injected via the queue.admit fault point) answers that one request
// with a 500 and a counted recovery instead of tearing the connection
// down with a stack trace — and the listener, the dispatcher, and every
// other request keep going.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					// The stdlib's deliberate abort sentinel keeps its meaning.
					panic(rec)
				}
				s.metrics.inc(&s.metrics.panicsRecovered)
				// If the handler already started its response the header is
				// gone; the broken stream is the remaining signal.
				writeError(w, http.StatusInternalServerError, fmt.Errorf("internal panic (recovered): %v", rec))
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// Close cancels every queued and running job and waits for workers to
// unwind. The HTTP listener's lifecycle belongs to the caller.
func (s *Server) Close() { s.jobs.shutdown() }

// maxBodyBytes bounds submission bodies; campaign specs are small.
const maxBodyBytes = 1 << 20

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError renders a JSON error body.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// submit runs the shared enqueue-or-reject tail of both POST handlers.
// The X-Priority header picks the job's queue lane (high, normal, low;
// default normal) and X-Tenant attributes it to a tenant for quota
// accounting. Shed submissions — full queue or exhausted tenant quota —
// get 429 with a Retry-After backoff hint sized to the backlog: load
// shedding is explicit and negotiable, never a silent drop or a
// collapse.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, j *job) {
	lane, err := parseLane(r.Header.Get("X-Priority"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j.lane = lane
	j.tenant = r.Header.Get("X-Tenant")
	if err := s.jobs.submit(j); err != nil {
		if errors.Is(err, errQueueFull) || errors.Is(err, errTenantQuota) {
			w.Header().Set("Retry-After", strconv.Itoa(s.jobs.retryAfterSeconds()))
			writeError(w, http.StatusTooManyRequests, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// handleSubmitCampaign accepts a campaign spec (the specs/paper.json
// schema) and queues it as one job.
func (s *Server) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := campaign.ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.submit(w, r, &job{
		kind:     "campaign",
		name:     spec.Name,
		spec:     spec,
		body:     body,
		cacheKey: cacheKeyFor("campaign", spec),
	})
}

// handleSubmitSim accepts a single-sim request and queues it as one job.
func (s *Server) handleSubmitSim(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req, err := parseSimRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.submit(w, r, &job{
		kind:     "sim",
		name:     fmt.Sprintf("sim %s x%d", req.Mix, req.Threads),
		sim:      req,
		body:     body,
		cacheKey: cacheKeyFor("sim", req.cachePayload()),
	})
}

// handleListJobs lists every job in submission order.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list()})
}

// handleGetJob returns one job's status.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleDeleteJob cancels a queued or running job.
func (s *Server) handleDeleteJob(w http.ResponseWriter, r *http.Request) {
	found, err := s.jobs.cancelJob(r.PathValue("id"))
	if !found {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"state": "cancelling"})
}

// artifactName validates {file} path values: a lower-case table name plus
// a rendering format ("e3.json", "run.csv", ...).
var artifactName = regexp.MustCompile(`^([a-z0-9_-]+)\.(json|csv|txt)$`)

// handleArtifact serves one rendered artifact of a finished job, either
// from the in-memory tables (rendered on demand through the
// internal/results emitters) or streamed from the disk cache tier.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	m := artifactName.FindStringSubmatch(r.PathValue("file"))
	if m == nil {
		writeError(w, http.StatusNotFound, errors.New("artifact names look like e3.json, e3.csv, or e3.txt"))
		return
	}
	base, format := m[1], m[2]
	j.mu.Lock()
	state := j.state
	tables := j.tables
	fromDisk := len(j.diskFiles) > 0
	j.mu.Unlock()
	if state != jobDone {
		writeError(w, http.StatusConflict, fmt.Errorf("job is %s; artifacts exist once it is done", state))
		return
	}
	if fromDisk {
		f, err := s.cache.diskOpen(j.cacheKey, base+"."+format)
		if err != nil {
			writeError(w, http.StatusNotFound, errors.New("no such artifact"))
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", results.ContentType(format))
		io.Copy(w, f)
		return
	}
	for _, t := range tables {
		if strings.ToLower(t.TableMeta().Experiment) != base {
			continue
		}
		w.Header().Set("Content-Type", results.ContentType(format))
		if err := results.WriteFormat(w, t, format); err != nil {
			// Headers are gone; the broken stream is the best signal left.
			return
		}
		return
	}
	writeError(w, http.StatusNotFound, errors.New("no such artifact"))
}

// handlePlugins enumerates every plugin axis and its registered names —
// the service-side mirror of `htcampaign list`.
func (s *Server) handlePlugins(w http.ResponseWriter, r *http.Request) {
	axes := htsim.Axes()
	out := make([]map[string]any, 0, len(axes))
	for _, a := range axes {
		out = append(out, map[string]any{"axis": a.Name, "plugins": a.Plugins})
	}
	writeJSON(w, http.StatusOK, map[string]any{"axes": out})
}

// handleHealthz is the health probe, distinguishing live from ready:
// live means the process is serving HTTP at all (always true if this
// handler runs), ready means it can accept new work (queue has room,
// not shutting down — and, on a coordinator, a quorum of the worker
// pool reachable: a majority, at least one). A degraded service answers
// 503 with live=true so orchestrators stop routing new traffic without
// restarting it; ?probe=live always answers 200 for pure liveness
// checks and never sweeps the worker pool.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ready := s.jobs.ready()
	body := map[string]any{
		"live":     true,
		"ready":    ready,
		"revision": results.Revision(),
	}
	if r.URL.Query().Get("probe") == "live" {
		body["status"] = "ok"
		writeJSON(w, http.StatusOK, body)
		return
	}
	if s.coord != nil {
		pool := s.coord.Health(r.Context())
		body["workers"] = pool
		if !pool.Ready() {
			ready = false
			body["ready"] = false
		}
	}
	status := http.StatusOK
	body["status"] = "ok"
	if !ready {
		status = http.StatusServiceUnavailable
		body["status"] = "degraded"
		w.Header().Set("Retry-After", strconv.Itoa(s.jobs.retryAfterSeconds()))
	}
	writeJSON(w, status, body)
}

// handleMetrics snapshots the counters — once, in a single lock
// acquisition — and renders the snapshot in the requested format: the
// original expvar-style JSON object (default, byte-compatible with every
// earlier release) or Prometheus text exposition (?format=prometheus,
// adding the job-duration histogram and the gauges a scraper wants).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	if format != "" && format != "prometheus" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown metrics format %q (known: prometheus)", format))
		return
	}
	queued, running := s.jobs.queueDepths()
	v := s.metrics.view(queued, running, s.jobs.sseSubscribers(), s.faults.Counts())
	if format == "prometheus" {
		w.Header().Set("Content-Type", promContentType)
		v.writePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, v.json())
}
