package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/faultinject"
)

// This file is the write-ahead job journal: with --journal-dir set,
// every accepted submission is appended (and fsync'd) to journal.log
// before its 202 goes out, and every terminal transition appends a
// matching terminal record. On boot the server replays accepts that
// never reached a terminal state, re-enqueuing them in their original
// order — so a kill -9 mid-backlog costs nothing but the time to redo
// work that never finished, and (through the content-addressed caches)
// usually not even that.
//
// Format: one JSON object per line, append-only. An accept record
// carries everything needed to resubmit the job (the raw request body,
// kind, lane, tenant, and the content-address the cache tiers key on);
// a terminal record references its accept's sequence number. The file
// is compacted copy-then-swap at boot: replayed accepts are re-written
// into journal.log.new (becoming that boot's live journal), and the
// rename happens only after replay succeeds — a crash mid-replay
// leaves the previous journal intact to replay again.
//
// Torn writes are expected: a crash (or a lying disk, simulated by the
// journal.write partial-write fault) can cut a line mid-byte. Records
// are framed with a leading newline, so a torn line can never glue
// itself onto the next healthy record; replay skips any line that
// fails to parse and keeps everything that does. A tear costs exactly
// the torn record — equivalent to crashing before its append.
//
// Two deliberate asymmetries keep the durability contract honest:
// accept appends are load-bearing (an append failure — including an
// injected journal.write fault — rejects the submission, because a job
// the journal cannot hold would be silently lost by a crash), while
// terminal appends are best-effort (losing one re-runs a finished job
// on restart, and the caches make that cheap — at-least-once, never
// lost). And graceful shutdown seals the journal before sweeping
// queued/running jobs to cancelled: those cancellations are shutdown
// artifacts, not user intent, so the jobs stay pending on disk and
// resume on the next boot.

// journalFile is the live journal's name under Options.JournalDir.
const journalFile = "journal.log"

// Journal record types and the synthetic terminal state for submissions
// that were accepted into the journal but shed before enqueueing (queue
// full, tenant quota) — without it a 429'd job would resurrect at boot.
const (
	journalAccept   = "accept"
	journalTerminal = "terminal"
	stateRejected   = "rejected"
)

// journalRecord is one journal line.
type journalRecord struct {
	Seq  int64  `json:"seq"`
	Type string `json:"type"`
	// Accept fields.
	Kind   string          `json:"kind,omitempty"`
	Name   string          `json:"name,omitempty"`
	Lane   string          `json:"lane,omitempty"`
	Tenant string          `json:"tenant,omitempty"`
	Key    string          `json:"key,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	// Terminal fields.
	Ref   int64  `json:"ref,omitempty"`
	State string `json:"state,omitempty"`
}

// journal is the append side. All methods are nil-safe: a server
// without --journal-dir carries a nil journal and every call is a
// no-op.
type journal struct {
	mu     sync.Mutex
	f      *os.File
	seq    int64
	sealed bool
	faults *faultinject.Set
	// onAppend counts accept appends (the journal_appends metric).
	onAppend func()
}

// openJournal creates (truncating) the journal file at path.
func openJournal(path string, faults *faultinject.Set, onAppend func()) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if onAppend == nil {
		onAppend = func() {}
	}
	return &journal{f: f, faults: faults, onAppend: onAppend}, nil
}

// appendAccept journals one accepted submission and stamps the job with
// its journal sequence number. An error (including an injected
// journal.write fault) means the submission must be rejected — the
// journal could not make it durable. A sealed journal accepts nothing:
// the server is shutting down and the listener is about to stop.
func (jn *journal) appendAccept(j *job) error {
	if jn == nil {
		return nil
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.sealed {
		return nil
	}
	jn.seq++
	j.jseq = jn.seq
	rec := journalRecord{
		Seq:    jn.seq,
		Type:   journalAccept,
		Kind:   j.kind,
		Name:   j.name,
		Lane:   laneName(j.lane),
		Tenant: j.tenant,
		Key:    j.cacheKey,
		Body:   json.RawMessage(j.body),
	}
	if err := jn.appendLocked(rec); err != nil {
		j.jseq = 0
		return err
	}
	jn.onAppend()
	return nil
}

// appendTerminal journals a job's terminal transition. Best-effort: a
// lost terminal record re-runs the job at boot (at-least-once), so
// errors are swallowed rather than failing a job that already holds its
// result. Sealed journals skip the write — see the file comment.
func (jn *journal) appendTerminal(ref int64, state string) {
	if jn == nil || ref == 0 {
		return
	}
	jn.mu.Lock()
	defer jn.mu.Unlock()
	if jn.sealed {
		return
	}
	jn.seq++
	jn.appendLocked(journalRecord{Seq: jn.seq, Type: journalTerminal, Ref: ref, State: state})
}

// appendLocked writes one record line and fsyncs; jn.mu held. The
// journal.write fault point models a failing journal disk; its Writer
// wrap models a torn line (which replay's tail tolerance absorbs).
func (jn *journal) appendLocked(rec journalRecord) error {
	if err := jn.faults.Fire(context.Background(), "journal.write"); err != nil {
		return fmt.Errorf("journal write: %w", err)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	// The leading newline is tear isolation: if the previous append was
	// truncated mid-line, this record still starts on a line of its own
	// and replay loses only the torn one.
	line := make([]byte, 0, len(b)+2)
	line = append(append(append(line, '\n'), b...), '\n')
	if _, err := jn.faults.Writer("journal.write", jn.f).Write(line); err != nil {
		return fmt.Errorf("journal write: %w", err)
	}
	if err := jn.f.Sync(); err != nil {
		return fmt.Errorf("journal sync: %w", err)
	}
	return nil
}

// seal stops all journaling: graceful shutdown calls it before sweeping
// jobs to cancelled, so interrupted-by-shutdown jobs keep their pending
// accept records and replay on the next boot.
func (jn *journal) seal() {
	if jn == nil {
		return
	}
	jn.mu.Lock()
	jn.sealed = true
	jn.f.Sync()
	jn.mu.Unlock()
}

// readJournal parses a journal file into its trusted records. A
// missing file is an empty journal. Malformed lines — the torn tail of
// a crash mid-append, or a mid-file tear isolated by the next record's
// leading newline — are skipped: every line that parses was fsync'd
// whole and is trusted, every line that doesn't is a record whose
// append never durably completed.
func readJournal(path string) ([]journalRecord, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var recs []journalRecord
	for len(b) > 0 {
		line := b
		if i := indexByte(b, '\n'); i >= 0 {
			line, b = b[:i], b[i+1:]
		} else {
			b = nil
		}
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if json.Unmarshal(line, &rec) != nil {
			continue
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// indexByte is bytes.IndexByte without pulling bytes into this file's
// imports for one call.
func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// pendingRecords filters a journal to the accepts that never reached a
// terminal state, in original (sequence) order — the replay set.
func pendingRecords(recs []journalRecord) []journalRecord {
	terminal := make(map[int64]bool)
	for _, r := range recs {
		if r.Type == journalTerminal {
			terminal[r.Ref] = true
		}
	}
	var pending []journalRecord
	for _, r := range recs {
		if r.Type == journalAccept && !terminal[r.Seq] {
			pending = append(pending, r)
		}
	}
	return pending
}
