package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the live-progress side of the service: every job owns an
// eventLog that buffers its typed events (state transitions, experiment
// lifecycle, per-epoch samples bridged from the pkg/htsim Observer API),
// and GET /v1/jobs/{id}/events replays the buffer and then streams new
// events as Server-Sent Events until the job finishes or the client
// disconnects.
//
// The fan-out is hardened against misbehaving consumers: a subscriber
// that cannot keep up has its oldest buffered events dropped (counted in
// /v1/metrics as sse_events_dropped) instead of being disconnected or —
// worse — allowed to stall the simulation goroutines publishing into the
// log. Event ids are monotonic, so a consumer sees the gap and can
// reconnect with a Last-Event-ID header to replay what the log still
// buffers; the stream opens with an SSE `retry:` hint so EventSource
// clients back off sanely between reconnects. Subscriber slots are
// released on every exit path (client disconnect, injected write fault,
// log close), which the leak test pins at exactly zero residents.

// event is one Server-Sent Event, pre-rendered at publish time: id is
// the monotonically increasing sequence number and wire is the complete
// `id:`/`event:`/`data:` frame. Rendering once in publish means a
// fan-out to N subscribers costs one JSON marshal and one frame format
// total — each subscriber goroutine just writes the shared bytes (the
// slice is never mutated after publish, so sharing is safe).
type event struct {
	id   int
	wire []byte
}

// maxBufferedEvents caps an eventLog's replay buffer. A paper-scale
// campaign streams tens of thousands of epoch samples; the buffer keeps
// the most recent window and late subscribers miss the oldest events
// (their ids reveal the gap).
const maxBufferedEvents = 8192

// defaultSubscriberBuffer is each subscriber's channel capacity when the
// server options don't override it. A consumer that falls further behind
// than this starts losing its oldest buffered events (drop-oldest),
// never stalling the publisher.
const defaultSubscriberBuffer = 1024

// retryHintMillis is the SSE `retry:` reconnection hint sent at stream
// start: how long a disconnected client should wait before dialling
// back.
const retryHintMillis = 2000

// eventLog buffers a job's events for replay and fans new events out to
// live subscribers. Publishing never blocks on slow consumers.
type eventLog struct {
	mu     sync.Mutex
	next   int
	events []event
	subs   map[int]chan event
	nextID int
	closed bool
	// buffer is each subscriber's channel capacity; dropped counts
	// drop-oldest evictions across all subscribers (shared with the
	// service-wide metric, never nil).
	buffer  int
	dropped *atomic.Int64
}

// newEventLog returns an empty open log. buffer < 1 takes the default
// subscriber capacity; dropped may be nil (a private counter is used).
func newEventLog(buffer int, dropped *atomic.Int64) *eventLog {
	if buffer < 1 {
		buffer = defaultSubscriberBuffer
	}
	if dropped == nil {
		dropped = new(atomic.Int64)
	}
	return &eventLog{subs: make(map[int]chan event), buffer: buffer, dropped: dropped}
}

// publish appends one event (marshalling v as its JSON payload) and wakes
// subscribers. A subscriber whose buffer is full loses its oldest
// buffered event to make room (drop-oldest, counted); publishing never
// blocks and never disconnects. Publishing on a closed log is a no-op.
func (l *eventLog) publish(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Payloads are plain structs assembled here; a marshal failure is a
		// programming error surfaced in the stream rather than hidden.
		data = []byte(fmt.Sprintf("{\"error\":%q}", err.Error()))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev := event{id: l.next, wire: []byte(fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", l.next, name, data))}
	l.next++
	l.events = append(l.events, ev)
	if len(l.events) > maxBufferedEvents {
		l.events = l.events[len(l.events)-maxBufferedEvents:]
	}
	for _, ch := range l.subs {
		select {
		case ch <- ev:
			continue
		default:
		}
		// Full buffer: evict the subscriber's oldest event to make room.
		// The receives/sends race benignly with the consumer draining —
		// whichever side wins, the new event lands or is counted dropped.
		select {
		case <-ch:
			l.dropped.Add(1)
		default:
		}
		select {
		case ch <- ev:
		default:
			l.dropped.Add(1)
		}
	}
}

// close seals the log: subscribers' channels are closed after the replay
// buffer they already received, and future subscribes replay then end
// immediately.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for id, ch := range l.subs {
		close(ch)
		delete(l.subs, id)
	}
}

// subscribe returns the buffered events with id > after (-1 replays
// everything the log still holds — Last-Event-ID resume passes the last
// id the client saw), a channel of subsequent events (closed when the
// log closes), and a cancel function the subscriber must call when done.
func (l *eventLog) subscribe(after int) (replay []event, ch <-chan event, cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.events {
		if ev.id > after {
			replay = append(replay, ev)
		}
	}
	c := make(chan event, l.buffer)
	if l.closed {
		close(c)
		return replay, c, func() {}
	}
	id := l.nextID
	l.nextID++
	l.subs[id] = c
	return replay, c, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, ok := l.subs[id]; ok {
			close(c)
			delete(l.subs, id)
		}
	}
}

// subscribers reports the live subscriber count — the leak test's probe.
func (l *eventLog) subscribers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.subs)
}

// writeEvent emits one pre-rendered event frame, firing the sse.write
// fault point first so chaos runs can sever or stall individual streams.
// Each write runs under its own deadline (Options.SSEWriteTimeout) via
// the ResponseController: a subscriber whose TCP window has been stuck
// longer than the timeout gets a write error and is disconnected,
// instead of parking this goroutine (and its subscriber slot) forever
// on an unacknowledged socket. The deadline is per-frame, not
// per-stream — an idle but healthy subscriber can stay connected for
// hours.
func (s *Server) writeEvent(w http.ResponseWriter, rc *http.ResponseController, r *http.Request, ev event) error {
	if err := s.faults.Fire(r.Context(), "sse.write"); err != nil {
		return err
	}
	if d := s.opts.SSEWriteTimeout; d > 0 {
		// ErrNotSupported (e.g. a bare httptest recorder) downgrades to an
		// unbounded write rather than killing the stream.
		if err := rc.SetWriteDeadline(time.Now().Add(d)); err != nil && !errors.Is(err, http.ErrNotSupported) {
			return err
		}
	}
	_, err := w.Write(ev.wire)
	return err
}

// lastEventID parses the SSE resume header; absent or malformed means
// "replay everything".
func lastEventID(r *http.Request) int {
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if id, err := strconv.Atoi(v); err == nil {
			return id
		}
	}
	return -1
}

// handleEvents streams a job's event log as Server-Sent Events: a
// reconnect backoff hint, then the buffered history (everything after
// the client's Last-Event-ID, when sent), then live events until the job
// finishes or the client disconnects. The deferred cancel releases the
// subscriber slot on every exit path — write failure, injected fault, or
// context cancellation — so disconnected watchers never accumulate.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.lookup(r.PathValue("id"))
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	fmt.Fprintf(w, "retry: %d\n\n", retryHintMillis)
	replay, ch, cancel := j.events.subscribe(lastEventID(r))
	defer cancel()
	for _, ev := range replay {
		if err := s.writeEvent(w, rc, r, ev); err != nil {
			return
		}
	}
	fl.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			if err := s.writeEvent(w, rc, r, ev); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
