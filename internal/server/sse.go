package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
)

// This file is the live-progress side of the service: every job owns an
// eventLog that buffers its typed events (state transitions, experiment
// lifecycle, per-epoch samples bridged from the pkg/htsim Observer API),
// and GET /v1/jobs/{id}/events replays the buffer and then streams new
// events as Server-Sent Events until the job finishes or the client
// disconnects.

// event is one Server-Sent Event: a monotonically increasing id, an event
// name ("state", "experiment", "epoch"), and a JSON payload.
type event struct {
	id   int
	name string
	data []byte
}

// maxBufferedEvents caps an eventLog's replay buffer. A paper-scale
// campaign streams tens of thousands of epoch samples; the buffer keeps
// the most recent window and late subscribers miss the oldest events
// (their ids reveal the gap).
const maxBufferedEvents = 8192

// subscriberBuffer is each subscriber's channel capacity. A consumer that
// falls further behind than this is disconnected rather than allowed to
// stall the simulation goroutines publishing into the log.
const subscriberBuffer = 1024

// eventLog buffers a job's events for replay and fans new events out to
// live subscribers. Publishing never blocks on slow consumers.
type eventLog struct {
	mu     sync.Mutex
	next   int
	events []event
	subs   map[int]chan event
	nextID int
	closed bool
}

// newEventLog returns an empty open log.
func newEventLog() *eventLog { return &eventLog{subs: make(map[int]chan event)} }

// publish appends one event (marshalling v as its JSON payload) and wakes
// subscribers. Publishing on a closed log is a no-op.
func (l *eventLog) publish(name string, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		// Payloads are plain structs assembled here; a marshal failure is a
		// programming error surfaced in the stream rather than hidden.
		data = []byte(fmt.Sprintf("{\"error\":%q}", err.Error()))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev := event{id: l.next, name: name, data: data}
	l.next++
	l.events = append(l.events, ev)
	if len(l.events) > maxBufferedEvents {
		l.events = l.events[len(l.events)-maxBufferedEvents:]
	}
	for id, ch := range l.subs {
		select {
		case ch <- ev:
		default:
			// The subscriber is too far behind: disconnect it instead of
			// blocking the simulation goroutine.
			close(ch)
			delete(l.subs, id)
		}
	}
}

// close seals the log: subscribers' channels are closed after the replay
// buffer they already received, and future subscribes replay then end
// immediately.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for id, ch := range l.subs {
		close(ch)
		delete(l.subs, id)
	}
}

// subscribe returns the buffered replay, a channel of subsequent events
// (closed when the log closes or the subscriber falls behind), and a
// cancel function the subscriber must call when done.
func (l *eventLog) subscribe() (replay []event, ch <-chan event, cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	replay = append([]event(nil), l.events...)
	c := make(chan event, subscriberBuffer)
	if l.closed {
		close(c)
		return replay, c, func() {}
	}
	id := l.nextID
	l.nextID++
	l.subs[id] = c
	return replay, c, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, ok := l.subs[id]; ok {
			close(c)
			delete(l.subs, id)
		}
	}
}

// writeEvent emits one event in SSE wire format.
func writeEvent(w http.ResponseWriter, ev event) error {
	_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.id, ev.name, ev.data)
	return err
}

// handleEvents streams a job's event log as Server-Sent Events: the
// buffered history first, then live events until the job finishes, the
// client disconnects, or the consumer falls too far behind.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.lookup(r.PathValue("id"))
	if j == nil {
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	replay, ch, cancel := j.events.subscribe()
	defer cancel()
	for _, ev := range replay {
		if err := writeEvent(w, ev); err != nil {
			return
		}
	}
	fl.Flush()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			if err := writeEvent(w, ev); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
