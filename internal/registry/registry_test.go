package registry

import (
	"strings"
	"testing"
)

func newTestRegistry() *Registry[string] {
	r := New[string]("axis", "widget")
	r.Register("alpha", func() string { return "A" })
	r.Register("beta", func() string { return "B" })
	r.Register("gamma", func() string { return "C" })
	return r
}

func TestLookup(t *testing.T) {
	r := newTestRegistry()
	v, err := r.Lookup("beta")
	if err != nil {
		t.Fatalf("Lookup(beta): %v", err)
	}
	if v != "B" {
		t.Fatalf("Lookup(beta) = %q, want B", v)
	}
}

func TestUnknownNameError(t *testing.T) {
	r := newTestRegistry()
	_, err := r.Lookup("delta")
	if err == nil {
		t.Fatal("unknown name must fail")
	}
	want := `axis: unknown widget "delta" (known: alpha, beta, gamma)`
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err.Error(), want)
	}
}

func TestNamesKeepRegistrationOrder(t *testing.T) {
	r := newTestRegistry()
	got := strings.Join(r.Names(), ",")
	if got != "alpha,beta,gamma" {
		t.Fatalf("Names = %s, want registration order", got)
	}
	// The returned slice is a copy: mutating it must not corrupt the
	// registry.
	names := r.Names()
	names[0] = "zzz"
	if r.Names()[0] != "alpha" {
		t.Fatal("Names must return a copy")
	}
}

func TestAllInstantiatesEveryPlugin(t *testing.T) {
	r := newTestRegistry()
	all := r.All()
	if len(all) != 3 || all[0] != "A" || all[1] != "B" || all[2] != "C" {
		t.Fatalf("All = %v", all)
	}
}

func TestAliasResolvesButStaysOutOfListings(t *testing.T) {
	r := newTestRegistry()
	r.Alias("a", "alpha")
	v, err := r.Lookup("a")
	if err != nil || v != "A" {
		t.Fatalf("Lookup(alias) = %q, %v", v, err)
	}
	if len(r.Names()) != 3 {
		t.Fatalf("aliases must not appear in Names: %v", r.Names())
	}
	c, err := r.Canonical("a")
	if err != nil || c != "alpha" {
		t.Fatalf("Canonical(a) = %q, %v", c, err)
	}
	if !r.Has("a") || !r.Has("alpha") || r.Has("zeta") {
		t.Fatal("Has must resolve names and aliases only")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := newTestRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register must panic")
		}
	}()
	r.Register("alpha", func() string { return "again" })
}

func TestAliasForMissingCanonicalPanics(t *testing.T) {
	r := newTestRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("alias to unregistered name must panic")
		}
	}()
	r.Alias("x", "missing")
}

func TestFactoryRunsPerLookup(t *testing.T) {
	r := New[*int]("axis", "counter")
	n := 0
	r.Register("count", func() *int { n++; v := n; return &v })
	a, _ := r.Lookup("count")
	b, _ := r.Lookup("count")
	if *a == *b {
		t.Fatal("each Lookup must invoke the factory")
	}
}
