// Package registry provides the generic plugin registry behind every
// swappable axis of the simulator — topologies, routing algorithms, budget
// allocators, manager-side defenses, Trojan strategies and attack modes,
// workload profiles, mixes, and placement generators. Each axis package
// declares one Registry[T] and registers its implementations by name at
// init time; the SDK (pkg/htsim), the CLIs, and the campaign engine all
// resolve and enumerate plugins through it, so an implementation
// registered once is discoverable everywhere with a single shared
// "unknown name" error path.
package registry

import (
	"fmt"
	"strings"
	"sync"
)

// Registry is a named collection of plugin factories for one axis. Names
// keep their registration order, which makes Names and All deterministic:
// each axis registers its plugins from a single init function, so the
// order is fixed at compile time (and matches the historical hand-rolled
// lists the registry replaced). A Registry is safe for concurrent lookups;
// registration is expected to happen at package init time.
type Registry[T any] struct {
	// kind labels the axis in error messages, e.g. "budget: unknown
	// allocator ...".
	pkg, kind string

	mu      sync.RWMutex
	names   []string // canonical names in registration order
	entries map[string]entry[T]
}

// entry is one registered plugin (or an alias pointing at one).
type entry[T any] struct {
	factory   func() T
	canonical string
}

// New creates an empty registry for one plugin axis. pkg is the owning
// package name and kind the plugin noun, both used verbatim in error
// messages ("<pkg>: unknown <kind> %q (known: ...)").
func New[T any](pkg, kind string) *Registry[T] {
	return &Registry[T]{pkg: pkg, kind: kind, entries: make(map[string]entry[T])}
}

// Register adds a named plugin factory. The factory is invoked on every
// Lookup, so plugins with mutable state hand out fresh instances. Register
// panics on an empty name or a duplicate: both are programming errors in
// the registering package, not runtime conditions.
func (r *Registry[T]) Register(name string, factory func() T) {
	if name == "" || factory == nil {
		panic(fmt.Sprintf("registry: %s %s registered with empty name or nil factory", r.pkg, r.kind))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("registry: duplicate %s %s %q", r.pkg, r.kind, name))
	}
	r.entries[name] = entry[T]{factory: factory, canonical: name}
	r.names = append(r.names, name)
}

// Alias makes an alternate name resolve to an already-registered plugin.
// Aliases resolve through Lookup but do not appear in Names or All, so
// listings stay canonical. Alias panics if the canonical name is missing
// or the alias collides with an existing name.
func (r *Registry[T]) Alias(alias, canonical string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	target, ok := r.entries[canonical]
	if !ok {
		panic(fmt.Sprintf("registry: alias %q for unregistered %s %s %q", alias, r.pkg, r.kind, canonical))
	}
	if _, dup := r.entries[alias]; dup {
		panic(fmt.Sprintf("registry: duplicate %s %s %q", r.pkg, r.kind, alias))
	}
	r.entries[alias] = entry[T]{factory: target.factory, canonical: canonical}
}

// Lookup resolves a name (or alias) to a fresh plugin instance. Unknown
// names produce the axis's single canonical error, listing every
// registered name in registration order.
func (r *Registry[T]) Lookup(name string) (T, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		var zero T
		return zero, fmt.Errorf("%s: unknown %s %q (known: %s)", r.pkg, r.kind, name, strings.Join(r.Names(), ", "))
	}
	return e.factory(), nil
}

// Canonical resolves a name or alias to its canonical registered name,
// with the same error as Lookup for unknown names.
func (r *Registry[T]) Canonical(name string) (string, error) {
	r.mu.RLock()
	e, ok := r.entries[name]
	r.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("%s: unknown %s %q (known: %s)", r.pkg, r.kind, name, strings.Join(r.Names(), ", "))
	}
	return e.canonical, nil
}

// Has reports whether a name or alias resolves.
func (r *Registry[T]) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.entries[name]
	return ok
}

// Names returns the canonical plugin names in registration order. The
// returned slice is a copy.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// All returns one fresh instance of every registered plugin, in
// registration order.
func (r *Registry[T]) All() []T {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]T, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, r.entries[name].factory())
	}
	return out
}
