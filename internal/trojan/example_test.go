package trojan_test

import (
	"fmt"

	"repro/internal/noc"
	"repro/internal/trojan"
)

// A Trojan fleet is configured by a CONFIG_CMD broadcast and then rewrites
// victim power requests headed to the global manager.
func Example() {
	fleet, err := trojan.NewFleet([]noc.NodeID{5}, trojan.ZeroStrategy{})
	if err != nil {
		fmt.Println(err)
		return
	}

	// The hacker (core 7) broadcasts: manager is node 12, activate now.
	config := &noc.Packet{
		Src: 7, Dst: 5, Type: noc.TypeConfigCmd,
		Payload: noc.ConfigWord(12, true),
	}
	fleet.InspectRC(5, config)

	// A victim's request crosses the infected router.
	request := &noc.Packet{Src: 3, Dst: 12, Type: noc.TypePowerReq, Payload: 3960}
	fleet.InspectRC(5, request)
	fmt.Printf("payload after crossing HT: %d mW (tampered=%v)\n", request.Payload, request.Tampered)

	// The hacker agent's own request passes untouched.
	agent := &noc.Packet{Src: 7, Dst: 12, Type: noc.TypePowerReq, Payload: 3960}
	fleet.InspectRC(5, agent)
	fmt.Printf("agent payload: %d mW (tampered=%v)\n", agent.Payload, agent.Tampered)
	// Output:
	// payload after crossing HT: 0 mW (tampered=true)
	// agent payload: 3960 mW (tampered=false)
}

// Section III-D's stealth arithmetic.
func ExampleReport() {
	r := trojan.Report(60, 512)
	fmt.Printf("60 HTs: %.3f um^2, %.4f uW\n", r.TotalHTAreaUm2, r.TotalHTPowerUW)
	fmt.Printf("fraction of all routers: %.4f%% area, %.5f%% power\n",
		r.AreaFractionOfAllRouters*100, r.PowerFractionOfAllRouters*100)
	// Output:
	// 60 HTs: 730.296 um^2, 33.0108 uW
	// fraction of all routers: 0.0020% area, 0.00020% power
}
