package trojan

import "fmt"

// Strategy is the Trojan's functional module: the payload rewrite applied
// to power requests. Section III-C's circuit rewrites a victim's request
// "to a smaller value" (the diagram shows 0…0); the introduction also
// describes attacker requests being increased. Both behaviours are
// parameterised here so ablations can compare them.
type Strategy interface {
	// TamperVictim rewrites a victim's power request (milliwatts).
	TamperVictim(requestMW uint32) uint32
	// TamperAttacker optionally rewrites an attacker agent's own request;
	// ok is false when the strategy leaves attacker requests alone.
	TamperAttacker(requestMW uint32) (modified uint32, ok bool)
	// Name identifies the strategy in reports.
	Name() string
}

// ZeroStrategy rewrites victim requests to all-zero, exactly as the Fig 2
// circuit draws, and leaves attacker requests alone.
type ZeroStrategy struct{}

var _ Strategy = ZeroStrategy{}

// Name implements Strategy.
func (ZeroStrategy) Name() string { return "zero" }

// TamperVictim implements Strategy.
func (ZeroStrategy) TamperVictim(uint32) uint32 { return 0 }

// TamperAttacker implements Strategy.
func (ZeroStrategy) TamperAttacker(r uint32) (uint32, bool) { return r, false }

// ScaleStrategy multiplies victim requests by VictimFactor (< 1) and, when
// BoostFactor > 1, attacker requests by BoostFactor.
type ScaleStrategy struct {
	// VictimFactor scales victim requests down; must be in [0, 1).
	VictimFactor float64
	// BoostFactor scales attacker requests up; values ≤ 1 disable boosting.
	BoostFactor float64
}

var _ Strategy = ScaleStrategy{}

// DefaultStrategy is the configuration used by the headline experiments:
// victims are cut to a quarter of their ask and attackers boosted by half.
func DefaultStrategy() ScaleStrategy {
	return ScaleStrategy{VictimFactor: 0.25, BoostFactor: 1.5}
}

// Name implements Strategy.
func (s ScaleStrategy) Name() string {
	return fmt.Sprintf("scale(v=%.2f,b=%.2f)", s.VictimFactor, s.BoostFactor)
}

// TamperVictim implements Strategy.
func (s ScaleStrategy) TamperVictim(r uint32) uint32 {
	return uint32(float64(r) * s.VictimFactor)
}

// TamperAttacker implements Strategy.
func (s ScaleStrategy) TamperAttacker(r uint32) (uint32, bool) {
	if s.BoostFactor <= 1 {
		return r, false
	}
	boosted := float64(r) * s.BoostFactor
	if boosted > float64(^uint32(0)) {
		return ^uint32(0), true
	}
	return uint32(boosted), true
}
