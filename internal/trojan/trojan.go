// Package trojan implements the paper's hardware Trojan (Section III): a
// tiny circuit of two registers and three comparators that sits between a
// router's input buffer and its routing-computation module (Fig 2), snoops
// CONFIG_CMD packets to learn the global manager's identity and its
// activation state, and rewrites the payload of POWER_REQ packets that are
// headed to the global manager from non-attacker cores.
package trojan

import (
	"fmt"
	"sort"

	"repro/internal/noc"
)

// AgentMatcher is the Trojan's attacker-identification hardware. Fig 2
// draws a single attacker-ID register; real campaigns run attacker
// applications across many contiguous cores, so the matcher also supports a
// small number of base/length range registers (configured through the
// CONFIG_CMD options field). This is the one place the implementation
// extends the paper's circuit, and it stays hardware-plausible: a range
// register is two comparators.
type AgentMatcher struct {
	singles map[noc.NodeID]struct{}
	ranges  []agentRange
}

type agentRange struct {
	base  noc.NodeID
	count int
}

// maxAgentRegisters bounds the matcher's register file, as real Trojan
// hardware would.
const maxAgentRegisters = 8

// AddSingle registers one attacker core ID. It silently drops entries
// beyond the register-file capacity, as saturating hardware would.
func (a *AgentMatcher) AddSingle(id noc.NodeID) {
	if a.singles == nil {
		a.singles = make(map[noc.NodeID]struct{})
	}
	if len(a.singles)+len(a.ranges) >= maxAgentRegisters {
		return
	}
	a.singles[id] = struct{}{}
}

// AddRange registers a contiguous block of attacker core IDs.
func (a *AgentMatcher) AddRange(base noc.NodeID, count int) {
	if count <= 0 {
		return
	}
	if len(a.singles)+len(a.ranges) >= maxAgentRegisters {
		return
	}
	a.ranges = append(a.ranges, agentRange{base: base, count: count})
}

// Matches reports whether id is a registered attacker agent.
func (a *AgentMatcher) Matches(id noc.NodeID) bool {
	if _, ok := a.singles[id]; ok {
		return true
	}
	for _, r := range a.ranges {
		if id >= r.base && id < r.base+noc.NodeID(r.count) {
			return true
		}
	}
	return false
}

// Mode selects which Section II-B DoS attack class the Trojan implements.
// The paper's contribution is the false-data attack; the drop and
// routing-loop modes exist as taxonomy baselines for comparison.
type Mode int

// Attack modes.
const (
	// ModeFalseData rewrites power-request payloads (the paper's attack).
	ModeFalseData Mode = iota + 1
	// ModeDrop discards matching packets (packet-drop attack).
	ModeDrop
	// ModeLoopback bounces matching packets to their source (routing-loop
	// attack).
	ModeLoopback
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeFalseData:
		return "false-data"
	case ModeDrop:
		return "drop"
	case ModeLoopback:
		return "loopback"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Stats counts one Trojan's activity.
type Stats struct {
	// PowerReqSeen counts POWER_REQ packets that crossed the router.
	PowerReqSeen uint64
	// Modified counts payload rewrites performed.
	Modified uint64
	// Boosted counts attacker-request increases performed.
	Boosted uint64
	// Dropped counts packets condemned in ModeDrop.
	Dropped uint64
	// Looped counts packets bounced in ModeLoopback.
	Looped uint64
	// ConfigsSeen counts CONFIG_CMD packets observed.
	ConfigsSeen uint64
}

// Trojan is one implanted HT instance in one router.
type Trojan struct {
	router noc.NodeID

	// Local registers per Fig 2(a).
	gm         noc.NodeID
	configured bool
	active     bool
	agents     AgentMatcher

	stats Stats
}

// NewTrojan implants an unconfigured, inactive Trojan at router id.
func NewTrojan(router noc.NodeID) *Trojan { return &Trojan{router: router} }

// Router returns the infected router's node ID.
func (t *Trojan) Router() noc.NodeID { return t.router }

// Configured reports whether a CONFIG_CMD has been latched.
func (t *Trojan) Configured() bool { return t.configured }

// Active reports the current activation state.
func (t *Trojan) Active() bool { return t.active }

// Stats returns the Trojan's activity counters.
func (t *Trojan) Stats() Stats { return t.stats }

// observe processes one packet passing the infected router's RC stage,
// applying strategy when the trigger condition of Section III-B holds. The
// returned verdict is VerdictForward except for the drop and loopback
// taxonomy modes.
func (t *Trojan) observe(p *noc.Packet, strategy Strategy, mode Mode) noc.Verdict {
	switch p.Type {
	case noc.TypeConfigCmd:
		t.latchConfig(p)
	case noc.TypePowerReq:
		t.stats.PowerReqSeen++
		if !t.configured || !t.active || p.Dst != t.gm {
			return noc.VerdictForward
		}
		p.HTSeen = true
		if t.agents.Matches(p.Src) {
			if boosted, ok := strategy.TamperAttacker(p.Payload); ok && !p.Tampered && mode == ModeFalseData {
				p.Payload = boosted
				p.Tampered = true
				t.stats.Boosted++
			}
			return noc.VerdictForward
		}
		// Trigger condition met: destination is the global manager and the
		// source is not a hacker agent.
		switch mode {
		case ModeDrop:
			t.stats.Dropped++
			return noc.VerdictDrop
		case ModeLoopback:
			if p.LoopedBack {
				return noc.VerdictForward // already bounced once
			}
			t.stats.Looped++
			return noc.VerdictLoopback
		}
		// ModeFalseData: the functional module rewrites the power-request
		// value. Rewrites are idempotent across multiple HTs on one path:
		// the first infected router does the damage.
		if p.Tampered {
			return noc.VerdictForward
		}
		p.Payload = strategy.TamperVictim(p.Payload)
		p.Tampered = true
		t.stats.Modified++
	}
	return noc.VerdictForward
}

// latchConfig stores the attacker's parameters from a CONFIG_CMD packet:
// the global manager ID and activation signal from the packed type word
// (Fig 1b), the hacker agent's own ID from the source-address field, and
// optional (base, count) agent ranges from the options field.
func (t *Trojan) latchConfig(p *noc.Packet) {
	t.stats.ConfigsSeen++
	gm, active := noc.ParseConfigWord(p.Payload)
	t.gm = gm
	t.active = active
	t.configured = true
	t.agents.AddSingle(p.Src)
	for i := 0; i+1 < len(p.Options); i += 2 {
		t.agents.AddRange(noc.NodeID(p.Options[i]), int(p.Options[i+1]))
	}
}

// Fleet is the set of Trojans implanted in a chip. It implements
// noc.Inspector, dispatching RC-stage packets to the Trojan in the matching
// router.
type Fleet struct {
	trojans  map[noc.NodeID]*Trojan
	strategy Strategy
	mode     Mode
}

var _ noc.Inspector = (*Fleet)(nil)

// NewFleet implants Trojans at the given routers with the given payload
// strategy, in the paper's false-data mode. Duplicate router IDs are
// rejected.
func NewFleet(routers []noc.NodeID, strategy Strategy) (*Fleet, error) {
	if strategy == nil {
		return nil, fmt.Errorf("trojan: fleet needs a strategy")
	}
	f := &Fleet{
		trojans:  make(map[noc.NodeID]*Trojan, len(routers)),
		strategy: strategy,
		mode:     ModeFalseData,
	}
	for _, r := range routers {
		if _, dup := f.trojans[r]; dup {
			return nil, fmt.Errorf("trojan: duplicate Trojan at router %d", r)
		}
		f.trojans[r] = NewTrojan(r)
	}
	return f, nil
}

// SetMode switches the fleet to another Section II-B attack class.
func (f *Fleet) SetMode(m Mode) error {
	switch m {
	case ModeFalseData, ModeDrop, ModeLoopback:
		f.mode = m
		return nil
	default:
		return fmt.Errorf("trojan: invalid mode %d", int(m))
	}
}

// Mode returns the fleet's attack class.
func (f *Fleet) Mode() Mode { return f.mode }

// InspectRC implements noc.Inspector.
func (f *Fleet) InspectRC(router noc.NodeID, p *noc.Packet) noc.Verdict {
	if t, ok := f.trojans[router]; ok {
		return t.observe(p, f.strategy, f.mode)
	}
	return noc.VerdictForward
}

// Size returns the number of implanted Trojans.
func (f *Fleet) Size() int { return len(f.trojans) }

// Locations returns the infected router IDs in ascending order.
func (f *Fleet) Locations() []noc.NodeID {
	out := make([]noc.NodeID, 0, len(f.trojans))
	for r := range f.trojans {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// At returns the Trojan at router id, or nil.
func (f *Fleet) At(id noc.NodeID) *Trojan { return f.trojans[id] }

// TotalStats sums all Trojans' counters.
func (f *Fleet) TotalStats() Stats {
	var s Stats
	for _, t := range f.trojans {
		s.PowerReqSeen += t.stats.PowerReqSeen
		s.Modified += t.stats.Modified
		s.Boosted += t.stats.Boosted
		s.Dropped += t.stats.Dropped
		s.Looped += t.stats.Looped
		s.ConfigsSeen += t.stats.ConfigsSeen
	}
	return s
}
