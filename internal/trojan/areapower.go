package trojan

// Section III-D area and power accounting. The constants are the paper's
// published synthesis results (Synopsys Design Compiler, TSMC 45 nm for the
// HT; DSENT for the router); this file reproduces the bookkeeping built on
// top of them, including the headline "0.017 % of a router" stealth ratios.
const (
	// HTAreaUm2 is one Trojan's area (µm², Section III-D).
	HTAreaUm2 = 12.1716
	// HTPowerUW is one Trojan's power (µW, Section III-D).
	HTPowerUW = 0.55018
	// RouterAreaUm2 is the area of one 4-VC, 5-flit-FIFO router (µm²,
	// DSENT, Section III-D).
	RouterAreaUm2 = 71814.0
	// RouterPowerUW is the power of the same router (µW, Section III-D).
	RouterPowerUW = 31881.0
)

// CircuitInventory is the gate-level content of one HT per Fig 2(a): three
// comparators and two registers wedged between the input buffer and the
// routing-computation module.
type CircuitInventory struct {
	// Comparators counts the match comparators (config-command, attacker
	// agent, global manager).
	Comparators int
	// ComparatorBits is the width of each comparator.
	ComparatorBits int
	// Registers counts the configuration registers (attacker ID, global
	// manager ID + activation).
	Registers int
	// RegisterBits is the width of each register.
	RegisterBits int
}

// DefaultInventory returns the Fig 2(a) circuit: 3 comparators and 2
// registers, 16 bits each (the packet address-field width).
func DefaultInventory() CircuitInventory {
	return CircuitInventory{Comparators: 3, ComparatorBits: 16, Registers: 2, RegisterBits: 16}
}

// TransistorEstimate returns a rough transistor count: ~10 transistors per
// comparator bit (XNOR + AND tree share) and ~12 per register bit (D
// flip-flop). It documents why the HT is "extremely hard to detect": a few
// hundred transistors against a billion-transistor chip.
func (c CircuitInventory) TransistorEstimate() int {
	return c.Comparators*c.ComparatorBits*10 + c.Registers*c.RegisterBits*12
}

// AreaPowerReport is the Section III-D comparison for a fleet of nHTs
// Trojans on a chip with nodes routers.
type AreaPowerReport struct {
	HTs   int
	Nodes int
	// TotalHTAreaUm2 is nHTs × HTAreaUm2.
	TotalHTAreaUm2 float64
	// TotalHTPowerUW is nHTs × HTPowerUW.
	TotalHTPowerUW float64
	// AreaFractionOfRouter is one HT's area over one router's area.
	AreaFractionOfRouter float64
	// PowerFractionOfRouter is one HT's power over one router's power.
	PowerFractionOfRouter float64
	// AreaFractionOfAllRouters is the fleet's area over all routers' area.
	AreaFractionOfAllRouters float64
	// PowerFractionOfAllRouters is the fleet's power over all routers'
	// power.
	PowerFractionOfAllRouters float64
}

// Report computes the Section III-D table for nHTs Trojans on an
// nodes-router chip.
func Report(nHTs, nodes int) AreaPowerReport {
	return AreaPowerReport{
		HTs:                       nHTs,
		Nodes:                     nodes,
		TotalHTAreaUm2:            float64(nHTs) * HTAreaUm2,
		TotalHTPowerUW:            float64(nHTs) * HTPowerUW,
		AreaFractionOfRouter:      HTAreaUm2 / RouterAreaUm2,
		PowerFractionOfRouter:     HTPowerUW / RouterPowerUW,
		AreaFractionOfAllRouters:  float64(nHTs) * HTAreaUm2 / (float64(nodes) * RouterAreaUm2),
		PowerFractionOfAllRouters: float64(nHTs) * HTPowerUW / (float64(nodes) * RouterPowerUW),
	}
}
