package trojan

import (
	"math"
	"testing"

	"repro/internal/noc"
)

func configPacket(src, gm noc.NodeID, active bool, ranges ...uint32) *noc.Packet {
	return &noc.Packet{
		Src: src, Dst: 0, Type: noc.TypeConfigCmd,
		Payload: noc.ConfigWord(gm, active),
		Options: ranges,
	}
}

func powerReq(src, dst noc.NodeID, mw uint32) *noc.Packet {
	p := &noc.Packet{Src: src, Dst: dst, Type: noc.TypePowerReq, Payload: mw}
	p.OriginalPayload = mw
	return p
}

func TestUnconfiguredTrojanIsInert(t *testing.T) {
	tr := NewTrojan(5)
	p := powerReq(1, 9, 4000)
	tr.observe(p, ZeroStrategy{}, ModeFalseData)
	if p.Tampered || p.Payload != 4000 {
		t.Error("unconfigured Trojan must not modify packets")
	}
	if tr.Configured() || tr.Active() {
		t.Error("fresh Trojan must be unconfigured and inactive")
	}
}

func TestConfigLatching(t *testing.T) {
	tr := NewTrojan(5)
	tr.observe(configPacket(7, 119, true), ZeroStrategy{}, ModeFalseData)
	if !tr.Configured() || !tr.Active() {
		t.Fatal("config packet must configure and activate")
	}
	if tr.gm != 119 {
		t.Errorf("gm register = %d, want 119", tr.gm)
	}
	if !tr.agents.Matches(7) {
		t.Error("config source must be registered as attacker agent")
	}
	if tr.Stats().ConfigsSeen != 1 {
		t.Errorf("ConfigsSeen = %d, want 1", tr.Stats().ConfigsSeen)
	}
}

func TestVictimTampering(t *testing.T) {
	tr := NewTrojan(5)
	tr.observe(configPacket(7, 119, true), ZeroStrategy{}, ModeFalseData)
	p := powerReq(3, 119, 4000) // victim: src 3 is not an agent, dst is GM
	tr.observe(p, ZeroStrategy{}, ModeFalseData)
	if !p.Tampered || p.Payload != 0 {
		t.Errorf("payload = %d tampered = %v, want 0/true", p.Payload, p.Tampered)
	}
	if tr.Stats().Modified != 1 || tr.Stats().PowerReqSeen != 1 {
		t.Errorf("stats = %+v", tr.Stats())
	}
}

func TestAgentRequestNotCutByZeroStrategy(t *testing.T) {
	tr := NewTrojan(5)
	tr.observe(configPacket(7, 119, true), ZeroStrategy{}, ModeFalseData)
	p := powerReq(7, 119, 4000) // the agent itself
	tr.observe(p, ZeroStrategy{}, ModeFalseData)
	if p.Tampered || p.Payload != 4000 {
		t.Error("agent's own request must pass untouched under ZeroStrategy")
	}
}

func TestWrongDestinationIgnored(t *testing.T) {
	tr := NewTrojan(5)
	tr.observe(configPacket(7, 119, true), ZeroStrategy{}, ModeFalseData)
	p := powerReq(3, 42, 4000) // not the global manager
	tr.observe(p, ZeroStrategy{}, ModeFalseData)
	if p.Tampered {
		t.Error("requests not headed to the GM must pass untouched")
	}
}

func TestDeactivationViaConfig(t *testing.T) {
	tr := NewTrojan(5)
	tr.observe(configPacket(7, 119, true), ZeroStrategy{}, ModeFalseData)
	tr.observe(configPacket(7, 119, false), ZeroStrategy{}, ModeFalseData) // OFF signal
	if tr.Active() {
		t.Fatal("OFF config must deactivate")
	}
	p := powerReq(3, 119, 4000)
	tr.observe(p, ZeroStrategy{}, ModeFalseData)
	if p.Tampered {
		t.Error("deactivated Trojan must forward unmodified (Section III-B)")
	}
	// Duty cycling: reactivate.
	tr.observe(configPacket(7, 119, true), ZeroStrategy{}, ModeFalseData)
	p2 := powerReq(3, 119, 4000)
	tr.observe(p2, ZeroStrategy{}, ModeFalseData)
	if !p2.Tampered {
		t.Error("reactivated Trojan must tamper again")
	}
}

func TestAgentRangeMatching(t *testing.T) {
	tr := NewTrojan(5)
	// Range [64, 128): 64 attacker cores.
	tr.observe(configPacket(7, 119, true, 64, 64), ZeroStrategy{}, ModeFalseData)
	for _, id := range []noc.NodeID{64, 100, 127} {
		p := powerReq(id, 119, 4000)
		tr.observe(p, ZeroStrategy{}, ModeFalseData)
		if p.Tampered {
			t.Errorf("agent %d in range must not be victimised", id)
		}
	}
	for _, id := range []noc.NodeID{63, 128, 3} {
		p := powerReq(id, 119, 4000)
		tr.observe(p, ZeroStrategy{}, ModeFalseData)
		if !p.Tampered {
			t.Errorf("victim %d outside range must be tampered", id)
		}
	}
}

func TestScaleStrategyBoostsAttackers(t *testing.T) {
	tr := NewTrojan(5)
	s := ScaleStrategy{VictimFactor: 0.25, BoostFactor: 1.5}
	tr.observe(configPacket(7, 119, true), s, ModeFalseData)
	victim := powerReq(3, 119, 4000)
	tr.observe(victim, s, ModeFalseData)
	if victim.Payload != 1000 {
		t.Errorf("victim payload = %d, want 1000", victim.Payload)
	}
	agent := powerReq(7, 119, 4000)
	tr.observe(agent, s, ModeFalseData)
	if agent.Payload != 6000 || !agent.Tampered {
		t.Errorf("agent payload = %d, want 6000", agent.Payload)
	}
	if tr.Stats().Boosted != 1 {
		t.Errorf("Boosted = %d, want 1", tr.Stats().Boosted)
	}
}

func TestScaleStrategyBoostSaturates(t *testing.T) {
	s := ScaleStrategy{VictimFactor: 0.5, BoostFactor: 3}
	got, ok := s.TamperAttacker(math.MaxUint32 - 1)
	if !ok || got != math.MaxUint32 {
		t.Errorf("boost of near-max = %d, want saturation at MaxUint32", got)
	}
}

func TestScaleStrategyNoBoostWhenFactorLEOne(t *testing.T) {
	s := ScaleStrategy{VictimFactor: 0.5, BoostFactor: 1.0}
	if _, ok := s.TamperAttacker(100); ok {
		t.Error("boost factor 1.0 must disable boosting")
	}
}

func TestTamperIdempotentAcrossTrojans(t *testing.T) {
	// Two HTs on one path: the second must not compound the rewrite.
	s := ScaleStrategy{VictimFactor: 0.5}
	t1, t2 := NewTrojan(1), NewTrojan(2)
	t1.observe(configPacket(7, 119, true), s, ModeFalseData)
	t2.observe(configPacket(7, 119, true), s, ModeFalseData)
	p := powerReq(3, 119, 4000)
	t1.observe(p, s, ModeFalseData)
	t2.observe(p, s, ModeFalseData)
	if p.Payload != 2000 {
		t.Errorf("payload = %d, want 2000 (single rewrite)", p.Payload)
	}
	if t1.Stats().Modified+t2.Stats().Modified != 1 {
		t.Error("exactly one Trojan must claim the rewrite")
	}
}

func TestAgentMatcherCapacity(t *testing.T) {
	var m AgentMatcher
	for i := 0; i < maxAgentRegisters+5; i++ {
		m.AddSingle(noc.NodeID(i))
	}
	if m.Matches(noc.NodeID(maxAgentRegisters + 4)) {
		t.Error("register file must saturate at capacity")
	}
	if !m.Matches(0) {
		t.Error("early entries must be retained")
	}
}

func TestAgentMatcherRejectsEmptyRange(t *testing.T) {
	var m AgentMatcher
	m.AddRange(10, 0)
	if m.Matches(10) {
		t.Error("empty range must not match")
	}
}

func TestFleetDispatch(t *testing.T) {
	f, err := NewFleet([]noc.NodeID{3, 9}, ZeroStrategy{})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	f.InspectRC(3, configPacket(7, 119, true))
	f.InspectRC(9, configPacket(7, 119, true))
	// Packet passing uninfected router 5: untouched.
	p := powerReq(2, 119, 4000)
	f.InspectRC(5, p)
	if p.Tampered {
		t.Error("uninfected router must not tamper")
	}
	// Same packet passing infected router 9: tampered.
	f.InspectRC(9, p)
	if !p.Tampered {
		t.Error("infected router must tamper")
	}
	if f.Size() != 2 {
		t.Errorf("Size = %d, want 2", f.Size())
	}
	locs := f.Locations()
	if len(locs) != 2 || locs[0] != 3 || locs[1] != 9 {
		t.Errorf("Locations = %v, want [3 9]", locs)
	}
	if f.At(3) == nil || f.At(5) != nil {
		t.Error("At lookup wrong")
	}
	if f.TotalStats().Modified != 1 {
		t.Errorf("TotalStats.Modified = %d, want 1", f.TotalStats().Modified)
	}
}

func TestFleetRejectsDuplicates(t *testing.T) {
	if _, err := NewFleet([]noc.NodeID{3, 3}, ZeroStrategy{}); err == nil {
		t.Error("duplicate routers must be rejected")
	}
}

func TestFleetRejectsNilStrategy(t *testing.T) {
	if _, err := NewFleet([]noc.NodeID{3}, nil); err == nil {
		t.Error("nil strategy must be rejected")
	}
}

func TestStrategyNames(t *testing.T) {
	if (ZeroStrategy{}).Name() != "zero" {
		t.Error("zero strategy name")
	}
	if DefaultStrategy().Name() == "" {
		t.Error("scale strategy name empty")
	}
}

func TestAreaPowerSectionIIID(t *testing.T) {
	// The paper's exact numbers: 60 HTs on a 512-node chip.
	r := Report(60, 512)
	if math.Abs(r.TotalHTAreaUm2-730.296) > 1e-9 {
		t.Errorf("60 HT area = %v µm², paper says 730.296", r.TotalHTAreaUm2)
	}
	if math.Abs(r.TotalHTPowerUW-33.0108) > 1e-9 {
		t.Errorf("60 HT power = %v µW, paper says 33.0108", r.TotalHTPowerUW)
	}
	// "an HT's area and power is about 0.017% and 0.0017% of a single router"
	if math.Abs(r.AreaFractionOfRouter-0.00017) > 2e-5 {
		t.Errorf("area fraction = %v, paper says ≈0.017%%", r.AreaFractionOfRouter)
	}
	if math.Abs(r.PowerFractionOfRouter-0.000017) > 2e-6 {
		t.Errorf("power fraction = %v, paper says ≈0.0017%%", r.PowerFractionOfRouter)
	}
	// "60 HTs' area and power is about 0.002% and 0.0002% of all routers"
	if math.Abs(r.AreaFractionOfAllRouters-0.00002) > 5e-6 {
		t.Errorf("fleet area fraction = %v, paper says ≈0.002%%", r.AreaFractionOfAllRouters)
	}
	if math.Abs(r.PowerFractionOfAllRouters-0.000002) > 5e-7 {
		t.Errorf("fleet power fraction = %v, paper says ≈0.0002%%", r.PowerFractionOfAllRouters)
	}
}

func TestCircuitInventory(t *testing.T) {
	inv := DefaultInventory()
	if inv.Comparators != 3 || inv.Registers != 2 {
		t.Errorf("inventory = %+v, Fig 2 shows 3 comparators and 2 registers", inv)
	}
	tr := inv.TransistorEstimate()
	if tr <= 0 || tr > 2000 {
		t.Errorf("transistor estimate = %d, want a few hundred", tr)
	}
}
