package trojan

import (
	"testing"

	"repro/internal/noc"
)

func TestModeString(t *testing.T) {
	tests := []struct {
		give Mode
		want string
	}{
		{ModeFalseData, "false-data"},
		{ModeDrop, "drop"},
		{ModeLoopback, "loopback"},
		{Mode(42), "mode(42)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", int(tt.give), got, tt.want)
		}
	}
}

func TestFleetSetMode(t *testing.T) {
	f, err := NewFleet([]noc.NodeID{3}, ZeroStrategy{})
	if err != nil {
		t.Fatal(err)
	}
	if f.Mode() != ModeFalseData {
		t.Error("default mode must be the paper's false-data attack")
	}
	if err := f.SetMode(ModeDrop); err != nil || f.Mode() != ModeDrop {
		t.Errorf("SetMode(drop): %v", err)
	}
	if err := f.SetMode(Mode(0)); err == nil {
		t.Error("invalid mode must be rejected")
	}
}

func TestDropModeVerdicts(t *testing.T) {
	tr := NewTrojan(5)
	tr.observe(configPacket(7, 119, true), ZeroStrategy{}, ModeDrop)

	victim := powerReq(3, 119, 4000)
	if v := tr.observe(victim, ZeroStrategy{}, ModeDrop); v != noc.VerdictDrop {
		t.Errorf("victim verdict = %v, want drop", v)
	}
	if victim.Tampered {
		t.Error("drop mode must not rewrite the payload")
	}
	agent := powerReq(7, 119, 4000)
	if v := tr.observe(agent, ZeroStrategy{}, ModeDrop); v != noc.VerdictForward {
		t.Errorf("agent verdict = %v, want forward", v)
	}
	offTarget := powerReq(3, 42, 4000)
	if v := tr.observe(offTarget, ZeroStrategy{}, ModeDrop); v != noc.VerdictForward {
		t.Errorf("off-target verdict = %v, want forward", v)
	}
	if tr.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", tr.Stats().Dropped)
	}
}

func TestLoopbackModeVerdicts(t *testing.T) {
	tr := NewTrojan(5)
	tr.observe(configPacket(7, 119, true), ZeroStrategy{}, ModeLoopback)

	victim := powerReq(3, 119, 4000)
	if v := tr.observe(victim, ZeroStrategy{}, ModeLoopback); v != noc.VerdictLoopback {
		t.Errorf("victim verdict = %v, want loopback", v)
	}
	// A packet already bounced must pass: otherwise two Trojans would
	// ping-pong it forever.
	bounced := powerReq(3, 119, 4000)
	bounced.LoopedBack = true
	if v := tr.observe(bounced, ZeroStrategy{}, ModeLoopback); v != noc.VerdictForward {
		t.Errorf("bounced verdict = %v, want forward", v)
	}
	if tr.Stats().Looped != 1 {
		t.Errorf("Looped = %d, want 1", tr.Stats().Looped)
	}
}

func TestInactiveModesForwardEverything(t *testing.T) {
	for _, mode := range []Mode{ModeDrop, ModeLoopback} {
		tr := NewTrojan(5)
		// Configured but deactivated.
		tr.observe(configPacket(7, 119, false), ZeroStrategy{}, mode)
		p := powerReq(3, 119, 4000)
		if v := tr.observe(p, ZeroStrategy{}, mode); v != noc.VerdictForward {
			t.Errorf("mode %v: inactive Trojan verdict = %v, want forward", mode, v)
		}
	}
}

func TestFalseDataModeIgnoresBoostInOtherModes(t *testing.T) {
	// In drop mode even attacker boosting is disabled: the circuit's
	// functional module is repurposed.
	tr := NewTrojan(5)
	s := ScaleStrategy{VictimFactor: 0.25, BoostFactor: 2}
	tr.observe(configPacket(7, 119, true), s, ModeDrop)
	agent := powerReq(7, 119, 4000)
	tr.observe(agent, s, ModeDrop)
	if agent.Tampered || agent.Payload != 4000 {
		t.Error("drop mode must not boost agents")
	}
}
