package trojan

import "repro/internal/registry"

// Strategies is the payload-rewrite strategy plugin registry: "zero" is
// the literal Fig 2 circuit (victim requests rewritten to all-zero) and
// "scale" the parameterised default used by the headline experiments
// (victims cut to a quarter, attackers boosted by half).
var Strategies = registry.New[Strategy]("trojan", "strategy")

// Modes is the Section II-B attack-class plugin registry ("false-data",
// "drop", "loopback").
var Modes = registry.New[Mode]("trojan", "attack mode")

func init() {
	Strategies.Register("scale", func() Strategy { return DefaultStrategy() })
	Strategies.Register("zero", func() Strategy { return ZeroStrategy{} })
	Modes.Register("false-data", func() Mode { return ModeFalseData })
	Modes.Register("drop", func() Mode { return ModeDrop })
	Modes.Register("loopback", func() Mode { return ModeLoopback })
}

// StrategyByName returns the named payload strategy with default
// parameters.
func StrategyByName(name string) (Strategy, error) { return Strategies.Lookup(name) }

// ModeByName returns the named Section II-B attack class.
func ModeByName(name string) (Mode, error) { return Modes.Lookup(name) }
