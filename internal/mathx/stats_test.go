package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{4}, want: 4},
		{name: "several", give: []float64{1, 2, 3, 4}, want: 2.5},
		{name: "negative", give: []float64{-2, 2}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); got != tt.want {
				t.Errorf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance of single sample = %v, want 0", got)
	}
	if got := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) should be +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) should be -Inf")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
}

func TestPearsonAnticorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{8, 6, 4, 2}
	if got := Pearson(xs, ys); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson constant series = %v, want 0", got)
	}
	if got := Pearson([]float64{1, 2}, []float64{1}); got != 0 {
		t.Errorf("Pearson length mismatch = %v, want 0", got)
	}
}

func TestRSquaredPerfect(t *testing.T) {
	obs := []float64{1, 2, 3}
	if got := RSquared(obs, obs); !almostEqual(got, 1, 1e-12) {
		t.Errorf("RSquared = %v, want 1", got)
	}
}

func TestRSquaredDegenerate(t *testing.T) {
	if got := RSquared([]float64{2, 2}, []float64{1, 3}); got != 0 {
		t.Errorf("RSquared constant obs = %v, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

// Property: variance is invariant under shift, scales quadratically.
func TestVarianceShiftScale(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 16)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		shifted := make([]float64, len(xs))
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + 100
			scaled[i] = 3 * x
		}
		v := Variance(xs)
		return almostEqual(Variance(shifted), v, 1e-8) && almostEqual(Variance(scaled), 9*v, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFitOLSRecoversPlane(t *testing.T) {
	// y = 3a - 2b + 5
	var x [][]float64
	var y []float64
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x = append(x, []float64{a, b})
		y = append(y, 3*a-2*b+5)
	}
	res, err := FitOLS(x, y)
	if err != nil {
		t.Fatalf("FitOLS: %v", err)
	}
	if !almostEqual(res.Coeffs[0], 3, 1e-6) || !almostEqual(res.Coeffs[1], -2, 1e-6) || !almostEqual(res.Intercept, 5, 1e-6) {
		t.Errorf("fit = %+v, want coeffs [3 -2] intercept 5", res)
	}
	if !almostEqual(res.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", res.R2)
	}
}

func TestFitOLSEmpty(t *testing.T) {
	if _, err := FitOLS(nil, nil); err == nil {
		t.Fatal("FitOLS(nil) should fail")
	}
}

func TestFitOLSRaggedRow(t *testing.T) {
	if _, err := FitOLS([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("FitOLS ragged rows should fail")
	}
}

func TestFitOLSPredict(t *testing.T) {
	res := &OLSResult{Coeffs: []float64{2, -1}, Intercept: 1}
	if got := res.Predict([]float64{3, 4}); got != 3 {
		t.Errorf("Predict = %v, want 3", got)
	}
}
