package mathx

import "math"

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either series is constant or the lengths differ.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// RSquared returns the coefficient of determination of predictions preds
// against observations obs. It returns 0 when obs is constant.
func RSquared(obs, preds []float64) float64 {
	if len(obs) != len(preds) || len(obs) == 0 {
		return 0
	}
	m := Mean(obs)
	var ssRes, ssTot float64
	for i := range obs {
		r := obs[i] - preds[i]
		ssRes += r * r
		d := obs[i] - m
		ssTot += d * d
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
