package mathx

import "fmt"

// OLSResult holds a fitted ordinary-least-squares linear model
// y ≈ Coeffs·x + Intercept.
type OLSResult struct {
	// Coeffs are the slope coefficients, one per feature column.
	Coeffs []float64
	// Intercept is the constant term a₀.
	Intercept float64
	// R2 is the coefficient of determination on the training data.
	R2 float64
}

// FitOLS fits y ≈ Xβ + a₀ by least squares. Each row of x is one
// observation; y has one entry per row. An intercept column is added
// internally.
func FitOLS(x [][]float64, y []float64) (*OLSResult, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("mathx: ols %d observations, %d targets: %w", len(x), len(y), ErrDimension)
	}
	nFeat := len(x[0])
	design := NewMatrix(len(x), nFeat+1)
	for i, row := range x {
		if len(row) != nFeat {
			return nil, fmt.Errorf("mathx: ols row %d has %d features, want %d: %w", i, len(row), nFeat, ErrDimension)
		}
		for j, v := range row {
			design.Set(i, j, v)
		}
		design.Set(i, nFeat, 1) // intercept column
	}
	beta, err := SolveLeastSquares(design, y)
	if err != nil {
		return nil, fmt.Errorf("mathx: ols solve: %w", err)
	}
	res := &OLSResult{Coeffs: beta[:nFeat], Intercept: beta[nFeat]}
	preds := make([]float64, len(y))
	for i, row := range x {
		preds[i] = res.Predict(row)
	}
	res.R2 = RSquared(y, preds)
	return res, nil
}

// Predict evaluates the fitted model at feature vector row.
func (r *OLSResult) Predict(row []float64) float64 {
	s := r.Intercept
	for j, v := range row {
		s += r.Coeffs[j] * v
	}
	return s
}
