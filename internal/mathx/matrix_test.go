package mathx

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("NewMatrixFromRows: %v", err)
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 2x2", m.Rows(), m.Cols())
	}
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v, want 3", m.At(1, 0))
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestNewMatrixFromRowsEmpty(t *testing.T) {
	if _, err := NewMatrixFromRows(nil); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestMatrixSetAt(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(2, 3, 7.5)
	if m.At(2, 3) != 7.5 {
		t.Errorf("At(2,3) = %v, want 7.5", m.At(2, 3))
	}
	if m.At(0, 0) != 0 {
		t.Errorf("zero value not preserved")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := a.Mul(b); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	v, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if v[0] != 3 || v[1] != 7 {
		t.Errorf("MulVec = %v, want [3 7]", v)
	}
}

func TestMulVecDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := a.MulVec([]float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSolveLeastSquaresExact(t *testing.T) {
	// Square full-rank system: exact solution.
	a, _ := NewMatrixFromRows([][]float64{{2, 0}, {0, 3}})
	x, err := SolveLeastSquares(a, []float64{4, 9})
	if err != nil {
		t.Fatalf("SolveLeastSquares: %v", err)
	}
	if !almostEqual(x[0], 2, 1e-9) || !almostEqual(x[1], 3, 1e-9) {
		t.Errorf("x = %v, want [2 3]", x)
	}
}

func TestSolveLeastSquaresOverdetermined(t *testing.T) {
	// y = 2t + 1 sampled with no noise; fit line through 4 points.
	a, _ := NewMatrixFromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	x, err := SolveLeastSquares(a, []float64{1, 3, 5, 7})
	if err != nil {
		t.Fatalf("SolveLeastSquares: %v", err)
	}
	if !almostEqual(x[0], 2, 1e-9) || !almostEqual(x[1], 1, 1e-9) {
		t.Errorf("x = %v, want [2 1]", x)
	}
}

func TestSolveLeastSquaresSingular(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := SolveLeastSquares(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLeastSquaresUnderdetermined(t *testing.T) {
	a := NewMatrix(1, 2)
	if _, err := SolveLeastSquares(a, []float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

func TestSolveLeastSquaresBadB(t *testing.T) {
	a := NewMatrix(3, 2)
	if _, err := SolveLeastSquares(a, []float64{1}); !errors.Is(err, ErrDimension) {
		t.Fatalf("err = %v, want ErrDimension", err)
	}
}

// Property: for any well-conditioned random system Ax = b with known x,
// SolveLeastSquares recovers x.
func TestSolveLeastSquaresRecoversKnownSolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 8, 3
		a := NewMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		// Diagonal boost keeps the system well conditioned.
		for j := 0; j < cols; j++ {
			a.Set(j, j, a.At(j, j)+5)
		}
		want := make([]float64, cols)
		for j := range want {
			want[j] = rng.NormFloat64()
		}
		b, err := a.MulVec(want)
		if err != nil {
			return false
		}
		got, err := SolveLeastSquares(a, b)
		if err != nil {
			return false
		}
		for j := range want {
			if !almostEqual(got[j], want[j], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AB)ᵀ = BᵀAᵀ for random matrices.
func TestTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewMatrix(3, 4)
		b := NewMatrix(4, 2)
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				a.Set(i, j, rng.Float64())
			}
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 2; j++ {
				b.Set(i, j, rng.Float64())
			}
		}
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		left := ab.Transpose()
		right, err := b.Transpose().Mul(a.Transpose())
		if err != nil {
			return false
		}
		for i := 0; i < left.Rows(); i++ {
			for j := 0; j < left.Cols(); j++ {
				if !almostEqual(left.At(i, j), right.At(i, j), 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
