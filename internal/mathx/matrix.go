// Package mathx provides the small stdlib-only numerical toolkit behind
// the paper's Section V-C attack-effect model: dense matrices and QR-based
// least squares for the Eqn 9 fit, plus the summary statistics the
// experiment tables report. It exists because the module is offline and
// may not depend on gonum; only the operations the repository actually
// needs are implemented.
package mathx

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

var (
	// ErrDimension is returned when matrix shapes are incompatible.
	ErrDimension = errors.New("mathx: incompatible dimensions")
	// ErrSingular is returned when a system is rank deficient.
	ErrSingular = errors.New("mathx: matrix is singular or rank deficient")
)

// NewMatrix allocates a rows×cols zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mathx: invalid matrix shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have equal
// length.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, ErrDimension
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("mathx: row %d has %d entries, want %d: %w", i, len(r), m.cols, ErrDimension)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m·other as a new matrix.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("mathx: mul %dx%d by %dx%d: %w", m.rows, m.cols, other.rows, other.cols, ErrDimension)
	}
	out := NewMatrix(m.rows, other.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.cols; j++ {
				out.data[i*out.cols+j] += a * other.At(k, j)
			}
		}
	}
	return out, nil
}

// MulVec returns m·v for a column vector v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("mathx: mulvec %dx%d by %d: %w", m.rows, m.cols, len(v), ErrDimension)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// SolveLeastSquares solves min‖Ax−b‖₂ via Householder QR with column checks.
// A must have at least as many rows as columns and full column rank.
func SolveLeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("mathx: lstsq A is %dx%d, b has %d: %w", a.rows, a.cols, len(b), ErrDimension)
	}
	if a.rows < a.cols {
		return nil, fmt.Errorf("mathx: lstsq underdetermined %dx%d: %w", a.rows, a.cols, ErrDimension)
	}
	r := a.Clone()
	qtb := make([]float64, len(b))
	copy(qtb, b)

	// Householder transformations applied in place to r and qtb.
	for k := 0; k < r.cols; k++ {
		// Compute the norm of the k-th column below the diagonal.
		norm := 0.0
		for i := k; i < r.rows; i++ {
			norm = math.Hypot(norm, r.At(i, k))
		}
		if norm == 0 {
			return nil, fmt.Errorf("mathx: column %d: %w", k, ErrSingular)
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		// v = x - norm·e1, normalised so v[k] = 1.
		vk := r.At(k, k) - norm
		v := make([]float64, r.rows-k)
		v[0] = 1
		for i := k + 1; i < r.rows; i++ {
			v[i-k] = r.At(i, k) / vk
		}
		beta := -vk / norm // 2/(vᵀv) compressed form

		// Apply H = I - beta·v·vᵀ to the trailing submatrix.
		for j := k; j < r.cols; j++ {
			s := 0.0
			for i := k; i < r.rows; i++ {
				s += v[i-k] * r.At(i, j)
			}
			s *= beta
			for i := k; i < r.rows; i++ {
				r.Set(i, j, r.At(i, j)-s*v[i-k])
			}
		}
		// Apply to qtb.
		s := 0.0
		for i := k; i < r.rows; i++ {
			s += v[i-k] * qtb[i]
		}
		s *= beta
		for i := k; i < r.rows; i++ {
			qtb[i] -= s * v[i-k]
		}
	}

	// Back substitution on the upper-triangular part.
	x := make([]float64, r.cols)
	for i := r.cols - 1; i >= 0; i-- {
		s := qtb[i]
		for j := i + 1; j < r.cols; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) < 1e-12 {
			return nil, fmt.Errorf("mathx: pivot %d too small: %w", i, ErrSingular)
		}
		x[i] = s / d
	}
	return x, nil
}
