package noc

import (
	"errors"
	"fmt"
	"slices"
)

// Config holds the NoC parameters of Table I.
type Config struct {
	// VCs is the number of virtual channels per input port (Table I: 4).
	VCs int
	// BufDepth is the per-VC flit buffer depth (Table I: 5).
	BufDepth int
	// RouterCycles is the router pipeline latency (Table I: 2).
	RouterCycles int
	// LinkCycles is the link traversal latency (Table I: 1).
	LinkCycles int
	// Routing selects the routing algorithm (Table I: XY).
	Routing RoutingAlgorithm
	// AltRouting optionally enables a second traffic class with its own
	// routing algorithm on its own half of the virtual channels. Packets
	// select the class through Packet.Class. VC partitioning keeps the two
	// classes from waiting on each other, so a deadlock-free pair such as
	// XY + YX stays deadlock-free combined. Nil disables the second class.
	AltRouting RoutingAlgorithm
}

// DefaultConfig returns the Table I on-chip-network configuration.
func DefaultConfig() Config {
	return Config{
		VCs:          4,
		BufDepth:     5,
		RouterCycles: 2,
		LinkCycles:   1,
		Routing:      XYRouting{},
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.VCs < 1:
		return errors.New("noc: config needs at least one virtual channel")
	case c.BufDepth < 1:
		return errors.New("noc: config needs buffer depth of at least one flit")
	case c.RouterCycles < 1 || c.LinkCycles < 0:
		return errors.New("noc: config has invalid pipeline latencies")
	case c.Routing == nil:
		return errors.New("noc: config needs a routing algorithm")
	case c.AltRouting != nil && c.VCs < 2:
		return errors.New("noc: a second traffic class needs at least two virtual channels")
	}
	// Dateline VC management splits a class's VC range in half, so every
	// wrap-routed class needs at least two channels of its own.
	for class := 0; class < 2; class++ {
		if _, wrap := c.classRouting(class).(WrapRouting); !wrap {
			continue
		}
		if lo, hi := c.classVCRange(class); hi-lo < 2 {
			return errors.New("noc: wraparound routing needs at least two virtual channels per traffic class (for dateline management)")
		}
	}
	return nil
}

// classVCRange returns the [lo, hi) input-VC indices packets of the given
// class may occupy. Without an alternate class, class 0 owns every VC.
func (c Config) classVCRange(class int) (lo, hi int) {
	if c.AltRouting == nil {
		return 0, c.VCs
	}
	half := c.VCs / 2
	if class == 0 {
		return 0, half
	}
	return half, c.VCs
}

// classRouting returns the routing algorithm for a class.
func (c Config) classRouting(class int) RoutingAlgorithm {
	if class == 1 && c.AltRouting != nil {
		return c.AltRouting
	}
	return c.Routing
}

// Verdict is an inspector's decision about a packet at the RC stage.
type Verdict int

// Inspection verdicts. VerdictForward is deliberately the zero value: a
// packet the inspector ignores proceeds normally.
const (
	// VerdictForward routes the packet normally.
	VerdictForward Verdict = iota
	// VerdictDrop silently discards the packet — the "packet drop attack"
	// class of Section II-B.
	VerdictDrop
	// VerdictLoopback rewrites the destination to the source, bouncing the
	// packet home — the "routing loop attack" class of Section II-B.
	VerdictLoopback
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictForward:
		return "forward"
	case VerdictDrop:
		return "drop"
	case VerdictLoopback:
		return "loopback"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Inspector is the hardware-Trojan hook. InspectRC is invoked for every
// packet whose head flit sits in router's input buffer immediately before
// routing computation — the exact circuit position of Fig 2(b). The
// inspector may mutate the packet's payload (the paper's false-data
// attack) and/or return a non-forward verdict (the drop and routing-loop
// attack classes of Section II-B).
type Inspector interface {
	InspectRC(router NodeID, p *Packet) Verdict
}

// Handler receives packets fully ejected at a node.
type Handler func(p *Packet)

// vcState is one input virtual channel of a router. The flit buffer is a
// fixed-capacity ring (capacity BufDepth), so steady-state traffic neither
// re-slices nor reallocates.
type vcState struct {
	rt   *router // owning router, for buffered-flit accounting
	buf  []*Flit // ring storage, len == BufDepth
	head int
	n    int

	// owner is the packet holding this VC (wormhole allocation). It is set
	// when an upstream VC allocation reserves this channel and cleared when
	// the packet's tail flit departs the fifo.
	owner *Packet
	// inflight counts flits sent toward this VC that have not yet arrived.
	inflight int

	// Per-packet routing state for the packet at the head of the fifo.
	route       Direction
	routeValid  bool
	outVC       int
	outVCValid  bool
	inspected   bool
	dropping    bool     // consume this packet's flits instead of routing them
	reservedDst *vcState // downstream VC reserved by VC allocation
}

func (v *vcState) reset() {
	v.owner = nil
	v.route = Local
	v.routeValid = false
	v.outVC = 0
	v.outVCValid = false
	v.inspected = false
	v.dropping = false
	v.reservedDst = nil
}

// peek returns the head-of-line flit; the caller must know n > 0.
func (v *vcState) peek() *Flit { return v.buf[v.head] }

// free reports whether the VC can accept a new packet's head flit.
func (v *vcState) free() bool { return v.owner == nil && v.n == 0 && v.inflight == 0 }

// space reports whether one more flit fits (buffer + in-flight).
func (v *vcState) space(depth int) bool { return v.n+v.inflight < depth }

// router is one mesh router. Input VCs are flattened into a single slice —
// the VC for (input port d, channel v) sits at index d*VCs+v — which is
// both the cache-friendly layout for the per-cycle scans and exactly the
// candidate order of the round-robin switch allocator.
type router struct {
	id  NodeID
	vcs []vcState
	// saPtr is the round-robin switch-allocation pointer per output port,
	// indexing the flattened (input port, VC) candidate list.
	saPtr [numDirections]int
	// buffered counts flits currently held in this router's input VCs; a
	// router leaves the active worklist when it reaches zero.
	buffered int
	active   bool
}

// inflightFlit is a flit traversing the router pipeline + link toward a
// downstream input VC. Latency is constant, so a FIFO keeps arrival order.
type inflightFlit struct {
	arriveAt uint64
	flit     *Flit
	dst      *vcState
}

// nodeNI is the per-node network interface: an unbounded injection queue
// (source queue) plus the VC currently allocated to the head-of-queue
// packet. The queue is drained via qhead instead of re-slicing so its
// backing array is reused across epochs.
type nodeNI struct {
	queue  []*Flit
	qhead  int
	injVC  *vcState // VC currently allocated to the head-of-queue packet
	active bool
}

// qlen returns the number of queued flits not yet injected.
func (ni *nodeNI) qlen() int { return len(ni.queue) - ni.qhead }

// Stats aggregates network-level counters. The per-type tallies are fixed
// arrays indexed by PacketType, so a Stats value is a plain value copy —
// no maps, no defensive deep copy.
type Stats struct {
	Injected         uint64
	Delivered        uint64
	HopSum           uint64
	DeliveredBy      [numPacketTypes]uint64
	LatencySumBy     [numPacketTypes]uint64
	TamperedPowerReq uint64 // POWER_REQ packets delivered with Tampered set
	DroppedPackets   uint64 // packets discarded by a VerdictDrop
	LoopedBack       uint64 // packets delivered to their own source
}

// AvgLatency returns the mean injection-to-delivery latency in cycles for
// packets of type t, or 0 if none were delivered.
func (s *Stats) AvgLatency(t PacketType) float64 {
	if t >= numPacketTypes {
		return 0
	}
	n := s.DeliveredBy[t]
	if n == 0 {
		return 0
	}
	return float64(s.LatencySumBy[t]) / float64(n)
}

// Network is the cycle-stepped NoC. It is not safe for concurrent use; one
// simulation owns one network.
//
// Stepping is worklist-driven: a router is scanned by the RC/VA/SA stages
// only while flits sit in its input buffers, and a network interface only
// while its source queue is non-empty. The worklists are kept sorted by
// node ID, so a Step visits exactly the routers a full scan would have
// found non-idle, in the same order — cycle-for-cycle identical behaviour
// to the exhaustive sweep, without the O(nodes × ports × VCs) cost on a
// nearly-empty network.
type Network struct {
	mesh      Mesh
	cfg       Config
	now       uint64
	nextID    uint64
	routers   []*router
	nis       []*nodeNI
	handlers  []Handler
	inspector Inspector
	stats     Stats

	// Link pipeline: a growable FIFO ring of in-flight flits.
	inflight []inflightFlit
	inflHead int
	inflLen  int

	// liveFlits counts flits anywhere in the network (source queues, input
	// buffers, link pipeline), making Busy O(1).
	liveFlits int

	// Active worklists, sorted ascending; the dirty flags note unsorted
	// appends since the last Step.
	activeRouters []int32
	routersDirty  bool
	activeNIs     []int32
	nisDirty      bool

	// saDir maps a flattened VC index to its input port, hoisting the
	// divide/modulo out of the switch-allocation loop.
	saDir []Direction

	// dateline flags the traffic classes whose routing traverses
	// wraparound links; VC allocation then bands the class's VC range into
	// a pre-dateline lower half and a post-dateline upper half, which
	// breaks the ring channel-dependency cycles of the torus.
	dateline [2]bool

	// flitPool recycles Flit objects between ejection and injection so
	// steady-state traffic does not churn the garbage collector.
	flitPool []*Flit

	// freeFn is the reusable congestion probe handed to adaptive routing
	// algorithms; binding the probe point through freeFrom/freeClass avoids
	// allocating a fresh closure for every routed packet.
	freeFn    func(Direction) bool
	freeFrom  NodeID
	freeClass int
}

// New constructs a network over mesh with the given configuration.
func New(mesh Mesh, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mesh.Nodes() == 0 {
		return nil, errors.New("noc: empty mesh")
	}
	for class := 0; class < 2; class++ {
		alg := cfg.classRouting(class)
		if _, wrap := alg.(WrapRouting); wrap && !mesh.Wrap {
			return nil, fmt.Errorf("noc: %s routing requires a wraparound topology", alg.Name())
		}
	}
	n := &Network{
		mesh:     mesh,
		cfg:      cfg,
		routers:  make([]*router, mesh.Nodes()),
		nis:      make([]*nodeNI, mesh.Nodes()),
		handlers: make([]Handler, mesh.Nodes()),
	}
	vcsPerRouter := int(numDirections) * cfg.VCs
	for i := range n.routers {
		r := &router{id: NodeID(i), vcs: make([]vcState, vcsPerRouter)}
		for v := range r.vcs {
			r.vcs[v].rt = r
			r.vcs[v].buf = make([]*Flit, cfg.BufDepth)
		}
		n.routers[i] = r
		n.nis[i] = &nodeNI{}
	}
	n.saDir = make([]Direction, vcsPerRouter)
	for i := range n.saDir {
		n.saDir[i] = Direction(i / cfg.VCs)
	}
	for class := 0; class < 2; class++ {
		_, n.dateline[class] = cfg.classRouting(class).(WrapRouting)
	}
	n.freeFn = func(d Direction) bool {
		return n.downstreamHasFreeVC(n.freeFrom, d, n.freeClass)
	}
	return n, nil
}

// Mesh returns the network topology.
func (n *Network) Mesh() Mesh { return n.mesh }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Now returns the network cycle counter.
func (n *Network) Now() uint64 { return n.now }

// Stats returns a snapshot of the accumulated statistics. Stats holds no
// reference types, so the value copy is already defensive.
func (n *Network) Stats() Stats { return n.stats }

// Attach registers the delivery handler for node id, replacing any previous
// handler.
func (n *Network) Attach(id NodeID, h Handler) { n.handlers[id] = h }

// SetInspector installs the hardware-Trojan inspection hook (nil clears).
func (n *Network) SetInspector(i Inspector) { n.inspector = i }

// takeFlit draws a flit from the pool, or allocates when the pool is dry.
func (n *Network) takeFlit(kind FlitKind, p *Packet, seq int) *Flit {
	if k := len(n.flitPool); k > 0 {
		f := n.flitPool[k-1]
		n.flitPool = n.flitPool[:k-1]
		f.Kind, f.Packet, f.Seq = kind, p, seq
		return f
	}
	return &Flit{Kind: kind, Packet: p, Seq: seq}
}

// freeFlit returns a consumed flit to the pool.
func (n *Network) freeFlit(f *Flit) {
	f.Packet = nil
	n.flitPool = append(n.flitPool, f)
}

// Inject queues p for transmission from p.Src. The source queue is
// unbounded, so injection never fails for a valid packet.
func (n *Network) Inject(p *Packet) error {
	if !n.mesh.Contains(n.mesh.Coord(p.Src)) || !n.mesh.Contains(n.mesh.Coord(p.Dst)) {
		return fmt.Errorf("noc: inject %v->%v outside %dx%d mesh", p.Src, p.Dst, n.mesh.Width, n.mesh.Height)
	}
	if p.Type == TypeInvalid || p.Type >= numPacketTypes {
		return fmt.Errorf("noc: inject packet with invalid type %d", p.Type)
	}
	if p.Class < 0 || p.Class > 1 {
		return fmt.Errorf("noc: inject packet with invalid class %d", p.Class)
	}
	if p.Class == 1 && n.cfg.AltRouting == nil {
		return fmt.Errorf("noc: class-1 packet without an alternate routing class")
	}
	n.nextID++
	p.ID = n.nextID
	p.InjectedAt = n.now
	p.OriginalPayload = p.Payload
	p.rx = 0
	p.dlDim, p.dlCrossed = 0, false
	ni := n.nis[p.Src]
	count := p.FlitCount()
	if count == 1 {
		ni.queue = append(ni.queue, n.takeFlit(HeadTailFlit, p, 0))
	} else {
		for i := 0; i < count; i++ {
			kind := BodyFlit
			switch i {
			case 0:
				kind = HeadFlit
			case count - 1:
				kind = TailFlit
			}
			ni.queue = append(ni.queue, n.takeFlit(kind, p, i))
		}
	}
	n.liveFlits += count
	if !ni.active {
		ni.active = true
		n.activeNIs = append(n.activeNIs, int32(p.Src))
		n.nisDirty = true
	}
	n.stats.Injected++
	return nil
}

// Busy reports whether any flit remains anywhere in the network.
func (n *Network) Busy() bool { return n.liveFlits > 0 }

// Step advances the network by one cycle.
func (n *Network) Step() {
	n.now++
	n.deliverArrivals()
	n.injectFromNIs()
	if n.routersDirty {
		slices.Sort(n.activeRouters)
		n.routersDirty = false
	}
	n.routeCompute()
	n.vcAllocate()
	n.switchTraversal()
	n.sweepIdleRouters()
}

// RunUntilIdle steps until no flits remain or maxCycles elapse. It returns
// the number of cycles stepped and whether the network drained.
func (n *Network) RunUntilIdle(maxCycles uint64) (uint64, bool) {
	var c uint64
	for ; c < maxCycles; c++ {
		if !n.Busy() {
			return c, true
		}
		n.Step()
	}
	return c, !n.Busy()
}

// vcPush appends a flit to a VC's ring buffer and puts the owning router on
// the active worklist.
func (n *Network) vcPush(vc *vcState, f *Flit) {
	i := vc.head + vc.n
	if i >= len(vc.buf) {
		i -= len(vc.buf)
	}
	vc.buf[i] = f
	vc.n++
	rt := vc.rt
	rt.buffered++
	if !rt.active {
		rt.active = true
		n.activeRouters = append(n.activeRouters, int32(rt.id))
		n.routersDirty = true
	}
}

// vcPop removes and returns a VC's head-of-line flit.
func (n *Network) vcPop(vc *vcState) *Flit {
	f := vc.buf[vc.head]
	vc.buf[vc.head] = nil
	vc.head++
	if vc.head == len(vc.buf) {
		vc.head = 0
	}
	vc.n--
	vc.rt.buffered--
	return f
}

// linkPush appends a flit to the link-pipeline ring, growing it only when
// the sustained in-flight population exceeds every previous peak.
func (n *Network) linkPush(fl inflightFlit) {
	if n.inflLen == len(n.inflight) {
		size := 2 * len(n.inflight)
		if size < 64 {
			size = 64
		}
		grown := make([]inflightFlit, size)
		for i := 0; i < n.inflLen; i++ {
			j := n.inflHead + i
			if j >= len(n.inflight) {
				j -= len(n.inflight)
			}
			grown[i] = n.inflight[j]
		}
		n.inflight = grown
		n.inflHead = 0
	}
	tail := n.inflHead + n.inflLen
	if tail >= len(n.inflight) {
		tail -= len(n.inflight)
	}
	n.inflight[tail] = fl
	n.inflLen++
}

// deliverArrivals moves link-pipeline flits whose latency elapsed into their
// destination input VCs.
func (n *Network) deliverArrivals() {
	for n.inflLen > 0 {
		f := &n.inflight[n.inflHead]
		if f.arriveAt > n.now {
			break // FIFO: constant latency keeps arrivals ordered
		}
		n.vcPush(f.dst, f.flit)
		f.dst.inflight--
		f.flit, f.dst = nil, nil
		n.inflHead++
		if n.inflHead == len(n.inflight) {
			n.inflHead = 0
		}
		n.inflLen--
	}
}

// injectFromNIs moves at most one flit per active node from the source
// queue into the router's local input port, retiring drained NIs from the
// worklist.
func (n *Network) injectFromNIs() {
	if n.nisDirty {
		slices.Sort(n.activeNIs)
		n.nisDirty = false
	}
	k := 0
	for _, id := range n.activeNIs {
		ni := n.nis[id]
		n.injectOne(NodeID(id), ni)
		if ni.qlen() > 0 {
			n.activeNIs[k] = id
			k++
		} else {
			ni.active = false
			ni.queue = ni.queue[:0]
			ni.qhead = 0
		}
	}
	n.activeNIs = n.activeNIs[:k]
}

// injectOne attempts one flit transfer from node id's source queue.
func (n *Network) injectOne(id NodeID, ni *nodeNI) {
	f := ni.queue[ni.qhead]
	r := n.routers[id]
	if f.IsHead() {
		// Allocate a free local input VC within the packet's class. The
		// Local port is direction 0, so its VCs sit at the start of the
		// flattened slice.
		lo, hi := n.cfg.classVCRange(f.Packet.Class)
		var target *vcState
		for v := lo; v < hi; v++ {
			if vc := &r.vcs[v]; vc.free() {
				target = vc
				break
			}
		}
		if target == nil {
			return // all local VCs of this class busy this cycle
		}
		target.owner = f.Packet
		ni.injVC = target
	}
	if ni.injVC == nil || !ni.injVC.space(n.cfg.BufDepth) {
		return
	}
	n.vcPush(ni.injVC, f)
	ni.qhead++
	if f.IsTail() {
		ni.injVC = nil
	}
}

// routeCompute runs the RC stage: for every active router's input VC whose
// head-of-line flit opens a packet and has no route yet, inspect (Trojan
// hook) and route.
func (n *Network) routeCompute() {
	for _, id := range n.activeRouters {
		r := n.routers[id]
		if r.buffered == 0 {
			continue
		}
		for i := range r.vcs {
			vc := &r.vcs[i]
			if vc.dropping {
				n.consumeDropped(vc)
				continue
			}
			if vc.n == 0 || vc.routeValid {
				continue
			}
			head := vc.peek()
			if !head.IsHead() {
				continue
			}
			p := head.Packet
			if !vc.inspected {
				// Fig 2(b): the HT sits between the input buffer and
				// the routing-computation module.
				if n.inspector != nil {
					switch n.inspector.InspectRC(r.id, p) {
					case VerdictDrop:
						vc.dropping = true
						vc.inspected = true
						n.consumeDropped(vc)
						continue
					case VerdictLoopback:
						// The malicious router bounces the packet back
						// to its source; the route below targets the
						// rewritten destination.
						p.Dst = p.Src
						p.LoopedBack = true
					}
				}
				vc.inspected = true
				p.Hops++
			}
			n.freeFrom, n.freeClass = r.id, p.Class
			vc.route = n.cfg.classRouting(p.Class).Route(n.mesh, r.id, p.Dst, n.freeFn)
			vc.routeValid = true
		}
	}
}

// consumeDropped discards buffered flits of a packet condemned by a
// VerdictDrop, releasing the VC once the tail has been eaten. Upstream
// flits still in the link pipeline arrive later and are eaten on
// subsequent cycles.
func (n *Network) consumeDropped(vc *vcState) {
	for vc.n > 0 {
		f := n.vcPop(vc)
		tail := f.IsTail()
		n.freeFlit(f)
		n.liveFlits--
		if tail {
			n.stats.DroppedPackets++
			vc.reset()
			return
		}
	}
}

// downstreamHasFreeVC reports whether the neighbour of id in direction dir
// has any completely free input VC in the packet's class — the congestion
// signal used by the adaptive routing algorithm.
func (n *Network) downstreamHasFreeVC(id NodeID, dir Direction, class int) bool {
	nb, ok := n.mesh.Neighbor(id, dir)
	if !ok {
		return false
	}
	base := int(dir.Opposite()) * n.cfg.VCs
	lo, hi := n.cfg.classVCRange(class)
	vcs := n.routers[nb].vcs
	for v := lo; v < hi; v++ {
		if vcs[base+v].free() {
			return true
		}
	}
	return false
}

// vcAllocate runs the VA stage: routed head packets at active routers
// reserve a free VC in the downstream router's input port.
func (n *Network) vcAllocate() {
	for _, id := range n.activeRouters {
		r := n.routers[id]
		if r.buffered == 0 {
			continue
		}
		for i := range r.vcs {
			vc := &r.vcs[i]
			if !vc.routeValid || vc.outVCValid || vc.route == Local {
				continue
			}
			if vc.n == 0 || !vc.peek().IsHead() {
				continue
			}
			nb, ok := n.mesh.Neighbor(r.id, vc.route)
			if !ok {
				// Routing algorithms never route off-mesh; defensive.
				continue
			}
			p := vc.peek().Packet
			base := int(vc.route.Opposite()) * n.cfg.VCs
			lo, hi := n.cfg.classVCRange(p.Class)
			dim, crossed, wrap := int8(0), false, false
			if n.dateline[p.Class] {
				// Dateline banding: the class's VC range splits into a
				// pre-dateline lower half and a post-dateline upper half.
				// A packet rides the lower band until its hop crosses the
				// current dimension's wraparound link, then the upper band
				// for the rest of that dimension; switching dimensions
				// resets it. Each unidirectional ring's dependency chain is
				// therefore acyclic, which keeps the torus deadlock-free.
				dim = dimOf(vc.route)
				crossed = p.dlCrossed && p.dlDim == dim
				wrap = n.mesh.wrapsAt(r.id, vc.route)
				half := (hi - lo) / 2
				if crossed || wrap {
					lo += half
				} else {
					hi = lo + half
				}
			}
			dvcs := n.routers[nb].vcs
			for out := lo; out < hi; out++ {
				if dvc := &dvcs[base+out]; dvc.free() {
					dvc.owner = p
					vc.outVC = out
					vc.outVCValid = true
					vc.reservedDst = dvc
					if n.dateline[p.Class] {
						p.dlDim, p.dlCrossed = dim, crossed || wrap
					}
					break
				}
			}
		}
	}
}

// switchTraversal runs SA+ST: per output port of each active router, one
// flit crosses the switch, respecting one-flit-per-input-port bandwidth,
// then either ejects locally or enters the link pipeline.
func (n *Network) switchTraversal() {
	for _, id := range n.activeRouters {
		r := n.routers[id]
		if r.buffered == 0 {
			continue
		}
		var usedInput [numDirections]bool
		for out := 0; out < int(numDirections); out++ {
			n.arbitrateOutput(r, Direction(out), &usedInput)
		}
	}
}

// arbitrateOutput picks one eligible (input, VC) for output port out using
// a round-robin pointer and moves its head-of-line flit.
func (n *Network) arbitrateOutput(r *router, out Direction, usedInput *[numDirections]bool) {
	total := len(r.vcs)
	idx := r.saPtr[out]
	for k := 0; k < total; k++ {
		if idx >= total {
			idx -= total
		}
		vc := &r.vcs[idx]
		d := n.saDir[idx]
		idx++
		if usedInput[d] || vc.n == 0 || !vc.routeValid || vc.route != out {
			continue
		}
		if out != Local {
			if !vc.outVCValid || !vc.reservedDst.space(n.cfg.BufDepth) {
				continue
			}
		}
		f := n.vcPop(vc)
		usedInput[d] = true
		r.saPtr[out] = idx
		if idx == total {
			r.saPtr[out] = 0
		}

		// Read the flit kind before eject: ejection frees the flit to the
		// pool, and a delivery handler may synchronously Inject a new
		// packet that recycles (and rewrites) it.
		tail := f.IsTail()
		if out == Local {
			n.eject(r.id, f)
		} else {
			vc.reservedDst.inflight++
			n.linkPush(inflightFlit{
				arriveAt: n.now + uint64(n.cfg.RouterCycles+n.cfg.LinkCycles),
				flit:     f,
				dst:      vc.reservedDst,
			})
		}
		if tail {
			vc.reset()
		}
		return
	}
}

// dimOf maps a direction to its mesh dimension for dateline tracking:
// 1 for the X axis (east/west), 2 for Y (north/south), 0 for Local.
func dimOf(d Direction) int8 {
	switch d {
	case East, West:
		return 1
	case North, South:
		return 2
	default:
		return 0
	}
}

// sweepIdleRouters retires routers whose input buffers drained this cycle.
// Compaction preserves the ascending order of the worklist.
func (n *Network) sweepIdleRouters() {
	k := 0
	for _, id := range n.activeRouters {
		r := n.routers[id]
		if r.buffered > 0 {
			n.activeRouters[k] = id
			k++
		} else {
			r.active = false
		}
	}
	n.activeRouters = n.activeRouters[:k]
}

// eject consumes a flit at its destination; delivering the tail flit
// completes the packet and fires the node handler.
func (n *Network) eject(id NodeID, f *Flit) {
	p := f.Packet
	p.rx++
	tail := f.IsTail()
	n.freeFlit(f)
	n.liveFlits--
	if !tail {
		return
	}
	if p.rx != p.FlitCount() {
		// Wormhole routing delivers flits of one packet in order on one
		// path; a mismatch indicates a simulator bug.
		panic(fmt.Sprintf("noc: packet %d ejected %d of %d flits", p.ID, p.rx, p.FlitCount()))
	}
	p.DeliveredAt = n.now
	n.stats.Delivered++
	n.stats.HopSum += uint64(p.Hops)
	n.stats.DeliveredBy[p.Type]++
	n.stats.LatencySumBy[p.Type] += p.DeliveredAt - p.InjectedAt
	if p.Type == TypePowerReq && p.Tampered {
		n.stats.TamperedPowerReq++
	}
	if p.LoopedBack {
		n.stats.LoopedBack++
	}
	if h := n.handlers[id]; h != nil {
		h(p)
	}
}
