package noc

import (
	"errors"
	"fmt"
)

// Config holds the NoC parameters of Table I.
type Config struct {
	// VCs is the number of virtual channels per input port (Table I: 4).
	VCs int
	// BufDepth is the per-VC flit buffer depth (Table I: 5).
	BufDepth int
	// RouterCycles is the router pipeline latency (Table I: 2).
	RouterCycles int
	// LinkCycles is the link traversal latency (Table I: 1).
	LinkCycles int
	// Routing selects the routing algorithm (Table I: XY).
	Routing RoutingAlgorithm
	// AltRouting optionally enables a second traffic class with its own
	// routing algorithm on its own half of the virtual channels. Packets
	// select the class through Packet.Class. VC partitioning keeps the two
	// classes from waiting on each other, so a deadlock-free pair such as
	// XY + YX stays deadlock-free combined. Nil disables the second class.
	AltRouting RoutingAlgorithm
}

// DefaultConfig returns the Table I on-chip-network configuration.
func DefaultConfig() Config {
	return Config{
		VCs:          4,
		BufDepth:     5,
		RouterCycles: 2,
		LinkCycles:   1,
		Routing:      XYRouting{},
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.VCs < 1:
		return errors.New("noc: config needs at least one virtual channel")
	case c.BufDepth < 1:
		return errors.New("noc: config needs buffer depth of at least one flit")
	case c.RouterCycles < 1 || c.LinkCycles < 0:
		return errors.New("noc: config has invalid pipeline latencies")
	case c.Routing == nil:
		return errors.New("noc: config needs a routing algorithm")
	case c.AltRouting != nil && c.VCs < 2:
		return errors.New("noc: a second traffic class needs at least two virtual channels")
	}
	return nil
}

// classVCRange returns the [lo, hi) input-VC indices packets of the given
// class may occupy. Without an alternate class, class 0 owns every VC.
func (c Config) classVCRange(class int) (lo, hi int) {
	if c.AltRouting == nil {
		return 0, c.VCs
	}
	half := c.VCs / 2
	if class == 0 {
		return 0, half
	}
	return half, c.VCs
}

// classRouting returns the routing algorithm for a class.
func (c Config) classRouting(class int) RoutingAlgorithm {
	if class == 1 && c.AltRouting != nil {
		return c.AltRouting
	}
	return c.Routing
}

// Verdict is an inspector's decision about a packet at the RC stage.
type Verdict int

// Inspection verdicts. VerdictForward is deliberately the zero value: a
// packet the inspector ignores proceeds normally.
const (
	// VerdictForward routes the packet normally.
	VerdictForward Verdict = iota
	// VerdictDrop silently discards the packet — the "packet drop attack"
	// class of Section II-B.
	VerdictDrop
	// VerdictLoopback rewrites the destination to the source, bouncing the
	// packet home — the "routing loop attack" class of Section II-B.
	VerdictLoopback
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictForward:
		return "forward"
	case VerdictDrop:
		return "drop"
	case VerdictLoopback:
		return "loopback"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Inspector is the hardware-Trojan hook. InspectRC is invoked for every
// packet whose head flit sits in router's input buffer immediately before
// routing computation — the exact circuit position of Fig 2(b). The
// inspector may mutate the packet's payload (the paper's false-data
// attack) and/or return a non-forward verdict (the drop and routing-loop
// attack classes of Section II-B).
type Inspector interface {
	InspectRC(router NodeID, p *Packet) Verdict
}

// Handler receives packets fully ejected at a node.
type Handler func(p *Packet)

// vcState is one input virtual channel of a router.
type vcState struct {
	fifo []*Flit
	// owner is the packet holding this VC (wormhole allocation). It is set
	// when an upstream VC allocation reserves this channel and cleared when
	// the packet's tail flit departs the fifo.
	owner *Packet
	// inflight counts flits sent toward this VC that have not yet arrived.
	inflight int

	// Per-packet routing state for the packet at the head of the fifo.
	route       Direction
	routeValid  bool
	outVC       int
	outVCValid  bool
	inspected   bool
	dropping    bool     // consume this packet's flits instead of routing them
	reservedDst *vcState // downstream VC reserved by VC allocation
}

func (v *vcState) reset() {
	v.owner = nil
	v.route = Local
	v.routeValid = false
	v.outVC = 0
	v.outVCValid = false
	v.inspected = false
	v.dropping = false
	v.reservedDst = nil
}

// free reports whether the VC can accept a new packet's head flit.
func (v *vcState) free() bool { return v.owner == nil && len(v.fifo) == 0 && v.inflight == 0 }

// space reports whether one more flit fits (buffer + in-flight).
func (v *vcState) space(depth int) bool { return len(v.fifo)+v.inflight < depth }

type router struct {
	id     NodeID
	inputs [numDirections][]*vcState
	// saPtr is the round-robin switch-allocation pointer per output port,
	// indexing the flattened (input port, VC) candidate list.
	saPtr [numDirections]int
}

// inflightFlit is a flit traversing the router pipeline + link toward a
// downstream input VC. Latency is constant, so a FIFO keeps arrival order.
type inflightFlit struct {
	arriveAt uint64
	flit     *Flit
	dst      *vcState
}

// nodeNI is the per-node network interface: an unbounded injection queue
// (source queue) plus reassembly state for ejection.
type nodeNI struct {
	queue   []*Flit
	injVC   *vcState // VC currently allocated to the head-of-queue packet
	rxFlits map[uint64]int
}

// Stats aggregates network-level counters.
type Stats struct {
	Injected         uint64
	Delivered        uint64
	HopSum           uint64
	DeliveredBy      map[PacketType]uint64
	LatencySumBy     map[PacketType]uint64
	TamperedPowerReq uint64 // POWER_REQ packets delivered with Tampered set
	DroppedPackets   uint64 // packets discarded by a VerdictDrop
	LoopedBack       uint64 // packets delivered to their own source
}

// AvgLatency returns the mean injection-to-delivery latency in cycles for
// packets of type t, or 0 if none were delivered.
func (s *Stats) AvgLatency(t PacketType) float64 {
	n := s.DeliveredBy[t]
	if n == 0 {
		return 0
	}
	return float64(s.LatencySumBy[t]) / float64(n)
}

// Network is the cycle-stepped NoC. It is not safe for concurrent use; one
// simulation owns one network.
type Network struct {
	mesh      Mesh
	cfg       Config
	now       uint64
	nextID    uint64
	routers   []*router
	nis       []*nodeNI
	inflight  []inflightFlit
	handlers  []Handler
	inspector Inspector
	stats     Stats
}

// New constructs a network over mesh with the given configuration.
func New(mesh Mesh, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mesh.Nodes() == 0 {
		return nil, errors.New("noc: empty mesh")
	}
	n := &Network{
		mesh:     mesh,
		cfg:      cfg,
		routers:  make([]*router, mesh.Nodes()),
		nis:      make([]*nodeNI, mesh.Nodes()),
		handlers: make([]Handler, mesh.Nodes()),
	}
	n.stats.DeliveredBy = make(map[PacketType]uint64)
	n.stats.LatencySumBy = make(map[PacketType]uint64)
	for i := range n.routers {
		r := &router{id: NodeID(i)}
		for d := 0; d < int(numDirections); d++ {
			r.inputs[d] = make([]*vcState, cfg.VCs)
			for v := range r.inputs[d] {
				r.inputs[d][v] = &vcState{}
			}
		}
		n.routers[i] = r
		n.nis[i] = &nodeNI{rxFlits: make(map[uint64]int)}
	}
	return n, nil
}

// Mesh returns the network topology.
func (n *Network) Mesh() Mesh { return n.mesh }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Now returns the network cycle counter.
func (n *Network) Now() uint64 { return n.now }

// Stats returns a snapshot copy of the accumulated statistics.
func (n *Network) Stats() Stats {
	s := n.stats
	s.DeliveredBy = make(map[PacketType]uint64, len(n.stats.DeliveredBy))
	for k, v := range n.stats.DeliveredBy {
		s.DeliveredBy[k] = v
	}
	s.LatencySumBy = make(map[PacketType]uint64, len(n.stats.LatencySumBy))
	for k, v := range n.stats.LatencySumBy {
		s.LatencySumBy[k] = v
	}
	return s
}

// Attach registers the delivery handler for node id, replacing any previous
// handler.
func (n *Network) Attach(id NodeID, h Handler) { n.handlers[id] = h }

// SetInspector installs the hardware-Trojan inspection hook (nil clears).
func (n *Network) SetInspector(i Inspector) { n.inspector = i }

// Inject queues p for transmission from p.Src. The source queue is
// unbounded, so injection never fails for a valid packet.
func (n *Network) Inject(p *Packet) error {
	if !n.mesh.Contains(n.mesh.Coord(p.Src)) || !n.mesh.Contains(n.mesh.Coord(p.Dst)) {
		return fmt.Errorf("noc: inject %v->%v outside %dx%d mesh", p.Src, p.Dst, n.mesh.Width, n.mesh.Height)
	}
	if p.Type == TypeInvalid || p.Type >= numPacketTypes {
		return fmt.Errorf("noc: inject packet with invalid type %d", p.Type)
	}
	if p.Class < 0 || p.Class > 1 {
		return fmt.Errorf("noc: inject packet with invalid class %d", p.Class)
	}
	if p.Class == 1 && n.cfg.AltRouting == nil {
		return fmt.Errorf("noc: class-1 packet without an alternate routing class")
	}
	n.nextID++
	p.ID = n.nextID
	p.InjectedAt = n.now
	p.OriginalPayload = p.Payload
	n.nis[p.Src].queue = append(n.nis[p.Src].queue, Flits(p)...)
	n.stats.Injected++
	return nil
}

// Busy reports whether any flit remains anywhere in the network.
func (n *Network) Busy() bool {
	if len(n.inflight) > 0 {
		return true
	}
	for i, ni := range n.nis {
		if len(ni.queue) > 0 {
			return true
		}
		r := n.routers[i]
		for d := 0; d < int(numDirections); d++ {
			for _, vc := range r.inputs[d] {
				if len(vc.fifo) > 0 {
					return true
				}
			}
		}
	}
	return false
}

// Step advances the network by one cycle.
func (n *Network) Step() {
	n.now++
	n.deliverArrivals()
	n.injectFromNIs()
	n.routeCompute()
	n.vcAllocate()
	n.switchTraversal()
}

// RunUntilIdle steps until no flits remain or maxCycles elapse. It returns
// the number of cycles stepped and whether the network drained.
func (n *Network) RunUntilIdle(maxCycles uint64) (uint64, bool) {
	var c uint64
	for ; c < maxCycles; c++ {
		if !n.Busy() {
			return c, true
		}
		n.Step()
	}
	return c, !n.Busy()
}

// deliverArrivals moves link-pipeline flits whose latency elapsed into their
// destination input VCs.
func (n *Network) deliverArrivals() {
	i := 0
	for ; i < len(n.inflight); i++ {
		f := n.inflight[i]
		if f.arriveAt > n.now {
			break // FIFO: constant latency keeps arrivals ordered
		}
		f.dst.fifo = append(f.dst.fifo, f.flit)
		f.dst.inflight--
	}
	if i > 0 {
		n.inflight = n.inflight[i:]
		if len(n.inflight) == 0 {
			n.inflight = nil
		}
	}
}

// injectFromNIs moves at most one flit per node from the source queue into
// the router's local input port.
func (n *Network) injectFromNIs() {
	for id, ni := range n.nis {
		if len(ni.queue) == 0 {
			continue
		}
		f := ni.queue[0]
		r := n.routers[id]
		if f.IsHead() {
			// Allocate a free local input VC within the packet's class.
			lo, hi := n.cfg.classVCRange(f.Packet.Class)
			var target *vcState
			for _, vc := range r.inputs[Local][lo:hi] {
				if vc.free() {
					target = vc
					break
				}
			}
			if target == nil {
				continue // all local VCs of this class busy this cycle
			}
			target.owner = f.Packet
			ni.injVC = target
		}
		if ni.injVC == nil || !ni.injVC.space(n.cfg.BufDepth) {
			continue
		}
		ni.injVC.fifo = append(ni.injVC.fifo, f)
		ni.queue = ni.queue[1:]
		if len(ni.queue) == 0 {
			ni.queue = nil
		}
		if f.IsTail() {
			ni.injVC = nil
		}
	}
}

// routeCompute runs the RC stage: for every input VC whose head-of-line
// flit opens a packet and has no route yet, inspect (Trojan hook) and route.
func (n *Network) routeCompute() {
	for _, r := range n.routers {
		for d := 0; d < int(numDirections); d++ {
			for _, vc := range r.inputs[d] {
				if vc.dropping {
					n.consumeDropped(vc)
					continue
				}
				if len(vc.fifo) == 0 || vc.routeValid {
					continue
				}
				head := vc.fifo[0]
				if !head.IsHead() {
					continue
				}
				p := head.Packet
				if !vc.inspected {
					// Fig 2(b): the HT sits between the input buffer and
					// the routing-computation module.
					if n.inspector != nil {
						switch n.inspector.InspectRC(r.id, p) {
						case VerdictDrop:
							vc.dropping = true
							vc.inspected = true
							n.consumeDropped(vc)
							continue
						case VerdictLoopback:
							// The malicious router bounces the packet back
							// to its source; the route below targets the
							// rewritten destination.
							p.Dst = p.Src
							p.LoopedBack = true
						}
					}
					vc.inspected = true
					p.Hops++
				}
				free := func(dir Direction) bool { return n.downstreamHasFreeVC(r.id, dir, p.Class) }
				vc.route = n.cfg.classRouting(p.Class).Route(n.mesh, r.id, p.Dst, free)
				vc.routeValid = true
			}
		}
	}
}

// consumeDropped discards buffered flits of a packet condemned by a
// VerdictDrop, releasing the VC once the tail has been eaten. Upstream
// flits still in the link pipeline arrive later and are eaten on
// subsequent cycles.
func (n *Network) consumeDropped(vc *vcState) {
	for len(vc.fifo) > 0 {
		f := vc.fifo[0]
		vc.fifo = vc.fifo[1:]
		if len(vc.fifo) == 0 {
			vc.fifo = nil
		}
		if f.IsTail() {
			n.stats.DroppedPackets++
			vc.reset()
			return
		}
	}
}

// downstreamHasFreeVC reports whether the neighbour of id in direction dir
// has any completely free input VC in the packet's class — the congestion
// signal used by the adaptive routing algorithm.
func (n *Network) downstreamHasFreeVC(id NodeID, dir Direction, class int) bool {
	nb, ok := n.mesh.Neighbor(id, dir)
	if !ok {
		return false
	}
	in := dir.Opposite()
	lo, hi := n.cfg.classVCRange(class)
	for _, vc := range n.routers[nb].inputs[in][lo:hi] {
		if vc.free() {
			return true
		}
	}
	return false
}

// vcAllocate runs the VA stage: routed head packets reserve a free VC in
// the downstream router's input port.
func (n *Network) vcAllocate() {
	for _, r := range n.routers {
		for d := 0; d < int(numDirections); d++ {
			for _, vc := range r.inputs[d] {
				if !vc.routeValid || vc.outVCValid || vc.route == Local {
					continue
				}
				if len(vc.fifo) == 0 || !vc.fifo[0].IsHead() {
					continue
				}
				nb, ok := n.mesh.Neighbor(r.id, vc.route)
				if !ok {
					// Routing algorithms never route off-mesh; defensive.
					continue
				}
				in := vc.route.Opposite()
				lo, hi := n.cfg.classVCRange(vc.fifo[0].Packet.Class)
				for outIdx, dvc := range n.routers[nb].inputs[in][lo:hi] {
					if dvc.free() {
						dvc.owner = vc.fifo[0].Packet
						vc.outVC = lo + outIdx
						vc.outVCValid = true
						vc.reservedDst = dvc
						break
					}
				}
			}
		}
	}
}

// switchTraversal runs SA+ST: per output port, one flit crosses the switch,
// respecting one-flit-per-input-port bandwidth, then either ejects locally
// or enters the link pipeline.
func (n *Network) switchTraversal() {
	for _, r := range n.routers {
		var usedInput [numDirections]bool
		for out := 0; out < int(numDirections); out++ {
			n.arbitrateOutput(r, Direction(out), &usedInput)
		}
	}
}

// arbitrateOutput picks one eligible (input, VC) for output port out using
// a round-robin pointer and moves its head-of-line flit.
func (n *Network) arbitrateOutput(r *router, out Direction, usedInput *[numDirections]bool) {
	total := int(numDirections) * n.cfg.VCs
	start := r.saPtr[out]
	for k := 0; k < total; k++ {
		idx := (start + k) % total
		d := Direction(idx / n.cfg.VCs)
		vc := r.inputs[d][idx%n.cfg.VCs]
		if usedInput[d] || len(vc.fifo) == 0 || !vc.routeValid || vc.route != out {
			continue
		}
		if out != Local {
			if !vc.outVCValid || !vc.reservedDst.space(n.cfg.BufDepth) {
				continue
			}
		}
		f := vc.fifo[0]
		vc.fifo = vc.fifo[1:]
		if len(vc.fifo) == 0 {
			vc.fifo = nil
		}
		usedInput[d] = true
		r.saPtr[out] = (idx + 1) % total

		if out == Local {
			n.eject(r.id, f)
		} else {
			vc.reservedDst.inflight++
			n.inflight = append(n.inflight, inflightFlit{
				arriveAt: n.now + uint64(n.cfg.RouterCycles+n.cfg.LinkCycles),
				flit:     f,
				dst:      vc.reservedDst,
			})
		}
		if f.IsTail() {
			vc.reset()
		}
		return
	}
}

// eject consumes a flit at its destination; delivering the tail flit
// completes the packet and fires the node handler.
func (n *Network) eject(id NodeID, f *Flit) {
	ni := n.nis[id]
	p := f.Packet
	ni.rxFlits[p.ID]++
	if !f.IsTail() {
		return
	}
	if ni.rxFlits[p.ID] != p.FlitCount() {
		// Wormhole routing delivers flits of one packet in order on one
		// path; a mismatch indicates a simulator bug.
		panic(fmt.Sprintf("noc: packet %d ejected %d of %d flits", p.ID, ni.rxFlits[p.ID], p.FlitCount()))
	}
	delete(ni.rxFlits, p.ID)
	p.DeliveredAt = n.now
	n.stats.Delivered++
	n.stats.HopSum += uint64(p.Hops)
	n.stats.DeliveredBy[p.Type]++
	n.stats.LatencySumBy[p.Type] += p.DeliveredAt - p.InjectedAt
	if p.Type == TypePowerReq && p.Tampered {
		n.stats.TamperedPowerReq++
	}
	if p.LoopedBack {
		n.stats.LoopedBack++
	}
	if h := n.handlers[id]; h != nil {
		h(p)
	}
}
