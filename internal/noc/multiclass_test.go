package noc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func dualClassConfig() Config {
	cfg := DefaultConfig()
	cfg.AltRouting = YXRouting{}
	return cfg
}

func TestYXRoutePathShape(t *testing.T) {
	m := Mesh{Width: 8, Height: 8}
	src := m.ID(Coord{X: 1, Y: 2})
	dst := m.ID(Coord{X: 5, Y: 6})
	path := m.PathYX(src, dst)
	if len(path) != m.ManhattanDistance(src, dst)+1 {
		t.Fatalf("path length = %d", len(path))
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatal("endpoints wrong")
	}
	// YX: all Y movement before any X movement.
	seenX := false
	for i := 1; i < len(path); i++ {
		prev, cur := m.Coord(path[i-1]), m.Coord(path[i])
		if prev.X != cur.X {
			seenX = true
		}
		if prev.Y != cur.Y && seenX {
			t.Fatal("Y movement after X movement violates YX routing")
		}
	}
}

// Property: for src/dst differing in both coordinates, the XY and YX paths
// share only their endpoints — the route-diversity guarantee the dual-path
// defense depends on.
func TestXYAndYXDisjointInteriors(t *testing.T) {
	m := Mesh{Width: 9, Height: 7}
	f := func(a, b uint8) bool {
		src := NodeID(int(a) % m.Nodes())
		dst := NodeID(int(b) % m.Nodes())
		cs, cd := m.Coord(src), m.Coord(dst)
		if cs.X == cd.X || cs.Y == cd.Y {
			return true // degenerate: both paths identical by construction
		}
		xy := m.PathXY(src, dst)
		yx := m.PathYX(src, dst)
		inXY := make(map[NodeID]bool, len(xy))
		for _, r := range xy[1 : len(xy)-1] {
			inXY[r] = true
		}
		for _, r := range yx[1 : len(yx)-1] {
			if inXY[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateAltRouting(t *testing.T) {
	cfg := dualClassConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("dual-class config invalid: %v", err)
	}
	cfg.VCs = 1
	if err := cfg.Validate(); err == nil {
		t.Fatal("alt routing with one VC must fail")
	}
}

func TestClassVCPartitioning(t *testing.T) {
	cfg := dualClassConfig() // 4 VCs
	lo0, hi0 := cfg.classVCRange(0)
	lo1, hi1 := cfg.classVCRange(1)
	if lo0 != 0 || hi0 != 2 || lo1 != 2 || hi1 != 4 {
		t.Fatalf("partitions = [%d,%d) [%d,%d), want [0,2) [2,4)", lo0, hi0, lo1, hi1)
	}
	single := DefaultConfig()
	lo, hi := single.classVCRange(0)
	if lo != 0 || hi != 4 {
		t.Fatalf("single class owns [%d,%d), want [0,4)", lo, hi)
	}
}

func TestClassRejectedWithoutAltRouting(t *testing.T) {
	n := newTestNetwork(t, 4, 4)
	if err := n.Inject(&Packet{Src: 0, Dst: 3, Type: TypePowerReq, Class: 1}); err == nil {
		t.Fatal("class-1 packet must be rejected without AltRouting")
	}
	if err := n.Inject(&Packet{Src: 0, Dst: 3, Type: TypePowerReq, Class: 7}); err == nil {
		t.Fatal("invalid class must be rejected")
	}
}

func TestDualClassDelivery(t *testing.T) {
	n, err := New(Mesh{Width: 6, Height: 6}, dualClassConfig())
	if err != nil {
		t.Fatal(err)
	}
	var class0, class1 int
	n.Attach(35, func(p *Packet) {
		if p.Class == 0 {
			class0++
		} else {
			class1++
		}
	})
	for i := 0; i < 10; i++ {
		if err := n.Inject(&Packet{Src: 0, Dst: 35, Type: TypePowerReq, Class: i % 2}); err != nil {
			t.Fatalf("Inject: %v", err)
		}
	}
	if _, drained := n.RunUntilIdle(100000); !drained {
		t.Fatal("dual-class network did not drain")
	}
	if class0 != 5 || class1 != 5 {
		t.Fatalf("deliveries = %d/%d, want 5/5", class0, class1)
	}
}

// classRecorder captures which routers each class's packets traverse.
type classRecorder struct {
	visits [2]map[NodeID]bool
}

func (cr *classRecorder) InspectRC(r NodeID, p *Packet) Verdict {
	if cr.visits[p.Class] == nil {
		cr.visits[p.Class] = make(map[NodeID]bool)
	}
	cr.visits[p.Class][r] = true
	return VerdictForward
}

func TestClassesFollowTheirOwnPaths(t *testing.T) {
	n, err := New(Mesh{Width: 8, Height: 8}, dualClassConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec := &classRecorder{}
	n.SetInspector(rec)
	src := n.Mesh().ID(Coord{X: 1, Y: 1})
	dst := n.Mesh().ID(Coord{X: 6, Y: 6})
	n.Attach(dst, func(p *Packet) {})
	for class := 0; class < 2; class++ {
		if err := n.Inject(&Packet{Src: src, Dst: dst, Type: TypePowerReq, Class: class}); err != nil {
			t.Fatal(err)
		}
	}
	if _, drained := n.RunUntilIdle(10000); !drained {
		t.Fatal("network did not drain")
	}
	wantXY := n.Mesh().PathXY(src, dst)
	wantYX := n.Mesh().PathYX(src, dst)
	for _, r := range wantXY {
		if !rec.visits[0][r] {
			t.Fatalf("class 0 missed XY router %d", r)
		}
	}
	for _, r := range wantYX {
		if !rec.visits[1][r] {
			t.Fatalf("class 1 missed YX router %d", r)
		}
	}
	if len(rec.visits[0]) != len(wantXY) || len(rec.visits[1]) != len(wantYX) {
		t.Fatal("classes strayed off their minimal paths")
	}
}

func TestDualClassHeavyLoadNoDeadlock(t *testing.T) {
	// Both classes hammer the same hotspot: the VC partitions must keep
	// XY and YX from deadlocking each other.
	n, err := New(Mesh{Width: 6, Height: 6}, dualClassConfig())
	if err != nil {
		t.Fatal(err)
	}
	gm := n.Mesh().Center()
	delivered := 0
	n.Attach(gm, func(p *Packet) { delivered++ })
	rng := rand.New(rand.NewSource(13))
	injected := 0
	for round := 0; round < 6; round++ {
		for id := NodeID(0); id < NodeID(n.Mesh().Nodes()); id++ {
			if id == gm {
				continue
			}
			typ := TypePowerReq
			if rng.Intn(3) == 0 {
				typ = TypeMemReadReply // 5-flit packets stress the VCs
			}
			if err := n.Inject(&Packet{Src: id, Dst: gm, Type: typ, Class: rng.Intn(2)}); err != nil {
				t.Fatal(err)
			}
			injected++
		}
	}
	if _, drained := n.RunUntilIdle(3_000_000); !drained {
		t.Fatalf("dual-class hotspot deadlock: %d of %d delivered", delivered, injected)
	}
	if delivered != injected {
		t.Fatalf("delivered %d of %d", delivered, injected)
	}
}
