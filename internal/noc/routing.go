package noc

import "fmt"

// RoutingAlgorithm decides the output port for a packet at a router.
// Implementations must be deadlock-free on a 2D mesh.
type RoutingAlgorithm interface {
	// Route returns the output direction for a packet at router cur headed
	// to dst. free reports, for each candidate direction, whether the
	// downstream buffer currently has room — adaptive algorithms may use
	// it, deterministic ones ignore it.
	Route(m Mesh, cur, dst NodeID, free func(Direction) bool) Direction
	// Name identifies the algorithm in reports and benchmarks.
	Name() string
}

// XYRouting is the Table I default: route fully in X, then in Y.
// It is deterministic, minimal, and deadlock-free.
type XYRouting struct{}

var _ RoutingAlgorithm = XYRouting{}

// Name implements RoutingAlgorithm.
func (XYRouting) Name() string { return "xy" }

// Route implements RoutingAlgorithm.
func (XYRouting) Route(m Mesh, cur, dst NodeID, _ func(Direction) bool) Direction {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch {
	case cc.X < cd.X:
		return East
	case cc.X > cd.X:
		return West
	case cc.Y < cd.Y:
		return South
	case cc.Y > cd.Y:
		return North
	default:
		return Local
	}
}

// YXRouting routes fully in Y first, then in X — the mirror of XY. On its
// own VC class it is deadlock-free, and because an XY and a YX path between
// the same pair share only their endpoints (when src and dst differ in both
// coordinates), the pair forms the route-diverse channel the dual-path
// request-verification defense is built on.
type YXRouting struct{}

var _ RoutingAlgorithm = YXRouting{}

// Name implements RoutingAlgorithm.
func (YXRouting) Name() string { return "yx" }

// Route implements RoutingAlgorithm.
func (YXRouting) Route(m Mesh, cur, dst NodeID, _ func(Direction) bool) Direction {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch {
	case cc.Y < cd.Y:
		return South
	case cc.Y > cd.Y:
		return North
	case cc.X < cd.X:
		return East
	case cc.X > cd.X:
		return West
	default:
		return Local
	}
}

// WestFirstRouting is the minimal adaptive west-first turn-model router used
// as the "adaptive routing" ablation of Section V-A. Westward hops are taken
// first and exclusively; among the remaining permitted minimal directions it
// prefers one with downstream buffer space.
type WestFirstRouting struct{}

var _ RoutingAlgorithm = WestFirstRouting{}

// Name implements RoutingAlgorithm.
func (WestFirstRouting) Name() string { return "west-first" }

// Route implements RoutingAlgorithm.
func (WestFirstRouting) Route(m Mesh, cur, dst NodeID, free func(Direction) bool) Direction {
	cc, cd := m.Coord(cur), m.Coord(dst)
	if cc == cd {
		return Local
	}
	// West-first: if any westward progress is required it must happen
	// before any other turn.
	if cc.X > cd.X {
		return West
	}
	var candidates []Direction
	if cc.X < cd.X {
		candidates = append(candidates, East)
	}
	if cc.Y < cd.Y {
		candidates = append(candidates, South)
	} else if cc.Y > cd.Y {
		candidates = append(candidates, North)
	}
	if len(candidates) == 1 {
		return candidates[0]
	}
	// Adaptive choice between the two minimal productive directions:
	// prefer a direction whose downstream has space.
	if free != nil {
		for _, d := range candidates {
			if free(d) {
				return d
			}
		}
	}
	return candidates[0]
}

// RoutingByName returns the named algorithm, for CLI flag parsing.
func RoutingByName(name string) (RoutingAlgorithm, error) {
	switch name {
	case "xy":
		return XYRouting{}, nil
	case "yx":
		return YXRouting{}, nil
	case "west-first", "westfirst", "adaptive":
		return WestFirstRouting{}, nil
	default:
		return nil, fmt.Errorf("noc: unknown routing algorithm %q", name)
	}
}
