package noc

import "repro/internal/registry"

// RoutingAlgorithm decides the output port for a packet at a router.
// Implementations must be deadlock-free on a 2D mesh.
type RoutingAlgorithm interface {
	// Route returns the output direction for a packet at router cur headed
	// to dst. free reports, for each candidate direction, whether the
	// downstream buffer currently has room — adaptive algorithms may use
	// it, deterministic ones ignore it.
	Route(m Mesh, cur, dst NodeID, free func(Direction) bool) Direction
	// Name identifies the algorithm in reports and benchmarks.
	Name() string
}

// XYRouting is the Table I default: route fully in X, then in Y.
// It is deterministic, minimal, and deadlock-free.
type XYRouting struct{}

var _ RoutingAlgorithm = XYRouting{}

// Name implements RoutingAlgorithm.
func (XYRouting) Name() string { return "xy" }

// Route implements RoutingAlgorithm.
func (XYRouting) Route(m Mesh, cur, dst NodeID, _ func(Direction) bool) Direction {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch {
	case cc.X < cd.X:
		return East
	case cc.X > cd.X:
		return West
	case cc.Y < cd.Y:
		return South
	case cc.Y > cd.Y:
		return North
	default:
		return Local
	}
}

// YXRouting routes fully in Y first, then in X — the mirror of XY. On its
// own VC class it is deadlock-free, and because an XY and a YX path between
// the same pair share only their endpoints (when src and dst differ in both
// coordinates), the pair forms the route-diverse channel the dual-path
// request-verification defense is built on.
type YXRouting struct{}

var _ RoutingAlgorithm = YXRouting{}

// Name implements RoutingAlgorithm.
func (YXRouting) Name() string { return "yx" }

// Route implements RoutingAlgorithm.
func (YXRouting) Route(m Mesh, cur, dst NodeID, _ func(Direction) bool) Direction {
	cc, cd := m.Coord(cur), m.Coord(dst)
	switch {
	case cc.Y < cd.Y:
		return South
	case cc.Y > cd.Y:
		return North
	case cc.X < cd.X:
		return East
	case cc.X > cd.X:
		return West
	default:
		return Local
	}
}

// WestFirstRouting is the minimal adaptive west-first turn-model router used
// as the "adaptive routing" ablation of Section V-A. Westward hops are taken
// first and exclusively; among the remaining permitted minimal directions it
// prefers one with downstream buffer space.
type WestFirstRouting struct{}

var _ RoutingAlgorithm = WestFirstRouting{}

// Name implements RoutingAlgorithm.
func (WestFirstRouting) Name() string { return "west-first" }

// Route implements RoutingAlgorithm.
func (WestFirstRouting) Route(m Mesh, cur, dst NodeID, free func(Direction) bool) Direction {
	cc, cd := m.Coord(cur), m.Coord(dst)
	if cc == cd {
		return Local
	}
	// West-first: if any westward progress is required it must happen
	// before any other turn.
	if cc.X > cd.X {
		return West
	}
	var candidates []Direction
	if cc.X < cd.X {
		candidates = append(candidates, East)
	}
	if cc.Y < cd.Y {
		candidates = append(candidates, South)
	} else if cc.Y > cd.Y {
		candidates = append(candidates, North)
	}
	if len(candidates) == 1 {
		return candidates[0]
	}
	// Adaptive choice between the two minimal productive directions:
	// prefer a direction whose downstream has space.
	if free != nil {
		for _, d := range candidates {
			if free(d) {
				return d
			}
		}
	}
	return candidates[0]
}

// TorusRouting is minimal dimension-order routing for wraparound tori:
// fully in X, then in Y, always along the shorter way around each ring
// (ties go to the positive — east/south — direction). On its own it would
// deadlock on the ring channels; the network breaks those cycles with
// dateline virtual-channel management (see WrapRouting), which is why the
// algorithm carries the marker method and Config.Validate demands at
// least two virtual channels per traffic class for it.
type TorusRouting struct{}

var _ RoutingAlgorithm = TorusRouting{}
var _ WrapRouting = TorusRouting{}

// Name implements RoutingAlgorithm.
func (TorusRouting) Name() string { return "torus-xy" }

// UsesWraparound implements WrapRouting.
func (TorusRouting) UsesWraparound() {}

// Route implements RoutingAlgorithm.
func (TorusRouting) Route(m Mesh, cur, dst NodeID, _ func(Direction) bool) Direction {
	cc, cd := m.Coord(cur), m.Coord(dst)
	if d := torusStep(cc.X, cd.X, m.Width, East, West); d != Local {
		return d
	}
	return torusStep(cc.Y, cd.Y, m.Height, South, North)
}

// torusStep picks the minimal ring direction along one dimension, or Local
// when the coordinate already matches. Ties (opposite ways equally long)
// break toward the positive direction, matching Mesh.PathXY on wrapped
// meshes so the analytic path model traces the same routers the router
// pipeline uses.
func torusStep(cur, dst, k int, pos, neg Direction) Direction {
	if cur == dst {
		return Local
	}
	fwd := ((dst - cur) + k) % k
	if fwd <= k-fwd {
		return pos
	}
	return neg
}

// WrapRouting marks routing algorithms that traverse wraparound links.
// The network enables dateline virtual-channel management for the traffic
// classes routed by a WrapRouting: within the class's VC range the lower
// half carries packets that have not yet crossed the current dimension's
// wraparound link and the upper half those that have, which breaks the
// channel-dependency cycles of the rings and keeps the torus
// deadlock-free.
type WrapRouting interface {
	RoutingAlgorithm
	// UsesWraparound is the marker method.
	UsesWraparound()
}

// Routings is the routing-algorithm plugin registry ("xy", "yx",
// "west-first", "torus-xy", with "westfirst" and "adaptive" as aliases).
var Routings = registry.New[RoutingAlgorithm]("noc", "routing algorithm")

func init() {
	Routings.Register("xy", func() RoutingAlgorithm { return XYRouting{} })
	Routings.Register("yx", func() RoutingAlgorithm { return YXRouting{} })
	Routings.Register("west-first", func() RoutingAlgorithm { return WestFirstRouting{} })
	Routings.Register("torus-xy", func() RoutingAlgorithm { return TorusRouting{} })
	Routings.Alias("westfirst", "west-first")
	Routings.Alias("adaptive", "west-first")
}

// RoutingByName returns the named algorithm, for CLI flag parsing.
func RoutingByName(name string) (RoutingAlgorithm, error) { return Routings.Lookup(name) }
