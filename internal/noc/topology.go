// Package noc implements the on-chip network substrate of the reproduction:
// a 2D-mesh, wormhole-switched, virtual-channel network with the Table I
// parameters of the paper (4 VCs, 5-flit buffers, 2-cycle routers, 1-cycle
// links, XY routing by default, adaptive west-first as ablation).
//
// The hardware-Trojan hook of the paper sits exactly where Fig 2(b) places
// it: between a router's input buffer and its routing-computation module.
// The network exposes that point as the Inspector interface.
package noc

import (
	"fmt"

	"repro/internal/registry"
)

// NodeID identifies one tile (core + caches + router) in the mesh.
type NodeID int

// Coord is a mesh coordinate. X grows eastward, Y grows southward.
type Coord struct {
	X, Y int
}

// Mesh describes a Width×Height 2D grid topology. With Wrap unset it is
// the paper's plain 2D mesh; with Wrap set every row and column closes
// into a ring (a 2D torus), Neighbor wraps at the edges, and the distance
// and path helpers measure along the shorter way around each ring.
type Mesh struct {
	Width, Height int
	// Wrap adds wraparound links: the topology becomes a 2D torus.
	Wrap bool
}

// MeshForSize returns the most-square mesh with Width ≥ Height whose node
// count is exactly n. It matches the paper's configurations: 64 → 8×8,
// 128 → 16×8, 256 → 16×16, 512 → 32×16.
func MeshForSize(n int) (Mesh, error) {
	if n <= 0 {
		return Mesh{}, fmt.Errorf("noc: invalid system size %d", n)
	}
	best := Mesh{}
	for h := 1; h*h <= n; h++ {
		if n%h == 0 {
			best = Mesh{Width: n / h, Height: h}
		}
	}
	if best.Width == 0 {
		return Mesh{}, fmt.Errorf("noc: size %d has no mesh factorisation", n)
	}
	return best, nil
}

// TorusForSize returns the most-square 2D torus whose node count is
// exactly n: the MeshForSize factorisation with wraparound links. Sizes
// whose best factorisation degenerates to a single row or column are
// rejected — a 1-wide ring would make a node its own neighbour.
func TorusForSize(n int) (Mesh, error) {
	m, err := MeshForSize(n)
	if err != nil {
		return Mesh{}, err
	}
	if m.Width < 2 || m.Height < 2 {
		return Mesh{}, fmt.Errorf("noc: size %d has no torus factorisation (needs at least 2x2)", n)
	}
	m.Wrap = true
	return m, nil
}

// TopologyFunc builds the topology for a core count — the registered
// constructor form of MeshForSize and TorusForSize.
type TopologyFunc func(cores int) (Mesh, error)

// Topologies is the topology plugin registry ("mesh", "torus").
var Topologies = registry.New[TopologyFunc]("noc", "topology")

func init() {
	Topologies.Register("mesh", func() TopologyFunc { return MeshForSize })
	Topologies.Register("torus", func() TopologyFunc { return TorusForSize })
}

// TopologyByName returns the named topology constructor.
func TopologyByName(name string) (TopologyFunc, error) { return Topologies.Lookup(name) }

// Nodes returns the total node count.
func (m Mesh) Nodes() int { return m.Width * m.Height }

// Contains reports whether c lies inside the mesh.
func (m Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.Width && c.Y >= 0 && c.Y < m.Height
}

// ID maps a coordinate to its node ID (row-major).
func (m Mesh) ID(c Coord) NodeID { return NodeID(c.Y*m.Width + c.X) }

// Coord maps a node ID back to its coordinate.
func (m Mesh) Coord(id NodeID) Coord {
	return Coord{X: int(id) % m.Width, Y: int(id) / m.Width}
}

// Center returns the node closest to the geometric center of the mesh.
func (m Mesh) Center() NodeID {
	return m.ID(Coord{X: (m.Width - 1) / 2, Y: (m.Height - 1) / 2})
}

// Corner returns the node at the north-west corner (0, 0).
func (m Mesh) Corner() NodeID { return m.ID(Coord{}) }

// ManhattanDistance returns the Manhattan (hop) distance between two
// nodes; on a wrapped mesh each dimension measures the shorter way around
// its ring.
func (m Mesh) ManhattanDistance(a, b NodeID) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return m.axisDist(ca.X, cb.X, m.Width) + m.axisDist(ca.Y, cb.Y, m.Height)
}

// axisDist is the one-dimensional hop distance, wrap-aware.
func (m Mesh) axisDist(a, b, k int) int {
	d := abs(a - b)
	if m.Wrap && k-d < d {
		return k - d
	}
	return d
}

// stepCoord advances one coordinate a single hop toward its destination:
// straight-line on a plain mesh, the shorter way around the ring (ties to
// the positive direction, matching TorusRouting) on a wrapped one.
func (m Mesh) stepCoord(cur, dst, k int) int {
	if !m.Wrap {
		if cur < dst {
			return cur + 1
		}
		return cur - 1
	}
	fwd := ((dst - cur) + k) % k
	if fwd <= k-fwd {
		return (cur + 1) % k
	}
	return (cur - 1 + k) % k
}

// Direction identifies a router port. Local is deliberately the zero value:
// a default-initialised route targets the local ejection port, which is the
// only port that is always legal.
type Direction int

// Router port directions. North is toward smaller Y, South toward larger Y,
// East toward larger X, West toward smaller X.
const (
	Local Direction = iota
	North
	East
	South
	West
	numDirections
)

// String implements fmt.Stringer for debugging output.
func (d Direction) String() string {
	switch d {
	case Local:
		return "local"
	case North:
		return "north"
	case East:
		return "east"
	case South:
		return "south"
	case West:
		return "west"
	default:
		return fmt.Sprintf("direction(%d)", int(d))
	}
}

// Opposite returns the port on which a neighbour receives flits sent out of
// d. Local has no opposite and maps to Local.
func (d Direction) Opposite() Direction {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return Local
	}
}

// Neighbor returns the node adjacent to id in direction d and true, or
// (0, false) at a mesh edge or for Local. On a wrapped mesh every
// direction has a neighbour: edges wrap around to the opposite side.
func (m Mesh) Neighbor(id NodeID, d Direction) (NodeID, bool) {
	c := m.Coord(id)
	switch d {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	default:
		return 0, false
	}
	if !m.Contains(c) {
		if !m.Wrap {
			return 0, false
		}
		c.X = (c.X + m.Width) % m.Width
		c.Y = (c.Y + m.Height) % m.Height
	}
	return m.ID(c), true
}

// wrapsAt reports whether a hop from id in direction d crosses the
// wraparound link of its ring — the dateline of that dimension.
func (m Mesh) wrapsAt(id NodeID, d Direction) bool {
	if !m.Wrap {
		return false
	}
	c := m.Coord(id)
	switch d {
	case East:
		return c.X == m.Width-1
	case West:
		return c.X == 0
	case South:
		return c.Y == m.Height-1
	case North:
		return c.Y == 0
	default:
		return false
	}
}

// StepToward advances c one hop along the primary-class dimension-order
// route toward dst: fully in X first, then in Y — straight-line on a
// plain mesh (XYRouting's path), shorter way around each ring on a
// wrapped one (TorusRouting's path). c must differ from dst.
func (m Mesh) StepToward(c, dst Coord) Coord {
	if c.X != dst.X {
		c.X = m.stepCoord(c.X, dst.X, m.Width)
		return c
	}
	c.Y = m.stepCoord(c.Y, dst.Y, m.Height)
	return c
}

// PathXY returns the sequence of routers a primary-class packet traverses
// from src to dst, inclusive of both endpoints. This is the closed-form
// path model used by the fast infection-rate predictor: XY routing on a
// plain mesh, and on a wrapped mesh the minimal dimension-order path of
// TorusRouting (shorter way around each ring, ties broken toward
// east/south).
func (m Mesh) PathXY(src, dst NodeID) []NodeID {
	c, cd := m.Coord(src), m.Coord(dst)
	path := make([]NodeID, 0, m.ManhattanDistance(src, dst)+1)
	path = append(path, m.ID(c))
	for c != cd {
		c = m.StepToward(c, cd)
		path = append(path, m.ID(c))
	}
	return path
}

// PathYX returns the routers a YX-routed packet traverses from src to dst,
// inclusive of both endpoints — the alternate-class path of the dual-path
// defense. It deliberately ignores wraparound links even on a torus: the
// alternate class is routed by YXRouting, whose coordinate-compare
// routing never takes them.
func (m Mesh) PathYX(src, dst NodeID) []NodeID {
	cs, cd := m.Coord(src), m.Coord(dst)
	path := make([]NodeID, 0, abs(cs.X-cd.X)+abs(cs.Y-cd.Y)+1)
	c := cs
	path = append(path, m.ID(c))
	for c.Y != cd.Y {
		if c.Y < cd.Y {
			c.Y++
		} else {
			c.Y--
		}
		path = append(path, m.ID(c))
	}
	for c.X != cd.X {
		if c.X < cd.X {
			c.X++
		} else {
			c.X--
		}
		path = append(path, m.ID(c))
	}
	return path
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
