// Package noc implements the on-chip network substrate of the reproduction:
// a 2D-mesh, wormhole-switched, virtual-channel network with the Table I
// parameters of the paper (4 VCs, 5-flit buffers, 2-cycle routers, 1-cycle
// links, XY routing by default, adaptive west-first as ablation).
//
// The hardware-Trojan hook of the paper sits exactly where Fig 2(b) places
// it: between a router's input buffer and its routing-computation module.
// The network exposes that point as the Inspector interface.
package noc

import "fmt"

// NodeID identifies one tile (core + caches + router) in the mesh.
type NodeID int

// Coord is a mesh coordinate. X grows eastward, Y grows southward.
type Coord struct {
	X, Y int
}

// Mesh describes a Width×Height 2D mesh.
type Mesh struct {
	Width, Height int
}

// MeshForSize returns the most-square mesh with Width ≥ Height whose node
// count is exactly n. It matches the paper's configurations: 64 → 8×8,
// 128 → 16×8, 256 → 16×16, 512 → 32×16.
func MeshForSize(n int) (Mesh, error) {
	if n <= 0 {
		return Mesh{}, fmt.Errorf("noc: invalid system size %d", n)
	}
	best := Mesh{}
	for h := 1; h*h <= n; h++ {
		if n%h == 0 {
			best = Mesh{Width: n / h, Height: h}
		}
	}
	if best.Width == 0 {
		return Mesh{}, fmt.Errorf("noc: size %d has no mesh factorisation", n)
	}
	return best, nil
}

// Nodes returns the total node count.
func (m Mesh) Nodes() int { return m.Width * m.Height }

// Contains reports whether c lies inside the mesh.
func (m Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.Width && c.Y >= 0 && c.Y < m.Height
}

// ID maps a coordinate to its node ID (row-major).
func (m Mesh) ID(c Coord) NodeID { return NodeID(c.Y*m.Width + c.X) }

// Coord maps a node ID back to its coordinate.
func (m Mesh) Coord(id NodeID) Coord {
	return Coord{X: int(id) % m.Width, Y: int(id) / m.Width}
}

// Center returns the node closest to the geometric center of the mesh.
func (m Mesh) Center() NodeID {
	return m.ID(Coord{X: (m.Width - 1) / 2, Y: (m.Height - 1) / 2})
}

// Corner returns the node at the north-west corner (0, 0).
func (m Mesh) Corner() NodeID { return m.ID(Coord{}) }

// ManhattanDistance returns the Manhattan (hop) distance between two nodes.
func (m Mesh) ManhattanDistance(a, b NodeID) int {
	ca, cb := m.Coord(a), m.Coord(b)
	return abs(ca.X-cb.X) + abs(ca.Y-cb.Y)
}

// Direction identifies a router port. Local is deliberately the zero value:
// a default-initialised route targets the local ejection port, which is the
// only port that is always legal.
type Direction int

// Router port directions. North is toward smaller Y, South toward larger Y,
// East toward larger X, West toward smaller X.
const (
	Local Direction = iota
	North
	East
	South
	West
	numDirections
)

// String implements fmt.Stringer for debugging output.
func (d Direction) String() string {
	switch d {
	case Local:
		return "local"
	case North:
		return "north"
	case East:
		return "east"
	case South:
		return "south"
	case West:
		return "west"
	default:
		return fmt.Sprintf("direction(%d)", int(d))
	}
}

// Opposite returns the port on which a neighbour receives flits sent out of
// d. Local has no opposite and maps to Local.
func (d Direction) Opposite() Direction {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return Local
	}
}

// Neighbor returns the node adjacent to id in direction d and true, or
// (0, false) at a mesh edge or for Local.
func (m Mesh) Neighbor(id NodeID, d Direction) (NodeID, bool) {
	c := m.Coord(id)
	switch d {
	case North:
		c.Y--
	case South:
		c.Y++
	case East:
		c.X++
	case West:
		c.X--
	default:
		return 0, false
	}
	if !m.Contains(c) {
		return 0, false
	}
	return m.ID(c), true
}

// PathXY returns the sequence of routers an XY-routed packet traverses from
// src to dst, inclusive of both endpoints. This is the closed-form path
// model used by the fast infection-rate predictor.
func (m Mesh) PathXY(src, dst NodeID) []NodeID {
	cs, cd := m.Coord(src), m.Coord(dst)
	path := make([]NodeID, 0, abs(cs.X-cd.X)+abs(cs.Y-cd.Y)+1)
	c := cs
	path = append(path, m.ID(c))
	for c.X != cd.X {
		if c.X < cd.X {
			c.X++
		} else {
			c.X--
		}
		path = append(path, m.ID(c))
	}
	for c.Y != cd.Y {
		if c.Y < cd.Y {
			c.Y++
		} else {
			c.Y--
		}
		path = append(path, m.ID(c))
	}
	return path
}

// PathYX returns the routers a YX-routed packet traverses from src to dst,
// inclusive of both endpoints — the alternate-class path of the dual-path
// defense.
func (m Mesh) PathYX(src, dst NodeID) []NodeID {
	cs, cd := m.Coord(src), m.Coord(dst)
	path := make([]NodeID, 0, abs(cs.X-cd.X)+abs(cs.Y-cd.Y)+1)
	c := cs
	path = append(path, m.ID(c))
	for c.Y != cd.Y {
		if c.Y < cd.Y {
			c.Y++
		} else {
			c.Y--
		}
		path = append(path, m.ID(c))
	}
	for c.X != cd.X {
		if c.X < cd.X {
			c.X++
		} else {
			c.X--
		}
		path = append(path, m.ID(c))
	}
	return path
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
