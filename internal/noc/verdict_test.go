package noc

import (
	"math/rand"
	"testing"
)

func TestVerdictString(t *testing.T) {
	tests := []struct {
		give Verdict
		want string
	}{
		{VerdictForward, "forward"},
		{VerdictDrop, "drop"},
		{VerdictLoopback, "loopback"},
		{Verdict(9), "verdict(9)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}

// dropInspector condemns every POWER_REQ crossing router at.
type dropInspector struct{ at NodeID }

func (di dropInspector) InspectRC(r NodeID, p *Packet) Verdict {
	if r == di.at && p.Type == TypePowerReq {
		return VerdictDrop
	}
	return VerdictForward
}

func TestVerdictDropDiscardsPacket(t *testing.T) {
	n := newTestNetwork(t, 4, 4)
	n.SetInspector(dropInspector{at: 1}) // on the XY path 0 -> 3
	delivered := 0
	n.Attach(3, func(p *Packet) { delivered++ })
	if err := n.Inject(&Packet{Src: 0, Dst: 3, Type: TypePowerReq, Payload: 5}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if _, drained := n.RunUntilIdle(1000); !drained {
		t.Fatal("drop left the network busy")
	}
	if delivered != 0 {
		t.Fatal("dropped packet was delivered")
	}
	if n.Stats().DroppedPackets != 1 {
		t.Errorf("dropped = %d, want 1", n.Stats().DroppedPackets)
	}
}

func TestVerdictDropMultiFlitPacket(t *testing.T) {
	// A 5-flit data packet must be fully consumed, releasing the VC.
	n := newTestNetwork(t, 4, 4)
	drop := dropInspector{at: 1}
	n.SetInspector(inspectorFunc(func(r NodeID, p *Packet) Verdict {
		if r == drop.at && p.Type == TypeMemReadReply {
			return VerdictDrop
		}
		return VerdictForward
	}))
	delivered := 0
	n.Attach(3, func(p *Packet) { delivered++ })
	if err := n.Inject(&Packet{Src: 0, Dst: 3, Type: TypeMemReadReply}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if _, drained := n.RunUntilIdle(1000); !drained {
		t.Fatal("multi-flit drop left the network busy")
	}
	if delivered != 0 || n.Stats().DroppedPackets != 1 {
		t.Fatalf("delivered=%d dropped=%d", delivered, n.Stats().DroppedPackets)
	}
	// The VC must be reusable: send a second packet through the same path.
	ok := 0
	n.Attach(3, func(p *Packet) { ok++ })
	if err := n.Inject(&Packet{Src: 0, Dst: 3, Type: TypePowerGrant}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	n.RunUntilIdle(1000)
	if ok != 1 {
		t.Fatal("VC not released after drop")
	}
}

type inspectorFunc func(NodeID, *Packet) Verdict

func (f inspectorFunc) InspectRC(r NodeID, p *Packet) Verdict { return f(r, p) }

func TestVerdictLoopbackReturnsToSource(t *testing.T) {
	n := newTestNetwork(t, 4, 4)
	n.SetInspector(inspectorFunc(func(r NodeID, p *Packet) Verdict {
		if r == 1 && p.Type == TypePowerReq && !p.LoopedBack {
			return VerdictLoopback
		}
		return VerdictForward
	}))
	var atSrc, atDst int
	n.Attach(0, func(p *Packet) {
		if p.LoopedBack {
			atSrc++
		}
	})
	n.Attach(3, func(p *Packet) { atDst++ })
	if err := n.Inject(&Packet{Src: 0, Dst: 3, Type: TypePowerReq, Payload: 5}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if _, drained := n.RunUntilIdle(1000); !drained {
		t.Fatal("loopback left the network busy")
	}
	if atDst != 0 {
		t.Fatal("looped packet still reached its destination")
	}
	if atSrc != 1 {
		t.Fatalf("looped packet deliveries at source = %d, want 1", atSrc)
	}
	if n.Stats().LoopedBack != 1 {
		t.Errorf("stats looped = %d, want 1", n.Stats().LoopedBack)
	}
}

func TestDropUnderLoadStaysConsistent(t *testing.T) {
	// Heavy many-to-one traffic with a dropping router on the hot path:
	// everything either delivers or is counted dropped; nothing wedges.
	n := newTestNetwork(t, 8, 8)
	gm := n.Mesh().Center()
	hot, _ := n.Mesh().Neighbor(gm, West)
	n.SetInspector(inspectorFunc(func(r NodeID, p *Packet) Verdict {
		if r == hot && p.Type == TypePowerReq {
			return VerdictDrop
		}
		return VerdictForward
	}))
	delivered := 0
	n.Attach(gm, func(p *Packet) { delivered++ })
	injected := 0
	for round := 0; round < 3; round++ {
		for id := NodeID(0); id < NodeID(n.Mesh().Nodes()); id++ {
			if id == gm {
				continue
			}
			if err := n.Inject(&Packet{Src: id, Dst: gm, Type: TypePowerReq}); err != nil {
				t.Fatalf("Inject: %v", err)
			}
			injected++
		}
	}
	if _, drained := n.RunUntilIdle(2_000_000); !drained {
		t.Fatal("network wedged under dropping load")
	}
	s := n.Stats()
	if int(s.DroppedPackets)+delivered != injected {
		t.Fatalf("dropped %d + delivered %d != injected %d", s.DroppedPackets, delivered, injected)
	}
	if s.DroppedPackets == 0 {
		t.Fatal("hot-path Trojan dropped nothing")
	}
}

// Property: under random traffic with a randomly misbehaving inspector,
// every injected packet is accounted for exactly once — delivered at its
// destination, delivered back at its source (loopback), or counted
// dropped. Conservation is the core lossless-fabric invariant.
func TestVerdictConservationProperty(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		n := newTestNetwork(t, 6, 6)
		evil := NodeID(rng.Intn(36))
		n.SetInspector(inspectorFunc(func(r NodeID, p *Packet) Verdict {
			if r != evil || p.LoopedBack {
				return VerdictForward
			}
			switch rng.Intn(4) {
			case 0:
				return VerdictDrop
			case 1:
				return VerdictLoopback
			default:
				return VerdictForward
			}
		}))
		delivered := 0
		for id := NodeID(0); id < 36; id++ {
			n.Attach(id, func(p *Packet) { delivered++ })
		}
		injected := 200
		for i := 0; i < injected; i++ {
			src := NodeID(rng.Intn(36))
			dst := NodeID(rng.Intn(36))
			typ := TypePowerReq
			if i%3 == 0 {
				typ = TypeMemReadReply
			}
			if err := n.Inject(&Packet{Src: src, Dst: dst, Type: typ}); err != nil {
				t.Fatalf("Inject: %v", err)
			}
			if i%2 == 0 {
				n.Step()
			}
		}
		if _, drained := n.RunUntilIdle(1_000_000); !drained {
			t.Fatalf("seed %d: network wedged", seed)
		}
		s := n.Stats()
		if delivered+int(s.DroppedPackets) != injected {
			t.Fatalf("seed %d: delivered %d + dropped %d != injected %d",
				seed, delivered, s.DroppedPackets, injected)
		}
	}
}
