package noc

import (
	"testing"
)

// TestStatsSnapshotIsValueCopy locks in the array-based Stats contract:
// the snapshot shares no storage with the network's live counters, without
// any defensive map copying.
func TestStatsSnapshotIsValueCopy(t *testing.T) {
	n := newTestNetwork(t, 4, 4)
	n.Attach(15, func(p *Packet) {})
	if err := n.Inject(&Packet{Src: 0, Dst: 15, Type: TypePowerReq}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if _, drained := n.RunUntilIdle(1000); !drained {
		t.Fatal("network did not drain")
	}
	s := n.Stats()
	if s.DeliveredBy[TypePowerReq] != 1 {
		t.Fatalf("DeliveredBy[POWER_REQ] = %d, want 1", s.DeliveredBy[TypePowerReq])
	}
	// Mutating every field of the snapshot must leave the live stats alone.
	s.DeliveredBy[TypePowerReq] = 999
	s.LatencySumBy[TypePowerReq] = 999
	s.Delivered = 999
	fresh := n.Stats()
	if fresh.DeliveredBy[TypePowerReq] != 1 || fresh.Delivered != 1 {
		t.Error("Stats snapshot shares storage with the live counters")
	}
	if fresh.LatencySumBy[TypePowerReq] == 999 {
		t.Error("LatencySumBy snapshot shares storage with the live counters")
	}
}

// TestStatsSnapshotAllocFree verifies the Stats accessor is a plain value
// copy — the old map-based snapshot allocated two maps per call.
func TestStatsSnapshotAllocFree(t *testing.T) {
	n := newTestNetwork(t, 4, 4)
	allocs := testing.AllocsPerRun(100, func() {
		s := n.Stats()
		_ = s.Delivered
	})
	if allocs != 0 {
		t.Errorf("Stats() allocates %v times per call, want 0", allocs)
	}
}

func TestAvgLatencyOutOfRangeType(t *testing.T) {
	var s Stats
	if got := s.AvgLatency(PacketType(4096)); got != 0 {
		t.Errorf("AvgLatency(out of range) = %v, want 0", got)
	}
}

// TestStepSteadyStateZeroAllocs is the allocation-regression gate for the
// hot path: once an 8×8 mesh is warm (flit pool primed, link-pipeline ring
// at its high-water mark), stepping the network through sustained
// many-to-one traffic must not allocate at all.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	n := newTestNetwork(t, 8, 8)
	gm := n.Mesh().Center()
	n.Attach(gm, func(p *Packet) {})
	// Deep source queues keep every NI busy for thousands of cycles.
	for round := 0; round < 40; round++ {
		for id := NodeID(0); id < NodeID(n.Mesh().Nodes()); id++ {
			if id == gm {
				continue
			}
			if err := n.Inject(&Packet{Src: id, Dst: gm, Type: TypePowerReq}); err != nil {
				t.Fatalf("Inject: %v", err)
			}
		}
	}
	// Warm up: pools and rings reach their steady-state capacity.
	for i := 0; i < 200; i++ {
		n.Step()
	}
	if !n.Busy() {
		t.Fatal("network drained during warmup; steady state not reached")
	}
	allocs := testing.AllocsPerRun(500, func() { n.Step() })
	if !n.Busy() {
		t.Fatal("network drained during measurement; steady state not reached")
	}
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %v times per cycle, want 0", allocs)
	}
}

// TestBusyIsCheapAndConsistent cross-checks the O(1) live-flit counter
// against an exhaustive sweep of the network state after every cycle of a
// contended drain.
func TestBusyIsCheapAndConsistent(t *testing.T) {
	n := newTestNetwork(t, 6, 6)
	gm := n.Mesh().Center()
	n.Attach(gm, func(p *Packet) {})
	for id := NodeID(0); id < NodeID(n.Mesh().Nodes()); id++ {
		if id == gm {
			continue
		}
		if err := n.Inject(&Packet{Src: id, Dst: gm, Type: TypeMemReadReply}); err != nil {
			t.Fatalf("Inject: %v", err)
		}
	}
	sweep := func() bool {
		if n.inflLen > 0 {
			return true
		}
		for i, ni := range n.nis {
			if ni.qlen() > 0 {
				return true
			}
			for v := range n.routers[i].vcs {
				if n.routers[i].vcs[v].n > 0 {
					return true
				}
			}
		}
		return false
	}
	for cycle := 0; cycle < 100000; cycle++ {
		if n.Busy() != sweep() {
			t.Fatalf("cycle %d: Busy() = %v disagrees with exhaustive sweep", cycle, n.Busy())
		}
		if !n.Busy() {
			return
		}
		n.Step()
	}
	t.Fatal("network did not drain")
}

// TestHandlerReinjectionDoesNotCorruptVC pins the flit-pool hazard at the
// ejection port: a delivery handler that synchronously injects a new
// multi-flit packet recycles the just-freed tail flit, so the switch must
// decide tail-ness before ejecting. With a single VC, a leaked VC owner
// wedges the network permanently.
func TestHandlerReinjectionDoesNotCorruptVC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VCs = 1
	n, err := New(Mesh{Width: 4, Height: 1}, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	delivered := 0
	const rounds = 20
	n.Attach(0, func(p *Packet) { delivered++ })
	n.Attach(3, func(p *Packet) {
		delivered++
		if p.Type != TypeMemReadReply {
			return
		}
		// Echo every data packet with another data packet (the cache
		// hierarchy does exactly this: a fill triggers an eviction
		// writeback from inside the delivery handler).
		if err := n.Inject(&Packet{Src: 3, Dst: 0, Type: TypeMemWriteReq}); err != nil {
			t.Fatalf("handler Inject: %v", err)
		}
	})
	for i := 0; i < rounds; i++ {
		if err := n.Inject(&Packet{Src: 0, Dst: 3, Type: TypeMemReadReply}); err != nil {
			t.Fatalf("Inject: %v", err)
		}
	}
	if _, drained := n.RunUntilIdle(1_000_000); !drained {
		t.Fatalf("network wedged: %d of %d deliveries (leaked VC owner)", delivered, 2*rounds)
	}
	if delivered != 2*rounds {
		t.Fatalf("delivered = %d, want %d", delivered, 2*rounds)
	}
}

// TestFlitPoolRecycles confirms ejected flits are reused by later
// injections instead of growing the heap.
func TestFlitPoolRecycles(t *testing.T) {
	n := newTestNetwork(t, 4, 4)
	n.Attach(3, func(p *Packet) {})
	send := func() {
		if err := n.Inject(&Packet{Src: 0, Dst: 3, Type: TypeMemReadReply}); err != nil {
			t.Fatalf("Inject: %v", err)
		}
		if _, drained := n.RunUntilIdle(1000); !drained {
			t.Fatal("network did not drain")
		}
	}
	send()
	if got := len(n.flitPool); got != DataPacketFlits {
		t.Fatalf("pool holds %d flits after one data packet, want %d", got, DataPacketFlits)
	}
	send()
	if got := len(n.flitPool); got != DataPacketFlits {
		t.Fatalf("pool holds %d flits after recycling, want %d (pool must not grow)", got, DataPacketFlits)
	}
}
