package noc

import (
	"math/rand"
	"testing"
)

func newTestNetwork(t *testing.T, w, h int) *Network {
	t.Helper()
	n, err := New(Mesh{Width: w, Height: h}, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		wantOK bool
	}{
		{name: "default ok", mutate: func(*Config) {}, wantOK: true},
		{name: "zero VCs", mutate: func(c *Config) { c.VCs = 0 }},
		{name: "zero depth", mutate: func(c *Config) { c.BufDepth = 0 }},
		{name: "zero router cycles", mutate: func(c *Config) { c.RouterCycles = 0 }},
		{name: "negative link", mutate: func(c *Config) { c.LinkCycles = -1 }},
		{name: "nil routing", mutate: func(c *Config) { c.Routing = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if tt.wantOK && err != nil {
				t.Errorf("Validate: %v", err)
			}
			if !tt.wantOK && err == nil {
				t.Error("Validate should fail")
			}
		})
	}
}

func TestDefaultConfigMatchesTableI(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.VCs != 4 {
		t.Errorf("VCs = %d, want 4 (Table I)", cfg.VCs)
	}
	if cfg.BufDepth != 5 {
		t.Errorf("BufDepth = %d, want 5 (Table I)", cfg.BufDepth)
	}
	if cfg.RouterCycles != 2 || cfg.LinkCycles != 1 {
		t.Errorf("latencies = %d/%d, want 2/1 (Table I)", cfg.RouterCycles, cfg.LinkCycles)
	}
	if cfg.Routing.Name() != "xy" {
		t.Errorf("routing = %q, want xy (Table I)", cfg.Routing.Name())
	}
}

func TestSinglePacketDelivery(t *testing.T) {
	n := newTestNetwork(t, 4, 4)
	var got *Packet
	n.Attach(15, func(p *Packet) { got = p })
	p := &Packet{Src: 0, Dst: 15, Type: TypePowerReq, Payload: 1234}
	if err := n.Inject(p); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if _, drained := n.RunUntilIdle(1000); !drained {
		t.Fatal("network did not drain")
	}
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.Payload != 1234 {
		t.Errorf("payload = %d, want 1234", got.Payload)
	}
	// 4x4 mesh corner to corner: 6 links, 7 routers traversed.
	if got.Hops != 7 {
		t.Errorf("hops = %d, want 7", got.Hops)
	}
	if got.DeliveredAt <= got.InjectedAt {
		t.Error("delivery time must be after injection")
	}
}

func TestSelfDelivery(t *testing.T) {
	n := newTestNetwork(t, 2, 2)
	var got *Packet
	n.Attach(1, func(p *Packet) { got = p })
	if err := n.Inject(&Packet{Src: 1, Dst: 1, Type: TypePowerGrant, Payload: 9}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	n.RunUntilIdle(100)
	if got == nil || got.Payload != 9 {
		t.Fatal("self-addressed packet not delivered")
	}
}

func TestInjectValidation(t *testing.T) {
	n := newTestNetwork(t, 2, 2)
	if err := n.Inject(&Packet{Src: 0, Dst: 99, Type: TypePowerReq}); err == nil {
		t.Error("off-mesh destination should fail")
	}
	if err := n.Inject(&Packet{Src: 0, Dst: 1, Type: TypeInvalid}); err == nil {
		t.Error("invalid type should fail")
	}
}

func TestDataPacketDelivery(t *testing.T) {
	n := newTestNetwork(t, 4, 4)
	delivered := 0
	n.Attach(12, func(p *Packet) { delivered++ })
	if err := n.Inject(&Packet{Src: 3, Dst: 12, Type: TypeMemReadReply}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if _, drained := n.RunUntilIdle(1000); !drained {
		t.Fatal("network did not drain")
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
}

func TestManyToOneDelivery(t *testing.T) {
	// Every node sends a power request to the centre: the Fig 3/4 traffic
	// pattern. All must arrive exactly once.
	n := newTestNetwork(t, 8, 8)
	gm := n.Mesh().Center()
	got := make(map[NodeID]int)
	n.Attach(gm, func(p *Packet) { got[p.Src]++ })
	for id := NodeID(0); id < NodeID(n.Mesh().Nodes()); id++ {
		if id == gm {
			continue
		}
		if err := n.Inject(&Packet{Src: id, Dst: gm, Type: TypePowerReq, Payload: uint32(id)}); err != nil {
			t.Fatalf("Inject %d: %v", id, err)
		}
	}
	if _, drained := n.RunUntilIdle(100000); !drained {
		t.Fatal("network did not drain")
	}
	if len(got) != n.Mesh().Nodes()-1 {
		t.Fatalf("sources delivered = %d, want %d", len(got), n.Mesh().Nodes()-1)
	}
	for src, count := range got {
		if count != 1 {
			t.Errorf("source %d delivered %d times", src, count)
		}
	}
	s := n.Stats()
	if s.Delivered != uint64(n.Mesh().Nodes()-1) {
		t.Errorf("stats delivered = %d", s.Delivered)
	}
	if s.AvgLatency(TypePowerReq) <= 0 {
		t.Error("average latency must be positive")
	}
}

func TestRandomTrafficAllDelivered(t *testing.T) {
	n := newTestNetwork(t, 6, 6)
	rng := rand.New(rand.NewSource(42))
	want := 500
	delivered := 0
	for id := NodeID(0); id < NodeID(n.Mesh().Nodes()); id++ {
		n.Attach(id, func(p *Packet) { delivered++ })
	}
	types := []PacketType{TypePowerReq, TypeMemReadReq, TypeMemReadReply, TypeMemWriteReq, TypeCohInvalidate}
	injected := 0
	for cycle := 0; injected < want; cycle++ {
		// Inject a few random packets per cycle to create contention.
		for k := 0; k < 4 && injected < want; k++ {
			src := NodeID(rng.Intn(n.Mesh().Nodes()))
			dst := NodeID(rng.Intn(n.Mesh().Nodes()))
			typ := types[rng.Intn(len(types))]
			if err := n.Inject(&Packet{Src: src, Dst: dst, Type: typ, Payload: uint32(injected)}); err != nil {
				t.Fatalf("Inject: %v", err)
			}
			injected++
		}
		n.Step()
	}
	if _, drained := n.RunUntilIdle(1_000_000); !drained {
		t.Fatalf("network did not drain: delivered %d of %d", delivered, want)
	}
	if delivered != want {
		t.Fatalf("delivered = %d, want %d", delivered, want)
	}
}

func TestWormholeFlitConservation(t *testing.T) {
	// Data packets between random pairs under the adaptive router: the
	// ejection-side assertion in eject() catches lost or duplicated flits.
	cfg := DefaultConfig()
	cfg.Routing = WestFirstRouting{}
	n, err := New(Mesh{Width: 5, Height: 5}, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	delivered := 0
	for id := NodeID(0); id < NodeID(n.Mesh().Nodes()); id++ {
		n.Attach(id, func(p *Packet) { delivered++ })
	}
	rng := rand.New(rand.NewSource(7))
	const count = 300
	for i := 0; i < count; i++ {
		src := NodeID(rng.Intn(25))
		dst := NodeID(rng.Intn(25))
		if err := n.Inject(&Packet{Src: src, Dst: dst, Type: TypeMemWriteReq}); err != nil {
			t.Fatalf("Inject: %v", err)
		}
		if i%3 == 0 {
			n.Step()
		}
	}
	if _, drained := n.RunUntilIdle(1_000_000); !drained {
		t.Fatal("network did not drain")
	}
	if delivered != count {
		t.Fatalf("delivered = %d, want %d", delivered, count)
	}
}

func TestHotspotContentionDoesNotDeadlock(t *testing.T) {
	// Saturating a single ejection port exercises VC backpressure.
	n := newTestNetwork(t, 4, 4)
	delivered := 0
	n.Attach(5, func(p *Packet) { delivered++ })
	count := 0
	for id := NodeID(0); id < 16; id++ {
		if id == 5 {
			continue
		}
		for k := 0; k < 10; k++ {
			if err := n.Inject(&Packet{Src: id, Dst: 5, Type: TypeMemReadReply}); err != nil {
				t.Fatalf("Inject: %v", err)
			}
			count++
		}
	}
	if _, drained := n.RunUntilIdle(2_000_000); !drained {
		t.Fatalf("hotspot deadlock: delivered %d of %d", delivered, count)
	}
	if delivered != count {
		t.Fatalf("delivered = %d, want %d", delivered, count)
	}
}

type recordingInspector struct {
	visits map[NodeID]int
}

func (ri *recordingInspector) InspectRC(r NodeID, p *Packet) Verdict {
	if ri.visits == nil {
		ri.visits = make(map[NodeID]int)
	}
	ri.visits[r]++
	return VerdictForward
}

func TestInspectorSeesEveryRouterOnPath(t *testing.T) {
	n := newTestNetwork(t, 8, 8)
	ri := &recordingInspector{}
	n.SetInspector(ri)
	src, dst := NodeID(0), NodeID(63)
	n.Attach(dst, func(p *Packet) {})
	if err := n.Inject(&Packet{Src: src, Dst: dst, Type: TypePowerReq, Payload: 7}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	n.RunUntilIdle(10000)
	path := n.Mesh().PathXY(src, dst)
	if len(ri.visits) != len(path) {
		t.Fatalf("inspected %d routers, want %d", len(ri.visits), len(path))
	}
	for _, r := range path {
		if ri.visits[r] != 1 {
			t.Errorf("router %d inspected %d times, want 1", r, ri.visits[r])
		}
	}
}

type tamperInspector struct {
	at NodeID
}

func (ti tamperInspector) InspectRC(r NodeID, p *Packet) Verdict {
	if r == ti.at && p.Type == TypePowerReq {
		p.Payload = 0
		p.Tampered = true
	}
	return VerdictForward
}

func TestInspectorCanTamperPayload(t *testing.T) {
	n := newTestNetwork(t, 4, 4)
	// Node 1 is on the XY path 0 -> 3 (same row).
	n.SetInspector(tamperInspector{at: 1})
	var got *Packet
	n.Attach(3, func(p *Packet) { got = p })
	if err := n.Inject(&Packet{Src: 0, Dst: 3, Type: TypePowerReq, Payload: 5000}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	n.RunUntilIdle(1000)
	if got == nil {
		t.Fatal("packet lost")
	}
	if !got.Tampered || got.Payload != 0 {
		t.Errorf("payload = %d tampered = %v, want 0/true", got.Payload, got.Tampered)
	}
	if got.OriginalPayload != 5000 {
		t.Errorf("original payload = %d, want 5000", got.OriginalPayload)
	}
	if n.Stats().TamperedPowerReq != 1 {
		t.Errorf("tampered count = %d, want 1", n.Stats().TamperedPowerReq)
	}
}

func TestInspectorOffPathDoesNotTamper(t *testing.T) {
	n := newTestNetwork(t, 4, 4)
	// Node 13 is not on the XY path 0 -> 3.
	n.SetInspector(tamperInspector{at: 13})
	var got *Packet
	n.Attach(3, func(p *Packet) { got = p })
	if err := n.Inject(&Packet{Src: 0, Dst: 3, Type: TypePowerReq, Payload: 5000}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	n.RunUntilIdle(1000)
	if got == nil || got.Tampered {
		t.Fatal("off-path inspector must not tamper")
	}
}

func TestXYLatencyUncontended(t *testing.T) {
	// A lone meta packet: latency ≈ hops × (router+link cycles) plus
	// injection/ejection overhead; sanity-check the pipeline constant.
	n := newTestNetwork(t, 8, 1)
	var got *Packet
	n.Attach(7, func(p *Packet) { got = p })
	if err := n.Inject(&Packet{Src: 0, Dst: 7, Type: TypePowerReq}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	n.RunUntilIdle(1000)
	if got == nil {
		t.Fatal("not delivered")
	}
	lat := got.DeliveredAt - got.InjectedAt
	// 7 links × 3 cycles each + ~2 cycles inject/eject.
	if lat < 21 || lat > 25 {
		t.Errorf("latency = %d, want about 23", lat)
	}
}

func TestStatsSnapshotIsCopy(t *testing.T) {
	n := newTestNetwork(t, 2, 2)
	s := n.Stats()
	s.DeliveredBy[TypePowerReq] = 999
	if n.Stats().DeliveredBy[TypePowerReq] == 999 {
		t.Error("Stats must return a defensive copy")
	}
}

func TestBusyLifecycle(t *testing.T) {
	n := newTestNetwork(t, 3, 3)
	if n.Busy() {
		t.Error("fresh network should be idle")
	}
	n.Attach(8, func(p *Packet) {})
	if err := n.Inject(&Packet{Src: 0, Dst: 8, Type: TypePowerReq}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if !n.Busy() {
		t.Error("network with queued packet should be busy")
	}
	n.RunUntilIdle(1000)
	if n.Busy() {
		t.Error("drained network should be idle")
	}
}

func TestRoutingByName(t *testing.T) {
	for _, name := range []string{"xy", "west-first", "adaptive"} {
		if _, err := RoutingByName(name); err != nil {
			t.Errorf("RoutingByName(%q): %v", name, err)
		}
	}
	if _, err := RoutingByName("nope"); err == nil {
		t.Error("unknown routing name should fail")
	}
}

func TestWestFirstDeliversUnderLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Routing = WestFirstRouting{}
	n, err := New(Mesh{Width: 8, Height: 8}, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	gm := n.Mesh().Center()
	delivered := 0
	n.Attach(gm, func(p *Packet) { delivered++ })
	count := 0
	for id := NodeID(0); id < 64; id++ {
		if id == gm {
			continue
		}
		if err := n.Inject(&Packet{Src: id, Dst: gm, Type: TypePowerReq}); err != nil {
			t.Fatalf("Inject: %v", err)
		}
		count++
	}
	if _, drained := n.RunUntilIdle(1_000_000); !drained {
		t.Fatal("west-first network did not drain")
	}
	if delivered != count {
		t.Fatalf("delivered = %d, want %d", delivered, count)
	}
}
