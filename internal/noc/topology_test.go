package noc

import (
	"testing"
	"testing/quick"
)

func TestMeshForSize(t *testing.T) {
	tests := []struct {
		give  int
		wantW int
		wantH int
	}{
		{give: 64, wantW: 8, wantH: 8},
		{give: 128, wantW: 16, wantH: 8},
		{give: 256, wantW: 16, wantH: 16},
		{give: 512, wantW: 32, wantH: 16},
		{give: 1, wantW: 1, wantH: 1},
	}
	for _, tt := range tests {
		m, err := MeshForSize(tt.give)
		if err != nil {
			t.Fatalf("MeshForSize(%d): %v", tt.give, err)
		}
		if m.Width != tt.wantW || m.Height != tt.wantH {
			t.Errorf("MeshForSize(%d) = %dx%d, want %dx%d", tt.give, m.Width, m.Height, tt.wantW, tt.wantH)
		}
	}
}

func TestMeshForSizeInvalid(t *testing.T) {
	if _, err := MeshForSize(0); err == nil {
		t.Error("MeshForSize(0) should fail")
	}
	if _, err := MeshForSize(-4); err == nil {
		t.Error("MeshForSize(-4) should fail")
	}
}

func TestIDCoordRoundTrip(t *testing.T) {
	m := Mesh{Width: 7, Height: 5}
	for id := NodeID(0); id < NodeID(m.Nodes()); id++ {
		if got := m.ID(m.Coord(id)); got != id {
			t.Fatalf("round trip for %d gave %d", id, got)
		}
	}
}

func TestContains(t *testing.T) {
	m := Mesh{Width: 4, Height: 3}
	tests := []struct {
		give Coord
		want bool
	}{
		{Coord{0, 0}, true},
		{Coord{3, 2}, true},
		{Coord{4, 0}, false},
		{Coord{0, 3}, false},
		{Coord{-1, 0}, false},
	}
	for _, tt := range tests {
		if got := m.Contains(tt.give); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestCenterAndCorner(t *testing.T) {
	m := Mesh{Width: 16, Height: 16}
	if c := m.Coord(m.Center()); c.X != 7 || c.Y != 7 {
		t.Errorf("Center of 16x16 = %v, want (7,7)", c)
	}
	if m.Corner() != 0 {
		t.Errorf("Corner = %d, want 0", m.Corner())
	}
}

func TestManhattanDistance(t *testing.T) {
	m := Mesh{Width: 8, Height: 8}
	a := m.ID(Coord{1, 1})
	b := m.ID(Coord{4, 6})
	if got := m.ManhattanDistance(a, b); got != 8 {
		t.Errorf("distance = %d, want 8", got)
	}
	if got := m.ManhattanDistance(a, a); got != 0 {
		t.Errorf("self distance = %d, want 0", got)
	}
}

func TestNeighbor(t *testing.T) {
	m := Mesh{Width: 3, Height: 3}
	mid := m.ID(Coord{1, 1})
	tests := []struct {
		dir  Direction
		want Coord
	}{
		{North, Coord{1, 0}},
		{South, Coord{1, 2}},
		{East, Coord{2, 1}},
		{West, Coord{0, 1}},
	}
	for _, tt := range tests {
		nb, ok := m.Neighbor(mid, tt.dir)
		if !ok {
			t.Fatalf("Neighbor(%v) missing", tt.dir)
		}
		if m.Coord(nb) != tt.want {
			t.Errorf("Neighbor(%v) = %v, want %v", tt.dir, m.Coord(nb), tt.want)
		}
	}
	// Edges.
	if _, ok := m.Neighbor(m.ID(Coord{0, 0}), North); ok {
		t.Error("north neighbour of top row should not exist")
	}
	if _, ok := m.Neighbor(m.ID(Coord{0, 0}), West); ok {
		t.Error("west neighbour of left column should not exist")
	}
	if _, ok := m.Neighbor(mid, Local); ok {
		t.Error("Local has no neighbour")
	}
}

func TestDirectionOppositeAndString(t *testing.T) {
	pairs := map[Direction]Direction{North: South, South: North, East: West, West: East, Local: Local}
	for d, want := range pairs {
		if d.Opposite() != want {
			t.Errorf("%v.Opposite() = %v, want %v", d, d.Opposite(), want)
		}
	}
	for _, d := range []Direction{Local, North, East, South, West} {
		if d.String() == "" {
			t.Errorf("empty String for %d", int(d))
		}
	}
}

func TestPathXYShape(t *testing.T) {
	m := Mesh{Width: 8, Height: 8}
	src := m.ID(Coord{1, 2})
	dst := m.ID(Coord{5, 6})
	path := m.PathXY(src, dst)
	if len(path) != m.ManhattanDistance(src, dst)+1 {
		t.Fatalf("path length = %d, want %d", len(path), m.ManhattanDistance(src, dst)+1)
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatal("path endpoints wrong")
	}
	// XY: all X movement happens before any Y movement.
	seenY := false
	for i := 1; i < len(path); i++ {
		prev, cur := m.Coord(path[i-1]), m.Coord(path[i])
		if prev.Y != cur.Y {
			seenY = true
		}
		if prev.X != cur.X && seenY {
			t.Fatal("X movement after Y movement violates XY routing")
		}
	}
}

func TestPathXYSelf(t *testing.T) {
	m := Mesh{Width: 4, Height: 4}
	path := m.PathXY(5, 5)
	if len(path) != 1 || path[0] != 5 {
		t.Fatalf("self path = %v, want [5]", path)
	}
}

// Property: every consecutive pair in an XY path is mesh-adjacent and the
// path never leaves the mesh.
func TestPathXYAdjacency(t *testing.T) {
	m := Mesh{Width: 9, Height: 6}
	f := func(a, b uint8) bool {
		src := NodeID(int(a) % m.Nodes())
		dst := NodeID(int(b) % m.Nodes())
		path := m.PathXY(src, dst)
		for i := 1; i < len(path); i++ {
			if m.ManhattanDistance(path[i-1], path[i]) != 1 {
				return false
			}
			if !m.Contains(m.Coord(path[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
