package noc

import (
	"testing"
	"testing/quick"
)

func TestPacketTypeString(t *testing.T) {
	if TypePowerReq.String() != "POWER_REQ" {
		t.Errorf("POWER_REQ string = %q", TypePowerReq.String())
	}
	if TypeConfigCmd.String() != "CONFIG_CMD" {
		t.Errorf("CONFIG_CMD string = %q", TypeConfigCmd.String())
	}
	if PacketType(999).String() == "" {
		t.Error("unknown type should still stringify")
	}
}

func TestFlitCountTableI(t *testing.T) {
	tests := []struct {
		name string
		give *Packet
		want int
	}{
		{name: "power request is meta (1 flit)", give: &Packet{Type: TypePowerReq}, want: 1},
		{name: "power grant is meta", give: &Packet{Type: TypePowerGrant}, want: 1},
		{name: "config cmd is meta", give: &Packet{Type: TypeConfigCmd}, want: 1},
		{name: "read request is meta", give: &Packet{Type: TypeMemReadReq}, want: 1},
		{name: "read reply is data (5 flits)", give: &Packet{Type: TypeMemReadReply}, want: 5},
		{name: "write request is data", give: &Packet{Type: TypeMemWriteReq}, want: 5},
		{name: "meta with options grows", give: &Packet{Type: TypePowerReq, Options: []uint32{1, 2, 3}}, want: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.give.FlitCount(); got != tt.want {
				t.Errorf("FlitCount = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestFlitsStructure(t *testing.T) {
	p := &Packet{Type: TypeMemReadReply}
	fs := Flits(p)
	if len(fs) != 5 {
		t.Fatalf("len = %d, want 5", len(fs))
	}
	if !fs[0].IsHead() || fs[0].IsTail() {
		t.Error("first flit must be head only")
	}
	for i := 1; i < 4; i++ {
		if fs[i].IsHead() || fs[i].IsTail() {
			t.Errorf("flit %d must be body", i)
		}
	}
	if fs[4].IsHead() || !fs[4].IsTail() {
		t.Error("last flit must be tail only")
	}
	for i, f := range fs {
		if f.Packet != p {
			t.Errorf("flit %d lost packet pointer", i)
		}
		if f.Seq != i {
			t.Errorf("flit %d has Seq %d", i, f.Seq)
		}
	}
}

func TestFlitsSingle(t *testing.T) {
	p := &Packet{Type: TypePowerReq}
	fs := Flits(p)
	if len(fs) != 1 {
		t.Fatalf("len = %d, want 1", len(fs))
	}
	if !fs[0].IsHead() || !fs[0].IsTail() {
		t.Error("single flit must be head and tail")
	}
}

func TestConfigWordRoundTrip(t *testing.T) {
	tests := []struct {
		gm     NodeID
		active bool
	}{
		{gm: 0, active: false},
		{gm: 119, active: true},
		{gm: 511, active: true},
		{gm: 65535, active: false},
	}
	for _, tt := range tests {
		gm, active := ParseConfigWord(ConfigWord(tt.gm, tt.active))
		if gm != tt.gm || active != tt.active {
			t.Errorf("round trip (%d,%v) = (%d,%v)", tt.gm, tt.active, gm, active)
		}
	}
}

// Property: ConfigWord/ParseConfigWord round-trips all 16-bit manager IDs.
func TestConfigWordProperty(t *testing.T) {
	f := func(id uint16, active bool) bool {
		gm, act := ParseConfigWord(ConfigWord(NodeID(id), active))
		return gm == NodeID(id) && act == active
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
