package noc

import "testing"

func TestTorusForSize(t *testing.T) {
	tests := []struct {
		give  int
		wantW int
		wantH int
	}{
		{give: 64, wantW: 8, wantH: 8},
		{give: 128, wantW: 16, wantH: 8},
		{give: 256, wantW: 16, wantH: 16},
		{give: 512, wantW: 32, wantH: 16},
	}
	for _, tt := range tests {
		m, err := TorusForSize(tt.give)
		if err != nil {
			t.Fatalf("TorusForSize(%d): %v", tt.give, err)
		}
		if m.Width != tt.wantW || m.Height != tt.wantH || !m.Wrap {
			t.Errorf("TorusForSize(%d) = %dx%d wrap=%v, want %dx%d wrap",
				tt.give, m.Width, m.Height, m.Wrap, tt.wantW, tt.wantH)
		}
	}
}

func TestTorusForSizeRejectsDegenerateRings(t *testing.T) {
	// 2 → 2×1 and 7 → 7×1: a 1-wide ring would make nodes their own
	// neighbours.
	for _, n := range []int{0, 1, 2, 7} {
		if _, err := TorusForSize(n); err == nil {
			t.Errorf("TorusForSize(%d) should fail", n)
		}
	}
}

func TestTorusNeighborWraps(t *testing.T) {
	m := Mesh{Width: 4, Height: 4, Wrap: true}
	tests := []struct {
		from Coord
		dir  Direction
		want Coord
	}{
		{from: Coord{0, 0}, dir: West, want: Coord{3, 0}},
		{from: Coord{0, 0}, dir: North, want: Coord{0, 3}},
		{from: Coord{3, 2}, dir: East, want: Coord{0, 2}},
		{from: Coord{1, 3}, dir: South, want: Coord{1, 0}},
		{from: Coord{1, 1}, dir: East, want: Coord{2, 1}}, // interior hop
	}
	for _, tt := range tests {
		got, ok := m.Neighbor(m.ID(tt.from), tt.dir)
		if !ok || got != m.ID(tt.want) {
			t.Errorf("Neighbor(%v, %v) = %v ok=%v, want %v", tt.from, tt.dir, m.Coord(got), ok, tt.want)
		}
	}
	// The plain mesh still has hard edges.
	plain := Mesh{Width: 4, Height: 4}
	if _, ok := plain.Neighbor(plain.ID(Coord{0, 0}), West); ok {
		t.Error("plain mesh must not wrap")
	}
}

func TestTorusDistanceAndPathUseWraparound(t *testing.T) {
	m := Mesh{Width: 8, Height: 8, Wrap: true}
	a, b := m.ID(Coord{0, 0}), m.ID(Coord{7, 7})
	if d := m.ManhattanDistance(a, b); d != 2 {
		t.Errorf("torus corner-to-corner distance = %d, want 2", d)
	}
	path := m.PathXY(a, b)
	if len(path) != 3 {
		t.Fatalf("torus PathXY corner-to-corner = %d routers, want 3", len(path))
	}
	if path[0] != a || path[1] != m.ID(Coord{7, 0}) || path[2] != b {
		t.Errorf("torus PathXY = %v, want wraparound west-then-north path", path)
	}
	// Equidistant ties break toward the positive (east/south) direction,
	// matching TorusRouting.
	tie := m.PathXY(m.ID(Coord{0, 0}), m.ID(Coord{4, 0}))
	if tie[1] != m.ID(Coord{1, 0}) {
		t.Errorf("tie-break path starts at %v, want east hop", m.Coord(tie[1]))
	}
}

func TestTorusRoutingMatchesPathXY(t *testing.T) {
	m := Mesh{Width: 8, Height: 4, Wrap: true}
	r := TorusRouting{}
	for src := NodeID(0); src < NodeID(m.Nodes()); src++ {
		for dst := NodeID(0); dst < NodeID(m.Nodes()); dst++ {
			path := m.PathXY(src, dst)
			cur := src
			for _, want := range path[1:] {
				d := r.Route(m, cur, dst, nil)
				next, ok := m.Neighbor(cur, d)
				if !ok {
					t.Fatalf("route %v->%v at %v: off-mesh direction %v", src, dst, cur, d)
				}
				if next != want {
					t.Fatalf("route %v->%v at %v: stepped to %v, PathXY says %v", src, dst, cur, next, want)
				}
				cur = next
			}
			if got := r.Route(m, dst, dst, nil); got != Local {
				t.Fatalf("route at destination = %v, want local", got)
			}
		}
	}
}

// torusNetwork builds a wrap-routed network for delivery tests.
func torusNetwork(t *testing.T, w, h int) *Network {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Routing = TorusRouting{}
	n, err := New(Mesh{Width: w, Height: h, Wrap: true}, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return n
}

func TestTorusDeliversOverWraparoundPath(t *testing.T) {
	n := torusNetwork(t, 8, 8)
	m := n.Mesh()
	src, dst := m.ID(Coord{0, 0}), m.ID(Coord{7, 7})
	var got *Packet
	n.Attach(dst, func(p *Packet) { got = p })
	if err := n.Inject(&Packet{Src: src, Dst: dst, Type: TypePowerReq, Payload: 42}); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	if _, drained := n.RunUntilIdle(1000); !drained {
		t.Fatal("network did not drain")
	}
	if got == nil || got.Payload != 42 {
		t.Fatal("packet not delivered over the wraparound path")
	}
	// 2 wrap hops = 3 routers traversed; the same pair on a plain mesh
	// crosses 15.
	if got.Hops != 3 {
		t.Errorf("hops = %d, want 3 (wraparound shortcut)", got.Hops)
	}
}

func TestTorusManyToOneIsDeadlockFree(t *testing.T) {
	// Every node floods the center with single-flit requests — the
	// benchmark pattern and the one that closes ring dependency cycles on
	// a torus without dateline VCs. The network must drain completely.
	n := torusNetwork(t, 16, 16)
	m := n.Mesh()
	gm := m.Center()
	delivered := 0
	n.Attach(gm, func(p *Packet) { delivered++ })
	const rounds = 4
	want := 0
	for round := 0; round < rounds; round++ {
		for id := NodeID(0); id < NodeID(m.Nodes()); id++ {
			if id == gm {
				continue
			}
			if err := n.Inject(&Packet{Src: id, Dst: gm, Type: TypePowerReq, Payload: uint32(id)}); err != nil {
				t.Fatalf("Inject: %v", err)
			}
			want++
		}
	}
	if _, drained := n.RunUntilIdle(200000); !drained {
		t.Fatal("many-to-one torus traffic deadlocked (network never drained)")
	}
	if delivered != want {
		t.Errorf("delivered %d of %d packets", delivered, want)
	}
}

func TestTorusAllPairsDeliver(t *testing.T) {
	// Exhaustive pairwise delivery on a small torus: wraparound paths in
	// every direction and both dimensions.
	n := torusNetwork(t, 4, 4)
	m := n.Mesh()
	delivered := make(map[NodeID]int)
	for id := NodeID(0); id < NodeID(m.Nodes()); id++ {
		id := id
		n.Attach(id, func(p *Packet) { delivered[id]++ })
	}
	want := 0
	for src := NodeID(0); src < NodeID(m.Nodes()); src++ {
		for dst := NodeID(0); dst < NodeID(m.Nodes()); dst++ {
			if src == dst {
				continue
			}
			if err := n.Inject(&Packet{Src: src, Dst: dst, Type: TypePowerReq}); err != nil {
				t.Fatalf("Inject: %v", err)
			}
			want++
		}
	}
	if _, drained := n.RunUntilIdle(100000); !drained {
		t.Fatal("all-pairs torus traffic did not drain")
	}
	total := 0
	for _, c := range delivered {
		total += c
	}
	if total != want {
		t.Errorf("delivered %d of %d packets", total, want)
	}
}

func TestWrapRoutingValidation(t *testing.T) {
	// Dateline management needs two VCs per class.
	cfg := DefaultConfig()
	cfg.Routing = TorusRouting{}
	cfg.VCs = 1
	if err := cfg.Validate(); err == nil {
		t.Error("torus routing with one VC must fail validation")
	}
	// Dual-path halves the range: four VCs required.
	cfg = DefaultConfig()
	cfg.Routing = TorusRouting{}
	cfg.AltRouting = YXRouting{}
	cfg.VCs = 2
	if err := cfg.Validate(); err == nil {
		t.Error("torus routing with dual-path and two VCs must fail validation")
	}
	// Wrap routing on a plain mesh is rejected at network construction.
	cfg = DefaultConfig()
	cfg.Routing = TorusRouting{}
	if _, err := New(Mesh{Width: 4, Height: 4}, cfg); err == nil {
		t.Error("torus routing on a plain mesh must fail")
	}
	// A wrapped mesh with plain XY routing stays legal (it just never
	// uses the wrap links).
	cfg = DefaultConfig()
	if _, err := New(Mesh{Width: 4, Height: 4, Wrap: true}, cfg); err != nil {
		t.Errorf("xy routing on a torus: %v", err)
	}
}

func TestTopologyRegistry(t *testing.T) {
	for _, name := range []string{"mesh", "torus"} {
		build, err := TopologyByName(name)
		if err != nil {
			t.Fatalf("TopologyByName(%q): %v", name, err)
		}
		m, err := build(64)
		if err != nil {
			t.Fatalf("%s(64): %v", name, err)
		}
		if m.Nodes() != 64 {
			t.Errorf("%s(64) has %d nodes", name, m.Nodes())
		}
		if wantWrap := name == "torus"; m.Wrap != wantWrap {
			t.Errorf("%s(64).Wrap = %v, want %v", name, m.Wrap, wantWrap)
		}
	}
	if _, err := TopologyByName("hypercube"); err == nil {
		t.Error("unknown topology must fail")
	}
}

func TestRoutingRegistryListsTorus(t *testing.T) {
	found := false
	for _, name := range Routings.Names() {
		if name == "torus-xy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("torus-xy missing from routing registry: %v", Routings.Names())
	}
	for _, alias := range []string{"westfirst", "adaptive"} {
		r, err := RoutingByName(alias)
		if err != nil || r.Name() != "west-first" {
			t.Errorf("alias %q: %v, %v", alias, r, err)
		}
	}
}
