package defense

import (
	"sort"

	"repro/internal/noc"
)

// DualPathVoter implements route-diverse request verification: every core
// sends its power request twice, once over the primary routing class (XY)
// and once over the alternate one (YX). Because the two minimal paths share
// only their endpoints, a Trojan sitting on one path rewrites one copy and
// the manager sees a mismatch — detection with no router hardware at all.
//
// The repair policy takes the larger copy: the paper's attack cuts victim
// requests, so the untampered copy is the larger one. A boosted attacker
// request also survives as the larger copy, which is why deployments chain
// the voter with a RangeGuard that clamps super-peak values.
//
// Blind spot (tested): when both paths cross active Trojans the two copies
// carry the same rewritten value and no mismatch is visible.
type DualPathVoter struct {
	pending map[noc.NodeID]pendingCopy

	// Pairs counts completed two-copy comparisons.
	Pairs uint64
	// Mismatches counts pairs whose copies disagreed.
	Mismatches uint64
	// Unpaired counts copies left alone at an epoch flush — a destroyed
	// duplicate is itself an anomaly signal.
	Unpaired uint64
}

type pendingCopy struct {
	value    uint32
	tampered bool
}

// NewDualPathVoter returns an empty voter.
func NewDualPathVoter() *DualPathVoter {
	return &DualPathVoter{pending: make(map[noc.NodeID]pendingCopy)}
}

// Observe feeds one delivered request copy. When the second copy of a pair
// arrives, ready is true and final carries the repaired value; tamperedAny
// reports whether either copy was modified in flight (measurement only).
func (v *DualPathVoter) Observe(core noc.NodeID, value uint32, tampered bool) (final uint32, tamperedAny, ready, mismatch bool) {
	first, ok := v.pending[core]
	if !ok {
		v.pending[core] = pendingCopy{value: value, tampered: tampered}
		return 0, false, false, false
	}
	delete(v.pending, core)
	v.Pairs++
	final = value
	if first.value > final {
		final = first.value
	}
	mismatch = first.value != value
	if mismatch {
		v.Mismatches++
	}
	return final, first.tampered || tampered, true, mismatch
}

// Flush returns (and clears) the copies whose partners never arrived this
// epoch — lost to a dropping Trojan or still in flight. Each counts as
// Unpaired. Results are sorted by core for determinism.
func (v *DualPathVoter) Flush() []UnpairedCopy {
	if len(v.pending) == 0 {
		return nil
	}
	out := make([]UnpairedCopy, 0, len(v.pending))
	for core, c := range v.pending {
		out = append(out, UnpairedCopy{Core: core, Value: c.value, Tampered: c.tampered})
		v.Unpaired++
	}
	v.pending = make(map[noc.NodeID]pendingCopy)
	sort.Slice(out, func(i, j int) bool { return out[i].Core < out[j].Core })
	return out
}

// UnpairedCopy is a request copy whose duplicate never arrived.
type UnpairedCopy struct {
	Core     noc.NodeID
	Value    uint32
	Tampered bool
}

// DualPathDetectionRate is the closed-form predictor for the voter: the
// fraction of sources whose XY and YX paths to the manager differ in
// whether they cross an infected router. Exactly-one-infected-path is the
// detectable case; both-infected produces identical rewrites and stays
// invisible. Sources defaults to every non-manager node when nil.
func DualPathDetectionRate(m noc.Mesh, gm noc.NodeID, infected map[noc.NodeID]bool, sources []noc.NodeID) float64 {
	if len(infected) == 0 {
		return 0
	}
	if sources == nil {
		sources = make([]noc.NodeID, 0, m.Nodes()-1)
		for id := noc.NodeID(0); id < noc.NodeID(m.Nodes()); id++ {
			if id != gm {
				sources = append(sources, id)
			}
		}
	}
	if len(sources) == 0 {
		return 0
	}
	crosses := func(path []noc.NodeID) bool {
		for _, r := range path {
			if infected[r] {
				return true
			}
		}
		return false
	}
	detected := 0
	for _, src := range sources {
		xy := crosses(m.PathXY(src, gm))
		yx := crosses(m.PathYX(src, gm))
		if xy != yx {
			detected++
		}
	}
	return float64(detected) / float64(len(sources))
}
