package defense

import (
	"testing"
	"testing/quick"

	"repro/internal/budget"
	"repro/internal/noc"
)

var testLevels = []uint32{700, 1200, 1800, 2500, 3300, 4000}

func TestNewRangeGuard(t *testing.T) {
	g, err := NewRangeGuard(testLevels)
	if err != nil {
		t.Fatal(err)
	}
	if g.MinMW != 700 || g.MaxMW != 4000 {
		t.Errorf("guard = %+v", g)
	}
	if _, err := NewRangeGuard(nil); err == nil {
		t.Error("empty table must fail")
	}
}

func TestRangeGuardClamps(t *testing.T) {
	g, _ := NewRangeGuard(testLevels)
	tests := []struct {
		name     string
		give     uint32
		wantMW   uint32
		wantFlag bool
	}{
		{name: "zeroed request (Fig 2 rewrite)", give: 0, wantMW: 700, wantFlag: true},
		{name: "below floor", give: 500, wantMW: 700, wantFlag: true},
		{name: "in range passes", give: 2000, wantMW: 2000, wantFlag: false},
		{name: "exact bounds pass", give: 4000, wantMW: 4000, wantFlag: false},
		{name: "boost beyond peak", give: 6000, wantMW: 4000, wantFlag: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, flagged := g.FilterRequest(1, tt.give)
			if got != tt.wantMW || flagged != tt.wantFlag {
				t.Errorf("FilterRequest(%d) = (%d,%v), want (%d,%v)", tt.give, got, flagged, tt.wantMW, tt.wantFlag)
			}
		})
	}
}

// Property: range guard output is always within bounds.
func TestRangeGuardAlwaysInRange(t *testing.T) {
	g, _ := NewRangeGuard(testLevels)
	f := func(mw uint32) bool {
		got, _ := g.FilterRequest(0, mw)
		return got >= g.MinMW && got <= g.MaxMW
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryGuardFlagsSuddenDrop(t *testing.T) {
	g := NewHistoryGuard(0.3, 0.5)
	// Clean history: the core asks for its peak every epoch.
	for i := 0; i < 5; i++ {
		if _, flagged := g.FilterRequest(1, 3960); flagged {
			t.Fatal("steady history must not flag")
		}
	}
	// The Trojan activates: the request arrives quartered.
	use, flagged := g.FilterRequest(1, 990)
	if !flagged {
		t.Fatal("75% drop must be flagged")
	}
	if use != 3960 {
		t.Errorf("substituted value = %d, want history 3960", use)
	}
	// The outlier must not poison the history.
	if _, flagged := g.FilterRequest(1, 3960); flagged {
		t.Error("return to normal must not flag")
	}
}

func TestHistoryGuardFlagsSuddenBoost(t *testing.T) {
	g := NewHistoryGuard(0.3, 0.5)
	for i := 0; i < 3; i++ {
		g.FilterRequest(2, 3960)
	}
	if _, flagged := g.FilterRequest(2, 5940); !flagged {
		t.Error("1.5x boost must be flagged")
	}
}

func TestHistoryGuardBlindToPersistentAttack(t *testing.T) {
	// The honest limitation: a Trojan active from the very first request
	// poisons the history and is never flagged.
	g := NewHistoryGuard(0.3, 0.5)
	for i := 0; i < 10; i++ {
		if _, flagged := g.FilterRequest(3, 990); flagged {
			t.Fatal("persistent tampered value looks like a clean history")
		}
	}
}

func TestHistoryGuardToleratesDrift(t *testing.T) {
	g := NewHistoryGuard(0.5, 0.5)
	// Gradual 20% steps stay under the 50% tolerance.
	for _, v := range []uint32{1000, 1200, 1400, 1600, 1900} {
		if _, flagged := g.FilterRequest(4, v); flagged {
			t.Fatalf("gradual drift to %d must not flag", v)
		}
	}
}

func TestHistoryGuardReset(t *testing.T) {
	g := NewHistoryGuard(0.3, 0.5)
	g.FilterRequest(1, 4000)
	g.Reset()
	if _, flagged := g.FilterRequest(1, 100); flagged {
		t.Error("first observation after reset must not flag")
	}
}

func TestHistoryGuardParameterClamping(t *testing.T) {
	g := NewHistoryGuard(-1, -1)
	if g.Alpha != 0.3 || g.Tolerance != 0.5 {
		t.Errorf("defaults not applied: %+v", g)
	}
}

func TestChainCombinesFilters(t *testing.T) {
	rg, _ := NewRangeGuard(testLevels)
	hg := NewHistoryGuard(0.3, 0.5)
	c := NewChain(rg, hg)
	if c.Name() != "range-guard+history-guard" {
		t.Errorf("Name = %q", c.Name())
	}
	// Build a clean history through the chain.
	for i := 0; i < 4; i++ {
		if _, flagged := c.FilterRequest(1, 3960); flagged {
			t.Fatal("clean requests must pass the chain")
		}
	}
	// A zeroed request: the range guard clamps to 700, then the history
	// guard still sees a >50% deviation from 3960 and substitutes it.
	use, flagged := c.FilterRequest(1, 0)
	if !flagged {
		t.Fatal("chain must flag a zeroed request")
	}
	if use != 3960 {
		t.Errorf("chain substituted %d, want 3960", use)
	}
}

func TestChainEmptyPassesThrough(t *testing.T) {
	c := NewChain()
	use, flagged := c.FilterRequest(1, 1234)
	if use != 1234 || flagged {
		t.Error("empty chain must be the identity")
	}
}

func TestManagerIntegration(t *testing.T) {
	// End-to-end with the budget manager: flagged tampered requests are
	// repaired before allocation.
	m, err := budget.NewManager(9, budget.FairShare{}, 8000)
	if err != nil {
		t.Fatal(err)
	}
	rg, _ := NewRangeGuard(testLevels)
	m.SetFilter(rg)
	m.HandleRequest(&noc.Packet{Src: 1, Dst: 9, Type: noc.TypePowerReq, Payload: 0, Tampered: true})
	m.HandleRequest(&noc.Packet{Src: 2, Dst: 9, Type: noc.TypePowerReq, Payload: 3960})
	if m.FlaggedTotal != 1 || m.RepairedTampered != 1 {
		t.Errorf("flagged/repaired = %d/%d, want 1/1", m.FlaggedTotal, m.RepairedTampered)
	}
	grants := m.AllocateEpoch()
	if grants[0].GrantMW != 700 {
		t.Errorf("repaired grant = %d, want clamped floor 700", grants[0].GrantMW)
	}
}
