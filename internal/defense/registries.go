package defense

import (
	"repro/internal/budget"
	"repro/internal/registry"
)

// Config is one named, deployable defense configuration: an optional
// manager-side request filter plus the route-diverse dual-path switch.
// The registered configurations are exactly the rows of the X2 defense
// study, so a spec or SDK option can select any studied countermeasure by
// its table name.
type Config struct {
	// Filter builds the request filter from the chip's DVFS level table in
	// milliwatts (ascending); nil when the configuration installs none.
	Filter func(levelsMW []uint32) (budget.RequestFilter, error)
	// DualPath enables dual-path request verification (each core sends its
	// request over XY and YX routes and the manager's voter compares them).
	DualPath bool
}

// Registry is the defense plugin registry ("none", "range-guard",
// "history-guard", "both", "dual-path", "dual-path+range").
var Registry = registry.New[Config]("defense", "defense")

// studyHistoryGuard builds the history guard with the X2 study's
// parameters (EWMA weight 0.3, ±40 % tolerance).
func studyHistoryGuard(_ []uint32) (budget.RequestFilter, error) {
	return NewHistoryGuard(0.3, 0.4), nil
}

// studyRangeGuard builds the range guard from the DVFS table.
func studyRangeGuard(levelsMW []uint32) (budget.RequestFilter, error) {
	return NewRangeGuard(levelsMW)
}

func init() {
	Registry.Register("none", func() Config { return Config{} })
	Registry.Register("range-guard", func() Config { return Config{Filter: studyRangeGuard} })
	Registry.Register("history-guard", func() Config { return Config{Filter: studyHistoryGuard} })
	Registry.Register("both", func() Config {
		return Config{Filter: func(levelsMW []uint32) (budget.RequestFilter, error) {
			rg, err := NewRangeGuard(levelsMW)
			if err != nil {
				return nil, err
			}
			return NewChain(rg, NewHistoryGuard(0.3, 0.4)), nil
		}}
	})
	Registry.Register("dual-path", func() Config { return Config{DualPath: true} })
	Registry.Register("dual-path+range", func() Config { return Config{Filter: studyRangeGuard, DualPath: true} })
	Registry.Alias("range+history", "both")
}

// ByName returns the named defense configuration.
func ByName(name string) (Config, error) { return Registry.Lookup(name) }
