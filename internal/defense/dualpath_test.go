package defense

import (
	"testing"

	"repro/internal/noc"
)

func TestVoterPairsAndRepairs(t *testing.T) {
	v := NewDualPathVoter()
	// First copy: tampered down to 990.
	_, _, ready, _ := v.Observe(3, 990, true)
	if ready {
		t.Fatal("single copy must not be ready")
	}
	// Second copy: clean 3960.
	final, tamperedAny, ready, mismatch := v.Observe(3, 3960, false)
	if !ready || !mismatch {
		t.Fatalf("ready=%v mismatch=%v, want true/true", ready, mismatch)
	}
	if final != 3960 {
		t.Errorf("repaired value = %d, want the larger copy 3960", final)
	}
	if !tamperedAny {
		t.Error("tamperedAny must carry the first copy's bit")
	}
	if v.Pairs != 1 || v.Mismatches != 1 {
		t.Errorf("counters = %d/%d, want 1/1", v.Pairs, v.Mismatches)
	}
}

func TestVoterAgreementIsNotMismatch(t *testing.T) {
	v := NewDualPathVoter()
	v.Observe(3, 3960, false)
	_, _, ready, mismatch := v.Observe(3, 3960, false)
	if !ready || mismatch {
		t.Fatalf("identical copies: ready=%v mismatch=%v", ready, mismatch)
	}
	if v.Mismatches != 0 {
		t.Error("agreement must not count as mismatch")
	}
}

func TestVoterBlindWhenBothPathsTampered(t *testing.T) {
	// Both copies rewritten to the same value: invisible, by design.
	v := NewDualPathVoter()
	v.Observe(3, 990, true)
	final, _, ready, mismatch := v.Observe(3, 990, true)
	if !ready || mismatch {
		t.Fatalf("equal tampered copies: ready=%v mismatch=%v", ready, mismatch)
	}
	if final != 990 {
		t.Errorf("final = %d, want the (tampered) agreed value", final)
	}
}

func TestVoterFlushUnpaired(t *testing.T) {
	v := NewDualPathVoter()
	v.Observe(3, 990, true)
	v.Observe(7, 3960, false)
	left := v.Flush()
	if len(left) != 2 {
		t.Fatalf("flush = %d entries, want 2", len(left))
	}
	if left[0].Core != 3 || left[1].Core != 7 {
		t.Errorf("flush order = %v, want sorted by core", left)
	}
	if v.Unpaired != 2 {
		t.Errorf("Unpaired = %d, want 2", v.Unpaired)
	}
	if got := v.Flush(); got != nil {
		t.Error("second flush must be empty")
	}
}

func TestVoterIndependentCores(t *testing.T) {
	v := NewDualPathVoter()
	v.Observe(1, 100, false)
	if _, _, ready, _ := v.Observe(2, 200, false); ready {
		t.Fatal("copies from different cores must not pair")
	}
}

func TestDualPathDetectionRateCases(t *testing.T) {
	m := noc.Mesh{Width: 8, Height: 8}
	gm := m.Center() // (3,3) = node 27
	if got := DualPathDetectionRate(m, gm, nil, nil); got != 0 {
		t.Errorf("no trojans rate = %v, want 0", got)
	}
	// One HT off both axes of the manager: sources whose XY path crosses
	// it but whose YX path does not (and vice versa) are detectable.
	ht := m.ID(noc.Coord{X: 1, Y: 3})
	infected := map[noc.NodeID]bool{ht: true}
	rate := DualPathDetectionRate(m, gm, infected, nil)
	if rate <= 0 {
		t.Fatalf("detection rate = %v, want > 0", rate)
	}
	// Cross-check one known-detectable source: (1,5). XY goes east along
	// y=5 then... no: XY from (1,5) to (3,3): X first along y=5 to x=3,
	// then north along x=3 — misses (1,3). YX: north along x=1 through
	// (1,3) — hit. Exactly one path infected: detectable.
	src := m.ID(noc.Coord{X: 1, Y: 5})
	if got := DualPathDetectionRate(m, gm, infected, []noc.NodeID{src}); got != 1 {
		t.Errorf("source (1,5) detection = %v, want 1", got)
	}
	// A source on the same row as both HT and manager: XY and YX paths
	// coincide — undetectable.
	src = m.ID(noc.Coord{X: 0, Y: 3})
	if got := DualPathDetectionRate(m, gm, infected, []noc.NodeID{src}); got != 0 {
		t.Errorf("same-row source detection = %v, want 0", got)
	}
}

func TestDualPathDetectionRateManagerRouterUndetectable(t *testing.T) {
	// An HT in the manager's own router infects BOTH paths of every source
	// identically: full infection, zero detection. The voter's blind spot.
	m := noc.Mesh{Width: 8, Height: 8}
	gm := m.Center()
	infected := map[noc.NodeID]bool{gm: true}
	if got := DualPathDetectionRate(m, gm, infected, nil); got != 0 {
		t.Errorf("manager-router HT detection = %v, want 0", got)
	}
}

func TestDualPathDetectionRateEmptySources(t *testing.T) {
	m := noc.Mesh{Width: 4, Height: 4}
	infected := map[noc.NodeID]bool{1: true}
	if got := DualPathDetectionRate(m, 5, infected, []noc.NodeID{}); got != 0 {
		t.Errorf("empty sources rate = %v, want 0", got)
	}
}
