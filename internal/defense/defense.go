// Package defense implements manager-side countermeasures against the
// paper's false-data power-budgeting attack. The paper's conclusion calls
// for "more research on detection and protection against such attacks";
// this package provides two deployable request-integrity filters and the
// machinery to chain them.
//
// Both filters run at the global manager on the values as received — they
// assume nothing about the NoC and need no extra hardware in the routers,
// which is exactly where the Trojans hide.
package defense

import (
	"fmt"
	"strings"

	"repro/internal/budget"
	"repro/internal/noc"
)

// RangeGuard flags and clamps requests outside the physically plausible
// [MinMW, MaxMW] window derived from the DVFS table. It defeats rewrites
// that leave the plausible envelope — the Fig 2 circuit's all-zero rewrite
// and boosts beyond peak power — but is blind to proportional scaling
// inside the envelope.
type RangeGuard struct {
	// MinMW is the lowest plausible request: the bottom DVFS level.
	MinMW uint32
	// MaxMW is the highest plausible request: the top DVFS level.
	MaxMW uint32
}

var _ budget.RequestFilter = RangeGuard{}

// NewRangeGuard builds the guard from a DVFS level table in milliwatts
// (ascending).
func NewRangeGuard(levelsMW []uint32) (RangeGuard, error) {
	if len(levelsMW) == 0 {
		return RangeGuard{}, fmt.Errorf("defense: range guard needs a DVFS table")
	}
	return RangeGuard{MinMW: levelsMW[0], MaxMW: levelsMW[len(levelsMW)-1]}, nil
}

// Name implements budget.RequestFilter.
func (RangeGuard) Name() string { return "range-guard" }

// FilterRequest implements budget.RequestFilter.
func (g RangeGuard) FilterRequest(_ noc.NodeID, mw uint32) (uint32, bool) {
	switch {
	case mw < g.MinMW:
		return g.MinMW, true
	case mw > g.MaxMW:
		return g.MaxMW, true
	default:
		return mw, false
	}
}

// HistoryGuard flags requests that deviate sharply from the core's own
// request history (an exponentially weighted moving average) and
// substitutes the historical value. It catches attacks that switch on
// after a clean observation window — including the paper's duty-cycled
// activation — but is blind to a Trojan that was active from the first
// epoch, because the history itself is then poisoned. That failure mode is
// deliberate and tested: it is the honest limitation of anomaly detection
// against persistent false-data injection.
type HistoryGuard struct {
	// Alpha is the EWMA weight of the newest sample, in (0, 1].
	Alpha float64
	// Tolerance is the allowed relative deviation from the EWMA before a
	// request is flagged (for example 0.5 = ±50 %).
	Tolerance float64

	ewma map[noc.NodeID]float64
}

var _ budget.RequestFilter = (*HistoryGuard)(nil)

// NewHistoryGuard returns a guard with the given EWMA weight and relative
// tolerance; out-of-range parameters fall back to 0.3 and 0.5.
func NewHistoryGuard(alpha, tolerance float64) *HistoryGuard {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	if tolerance <= 0 {
		tolerance = 0.5
	}
	return &HistoryGuard{Alpha: alpha, Tolerance: tolerance, ewma: make(map[noc.NodeID]float64)}
}

// Name implements budget.RequestFilter.
func (*HistoryGuard) Name() string { return "history-guard" }

// Reset clears the per-core history.
func (g *HistoryGuard) Reset() { g.ewma = make(map[noc.NodeID]float64) }

// CloneFilter implements budget.StatefulFilter: each independent run gets
// a guard with the same parameters and an empty history.
func (g *HistoryGuard) CloneFilter() budget.RequestFilter {
	return NewHistoryGuard(g.Alpha, g.Tolerance)
}

// FilterRequest implements budget.RequestFilter.
func (g *HistoryGuard) FilterRequest(core noc.NodeID, mw uint32) (uint32, bool) {
	prev, seen := g.ewma[core]
	v := float64(mw)
	if !seen {
		g.ewma[core] = v
		return mw, false
	}
	dev := v - prev
	if dev < 0 {
		dev = -dev
	}
	if prev > 0 && dev/prev >= g.Tolerance {
		// Suspect: substitute the history and do NOT absorb the outlier.
		return uint32(prev), true
	}
	g.ewma[core] = (1-g.Alpha)*prev + g.Alpha*v
	return mw, false
}

// Chain applies filters in order; the output of one feeds the next. A
// request is flagged if any stage flags it.
type Chain struct {
	Filters []budget.RequestFilter
}

var _ budget.RequestFilter = Chain{}

// NewChain builds a filter chain.
func NewChain(filters ...budget.RequestFilter) Chain { return Chain{Filters: filters} }

// Name implements budget.RequestFilter.
func (c Chain) Name() string {
	names := make([]string, len(c.Filters))
	for i, f := range c.Filters {
		names[i] = f.Name()
	}
	return strings.Join(names, "+")
}

// CloneFilter implements budget.StatefulFilter: every stage is cloned, so
// a chain containing a stateful stage is itself safely clonable.
func (c Chain) CloneFilter() budget.RequestFilter {
	cloned := make([]budget.RequestFilter, len(c.Filters))
	for i, f := range c.Filters {
		cloned[i] = budget.CloneFilter(f)
	}
	return Chain{Filters: cloned}
}

// FilterRequest implements budget.RequestFilter.
func (c Chain) FilterRequest(core noc.NodeID, mw uint32) (uint32, bool) {
	flagged := false
	for _, f := range c.Filters {
		var fl bool
		mw, fl = f.FilterRequest(core, mw)
		flagged = flagged || fl
	}
	return mw, flagged
}
