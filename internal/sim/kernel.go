// Package sim provides the deterministic discrete-event kernel that drives
// every simulation in this repository — the substrate under the whole
// Section V evaluation rather than any single paper artifact. Time is
// measured in clock cycles of the NoC clock domain (uint64). Events
// scheduled for the same cycle fire in scheduling order, which makes runs
// fully reproducible for a fixed seed.
package sim

import (
	"container/heap"
	"errors"
	"math/rand"
)

// ErrStopped is returned by Run when the kernel was stopped explicitly
// before the horizon was reached.
var ErrStopped = errors.New("sim: stopped")

// Event is a callback scheduled to fire at a specific cycle.
type Event func()

type scheduledEvent struct {
	at  uint64
	seq uint64 // tie-break: FIFO among same-cycle events
	fn  Event
}

type eventQueue []*scheduledEvent

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*scheduledEvent)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     uint64
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool
}

// NewKernel returns a kernel whose random stream is seeded with seed.
// The same seed always produces the same simulation.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulation cycle.
func (k *Kernel) Now() uint64 { return k.now }

// RNG returns the kernel's deterministic random stream.
func (k *Kernel) RNG() *rand.Rand { return k.rng }

// Pending reports the number of events still queued.
func (k *Kernel) Pending() int { return len(k.queue) }

// Schedule enqueues fn to fire delay cycles from now. A zero delay fires
// later in the current cycle, after all previously scheduled events for
// this cycle.
func (k *Kernel) Schedule(delay uint64, fn Event) {
	k.seq++
	heap.Push(&k.queue, &scheduledEvent{at: k.now + delay, seq: k.seq, fn: fn})
}

// ScheduleAt enqueues fn for an absolute cycle. Scheduling in the past is
// coerced to the current cycle.
func (k *Kernel) ScheduleAt(cycle uint64, fn Event) {
	if cycle < k.now {
		cycle = k.now
	}
	k.seq++
	heap.Push(&k.queue, &scheduledEvent{at: cycle, seq: k.seq, fn: fn})
}

// Stop makes the current Run return after the in-flight event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue drains or the horizon cycle is
// passed (events at cycle == horizon still fire). It returns ErrStopped if
// Stop was called, otherwise nil.
func (k *Kernel) Run(horizon uint64) error {
	k.stopped = false
	for len(k.queue) > 0 {
		next := k.queue[0]
		if next.at > horizon {
			k.now = horizon
			return nil
		}
		heap.Pop(&k.queue)
		k.now = next.at
		next.fn()
		if k.stopped {
			return ErrStopped
		}
	}
	if k.now < horizon {
		k.now = horizon
	}
	return nil
}

// Drain executes all remaining events regardless of cycle. It returns
// ErrStopped if Stop was called.
func (k *Kernel) Drain() error {
	k.stopped = false
	for len(k.queue) > 0 {
		next := heap.Pop(&k.queue).(*scheduledEvent)
		k.now = next.at
		next.fn()
		if k.stopped {
			return ErrStopped
		}
	}
	return nil
}
