package sim

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleAndRunOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Schedule(10, func() { order = append(order, 2) })
	k.Schedule(5, func() { order = append(order, 1) })
	k.Schedule(20, func() { order = append(order, 3) })
	if err := k.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameCycleFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(7, func() { order = append(order, i) })
	}
	if err := k.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-cycle events fired out of order: %v", order)
		}
	}
}

func TestNowAdvances(t *testing.T) {
	k := NewKernel(1)
	var at uint64
	k.Schedule(42, func() { at = k.Now() })
	if err := k.Run(100); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 42 {
		t.Errorf("Now inside event = %d, want 42", at)
	}
	if k.Now() != 100 {
		t.Errorf("Now after Run = %d, want horizon 100", k.Now())
	}
}

func TestHorizonLeavesFutureEvents(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.Schedule(50, func() { fired = true })
	if err := k.Run(49); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("event past horizon fired")
	}
	if k.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", k.Pending())
	}
	if err := k.Run(50); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired {
		t.Error("event at horizon should fire")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := NewKernel(1)
	var hits []uint64
	k.Schedule(1, func() {
		hits = append(hits, k.Now())
		k.Schedule(2, func() { hits = append(hits, k.Now()) })
	})
	if err := k.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Errorf("hits = %v, want [1 3]", hits)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.Schedule(1, func() { count++; k.Stop() })
	k.Schedule(2, func() { count++ })
	if err := k.Run(10); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1 (second event must not fire)", count)
	}
}

func TestScheduleAtPastCoerced(t *testing.T) {
	k := NewKernel(1)
	var at uint64 = 999
	k.Schedule(10, func() {
		k.ScheduleAt(3, func() { at = k.Now() }) // in the past: coerced to now
	})
	if err := k.Run(20); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 10 {
		t.Errorf("past-scheduled event fired at %d, want 10", at)
	}
}

func TestDrain(t *testing.T) {
	k := NewKernel(1)
	count := 0
	k.Schedule(1_000_000, func() { count++ })
	k.Schedule(2_000_000, func() { count++ })
	if err := k.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
	if k.Now() != 2_000_000 {
		t.Errorf("Now = %d, want 2000000", k.Now())
	}
}

func TestDeterministicRNG(t *testing.T) {
	a := NewKernel(7).RNG().Int63()
	b := NewKernel(7).RNG().Int63()
	if a != b {
		t.Error("same seed should produce same random stream")
	}
	c := NewKernel(8).RNG().Int63()
	if a == c {
		t.Error("different seeds should (almost surely) differ")
	}
}

// Property: any randomly generated schedule fires in nondecreasing time
// order with FIFO tie-breaking preserved.
func TestRunOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel(seed)
		type stamp struct {
			at  uint64
			seq int
		}
		var fired []stamp
		n := 50
		for i := 0; i < n; i++ {
			i := i
			at := uint64(rng.Intn(20))
			k.Schedule(at, func() { fired = append(fired, stamp{at: k.Now(), seq: i}) })
		}
		if err := k.Run(100); err != nil {
			return false
		}
		if len(fired) != n {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
