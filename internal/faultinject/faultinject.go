// Package faultinject is the deterministic fault-injection registry
// behind the service's chaos testing. Production code declares named
// fault points at the places failures can really happen — disk reads in
// the result cache (`cache.disk.read`), the job execution path
// (`job.run`), SSE writes (`sse.write`), queue admission (`queue.admit`)
// — and a Set, parsed from a compact spec string (the `HTSERVED_FAULTS`
// environment variable or a server option), decides per hit whether to
// inject a failure. Four modes cover the failure classes the resilience
// layer must survive:
//
//   - error: the point returns an injected error
//   - panic: the point panics (recovery paths must contain it)
//   - latency: the point stalls for a configurable delay (context-aware)
//   - partial-write: an io.Writer silently truncates after N bytes,
//     modelling torn writes and full disks
//
// The spec grammar is `point:mode[:opt=value]...` with rules joined by
// ";" and an optional leading `seed=N`:
//
//	HTSERVED_FAULTS="seed=7;job.run:panic:times=1;cache.disk.write:partial-write:bytes=32"
//
// Options per rule: `p=0.5` (fire probability, decided by a seeded,
// deterministic RNG), `every=3` (fire on every 3rd hit), `after=2` (skip
// the first 2 hits), `times=1` (stop after 1 fire), `delay=50ms`
// (latency mode), `bytes=64` (partial-write mode). Every decision is a
// pure function of the seed and the hit sequence, so a chaos run is
// replayable. A nil *Set is inert: Fire returns nil and Writer returns
// the writer unchanged, so production paths pay one nil check when
// injection is off.
package faultinject

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Mode is one injected failure class.
type Mode string

// The four failure classes a rule can inject.
const (
	ModeError        Mode = "error"
	ModePanic        Mode = "panic"
	ModeLatency      Mode = "latency"
	ModePartialWrite Mode = "partial-write"
)

// EnvVar is the environment variable FromEnv reads the spec from.
const EnvVar = "HTSERVED_FAULTS"

// Error is the error type every injected error-mode failure carries, so
// callers (and tests) can tell an injected fault from an organic one.
type Error struct {
	Point string
	Hit   int // 1-based hit ordinal that fired
}

// Error renders the injected failure.
func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s (hit %d)", e.Point, e.Hit)
}

// PanicValue is the value injected panics carry; recovery sites can
// type-switch on it to label recovered chaos distinctly.
type PanicValue struct {
	Point string
	Hit   int
}

// String renders the panic payload.
func (p PanicValue) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", p.Point, p.Hit)
}

// rule is one parsed injection rule with its mutable hit state.
type rule struct {
	point string
	mode  Mode
	p     float64       // fire probability (default 1)
	every int           // fire on every Nth hit (default 1)
	after int           // skip the first N hits
	times int           // stop after N fires (0 = unlimited)
	delay time.Duration // latency mode stall
	bytes int           // partial-write budget

	hits  int
	fired int
}

// Set is a parsed collection of injection rules. The zero value is not
// usable — construct with Parse or FromEnv. A nil *Set is inert.
type Set struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string][]*rule
}

// Parse builds a Set from a spec string (see the package comment for the
// grammar). An empty spec yields a nil, inert Set.
func Parse(spec string) (*Set, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	seed := int64(1)
	s := &Set{rules: make(map[string][]*rule)}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if v, ok := strings.CutPrefix(part, "seed="); ok {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q", v)
			}
			seed = n
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		s.rules[r.point] = append(s.rules[r.point], r)
	}
	if len(s.rules) == 0 {
		return nil, nil
	}
	s.rng = rand.New(rand.NewSource(seed))
	return s, nil
}

// FromEnv parses the HTSERVED_FAULTS environment variable via getenv
// (pass os.Getenv); an unset or empty variable yields a nil, inert Set.
func FromEnv(getenv func(string) string) (*Set, error) {
	return Parse(getenv(EnvVar))
}

// parseRule parses one `point:mode[:opt=value]...` clause.
func parseRule(clause string) (*rule, error) {
	fields := strings.Split(clause, ":")
	if len(fields) < 2 {
		return nil, fmt.Errorf("faultinject: rule %q is not point:mode[:opt=value]", clause)
	}
	r := &rule{point: fields[0], p: 1, every: 1, delay: 25 * time.Millisecond, bytes: 64}
	if r.point == "" {
		return nil, fmt.Errorf("faultinject: rule %q names no point", clause)
	}
	switch Mode(fields[1]) {
	case ModeError, ModePanic, ModeLatency, ModePartialWrite:
		r.mode = Mode(fields[1])
	default:
		return nil, fmt.Errorf("faultinject: rule %q: unknown mode %q (known: error, panic, latency, partial-write)", clause, fields[1])
	}
	for _, opt := range fields[2:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: rule %q: option %q is not key=value", clause, opt)
		}
		var err error
		switch k {
		case "p":
			r.p, err = strconv.ParseFloat(v, 64)
			if err == nil && (r.p < 0 || r.p > 1) {
				err = fmt.Errorf("outside [0, 1]")
			}
		case "every":
			r.every, err = positiveInt(v)
		case "after":
			r.after, err = strconv.Atoi(v)
		case "times":
			r.times, err = strconv.Atoi(v)
		case "delay":
			r.delay, err = time.ParseDuration(v)
		case "bytes":
			r.bytes, err = strconv.Atoi(v)
		default:
			err = fmt.Errorf("unknown option (known: p, every, after, times, delay, bytes)")
		}
		if err != nil {
			return nil, fmt.Errorf("faultinject: rule %q: option %q: %v", clause, opt, err)
		}
	}
	return r, nil
}

// positiveInt parses an integer that must be >= 1.
func positiveInt(v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err == nil && n < 1 {
		err = fmt.Errorf("must be >= 1")
	}
	return n, err
}

// decide records one hit against r and reports whether it fires; s.mu
// held.
func (s *Set) decide(r *rule) bool {
	r.hits++
	if r.hits <= r.after {
		return false
	}
	if r.times > 0 && r.fired >= r.times {
		return false
	}
	if (r.hits-r.after)%r.every != 0 {
		return false
	}
	if r.p < 1 && s.rng.Float64() >= r.p {
		return false
	}
	r.fired++
	return true
}

// Fire records one hit of a fault point and injects the first firing
// rule's failure: error mode returns an *Error, panic mode panics with a
// PanicValue, and latency mode stalls for the rule's delay (returning
// ctx's error if it is cancelled first). Partial-write rules are ignored
// here — they act (and count their hits) only through Writer, so a point
// carrying both kinds of rule keeps each cadence independent. Points
// with no matching rule — and any point on a nil Set — return nil with
// no overhead beyond the lookup.
func (s *Set) Fire(ctx context.Context, point string) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	var fired *rule
	var hit int
	for _, r := range s.rules[point] {
		if r.mode == ModePartialWrite {
			continue
		}
		if s.decide(r) {
			fired, hit = r, r.hits
			break
		}
	}
	s.mu.Unlock()
	if fired == nil {
		return nil
	}
	switch fired.mode {
	case ModeError:
		return &Error{Point: point, Hit: hit}
	case ModePanic:
		panic(PanicValue{Point: point, Hit: hit})
	default: // ModeLatency
		t := time.NewTimer(fired.delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Writer records one hit of a fault point and, when a partial-write rule
// fires, wraps w so it silently truncates after the rule's byte budget —
// the write reports success but the tail never lands, modelling torn
// writes. Otherwise (including on a nil Set) w is returned unchanged.
func (s *Set) Writer(point string, w io.Writer) io.Writer {
	if s == nil {
		return w
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.rules[point] {
		if r.mode != ModePartialWrite {
			continue
		}
		if s.decide(r) {
			return &truncatingWriter{w: w, budget: r.bytes}
		}
	}
	return w
}

// Counts snapshots how many times each point has fired, keyed by point
// name — the observability hook /v1/metrics exposes. Nil Sets report
// nil.
func (s *Set) Counts() map[string]int64 {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.rules))
	for point, rules := range s.rules {
		var n int64
		for _, r := range rules {
			n += int64(r.fired)
		}
		out[point] = n
	}
	return out
}

// Total sums Counts across every point.
func (s *Set) Total() int64 {
	var n int64
	for _, v := range s.Counts() {
		n += v
	}
	return n
}

// Points lists the registered fault points, sorted.
func (s *Set) Points() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.rules))
	for p := range s.rules {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// truncatingWriter passes through the first budget bytes and silently
// swallows the rest, always reporting full success.
type truncatingWriter struct {
	w      io.Writer
	budget int
}

// Write forwards up to the remaining budget and lies about the rest.
func (t *truncatingWriter) Write(p []byte) (int, error) {
	if t.budget <= 0 {
		return len(p), nil
	}
	n := len(p)
	if n > t.budget {
		n = t.budget
	}
	if _, err := t.w.Write(p[:n]); err != nil {
		return 0, err
	}
	t.budget -= n
	return len(p), nil
}
