package faultinject

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestNilSetIsInert pins the production fast path: a nil *Set never
// fires, never wraps, and reports empty counts.
func TestNilSetIsInert(t *testing.T) {
	var s *Set
	if err := s.Fire(context.Background(), "job.run"); err != nil {
		t.Fatalf("nil set fired: %v", err)
	}
	var buf bytes.Buffer
	if w := s.Writer("cache.disk.write", &buf); w != &buf {
		t.Fatal("nil set wrapped the writer")
	}
	if s.Counts() != nil || s.Total() != 0 || s.Points() != nil {
		t.Fatal("nil set reports non-empty state")
	}
}

// TestParseEmptyAndErrors covers the inert empty spec and every parse
// failure class.
func TestParseEmptyAndErrors(t *testing.T) {
	if s, err := Parse("  "); err != nil || s != nil {
		t.Fatalf("empty spec = (%v, %v), want (nil, nil)", s, err)
	}
	for _, bad := range []string{
		"job.run",                     // no mode
		"job.run:explode",             // unknown mode
		":error",                      // no point
		"job.run:error:p",             // option not key=value
		"job.run:error:p=2",           // probability out of range
		"job.run:error:every=0",       // every must be >= 1
		"job.run:error:zap=1",         // unknown option
		"seed=x;job.run:error",        // bad seed
		"job.run:latency:delay=fast",  // bad duration
		"job.run:partial-write:bytes", // option not key=value
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", bad)
		}
	}
}

// TestErrorModeCadence verifies every/after/times hit arithmetic and the
// typed injected error.
func TestErrorModeCadence(t *testing.T) {
	s, err := Parse("p:error:after=2:every=3:times=2")
	if err != nil {
		t.Fatal(err)
	}
	var fires []int
	for hit := 1; hit <= 14; hit++ {
		if err := s.Fire(context.Background(), "p"); err != nil {
			var ie *Error
			if !errors.As(err, &ie) || ie.Point != "p" {
				t.Fatalf("hit %d: injected error has wrong type/point: %v", hit, err)
			}
			fires = append(fires, hit)
		}
	}
	// Hits 1-2 skipped; then every 3rd of the remainder (5, 8, ...) but
	// capped at 2 fires.
	want := []int{5, 8}
	if len(fires) != len(want) || fires[0] != want[0] || fires[1] != want[1] {
		t.Fatalf("fired on hits %v, want %v", fires, want)
	}
	if got := s.Counts()["p"]; got != 2 {
		t.Fatalf("Counts = %d, want 2", got)
	}
	if s.Total() != 2 {
		t.Fatalf("Total = %d, want 2", s.Total())
	}
}

// TestProbabilityIsSeededDeterministic runs the same p=0.5 spec twice
// and requires identical fire sequences — chaos runs must replay.
func TestProbabilityIsSeededDeterministic(t *testing.T) {
	sequence := func() []bool {
		s, err := Parse("seed=42;p:error:p=0.5")
		if err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, s.Fire(context.Background(), "p") != nil)
		}
		return out
	}
	a, b := sequence(), sequence()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("hit %d differs between identical seeded runs", i+1)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == 64 {
		t.Fatalf("p=0.5 fired %d/64 times — not probabilistic", fired)
	}
}

// TestPanicModeCarriesTypedValue verifies panic injection and its
// payload.
func TestPanicModeCarriesTypedValue(t *testing.T) {
	s, err := Parse("p:panic:times=1")
	if err != nil {
		t.Fatal(err)
	}
	recovered := func() (v any) {
		defer func() { v = recover() }()
		s.Fire(context.Background(), "p")
		return nil
	}()
	pv, ok := recovered.(PanicValue)
	if !ok {
		t.Fatalf("recovered %T %v, want PanicValue", recovered, recovered)
	}
	if pv.Point != "p" || !strings.Contains(pv.String(), "injected panic at p") {
		t.Fatalf("panic payload %+v", pv)
	}
	// times=1 is exhausted: the next hit passes clean.
	if err := s.Fire(context.Background(), "p"); err != nil {
		t.Fatalf("exhausted rule still fired: %v", err)
	}
}

// TestLatencyModeHonoursContext verifies the stall and that cancellation
// cuts it short with ctx's error.
func TestLatencyModeHonoursContext(t *testing.T) {
	s, err := Parse("p:latency:delay=10ms")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Fire(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("latency fire returned after %v, want >= 10ms", elapsed)
	}

	s2, err := Parse("p:latency:delay=10s")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s2.Fire(ctx, "p"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled latency fire = %v, want context.Canceled", err)
	}
}

// TestPartialWriteTruncatesSilently verifies the torn-write writer: full
// success reported, only the budget landing.
func TestPartialWriteTruncatesSilently(t *testing.T) {
	s, err := Parse("p:partial-write:bytes=5")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := s.Writer("p", &buf)
	if w == &buf {
		t.Fatal("partial-write rule did not wrap the writer")
	}
	n, werr := w.Write([]byte("hello world"))
	if werr != nil || n != 11 {
		t.Fatalf("Write = (%d, %v), want silent full success", n, werr)
	}
	if n, werr = w.Write([]byte("more")); werr != nil || n != 4 {
		t.Fatalf("post-budget Write = (%d, %v)", n, werr)
	}
	if got := buf.String(); got != "hello" {
		t.Fatalf("landed %q, want %q", got, "hello")
	}
	// Fire on a partial-write-only point injects nothing.
	if err := s.Fire(context.Background(), "p"); err != nil {
		t.Fatalf("Fire on partial-write rule = %v", err)
	}
}

// TestFromEnvAndPoints covers the env entry point and point listing.
func TestFromEnvAndPoints(t *testing.T) {
	env := map[string]string{EnvVar: "b:error;a:latency"}
	s, err := FromEnv(func(k string) string { return env[k] })
	if err != nil {
		t.Fatal(err)
	}
	pts := s.Points()
	if len(pts) != 2 || pts[0] != "a" || pts[1] != "b" {
		t.Fatalf("Points = %v, want [a b]", pts)
	}
	if s2, err := FromEnv(func(string) string { return "" }); err != nil || s2 != nil {
		t.Fatalf("unset env = (%v, %v), want (nil, nil)", s2, err)
	}
}
