package results

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// This file is the single serialization path: the four CLIs print tables
// through WriteText, the campaign engine writes artifacts through
// WriteArtifact, and both render the same Table values.

// WriteJSON serializes a table as indented JSON (the typed struct with its
// embedded meta block), ending with a newline.
func WriteJSON(w io.Writer, t Table) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("results: marshal %s: %w", t.TableMeta().Experiment, err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteCSV serializes a table as RFC-4180 CSV preceded by a commented
// metadata preamble (`# key: value` lines). Floats keep full precision so
// the file round-trips losslessly.
func WriteCSV(w io.Writer, t Table) error {
	m := t.TableMeta()
	preamble := fmt.Sprintf("# experiment: %s\n# title: %s\n# seed: %d\n# workers: %d\n# config: %s\n# revision: %s\n# go: %s\n",
		m.Experiment, m.Title, m.Seed, m.Workers, m.ConfigHash, m.Revision, m.GoVersion)
	if _, err := io.WriteString(w, preamble); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	for _, row := range t.RowValues() {
		rec := make([]string, len(row))
		for i, cell := range row {
			rec[i] = formatCell(cell)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteText renders a table for humans: a title line followed by aligned
// columns. Numeric cells are right-aligned, text cells left-aligned.
func WriteText(w io.Writer, t Table) error {
	m := t.TableMeta()
	if _, err := fmt.Fprintf(w, "%s · %s (seed %d)\n", m.Experiment, m.Title, m.Seed); err != nil {
		return err
	}
	header := t.ColumnNames()
	rows := t.RowValues()
	cells := make([][]string, 0, len(rows)+1)
	cells = append(cells, header)
	numeric := make([]bool, len(header))
	for i := range numeric {
		numeric[i] = true
	}
	for _, row := range rows {
		rec := make([]string, len(row))
		for i, cell := range row {
			rec[i] = formatCellHuman(cell)
			if _, isStr := cell.(string); isStr {
				numeric[i] = false
			}
		}
		cells = append(cells, rec)
	}
	widths := make([]int, len(header))
	for _, rec := range cells {
		for i, s := range rec {
			if i < len(widths) && len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var sb strings.Builder
	for _, rec := range cells {
		sb.Reset()
		for i, s := range rec {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := widths[i] - len(s)
			if numeric[i] {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(s)
			} else {
				sb.WriteString(s)
				if i < len(rec)-1 {
					sb.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		sb.WriteString("\n")
		if _, err := io.WriteString(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// Formats lists the serialization formats every table renders to, in
// canonical order: "json", "csv", and "txt" (aligned human text).
func Formats() []string { return []string{"json", "csv", "txt"} }

// WriteFormat renders a table in one named format through the same
// emitters the CLIs and the campaign artifacts use — the single
// serialization path the simulation service serves artifacts from. The
// format is one of Formats.
func WriteFormat(w io.Writer, t Table, format string) error {
	switch format {
	case "json":
		return WriteJSON(w, t)
	case "csv":
		return WriteCSV(w, t)
	case "txt":
		return WriteText(w, t)
	default:
		return fmt.Errorf("results: unknown format %q (known: %s)", format, strings.Join(Formats(), ", "))
	}
}

// ContentType reports the MIME type of one named format (see Formats).
func ContentType(format string) string {
	switch format {
	case "json":
		return "application/json"
	case "csv":
		return "text/csv; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

// WriteArtifact writes a table's JSON and CSV files into dir, named after
// the lower-cased experiment ID (e.g. e3.json/e3.csv), creating dir if
// needed. It returns the two paths.
func WriteArtifact(dir string, t Table) (jsonPath, csvPath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", err
	}
	base := strings.ToLower(t.TableMeta().Experiment)
	jsonPath = filepath.Join(dir, base+".json")
	csvPath = filepath.Join(dir, base+".csv")
	if err := writeFile(jsonPath, func(w io.Writer) error { return WriteJSON(w, t) }); err != nil {
		return "", "", err
	}
	if err := writeFile(csvPath, func(w io.Writer) error { return WriteCSV(w, t) }); err != nil {
		return "", "", err
	}
	return jsonPath, csvPath, nil
}

// writeFile streams one emitter into a freshly created file.
func writeFile(path string, emit func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
