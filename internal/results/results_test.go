package results

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"io"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// sampleMeta builds a deterministic provenance block for table fixtures.
func sampleMeta(id string) Meta {
	return Meta{Experiment: id, Title: "fixture " + id, Seed: 7, Workers: 2,
		ConfigHash: "abc123def456", Revision: "unknown"}
}

// tables returns one populated fixture of every typed table.
func tables() []Table {
	return []Table{
		&ConfigTable{Meta: sampleMeta("E1"), Entries: []ConfigEntry{
			{Key: "processors", Value: "256"}, {Key: "mesh", Value: "16x16 2D mesh"},
		}},
		&AreaPowerTable{Meta: sampleMeta("E2"), Transistors: 864,
			HTAreaUm2: 12.17, HTPowerUW: 0.55, RouterAreaUm2: 71814, RouterPowerUW: 31881,
			Fleets: []AreaPowerRow{{HTs: 1, Nodes: 1, AreaUm2: 12.17, AreaPct: 0.017, PowerUW: 0.55, PowerPct: 0.0017}}},
		&InfectionTable{Meta: sampleMeta("E3"), XLabel: "hts",
			Series: []string{"gm-center", "gm-corner"},
			Points: []InfectionRow{{X: 0, Rates: []float64{0, 0}}, {X: 5, Rates: []float64{0.17142857142857143, 0.48888888888888893}}}},
		&EffectTable{Meta: sampleMeta("E7"), Rows: []EffectRow{
			{Mix: "mix-1", TargetInfection: 0.4, MeasuredInfection: 0.3944, HTs: 3, Q: 1.809}}},
		&AppEffectTable{Meta: sampleMeta("E8"), Rows: []AppEffectRow{
			{Mix: "mix-1", TargetInfection: 0.4, App: "barnes", Role: "attacker", Theta: 34.88, Change: 1.07}}},
		&PlacementTable{Meta: sampleMeta("E9"), Rows: []PlacementRow{
			{Mix: "mix-1", HTs: 16, RandomQMean: 1.43, RandomQStd: 0.3, OptimalQ: 2.86,
				ImprovementPct: 99.6, ModelR2: 0.71, Evaluated: 80}}},
		&AblationTable{Meta: sampleMeta("E10"), Rows: []AblationRow{
			{Allocator: "fair", Q: 2.917, Infection: 0.75}, {Allocator: "dp", Q: 3.824, Infection: 0.75}}},
		&VariantTable{Meta: sampleMeta("X1"), Rows: []VariantRow{
			{Mode: "false-data", Q: 2.79, VictimChange: 0.385, AttackerChange: 1.074, Dropped: 0, Looped: 0}}},
		&DefenseTable{Meta: sampleMeta("X2"), Rows: []DefenseRow{
			{Defense: "range-guard", Q: 1.2, Flagged: 30, Repaired: 28, FalsePositives: 2}}},
		&CampaignTable{Meta: sampleMeta("run"), Q: 1.269, InfectionMeasured: 0.517, InfectionPredicted: 0.517,
			Rows: []CampaignAppRow{{App: "barnes", Role: "attacker", Cores: 15, Theta: 34.88, Baseline: 34.88, Change: 1}}},
	}
}

// TestJSONRoundTrip marshals every table type and decodes it back into a
// fresh value of the same type; the result must be deeply equal.
func TestJSONRoundTrip(t *testing.T) {
	for _, tab := range tables() {
		var buf bytes.Buffer
		if err := WriteJSON(&buf, tab); err != nil {
			t.Fatalf("%s: WriteJSON: %v", tab.TableMeta().Experiment, err)
		}
		back := reflect.New(reflect.TypeOf(tab).Elem()).Interface()
		if err := json.Unmarshal(buf.Bytes(), back); err != nil {
			t.Fatalf("%s: unmarshal: %v", tab.TableMeta().Experiment, err)
		}
		if !reflect.DeepEqual(tab, back) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", tab.TableMeta().Experiment, back, tab)
		}
	}
}

// TestCSVRoundTrip re-parses the CSV emitter's output: the header must be
// ColumnNames, every numeric cell must parse back to its exact float64,
// and the metadata preamble must carry the experiment ID.
func TestCSVRoundTrip(t *testing.T) {
	for _, tab := range tables() {
		id := tab.TableMeta().Experiment
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tab); err != nil {
			t.Fatalf("%s: WriteCSV: %v", id, err)
		}
		if !strings.Contains(buf.String(), "# experiment: "+id) {
			t.Errorf("%s: missing metadata preamble", id)
		}
		r := csv.NewReader(&buf)
		r.Comment = '#'
		recs, err := r.ReadAll()
		if err != nil {
			t.Fatalf("%s: reparse: %v", id, err)
		}
		if !reflect.DeepEqual(recs[0], tab.ColumnNames()) {
			t.Errorf("%s: header = %v, want %v", id, recs[0], tab.ColumnNames())
		}
		rows := tab.RowValues()
		if len(recs)-1 != len(rows) {
			t.Fatalf("%s: %d CSV rows, want %d", id, len(recs)-1, len(rows))
		}
		for ri, row := range rows {
			for ci, cell := range row {
				got := recs[ri+1][ci]
				switch want := cell.(type) {
				case float64:
					f, err := strconv.ParseFloat(got, 64)
					if err != nil || f != want {
						t.Errorf("%s[%d][%d]: %q does not round-trip to %v", id, ri, ci, got, want)
					}
				case string:
					if got != want {
						t.Errorf("%s[%d][%d] = %q, want %q", id, ri, ci, got, want)
					}
				}
			}
		}
	}
}

// TestWriteText smoke-checks the human rendering: title line, header, and
// one body row.
func TestWriteText(t *testing.T) {
	for _, tab := range tables() {
		var buf bytes.Buffer
		if err := WriteText(&buf, tab); err != nil {
			t.Fatalf("%s: WriteText: %v", tab.TableMeta().Experiment, err)
		}
		out := buf.String()
		m := tab.TableMeta()
		if !strings.Contains(out, m.Experiment+" · "+m.Title) {
			t.Errorf("%s: missing title line in %q", m.Experiment, out)
		}
		if !strings.Contains(out, tab.ColumnNames()[0]) {
			t.Errorf("%s: missing header in %q", m.Experiment, out)
		}
		if lines := strings.Count(out, "\n"); lines != 2+len(tab.RowValues()) {
			t.Errorf("%s: %d lines, want %d", m.Experiment, lines, 2+len(tab.RowValues()))
		}
	}
}

// TestHashConfig pins the fingerprint contract: stable for equal params,
// different for different params.
func TestHashConfig(t *testing.T) {
	type params struct {
		Size   int `json:"size"`
		Trials int `json:"trials"`
	}
	a := HashConfig(params{64, 50})
	if a != HashConfig(params{64, 50}) {
		t.Error("hash not stable for equal params")
	}
	if a == HashConfig(params{64, 51}) {
		t.Error("hash collision for different params")
	}
	if len(a) != 12 {
		t.Errorf("hash length %d, want 12", len(a))
	}
}

// TestWriteArtifact checks the file pair lands under the lower-cased
// experiment ID.
func TestWriteArtifact(t *testing.T) {
	dir := t.TempDir()
	jsonPath, csvPath, err := WriteArtifact(dir, tables()[2])
	if err != nil {
		t.Fatalf("WriteArtifact: %v", err)
	}
	if !strings.HasSuffix(jsonPath, "e3.json") || !strings.HasSuffix(csvPath, "e3.csv") {
		t.Errorf("paths = %q, %q", jsonPath, csvPath)
	}
}

// TestMetaCarriesGoVersion asserts NewMeta stamps the running toolchain
// and both machine emitters carry it.
func TestMetaCarriesGoVersion(t *testing.T) {
	m := NewMeta("E1", "t", 1, 0, struct{}{})
	if m.GoVersion != runtime.Version() {
		t.Fatalf("GoVersion = %q, want %q", m.GoVersion, runtime.Version())
	}
	tab := &ConfigTable{Meta: m, Entries: []ConfigEntry{{Key: "k", Value: "v"}}}
	var j, c bytes.Buffer
	if err := WriteJSON(&j, tab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(j.String(), `"go_version": "`+runtime.Version()+`"`) {
		t.Errorf("JSON missing go_version: %s", j.String())
	}
	if err := WriteCSV(&c, tab); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "# go: "+runtime.Version()+"\n") {
		t.Errorf("CSV preamble missing go line: %s", c.String())
	}
}

// TestWriteFormatDispatchesEveryFormat verifies the single render path
// matches the dedicated emitters and rejects unknown formats.
func TestWriteFormatDispatchesEveryFormat(t *testing.T) {
	tab := &ConfigTable{Meta: NewMeta("E1", "t", 1, 0, struct{}{}), Entries: []ConfigEntry{{Key: "k", Value: "v"}}}
	emitters := map[string]func(io.Writer, Table) error{
		"json": WriteJSON, "csv": WriteCSV, "txt": WriteText,
	}
	if got, want := len(Formats()), len(emitters); got != want {
		t.Fatalf("Formats() lists %d formats, want %d", got, want)
	}
	for _, format := range Formats() {
		var direct, dispatched bytes.Buffer
		if err := emitters[format](&direct, tab); err != nil {
			t.Fatal(err)
		}
		if err := WriteFormat(&dispatched, tab, format); err != nil {
			t.Fatal(err)
		}
		if direct.String() != dispatched.String() {
			t.Errorf("WriteFormat(%q) differs from the dedicated emitter", format)
		}
		if ContentType(format) == "" {
			t.Errorf("ContentType(%q) empty", format)
		}
	}
	if err := WriteFormat(&bytes.Buffer{}, tab, "xml"); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Errorf("WriteFormat(xml) = %v, want unknown-format error", err)
	}
}
