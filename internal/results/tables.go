package results

// This file declares one typed table per experiment family of DESIGN.md §2.
// Each table is a plain serializable struct — no simulator types — so the
// package stays a leaf that internal/core can build tables into.

// ConfigEntry is one key/value row of the configuration table.
type ConfigEntry struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// ConfigTable is the E1 artifact: the Table I system configuration as
// key/value rows.
type ConfigTable struct {
	Meta    Meta          `json:"meta"`
	Entries []ConfigEntry `json:"entries"`
}

// TableMeta implements Table.
func (t *ConfigTable) TableMeta() *Meta { return &t.Meta }

// ColumnNames implements Table.
func (t *ConfigTable) ColumnNames() []string { return []string{"key", "value"} }

// RowValues implements Table.
func (t *ConfigTable) RowValues() [][]any {
	rows := make([][]any, len(t.Entries))
	for i, e := range t.Entries {
		rows[i] = []any{e.Key, e.Value}
	}
	return rows
}

// AreaPowerRow is one fleet size of the Section III-D accounting.
type AreaPowerRow struct {
	// HTs and Nodes give the fleet and chip sizes.
	HTs   int `json:"hts"`
	Nodes int `json:"nodes"`
	// AreaUm2 and PowerUW are the fleet's absolute overheads.
	AreaUm2 float64 `json:"area_um2"`
	PowerUW float64 `json:"power_uw"`
	// AreaPct and PowerPct are the overheads relative to all routers.
	AreaPct  float64 `json:"area_pct"`
	PowerPct float64 `json:"power_pct"`
}

// AreaPowerTable is the E2 artifact: the Trojan circuit's area/power cost.
type AreaPowerTable struct {
	Meta Meta `json:"meta"`
	// Transistors estimates the Fig 2 circuit size.
	Transistors int `json:"transistors"`
	// HTAreaUm2/HTPowerUW cost one Trojan; RouterAreaUm2/RouterPowerUW
	// cost one clean router for scale.
	HTAreaUm2     float64        `json:"ht_area_um2"`
	HTPowerUW     float64        `json:"ht_power_uw"`
	RouterAreaUm2 float64        `json:"router_area_um2"`
	RouterPowerUW float64        `json:"router_power_uw"`
	Fleets        []AreaPowerRow `json:"fleets"`
}

// TableMeta implements Table.
func (t *AreaPowerTable) TableMeta() *Meta { return &t.Meta }

// ColumnNames implements Table.
func (t *AreaPowerTable) ColumnNames() []string {
	return []string{"hts", "nodes", "area_um2", "area_pct", "power_uw", "power_pct"}
}

// RowValues implements Table.
func (t *AreaPowerTable) RowValues() [][]any {
	rows := make([][]any, len(t.Fleets))
	for i, f := range t.Fleets {
		rows[i] = []any{f.HTs, f.Nodes, f.AreaUm2, f.AreaPct, f.PowerUW, f.PowerPct}
	}
	return rows
}

// InfectionRow is one x-axis position of an infection curve: the value on
// the X axis (HT count for Fig 3, system size for Fig 4) and one rate per
// series.
type InfectionRow struct {
	X     int       `json:"x"`
	Rates []float64 `json:"rates"`
}

// InfectionTable is the E3–E6 artifact family: infection rate against an
// integer axis for a set of named series (manager placements in Fig 3, HT
// distributions in Fig 4).
type InfectionTable struct {
	Meta Meta `json:"meta"`
	// XLabel names the x-axis ("hts" or "size").
	XLabel string `json:"x_label"`
	// Series names the rate columns, in Points[].Rates order.
	Series []string       `json:"series"`
	Points []InfectionRow `json:"points"`
}

// TableMeta implements Table.
func (t *InfectionTable) TableMeta() *Meta { return &t.Meta }

// ColumnNames implements Table.
func (t *InfectionTable) ColumnNames() []string {
	return append([]string{t.XLabel}, t.Series...)
}

// RowValues implements Table.
func (t *InfectionTable) RowValues() [][]any {
	rows := make([][]any, len(t.Points))
	for i, p := range t.Points {
		row := make([]any, 0, 1+len(p.Rates))
		row = append(row, p.X)
		for _, r := range p.Rates {
			row = append(row, r)
		}
		rows[i] = row
	}
	return rows
}

// EffectRow is one (mix, target infection) cell of Fig 5.
type EffectRow struct {
	Mix string `json:"mix"`
	// TargetInfection is the rate the placement was built for;
	// MeasuredInfection is what the simulation delivered.
	TargetInfection   float64 `json:"target_infection"`
	MeasuredInfection float64 `json:"measured_infection"`
	// HTs is the fleet size the sampler chose.
	HTs int `json:"hts"`
	// Q is Definition 3.
	Q float64 `json:"q"`
}

// EffectTable is the E7 artifact: attack effect Q versus infection rate
// for the Table III mixes, in long form (one row per mix and target).
type EffectTable struct {
	Meta Meta        `json:"meta"`
	Rows []EffectRow `json:"rows"`
}

// TableMeta implements Table.
func (t *EffectTable) TableMeta() *Meta { return &t.Meta }

// ColumnNames implements Table.
func (t *EffectTable) ColumnNames() []string {
	return []string{"mix", "target_infection", "measured_infection", "hts", "q"}
}

// RowValues implements Table.
func (t *EffectTable) RowValues() [][]any {
	rows := make([][]any, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []any{r.Mix, r.TargetInfection, r.MeasuredInfection, r.HTs, r.Q}
	}
	return rows
}

// AppEffectRow is one (mix, target infection, application) cell of Fig 6.
type AppEffectRow struct {
	Mix             string  `json:"mix"`
	TargetInfection float64 `json:"target_infection"`
	App             string  `json:"app"`
	Role            string  `json:"role"`
	// Theta is the attacked run's Definition 1 throughput; Change is
	// Definition 2 (Θ = θ/Λ).
	Theta  float64 `json:"theta"`
	Change float64 `json:"change"`
}

// AppEffectTable is the E8 artifact: per-application performance change
// versus infection rate, in long form.
type AppEffectTable struct {
	Meta Meta           `json:"meta"`
	Rows []AppEffectRow `json:"rows"`
}

// TableMeta implements Table.
func (t *AppEffectTable) TableMeta() *Meta { return &t.Meta }

// ColumnNames implements Table.
func (t *AppEffectTable) ColumnNames() []string {
	return []string{"mix", "target_infection", "app", "role", "theta", "change"}
}

// RowValues implements Table.
func (t *AppEffectTable) RowValues() [][]any {
	rows := make([][]any, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []any{r.Mix, r.TargetInfection, r.App, r.Role, r.Theta, r.Change}
	}
	return rows
}

// PlacementRow is one mix's Section V-C optimal-vs-random comparison.
type PlacementRow struct {
	Mix string `json:"mix"`
	HTs int    `json:"hts"`
	// RandomQMean/RandomQStd summarise Q over the random fleets; OptimalQ
	// is the simulated Q of the model-optimised placement.
	RandomQMean float64 `json:"random_q_mean"`
	RandomQStd  float64 `json:"random_q_std"`
	OptimalQ    float64 `json:"optimal_q"`
	// ImprovementPct is (OptimalQ − RandomQMean)/RandomQMean × 100.
	ImprovementPct float64 `json:"improvement_pct"`
	// ModelR2 is the Eqn 9 fit quality; Evaluated the Eqn 10 enumeration
	// size.
	ModelR2   float64 `json:"model_r2"`
	Evaluated int     `json:"evaluated"`
}

// PlacementTable is the E9 artifact: the placement study per mix.
type PlacementTable struct {
	Meta Meta           `json:"meta"`
	Rows []PlacementRow `json:"rows"`
}

// TableMeta implements Table.
func (t *PlacementTable) TableMeta() *Meta { return &t.Meta }

// ColumnNames implements Table.
func (t *PlacementTable) ColumnNames() []string {
	return []string{"mix", "hts", "random_q_mean", "random_q_std", "optimal_q",
		"improvement_pct", "model_r2", "evaluated"}
}

// RowValues implements Table.
func (t *PlacementTable) RowValues() [][]any {
	rows := make([][]any, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []any{r.Mix, r.HTs, r.RandomQMean, r.RandomQStd, r.OptimalQ,
			r.ImprovementPct, r.ModelR2, r.Evaluated}
	}
	return rows
}

// AblationRow is one allocator's outcome under the standard attack.
type AblationRow struct {
	Allocator string `json:"allocator"`
	// Q is the attack effect; Infection the measured rate it was achieved
	// at.
	Q         float64 `json:"q"`
	Infection float64 `json:"infection"`
}

// AblationTable is the E10 artifact: the attack effect under every
// budgeting algorithm, backing the paper's "irrespective of the power
// budgeting algorithm" claim.
type AblationTable struct {
	Meta Meta          `json:"meta"`
	Rows []AblationRow `json:"rows"`
}

// TableMeta implements Table.
func (t *AblationTable) TableMeta() *Meta { return &t.Meta }

// ColumnNames implements Table.
func (t *AblationTable) ColumnNames() []string { return []string{"allocator", "q", "infection"} }

// RowValues implements Table.
func (t *AblationTable) RowValues() [][]any {
	rows := make([][]any, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []any{r.Allocator, r.Q, r.Infection}
	}
	return rows
}

// VariantRow is one Section II-B DoS attack class.
type VariantRow struct {
	Mode string  `json:"mode"`
	Q    float64 `json:"q"`
	// VictimChange/AttackerChange are the mean per-role Θ values.
	VictimChange   float64 `json:"victim_change"`
	AttackerChange float64 `json:"attacker_change"`
	// Dropped and Looped count destroyed/bounced packets.
	Dropped uint64 `json:"dropped"`
	Looped  uint64 `json:"looped"`
}

// VariantTable is the X1 artifact: the DoS attack-class comparison.
type VariantTable struct {
	Meta Meta         `json:"meta"`
	Rows []VariantRow `json:"rows"`
}

// TableMeta implements Table.
func (t *VariantTable) TableMeta() *Meta { return &t.Meta }

// ColumnNames implements Table.
func (t *VariantTable) ColumnNames() []string {
	return []string{"mode", "q", "victim_change", "attacker_change", "dropped", "looped"}
}

// RowValues implements Table.
func (t *VariantTable) RowValues() [][]any {
	rows := make([][]any, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []any{r.Mode, r.Q, r.VictimChange, r.AttackerChange, r.Dropped, r.Looped}
	}
	return rows
}

// DefenseRow is one manager-side filter configuration.
type DefenseRow struct {
	Defense string  `json:"defense"`
	Q       float64 `json:"q"`
	// Flagged/Repaired/FalsePositives count the filter's verdicts.
	Flagged        uint64 `json:"flagged"`
	Repaired       uint64 `json:"repaired"`
	FalsePositives uint64 `json:"false_positives"`
}

// DefenseTable is the X2 artifact: the manager-side defense study.
type DefenseTable struct {
	Meta Meta         `json:"meta"`
	Rows []DefenseRow `json:"rows"`
}

// TableMeta implements Table.
func (t *DefenseTable) TableMeta() *Meta { return &t.Meta }

// ColumnNames implements Table.
func (t *DefenseTable) ColumnNames() []string {
	return []string{"defense", "q", "flagged", "repaired", "false_positives"}
}

// RowValues implements Table.
func (t *DefenseTable) RowValues() [][]any {
	rows := make([][]any, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []any{r.Defense, r.Q, r.Flagged, r.Repaired, r.FalsePositives}
	}
	return rows
}

// CampaignAppRow is one application of a single-campaign report (htsim).
type CampaignAppRow struct {
	App   string `json:"app"`
	Role  string `json:"role"`
	Cores int    `json:"cores"`
	// Theta/Baseline are the attacked and clean Definition 1 values;
	// Change is Definition 2.
	Theta    float64 `json:"theta"`
	Baseline float64 `json:"baseline"`
	Change   float64 `json:"change"`
}

// CampaignTable is a one-off htsim campaign report: per-application
// outcomes of an attacked run against its clean baseline.
type CampaignTable struct {
	Meta Meta             `json:"meta"`
	Rows []CampaignAppRow `json:"rows"`
	// Q is the campaign's Definition 3 attack effect.
	Q float64 `json:"q"`
	// InfectionMeasured/InfectionPredicted echo the attacked report.
	InfectionMeasured  float64 `json:"infection_measured"`
	InfectionPredicted float64 `json:"infection_predicted"`
}

// TableMeta implements Table.
func (t *CampaignTable) TableMeta() *Meta { return &t.Meta }

// ColumnNames implements Table.
func (t *CampaignTable) ColumnNames() []string {
	return []string{"app", "role", "cores", "theta", "baseline", "change"}
}

// RowValues implements Table.
func (t *CampaignTable) RowValues() [][]any {
	rows := make([][]any, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []any{r.App, r.Role, r.Cores, r.Theta, r.Baseline, r.Change}
	}
	return rows
}
