// Package results defines the typed result tables every experiment of the
// evaluation produces — infection curves (Fig 3/4), attack-effect and
// per-application series (Fig 5/6), the Section V-C placement study, the
// variant/defense comparison tables, and the Table I / Section III-D
// accounting tables — together with the emitters that serialize any table
// to JSON, CSV, and aligned human text from one code path. Every
// serialized artifact embeds run metadata (experiment ID, campaign seed,
// declared worker count, a hash of the resolved parameters, and the VCS
// revision), so result files are self-describing and diffable.
//
// The package is a leaf: internal/core builds these tables from its
// drivers, internal/campaign writes them to disk, and the cmd tools print
// them. Serialized bytes depend only on the table contents and the
// declared metadata — never on scheduling — so artifacts are byte-identical
// for any -parallel value (regression-gated in internal/campaign).
package results

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
)

// Meta is the provenance block embedded in every serialized table.
type Meta struct {
	// Experiment is the DESIGN.md §2 identifier (E1–E10, X1–X2, or "run"
	// for a one-off htsim campaign report).
	Experiment string `json:"experiment"`
	// Title is the human description of the artifact.
	Title string `json:"title"`
	// Seed is the campaign seed the table was generated from.
	Seed int64 `json:"seed"`
	// Workers is the worker count declared by the campaign spec (0 means
	// one per CPU). It records the declarative setting, never the
	// execution-time -parallel override: results are bit-identical for any
	// worker count, and embedding the override would break that identity
	// at the byte level.
	Workers int `json:"workers"`
	// ConfigHash fingerprints the resolved experiment parameters, so two
	// artifacts are comparable exactly when their hashes match.
	ConfigHash string `json:"config_hash"`
	// Revision is the VCS revision of the generating binary, "unknown"
	// when the build carries no VCS stamp (e.g. test binaries).
	Revision string `json:"revision"`
	// GoVersion is the toolchain that built the generating binary
	// (runtime.Version()), so an artifact's numeric drift can be traced to
	// a toolchain change as well as a code change.
	GoVersion string `json:"go_version"`
}

// NewMeta assembles the provenance block for one experiment artifact,
// fingerprinting the resolved parameter struct (see HashConfig).
func NewMeta(experiment, title string, seed int64, workers int, params any) Meta {
	return Meta{
		Experiment: experiment,
		Title:      title,
		Seed:       seed,
		Workers:    workers,
		ConfigHash: HashConfig(params),
		Revision:   Revision(),
		GoVersion:  runtime.Version(),
	}
}

// HashConfig fingerprints a resolved parameter struct: the first 12 hex
// digits of the SHA-256 of its canonical JSON encoding. Struct fields
// marshal in declaration order, so the hash is stable across runs.
func HashConfig(params any) string {
	b, err := json.Marshal(params)
	if err != nil {
		// Parameter structs are plain data; a marshal failure is a
		// programming error surfaced in the artifact rather than hidden.
		return "unhashable"
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:12]
}

// Revision reports the VCS revision baked into the running binary by the
// Go toolchain, or "unknown" for unstamped builds (tests, go run outside a
// checkout).
func Revision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// Table is the interface every typed result table implements; the JSON,
// CSV, and text emitters are all driven through it.
type Table interface {
	// TableMeta exposes the embedded provenance block.
	TableMeta() *Meta
	// ColumnNames is the CSV header (and text column row).
	ColumnNames() []string
	// RowValues returns the table body; cells may be string, int, uint64,
	// float64, or fmt.Stringer values and are formatted by the emitters.
	RowValues() [][]any
}

// formatCell renders one cell machine-faithfully: floats keep full
// precision so CSV round-trips losslessly.
func formatCell(v any) string {
	switch c := v.(type) {
	case string:
		return c
	case float64:
		return strconv.FormatFloat(c, 'g', -1, 64)
	case int:
		return strconv.Itoa(c)
	case uint64:
		return strconv.FormatUint(c, 10)
	case fmt.Stringer:
		return c.String()
	default:
		return fmt.Sprint(v)
	}
}

// formatCellHuman renders one cell for aligned terminal output: floats are
// shortened to four significant digits.
func formatCellHuman(v any) string {
	if f, ok := v.(float64); ok {
		return strconv.FormatFloat(f, 'g', 4, 64)
	}
	return formatCell(v)
}
