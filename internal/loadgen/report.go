package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/histo"
)

// This file aggregates executed-op measurements into the run report:
// per-scenario log-bucketed latency histograms summarised as
// p50/p90/p99/p999, throughput, outcome counts, open-loop dispatch lag,
// and the full deterministic schedule. The JSON rendering is
// BENCH_SERVE.json; the schedule section is the byte-identical-per-seed
// half the determinism test pins, everything timed lives outside it.

// LatencySummary condenses one scenario's histogram (seconds).
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

func summarize(h *histo.Histogram) LatencySummary {
	return LatencySummary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
		Max:   h.Max(),
	}
}

// Scenario is one op kind's aggregate.
type Scenario struct {
	Kind       string         `json:"kind"`
	Ops        int            `json:"ops"`
	OK         int            `json:"ok"`
	Shed       int            `json:"shed"`
	Failed     int            `json:"failed"`
	Skipped    int            `json:"skipped"`
	ReqsPerSec float64        `json:"reqs_per_sec"`
	Latency    LatencySummary `json:"latency_seconds"`
}

// DispatchLag is the open-loop schedule-adherence measure: how far
// behind their scheduled offsets ops were actually dispatched. A mean
// in the microseconds means the measured latencies are the server's; a
// large lag means the harness itself was the bottleneck and the run
// should be rerun with more workers.
type DispatchLag struct {
	MeanMicros int64 `json:"mean_micros"`
	MaxMicros  int64 `json:"max_micros"`
}

// TraceAttribution splits completed submissions' latency into where the
// time went, read from the service's per-job trace trees
// (GET /v1/jobs/{id}/trace) after the timed phase: queue.wait is
// admission-to-dispatch, gate.wait is the job-slot acquisition, run is
// the execution itself. Jobs counts eligible submissions; Sampled is
// how many trace trees were actually read (capped). Absent entirely
// when the target serves no traces.
type TraceAttribution struct {
	Jobs      int            `json:"jobs"`
	Sampled   int            `json:"sampled"`
	QueueWait LatencySummary `json:"queue_wait_seconds"`
	GateWait  LatencySummary `json:"gate_wait_seconds"`
	Run       LatencySummary `json:"run_seconds"`
}

// Report is the full run result — marshalled as BENCH_SERVE.json.
type Report struct {
	Target      string  `json:"target"`
	Mode        string  `json:"mode"`
	Seed        int64   `json:"seed"`
	Nonce       string  `json:"nonce,omitempty"`
	Clients     int     `json:"clients"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`

	Scenarios []Scenario   `json:"scenarios"`
	Totals    Scenario     `json:"totals"`
	Lag       *DispatchLag `json:"dispatch_lag,omitempty"`

	// Attribution is the queue-vs-run latency split read from the trace
	// endpoint post-run; nil when the target serves no traces.
	Attribution *TraceAttribution `json:"trace_attribution,omitempty"`

	// VerifyFailures counts failed verifications (0 is the CI gate);
	// FailureSamples holds the first few messages for diagnosis.
	VerifyFailures int      `json:"verify_failures"`
	FailureSamples []string `json:"failure_samples,omitempty"`

	// Schedule is the deterministic request plan: byte-identical for the
	// same seed and config at any worker count (the nonce and all
	// timings are deliberately outside it).
	Schedule *Plan `json:"schedule"`
}

// maxFailureSamples caps the diagnostic sample list.
const maxFailureSamples = 20

// buildReport aggregates results into the report.
func buildReport(cfg Config, plan *Plan, results []opResult, wall time.Duration) *Report {
	r := &Report{
		Target:      cfg.Target,
		Mode:        cfg.Mode,
		Seed:        cfg.Seed,
		Nonce:       cfg.Nonce,
		Clients:     cfg.Clients,
		Workers:     cfg.Workers,
		WallSeconds: wall.Seconds(),
		Schedule:    plan,
	}
	type agg struct {
		s Scenario
		h *histo.Histogram
	}
	byKind := make(map[string]*agg)
	total := &agg{s: Scenario{Kind: "all"}, h: histo.NewLatency()}
	var lagSum, lagMax time.Duration
	for i := range results {
		res := &results[i]
		if res.op == nil {
			continue // op never dispatched (should not happen; guard anyway)
		}
		a := byKind[res.op.Kind]
		if a == nil {
			a = &agg{s: Scenario{Kind: res.op.Kind}, h: histo.NewLatency()}
			byKind[res.op.Kind] = a
		}
		for _, x := range []*agg{a, total} {
			x.s.Ops++
			switch res.outcome {
			case outcomeOK:
				x.s.OK++
				x.h.Observe(res.latency.Seconds())
			case outcomeShed:
				x.s.Shed++
			case outcomeSkipped:
				x.s.Skipped++
			default:
				x.s.Failed++
			}
		}
		if res.outcome == outcomeFailed {
			r.VerifyFailures++
			if len(r.FailureSamples) < maxFailureSamples {
				r.FailureSamples = append(r.FailureSamples, res.err)
			}
		}
		if res.lag > 0 {
			lagSum += res.lag
			if res.lag > lagMax {
				lagMax = res.lag
			}
		}
	}
	for _, kind := range opKinds {
		a := byKind[kind]
		if a == nil {
			continue
		}
		if r.WallSeconds > 0 {
			a.s.ReqsPerSec = float64(a.s.Ops) / r.WallSeconds
		}
		a.s.Latency = summarize(a.h)
		r.Scenarios = append(r.Scenarios, a.s)
	}
	sort.Slice(r.Scenarios, func(i, j int) bool { return r.Scenarios[i].Kind < r.Scenarios[j].Kind })
	if r.WallSeconds > 0 {
		total.s.ReqsPerSec = float64(total.s.Ops) / r.WallSeconds
	}
	total.s.Latency = summarize(total.h)
	r.Totals = total.s
	if cfg.Mode == ModeOpen && len(results) > 0 {
		r.Lag = &DispatchLag{
			MeanMicros: (lagSum / time.Duration(len(results))).Microseconds(),
			MaxMicros:  lagMax.Microseconds(),
		}
	}
	return r
}

// JSON renders the report as indented BENCH_SERVE.json bytes.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// HumanTable writes the operator-facing summary.
func (r *Report) HumanTable(w io.Writer) {
	fmt.Fprintf(w, "target %s  mode %s  seed %d  clients %d  workers %d  wall %.2fs\n",
		r.Target, r.Mode, r.Seed, r.Clients, r.Workers, r.WallSeconds)
	fmt.Fprintf(w, "%-18s %6s %6s %5s %5s %5s %9s %9s %9s %9s %9s %9s\n",
		"scenario", "ops", "ok", "shed", "fail", "skip", "req/s", "p50", "p90", "p99", "p999", "max")
	row := func(s Scenario) {
		fmt.Fprintf(w, "%-18s %6d %6d %5d %5d %5d %9.1f %9s %9s %9s %9s %9s\n",
			s.Kind, s.Ops, s.OK, s.Shed, s.Failed, s.Skipped, s.ReqsPerSec,
			fmtSecs(s.Latency.P50), fmtSecs(s.Latency.P90), fmtSecs(s.Latency.P99),
			fmtSecs(s.Latency.P999), fmtSecs(s.Latency.Max))
	}
	for _, s := range r.Scenarios {
		row(s)
	}
	row(r.Totals)
	if r.Lag != nil {
		fmt.Fprintf(w, "dispatch lag: mean %s, max %s\n",
			time.Duration(r.Lag.MeanMicros)*time.Microsecond, time.Duration(r.Lag.MaxMicros)*time.Microsecond)
	}
	if a := r.Attribution; a != nil {
		fmt.Fprintf(w, "attribution (%d/%d jobs traced): queue p50 %s p99 %s · gate p50 %s p99 %s · run p50 %s p99 %s\n",
			a.Sampled, a.Jobs,
			fmtSecs(a.QueueWait.P50), fmtSecs(a.QueueWait.P99),
			fmtSecs(a.GateWait.P50), fmtSecs(a.GateWait.P99),
			fmtSecs(a.Run.P50), fmtSecs(a.Run.P99))
	}
	if r.VerifyFailures > 0 {
		fmt.Fprintf(w, "VERIFICATION FAILURES: %d\n", r.VerifyFailures)
		for _, s := range r.FailureSamples {
			fmt.Fprintf(w, "  %s\n", s)
		}
	} else {
		fmt.Fprintf(w, "verification: all responses OK\n")
	}
}

// fmtSecs renders a latency in the tightest sensible unit.
func fmtSecs(s float64) string {
	d := time.Duration(s * float64(time.Second))
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
