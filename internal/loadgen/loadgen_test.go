package loadgen

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/server"
)

// startServer boots an in-process htserved over httptest.
func startServer(t *testing.T, opts server.Options) string {
	t.Helper()
	svc, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts.URL
}

// TestScheduleDeterministicAcrossWorkerCounts is the determinism
// contract: the same seed and config produce byte-identical schedule
// JSON for every executor worker count — workers execute the plan, they
// never draw randomness. Checked at the plan level (workers 1, 4, 9)
// and through a real run (the schedule embedded in BENCH_SERVE.json).
func TestScheduleDeterministicAcrossWorkerCounts(t *testing.T) {
	base := Config{
		Target:   "http://example.invalid", // plan building never dials
		Mode:     ModeClosed,
		Clients:  6,
		Requests: 40,
		Seed:     42,
	}.withDefaults()
	var want []byte
	for _, workers := range []int{1, 4, 9} {
		cfg := base
		cfg.Workers = workers
		plan, err := BuildPlan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := plan.ScheduleJSON()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("schedule differs at workers=%d (%d vs %d bytes)", workers, len(got), len(want))
		}
	}

	// Open-loop plans must be deterministic too (arrival times are part
	// of the schedule).
	open := base
	open.Mode, open.Rate, open.Duration = ModeOpen, 200, 2*time.Second
	p1, err := BuildPlan(open)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := BuildPlan(open)
	j1, _ := p1.ScheduleJSON()
	j2, _ := p2.ScheduleJSON()
	if !bytes.Equal(j1, j2) {
		t.Fatal("open-loop schedule not reproducible for the same seed")
	}
	if len(p1.Ops) == 0 {
		t.Fatal("open-loop plan is empty")
	}

	// And a different seed must actually change the schedule.
	reseeded := base
	reseeded.Seed = 43
	pr, _ := BuildPlan(reseeded)
	jr, _ := pr.ScheduleJSON()
	if bytes.Equal(jr, want) {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestRunScheduleBytesIdenticalAnyWorkers runs the full harness twice
// against one live server — 1 worker, then 4 — and compares the
// marshalled schedule sections of the two reports byte for byte.
func TestRunScheduleBytesIdenticalAnyWorkers(t *testing.T) {
	url := startServer(t, server.Options{Workers: 1, Jobs: 2, QueueDepth: 64})
	var schedules [][]byte
	for _, workers := range []int{1, 4} {
		report, err := Run(Config{
			Target:   url,
			Mode:     ModeClosed,
			Clients:  3,
			Requests: 6,
			Seed:     7,
			Workers:  workers,
			Verify:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if report.VerifyFailures > 0 {
			t.Fatalf("workers=%d: %d verification failures: %v", workers, report.VerifyFailures, report.FailureSamples)
		}
		b, err := json.Marshal(report.Schedule)
		if err != nil {
			t.Fatal(err)
		}
		schedules = append(schedules, b)
	}
	if !bytes.Equal(schedules[0], schedules[1]) {
		t.Fatal("schedule bytes differ between worker counts")
	}
}

// TestPlanStructure pins the plan invariants every executor relies on:
// indices are dense dispatch order, follow-up ops reference an earlier
// submission of the same client, and a client's first follow-up draw is
// upgraded to a submission.
func TestPlanStructure(t *testing.T) {
	cfg := Config{
		Target:   "http://example.invalid",
		Mode:     ModeClosed,
		Clients:  8,
		Requests: 50,
		Seed:     3,
	}.withDefaults()
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(plan.Ops), cfg.Clients*cfg.Requests; got != want {
		t.Fatalf("plan has %d ops, want %d", got, want)
	}
	kinds := map[string]int{}
	for i, op := range plan.Ops {
		kinds[op.Kind]++
		if op.Index != i {
			t.Fatalf("op %d carries index %d", i, op.Index)
		}
		switch op.Kind {
		case KindArtifactGet, KindSSE:
			if op.Follows < 0 || op.Follows >= i {
				t.Fatalf("op %d (%s) follows %d — must be an earlier op", i, op.Kind, op.Follows)
			}
			f := plan.Ops[op.Follows]
			if f.Client != op.Client || !f.isSubmission() {
				t.Fatalf("op %d follows op %d which is not a submission of client %d", i, op.Follows, op.Client)
			}
			if op.Kind == KindArtifactGet && op.Artifact == "" {
				t.Fatalf("artifact_get op %d picked no artifact", i)
			}
		default:
			if op.Follows != -1 {
				t.Fatalf("op %d (%s) has follows %d, want -1", i, op.Kind, op.Follows)
			}
		}
	}
	// With the default mix and 400 draws, every default-weighted kind
	// should appear (distributed and drain are opt-in: zero weight by
	// default, so schedules predating them are unchanged).
	for _, k := range opKinds {
		if k == KindDistributed || k == KindDrain {
			continue
		}
		if kinds[k] == 0 {
			t.Errorf("kind %s never drawn in 400 ops", k)
		}
	}
}

// TestRunEndToEndVerifiesEverything is the harness smoke: a mixed
// closed-loop run against a live in-process service with verification
// on must complete with zero failures and produce a coherent report.
func TestRunEndToEndVerifiesEverything(t *testing.T) {
	url := startServer(t, server.Options{Workers: 1, Jobs: 2, QueueDepth: 64, CacheDir: t.TempDir()})
	var progress bytes.Buffer
	report, err := Run(Config{
		Target:   url,
		Mode:     ModeClosed,
		Clients:  4,
		Requests: 12,
		Seed:     11,
		Verify:   true,
		Progress: &progress,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.VerifyFailures > 0 {
		t.Fatalf("%d verification failures: %v", report.VerifyFailures, report.FailureSamples)
	}
	if report.Totals.Ops != 48 {
		t.Fatalf("totals cover %d ops, want 48", report.Totals.Ops)
	}
	if report.Totals.OK+report.Totals.Shed+report.Totals.Skipped != report.Totals.Ops {
		t.Fatalf("outcome counts don't partition the ops: %+v", report.Totals)
	}
	if report.Totals.Latency.Count == 0 || report.Totals.Latency.P99 <= 0 {
		t.Fatalf("latency summary empty: %+v", report.Totals.Latency)
	}
	if report.Totals.ReqsPerSec <= 0 {
		t.Fatal("throughput not computed")
	}
	// The human table and JSON renderings must both work.
	var table bytes.Buffer
	report.HumanTable(&table)
	if !bytes.Contains(table.Bytes(), []byte("verification: all responses OK")) {
		t.Fatalf("human table missing the verification line:\n%s", table.String())
	}
	if _, err := report.JSON(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenLoopRunRecordsDispatchLag exercises the open-loop executor:
// scheduled arrivals, lag accounting, and clean verification.
func TestOpenLoopRunRecordsDispatchLag(t *testing.T) {
	url := startServer(t, server.Options{Workers: 1, Jobs: 2, QueueDepth: 64})
	report, err := Run(Config{
		Target:   url,
		Mode:     ModeOpen,
		Clients:  4,
		Rate:     60,
		Duration: 1500 * time.Millisecond,
		Seed:     5,
		Workers:  8,
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.VerifyFailures > 0 {
		t.Fatalf("%d verification failures: %v", report.VerifyFailures, report.FailureSamples)
	}
	if report.Lag == nil {
		t.Fatal("open-loop report has no dispatch-lag section")
	}
	if report.Totals.Ops == 0 {
		t.Fatal("open-loop run dispatched nothing")
	}
}

// TestNonceChangesPayloadsNotSchedule pins the nonce contract.
func TestNonceChangesPayloadsNotSchedule(t *testing.T) {
	cfg := Config{
		Target:   "http://example.invalid",
		Mode:     ModeClosed,
		Clients:  2,
		Requests: 10,
		Seed:     9,
	}.withDefaults()
	plan, err := BuildPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.Ops {
		op := &plan.Ops[i]
		if op.Body == "" {
			continue
		}
		bare := applyNonce(op, "")
		if bare != op.Body {
			t.Fatalf("empty nonce rewrote op %d", i)
		}
		n1, n2 := applyNonce(op, "run-a"), applyNonce(op, "run-a")
		if n1 != n2 {
			t.Fatalf("nonce application not deterministic for op %d", i)
		}
		if n1 == op.Body {
			t.Fatalf("nonce did not perturb op %d payload %s", i, op.Body)
		}
		if other := applyNonce(op, "run-b"); other == n1 {
			t.Fatalf("different nonces produced the same payload for op %d", i)
		}
	}
	// Schedule bytes are computed from the plan alone — nonce-free by
	// construction (there is no nonce anywhere in the plan).
	j, err := plan.ScheduleJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(j, []byte("run-a")) {
		t.Fatal("nonce leaked into the schedule")
	}
}

// TestMixValidation covers the mix edge cases.
func TestMixValidation(t *testing.T) {
	if _, err := (Mix{Sim: -1}).weights(); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := (Mix{}).weights(); err != nil {
		t.Errorf("zero mix must fall back to the default: %v", err)
	}
	cum, err := (Mix{SSE: 2}).weights()
	if err != nil {
		t.Fatal(err)
	}
	if cum[len(cum)-1] != 1 {
		t.Errorf("cumulative weights end at %g, want 1", cum[len(cum)-1])
	}
}

// TestDistributedScenarioAgainstCoordinator drives the opt-in
// distributed mix against a coordinator fronting one worker: every op
// is a unique campaign executed through the shard protocol, verified
// byte-identical to the local reference, and reported as its own
// scenario row (the 1-vs-N comparison BENCH_NOTES.md records).
func TestDistributedScenarioAgainstCoordinator(t *testing.T) {
	worker := startServer(t, server.Options{Workers: 1, Jobs: 2, QueueDepth: 64})
	coord := startServer(t, server.Options{Workers: 1, Jobs: 2, QueueDepth: 64, WorkerURLs: []string{worker}})
	report, err := Run(Config{
		Target:   coord,
		Mode:     ModeClosed,
		Clients:  2,
		Requests: 3,
		Seed:     17,
		Mix:      Mix{Distributed: 1},
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.VerifyFailures > 0 {
		t.Fatalf("%d verification failures: %v", report.VerifyFailures, report.FailureSamples)
	}
	if len(report.Scenarios) != 1 || report.Scenarios[0].Kind != KindDistributed {
		t.Fatalf("scenarios = %+v, want exactly the distributed row", report.Scenarios)
	}
	if s := report.Scenarios[0]; s.Ops != 6 || s.OK != 6 {
		t.Fatalf("distributed scenario = %+v, want 6/6 ok", s)
	}
}

// TestDistributedSSEEpochsAndAttribution pins the observability half of
// the distributed scenario: SSE subscribers on distributed submissions
// must see live per-epoch events (the spec carries a real simulation by
// construction) with strictly monotonic ids, and the post-run
// attribution pass must split completed jobs' latency into
// queue.wait/gate.wait/run from the trace endpoint.
func TestDistributedSSEEpochsAndAttribution(t *testing.T) {
	worker := startServer(t, server.Options{Workers: 1, Jobs: 2, QueueDepth: 64})
	coord := startServer(t, server.Options{Workers: 1, Jobs: 2, QueueDepth: 64, WorkerURLs: []string{worker}})
	report, err := Run(Config{
		Target:   coord,
		Mode:     ModeClosed,
		Clients:  2,
		Requests: 4,
		Seed:     21,
		Mix:      Mix{Distributed: 2, SSE: 1},
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.VerifyFailures > 0 {
		t.Fatalf("%d verification failures: %v", report.VerifyFailures, report.FailureSamples)
	}
	// The seed must actually schedule an SSE op behind a distributed
	// submission — otherwise the epoch assertion never ran.
	followsDist := 0
	for _, op := range report.Schedule.Ops {
		if op.Kind == KindSSE && op.Follows >= 0 &&
			report.Schedule.Ops[op.Follows].Kind == KindDistributed {
			followsDist++
		}
	}
	if followsDist == 0 {
		t.Fatal("schedule has no SSE op following a distributed submission; pick another seed")
	}
	a := report.Attribution
	if a == nil {
		t.Fatal("no trace attribution despite tracing-enabled target")
	}
	if a.Jobs == 0 || a.Sampled != a.Jobs {
		t.Fatalf("attribution sampled %d of %d jobs, want all", a.Sampled, a.Jobs)
	}
	if a.Run.Count == 0 || a.Run.Max <= 0 {
		t.Fatalf("run-span summary empty: %+v", a.Run)
	}
	if a.QueueWait.Count == 0 {
		t.Fatalf("queue.wait summary empty: %+v", a.QueueWait)
	}
	var table bytes.Buffer
	report.HumanTable(&table)
	if !bytes.Contains(table.Bytes(), []byte("attribution (")) {
		t.Fatalf("human table missing the attribution line:\n%s", table.String())
	}
}

// TestAttributionAbsentWhenTracingOff: against a --no-trace server the
// trace endpoint answers 404 and the report must simply omit the
// attribution section, not fail verification.
func TestAttributionAbsentWhenTracingOff(t *testing.T) {
	url := startServer(t, server.Options{Workers: 1, Jobs: 2, QueueDepth: 64, DisableTracing: true})
	report, err := Run(Config{
		Target:   url,
		Mode:     ModeClosed,
		Clients:  1,
		Requests: 3,
		Seed:     5,
		Verify:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.VerifyFailures > 0 {
		t.Fatalf("%d verification failures: %v", report.VerifyFailures, report.FailureSamples)
	}
	if report.Attribution != nil {
		t.Fatalf("attribution reported against a traceless target: %+v", report.Attribution)
	}
}
