package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/exp"
)

// This file builds the request plan: the complete, deterministic
// schedule of operations a run will execute, generated single-threaded
// from per-client seeded RNG streams BEFORE any request is sent. The
// plan is the determinism contract of the harness — the same seed and
// config produce a byte-identical schedule on any machine with any
// executor worker count, because workers only execute the plan, they
// never draw randomness. Wall-clock timings live in the report's
// scenario stats, never in the schedule.

// Op kinds. Submissions create jobs; artifact_get and sse target the
// job created by an earlier submission of the same client (Follows);
// cancel submits a throwaway campaign and deletes it immediately.
const (
	KindCampaignCached   = "campaign_cached"
	KindCampaignUncached = "campaign_uncached"
	KindSim              = "sim"
	KindArtifactGet      = "artifact_get"
	KindSSE              = "sse"
	KindCancel           = "cancel"
	// KindDistributed is an uncached campaign submission intended for a
	// coordinator target: the payload is unique per op (no cache or
	// single-flight collapse), so the measured latency is the distributed
	// execution path end to end. Point the harness at a 1-worker and then
	// an N-worker coordinator with the same seed to get the scaling
	// comparison in BENCH_NOTES.md.
	KindDistributed = "distributed"
	// KindDrain runs Config.DrainCmd — an operator-supplied shell command
	// that SIGTERMs and relaunches a worker (or otherwise perturbs the
	// deployment) mid-run. It is the resilience drill of the mix: with
	// drain ops interleaved, a run against a journaled coordinator must
	// still finish with zero failed campaigns. No path or body; the
	// command itself is config, not schedule.
	KindDrain = "drain"
)

// opKinds is the fixed mix order (weights are drawn in this order, so
// the order is part of the determinism contract; new kinds append at
// the end, which leaves every zero-weight-for-them schedule unchanged).
var opKinds = []string{KindCampaignCached, KindCampaignUncached, KindSim, KindArtifactGet, KindSSE, KindCancel, KindDistributed, KindDrain}

// Op is one planned operation. Everything in it is derived from the
// seed; the JSON rendering (embedded in BENCH_SERVE.json as the
// schedule) is byte-identical across runs with the same seed and
// config.
type Op struct {
	// Index is the op's position in the global dispatch order.
	Index int `json:"index"`
	// Client and Seq identify the issuing client and its per-client
	// sequence number.
	Client int    `json:"client"`
	Seq    int    `json:"seq"`
	Kind   string `json:"kind"`
	// AtMicros is the open-loop dispatch offset from run start
	// (microseconds; 0 in closed-loop mode, where clients run their ops
	// back to back).
	AtMicros int64 `json:"at_micros"`
	// Path is the submission endpoint for submission kinds ("" for
	// follow-up kinds, whose URL depends on the job id learned at run
	// time).
	Path string `json:"path,omitempty"`
	// Body is the canonical request payload, nonce-free (the nonce is
	// mixed in at execution time only, so it never perturbs the
	// schedule).
	Body string `json:"body,omitempty"`
	// Follows is the plan index of the submission this op targets (-1
	// for submissions and cancels).
	Follows int `json:"follows"`
	// Artifact is the artifact file an artifact_get fetches.
	Artifact string `json:"artifact,omitempty"`
}

// at returns the dispatch offset as a duration.
func (o *Op) at() time.Duration { return time.Duration(o.AtMicros) * time.Microsecond }

// isSubmission reports whether the op creates a job whose id follow-up
// ops can target.
func (o *Op) isSubmission() bool {
	switch o.Kind {
	case KindCampaignCached, KindCampaignUncached, KindSim, KindDistributed:
		return true
	}
	return false
}

// DefaultSpec is the shared cached-campaign payload: every client
// submits it verbatim, so the first submission is the one cache miss
// and everything after exercises the memory/disk/single-flight tiers.
// It mirrors the golden spec of internal/campaign — cheap, and covering
// a static table plus an analytic experiment.
const DefaultSpec = `{"name":"load-shared","seed":1,"experiments":[{"id":"E1","params":{"size":64}},{"id":"E3","params":{"trials":3}}]}`

// specExperiments are the artifact base names DefaultSpec (and every
// uncached variant, which shares its experiment list) produces.
var specExperiments = []string{"e1", "e3"}

// artifactFormats mirrors results.Formats() — fixed here so the plan
// never depends on map iteration or registry order.
var artifactFormats = []string{"json", "csv", "txt"}

// uncachedSpec builds a unique campaign payload for (client, seq): the
// DefaultSpec experiments under a seed derived from the base seed and
// the op coordinates, so no two ops in a run share a cache key (and
// reruns with the same base seed regenerate the same payloads).
func uncachedSpec(base int64, kind string, client, seq int) string {
	seed := positiveSeed(base, fmt.Sprintf("%s-c%d-s%d", kind, client, seq))
	return fmt.Sprintf(`{"name":"load-c%d-s%d","seed":%d,"experiments":[{"id":"E1","params":{"size":64}},{"id":"E3","params":{"trials":3}}]}`,
		client, seq, seed)
}

// distributedSpec builds the payload for distributed submissions: the
// DefaultSpec experiments plus a small real cycle simulation (X1), so a
// coordinator target fans the job out to workers that stream per-epoch
// progress back. The extra experiment is what makes the followed SSE
// verification meaningful — an all-analytic spec would never publish an
// epoch event. Artifact picks stay valid because the experiment list is
// a superset of specExperiments.
func distributedSpec(base int64, client, seq int) string {
	seed := positiveSeed(base, fmt.Sprintf("distributed-c%d-s%d", client, seq))
	return fmt.Sprintf(`{"name":"load-c%d-s%d","seed":%d,"experiments":[{"id":"E1","params":{"size":64}},{"id":"E3","params":{"trials":3}},{"id":"X1","params":{"size":64,"threads":8,"epochs":3,"hts":8}}]}`,
		client, seq, seed)
}

// simBody builds a small unique sim payload for (client, seq).
func simBody(base int64, client, seq int) string {
	seed := positiveSeed(base, fmt.Sprintf("sim-c%d-s%d", client, seq))
	return fmt.Sprintf(`{"cores":64,"threads":4,"hts":4,"epochs":6,"seed":%d,"workers":1}`, seed)
}

// positiveSeed derives a strictly positive seed for a named stream
// (payload seeds are user-visible in specs, where 0 means "default").
func positiveSeed(base int64, stream string) int64 {
	s := exp.StreamSeed(base, stream) & 0x7fffffffffffffff
	if s == 0 {
		s = 1
	}
	return s
}

// Plan is the full run schedule in dispatch order.
type Plan struct {
	Ops []Op `json:"ops"`
}

// BuildPlan generates the schedule for cfg. Each client owns one RNG
// stream seeded by exp.StreamSeed(cfg.Seed, "client-<i>"); kind choices,
// inter-arrival draws, and artifact picks all come from that stream, so
// clients are mutually independent and the whole plan is reproducible
// from cfg alone. Open loop: exponential inter-arrivals at
// cfg.Rate/Clients per client up to the cfg.Duration horizon. Closed
// loop: exactly cfg.Requests ops per client, dispatched back to back
// (AtMicros 0) — bounded by count, not wall time, so the schedule never
// depends on how fast the server answers.
func BuildPlan(cfg Config) (*Plan, error) {
	weights, err := cfg.Mix.weights()
	if err != nil {
		return nil, err
	}
	var ops []Op
	for c := 0; c < cfg.Clients; c++ {
		rng := rand.New(rand.NewSource(exp.StreamSeed(cfg.Seed, fmt.Sprintf("client-%d", c))))
		lastSub := -1 // plan index of this client's latest submission
		emit := func(seq int, atMicros int64) {
			op := Op{
				Client:   c,
				Seq:      seq,
				Kind:     pickKind(rng, weights),
				AtMicros: atMicros,
				Follows:  -1,
			}
			// Follow-up kinds need a prior submission to target; a client's
			// first ops upgrade to the shared cached campaign instead.
			if (op.Kind == KindArtifactGet || op.Kind == KindSSE) && lastSub < 0 {
				op.Kind = KindCampaignCached
			}
			switch op.Kind {
			case KindCampaignCached:
				op.Path, op.Body = "/v1/campaigns", cfg.Spec
			case KindCampaignUncached:
				op.Path, op.Body = "/v1/campaigns", uncachedSpec(cfg.Seed, "uncached", c, seq)
			case KindDistributed:
				op.Path, op.Body = "/v1/campaigns", distributedSpec(cfg.Seed, c, seq)
			case KindSim:
				op.Path, op.Body = "/v1/sims", simBody(cfg.Seed, c, seq)
			case KindCancel:
				op.Path, op.Body = "/v1/campaigns", uncachedSpec(cfg.Seed, "cancel", c, seq)
			case KindArtifactGet:
				op.Follows = lastSub
				op.Artifact = planArtifact(rng, ops[lastSub].Kind)
			case KindSSE:
				op.Follows = lastSub
			case KindDrain:
				// No path or body: the op is a marker in the schedule; the
				// command it runs lives in config.
			}
			// Index is provisional (per-client emit order); the merge below
			// renumbers into global dispatch order.
			ops = append(ops, op)
			if op.isSubmission() {
				lastSub = len(ops) - 1
			}
		}

		if cfg.Mode == ModeClosed {
			for seq := 0; seq < cfg.Requests; seq++ {
				emit(seq, 0)
			}
			continue
		}
		perClient := cfg.Rate / float64(cfg.Clients)
		at := time.Duration(0)
		for seq := 0; ; seq++ {
			at += time.Duration(rng.ExpFloat64() / perClient * float64(time.Second))
			if at >= cfg.Duration {
				break
			}
			emit(seq, at.Microseconds())
		}
	}

	// Merge clients into global dispatch order: by time, ties broken by
	// (client, seq) so the order is total and deterministic. Follows
	// indices are per-slice already (they point into ops), so remap them
	// through the permutation.
	perm := make([]int, len(ops))
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		x, y := &ops[perm[a]], &ops[perm[b]]
		if x.AtMicros != y.AtMicros {
			return x.AtMicros < y.AtMicros
		}
		if x.Client != y.Client {
			return x.Client < y.Client
		}
		return x.Seq < y.Seq
	})
	newIndex := make([]int, len(ops))
	for newPos, old := range perm {
		newIndex[old] = newPos
	}
	sorted := make([]Op, len(ops))
	for newPos, old := range perm {
		op := ops[old]
		op.Index = newPos
		if op.Follows >= 0 {
			op.Follows = newIndex[op.Follows]
		}
		sorted[newPos] = op
	}
	return &Plan{Ops: sorted}, nil
}

// pickKind draws one op kind from the cumulative mix weights.
func pickKind(rng *rand.Rand, cum []float64) string {
	x := rng.Float64()
	for i, c := range cum {
		if x < c {
			return opKinds[i]
		}
	}
	return opKinds[len(opKinds)-1]
}

// planArtifact picks which artifact file an artifact_get fetches, from
// the followed submission's known output set.
func planArtifact(rng *rand.Rand, followsKind string) string {
	format := artifactFormats[rng.Intn(len(artifactFormats))]
	if followsKind == KindSim {
		return "run." + format
	}
	return specExperiments[rng.Intn(len(specExperiments))] + "." + format
}

// ScheduleJSON renders the plan as canonical indented JSON — the bytes
// the determinism test compares across worker counts.
func (p *Plan) ScheduleJSON() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}
