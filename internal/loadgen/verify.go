package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/campaign"
	"repro/internal/results"
)

// This file computes reference artifacts for byte-identity
// verification: the harness runs the same campaign spec through
// campaign.BuildTables locally and renders it with results.WriteFormat
// — exactly the pipeline behind `htcampaign run` and behind the
// server's own artifact rendering. Simulations are deterministic per
// (spec, revision, toolchain), so when harness and server are built
// from the same tree, any byte difference in a served artifact is a
// server-side defect (corrupted cache entry, truncated stream, stale
// rendering), not noise.
//
// References are memoized per spec body: a run submits the same cached
// spec hundreds of times and a bounded set of uncached variants, so
// each unique spec simulates locally exactly once.

type refStore struct {
	mu sync.Mutex
	m  map[string]map[string][]byte // spec body -> artifact name -> bytes
	// building serialises reference computation per body, so concurrent
	// artifact_gets of the same job don't simulate twice.
	building map[string]*sync.Once
	errs     map[string]error
}

func newRefStore() *refStore {
	return &refStore{
		m:        make(map[string]map[string][]byte),
		building: make(map[string]*sync.Once),
		errs:     make(map[string]error),
	}
}

// artifact returns the reference bytes of one artifact file for a
// campaign spec body, computing and memoizing the whole artifact set on
// first use.
func (r *refStore) artifact(body, name string) ([]byte, error) {
	r.mu.Lock()
	once, ok := r.building[body]
	if !ok {
		once = new(sync.Once)
		r.building[body] = once
	}
	r.mu.Unlock()
	once.Do(func() {
		arts, err := buildReference(body)
		r.mu.Lock()
		r.m[body], r.errs[body] = arts, err
		r.mu.Unlock()
	})
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.errs[body]; err != nil {
		return nil, err
	}
	b, ok := r.m[body][name]
	if !ok {
		known := make([]string, 0, len(r.m[body]))
		for k := range r.m[body] {
			known = append(known, k)
		}
		return nil, fmt.Errorf("reference has no artifact %q (has %v)", name, known)
	}
	return b, nil
}

// buildReference simulates one spec locally and renders every table in
// every format, keyed the way the server names artifacts
// (<experiment>.<format>, lowercased).
func buildReference(body string) (map[string][]byte, error) {
	spec, err := campaign.ParseSpec([]byte(body))
	if err != nil {
		return nil, err
	}
	tables, err := campaign.BuildTables(context.Background(), spec, 0, campaign.Progress{})
	if err != nil {
		return nil, err
	}
	arts := make(map[string][]byte)
	for _, t := range tables {
		base := strings.ToLower(t.TableMeta().Experiment)
		for _, format := range results.Formats() {
			var buf bytes.Buffer
			if err := results.WriteFormat(&buf, t, format); err != nil {
				return nil, err
			}
			arts[base+"."+format] = buf.Bytes()
		}
	}
	return arts, nil
}
