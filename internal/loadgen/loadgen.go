// Package loadgen is the deterministic load-test harness for htserved:
// it drives a live service with a seeded, reproducible mix of cached
// and uncached campaign submissions, single-sim requests, artifact
// fetches, SSE subscriber churn, and cancellations, in open-loop
// (scheduled exponential arrivals) or closed-loop (fixed request count
// per client) mode, and verifies every response — status class,
// artifact byte-identity against a locally computed reference, and SSE
// event-id monotonicity.
//
// Determinism is the design center: the whole request schedule is
// generated up front from per-client RNG streams derived with
// exp.StreamSeed, so the same seed and config yield a byte-identical
// schedule regardless of executor worker count or server speed (see
// plan.go). The optional nonce perturbs payloads at execution time only
// — it makes reruns against a long-lived server miss its
// content-addressed cache without changing the schedule bytes.
//
// Results aggregate into log-bucketed latency histograms
// (internal/histo) per scenario, reported as a human table and as
// machine-readable BENCH_SERVE.json whose server-side counterpart is
// the /v1/metrics?format=prometheus exposition (DESIGN.md §10
// describes the join).
package loadgen

import (
	"fmt"
	"io"
	"time"
)

// Modes: open loop dispatches ops at their scheduled offsets regardless
// of completions (arrival rate is the controlled variable, queueing
// shows up as latency); closed loop gives each client a fixed op count
// executed back to back (concurrency is the controlled variable).
const (
	ModeOpen   = "open"
	ModeClosed = "closed"
)

// Mix holds the op-kind weights. They need not sum to 1; zero is a
// valid weight. The zero Mix takes DefaultMix.
type Mix struct {
	CampaignCached   float64 `json:"campaign_cached"`
	CampaignUncached float64 `json:"campaign_uncached"`
	Sim              float64 `json:"sim"`
	ArtifactGet      float64 `json:"artifact_get"`
	SSE              float64 `json:"sse"`
	Cancel           float64 `json:"cancel"`
	// Distributed weighs uncached campaign submissions meant for a
	// coordinator target — its scenario row isolates distributed
	// execution latency for 1-vs-N-worker comparisons.
	Distributed float64 `json:"distributed"`
	// Drain weighs resilience-drill ops that run Config.DrainCmd
	// (typically: SIGTERM and relaunch a worker) mid-run. Opt-in — the
	// weight appends to the mix order, so every schedule that doesn't
	// use it is byte-identical to before the kind existed.
	Drain float64 `json:"drain"`
}

// DefaultMix weights a serving-shaped workload: mostly cache traffic
// and reads, a steady stream of fresh simulations, light cancellation
// pressure.
var DefaultMix = Mix{
	CampaignCached:   0.25,
	CampaignUncached: 0.15,
	Sim:              0.20,
	ArtifactGet:      0.20,
	SSE:              0.15,
	Cancel:           0.05,
}

// zero reports whether every weight is unset.
func (m Mix) zero() bool { return m == Mix{} }

// weights returns the cumulative distribution over opKinds.
func (m Mix) weights() ([]float64, error) {
	if m.zero() {
		m = DefaultMix
	}
	raw := []float64{m.CampaignCached, m.CampaignUncached, m.Sim, m.ArtifactGet, m.SSE, m.Cancel, m.Distributed, m.Drain}
	total := 0.0
	for _, w := range raw {
		if w < 0 {
			return nil, fmt.Errorf("loadgen: negative mix weight %g", w)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("loadgen: mix has no positive weight")
	}
	cum := make([]float64, len(raw))
	acc := 0.0
	for i, w := range raw {
		acc += w / total
		cum[i] = acc
	}
	return cum, nil
}

// Config parameterises one run.
type Config struct {
	// Target is the service base URL (e.g. http://127.0.0.1:8080).
	Target string
	// Mode is ModeOpen or ModeClosed.
	Mode string
	// Clients is the number of independent logical clients (each owns
	// one RNG stream).
	Clients int
	// Requests is the closed-loop op count per client.
	Requests int
	// Duration is the open-loop schedule horizon.
	Duration time.Duration
	// Rate is the open-loop aggregate arrival rate (ops/sec), split
	// evenly across clients.
	Rate float64
	// Seed drives every stream in the plan. Same seed, same schedule.
	Seed int64
	// Nonce, when set, is mixed into payloads at execution time (cache
	// busting for reruns); it never affects the schedule.
	Nonce string
	// Workers is the executor parallelism (defaults to Clients). The
	// schedule — and therefore the BENCH_SERVE.json schedule section —
	// is identical for every value.
	Workers int
	// Mix weighs the op kinds (zero value takes DefaultMix).
	Mix Mix
	// Spec overrides the shared cached-campaign payload (DefaultSpec).
	Spec string
	// DrainCmd is the shell command drain ops run (via sh -c) — the
	// operator's worker-restart recipe. Required when Mix.Drain > 0.
	DrainCmd string
	// Verify enables response verification (status class, artifact
	// byte-identity, SSE monotonicity). Off, the harness only measures.
	Verify bool
	// Progress, when non-nil, receives one line per 100 completed ops.
	Progress io.Writer
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Mode == "" {
		c.Mode = ModeClosed
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Requests <= 0 {
		c.Requests = 25
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Rate <= 0 {
		c.Rate = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = c.Clients
	}
	if c.Spec == "" {
		c.Spec = DefaultSpec
	}
	return c
}

// validate rejects configs the plan or executor cannot honour.
func (c Config) validate() error {
	if c.Target == "" {
		return fmt.Errorf("loadgen: no target URL")
	}
	if c.Mode != ModeOpen && c.Mode != ModeClosed {
		return fmt.Errorf("loadgen: unknown mode %q (known: open, closed)", c.Mode)
	}
	if _, err := c.Mix.weights(); err != nil {
		return err
	}
	if c.Mix.Drain > 0 && c.DrainCmd == "" {
		return fmt.Errorf("loadgen: drain mix weight needs a drain command (-drain-cmd)")
	}
	return nil
}

// Run plans and executes one load-test run and returns its report. The
// report is complete even when verification failures occurred — the
// caller decides whether failures are fatal (htload exits nonzero).
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	plan, err := BuildPlan(cfg)
	if err != nil {
		return nil, err
	}
	ex := newExecutor(cfg, plan)
	return ex.run()
}
