package loadgen

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/histo"
)

// This file executes a built plan against the live service. Workers
// only execute — every random choice was drawn in plan.go — so worker
// count and scheduling jitter affect timings, never the request
// sequence. Each op resolves to one verified interaction:
//
//	submissions   POST, then poll the job to a terminal state
//	cancel        POST, DELETE immediately, poll to terminal
//	artifact_get  wait for the followed job, GET one artifact
//	sse           stream the followed job's events to end-of-stream
//
// A 429 is the server doing its declared job under overload: it counts
// as "shed", not as a failure. Everything else unexpected — wrong
// status class, artifact bytes differing from the locally computed
// reference, non-monotonic SSE ids — is a verification failure.

// Op outcomes.
const (
	outcomeOK      = "ok"
	outcomeShed    = "shed"
	outcomeFailed  = "failed"
	outcomeSkipped = "skipped"
)

// opResult is one executed op's measurement.
type opResult struct {
	op      *Op
	outcome string
	err     string
	// latency is the measured interaction (submission→terminal, GET
	// round-trip, or full SSE stream); lag is how late behind the
	// open-loop schedule the dispatch happened.
	latency time.Duration
	lag     time.Duration
}

// jobView is the slice of the service's job status the harness reads.
type jobView struct {
	ID        string   `json:"id"`
	State     string   `json:"state"`
	Cache     string   `json:"cache"`
	Error     string   `json:"error"`
	Artifacts []string `json:"artifacts"`
}

// terminal reports whether the job reached an end state.
func (j *jobView) terminal() bool {
	switch j.State {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

type executor struct {
	cfg    Config
	plan   *Plan
	client *http.Client
	refs   *refStore

	mu     sync.Mutex
	jobIDs []string // job id per plan index, "" until known
	sent   []string // body actually sent per plan index (nonce applied)
	done   int      // completed ops, for progress lines
}

func newExecutor(cfg Config, plan *Plan) *executor {
	return &executor{
		cfg:  cfg,
		plan: plan,
		// No client-level timeout: SSE streams are long-lived by design.
		// Every other interaction is bounded by the poll deadline.
		client: &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.Workers + cfg.Clients}},
		refs:   newRefStore(),
		jobIDs: make([]string, len(plan.Ops)),
		sent:   make([]string, len(plan.Ops)),
	}
}

// run executes the plan and aggregates the report.
func (ex *executor) run() (*Report, error) {
	results := make([]opResult, len(ex.plan.Ops))
	start := time.Now()
	if ex.cfg.Mode == ModeOpen {
		ex.runOpen(start, results)
	} else {
		ex.runClosed(results)
	}
	wall := time.Since(start)
	rep := buildReport(ex.cfg, ex.plan, results, wall)
	// Attribution reads trace trees after the wall clock stops, so the
	// extra GETs never pollute the measured latencies.
	rep.Attribution = ex.attributeTraces(results)
	return rep, nil
}

// maxTraceFetches caps the post-run attribution pass: one GET per
// successful submission, sampled from the front of the schedule. The
// report's jobs/sampled split makes the cap visible.
const maxTraceFetches = 500

// traceNode is the slice of the obs.Node rendering the harness reads.
type traceNode struct {
	Name            string       `json:"name"`
	DurationSeconds float64      `json:"duration_seconds"`
	Children        []*traceNode `json:"children"`
}

// find returns the first span with the given name, depth-first.
func (n *traceNode) find(name string) *traceNode {
	if n == nil {
		return nil
	}
	if n.Name == name {
		return n
	}
	for _, c := range n.Children {
		if m := c.find(name); m != nil {
			return m
		}
	}
	return nil
}

// attributeTraces splits completed submissions' end-to-end latency into
// where the time went — queue.wait vs gate.wait vs run — by reading
// each job's trace tree from GET /v1/jobs/{id}/trace. Runs after the
// timed phase. Returns nil when the target serves no traces (--no-trace
// or a pre-tracing server): the first 404 abandons the pass.
func (ex *executor) attributeTraces(results []opResult) *TraceAttribution {
	attr := &TraceAttribution{}
	qh, gh, rh := histo.NewLatency(), histo.NewLatency(), histo.NewLatency()
	fetched := 0
	for i := range results {
		res := &results[i]
		if res.op == nil || !res.op.isSubmission() || res.outcome != outcomeOK {
			continue
		}
		id := ex.jobIDs[res.op.Index]
		if id == "" {
			continue
		}
		attr.Jobs++
		if fetched >= maxTraceFetches {
			continue // keep counting jobs so the sampling cap is visible
		}
		resp, err := ex.client.Get(ex.cfg.Target + "/v1/jobs/" + id + "/trace")
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			return nil // tracing is off server-side; no attribution to report
		}
		var tr struct {
			Root *traceNode `json:"root"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || derr != nil || tr.Root == nil {
			continue
		}
		fetched++
		attr.Sampled++
		for _, span := range []struct {
			name string
			h    *histo.Histogram
		}{{"queue.wait", qh}, {"gate.wait", gh}, {"run", rh}} {
			if n := tr.Root.find(span.name); n != nil {
				span.h.Observe(n.DurationSeconds)
			}
		}
	}
	if attr.Sampled == 0 {
		return nil
	}
	attr.QueueWait = summarize(qh)
	attr.GateWait = summarize(gh)
	attr.Run = summarize(rh)
	return attr
}

// runOpen dispatches ops at their scheduled offsets through a worker
// pool. Dispatch never waits for completions — if the service is slower
// than the arrival rate, queueing shows up as op latency and dispatch
// lag, exactly like production overload.
func (ex *executor) runOpen(start time.Time, results []opResult) {
	work := make(chan *Op)
	var wg sync.WaitGroup
	for w := 0; w < ex.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for op := range work {
				lag := time.Since(start.Add(op.at()))
				results[op.Index] = ex.execute(op)
				results[op.Index].lag = lag
				ex.progress()
			}
		}()
	}
	for i := range ex.plan.Ops {
		op := &ex.plan.Ops[i]
		if d := time.Until(start.Add(op.at())); d > 0 {
			time.Sleep(d)
		}
		work <- op
	}
	close(work)
	wg.Wait()
}

// runClosed runs each client's op sequence in order, with at most
// cfg.Workers clients in flight at once.
func (ex *executor) runClosed(results []opResult) {
	byClient := make(map[int][]*Op)
	for i := range ex.plan.Ops {
		op := &ex.plan.Ops[i]
		byClient[op.Client] = append(byClient[op.Client], op)
	}
	sem := make(chan struct{}, ex.cfg.Workers)
	var wg sync.WaitGroup
	for c := 0; c < ex.cfg.Clients; c++ {
		ops := byClient[c]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for _, op := range ops {
				results[op.Index] = ex.execute(op)
				ex.progress()
			}
		}()
	}
	wg.Wait()
}

// progress emits a heartbeat line every 100 completed ops.
func (ex *executor) progress() {
	if ex.cfg.Progress == nil {
		return
	}
	ex.mu.Lock()
	ex.done++
	n := ex.done
	ex.mu.Unlock()
	if n%100 == 0 {
		fmt.Fprintf(ex.cfg.Progress, "loadgen: %d/%d ops\n", n, len(ex.plan.Ops))
	}
}

// execute runs one op and measures it.
func (ex *executor) execute(op *Op) opResult {
	res := opResult{op: op, outcome: outcomeOK}
	var err error
	t0 := time.Now()
	switch op.Kind {
	case KindCampaignCached, KindCampaignUncached, KindSim, KindDistributed:
		err = ex.submit(op, false)
	case KindCancel:
		err = ex.submit(op, true)
	case KindArtifactGet:
		t0, err = ex.artifactGet(op)
	case KindSSE:
		t0, err = ex.streamSSE(op)
	case KindDrain:
		err = ex.drain(op)
	}
	res.latency = time.Since(t0)
	switch {
	case err == errShed:
		res.outcome = outcomeShed
	case err == errSkipped:
		res.outcome = outcomeSkipped
	case err != nil:
		res.outcome = outcomeFailed
		res.err = fmt.Sprintf("%s[%d] c%d/s%d: %v", op.Kind, op.Index, op.Client, op.Seq, err)
	}
	return res
}

// Sentinel outcomes that are not failures.
var (
	errShed    = fmt.Errorf("shed")
	errSkipped = fmt.Errorf("skipped")
)

// submit POSTs a submission body, records the job id, optionally fires
// the DELETE race (cancel ops), and polls the job to a terminal state.
func (ex *executor) submit(op *Op, cancel bool) error {
	body := applyNonce(op, ex.cfg.Nonce)
	ex.mu.Lock()
	ex.sent[op.Index] = body
	ex.mu.Unlock()
	resp, err := ex.client.Post(ex.cfg.Target+op.Path, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		return errShed
	}
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("POST %s = %d (want 202): %.200s", op.Path, resp.StatusCode, raw)
	}
	var jv jobView
	if err := json.Unmarshal(raw, &jv); err != nil || jv.ID == "" {
		return fmt.Errorf("POST %s: undecodable job status %.200s", op.Path, raw)
	}
	ex.mu.Lock()
	ex.jobIDs[op.Index] = jv.ID
	ex.mu.Unlock()

	if cancel {
		// DELETE races the run deliberately; 202 (cancelling) and 409
		// (the job beat the DELETE to a terminal state) are both correct
		// server behaviour.
		req, _ := http.NewRequest(http.MethodDelete, ex.cfg.Target+"/v1/jobs/"+jv.ID, nil)
		dresp, derr := ex.client.Do(req)
		if derr != nil {
			return derr
		}
		io.Copy(io.Discard, dresp.Body)
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusAccepted && dresp.StatusCode != http.StatusConflict {
			return fmt.Errorf("DELETE = %d (want 202 or 409)", dresp.StatusCode)
		}
	}

	final, err := ex.waitTerminal(jv.ID)
	if err != nil {
		return err
	}
	if !ex.cfg.Verify {
		return nil
	}
	if cancel {
		// Cancelled normally; done if the race lost. Either way terminal.
		if final.State != "cancelled" && final.State != "done" {
			return fmt.Errorf("cancel landed in state %s (%s)", final.State, final.Error)
		}
		return nil
	}
	if final.State != "done" {
		return fmt.Errorf("job %s finished %s: %s", jv.ID, final.State, final.Error)
	}
	return nil
}

// waitTerminal polls one job until it reaches an end state.
func (ex *executor) waitTerminal(id string) (*jobView, error) {
	deadline := time.Now().Add(60 * time.Second)
	sleep := 2 * time.Millisecond
	for time.Now().Before(deadline) {
		jv, err := ex.getJob(id)
		if err != nil {
			return nil, err
		}
		if jv.terminal() {
			return jv, nil
		}
		time.Sleep(sleep)
		if sleep < 20*time.Millisecond {
			sleep *= 2
		}
	}
	return nil, fmt.Errorf("job %s not terminal after 60s", id)
}

// getJob fetches one job status.
func (ex *executor) getJob(id string) (*jobView, error) {
	resp, err := ex.client.Get(ex.cfg.Target + "/v1/jobs/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("GET job %s = %d: %.200s", id, resp.StatusCode, raw)
	}
	var jv jobView
	if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
		return nil, err
	}
	return &jv, nil
}

// followedJob resolves the job id an artifact_get or sse op targets:
// the job its followed submission created. A followed submission that
// was shed (or is itself skipped) leaves nothing to read — the op is
// skipped, not failed.
func (ex *executor) followedJob(op *Op) (string, *Op, error) {
	if op.Follows < 0 {
		return "", nil, errSkipped
	}
	followed := &ex.plan.Ops[op.Follows]
	// In closed-loop mode the followed op (same client, earlier seq)
	// already completed. In open-loop mode dispatch order can outrun the
	// submission's POST; wait briefly for the id to materialise.
	deadline := time.Now().Add(30 * time.Second)
	for {
		ex.mu.Lock()
		id := ex.jobIDs[op.Follows]
		submitted := ex.sent[op.Follows] != ""
		ex.mu.Unlock()
		if id != "" {
			return id, followed, nil
		}
		if submitted || !time.Now().Before(deadline) {
			// POSTed but no id: the submission was shed or failed.
			return "", nil, errSkipped
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// artifactGet waits for the followed job, fetches one artifact, and —
// for campaign jobs — verifies the bytes against the locally computed
// reference (the same tables `htcampaign run` writes for that spec).
// The returned time is the start of the measured GET: the wait for the
// job is the followed submission's latency, not this op's.
func (ex *executor) artifactGet(op *Op) (time.Time, error) {
	id, followed, err := ex.followedJob(op)
	if err != nil {
		return time.Now(), err
	}
	final, err := ex.waitTerminal(id)
	if err != nil {
		return time.Now(), err
	}
	if final.State != "done" {
		// A cancelled/failed followed job has no artifacts to verify.
		return time.Now(), errSkipped
	}
	t0 := time.Now()
	resp, err := ex.client.Get(fmt.Sprintf("%s/v1/jobs/%s/artifacts/%s", ex.cfg.Target, id, op.Artifact))
	if err != nil {
		return t0, err
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return t0, fmt.Errorf("GET artifact %s of %s = %d", op.Artifact, id, resp.StatusCode)
	}
	if !ex.cfg.Verify {
		return t0, nil
	}
	if len(got) == 0 {
		return t0, fmt.Errorf("artifact %s of %s is empty", op.Artifact, id)
	}
	if followed.Kind == KindSim {
		// Sim references would mean re-deriving the server's request
		// normalisation here; byte-identity is pinned on the campaign
		// path, sims are verified structurally (status, non-empty, SSE).
		return t0, nil
	}
	ex.mu.Lock()
	sentBody := ex.sent[op.Follows]
	ex.mu.Unlock()
	want, err := ex.refs.artifact(sentBody, op.Artifact)
	if err != nil {
		return t0, fmt.Errorf("computing reference for %s: %v", op.Artifact, err)
	}
	if !bytes.Equal(got, want) {
		return t0, fmt.Errorf("artifact %s of %s differs from reference (%d vs %d bytes)",
			op.Artifact, id, len(got), len(want))
	}
	return t0, nil
}

// drain runs the configured drain command — the resilience drill:
// typically a script that SIGTERMs one worker, waits, and relaunches
// it. The measured latency is the command's wall time; a nonzero exit
// is a failed op, because a drill that cannot even perturb the
// deployment proves nothing about surviving the perturbation.
func (ex *executor) drain(op *Op) error {
	if ex.cfg.DrainCmd == "" {
		return errSkipped
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	out, err := exec.CommandContext(ctx, "sh", "-c", ex.cfg.DrainCmd).CombinedOutput()
	if err != nil {
		return fmt.Errorf("drain command: %v: %.200s", err, out)
	}
	return nil
}

// streamSSE subscribes to the followed job's event stream and reads it
// to end-of-stream (the log seals when the job finishes), verifying
// that event ids are strictly increasing — drop-oldest may open gaps,
// but order can never invert and ids can never repeat within one
// connection. Strict id monotonicity is also the no-duplicates check
// for per-epoch progress: every epoch event occupies its own id, so a
// replayed or double-forwarded worker sample would surface as a
// repeated id. Distributed submissions carry a simulating experiment by
// construction (distributedSpec), so their streams must additionally
// contain at least one decodable epoch event — the live-progress signal
// workers stream through the coordinator.
func (ex *executor) streamSSE(op *Op) (time.Time, error) {
	id, followed, err := ex.followedJob(op)
	if err != nil {
		return time.Now(), err
	}
	t0 := time.Now()
	resp, err := ex.client.Get(fmt.Sprintf("%s/v1/jobs/%s/events", ex.cfg.Target, id))
	if err != nil {
		return t0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return t0, fmt.Errorf("GET events of %s = %d", id, resp.StatusCode)
	}
	last, events, epochs := -1, 0, 0
	current := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			current = "" // frame boundary
			continue
		}
		if name, ok := strings.CutPrefix(line, "event: "); ok {
			current = name
			continue
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			if current == "epoch" {
				epochs++
				if ex.cfg.Verify {
					var ev struct {
						Experiment string `json:"experiment"`
					}
					if err := json.Unmarshal([]byte(data), &ev); err != nil || ev.Experiment == "" {
						return t0, fmt.Errorf("undecodable epoch event %.200q", data)
					}
				}
			}
			continue
		}
		v, ok := strings.CutPrefix(line, "id: ")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return t0, fmt.Errorf("unparseable SSE id line %q", line)
		}
		if ex.cfg.Verify && n <= last {
			return t0, fmt.Errorf("SSE ids not strictly increasing: %d after %d", n, last)
		}
		last = n
		events++
	}
	if err := sc.Err(); err != nil {
		return t0, fmt.Errorf("reading events of %s: %v", id, err)
	}
	if ex.cfg.Verify && events == 0 {
		return t0, fmt.Errorf("event stream of %s delivered nothing", id)
	}
	if ex.cfg.Verify && followed.Kind == KindDistributed && epochs == 0 {
		return t0, fmt.Errorf("distributed job %s streamed no epoch events", id)
	}
	return t0, nil
}

// applyNonce derives the payload actually sent for an op: with no nonce
// it is the planned body verbatim; with one, campaign names carry the
// nonce suffix and sim seeds are re-derived through it, so every
// submission misses a long-lived server's content-addressed cache
// while the plan bytes stay untouched.
func applyNonce(op *Op, nonce string) string {
	if nonce == "" || op.Body == "" {
		return op.Body
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(op.Body), &m); err != nil {
		return op.Body
	}
	switch op.Kind {
	case KindCampaignCached, KindCampaignUncached, KindCancel, KindDistributed:
		name, _ := m["name"].(string)
		m["name"] = name + "-" + nonce
		// The shared cached spec must still collide across clients within
		// this run — every client applies the same rewrite, so it does.
		seed, _ := m["seed"].(float64)
		m["seed"] = positiveSeed(int64(seed), "nonce-"+nonce)
	case KindSim:
		seed, _ := m["seed"].(float64)
		m["seed"] = positiveSeed(int64(seed), "nonce-"+nonce)
	}
	out, err := json.Marshal(m)
	if err != nil {
		return op.Body
	}
	return string(out)
}
