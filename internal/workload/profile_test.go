package workload

import (
	"testing"
	"testing/quick"
)

const testMemLat = 60 // ns, a typical uncontended round trip in this NoC

func TestAllContainsTableII(t *testing.T) {
	want := []string{
		"streamcluster", "swaptions", "ferret", "fluidanimate", "blackscholes",
		"freqmine", "dedup", "canneal", "vips", // PARSEC
		"barnes", "raytrace", // SPLASH-2
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d benchmarks, want %d", len(all), len(want))
	}
	for _, name := range want {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
}

func TestAllSortedAndCopied(t *testing.T) {
	a := All()
	for i := 1; i < len(a); i++ {
		if a[i-1].Name >= a[i].Name {
			t.Fatalf("All() not sorted at %d: %q >= %q", i, a[i-1].Name, a[i].Name)
		}
	}
	a[0].Name = "mutated"
	if All()[0].Name == "mutated" {
		t.Error("All() must return a copy")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("quake3"); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestSuitesLabelled(t *testing.T) {
	for _, p := range All() {
		if p.Suite != "PARSEC" && p.Suite != "SPLASH-2" {
			t.Errorf("%s has suite %q", p.Name, p.Suite)
		}
	}
	b, _ := ByName("barnes")
	if b.Suite != "SPLASH-2" {
		t.Errorf("barnes suite = %q, want SPLASH-2", b.Suite)
	}
}

func TestThroughputIncreasesWithFrequency(t *testing.T) {
	for _, p := range All() {
		prev := 0.0
		for _, f := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0} {
			cur := p.Throughput(f, testMemLat)
			if cur <= prev {
				t.Errorf("%s: throughput not increasing at %v GHz", p.Name, f)
			}
			prev = cur
		}
	}
}

func TestIPCDecreasesWithLatency(t *testing.T) {
	for _, p := range All() {
		if p.IPC(2.0, 30) < p.IPC(2.0, 200) {
			t.Errorf("%s: IPC should not improve with slower memory", p.Name)
		}
	}
}

func TestComputeBoundScalesBetter(t *testing.T) {
	// The paper's premise: instruction-bounded applications gain more from
	// frequency than memory-bounded ones. blackscholes (compute) must show
	// a larger relative speed-up from 0.5 to 3.0 GHz than canneal (memory).
	bs, _ := ByName("blackscholes")
	cn, _ := ByName("canneal")
	speedup := func(p Profile) float64 {
		return p.Throughput(3.0, testMemLat) / p.Throughput(0.5, testMemLat)
	}
	if speedup(bs) <= speedup(cn) {
		t.Errorf("blackscholes speedup %v should exceed canneal %v", speedup(bs), speedup(cn))
	}
}

func TestSensitivityOrdersComputeAboveMemory(t *testing.T) {
	freqs := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	sw, _ := ByName("swaptions")
	sc, _ := ByName("streamcluster")
	if sw.Sensitivity(freqs, testMemLat) <= sc.Sensitivity(freqs, testMemLat) {
		t.Error("compute-bound swaptions must be more budget-sensitive than streamcluster (Definition 4)")
	}
}

func TestSensitivityNonNegativeAndFinite(t *testing.T) {
	freqs := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	for _, p := range All() {
		s := p.Sensitivity(freqs, testMemLat)
		if s <= 0 || s != s {
			t.Errorf("%s sensitivity = %v", p.Name, s)
		}
	}
}

func TestSensitivityDegenerateInputs(t *testing.T) {
	p, _ := ByName("vips")
	if got := p.Sensitivity(nil, testMemLat); got != 0 {
		t.Errorf("empty freq list sensitivity = %v, want 0", got)
	}
	if got := p.Sensitivity([]float64{2.0}, testMemLat); got != 0 {
		t.Errorf("single freq sensitivity = %v, want 0", got)
	}
	if got := p.Sensitivity([]float64{2.0, 2.0}, testMemLat); got != 0 {
		t.Errorf("repeated freq sensitivity = %v, want 0", got)
	}
}

func TestMemOpsPerNsScalesWithMPI(t *testing.T) {
	cn, _ := ByName("canneal")
	sw, _ := ByName("swaptions")
	if cn.MemOpsPerNs(2.0, testMemLat) <= sw.MemOpsPerNs(2.0, testMemLat) {
		t.Error("memory-bound canneal must generate more NoC traffic than swaptions")
	}
}

// Property: throughput is always positive and bounded by f/CPICore.
func TestThroughputBounds(t *testing.T) {
	f := func(fRaw, latRaw uint8) bool {
		fGHz := 0.5 + float64(fRaw)/255*2.5
		lat := float64(latRaw)
		for _, p := range All() {
			th := p.Throughput(fGHz, lat)
			if th <= 0 || th > fGHz/p.CPICore+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMixesMatchTableIII(t *testing.T) {
	ms := Mixes()
	if len(ms) != 4 {
		t.Fatalf("Mixes() returned %d, want 4", len(ms))
	}
	tests := []struct {
		name          string
		wantAttackers int
		wantVictims   int
	}{
		{"mix-1", 2, 2},
		{"mix-2", 2, 2},
		{"mix-3", 1, 3},
		{"mix-4", 3, 1},
	}
	for _, tt := range tests {
		m, err := MixByName(tt.name)
		if err != nil {
			t.Fatalf("MixByName(%q): %v", tt.name, err)
		}
		if len(m.Attackers) != tt.wantAttackers || len(m.Victims) != tt.wantVictims {
			t.Errorf("%s has %d attackers / %d victims, want %d/%d",
				tt.name, len(m.Attackers), len(m.Victims), tt.wantAttackers, tt.wantVictims)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", tt.name, err)
		}
	}
}

func TestMixByNameUnknown(t *testing.T) {
	if _, err := MixByName("mix-9"); err == nil {
		t.Error("unknown mix should fail")
	}
}

func TestMixValidateRejectsBadMixes(t *testing.T) {
	tests := []struct {
		name string
		give Mix
	}{
		{name: "unknown app", give: Mix{Name: "x", Attackers: []string{"doom"}, Victims: []string{"vips"}}},
		{name: "duplicate app", give: Mix{Name: "x", Attackers: []string{"vips"}, Victims: []string{"vips"}}},
		{name: "no victims", give: Mix{Name: "x", Attackers: []string{"vips"}}},
		{name: "no attackers", give: Mix{Name: "x", Victims: []string{"vips"}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); err == nil {
				t.Error("Validate should fail")
			}
		})
	}
}

func TestMixApps(t *testing.T) {
	m, _ := MixByName("mix-4")
	apps := m.Apps()
	if len(apps) != 4 {
		t.Fatalf("Apps = %v, want 4 entries", apps)
	}
	if apps[0] != "barnes" || apps[3] != "raytrace" {
		t.Errorf("Apps order = %v, want attackers first", apps)
	}
}
