package workload

import (
	"fmt"

	"repro/internal/registry"
)

// Mix is one attacker/victim benchmark combination from Table III.
type Mix struct {
	// Name is "mix-1" … "mix-4".
	Name string
	// Attackers are the benchmarks run by the hacker's agents.
	Attackers []string
	// Victims are the legitimate benchmarks.
	Victims []string
}

// mixes reproduces Table III verbatim.
var mixes = []Mix{
	{Name: "mix-1", Attackers: []string{"barnes", "canneal"}, Victims: []string{"blackscholes", "raytrace"}},
	{Name: "mix-2", Attackers: []string{"freqmine", "swaptions"}, Victims: []string{"raytrace", "vips"}},
	{Name: "mix-3", Attackers: []string{"canneal"}, Victims: []string{"barnes", "vips", "dedup"}},
	{Name: "mix-4", Attackers: []string{"barnes", "streamcluster", "freqmine"}, Victims: []string{"raytrace"}},
}

// MixRegistry is the attacker/victim mix plugin registry (Table III's
// mix-1 … mix-4 by default).
var MixRegistry = registry.New[Mix]("workload", "mix")

func init() {
	for _, m := range mixes {
		m := m
		MixRegistry.Register(m.Name, func() Mix { return m })
	}
}

// Mixes returns the Table III combinations in order.
func Mixes() []Mix { return MixRegistry.All() }

// MixByName returns the named Table III combination.
func MixByName(name string) (Mix, error) { return MixRegistry.Lookup(name) }

// Apps returns all benchmark names in the mix, attackers first.
func (m Mix) Apps() []string {
	out := make([]string, 0, len(m.Attackers)+len(m.Victims))
	out = append(out, m.Attackers...)
	out = append(out, m.Victims...)
	return out
}

// Validate checks that every benchmark in the mix exists in Table II and
// that no benchmark appears on both sides.
func (m Mix) Validate() error {
	seen := make(map[string]bool, len(m.Attackers)+len(m.Victims))
	for _, name := range m.Apps() {
		if _, err := ByName(name); err != nil {
			return fmt.Errorf("workload: mix %s: %w", m.Name, err)
		}
		if seen[name] {
			return fmt.Errorf("workload: mix %s lists %s twice", m.Name, name)
		}
		seen[name] = true
	}
	if len(m.Attackers) == 0 || len(m.Victims) == 0 {
		return fmt.Errorf("workload: mix %s needs at least one attacker and one victim", m.Name)
	}
	return nil
}
