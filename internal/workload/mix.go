package workload

import "fmt"

// Mix is one attacker/victim benchmark combination from Table III.
type Mix struct {
	// Name is "mix-1" … "mix-4".
	Name string
	// Attackers are the benchmarks run by the hacker's agents.
	Attackers []string
	// Victims are the legitimate benchmarks.
	Victims []string
}

// mixes reproduces Table III verbatim.
var mixes = []Mix{
	{Name: "mix-1", Attackers: []string{"barnes", "canneal"}, Victims: []string{"blackscholes", "raytrace"}},
	{Name: "mix-2", Attackers: []string{"freqmine", "swaptions"}, Victims: []string{"raytrace", "vips"}},
	{Name: "mix-3", Attackers: []string{"canneal"}, Victims: []string{"barnes", "vips", "dedup"}},
	{Name: "mix-4", Attackers: []string{"barnes", "streamcluster", "freqmine"}, Victims: []string{"raytrace"}},
}

// Mixes returns the Table III combinations in order.
func Mixes() []Mix {
	out := make([]Mix, len(mixes))
	copy(out, mixes)
	return out
}

// MixByName returns the named Table III combination.
func MixByName(name string) (Mix, error) {
	for _, m := range mixes {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}

// Apps returns all benchmark names in the mix, attackers first.
func (m Mix) Apps() []string {
	out := make([]string, 0, len(m.Attackers)+len(m.Victims))
	out = append(out, m.Attackers...)
	out = append(out, m.Victims...)
	return out
}

// Validate checks that every benchmark in the mix exists in Table II and
// that no benchmark appears on both sides.
func (m Mix) Validate() error {
	seen := make(map[string]bool, len(m.Attackers)+len(m.Victims))
	for _, name := range m.Apps() {
		if _, err := ByName(name); err != nil {
			return fmt.Errorf("workload: mix %s: %w", m.Name, err)
		}
		if seen[name] {
			return fmt.Errorf("workload: mix %s lists %s twice", m.Name, name)
		}
		seen[name] = true
	}
	if len(m.Attackers) == 0 || len(m.Victims) == 0 {
		return fmt.Errorf("workload: mix %s needs at least one attacker and one victim", m.Name)
	}
	return nil
}
