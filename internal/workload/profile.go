// Package workload models the PARSEC and SPLASH-2 benchmarks of Table II as
// analytic application profiles.
//
// Substitution note (see DESIGN.md): the paper runs real benchmark binaries
// on an Alpha-compatible architectural simulator. This repository replaces
// each benchmark with a two-parameter performance profile,
//
//	CPI(f, L) = CPICore + MPI · L · f,
//
// where CPICore is the core-bound cycles-per-instruction of a 4-wide
// out-of-order core, MPI is the rate of L1-missing memory operations per
// instruction that reach the NoC, L is the observed average memory latency
// in nanoseconds, and f is the core frequency in GHz (so MPI·L·f is the
// stall-cycle term). Per-cycle IPC is 1/CPI and core throughput is f·IPC
// instructions per nanosecond. Compute-bound profiles (small MPI) scale
// almost linearly with frequency — they are the power-sensitive,
// "instruction-bounded" applications the paper describes as hit hardest —
// while memory-bound profiles saturate.
package workload

import (
	"sort"

	"repro/internal/registry"
)

// Profile is one benchmark's analytic performance model.
type Profile struct {
	// Name is the benchmark name as listed in Table II.
	Name string
	// Suite is "PARSEC" or "SPLASH-2".
	Suite string
	// CPICore is the core-bound cycles per instruction (no memory stalls).
	CPICore float64
	// MPI is the rate of NoC-reaching memory operations per instruction.
	MPI float64
	// WorkingSetLines is the approximate number of distinct cache lines the
	// synthetic address stream touches per thread.
	WorkingSetLines int
	// WriteFraction is the fraction of memory operations that are writes.
	WriteFraction float64
}

// IPC returns instructions per core cycle at frequency fGHz under an
// average memory latency of memLatNs nanoseconds.
func (p Profile) IPC(fGHz, memLatNs float64) float64 {
	return 1 / (p.CPICore + p.MPI*memLatNs*fGHz)
}

// Throughput returns instructions per nanosecond: IPC(f)·f. This is the
// quantity summed in Definition 1 of the paper.
func (p Profile) Throughput(fGHz, memLatNs float64) float64 {
	return fGHz * p.IPC(fGHz, memLatNs)
}

// MemOpsPerNs returns the rate of NoC-bound memory transactions a core
// running this profile generates at frequency fGHz, used to drive the cache
// substrate's synthetic address stream.
func (p Profile) MemOpsPerNs(fGHz, memLatNs float64) float64 {
	return p.Throughput(fGHz, memLatNs) * p.MPI
}

// Sensitivity computes Definition 4 of the paper over the given frequency
// levels (ascending GHz):
//
//	φ = Σ_i |Perf(τ_i) − Perf(τ_{i+1})| / (τ_i − τ_{i+1})
//
// Perf is interpreted as core throughput (IPC·f, instructions per ns): the
// paper's own motivating claim — instruction-bounded applications suffer
// more from budget cuts than memory-bounded ones — holds under the
// throughput reading and inverts under a raw per-cycle-IPC reading, so the
// throughput reading is the faithful one.
func (p Profile) Sensitivity(freqsGHz []float64, memLatNs float64) float64 {
	s := 0.0
	for i := 0; i+1 < len(freqsGHz); i++ {
		d := freqsGHz[i] - freqsGHz[i+1]
		if d == 0 {
			continue
		}
		num := p.Throughput(freqsGHz[i], memLatNs) - p.Throughput(freqsGHz[i+1], memLatNs)
		if num < 0 {
			num = -num
		}
		if d < 0 {
			d = -d
		}
		s += num / d
	}
	return s
}

// profiles is the Table II benchmark set. CPICore and MPI classes follow
// the published PARSEC/SPLASH-2 characterisations: canneal and
// streamcluster are strongly memory-bound; blackscholes, swaptions and
// barnes are compute-bound; the rest sit between.
var profiles = []Profile{
	{Name: "streamcluster", Suite: "PARSEC", CPICore: 0.90, MPI: 0.0200, WorkingSetLines: 8192, WriteFraction: 0.25},
	{Name: "swaptions", Suite: "PARSEC", CPICore: 0.45, MPI: 0.0010, WorkingSetLines: 512, WriteFraction: 0.20},
	{Name: "ferret", Suite: "PARSEC", CPICore: 0.60, MPI: 0.0080, WorkingSetLines: 4096, WriteFraction: 0.30},
	{Name: "fluidanimate", Suite: "PARSEC", CPICore: 0.55, MPI: 0.0060, WorkingSetLines: 4096, WriteFraction: 0.35},
	{Name: "blackscholes", Suite: "PARSEC", CPICore: 0.50, MPI: 0.0020, WorkingSetLines: 1024, WriteFraction: 0.20},
	{Name: "freqmine", Suite: "PARSEC", CPICore: 0.55, MPI: 0.0040, WorkingSetLines: 2048, WriteFraction: 0.25},
	{Name: "dedup", Suite: "PARSEC", CPICore: 0.65, MPI: 0.0100, WorkingSetLines: 8192, WriteFraction: 0.35},
	{Name: "canneal", Suite: "PARSEC", CPICore: 1.00, MPI: 0.0250, WorkingSetLines: 16384, WriteFraction: 0.30},
	{Name: "vips", Suite: "PARSEC", CPICore: 0.60, MPI: 0.0050, WorkingSetLines: 2048, WriteFraction: 0.30},
	{Name: "barnes", Suite: "SPLASH-2", CPICore: 0.50, MPI: 0.0030, WorkingSetLines: 2048, WriteFraction: 0.25},
	{Name: "raytrace", Suite: "SPLASH-2", CPICore: 0.50, MPI: 0.0040, WorkingSetLines: 4096, WriteFraction: 0.15},
}

// Benchmarks is the Table II benchmark-profile plugin registry.
var Benchmarks = registry.New[Profile]("workload", "benchmark")

func init() {
	for _, p := range profiles {
		p := p
		Benchmarks.Register(p.Name, func() Profile { return p })
	}
}

// All returns the Table II benchmark profiles sorted by name.
func All() []Profile {
	out := Benchmarks.All()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns the named profile.
func ByName(name string) (Profile, error) { return Benchmarks.Lookup(name) }
