package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/results"
	"repro/pkg/htsim"
)

// This file maps experiment IDs to their core table drivers and runs a
// validated spec: experiments fan out over the internal/exp pool and each
// produces one typed results table.

// runCtx carries one experiment's resolved execution context.
type runCtx struct {
	// ctx cancels the experiment cooperatively: trial pools stop issuing
	// work and in-flight campaigns abort mid-epoch.
	ctx context.Context
	// p holds the merged (defaults + overrides) parameters.
	p Params
	// seed is the effective seed; workers the execution pool size.
	seed    int64
	workers int
	// obs, when non-nil, streams one EpochSample per budgeting epoch of
	// every cycle-simulated campaign the experiment runs (threaded through
	// the configuration via htsim.WithObserver). Observers never change
	// results; analytic experiments (E3–E6) run no epochs and stream
	// nothing.
	obs core.Observer
	// effects memoizes the Fig 5/6 sweep shared by E7 and E8.
	effects *effectCache
}

// entry is one registered experiment.
type entry struct {
	// order fixes the canonical E1…X2 listing order.
	order int
	// title describes the experiment for listings; artifact titles are
	// built from the resolved parameters at run time.
	title string
	// defaults are the paper-scale parameters; spec params overlay them.
	defaults Params
	// run executes the experiment.
	run func(rc runCtx) (results.Table, error)
}

// paperSizes is the Fig 4 system-size sweep.
func paperSizes() []int { return []int{64, 128, 256, 512} }

// paperMixes is the Table III mix list.
func paperMixes() []string { return []string{"mix-1", "mix-2", "mix-3", "mix-4"} }

// paperTargets is the Fig 5/6 target-infection sweep.
func paperTargets() []float64 {
	return []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

// Counts builds n evenly spaced HT counts from 0 to max (the Fig 3
// x-axis).
func Counts(max, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = max * i / (n - 1)
	}
	return out
}

// simConfig assembles a core.Config from resolved cycle-sim parameters
// through the SDK's option pipeline, so spec-named plugins (topology,
// routing, allocator, defense) resolve exactly as they would for any
// other pkg/htsim consumer.
func simConfig(rc runCtx) (core.Config, error) {
	opts := []htsim.Option{
		htsim.WithMemTraffic(rc.p.Mem != nil && *rc.p.Mem),
		htsim.WithSeed(rc.seed),
		htsim.WithWorkers(rc.workers),
	}
	if rc.p.Size != 0 {
		opts = append(opts, htsim.WithCores(rc.p.Size))
	}
	if rc.p.Epochs != 0 {
		opts = append(opts, htsim.WithEpochs(rc.p.Epochs))
	}
	if rc.obs != nil {
		opts = append(opts, htsim.WithObserver(rc.obs))
	}
	opts = append(opts, rc.p.pluginOptions()...)
	return htsim.BuildConfig(opts...)
}

// effectCache memoizes core.EffectTables per resolved parameter set, so a
// spec naming both E7 and E8 runs the expensive Fig 5/6 sweep once even
// when the two experiments execute concurrently.
type effectCache struct {
	mu sync.Mutex
	m  map[string]*effectPair
}

// effectPair is one memoized sweep.
type effectPair struct {
	once   sync.Once
	effect *results.EffectTable
	apps   *results.AppEffectTable
	err    error
}

// tables returns the memoized sweep for the given resolved parameters,
// running it on first use.
func (c *effectCache) tables(rc runCtx) (*results.EffectTable, *results.AppEffectTable, error) {
	key := results.HashConfig(struct {
		Size      int       `json:"size"`
		Mixes     []string  `json:"mixes"`
		Threads   int       `json:"threads"`
		Epochs    int       `json:"epochs"`
		Targets   []float64 `json:"targets"`
		Mem       bool      `json:"mem"`
		Seed      int64     `json:"seed"`
		Topology  string    `json:"topology"`
		Routing   string    `json:"routing"`
		Allocator string    `json:"allocator"`
		Defense   string    `json:"defense"`
	}{rc.p.Size, rc.p.Mixes, rc.p.Threads, rc.p.Epochs, rc.p.Targets, rc.p.Mem != nil && *rc.p.Mem, rc.seed,
		rc.p.Topology, rc.p.Routing, rc.p.Allocator, rc.p.Defense})
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*effectPair)
	}
	pair := c.m[key]
	if pair == nil {
		pair = &effectPair{}
		c.m[key] = pair
	}
	c.mu.Unlock()
	pair.once.Do(func() {
		cfg, err := simConfig(rc)
		if err != nil {
			pair.err = err
			return
		}
		pair.effect, pair.apps, pair.err = core.EffectTablesCtx(rc.ctx, cfg, rc.p.Mixes, rc.p.Threads, rc.p.Targets)
	})
	return pair.effect, pair.apps, pair.err
}

var registry = map[string]entry{
	"E1": {
		order:    1,
		title:    "Table I system configuration",
		defaults: Params{Size: 256},
		run: func(rc runCtx) (results.Table, error) {
			cfg, err := simConfig(rc)
			if err != nil {
				return nil, err
			}
			return core.ConfigTableFor(cfg)
		},
	},
	"E2": {
		order: 2,
		title: "Section III-D Trojan area/power accounting",
		run: func(rc runCtx) (results.Table, error) {
			return core.AreaPowerTableFor(), nil
		},
	},
	"E3": {
		order:    3,
		title:    "Fig 3(a): infection rate vs HT count, 64 cores",
		defaults: Params{Size: 64, HTCounts: Counts(30, 7), Trials: 50},
		// Routed through the shard hooks (whole space as one shard) so the
		// local path and the distributed merge share one construction.
		run: func(rc runCtx) (results.Table, error) { return runWholeShard("E3", rc) },
	},
	"E4": {
		order:    4,
		title:    "Fig 3(b): infection rate vs HT count, 512 cores",
		defaults: Params{Size: 512, HTCounts: Counts(60, 7), Trials: 50},
		run:      func(rc runCtx) (results.Table, error) { return runWholeShard("E4", rc) },
	},
	"E5": {
		order:    5,
		title:    "Fig 4(a): infection rate by HT distribution, HTs = size/16",
		defaults: Params{Sizes: paperSizes(), Denominator: 16, Trials: 50},
		run:      func(rc runCtx) (results.Table, error) { return runWholeShard("E5", rc) },
	},
	"E6": {
		order:    6,
		title:    "Fig 4(b): infection rate by HT distribution, HTs = size/8",
		defaults: Params{Sizes: paperSizes(), Denominator: 8, Trials: 50},
		run:      func(rc runCtx) (results.Table, error) { return runWholeShard("E6", rc) },
	},
	"E7": {
		order:    7,
		title:    "Fig 5: attack effect Q vs infection rate",
		defaults: Params{Size: 256, Mixes: paperMixes(), Threads: 64, Epochs: 10, Targets: paperTargets()},
		run: func(rc runCtx) (results.Table, error) {
			effect, _, err := rc.effects.tables(rc)
			if err != nil {
				return nil, err
			}
			return effect, nil
		},
	},
	"E8": {
		order:    8,
		title:    "Fig 6: per-application performance change vs infection rate",
		defaults: Params{Size: 256, Mixes: paperMixes(), Threads: 64, Epochs: 10, Targets: paperTargets()},
		run: func(rc runCtx) (results.Table, error) {
			_, apps, err := rc.effects.tables(rc)
			if err != nil {
				return nil, err
			}
			return apps, nil
		},
	},
	"E9": {
		order:    9,
		title:    "Section V-C: optimal vs random Trojan placement",
		defaults: Params{Size: 256, Mixes: paperMixes(), Threads: 64, Epochs: 10, HTs: 16, Samples: 16},
		run: func(rc runCtx) (results.Table, error) {
			cfg, err := simConfig(rc)
			if err != nil {
				return nil, err
			}
			return core.PlacementTableForCtx(rc.ctx, cfg, rc.p.Mixes, rc.p.Threads, rc.p.HTs, rc.p.Samples, rc.seed)
		},
	},
	"E10": {
		order:    10,
		title:    "Allocator ablation: Q under each budgeting algorithm",
		defaults: Params{Size: 256, Mix: "mix-1", Threads: 64, Epochs: 10, TargetInfection: 0.7},
		run: func(rc runCtx) (results.Table, error) {
			cfg, err := simConfig(rc)
			if err != nil {
				return nil, err
			}
			return core.AblationTableForCtx(rc.ctx, cfg, rc.p.Mix, rc.p.Threads, rc.p.TargetInfection)
		},
	},
	"X1": {
		order:    11,
		title:    "DoS attack-class comparison (false-data / drop / loopback)",
		defaults: Params{Size: 256, Mix: "mix-1", Threads: 64, Epochs: 10, HTs: 16},
		run: func(rc runCtx) (results.Table, error) {
			cfg, err := simConfig(rc)
			if err != nil {
				return nil, err
			}
			return core.VariantTableForCtx(rc.ctx, cfg, rc.p.Mix, rc.p.Threads, rc.p.HTs)
		},
	},
	"X2": {
		order:    12,
		title:    "Manager-side defense study (duty-cycled attack)",
		defaults: Params{Size: 256, Mix: "mix-1", Threads: 64, Epochs: 10, HTs: 16},
		run: func(rc runCtx) (results.Table, error) {
			cfg, err := simConfig(rc)
			if err != nil {
				return nil, err
			}
			return core.DefenseTableForCtx(rc.ctx, cfg, rc.p.Mix, rc.p.Threads, rc.p.HTs)
		},
	},
}

// Experiment describes one registry entry for listings.
type Experiment struct {
	ID    string
	Title string
}

// Experiments lists the registry in canonical order.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for id, e := range registry {
		out = append(out, Experiment{ID: id, Title: e.title})
	}
	sort.Slice(out, func(i, j int) bool {
		return registry[out[i].ID].order < registry[out[j].ID].order
	})
	return out
}

// BuildTable runs one experiment by ID with the given parameter overrides
// and returns its typed table without writing anything. It is the single
// entry point the study CLIs share with the campaign engine, so a figure
// printed by a CLI and the matching htcampaign artifact can never drift.
// A zero seed means the default campaign seed.
func BuildTable(id string, over Params, seed int64, workers int) (results.Table, error) {
	return BuildTableCtx(context.Background(), id, over, seed, workers)
}

// BuildTableCtx is BuildTable with cooperative cancellation: a cancelled
// context stops the experiment's trial pools and in-flight campaigns
// promptly and returns the context's error — the path the CLIs' signal
// handling and the simulation service's DELETE /v1/jobs/{id} both use.
func BuildTableCtx(ctx context.Context, id string, over Params, seed int64, workers int) (results.Table, error) {
	ent, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("campaign: unknown experiment %q (known: %s)", id, knownIDs())
	}
	p := merge(ent.defaults, over)
	if err := p.validate(); err != nil {
		return nil, fmt.Errorf("campaign: experiment %s: %w", id, err)
	}
	spec := &Spec{Seed: seed}
	return ent.run(runCtx{ctx: ctx, p: p, seed: spec.seedFor(p), workers: workers, effects: &effectCache{}})
}

// Artifact records one experiment's serialized outputs in the manifest.
type Artifact struct {
	Experiment string `json:"experiment"`
	Title      string `json:"title"`
	// JSON and CSV are file names relative to the output directory.
	JSON string `json:"json"`
	CSV  string `json:"csv"`
	// ConfigHash echoes the table's parameter fingerprint.
	ConfigHash string `json:"config_hash"`
}

// Manifest indexes a campaign's artifacts.
type Manifest struct {
	Name string `json:"name"`
	// Seed is the effective campaign seed (the spec's, or the default 1
	// when the spec omits it) — always the seed the artifacts were
	// generated from.
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`
	// Revision is the generating binary's VCS stamp.
	Revision  string     `json:"revision"`
	Artifacts []Artifact `json:"artifacts"`
}

// Progress receives job-granular callbacks while a campaign runs. Any
// field may be nil; the zero value reports nothing. Experiments fan out
// over a worker pool, so callbacks fire concurrently and must be safe for
// concurrent use. Callbacks observe execution only — they can never change
// results or artifacts.
type Progress struct {
	// ExperimentStarted fires when an experiment's driver begins.
	ExperimentStarted func(id string)
	// ExperimentDone fires when an experiment's driver returns, with its
	// table (nil on failure) and error.
	ExperimentDone func(id string, t results.Table, err error)
	// Epoch streams one sample per budgeting epoch of every cycle-simulated
	// campaign an experiment runs, tagged with the experiment ID. Analytic
	// experiments (E1–E6) simulate no epochs and stream nothing. The E7/E8
	// sweep is shared: its epochs are tagged with whichever of the two
	// experiments claimed the memoized sweep first.
	Epoch func(id string, s core.EpochSample)
}

// observerFor wraps the Epoch callback as an experiment-tagged observer,
// or returns nil when no callback is registered.
func (p Progress) observerFor(id string) core.Observer {
	if p.Epoch == nil {
		return nil
	}
	return core.ObserverFunc(func(s core.EpochSample) { p.Epoch(id, s) })
}

// BuildTables executes a validated spec and returns the produced tables in
// spec order without writing anything — the job-granular entry point the
// simulation service runs queued campaigns through. Experiments fan out
// over the exp pool with the given worker count (0 = one per CPU; results
// are identical for any value); ctx cancels the whole campaign promptly;
// prog reports per-experiment lifecycle and per-epoch samples as the run
// progresses. Each returned table's metadata records the spec's
// declarative worker count, exactly as the written artifacts do.
func BuildTables(ctx context.Context, spec *Spec, workers int, prog Progress) ([]results.Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	effects := &effectCache{}
	return exp.RunCtx(ctx, workers, len(spec.Experiments), func(ctx context.Context, i int) (results.Table, error) {
		e := spec.Experiments[i]
		ent := registry[e.ID]
		p := merge(ent.defaults, e.Params)
		if prog.ExperimentStarted != nil {
			prog.ExperimentStarted(e.ID)
		}
		// One span per experiment; a context without a trace makes this
		// (and every span call below it) a free no-op.
		ectx, span := obs.StartSpan(ctx, "experiment")
		span.SetAttr("experiment", e.ID)
		t, err := ent.run(runCtx{
			ctx:     ectx,
			p:       p,
			seed:    spec.seedFor(p),
			workers: workers,
			obs:     prog.observerFor(e.ID),
			effects: effects,
		})
		span.RecordError(err)
		span.End()
		if prog.ExperimentDone != nil {
			prog.ExperimentDone(e.ID, t, err)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", e.ID, err)
		}
		// The table records the spec's declarative worker count, never the
		// execution pool size — byte-identity across -parallel values
		// depends on it.
		t.TableMeta().Workers = spec.Workers
		return t, nil
	})
}

// Run executes a validated spec: experiments fan out over the exp pool
// with the given worker count (0 = one per CPU; results are identical for
// any value), artifacts are written to outDir in spec order, and the
// manifest is written as manifest.json. The produced tables are returned
// in spec order for printing.
//
// The experiment-level fan-out nests pools: each driver also parallelises
// its own trials over the same worker count. The oversubscription is
// deliberate — trials are independent CPU-bound loops the Go scheduler
// time-slices well, and the alternative (splitting the budget) starves
// whichever level happens to carry the work in a given spec.
func Run(spec *Spec, outDir string, workers int) (*Manifest, []results.Table, error) {
	return RunCtx(context.Background(), spec, outDir, workers, Progress{})
}

// RunCtx is Run with cooperative cancellation and progress reporting: the
// campaign stops promptly when ctx is cancelled (no artifacts are written
// for a cancelled run), and prog receives the same job-granular events
// BuildTables reports.
func RunCtx(ctx context.Context, spec *Spec, outDir string, workers int, prog Progress) (*Manifest, []results.Table, error) {
	tables, err := BuildTables(ctx, spec, workers, prog)
	if err != nil {
		return nil, nil, err
	}
	man := &Manifest{
		Name:     spec.Name,
		Seed:     spec.seedFor(Params{}),
		Workers:  spec.Workers,
		Revision: results.Revision(),
	}
	for _, t := range tables {
		jsonPath, csvPath, err := results.WriteArtifact(outDir, t)
		if err != nil {
			return nil, nil, fmt.Errorf("campaign: write %s: %w", t.TableMeta().Experiment, err)
		}
		man.Artifacts = append(man.Artifacts, Artifact{
			Experiment: t.TableMeta().Experiment,
			Title:      t.TableMeta().Title,
			JSON:       filepath.Base(jsonPath),
			CSV:        filepath.Base(csvPath),
			ConfigHash: t.TableMeta().ConfigHash,
		})
	}
	if err := writeManifest(filepath.Join(outDir, "manifest.json"), man); err != nil {
		return nil, nil, err
	}
	return man, tables, nil
}

// writeManifest serializes the campaign manifest.
func writeManifest(path string, man *Manifest) error {
	b, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: manifest: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
