package campaign

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/results"
)

// TestParseSpecValid parses a well-formed spec with overrides.
func TestParseSpecValid(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"name": "test", "seed": 3,
		"experiments": [
			{"id": "E3", "params": {"trials": 5}},
			{"id": "X1", "params": {"size": 64, "threads": 15, "epochs": 5}}
		]
	}`))
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Name != "test" || spec.Seed != 3 || len(spec.Experiments) != 2 {
		t.Errorf("spec = %+v", spec)
	}
}

// TestParseSpecMalformed rejects every malformed-spec class with a
// descriptive error.
func TestParseSpecMalformed(t *testing.T) {
	tests := []struct {
		name, spec, wantErr string
	}{
		{"bad json", `{"name": "x", "experiments": [`, "parse spec"},
		{"unknown top-level field", `{"name": "x", "retries": 3, "experiments": [{"id": "E1"}]}`, "unknown field"},
		{"unknown param field", `{"name": "x", "experiments": [{"id": "E3", "params": {"trails": 5}}]}`, "unknown field"},
		{"unknown experiment", `{"name": "x", "experiments": [{"id": "E99"}]}`, "unknown ID"},
		{"duplicate experiment", `{"name": "x", "experiments": [{"id": "E1"}, {"id": "E1"}]}`, "duplicate"},
		{"no experiments", `{"name": "x", "experiments": []}`, "names no experiments"},
		{"missing name", `{"experiments": [{"id": "E1"}]}`, "needs a name"},
		{"negative seed", `{"name": "x", "seed": -1, "experiments": [{"id": "E1"}]}`, "non-negative"},
		{"negative trials", `{"name": "x", "experiments": [{"id": "E3", "params": {"trials": -2}}]}`, "negative"},
		{"tiny system size", `{"name": "x", "experiments": [{"id": "E5", "params": {"sizes": [1]}}]}`, "too small"},
		{"target out of range", `{"name": "x", "experiments": [{"id": "E7", "params": {"targets": [1.5]}}]}`, "outside"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tt.spec))
			if err == nil {
				t.Fatal("malformed spec accepted")
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Errorf("error %q does not mention %q", err, tt.wantErr)
			}
		})
	}
}

// TestMergeOverlaysDefaults checks the field-by-field overlay semantics.
func TestMergeOverlaysDefaults(t *testing.T) {
	def := registry["E7"].defaults
	got := merge(def, Params{Size: 64, Mixes: []string{"mix-2"}, Targets: []float64{0.5}})
	if got.Size != 64 || len(got.Mixes) != 1 || got.Mixes[0] != "mix-2" || len(got.Targets) != 1 {
		t.Errorf("merge = %+v", got)
	}
	if got.Threads != def.Threads || got.Epochs != def.Epochs {
		t.Errorf("unset fields must keep defaults: %+v", got)
	}
}

// TestSeedFor checks seed resolution: campaign seed, per-experiment
// override, and the default of 1.
func TestSeedFor(t *testing.T) {
	override := int64(9)
	if s := (&Spec{Seed: 3}).seedFor(Params{}); s != 3 {
		t.Errorf("campaign seed = %d, want 3", s)
	}
	if s := (&Spec{Seed: 3}).seedFor(Params{Seed: &override}); s != 9 {
		t.Errorf("override seed = %d, want 9", s)
	}
	if s := (&Spec{}).seedFor(Params{}); s != 1 {
		t.Errorf("default seed = %d, want 1", s)
	}
}

// TestExperimentsOrder pins the canonical registry listing.
func TestExperimentsOrder(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "X1", "X2"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("%d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" {
			t.Errorf("%s has no title", e.ID)
		}
	}
}

// TestManifestRecordsEffectiveSeed pins the seed-provenance contract: a
// spec that omits the seed runs with (and records) the default seed 1 in
// both the manifest and the artifact metadata.
func TestManifestRecordsEffectiveSeed(t *testing.T) {
	spec := &Spec{Name: "seedless", Experiments: []ExperimentSpec{
		{ID: "E3", Params: Params{Trials: 1}},
	}}
	man, tables, err := Run(spec, t.TempDir(), 1)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if man.Seed != 1 {
		t.Errorf("manifest seed = %d, want effective seed 1", man.Seed)
	}
	if got := tables[0].TableMeta().Seed; got != 1 {
		t.Errorf("artifact seed = %d, want 1", got)
	}
}

// TestPaperSpecValid guards the checked-in spec files against drift: both
// must parse, and paper.json must name every registered experiment.
func TestPaperSpecValid(t *testing.T) {
	for _, path := range []string{"../../specs/paper.json", "../../specs/smoke.json"} {
		spec, err := LoadSpec(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if strings.HasSuffix(path, "paper.json") && len(spec.Experiments) != len(registry) {
			t.Errorf("paper.json names %d experiments, registry has %d", len(spec.Experiments), len(registry))
		}
	}
}

// TestBuildTablesReportsProgress runs a two-experiment spec through the
// job-granular entry point and checks the full progress chain: lifecycle
// callbacks for every experiment, per-epoch samples streamed from the
// cycle-simulated one (tagged with its ID and in increasing epoch order
// per run), and none from the analytic one.
func TestBuildTablesReportsProgress(t *testing.T) {
	spec := &Spec{
		Name: "progress",
		Seed: 1,
		Experiments: []ExperimentSpec{
			{ID: "E3", Params: Params{Trials: 2}},
			{ID: "X1", Params: Params{Size: 64, Threads: 15, Epochs: 5}},
		},
	}
	var mu sync.Mutex
	started := map[string]bool{}
	done := map[string]bool{}
	epochsByExp := map[string]int{}
	tables, err := BuildTables(context.Background(), spec, 1, Progress{
		ExperimentStarted: func(id string) {
			mu.Lock()
			defer mu.Unlock()
			started[id] = true
		},
		ExperimentDone: func(id string, tab results.Table, err error) {
			mu.Lock()
			defer mu.Unlock()
			done[id] = true
			if err != nil {
				t.Errorf("experiment %s failed: %v", id, err)
			}
			if tab == nil {
				t.Errorf("experiment %s reported no table", id)
			}
		},
		Epoch: func(id string, s core.EpochSample) {
			mu.Lock()
			defer mu.Unlock()
			epochsByExp[id]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("BuildTables returned %d tables, want 2", len(tables))
	}
	for _, id := range []string{"E3", "X1"} {
		if !started[id] || !done[id] {
			t.Errorf("experiment %s lifecycle incomplete (started=%v done=%v)", id, started[id], done[id])
		}
	}
	if epochsByExp["E3"] != 0 {
		t.Errorf("analytic E3 streamed %d epochs, want 0", epochsByExp["E3"])
	}
	// X1 runs one clean baseline plus one attacked campaign per attack
	// mode, 5 epochs each; the exact count is an implementation detail,
	// but samples must flow and be tagged with the experiment.
	if epochsByExp["X1"] < 5 {
		t.Errorf("cycle-simulated X1 streamed %d epochs, want >= 5", epochsByExp["X1"])
	}
}

// TestBuildTablesHonoursCancellation asserts a pre-cancelled context
// stops the campaign before any experiment completes.
func TestBuildTablesHonoursCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := &Spec{
		Name:        "cancelled",
		Experiments: []ExperimentSpec{{ID: "E3", Params: Params{Trials: 2}}},
	}
	if _, err := BuildTables(ctx, spec, 1, Progress{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("BuildTables on cancelled ctx = %v, want context.Canceled", err)
	}
}
