package campaign

import (
	"encoding/json"
	"fmt"
	"sort"

	"context"

	"repro/internal/core"
	"repro/internal/results"
)

// This file partitions a campaign into shards a coordinator can dispatch
// to remote workers and merges the shard results back into exactly the
// tables BuildTables produces single-process. Two shard flavours exist:
//
//   - Trial shards cover a contiguous [Lo, Hi) range of a shardable
//     experiment's flat trial space (E3–E6; see internal/core/shard.go)
//     and return raw per-cell float64 values. Aggregation happens once,
//     coordinator-side, over the reassembled vector — never inside a
//     shard — because floating-point addition is not associative and the
//     merge contract is byte-identity with a local run.
//   - Atomic shards run a whole experiment whose driver cannot be
//     partitioned (sequential internal RNG, model fits: E1/E2/E7–E10,
//     X1/X2) and return the finished typed table as JSON. Go's
//     encoding/json round-trips float64 exactly (shortest
//     representation), so decode-and-re-encode preserves artifact bytes.
//
// The single-process registry entries for shardable experiments run
// through the same hooks (runWholeShard), so the local path and the
// distributed merge share one construction — titles, params, aggregation
// — by code identity rather than by convention.

// Shard is one self-contained unit of distributed campaign work: the
// experiment spec it belongs to, the spec-level seed context it resolves
// against, and — for trial shards — the [Lo, Hi) range of the flat trial
// space it covers. Atomic shards have Lo == Hi == 0.
type Shard struct {
	// ExpIndex is the experiment's position in the originating spec;
	// the merge reassembles results by position, so a spec naming the
	// same experiment twice still merges correctly.
	ExpIndex int `json:"exp_index"`
	// Experiment is the spec entry (ID plus parameter overrides).
	Experiment ExperimentSpec `json:"experiment"`
	// Seed is the spec-level seed (0 = campaign default); the effective
	// seed resolves exactly as in a local run (per-experiment override
	// first, then this, then the default).
	Seed int64 `json:"seed"`
	// Index and Count locate this shard among its experiment's shards.
	Index int `json:"index"`
	Count int `json:"count"`
	// Lo and Hi bound the trial-space range for trial shards.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// atomic reports whether the shard runs a whole experiment rather than a
// trial range.
func (s Shard) atomic() bool { return s.Lo == 0 && s.Hi == 0 }

// String renders a compact shard label for logs and metrics.
func (s Shard) String() string {
	if s.atomic() {
		return fmt.Sprintf("%s#%d", s.Experiment.ID, s.ExpIndex)
	}
	return fmt.Sprintf("%s#%d[%d:%d)", s.Experiment.ID, s.ExpIndex, s.Lo, s.Hi)
}

// ShardResult carries one executed shard's payload back to the merge:
// raw per-cell values for trial shards, the typed table as JSON for
// atomic shards.
type ShardResult struct {
	Shard Shard           `json:"shard"`
	Raw   []float64       `json:"raw,omitempty"`
	Table json.RawMessage `json:"table,omitempty"`
}

// shardHooks describes how a shardable experiment exposes its trial
// space. space sizes the flat space for resolved params; run computes
// raw values for a range of it; build assembles the published table from
// the full raw vector.
type shardHooks struct {
	space func(p Params) int
	run   func(rc runCtx, lo, hi int) ([]float64, error)
	build func(rc runCtx, id string, raw []float64) (results.Table, error)
}

// curveHooks builds the E3/E4 hook set (Fig 3 infection curves).
func curveHooks(fig string) shardHooks {
	return shardHooks{
		space: func(p Params) int { return core.InfectionCurveSpace(p.HTCounts, p.Trials) },
		run: func(rc runCtx, lo, hi int) ([]float64, error) {
			return core.InfectionCurveShardCtx(rc.ctx, rc.p.Size, rc.p.HTCounts, rc.p.Trials, rc.seed, rc.workers, lo, hi)
		},
		build: func(rc runCtx, id string, raw []float64) (results.Table, error) {
			title := fmt.Sprintf("Fig %s: infection rate vs HT count, %d cores", fig, rc.p.Size)
			return core.InfectionCurveTableFromRaw(id, title, rc.p.Size, rc.p.HTCounts, rc.p.Trials, rc.seed, raw)
		},
	}
}

// distHooks builds the E5/E6 hook set (Fig 4 distribution bars).
func distHooks(fig string) shardHooks {
	return shardHooks{
		space: func(p Params) int { return core.DistributionSpace(p.Sizes, p.Trials) },
		run: func(rc runCtx, lo, hi int) ([]float64, error) {
			return core.DistributionShardCtx(rc.ctx, rc.p.Sizes, rc.p.Denominator, rc.p.Trials, rc.seed, rc.workers, lo, hi)
		},
		build: func(rc runCtx, id string, raw []float64) (results.Table, error) {
			title := fmt.Sprintf("Fig %s: infection rate by HT distribution, HTs = size/%d", fig, rc.p.Denominator)
			return core.DistributionTableFromRaw(id, title, rc.p.Sizes, rc.p.Denominator, rc.p.Trials, rc.seed, raw)
		},
	}
}

// shardableHooks maps the experiments whose trial space partitions.
// Everything else ships as an atomic shard. E7/E8 stay atomic even
// though they share a memoized sweep locally: distributed, each runs its
// own sweep on its worker (a documented 2× cost, DESIGN.md §11).
var shardableHooks = map[string]shardHooks{
	"E3": curveHooks("3(a)"),
	"E4": curveHooks("3(b)"),
	"E5": distHooks("4(a)"),
	"E6": distHooks("4(b)"),
}

// blankTables constructs an empty typed table per experiment ID, so an
// atomic shard's JSON payload decodes back into the concrete type the
// artifact writers switch on. A registry entry without a blank cannot be
// distributed; a test pins full coverage.
var blankTables = map[string]func() results.Table{
	"E1":  func() results.Table { return &results.ConfigTable{} },
	"E2":  func() results.Table { return &results.AreaPowerTable{} },
	"E3":  func() results.Table { return &results.InfectionTable{} },
	"E4":  func() results.Table { return &results.InfectionTable{} },
	"E5":  func() results.Table { return &results.InfectionTable{} },
	"E6":  func() results.Table { return &results.InfectionTable{} },
	"E7":  func() results.Table { return &results.EffectTable{} },
	"E8":  func() results.Table { return &results.AppEffectTable{} },
	"E9":  func() results.Table { return &results.PlacementTable{} },
	"E10": func() results.Table { return &results.AblationTable{} },
	"X1":  func() results.Table { return &results.VariantTable{} },
	"X2":  func() results.Table { return &results.DefenseTable{} },
}

// runWholeShard executes a shardable experiment's entire trial space as
// one shard and assembles its table — the single-process path through
// the exact code the distributed merge uses. The registry routes E3–E6
// through it, so byte-identity between local and merged runs is enforced
// by sharing the construction, not by hoping two copies agree.
func runWholeShard(id string, rc runCtx) (results.Table, error) {
	h := shardableHooks[id]
	raw, err := h.run(rc, 0, h.space(rc.p))
	if err != nil {
		return nil, err
	}
	return h.build(rc, id, raw)
}

// PlanShards partitions a spec's experiments into at most maxPerExp
// shards each (values below 1 mean 1): shardable experiments split into
// balanced contiguous trial ranges, everything else becomes one atomic
// shard. Shards are returned in spec order, ranges ascending — a
// deterministic plan for a given (spec, maxPerExp), so coordinator-side
// shard cache keys are stable across re-submissions.
func PlanShards(spec *Spec, maxPerExp int) ([]Shard, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if maxPerExp < 1 {
		maxPerExp = 1
	}
	var shards []Shard
	for i, e := range spec.Experiments {
		ent := registry[e.ID]
		p := merge(ent.defaults, e.Params)
		h, ok := shardableHooks[e.ID]
		if !ok {
			shards = append(shards, Shard{ExpIndex: i, Experiment: e, Seed: spec.Seed, Count: 1})
			continue
		}
		space := h.space(p)
		n := maxPerExp
		if n > space {
			n = space
		}
		if n < 1 {
			n = 1
		}
		for s := 0; s < n; s++ {
			shards = append(shards, Shard{
				ExpIndex:   i,
				Experiment: e,
				Seed:       spec.Seed,
				Index:      s,
				Count:      n,
				Lo:         s * space / n,
				Hi:         (s + 1) * space / n,
			})
		}
	}
	return shards, nil
}

// shardRunCtx resolves a shard's execution context exactly as BuildTables
// resolves the same experiment locally: defaults merged under the spec
// entry's overrides, the effective seed from the per-experiment override,
// then the spec seed, then the campaign default.
func shardRunCtx(ctx context.Context, sh Shard, workers int) (runCtx, error) {
	ent, ok := registry[sh.Experiment.ID]
	if !ok {
		return runCtx{}, fmt.Errorf("campaign: unknown experiment %q (known: %s)", sh.Experiment.ID, knownIDs())
	}
	p := merge(ent.defaults, sh.Experiment.Params)
	if err := p.validate(); err != nil {
		return runCtx{}, fmt.Errorf("campaign: experiment %s: %w", sh.Experiment.ID, err)
	}
	spec := &Spec{Seed: sh.Seed}
	return runCtx{
		ctx:     ctx,
		p:       p,
		seed:    spec.seedFor(p),
		workers: workers,
		effects: &effectCache{},
	}, nil
}

// RunShard executes one shard on this process — the worker side of the
// distributed protocol. Trial shards return raw per-cell values; atomic
// shards run the experiment's registry driver and return its table as
// JSON. Worker-count changes never change payloads, exactly as for local
// runs.
func RunShard(ctx context.Context, sh Shard, workers int) (*ShardResult, error) {
	return RunShardObserved(ctx, sh, workers, nil)
}

// RunShardObserved is RunShard with a per-epoch observer threaded into
// the shard's execution context — the worker half of distributed live
// progress. Only atomic shards simulate epochs (trial shards are
// analytic and observe nothing); the observer never influences the
// result payload, so observed and unobserved runs stay byte-identical.
func RunShardObserved(ctx context.Context, sh Shard, workers int, o core.Observer) (*ShardResult, error) {
	rc, err := shardRunCtx(ctx, sh, workers)
	if err != nil {
		return nil, err
	}
	rc.obs = o
	if sh.atomic() {
		ent := registry[sh.Experiment.ID]
		t, err := ent.run(rc)
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", sh.Experiment.ID, err)
		}
		b, err := json.Marshal(t)
		if err != nil {
			return nil, fmt.Errorf("campaign: %s: encode table: %w", sh.Experiment.ID, err)
		}
		return &ShardResult{Shard: sh, Table: b}, nil
	}
	h, ok := shardableHooks[sh.Experiment.ID]
	if !ok {
		return nil, fmt.Errorf("campaign: experiment %s has no trial shards", sh.Experiment.ID)
	}
	raw, err := h.run(rc, sh.Lo, sh.Hi)
	if err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", sh.Experiment.ID, err)
	}
	return &ShardResult{Shard: sh, Raw: raw}, nil
}

// MergeShards reassembles executed shards into the tables BuildTables
// would produce single-process, in spec order, byte-identical for any
// shard partition. It validates coverage strictly — every trial cell
// exactly once, every atomic experiment exactly one result — and fails
// loudly on gaps, overlaps, or payload/range mismatches rather than
// publishing a silently wrong artifact.
func MergeShards(ctx context.Context, spec *Spec, shardResults []ShardResult) ([]results.Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	byExp := make(map[int][]ShardResult)
	for _, r := range shardResults {
		if r.Shard.ExpIndex < 0 || r.Shard.ExpIndex >= len(spec.Experiments) {
			return nil, fmt.Errorf("campaign: shard %s: experiment index out of range", r.Shard)
		}
		if want := spec.Experiments[r.Shard.ExpIndex].ID; r.Shard.Experiment.ID != want {
			return nil, fmt.Errorf("campaign: shard %s: spec position %d names %s", r.Shard, r.Shard.ExpIndex, want)
		}
		byExp[r.Shard.ExpIndex] = append(byExp[r.Shard.ExpIndex], r)
	}
	tables := make([]results.Table, len(spec.Experiments))
	for i, e := range spec.Experiments {
		got := byExp[i]
		if len(got) == 0 {
			return nil, fmt.Errorf("campaign: experiment %s (position %d) has no shard results", e.ID, i)
		}
		t, err := mergeExperiment(ctx, spec, i, e, got)
		if err != nil {
			return nil, err
		}
		// The table records the spec's declarative worker count, exactly
		// as BuildTables stamps it after each local run.
		t.TableMeta().Workers = spec.Workers
		tables[i] = t
	}
	return tables, nil
}

// mergeExperiment reassembles one experiment's shard results into its
// table.
func mergeExperiment(ctx context.Context, spec *Spec, pos int, e ExperimentSpec, got []ShardResult) (results.Table, error) {
	h, shardable := shardableHooks[e.ID]
	if !shardable {
		if len(got) != 1 {
			return nil, fmt.Errorf("campaign: atomic experiment %s (position %d) has %d shard results, want 1", e.ID, pos, len(got))
		}
		r := got[0]
		if len(r.Table) == 0 {
			return nil, fmt.Errorf("campaign: shard %s: missing table payload", r.Shard)
		}
		blank, ok := blankTables[e.ID]
		if !ok {
			return nil, fmt.Errorf("campaign: experiment %s has no table decoder", e.ID)
		}
		t := blank()
		if err := json.Unmarshal(r.Table, t); err != nil {
			return nil, fmt.Errorf("campaign: shard %s: decode table: %w", r.Shard, err)
		}
		return t, nil
	}
	rc, err := shardRunCtx(ctx, Shard{Experiment: e, Seed: spec.Seed}, 0)
	if err != nil {
		return nil, err
	}
	space := h.space(rc.p)
	sort.Slice(got, func(a, b int) bool { return got[a].Shard.Lo < got[b].Shard.Lo })
	raw := make([]float64, 0, space)
	next := 0
	for _, r := range got {
		sh := r.Shard
		if sh.Lo != next {
			return nil, fmt.Errorf("campaign: experiment %s (position %d): shard coverage broken at cell %d (next shard is %s)", e.ID, pos, next, sh)
		}
		if sh.Hi <= sh.Lo || sh.Hi > space {
			return nil, fmt.Errorf("campaign: shard %s: range invalid for trial space %d", sh, space)
		}
		if len(r.Raw) != sh.Hi-sh.Lo {
			return nil, fmt.Errorf("campaign: shard %s: payload holds %d cells, range covers %d", sh, len(r.Raw), sh.Hi-sh.Lo)
		}
		raw = append(raw, r.Raw...)
		next = sh.Hi
	}
	if next != space {
		return nil, fmt.Errorf("campaign: experiment %s (position %d): shard coverage ends at cell %d of %d", e.ID, pos, next, space)
	}
	t, err := h.build(rc, e.ID, raw)
	if err != nil {
		return nil, fmt.Errorf("campaign: %s: %w", e.ID, err)
	}
	return t, nil
}
