// Package campaign is the declarative campaign engine: it parses a JSON
// spec naming any subset of the DESIGN.md §2 experiments (E1–E10, X1–X2)
// with per-experiment parameter overrides, fans the experiments out
// through the internal/exp worker pool, and writes each experiment's
// typed results table (internal/results) as JSON and CSV artifacts plus a
// manifest. One invocation of `htcampaign run -spec specs/paper.json`
// regenerates every figure and table of the paper's evaluation; artifacts
// are byte-identical for any -parallel value at a fixed seed
// (regression-gated in golden_test.go).
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/pkg/htsim"
)

// Params are the per-experiment knobs a spec may override. The zero value
// of every field means "use the experiment's default" (see Defaults); an
// experiment ignores fields it has no use for.
type Params struct {
	// Size is the chip size in cores (E1, E3, E4, E7–E10, X1, X2).
	Size int `json:"size,omitempty"`
	// Sizes is the system-size sweep of E5/E6.
	Sizes []int `json:"sizes,omitempty"`
	// Trials is the number of random placements averaged per point
	// (E3–E6).
	Trials int `json:"trials,omitempty"`
	// HTCounts is the x-axis of E3/E4.
	HTCounts []int `json:"ht_counts,omitempty"`
	// Denominator sets the E5/E6 fleet size as size/denominator.
	Denominator int `json:"denominator,omitempty"`
	// Mixes are the Table III mixes to sweep (E7–E9); Mix is the single
	// mix of E10/X1/X2.
	Mixes []string `json:"mixes,omitempty"`
	Mix   string   `json:"mix,omitempty"`
	// Threads is the per-application thread count (paper: 64).
	Threads int `json:"threads,omitempty"`
	// Epochs is the number of budgeting epochs per campaign.
	Epochs int `json:"epochs,omitempty"`
	// HTs is the fleet size of E9/X1/X2 (paper: 16).
	HTs int `json:"hts,omitempty"`
	// Samples is the E9 training-set size for the Eqn 9 fit.
	Samples int `json:"samples,omitempty"`
	// Targets is the E7/E8 target-infection sweep.
	Targets []float64 `json:"targets,omitempty"`
	// TargetInfection is the E10 operating point.
	TargetInfection float64 `json:"target_infection,omitempty"`
	// Mem enables cache-hierarchy background traffic (nil = experiment
	// default).
	Mem *bool `json:"mem,omitempty"`
	// Seed overrides the campaign seed for this experiment only.
	Seed *int64 `json:"seed,omitempty"`
	// Topology, Routing, Allocator, and Defense select registered plugins
	// by name for the cycle-simulated experiments (E7–E10, X1, X2); empty
	// keeps the Table I defaults. Names are validated against the
	// pkg/htsim registries, so `htcampaign list` shows every legal value.
	Topology  string `json:"topology,omitempty"`
	Routing   string `json:"routing,omitempty"`
	Allocator string `json:"allocator,omitempty"`
	Defense   string `json:"defense,omitempty"`
}

// merge overlays the spec's overrides onto the experiment defaults.
func merge(def, over Params) Params {
	out := def
	if over.Size != 0 {
		out.Size = over.Size
	}
	if len(over.Sizes) != 0 {
		out.Sizes = over.Sizes
	}
	if over.Trials != 0 {
		out.Trials = over.Trials
	}
	if len(over.HTCounts) != 0 {
		out.HTCounts = over.HTCounts
	}
	if over.Denominator != 0 {
		out.Denominator = over.Denominator
	}
	if len(over.Mixes) != 0 {
		out.Mixes = over.Mixes
	}
	if over.Mix != "" {
		out.Mix = over.Mix
	}
	if over.Threads != 0 {
		out.Threads = over.Threads
	}
	if over.Epochs != 0 {
		out.Epochs = over.Epochs
	}
	if over.HTs != 0 {
		out.HTs = over.HTs
	}
	if over.Samples != 0 {
		out.Samples = over.Samples
	}
	if len(over.Targets) != 0 {
		out.Targets = over.Targets
	}
	if over.TargetInfection != 0 {
		out.TargetInfection = over.TargetInfection
	}
	if over.Mem != nil {
		out.Mem = over.Mem
	}
	if over.Seed != nil {
		out.Seed = over.Seed
	}
	if over.Topology != "" {
		out.Topology = over.Topology
	}
	if over.Routing != "" {
		out.Routing = over.Routing
	}
	if over.Allocator != "" {
		out.Allocator = over.Allocator
	}
	if over.Defense != "" {
		out.Defense = over.Defense
	}
	return out
}

// validate rejects parameter overrides no experiment can run with.
func (p Params) validate() error {
	if p.Size < 0 || p.Trials < 0 || p.Denominator < 0 || p.Threads < 0 ||
		p.Epochs < 0 || p.HTs < 0 || p.Samples < 0 {
		return fmt.Errorf("negative parameter")
	}
	for _, s := range p.Sizes {
		if s < 2 {
			return fmt.Errorf("system size %d too small", s)
		}
	}
	for _, c := range p.HTCounts {
		if c < 0 {
			return fmt.Errorf("negative HT count %d", c)
		}
	}
	for _, t := range p.Targets {
		if t < 0 || t >= 1 {
			return fmt.Errorf("target infection %g outside [0, 1)", t)
		}
	}
	if p.TargetInfection < 0 || p.TargetInfection >= 1 {
		return fmt.Errorf("target infection %g outside [0, 1)", p.TargetInfection)
	}
	// Plugin names resolve through the SDK registries; building the config
	// exercises the same code path the run will use.
	if p.Topology != "" || p.Routing != "" || p.Allocator != "" || p.Defense != "" {
		if _, err := htsim.BuildConfig(p.pluginOptions()...); err != nil {
			return err
		}
	}
	return nil
}

// pluginOptions translates the spec's plugin-name overrides into SDK
// options.
func (p Params) pluginOptions() []htsim.Option {
	var opts []htsim.Option
	if p.Topology != "" {
		opts = append(opts, htsim.WithTopology(p.Topology))
	}
	if p.Routing != "" {
		opts = append(opts, htsim.WithRouting(p.Routing))
	}
	if p.Allocator != "" {
		opts = append(opts, htsim.WithAllocator(p.Allocator))
	}
	if p.Defense != "" {
		opts = append(opts, htsim.WithDefense(p.Defense))
	}
	return opts
}

// ExperimentSpec selects one experiment and its overrides.
type ExperimentSpec struct {
	// ID is the DESIGN.md §2 identifier (E1–E10, X1, X2).
	ID string `json:"id"`
	// Params overrides the experiment's default parameters field by
	// field; absent fields keep their defaults.
	Params Params `json:"params,omitempty"`
}

// Spec is a declarative campaign: a named set of experiments sharing one
// seed and worker declaration.
type Spec struct {
	// Name labels the campaign (manifest and logs).
	Name string `json:"name"`
	// Seed is the campaign seed every experiment derives from; 0 (or an
	// absent field) means the default seed 1, and the manifest records
	// the effective value.
	Seed int64 `json:"seed,omitempty"`
	// Workers declares the worker count recorded in artifact metadata
	// (0 = one per CPU). Execution may override it via -parallel without
	// changing the artifacts.
	Workers int `json:"workers,omitempty"`
	// Experiments are run in spec order; IDs must be unique.
	Experiments []ExperimentSpec `json:"experiments"`
}

// ParseSpec decodes and validates a campaign spec. Unknown top-level or
// parameter fields, unknown or duplicate experiment IDs, and out-of-range
// parameters are all rejected.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("campaign: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses a spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return ParseSpec(data)
}

// Validate checks a spec against the experiment registry.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: spec needs a name")
	}
	if len(s.Experiments) == 0 {
		return fmt.Errorf("campaign: spec names no experiments")
	}
	if s.Seed < 0 || s.Workers < 0 {
		return fmt.Errorf("campaign: seed and workers must be non-negative")
	}
	seen := make(map[string]bool, len(s.Experiments))
	for i, e := range s.Experiments {
		ent, ok := registry[e.ID]
		if !ok {
			return fmt.Errorf("campaign: experiment %d: unknown ID %q (known: %s)", i, e.ID, knownIDs())
		}
		if seen[e.ID] {
			return fmt.Errorf("campaign: duplicate experiment %q", e.ID)
		}
		seen[e.ID] = true
		if err := merge(ent.defaults, e.Params).validate(); err != nil {
			return fmt.Errorf("campaign: experiment %s: %w", e.ID, err)
		}
	}
	return nil
}

// seedFor resolves the effective seed of one experiment: the campaign
// seed (default 1) unless the experiment overrides it.
func (s *Spec) seedFor(p Params) int64 {
	if p.Seed != nil {
		return *p.Seed
	}
	if s.Seed != 0 {
		return s.Seed
	}
	return 1
}

// knownIDs lists the registry in experiment order for error messages.
func knownIDs() string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return registry[ids[i]].order < registry[ids[j]].order })
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ", "
		}
		out += id
	}
	return out
}
