package campaign

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// updateGolden rewrites the checked-in golden artifacts instead of
// comparing against them.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden from the current run")

// update reports whether golden files should be rewritten.
func update() bool { return *updateGolden }

// smallSpec is the golden campaign: cheap enough for the test suite while
// covering an analytic experiment (E3), a cycle-simulated study (X1), and
// a static table (E1).
func smallSpec() *Spec {
	return &Spec{
		Name: "golden",
		Seed: 1,
		Experiments: []ExperimentSpec{
			{ID: "E1", Params: Params{Size: 64}},
			{ID: "E3", Params: Params{Trials: 3}},
			{ID: "X1", Params: Params{Size: 64, Threads: 15, Epochs: 5}},
		},
	}
}

// runInto executes the golden campaign with the given worker count and
// returns every produced file keyed by name.
func runInto(t *testing.T, workers int) map[string][]byte {
	t.Helper()
	dir := t.TempDir()
	if _, _, err := Run(smallSpec(), dir, workers); err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := make(map[string][]byte, len(entries))
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = normalizeGoVersion(b)
	}
	return files
}

// normalizeGoVersion replaces the running toolchain's version string with a
// stable placeholder, so the checked-in golden files do not depend on the
// toolchain that generated them. A table that stopped emitting the version
// entirely still fails the comparison: the golden files carry the
// placeholder, which only appears after a successful replacement.
func normalizeGoVersion(b []byte) []byte {
	return bytes.ReplaceAll(b, []byte(runtime.Version()), []byte("<goversion>"))
}

// TestParallelByteIdentity is the determinism acceptance gate: the same
// spec at -parallel 1 and -parallel 8 must produce byte-identical result
// files, including the manifest.
func TestParallelByteIdentity(t *testing.T) {
	seq := runInto(t, 1)
	par := runInto(t, 8)
	want := []string{"e1.json", "e1.csv", "e3.json", "e3.csv", "x1.json", "x1.csv", "manifest.json"}
	if len(seq) != len(want) {
		t.Errorf("%d files produced, want %d", len(seq), len(want))
	}
	for _, name := range want {
		s, ok := seq[name]
		if !ok {
			t.Errorf("missing %s in sequential run", name)
			continue
		}
		p, ok := par[name]
		if !ok {
			t.Errorf("missing %s in parallel run", name)
			continue
		}
		if string(s) != string(p) {
			t.Errorf("%s differs between -parallel 1 and -parallel 8:\nseq:\n%s\npar:\n%s", name, s, p)
		}
	}
}

// TestGoldenFiles compares the golden campaign's artifacts against the
// checked-in files under testdata/golden, catching any drift in either
// the simulated numbers or the serialization format. Regenerate with:
//
//	go test ./internal/campaign -run TestGoldenFiles -update
func TestGoldenFiles(t *testing.T) {
	got := runInto(t, 1)
	goldenDir := filepath.Join("testdata", "golden")
	if update() {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, b := range got {
			if err := os.WriteFile(filepath.Join(goldenDir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	entries, err := os.ReadDir(goldenDir)
	if err != nil {
		t.Fatalf("read golden dir (run with -update to create): %v", err)
	}
	if len(entries) != len(got) {
		t.Errorf("campaign produced %d files, golden dir has %d", len(got), len(entries))
	}
	for _, e := range entries {
		want, err := os.ReadFile(filepath.Join(goldenDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(got[e.Name()]) != string(want) {
			t.Errorf("%s drifted from golden file (re-run with -update if intended):\ngot:\n%s\nwant:\n%s",
				e.Name(), got[e.Name()], want)
		}
	}
}
