package campaign

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/results"
)

// shardSpec is the shard-suite campaign: two shardable experiments with
// distinct trial-space shapes (E3 curve, E5 distribution) plus two
// atomic ones (E1 typed config table, E2 static accounting table), so
// every merge path is exercised.
func shardSpec() *Spec {
	return &Spec{
		Name: "shard-suite",
		Seed: 7,
		Experiments: []ExperimentSpec{
			{ID: "E1", Params: Params{Size: 64}},
			{ID: "E3", Params: Params{Trials: 3}},
			{ID: "E5", Params: Params{Sizes: []int{16, 64}, Trials: 2}},
			{ID: "E2"},
		},
	}
}

// renderAll serializes every table in every artifact format, keyed by
// "<exp>.<format>" — the byte-identity currency of the merge contract.
func renderAll(t *testing.T, tables []results.Table) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, tab := range tables {
		for _, format := range results.Formats() {
			var buf bytes.Buffer
			if err := results.WriteFormat(&buf, tab, format); err != nil {
				t.Fatalf("render %s as %s: %v", tab.TableMeta().Experiment, format, err)
			}
			out[tab.TableMeta().Experiment+"."+format] = buf.String()
		}
	}
	return out
}

// runPlan executes every shard of a plan in-process and returns the
// results in reverse order, so the merge cannot lean on arrival order.
func runPlan(t *testing.T, shards []Shard, workers int) []ShardResult {
	t.Helper()
	out := make([]ShardResult, 0, len(shards))
	for _, sh := range shards {
		r, err := RunShard(context.Background(), sh, workers)
		if err != nil {
			t.Fatalf("RunShard(%s): %v", sh, err)
		}
		out = append(out, *r)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// TestPlanShardsCoverage pins the shard plan's shape: shardable
// experiments tile their trial space contiguously with balanced ranges,
// atomic experiments get exactly one zero-range shard, and the plan is
// deterministic for a given (spec, maxPerExp).
func TestPlanShardsCoverage(t *testing.T) {
	spec := shardSpec()
	for _, maxPerExp := range []int{1, 2, 5} {
		shards, err := PlanShards(spec, maxPerExp)
		if err != nil {
			t.Fatalf("PlanShards(max=%d): %v", maxPerExp, err)
		}
		again, err := PlanShards(spec, maxPerExp)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(shards) != fmt.Sprint(again) {
			t.Fatalf("PlanShards(max=%d) is not deterministic", maxPerExp)
		}
		next := map[int]int{}
		counts := map[int]int{}
		for _, sh := range shards {
			counts[sh.ExpIndex]++
			if sh.atomic() {
				continue
			}
			if sh.Lo != next[sh.ExpIndex] {
				t.Fatalf("max=%d: shard %s breaks contiguous coverage (expected lo %d)", maxPerExp, sh, next[sh.ExpIndex])
			}
			next[sh.ExpIndex] = sh.Hi
		}
		for i, e := range spec.Experiments {
			if _, shardable := shardableHooks[e.ID]; !shardable {
				if counts[i] != 1 {
					t.Fatalf("max=%d: atomic %s planned %d shards, want 1", maxPerExp, e.ID, counts[i])
				}
				continue
			}
			if maxPerExp > 1 && counts[i] < 2 {
				t.Fatalf("max=%d: shardable %s planned only %d shard(s)", maxPerExp, e.ID, counts[i])
			}
		}
	}
}

// TestShardMergeByteIdentity is the distributed determinism gate at the
// campaign layer: for 1/2/5-way shard plans, running every shard
// independently (results delivered out of order) and merging must
// reproduce BuildTables' artifacts byte-for-byte in every format.
func TestShardMergeByteIdentity(t *testing.T) {
	spec := shardSpec()
	direct, err := BuildTables(context.Background(), spec, 2, Progress{})
	if err != nil {
		t.Fatalf("BuildTables: %v", err)
	}
	want := renderAll(t, direct)
	for _, maxPerExp := range []int{1, 2, 5} {
		shards, err := PlanShards(spec, maxPerExp)
		if err != nil {
			t.Fatalf("PlanShards(max=%d): %v", maxPerExp, err)
		}
		merged, err := MergeShards(context.Background(), spec, runPlan(t, shards, 3))
		if err != nil {
			t.Fatalf("MergeShards(max=%d): %v", maxPerExp, err)
		}
		got := renderAll(t, merged)
		if len(got) != len(want) {
			t.Fatalf("max=%d: merged %d artifacts, want %d", maxPerExp, len(got), len(want))
		}
		for name, w := range want {
			if got[name] != w {
				t.Errorf("max=%d: %s differs from single-process run:\nmerged:\n%s\ndirect:\n%s", maxPerExp, name, got[name], w)
			}
		}
	}
}

// TestMergeShardsRejectsBrokenCoverage pins the merge's refusal to
// publish from incomplete or inconsistent shard sets: gaps, overlaps,
// truncated payloads, and missing atomic tables all fail loudly.
func TestMergeShardsRejectsBrokenCoverage(t *testing.T) {
	spec := shardSpec()
	shards, err := PlanShards(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	full := runPlan(t, shards, 2)
	cases := []struct {
		name    string
		mutate  func([]ShardResult) []ShardResult
		wantErr string
	}{
		{"gap", func(rs []ShardResult) []ShardResult {
			out := rs[:0:0]
			dropped := false
			for _, r := range rs {
				if !dropped && r.Shard.Experiment.ID == "E3" && !r.Shard.atomic() {
					dropped = true
					continue
				}
				out = append(out, r)
			}
			return out
		}, "coverage"},
		{"overlap", func(rs []ShardResult) []ShardResult {
			for _, r := range rs {
				if r.Shard.Experiment.ID == "E3" && !r.Shard.atomic() {
					return append(rs, r)
				}
			}
			t.Fatal("no E3 trial shard found")
			return nil
		}, "coverage"},
		{"short payload", func(rs []ShardResult) []ShardResult {
			out := append([]ShardResult(nil), rs...)
			for i, r := range out {
				if r.Shard.Experiment.ID == "E5" && !r.Shard.atomic() && len(r.Raw) > 0 {
					out[i].Raw = r.Raw[:len(r.Raw)-1]
					return out
				}
			}
			t.Fatal("no E5 trial shard found")
			return nil
		}, "cells"},
		{"missing atomic", func(rs []ShardResult) []ShardResult {
			out := rs[:0:0]
			for _, r := range rs {
				if r.Shard.Experiment.ID == "E1" {
					continue
				}
				out = append(out, r)
			}
			return out
		}, "no shard results"},
		{"atomic without table", func(rs []ShardResult) []ShardResult {
			out := append([]ShardResult(nil), rs...)
			for i, r := range out {
				if r.Shard.Experiment.ID == "E2" {
					out[i].Table = nil
					return out
				}
			}
			t.Fatal("no E2 shard found")
			return nil
		}, "missing table"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := MergeShards(context.Background(), spec, tc.mutate(append([]ShardResult(nil), full...)))
			if err == nil {
				t.Fatalf("merge accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestShardRegistryCoverage pins the distributed registry invariants:
// every experiment can ship as an atomic shard (has a table decoder),
// and every shardable hook names a registered experiment — so adding an
// experiment without wiring the distributed path fails here, not in a
// production merge.
func TestShardRegistryCoverage(t *testing.T) {
	for id := range registry {
		if _, ok := blankTables[id]; !ok {
			t.Errorf("experiment %s has no blank-table decoder; atomic shards for it cannot merge", id)
		}
	}
	for id := range blankTables {
		if _, ok := registry[id]; !ok {
			t.Errorf("blank table registered for unknown experiment %s", id)
		}
	}
	for id := range shardableHooks {
		if _, ok := registry[id]; !ok {
			t.Errorf("shard hooks registered for unknown experiment %s", id)
		}
	}
}
