package campaign

import (
	"encoding/json"
	"testing"
)

// FuzzParseSpec drives the campaign spec parser with arbitrary bytes. A
// fuzz input may be rejected — that is the parser's job — but it must
// never panic, and any spec it accepts must satisfy the engine's
// invariants: a name, at least one experiment, unique registered IDs, a
// non-negative seed, and parameters every experiment can run with (so
// accepted specs re-validate cleanly and re-serialise to an equivalent,
// again-accepted spec).
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		`{"name": "paper", "experiments": [{"id": "E1"}]}`,
		`{"name": "full", "seed": 7, "workers": 4, "experiments": [
			{"id": "E3", "params": {"trials": 2, "ht_counts": [0, 4]}},
			{"id": "E7", "params": {"mixes": ["mix-1"], "targets": [0, 0.5]}},
			{"id": "X2", "params": {"hts": 8, "defense": "history-guard"}}
		]}`,
		`{"name": "plugins", "experiments": [
			{"id": "E10", "params": {"topology": "torus", "routing": "torus-xy", "allocator": "pi"}}
		]}`,
		`{"name": "", "experiments": []}`,
		`{"name": "dup", "experiments": [{"id": "E1"}, {"id": "E1"}]}`,
		`{"name": "bad", "experiments": [{"id": "E99"}]}`,
		`{"name": "neg", "seed": -1, "experiments": [{"id": "E2"}]}`,
		`{"nope": true}`,
		`[]`,
		`{`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseSpec(data)
		if err != nil {
			if spec != nil {
				t.Fatal("ParseSpec returned both a spec and an error")
			}
			return
		}
		if spec.Name == "" {
			t.Fatal("accepted spec without a name")
		}
		if len(spec.Experiments) == 0 {
			t.Fatal("accepted spec without experiments")
		}
		if spec.Seed < 0 || spec.Workers < 0 {
			t.Fatalf("accepted negative seed/workers: %d/%d", spec.Seed, spec.Workers)
		}
		seen := make(map[string]bool)
		for _, e := range spec.Experiments {
			if seen[e.ID] {
				t.Fatalf("accepted duplicate experiment %q", e.ID)
			}
			seen[e.ID] = true
		}
		// Accepted specs must be stable under re-validation and under a
		// serialise/parse round trip.
		if err := spec.Validate(); err != nil {
			t.Fatalf("accepted spec fails re-validation: %v", err)
		}
		round, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("accepted spec does not serialise: %v", err)
		}
		if _, err := ParseSpec(round); err != nil {
			t.Fatalf("round-tripped spec rejected: %v\nspec: %s", err, round)
		}
	})
}
