package histo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestObserveAndExactStats(t *testing.T) {
	h := NewLatency()
	for _, v := range []float64{0.001, 0.010, 0.100, 0.002} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 0.113; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	if h.Min() != 0.001 || h.Max() != 0.100 {
		t.Errorf("min/max = %g/%g, want 0.001/0.100", h.Min(), h.Max())
	}
	if got, want := h.Mean(), 0.113/4; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %g, want %g", got, want)
	}
}

// TestQuantileAccuracy checks estimated quantiles against the exact
// order statistics of a log-uniform sample: log bucketing bounds the
// relative error by one bucket factor (2^¼ ≈ 19%).
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewLatency()
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := math.Pow(10, -4+4*rng.Float64()) // 100µs .. 1s, log-uniform
		vals = append(vals, v)
		h.Observe(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		exact := vals[int(q*float64(len(vals)))-1]
		got := h.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.20 {
			t.Errorf("p%g = %g, exact %g (relative error %.1f%% > one bucket)", q*100, got, exact, rel*100)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Error("q=0/q=1 must clamp to observed extremes")
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	h := NewLatency()
	if h.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	h.Observe(0.25)
	for _, q := range []float64{0.01, 0.5, 0.999} {
		if got := h.Quantile(q); got != 0.25 {
			t.Errorf("single-sample p%g = %g, want the sample (clamped)", q*100, got)
		}
	}
}

func TestCumulativeMatchesPrometheusContract(t *testing.T) {
	h := Exponential(0.001, 2, 4) // 1ms, 2ms, 4ms, 8ms
	for _, v := range []float64{0.0005, 0.001, 0.0015, 0.003, 0.050} {
		h.Observe(v)
	}
	buckets := h.Cumulative()
	wantLe := []float64{0.001, 0.002, 0.004, 0.008}
	wantCum := []uint64{2, 3, 4, 4} // le semantics: v <= bound; 0.050 only in +Inf
	for i, b := range buckets {
		if b.Le != wantLe[i] || b.Count != wantCum[i] {
			t.Errorf("bucket %d = {%g, %d}, want {%g, %d}", i, b.Le, b.Count, wantLe[i], wantCum[i])
		}
	}
	// Monotone non-decreasing, and +Inf (= Count) dominates every bucket.
	for i := 1; i < len(buckets); i++ {
		if buckets[i].Count < buckets[i-1].Count {
			t.Fatalf("cumulative counts decreased at bucket %d", i)
		}
	}
	if last := buckets[len(buckets)-1].Count; last > h.Count() {
		t.Fatalf("last bucket %d exceeds total %d", last, h.Count())
	}
}

func TestMergeEqualsCombinedObservation(t *testing.T) {
	a, b, want := NewLatency(), NewLatency(), NewLatency()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		v := rng.ExpFloat64() / 100
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		want.Observe(v)
	}
	a.Merge(b)
	if a.Count() != want.Count() || a.Min() != want.Min() || a.Max() != want.Max() {
		t.Fatal("merged aggregate stats differ from combined observation")
	}
	// Sums accumulate in different orders; only last-ulp drift is allowed.
	if math.Abs(a.Sum()-want.Sum()) > 1e-9*want.Sum() {
		t.Fatalf("merged sum %g differs from combined %g", a.Sum(), want.Sum())
	}
	for _, q := range []float64{0.5, 0.99} {
		if a.Quantile(q) != want.Quantile(q) {
			t.Errorf("merged p%g differs from combined observation", q*100)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	h := NewLatency()
	h.Observe(0.01)
	c := h.Clone()
	h.Observe(0.02)
	if c.Count() != 1 || h.Count() != 2 {
		t.Fatalf("clone shares state: clone %d, original %d", c.Count(), h.Count())
	}
}

func TestBadLayoutPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0, 2, 4) must panic")
		}
	}()
	Exponential(0, 2, 4)
}
