// Package histo provides log-bucketed histograms for latency recording:
// observations land in geometrically spaced buckets, so one fixed-size
// structure covers microseconds to minutes with constant relative error,
// quantiles (p50/p90/p99/p999) are estimated by interpolating inside the
// owning bucket, and the cumulative bucket counts render directly as a
// Prometheus histogram. Both sides of the serving benchmark use it: the
// load harness (internal/loadgen) records per-scenario client-side
// latencies, and the service metrics (internal/server) export the job
// duration histogram through /v1/metrics?format=prometheus — same
// bucketing rule, so the two distributions can be joined.
//
// A Histogram is not safe for concurrent use; callers either own one per
// goroutine and Merge afterwards (the harness) or guard it with the lock
// they already hold (the server's counter mutex).
package histo

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts observations in geometric buckets. Bucket i covers
// (bounds[i-1], bounds[i]]; one overflow bucket catches everything above
// the last bound (rendered as le="+Inf").
type Histogram struct {
	bounds []float64
	counts []uint64 // len(bounds)+1; last is the overflow bucket
	total  uint64
	sum    float64
	min    float64
	max    float64
}

// Exponential builds a histogram with n geometric bucket upper bounds:
// start, start*factor, start*factor², … It panics on a non-positive
// start, a factor ≤ 1, or n < 1 — bucket layouts are compile-time
// decisions, not runtime inputs.
func Exponential(start, factor float64, n int) *Histogram {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("histo: invalid layout (start %g, factor %g, n %d)", start, factor, n))
	}
	bounds := make([]float64, n)
	b := start
	for i := range bounds {
		bounds[i] = b
		b *= factor
	}
	return &Histogram{bounds: bounds, counts: make([]uint64, n+1)}
}

// NewLatency is the harness-side layout: ~19% relative resolution
// (factor 2^¼) over 94 buckets from 50µs to ≈8min, fine enough that a
// p999 read off the bucket edges stays within one bucket of the true
// order statistic.
func NewLatency() *Histogram { return Exponential(50e-6, math.Pow(2, 0.25), 94) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.total++
	h.sum += v
	if h.total == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// Min and Max return the exact observed extremes (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Quantile estimates the q-quantile (q in [0,1]) by geometric
// interpolation inside the bucket holding the target rank, clamped to
// the observed min/max so estimates never leave the data's range.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.total)
	var cum float64
	for i, n := range h.counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo, hi := h.bucketRange(i)
			frac := (rank - cum) / float64(n)
			v := interpolate(lo, hi, frac)
			return math.Min(math.Max(v, h.min), h.max)
		}
		cum = next
	}
	return h.max
}

// bucketRange returns bucket i's value range, tightened by the observed
// extremes for the open-ended first and overflow buckets.
func (h *Histogram) bucketRange(i int) (lo, hi float64) {
	switch {
	case i == 0:
		return h.min, h.bounds[0]
	case i == len(h.bounds):
		return h.bounds[len(h.bounds)-1], h.max
	default:
		return h.bounds[i-1], h.bounds[i]
	}
}

// interpolate picks a point frac of the way from lo to hi, geometrically
// when both ends are positive (matching the log bucket spacing), linearly
// otherwise.
func interpolate(lo, hi, frac float64) float64 {
	if hi <= lo {
		return lo
	}
	if lo > 0 {
		return lo * math.Pow(hi/lo, frac)
	}
	return lo + (hi-lo)*frac
}

// Merge adds o's observations into h. Both histograms must share one
// layout (they came from the same constructor); mismatched layouts are a
// programming error and panic.
func (h *Histogram) Merge(o *Histogram) {
	if len(h.bounds) != len(o.bounds) || (len(h.bounds) > 0 && (h.bounds[0] != o.bounds[0] || h.bounds[len(h.bounds)-1] != o.bounds[len(o.bounds)-1])) {
		panic("histo: merging histograms with different layouts")
	}
	for i, n := range o.counts {
		h.counts[i] += n
	}
	if o.total > 0 {
		if h.total == 0 || o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
	h.total += o.total
	h.sum += o.sum
}

// Bucket is one cumulative Prometheus-style bucket: the count of
// observations ≤ Le.
type Bucket struct {
	Le    float64
	Count uint64
}

// Cumulative returns the cumulative bucket counts for every finite upper
// bound, in ascending order. The implicit le="+Inf" bucket is Count().
func (h *Histogram) Cumulative() []Bucket {
	out := make([]Bucket, len(h.bounds))
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		out[i] = Bucket{Le: b, Count: cum}
	}
	return out
}

// Clone returns an independent copy (used to snapshot a histogram while
// holding its owner's lock, so rendering happens outside the lock).
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.bounds = append([]float64(nil), h.bounds...)
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}
