package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// NewLogger builds the slog.Logger behind every binary's --log-format
// and --log-level flags: format selects the handler ("text" or "json"),
// level one of debug/info/warn/error. The error paths name the flag
// values so a typo surfaces as a usage error, not a silent default.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// ParseLevel maps a --log-level flag value onto a slog.Level.
func ParseLevel(level string) (slog.Level, error) {
	switch strings.ToLower(level) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", level)
	}
}

// Stderr is the text-format info-level logger on os.Stderr — the form
// CLI mains use for fatal errors before (or without) --log-format and
// --log-level flags.
func Stderr() *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// Discard is the quiet default for embedders that pass no logger: a
// slog.Logger whose records go nowhere, so library code can log
// unconditionally without nil checks.
func Discard() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
