package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestSpanTreeShape builds a small tree and checks the rendered Node
// mirrors it: names, parent links, attrs, and sealed durations.
func TestSpanTreeShape(t *testing.T) {
	ctx, root := StartTrace(context.Background(), "job")
	ctx2, child := StartSpan(ctx, "queue.wait")
	child.SetAttr("lane", "normal")
	_, grand := StartSpan(ctx2, "gate.wait")
	grand.End()
	child.End()
	root.End()

	n := root.Tree()
	if n == nil || n.Name != "job" {
		t.Fatalf("root node = %+v", n)
	}
	if n.InProgress {
		t.Fatalf("sealed root rendered in progress")
	}
	if len(n.Children) != 1 || n.Children[0].Name != "queue.wait" {
		t.Fatalf("children = %+v", n.Children)
	}
	qw := n.Children[0]
	if qw.Attrs["lane"] != "normal" {
		t.Fatalf("attrs = %v", qw.Attrs)
	}
	if qw.ParentID != n.SpanID {
		t.Fatalf("parent link: child %q parent %q, root %q", qw.SpanID, qw.ParentID, n.SpanID)
	}
	if len(qw.Children) != 1 || qw.Children[0].Name != "gate.wait" {
		t.Fatalf("grandchildren = %+v", qw.Children)
	}
	if got := n.Find("gate.wait"); got == nil {
		t.Fatalf("Find missed gate.wait")
	}
	if got := n.Find("no.such"); got != nil {
		t.Fatalf("Find invented %+v", got)
	}
}

// TestTraceparentRoundTrip renders a traceparent from a live span,
// parses it back, and checks a joined trace carries the same ids.
func TestTraceparentRoundTrip(t *testing.T) {
	_, root := StartTrace(context.Background(), "coordinator")
	tp := root.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") {
		t.Fatalf("traceparent %q", tp)
	}
	traceID, parentID, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent rejected %q", tp)
	}
	if got := root.TraceID(); got != hexOf(traceID) {
		t.Fatalf("trace id %x parsed from %q, want %s", traceID, tp, got)
	}
	_, remote := JoinTrace(context.Background(), tp, "worker.execute")
	defer remote.End()
	if remote.TraceID() != root.TraceID() {
		t.Fatalf("joined trace id %s, want %s", remote.TraceID(), root.TraceID())
	}
	rn := remote.Tree()
	if rn.ParentID != tp[36:52] {
		t.Fatalf("remote parent %q, want %q", rn.ParentID, tp[36:52])
	}
	_ = parentID
}

func hexOf(id [16]byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 32)
	for i, b := range id {
		out[2*i] = digits[b>>4]
		out[2*i+1] = digits[b&0xf]
	}
	return string(out)
}

// TestParseTraceparentRejectsMalformed covers the malformed-header
// paths, including JoinTrace's fall-back to a fresh local trace.
func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short-short-01",
		"00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-0000000000000001-01",
		"00-0123456789abcdef0123456789abcdef-zzzzzzzzzzzzzzzz-01",
		"0123456789abcdef0123456789abcdef-0000000000000001-01-00",
		"00-0123456789abcdef0123456789abcdef-0000000000000001-zz",
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Fatalf("accepted malformed %q", h)
		}
	}
	_, s := JoinTrace(context.Background(), "garbage", "worker.execute")
	if s == nil || s.TraceID() == "" {
		t.Fatalf("JoinTrace on garbage did not start a fresh trace")
	}
	s.End()
}

// TestGraft attaches a remote subtree and checks it renders under the
// grafting span.
func TestGraft(t *testing.T) {
	_, root := StartTrace(context.Background(), "job")
	dispatch := root.StartChild("shard.dispatch")
	dispatch.Graft(&Node{Name: "worker.execute", SpanID: "00000000000000aa"})
	dispatch.End()
	root.End()
	n := root.Tree()
	if got := n.Find("worker.execute"); got == nil {
		t.Fatalf("grafted subtree missing from tree: %+v", n)
	}
	b, err := json.Marshal(n)
	if err != nil {
		t.Fatalf("marshal tree: %v", err)
	}
	if !strings.Contains(string(b), `"worker.execute"`) {
		t.Fatalf("JSON rendering lost graft: %s", b)
	}
}

// TestInProgressRendering checks an unfinished span renders with
// InProgress and a growing duration, so live traces are readable.
func TestInProgressRendering(t *testing.T) {
	_, root := StartTrace(context.Background(), "job")
	time.Sleep(time.Millisecond)
	n := root.Tree()
	if !n.InProgress || n.DurationSeconds <= 0 {
		t.Fatalf("in-progress node = %+v", n)
	}
	root.End()
	d := root.Duration()
	root.End() // second End keeps the first seal
	if root.Duration() != d {
		t.Fatalf("double End moved the seal: %v vs %v", d, root.Duration())
	}
}

// TestNilSpanSafe drives every method through a nil span — the disabled
// path must be inert, not panicky.
func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.End()
	s.SetAttr("k", "v")
	s.RecordError(context.Canceled)
	s.Graft(&Node{})
	if s.StartChild("x") != nil {
		t.Fatalf("nil StartChild returned a span")
	}
	if s.Tree() != nil || s.TraceID() != "" || s.Traceparent() != "" || s.Duration() != 0 {
		t.Fatalf("nil span leaked state")
	}
	ctx, s2 := StartSpan(context.Background(), "x")
	if s2 != nil || ctx != context.Background() {
		t.Fatalf("StartSpan without a trace returned %v, %v", ctx, s2)
	}
}

// TestDisabledPathZeroAllocs pins the tracing-off contract the bench
// guard relies on: with no span in the context, the instrumentation
// calls sprinkled through the serving path must not allocate (same
// gating idiom as noc's steady-state allocs test).
func TestDisabledPathZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, s := StartSpan(ctx, "run")
		s.SetAttr("k", "v")
		s.End()
		_ = SpanFromContext(c)
		_ = ContextWithSpan(c, nil)
		sc := s.StartChild("child")
		sc.RecordError(nil)
		sc.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled-path span calls allocate %.1f/op, want 0", allocs)
	}
}

// TestSpanIDsUnique spot-checks span id generation for collisions
// within a burst, since coordinator and worker ids share one tree.
func TestSpanIDsUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 4096; i++ {
		id := newSpanID()
		if seen[id] {
			t.Fatalf("span id collision at %d", i)
		}
		seen[id] = true
	}
}
