package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNewLoggerFormats checks both handler selections emit the
// structure their format promises, and that bad flag values fail
// loudly instead of defaulting.
func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatalf("json logger: %v", err)
	}
	lg.Info("listening", "addr", "127.0.0.1:8080")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json output not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "listening" || rec["addr"] != "127.0.0.1:8080" {
		t.Fatalf("record = %v", rec)
	}

	buf.Reset()
	lg, err = NewLogger(&buf, "text", "debug")
	if err != nil {
		t.Fatalf("text logger: %v", err)
	}
	lg.Debug("probe", "job_id", "j1")
	if !strings.Contains(buf.String(), "msg=probe") || !strings.Contains(buf.String(), "job_id=j1") {
		t.Fatalf("text output = %q", buf.String())
	}

	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Fatalf("accepted unknown format")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Fatalf("accepted unknown level")
	}
}

// TestLevelFilter checks the level threshold actually filters.
func TestLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("quiet")
	lg.Warn("loud")
	out := buf.String()
	if strings.Contains(out, "quiet") || !strings.Contains(out, "loud") {
		t.Fatalf("level filter: %q", out)
	}
}

// TestDiscard checks the quiet default swallows records.
func TestDiscard(t *testing.T) {
	Discard().Error("nothing happens")
}
