// Package obs is the stdlib-only observability layer behind the serving
// stack: context-propagated trace spans with W3C-style traceparent
// propagation across the coordinator/worker HTTP boundary, plus the
// shared slog construction every binary's --log-format/--log-level
// flags feed (log.go).
//
// A trace is a tree of spans rooted at one job. Spans are created
// through a context: StartTrace roots a new trace (or JoinTrace
// continues one announced by a traceparent header), StartSpan opens a
// child of whatever span the context carries, and End seals it. A
// context carrying no span makes every call a no-op on a nil *Span —
// the disabled path allocates nothing (pinned by an allocs test), so
// instrumentation can stay unconditional in hot paths.
//
// The serving path's span taxonomy and the traceparent contract are
// documented in DESIGN.md §13. Finished trees render as Node JSON
// (GET /v1/jobs/{id}/trace); a worker exports its subtree in its shard
// response and the coordinator grafts it under the dispatch span, so a
// distributed job's tree stitches the remote execution into the same
// trace id end to end.
package obs

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// trace is the per-tree shared state: one id, one mutex guarding every
// span in the tree (span creation, attrs, end times, grafts, renders).
// Tree mutation is job-lifecycle-granular — experiments, shards,
// dispatch attempts — never per-epoch, so one mutex per trace is cheap.
type trace struct {
	mu sync.Mutex
	id [16]byte
}

// Span is one timed node of a trace tree. A nil *Span is the disabled
// path: every method is a no-op, so callers never branch on whether
// tracing is on.
type Span struct {
	tr       *trace
	name     string
	spanID   uint64
	parentID uint64
	start    time.Time
	end      time.Time
	attrs    map[string]string
	children []*Span
	// grafted holds remote subtrees (a worker's exported tree) attached
	// under this span at merge time.
	grafted []*Node
}

// Node is the JSON rendering of one span — the /v1/jobs/{id}/trace
// payload and the wire form a worker's subtree travels back in.
type Node struct {
	Name            string            `json:"name"`
	SpanID          string            `json:"span_id"`
	ParentID        string            `json:"parent_id,omitempty"`
	Start           time.Time         `json:"start"`
	DurationSeconds float64           `json:"duration_seconds"`
	InProgress      bool              `json:"in_progress,omitempty"`
	Attrs           map[string]string `json:"attrs,omitempty"`
	Children        []*Node           `json:"children,omitempty"`
}

// spanSalt decorrelates this process's span ids from every other
// process contributing spans to the same trace (coordinator and
// workers share a trace id but must never collide on span ids).
var spanSalt = func() uint64 {
	var b [8]byte
	cryptorand.Read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}()

// spanCounter sequences span ids within the process.
var spanCounter atomic.Uint64

// newSpanID derives a process-unique span id: the random per-process
// salt mixed with a SplitMix64-style spread of the sequence number.
func newSpanID() uint64 {
	n := spanCounter.Add(1)
	return spanSalt ^ (n * 0x9E3779B97F4A7C15)
}

// ctxKey carries the active span in a context.
type ctxKey struct{}

// ContextWithSpan returns ctx carrying s as the active span; a nil span
// returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the context's active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartTrace roots a new trace with a fresh random trace id and returns
// the context carrying its root span. The caller must End the root.
func StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	tr := &trace{}
	cryptorand.Read(tr.id[:])
	s := &Span{tr: tr, name: name, spanID: newSpanID(), start: time.Now()}
	return ContextWithSpan(ctx, s), s
}

// JoinTrace continues a trace announced by a traceparent header: the
// returned root span carries the remote trace id and names the remote
// caller's span as its parent, so the exported subtree grafts into the
// caller's tree by id. A malformed traceparent starts a fresh local
// trace instead — a worker never runs unobserved because a header was
// mangled.
func JoinTrace(ctx context.Context, traceparent, name string) (context.Context, *Span) {
	traceID, parentID, ok := ParseTraceparent(traceparent)
	if !ok {
		return StartTrace(ctx, name)
	}
	tr := &trace{id: traceID}
	s := &Span{tr: tr, name: name, spanID: newSpanID(), parentID: parentID, start: time.Now()}
	return ContextWithSpan(ctx, s), s
}

// StartSpan opens a child of the context's active span and returns the
// context carrying it. With no active span it returns (ctx, nil): the
// nil span no-ops every method and the call allocates nothing.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.StartChild(name)
	return ContextWithSpan(ctx, s), s
}

// StartChild opens a child span under s (nil-safe: returns nil).
// StartSpan is the context-threaded form; this one serves callers that
// hold spans across scopes a context cannot follow, like the job
// manager's queue-wait span that starts at enqueue and ends in the
// dispatcher.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, spanID: newSpanID(), parentID: s.spanID, start: time.Now()}
	s.tr.mu.Lock()
	s.children = append(s.children, c)
	s.tr.mu.Unlock()
	return c
}

// End seals the span at now. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.tr.mu.Unlock()
}

// SetAttr attaches one key/value attribute (nil-safe).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.tr.mu.Unlock()
}

// RecordError attaches err as the span's "error" attribute (nil-safe,
// no-op on a nil error). Fault-injection annotations land here, so a
// chaos run's trace shows which attempt the injected fault poisoned.
func (s *Span) RecordError(err error) {
	if s == nil || err == nil {
		return
	}
	s.SetAttr("error", err.Error())
}

// Graft attaches a remote subtree (a worker's exported tree) as a child
// of s; it renders inside this span in Tree output.
func (s *Span) Graft(n *Node) {
	if s == nil || n == nil {
		return
	}
	s.tr.mu.Lock()
	s.grafted = append(s.grafted, n)
	s.tr.mu.Unlock()
}

// Duration reports the span's elapsed time: end minus start once
// sealed, time since start while in progress, zero on a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// TraceID returns the span's 32-hex-digit trace id ("" on nil).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return hex.EncodeToString(s.tr.id[:])
}

// Traceparent renders the W3C-style propagation header naming s as the
// parent of whatever the receiver starts: 00-<trace-id>-<span-id>-01.
// Nil spans render "" (callers skip the header).
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return fmt.Sprintf("00-%s-%016x-01", s.TraceID(), s.spanID)
}

// ParseTraceparent splits a 00-<32 hex>-<16 hex>-<2 hex> header into
// the trace id and parent span id, reporting ok=false on any malformed
// input.
func ParseTraceparent(h string) (traceID [16]byte, parentID uint64, ok bool) {
	if len(h) != 55 || h[:3] != "00-" || h[35] != '-' || h[52] != '-' {
		return traceID, 0, false
	}
	tb, err := hex.DecodeString(h[3:35])
	if err != nil {
		return traceID, 0, false
	}
	pb, err := hex.DecodeString(h[36:52])
	if err != nil {
		return traceID, 0, false
	}
	if _, err := hex.DecodeString(h[53:]); err != nil {
		return traceID, 0, false
	}
	copy(traceID[:], tb)
	return traceID, binary.BigEndian.Uint64(pb), true
}

// Tree snapshots the span and everything under it as a renderable Node
// (nil on a nil span). Unfinished spans render with InProgress=true and
// their duration-so-far, so a running job's trace is already readable.
func (s *Span) Tree() *Node {
	if s == nil {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.nodeLocked(time.Now())
}

// nodeLocked renders s recursively; s.tr.mu held.
func (s *Span) nodeLocked(now time.Time) *Node {
	n := &Node{
		Name:   s.name,
		SpanID: fmt.Sprintf("%016x", s.spanID),
		Start:  s.start,
	}
	if s.parentID != 0 {
		n.ParentID = fmt.Sprintf("%016x", s.parentID)
	}
	end := s.end
	if end.IsZero() {
		end = now
		n.InProgress = true
	}
	n.DurationSeconds = end.Sub(s.start).Seconds()
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			n.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		n.Children = append(n.Children, c.nodeLocked(now))
	}
	n.Children = append(n.Children, s.grafted...)
	return n
}

// Walk visits n and every descendant depth-first — the form trace
// assertions and attribution queries consume trees through.
func (n *Node) Walk(visit func(*Node)) {
	if n == nil {
		return
	}
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Find returns the first node named name in depth-first order, or nil.
func (n *Node) Find(name string) *Node {
	var found *Node
	n.Walk(func(m *Node) {
		if found == nil && m.Name == name {
			found = m
		}
	})
	return found
}
